(* Tests for the dynamic model-invariant verifier (Congest.Conformance):
   the per-round instrumentation must flag edge-discipline, halt-
   monotonicity, and inbox-order cheats; verify_program must certify a
   well-behaved program (with the exact-sum bandwidth cross-check) and
   fail a nondeterministic one; and the whole-registry Workload.Conform
   sweep must pass on two families, fault-free and adversarial. *)

open Dsgraph
module Sim = Congest.Sim
module Conformance = Congest.Conformance

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let invariants violations =
  List.sort_uniq compare
    (List.map (fun v -> v.Conformance.invariant) violations)

(* run one wrapped round directly (outside Sim, which would itself raise
   on the edge cheats before we could observe the recording) *)
let direct_round g program ~node ~inbox =
  let state = program.Sim.init ~node ~neighbors:(Graph.neighbors g node) in
  program.Sim.round ~node ~state ~inbox

let test_edge_discipline () =
  let g = Gen.path 3 in
  let rec_ = Conformance.recorder () in
  let cheat =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round =
        (fun ~node:_ ~state:_ ~inbox:_ ->
          (* node 0: 2 is not a neighbor, and 1 is hit twice *)
          ((), [ (2, ()); (1, ()); (1, ()) ], true));
    }
  in
  let wrapped = Conformance.instrument rec_ g cheat in
  let _ = direct_round g wrapped ~node:0 ~inbox:[] in
  let vs = Conformance.recorded rec_ in
  check (Alcotest.list Alcotest.string) "both edge cheats flagged"
    [ "edge-discipline" ] (invariants vs);
  check int "one per cheat" 2 (List.length vs)

let test_halt_monotonicity () =
  let g = Gen.path 2 in
  let rec_ = Conformance.recorder () in
  let calls = ref 0 in
  let cheat =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round =
        (fun ~node:_ ~state:_ ~inbox:_ ->
          incr calls;
          if !calls = 1 then ((), [], true) (* vote halt *)
          else ((), [ (1, ()) ], false) (* then spontaneously wake up *));
    }
  in
  let wrapped = Conformance.instrument rec_ g cheat in
  let state = wrapped.Sim.init ~node:0 ~neighbors:(Graph.neighbors g 0) in
  let state, _, _ = wrapped.Sim.round ~node:0 ~state ~inbox:[] in
  let _ = wrapped.Sim.round ~node:0 ~state ~inbox:[] in
  let vs = Conformance.recorded rec_ in
  check (Alcotest.list Alcotest.string) "halt cheat flagged"
    [ "halt-monotonic" ] (invariants vs);
  (* spontaneous send and the un-halt are separate findings *)
  check int "both symptoms recorded" 2 (List.length vs)

let test_order_invariance_flagged () =
  let g = Gen.path 3 in
  let rec_ = Conformance.recorder () in
  let order_dependent =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> 0);
      round =
        (fun ~node:_ ~state ~inbox ->
          (* state = first sender in inbox order: order-dependent *)
          let state =
            match inbox with (u, _) :: _ -> u | [] -> state
          in
          (state, [], true));
    }
  in
  let wrapped =
    Conformance.instrument ~order_invariant:true rec_ g order_dependent
  in
  let _ = direct_round g wrapped ~node:1 ~inbox:[ (0, ()); (2, ()) ] in
  check (Alcotest.list Alcotest.string) "order dependence flagged"
    [ "order-invariant" ]
    (invariants (Conformance.recorded rec_))

let test_order_invariant_program_clean () =
  let g = Gen.grid 6 6 in
  let rec_ = Conformance.recorder () in
  let inst = Conformance.instrumentor ~order_invariant:true rec_ g in
  let leaders, _ =
    Congest.Programs.leader_election ~conformance:inst g
  in
  Array.iter (fun l -> check int "leader is min id" 0 l) leaders;
  check int "no violations on honest program" 0
    (List.length (Conformance.recorded rec_))

(* min-flood: the canonical well-behaved, order-invariant program *)
let flood g =
  {
    Sim.init = (fun ~node ~neighbors:_ -> (node, true));
    round =
      (fun ~node ~state:(best, dirty) ~inbox ->
        let best' =
          List.fold_left (fun acc (_, m) -> min acc m) best inbox
        in
        if dirty || best' < best then
          ( (best', false),
            Array.to_list
              (Array.map (fun nb -> (nb, best')) (Graph.neighbors g node)),
            false )
        else ((best', false), [], true));
  }

let find_check name (r : Conformance.report) =
  List.find (fun c -> c.Conformance.name = name) r.Conformance.checks

let test_verify_program_passes () =
  let g = Gen.grid 5 5 in
  let report =
    Conformance.verify_program ~label:"flood" ~order_invariant:true
      ~bits:(fun _ -> 10)
      g (flood g)
  in
  check bool "report ok" true (Conformance.ok report);
  (* the exact-sum bandwidth cross-check: per-edge bit sums from the raw
     event stream = trace total = Metrics.of_trace histogram sum *)
  let bw = find_check "bandwidth-sum" report in
  check bool "exact bandwidth sum" true bw.Conformance.passed;
  check bool "replay determinism" true
    (find_check "replay-determinism" report).Conformance.passed;
  check bool "stats cross-check" true
    (find_check "sim-totals[0]" report).Conformance.passed

let test_verify_program_catches_nondeterminism () =
  let g = Gen.path 4 in
  (* global state that survives across the two replay runs *)
  let poison = ref 0 in
  let nondet =
    {
      Sim.init = (fun ~node ~neighbors:_ -> node);
      round =
        (fun ~node ~state ~inbox:_ ->
          incr poison;
          if state >= 0 && node = 0 then
            (-1, [ (1, !poison) ], false)
          else (state, [], true));
    }
  in
  let report =
    (* bits depend on the payload, so the leak shows up in the trace;
       widen the bandwidth so only determinism can fail *)
    Conformance.verify_program ~label:"nondet" ~bandwidth:512
      ~bits:(fun m -> 8 + (m land 0xff))
      g nondet
  in
  check bool "nondeterministic program fails" false (Conformance.ok report);
  check bool "replay determinism is the failing check" false
    (find_check "replay-determinism" report).Conformance.passed

let test_verify_program_catches_order_cheat () =
  let g = Gen.grid 4 4 in
  (* BFS-like program whose parent choice follows inbox order, falsely
     registered as order-invariant *)
  let order_cheat =
    {
      Sim.init =
        (fun ~node ~neighbors:_ -> if node = 0 then (0, false) else (-1, false));
      round =
        (fun ~node ~state:(parent, announced) ~inbox ->
          let parent =
            if parent >= 0 then parent
            else match inbox with (u, _) :: _ -> u | [] -> -1
          in
          if parent >= 0 && not announced then
            ( (parent, true),
              Array.to_list
                (Array.map (fun nb -> (nb, ())) (Graph.neighbors g node)),
              false )
          else ((parent, announced), [], true));
    }
  in
  let report =
    Conformance.verify_program ~label:"order-cheat" ~order_invariant:true
      ~bits:(fun _ -> 4)
      g order_cheat
  in
  check bool "cheat caught" false (Conformance.ok report);
  check bool "as an order-invariance violation" true
    (List.exists
       (fun v -> v.Conformance.invariant = "order-invariant")
       report.Conformance.violations)

let test_conform_suite_on_two_families () =
  List.iter
    (fun family ->
      let rows = Workload.Conform.suite ~adversarial:true family ~n:48 in
      check bool
        (family.Workload.Suite.name ^ ": covers the whole registry")
        true
        (List.length rows
        >= List.length Workload.Algorithms.decomposers
           + List.length Workload.Algorithms.carvers);
      List.iter
        (fun row ->
          if not (Workload.Conform.ok row) then
            Format.eprintf "%a@." Conformance.pp_report
              row.Workload.Conform.report;
          check bool
            (Printf.sprintf "%s on %s (%s)" row.Workload.Conform.target
               row.Workload.Conform.family
               (if row.Workload.Conform.adversarial then "adv" else "clean"))
            true (Workload.Conform.ok row))
        rows)
    [ Workload.Suite.grid; Workload.Suite.path ]

let () =
  Alcotest.run "conformance"
    [
      ( "instrument",
        [
          Alcotest.test_case "edge discipline" `Quick test_edge_discipline;
          Alcotest.test_case "halt monotonicity" `Quick
            test_halt_monotonicity;
          Alcotest.test_case "order invariance flagged" `Quick
            test_order_invariance_flagged;
          Alcotest.test_case "honest program clean" `Quick
            test_order_invariant_program_clean;
        ] );
      ( "verify",
        [
          Alcotest.test_case "well-behaved program passes" `Quick
            test_verify_program_passes;
          Alcotest.test_case "nondeterminism caught" `Quick
            test_verify_program_catches_nondeterminism;
          Alcotest.test_case "order cheat caught" `Quick
            test_verify_program_catches_order_cheat;
        ] );
      ( "suite",
        [
          Alcotest.test_case "registry + programs on two families" `Slow
            test_conform_suite_on_two_families;
        ] );
    ]
