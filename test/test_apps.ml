open Dsgraph
module Mis = Apps.Mis
module Coloring = Apps.Coloring

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let is_ok = function Ok () -> true | Error _ -> false

let fail_on_error = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "checker rejected: %s" e

let workload seed =
  let rng = Rng.create seed in
  [
    ("path", Gen.path 50);
    ("cycle", Gen.cycle 41);
    ("grid", Gen.grid 7 7);
    ("star", Gen.star 20);
    ("complete", Gen.complete 12);
    ("tree", Gen.random_tree (Rng.split rng) 60);
    ("er", Gen.ensure_connected rng (Gen.erdos_renyi (Rng.split rng) 50 0.08));
    ("expander", Gen.expander (Rng.split rng) 64);
  ]

(* ------------------------------------------------------------------ *)
(* MIS                                                                  *)
(* ------------------------------------------------------------------ *)

let test_mis_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let mis, _ = Mis.run g in
      fail_on_error (Mis.check g mis))
    (workload 1)

let test_mis_on_weak_decomposition () =
  (* the template also works on weak-diameter decompositions *)
  let g = Gen.grid 8 8 in
  let d = Strongdecomp.Netdecomp.weak g in
  let mis = Mis.of_decomposition g d in
  fail_on_error (Mis.check g mis)

let test_mis_path_structure () =
  let g = Gen.path 10 in
  let mis, _ = Mis.run g in
  fail_on_error (Mis.check g mis);
  let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mis in
  (* MIS of a 10-path has between 4 and 5 nodes *)
  check bool "size plausible" true (size >= 4 && size <= 5)

let test_mis_complete_graph () =
  let g = Gen.complete 15 in
  let mis, _ = Mis.run g in
  fail_on_error (Mis.check g mis);
  check int "exactly one" 1
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 mis)

let test_mis_checker_rejects_bad () =
  let g = Gen.path 4 in
  check bool "non-maximal rejected" false
    (is_ok (Mis.check g [| false; false; false; false |]));
  check bool "dependent rejected" false
    (is_ok (Mis.check g [| true; true; false; true |]))

let test_mis_charges_cost () =
  let cost = Congest.Cost.create () in
  ignore (Mis.run ~cost (Gen.grid 7 7));
  check bool "rounds" true (Congest.Cost.rounds cost > 0)

(* ------------------------------------------------------------------ *)
(* Coloring                                                             *)
(* ------------------------------------------------------------------ *)

let test_coloring_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let colors, _ = Coloring.run g in
      fail_on_error (Coloring.check g colors))
    (workload 2)

let test_coloring_cycle_uses_three () =
  let g = Gen.cycle 9 in
  let colors, _ = Coloring.run g in
  fail_on_error (Coloring.check ~palette:3 g colors)

let test_coloring_bipartite_grid_small_palette () =
  let g = Gen.grid 8 8 in
  let colors, _ = Coloring.run g in
  (* grid has max degree 4: palette must fit in 5 *)
  fail_on_error (Coloring.check ~palette:5 g colors)

let test_coloring_checker_rejects_bad () =
  let g = Gen.path 3 in
  check bool "monochromatic edge" false
    (is_ok (Coloring.check g [| 0; 0; 1 |]));
  check bool "uncolored" false (is_ok (Coloring.check g [| 0; -1; 1 |]));
  check bool "palette overflow" false
    (is_ok (Coloring.check ~palette:1 g [| 0; 1; 0 |]))

let test_coloring_on_improved_decomposition () =
  let g = Gen.grid 8 8 in
  let d = Strongdecomp.Netdecomp.strong_improved g in
  let colors = Coloring.of_decomposition g d in
  fail_on_error (Coloring.check g colors)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let arb_connected =
  QCheck.make
    ~print:(fun (seed, n, pct) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n pct)
    QCheck.Gen.(triple (int_bound 100_000) (int_range 2 40) (int_range 3 25))

let connected_graph (seed, n, pct) =
  let rng = Rng.create seed in
  Gen.ensure_connected rng (Gen.erdos_renyi rng n (float_of_int pct /. 100.0))

let prop_mis =
  QCheck.Test.make ~name:"mis via decomposition is independent and maximal"
    ~count:50 arb_connected (fun input ->
      let g = connected_graph input in
      let mis, _ = Mis.run g in
      is_ok (Mis.check g mis))

let prop_coloring =
  QCheck.Test.make ~name:"coloring via decomposition is proper within Δ+1"
    ~count:50 arb_connected (fun input ->
      let g = connected_graph input in
      let colors, _ = Coloring.run g in
      is_ok (Coloring.check g colors))

let () =
  Alcotest.run "apps"
    [
      ( "mis",
        [
          Alcotest.test_case "families" `Quick test_mis_families;
          Alcotest.test_case "weak decomposition" `Quick
            test_mis_on_weak_decomposition;
          Alcotest.test_case "path" `Quick test_mis_path_structure;
          Alcotest.test_case "complete" `Quick test_mis_complete_graph;
          Alcotest.test_case "checker rejects" `Quick
            test_mis_checker_rejects_bad;
          Alcotest.test_case "charges cost" `Quick test_mis_charges_cost;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "families" `Quick test_coloring_families;
          Alcotest.test_case "cycle" `Quick test_coloring_cycle_uses_three;
          Alcotest.test_case "grid palette" `Quick
            test_coloring_bipartite_grid_small_palette;
          Alcotest.test_case "checker rejects" `Quick
            test_coloring_checker_rejects_bad;
          Alcotest.test_case "improved decomposition" `Quick
            test_coloring_on_improved_decomposition;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_mis; prop_coloring ] );
    ]
