(* Tests for Workload.Diff: phase-tree alignment (matched / added /
   removed / renamed), the per-metric significance gates (pure relative
   for logical columns, MAD-widened with an absolute floor for
   seconds), fingerprint refusal, side loading, and the rendered
   outputs. *)

module D = Workload.Diff
module T = Workload.Trajectory
module S = Workload.Stats

let check = Alcotest.check

let phase ?(depth = 1) ?(rounds = 100.0) ?(messages = 1000.0)
    ?(bits = 5000.0) ?(seconds = 1.0) ?(mw = 10000.0) path =
  { D.path; depth; rounds; messages; bits; seconds; minor_words = mw }

let side ?fp ?(mad = 0.0) ?(label = "side") phases =
  { D.label; fingerprint = fp; seconds_mad = mad; phases }

let ok = function Ok d -> d | Error e -> Alcotest.fail e

let row d path =
  match List.find_opt (fun r -> r.D.r_path = path) d.D.rows with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "no row for phase %s" path)

let metric r name =
  match List.find_opt (fun m -> m.D.m_name = name) r.D.r_metrics with
  | Some m -> m
  | None -> Alcotest.fail (Printf.sprintf "no %s metric on %s" name r.D.r_path)

let base = [ phase "carve"; phase "carve/grow"; phase "carve/finish" ]

(* ------------------------------------------------------------------ *)

let test_identical_sides_clean () =
  let d = ok (D.compare (side base) (side base)) in
  check Alcotest.int "nothing significant" 0 d.D.significant;
  check Alcotest.int "all phases aligned" 3 (List.length d.D.rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.D.r_path ^ " matched") true
        (r.D.r_status = D.Matched))
    d.D.rows

let test_seeded_regression_is_top_row () =
  (* the acceptance-criteria case: a +20% slowdown seeded into exactly
     one phase must surface as the top diff row, with the right path *)
  let slowed =
    List.map
      (fun p ->
        if p.D.path = "carve/grow" then { p with D.seconds = 1.2 } else p)
      base
  in
  let d = ok (D.compare (side base) (side slowed)) in
  check Alcotest.int "exactly one significant row" 1 d.D.significant;
  (match d.D.rows with
  | top :: _ -> check Alcotest.string "ranked first" "carve/grow" top.D.r_path
  | [] -> Alcotest.fail "no rows");
  let m = metric (row d "carve/grow") "seconds" in
  Alcotest.(check bool) "seconds flagged" true m.D.m_sig;
  Alcotest.(check bool) "rounds untouched" false
    (metric (row d "carve/grow") "rounds").D.m_sig;
  check Alcotest.(list string) "significant_rows agrees" [ "carve/grow" ]
    (List.map (fun r -> r.D.r_path) (D.significant_rows d))

let test_mad_suppresses_seconds () =
  (* same +20% delta, but the runs recorded a MAD of 0.1s: the gate
     widens to 3*0.1 = 0.3 > 0.2, so the delta reads as noise *)
  let slowed =
    List.map
      (fun p ->
        if p.D.path = "carve/grow" then { p with D.seconds = 1.2 } else p)
      base
  in
  let d = ok (D.compare (side ~mad:0.1 base) (side slowed)) in
  check Alcotest.int "within the recorded noise" 0 d.D.significant

let test_min_seconds_floor () =
  (* a 0.001s phase doubling is +100% but below the 5ms floor: phase
     jitter at that scale never flags *)
  let a = [ phase "tiny" ~seconds:0.001 ] in
  let b = [ phase "tiny" ~seconds:0.002 ] in
  let d = ok (D.compare (side a) (side b)) in
  check Alcotest.int "sub-floor delta ignored" 0 d.D.significant;
  (* the same relative delta on the logical columns does flag *)
  let d2 =
    ok (D.compare (side [ phase "p" ~rounds:1.0 ]) (side [ phase "p" ~rounds:2.0 ]))
  in
  check Alcotest.int "logical columns keep the pure gate" 1 d2.D.significant

let test_added_and_removed () =
  (* different parents, so the rename heuristic cannot pair them *)
  let a = base @ [ phase "old_parent/gone" ] in
  let b = base @ [ phase "new_parent/fresh" ] in
  let d = ok (D.compare (side a) (side b)) in
  Alcotest.(check bool) "added" true
    ((row d "new_parent/fresh").D.r_status = D.Added);
  Alcotest.(check bool) "removed" true
    ((row d "old_parent/gone").D.r_status = D.Removed);
  (* an added phase's metrics grow from a zero baseline: significant *)
  Alcotest.(check bool) "added phase flags" true
    (metric (row d "new_parent/fresh") "rounds").D.m_sig

let test_renamed_pairing () =
  let a = base @ [ phase "carve/split" ~rounds:100.0 ] in
  let b = base @ [ phase "carve/partition" ~rounds:150.0 ] in
  let d = ok (D.compare (side a) (side b)) in
  (match (row d "carve/partition").D.r_status with
  | D.Renamed old -> check Alcotest.string "paired with" "carve/split" old
  | _ -> Alcotest.fail "rename not detected");
  (* the old path must not also appear as a removed row *)
  Alcotest.(check bool) "no leftover removed row" true
    (List.for_all (fun r -> r.D.r_path <> "carve/split") d.D.rows)

let test_rename_rejected_when_rounds_diverge () =
  (* same parent and depth, but 10x the rounds: that is a different
     phase, not a rename *)
  let a = base @ [ phase "carve/split" ~rounds:100.0 ] in
  let b = base @ [ phase "carve/partition" ~rounds:1500.0 ] in
  let d = ok (D.compare (side a) (side b)) in
  Alcotest.(check bool) "added" true
    ((row d "carve/partition").D.r_status = D.Added);
  Alcotest.(check bool) "removed" true
    ((row d "carve/split").D.r_status = D.Removed)

let test_zero_baseline_phase () =
  (* an all-zero baseline phase (e.g. a skipped stage) growing real
     work: flagged, and the percentage-free delta cells must not crash
     the renderers *)
  let a = [ phase "stage" ~rounds:0.0 ~messages:0.0 ~bits:0.0 ~seconds:0.0 ~mw:0.0 ] in
  let b = [ phase "stage" ~rounds:50.0 ~messages:10.0 ~bits:0.0 ~seconds:0.0 ~mw:0.0 ] in
  let d = ok (D.compare (side a) (side b)) in
  check Alcotest.int "flagged" 1 d.D.significant;
  Alcotest.(check bool) "markdown renders" true
    (String.length (D.to_markdown d) > 0);
  Alcotest.(check bool) "json renders" true (String.length (D.to_json d) > 0)

let fp ?(sha = "abc123") () =
  {
    S.git_sha = sha;
    ocaml_version = "5.1.1";
    word_size = 64;
    flambda = false;
    hostname = "ci";
  }

let test_fingerprint_refusal_and_force () =
  let a = side ~fp:(fp ()) base in
  let b = side ~fp:(fp ~sha:"def456" ()) base in
  (match D.compare a b with
  | Error msg ->
      Alcotest.(check bool) "message names both shas" true
        (let has s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has msg "abc123" && has msg "def456")
  | Ok _ -> Alcotest.fail "cross-fingerprint compare not refused");
  let d = ok (D.compare ~options:{ D.default_options with force = true } a b) in
  Alcotest.(check bool) "forced flag set" true d.D.forced;
  check Alcotest.int "still compares" 0 d.D.significant;
  (* same fingerprints: no refusal, not forced *)
  let d2 = ok (D.compare a (side ~fp:(fp ()) base)) in
  Alcotest.(check bool) "same env not forced" false d2.D.forced

let test_markdown_clean_verdict () =
  let d = ok (D.compare (side base) (side base)) in
  let md = D.to_markdown d in
  let has sub =
    let n = String.length md and m = String.length sub in
    let rec go i = i + m <= n && (String.sub md i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "verdict line" true
    (has "No significant phase deltas (3 phases aligned)")

let test_folded_output () =
  let a = [ phase "carve/grow" ~seconds:0.5 ] in
  let b = [ phase "carve/grow" ~seconds:1.0 ] in
  let d = ok (D.compare (side a) (side b)) in
  check Alcotest.string "difffolded line" "carve;grow 500000 1000000\n"
    (D.to_folded d)

(* ------------------------------------------------------------------ *)

let entry ?(rounds = 100) ?(seconds = 0.5) ?(mad = 0.0) name =
  {
    T.name;
    rounds;
    messages = 5000;
    max_bits = 64;
    phases = 4;
    seconds;
    seconds_mad = mad;
    minor_words_per_node = 1000.0;
    peak_heap_mb = 12.0;
  }

let test_side_of_trajectory_line () =
  let line =
    T.snapshot_json ~fingerprint:(fp ()) ~time:1.0
      [ entry "grid" ~mad:0.01; entry "expander" ~mad:0.02 ]
  in
  let s = D.side_of_trajectory_line ~label:"traj" line in
  check Alcotest.int "one phase per workload" 2 (List.length s.D.phases);
  let g = List.hd s.D.phases in
  check Alcotest.string "name becomes path" "grid" g.D.path;
  check Alcotest.int "depth zero" 0 g.D.depth;
  Alcotest.(check (float 1e-9)) "rounds" 100.0 g.D.rounds;
  Alcotest.(check (float 1e-9)) "bits from max_bits" 64.0 g.D.bits;
  Alcotest.(check (float 1e-9)) "largest row MAD wins" 0.02 s.D.seconds_mad;
  Alcotest.(check bool) "fingerprint parsed" true (s.D.fingerprint = Some (fp ()))

let test_side_of_report_json () =
  let text =
    "{\"report\":{\"algo\":\"thm2.3\",\"seconds_mad\":0.003},\
     \"fingerprint\":{\"git_sha\":\"abc123\",\"ocaml_version\":\"5.1.1\",\
     \"word_size\":64,\"flambda\":false,\"hostname\":\"ci\"},\
     \"rollups\":[{\"path\":\"carve\",\"depth\":0,\"rounds\":10,\
     \"messages\":5,\"bits\":100,\"seconds\":0.5}],\
     \"resources\":{\"rollups\":[{\"path\":\"carve\",\"minor_words\":4200},\
     {\"path\":\"(unspanned)\",\"depth\":0,\"seconds\":0.1,\
     \"minor_words\":77}]}}"
  in
  let s = ok (D.side_of_report_json ~label:"rep" text) in
  Alcotest.(check (float 1e-9)) "report-level MAD" 0.003 s.D.seconds_mad;
  Alcotest.(check bool) "fingerprint parsed" true (s.D.fingerprint = Some (fp ()));
  check Alcotest.int "span + resource-only phases" 2 (List.length s.D.phases);
  let carve = List.find (fun p -> p.D.path = "carve") s.D.phases in
  Alcotest.(check (float 1e-9)) "minor words joined by path" 4200.0
    carve.D.minor_words;
  let unsp = List.find (fun p -> p.D.path = "(unspanned)") s.D.phases in
  Alcotest.(check (float 1e-9)) "resource-only phase kept" 77.0
    unsp.D.minor_words;
  (* not a report: refused with the label in the message *)
  match D.side_of_report_json ~label:"rep" "{\"x\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-report JSON accepted"

let test_load_specs () =
  let path = Filename.temp_file "diff_traj" ".json" in
  T.write path
    [
      T.snapshot_json ~time:1.0 [ entry "grid" ~rounds:100 ];
      T.snapshot_json ~time:2.0 [ entry "grid" ~rounds:200 ];
    ];
  let rounds_of s =
    match s.D.phases with p :: _ -> p.D.rounds | [] -> Alcotest.fail "no phases"
  in
  Alcotest.(check (float 1e-9)) "default is newest" 200.0
    (rounds_of (ok (D.load path)));
  Alcotest.(check (float 1e-9)) "#1 is oldest" 100.0
    (rounds_of (ok (D.load (path ^ "#1"))));
  Alcotest.(check (float 1e-9)) "#-2 counts from the end" 100.0
    (rounds_of (ok (D.load (path ^ "#-2"))));
  (match D.load (path ^ "#9") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range index accepted");
  Sys.remove path;
  (match D.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  (* a report file is sniffed by its leading {"report": *)
  let rpath = Filename.temp_file "diff_rep" ".json" in
  let oc = open_out rpath in
  output_string oc
    "{\"report\":{\"algo\":\"x\"},\"rollups\":[{\"path\":\"a\",\"depth\":0,\
     \"rounds\":1,\"messages\":1,\"bits\":1,\"seconds\":0.1}]}";
  close_out oc;
  check Alcotest.int "report side loads" 1
    (List.length (ok (D.load rpath)).D.phases);
  (match D.load (rpath ^ "#1") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "#N on a report accepted");
  Sys.remove rpath

let () =
  Alcotest.run "diff"
    [
      ( "alignment",
        [
          Alcotest.test_case "identical sides clean" `Quick
            test_identical_sides_clean;
          Alcotest.test_case "added and removed phases" `Quick
            test_added_and_removed;
          Alcotest.test_case "renamed phase paired" `Quick test_renamed_pairing;
          Alcotest.test_case "divergent rounds reject rename" `Quick
            test_rename_rejected_when_rounds_diverge;
          Alcotest.test_case "zero-baseline phase" `Quick
            test_zero_baseline_phase;
        ] );
      ( "significance",
        [
          Alcotest.test_case "seeded +20% regression is top row" `Quick
            test_seeded_regression_is_top_row;
          Alcotest.test_case "MAD suppresses noisy seconds" `Quick
            test_mad_suppresses_seconds;
          Alcotest.test_case "absolute seconds floor" `Quick
            test_min_seconds_floor;
          Alcotest.test_case "fingerprint refusal and --force" `Quick
            test_fingerprint_refusal_and_force;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "clean markdown verdict" `Quick
            test_markdown_clean_verdict;
          Alcotest.test_case "differential folded stacks" `Quick
            test_folded_output;
        ] );
      ( "loading",
        [
          Alcotest.test_case "trajectory line side" `Quick
            test_side_of_trajectory_line;
          Alcotest.test_case "report json side" `Quick test_side_of_report_json;
          Alcotest.test_case "load spec parsing" `Quick test_load_specs;
        ] );
    ]
