(* Tests for the chaos layer: the churn (crash + timed revive)
   adversary, the adaptive-backoff transport knobs and their
   [Sim.Config] threading, and the [Workload.Chaos] sweep harness
   (seeded determinism, zero invariant violations on the default
   schedule mix). *)

open Dsgraph
module Sim = Congest.Sim
module Fault = Congest.Fault
module Reliable = Congest.Reliable
module Chaos = Workload.Chaos

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "expected Invalid_argument: %s" what

(* ------------------------------------------------------------------ *)
(* Churn adversary                                                     *)
(* ------------------------------------------------------------------ *)

let test_churn_intervals () =
  let adv =
    Fault.create (Fault.spec ~crashes:[ (2, 3) ] ~revives:[ (2, 6) ] ())
  in
  check bool "up before crash" false (Fault.is_crashed adv ~round:2 2);
  check bool "down at crash round" true (Fault.is_crashed adv ~round:3 2);
  check bool "down mid-interval" true (Fault.is_crashed adv ~round:5 2);
  check bool "up at revive round" false (Fault.is_crashed adv ~round:6 2);
  check bool "up after" false (Fault.is_crashed adv ~round:50 2);
  Alcotest.(check (list int)) "down set mid" [ 2 ] (Fault.down_nodes adv ~round:4);
  Alcotest.(check (list int)) "down set after" [] (Fault.down_nodes adv ~round:6);
  (* first-crash semantics survive the revival *)
  Alcotest.(check (list int)) "crashed_nodes still lists it" [ 2 ]
    (Fault.crashed_nodes adv ~upto_round:10)

let test_churn_recrash () =
  let adv =
    Fault.create
      (Fault.spec ~crashes:[ (2, 3); (2, 9) ] ~revives:[ (2, 6) ] ())
  in
  check bool "first down interval" true (Fault.is_crashed adv ~round:4 2);
  check bool "revived window" false (Fault.is_crashed adv ~round:7 2);
  check bool "second crash is permanent" true (Fault.is_crashed adv ~round:11 2)

let test_churn_validation () =
  expect_invalid "revive without a crash" (fun () ->
      Fault.create (Fault.spec ~revives:[ (1, 5) ] ()));
  expect_invalid "revive before the crash" (fun () ->
      Fault.create (Fault.spec ~crashes:[ (1, 5) ] ~revives:[ (1, 4) ] ()));
  expect_invalid "revive at the crash round" (fun () ->
      Fault.create (Fault.spec ~crashes:[ (1, 5) ] ~revives:[ (1, 5) ] ()));
  expect_invalid "re-crash before the pending revive" (fun () ->
      Fault.create
        (Fault.spec ~crashes:[ (1, 3); (1, 4) ] ~revives:[ (1, 6) ] ()));
  expect_invalid "more revives than crashes" (fun () ->
      Fault.create
        (Fault.spec ~crashes:[ (1, 3) ] ~revives:[ (1, 4); (1, 8) ] ()))

(* ------------------------------------------------------------------ *)
(* Adaptive backoff transport                                          *)
(* ------------------------------------------------------------------ *)

type chat_state = { r : int; log : (int * (int * int) list) list }

let chatter ~talk g =
  {
    Sim.init = (fun ~node:_ ~neighbors:_ -> { r = 0; log = [] });
    round =
      (fun ~node ~state ~inbox ->
        let r = state.r + 1 in
        let state = { r; log = (r, inbox) :: state.log } in
        if r <= talk then
          let out =
            Array.to_list
              (Array.map
                 (fun nb -> (nb, (node * 1000) + r))
                 (Graph.neighbors g node))
          in
          (state, out, false)
        else (state, [], true));
  }

let chat_bits _ = 8

let normalize_log ~upto st =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (r, inbox) -> Hashtbl.replace tbl r inbox) st.log;
  List.init upto (fun i ->
      match Hashtbl.find_opt tbl (i + 1) with Some l -> l | None -> [])

let test_backoff_config_validation () =
  expect_invalid "backoff below 1" (fun () ->
      Reliable.config ~inner_rounds:4 ~backoff:0.5 ());
  expect_invalid "max_rto below rto" (fun () ->
      Reliable.config ~inner_rounds:4 ~rto:4 ~max_rto:2 ());
  expect_invalid "negative jitter" (fun () ->
      Reliable.config ~inner_rounds:4 ~jitter:(-1) ());
  expect_invalid "negative max_retries" (fun () ->
      Reliable.config ~inner_rounds:4 ~max_retries:(-1) ())

(* exactly-once delivery survives with every backoff knob switched on *)
let test_backoff_transparency_under_drops () =
  let g = Gen.cycle 8 in
  let talk = 4 in
  let inner = talk + 2 in
  let plain, _ = Sim.simulate ~bits:chat_bits g (chatter ~talk g) in
  let cfg =
    Reliable.config ~inner_rounds:inner ~rto:2 ~backoff:2.0 ~max_rto:12
      ~jitter:3 ~jitter_seed:11 ~max_retries:40 ()
  in
  let adv = Fault.create (Fault.spec ~seed:5 ~drop:0.25 ()) in
  let r =
    Reliable.simulate
      ~sim:Sim.Config.(default |> with_adversary adv)
      cfg ~bits:chat_bits g (chatter ~talk g)
  in
  check bool "all finished" true (Array.for_all Fun.id r.Reliable.finished);
  check bool "inner behavior identical" true
    (Array.for_all2
       (fun a b -> normalize_log ~upto:inner a = normalize_log ~upto:inner b)
       plain r.Reliable.states);
  check bool "drops forced retransmissions" true
    (r.Reliable.transport.Reliable.retransmissions > 0)

(* with the silence timeout out of reach, only capped retries can
   condemn the link — detection must still happen, and early *)
let test_max_retries_detects_crash () =
  let g = Gen.path 4 in
  let talk = 3 in
  let inner = talk + 2 in
  let cfg =
    Reliable.config ~inner_rounds:inner ~rto:1 ~max_retries:3
      ~liveness_timeout:2000 ()
  in
  let adv = Fault.create (Fault.spec ~crashes:[ (3, 2) ] ()) in
  let r =
    Reliable.simulate
      ~sim:Sim.Config.(default |> with_adversary adv)
      cfg ~bits:chat_bits g (chatter ~talk g)
  in
  Alcotest.(check (list int)) "crash detected" [ 3 ]
    r.Reliable.transport.Reliable.detected_dead;
  check bool "detected by retries, not by the timeout" true
    (r.Reliable.sim_stats.Sim.rounds_used < 2000);
  check bool "survivors finished" true
    (r.Reliable.finished.(0) && r.Reliable.finished.(1) && r.Reliable.finished.(2))

(* the same knobs threaded through Sim.Config override the transport
   config field-for-field *)
let test_sim_config_threads_transport_knobs () =
  let g = Gen.cycle 6 in
  let talk = 3 in
  let inner = talk + 2 in
  let direct_cfg =
    Reliable.config ~inner_rounds:inner ~window:4 ~rto:3 ~liveness_timeout:80 ()
  in
  let run_direct () =
    let adv = Fault.create (Fault.spec ~seed:9 ~drop:0.2 ()) in
    Reliable.simulate
      ~sim:Sim.Config.(default |> with_adversary adv)
      direct_cfg ~bits:chat_bits g (chatter ~talk g)
  in
  let run_threaded () =
    let adv = Fault.create (Fault.spec ~seed:9 ~drop:0.2 ()) in
    let sim =
      Sim.Config.(
        default |> with_adversary adv |> with_transport_window 4
        |> with_transport_rto 3 |> with_liveness_timeout 80)
    in
    Reliable.simulate ~sim
      (Reliable.config ~inner_rounds:inner ())
      ~bits:chat_bits g (chatter ~talk g)
  in
  let a = run_direct () and b = run_threaded () in
  check bool "same inner states" true
    (Array.for_all2
       (fun x y -> normalize_log ~upto:inner x = normalize_log ~upto:inner y)
       a.Reliable.states b.Reliable.states);
  check int "same retransmissions"
    a.Reliable.transport.Reliable.retransmissions
    b.Reliable.transport.Reliable.retransmissions;
  check int "same rounds" a.Reliable.sim_stats.Sim.rounds_used
    b.Reliable.sim_stats.Sim.rounds_used;
  (* defaults stay byte-identical: no knob set = the legacy trace *)
  check bool "default knobs are off" true
    (Sim.Config.default.Sim.Config.transport_window = None
    && Sim.Config.default.Sim.Config.transport_rto = None
    && Sim.Config.default.Sim.Config.liveness_timeout = None)

(* ------------------------------------------------------------------ *)
(* Chaos sweeps                                                        *)
(* ------------------------------------------------------------------ *)

let test_chaos_deterministic () =
  let sp =
    Chaos.spec (Chaos.Decomposer "greedy") ~family:"grid" ~n:49 ~seed:21
      ~steps:3 ~crashes:2 ~edge_dels:2 ~edge_adds:2 ~revive_prob:0.5 ~halo:1
  in
  let csv () =
    let r = Chaos.run sp in
    (* timings differ across runs; the CSV is deterministic minus them *)
    List.map
      (fun (row : Chaos.step_row) -> { row with Chaos.repair_seconds = 0.; scratch_seconds = 0. })
      r.Chaos.rows
    |> Chaos.csv
  in
  check bool "same csv twice" true (csv () = csv ())

let test_chaos_default_sweep_clean () =
  let specs = Chaos.default_specs ~count:15 ~n:48 ~steps:2 ~seed:77 () in
  let results = Chaos.sweep specs in
  List.iter2
    (fun sp r ->
      match r.Chaos.failures with
      | [] -> ()
      | (step, v) :: _ ->
          Alcotest.failf "%s %s seed=%d step %d: %s"
            (Chaos.algo_label sp.Chaos.algo)
            sp.Chaos.family sp.Chaos.seed step v)
    specs results;
  check int "one row per step" 30
    (List.length (List.concat_map (fun r -> r.Chaos.rows) results))

let test_chaos_spec_validation () =
  expect_invalid "zero steps" (fun () ->
      Chaos.spec (Chaos.Decomposer "greedy") ~family:"grid" ~n:16 ~seed:1
        ~steps:0);
  expect_invalid "negative halo" (fun () ->
      Chaos.spec (Chaos.Decomposer "greedy") ~family:"grid" ~n:16 ~seed:1
        ~halo:(-1))

let test_chaos_touched_bound_reported () =
  (* a giant-cluster algorithm must blow a tight touched bound — the
     violation is reported, not silently absorbed *)
  let sp =
    Chaos.spec (Chaos.Decomposer "thm2.3") ~family:"grid" ~n:64 ~seed:5
      ~steps:1 ~max_touched:0.2
  in
  let r = Chaos.run sp in
  check bool "violation surfaced" true
    (List.exists (fun (_, v) -> String.length v > 0) r.Chaos.failures)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [
      ( "churn",
        [
          Alcotest.test_case "down intervals" `Quick test_churn_intervals;
          Alcotest.test_case "re-crash after revive" `Quick test_churn_recrash;
          Alcotest.test_case "validation" `Quick test_churn_validation;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "config validation" `Quick
            test_backoff_config_validation;
          Alcotest.test_case "transparency under drops" `Quick
            test_backoff_transparency_under_drops;
          Alcotest.test_case "capped retries detect crashes" `Quick
            test_max_retries_detects_crash;
          Alcotest.test_case "Sim.Config threads the knobs" `Quick
            test_sim_config_threads_transport_knobs;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "default mix has no violations" `Quick
            test_chaos_default_sweep_clean;
          Alcotest.test_case "spec validation" `Quick test_chaos_spec_validation;
          Alcotest.test_case "touched bound violations surface" `Quick
            test_chaos_touched_bound_reported;
        ] );
    ]
