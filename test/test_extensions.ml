(* Tests for the extension layer: Theorem 2.1 over a randomized black box
   (Linial–Saks with Steiner trees), the genuinely distributed Linial–Saks
   program, spanners and expander decomposition via the decomposition
   machinery, graph IO, and diameter-estimate cross-checks. *)

open Dsgraph
module LS = Baseline.Linial_saks
module LsT = Baseline.Ls_transform
module LsD = Baseline.Ls_distributed
module Spanner = Apps.Spanner
module ExpD = Apps.Expander_decomp
module Clustering = Cluster.Clustering
module Carving = Cluster.Carving
module Steiner = Cluster.Steiner

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let is_ok = function Ok () -> true | Error _ -> false

let fail_on_error = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "checker rejected: %s" e

let workload seed =
  let rng = Rng.create seed in
  [
    ("path", Gen.path 64);
    ("grid", Gen.grid 8 8);
    ("tree", Gen.random_tree (Rng.split rng) 70);
    ("er", Gen.ensure_connected rng (Gen.erdos_renyi (Rng.split rng) 64 0.06));
    ("expander", Gen.expander (Rng.split rng) 64);
    ("ring_of_cliques", Gen.ring_of_cliques 6 6);
  ]

(* ------------------------------------------------------------------ *)
(* Linial–Saks with Steiner trees (the weak interface of Theorem 2.1)   *)
(* ------------------------------------------------------------------ *)

let test_ls_trees_contract () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving, forest = LS.carve_with_trees (Rng.create 3) g ~epsilon:0.5 in
      let cap = LS.max_radius ~n:(Graph.n g) ~epsilon:0.5 in
      fail_on_error
        (Carving.check_weak ~epsilon:0.5 ~steiner:forest ~depth_bound:cap
           carving))
    (workload 1)

let test_ls_trees_roots_may_be_nonmembers () =
  (* tree roots are centers, which can lose their own node to a
     higher-priority center; the forest must still validate *)
  let g = Gen.complete 12 in
  let carving, forest = LS.carve_with_trees (Rng.create 1) g ~epsilon:0.5 in
  check int "forest size matches clusters"
    (Clustering.num_clusters carving.Carving.clustering)
    (Array.length forest)

let test_ls_trees_depth_bounded () =
  let g = Gen.grid 9 9 in
  let epsilon = 0.25 in
  let _, forest = LS.carve_with_trees (Rng.create 7) g ~epsilon in
  let cap = LS.max_radius ~n:81 ~epsilon in
  Array.iter
    (fun t -> check bool "depth <= cap" true (Steiner.depth t <= cap))
    forest

(* ------------------------------------------------------------------ *)
(* Theorem 2.1 over the randomized black box                            *)
(* ------------------------------------------------------------------ *)

let test_ls_transform_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving, _ = LsT.carve (Rng.create 5) g ~epsilon:0.5 in
      fail_on_error (Carving.check_strong ~epsilon:0.5 carving))
    (workload 5)

let test_ls_transform_decompose () =
  let g = Gen.grid 8 8 in
  let d = LsT.decompose (Rng.create 6) g in
  fail_on_error (Cluster.Decomposition.check d);
  check bool "strong clusters" true
    (Clustering.max_strong_diameter (Cluster.Decomposition.clustering d) >= 0)

let test_ls_transform_unknown_n () =
  (* the Section 2 unknown-n wrapper composes with the randomized black
     box too *)
  let g = Gen.grid 8 8 in
  let carving =
    Strongdecomp.Transform.strong_carve_unknown_n
      ~weak:(LS.weak_carver (Rng.create 9))
      g ~epsilon:0.5
  in
  fail_on_error (Cluster.Carving.check_strong ~epsilon:0.5 carving)

let test_ls_transform_beats_deterministic_diameter_on_path () =
  (* the randomized black box has R = O(log n/eps) trees, so Theorem 2.1
     gives O(log^2 n/eps) strong diameter — below the deterministic
     Theorem 2.2's O(log^3) on a long path *)
  let g = Gen.path 2048 in
  let rand, _ = LsT.carve (Rng.create 11) g ~epsilon:0.5 in
  let det, _ = Strongdecomp.Strong_carving.carve g ~epsilon:0.5 in
  let d c = Clustering.max_strong_diameter c.Carving.clustering in
  check bool
    (Printf.sprintf "randomized %d <= deterministic %d" (d rand) (d det))
    true
    (d rand <= d det)

(* ------------------------------------------------------------------ *)
(* Distributed Linial–Saks on the true simulator                        *)
(* ------------------------------------------------------------------ *)

let test_ls_distributed_valid () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving, stats = LsD.carve (Rng.create 3) g ~epsilon:0.5 in
      fail_on_error (Carving.check_weak ~epsilon:0.5 carving);
      check bool "simulator halted" true stats.Congest.Sim.all_halted)
    (workload 9)

let test_ls_distributed_message_size () =
  let g = Gen.grid 9 9 in
  let _, stats = LsD.carve (Rng.create 4) g ~epsilon:0.5 in
  check bool "messages within CONGEST bandwidth" true
    (stats.Congest.Sim.max_bits_seen <= Congest.Bits.bandwidth ~n:81)

let test_ls_distributed_anchors_cost_model () =
  (* the step-granular Linial_saks.carve charges 2·cap+2 rounds per
     attempt; the real execution must not exceed that scale *)
  let g = Gen.grid 10 10 in
  let epsilon = 0.5 in
  let _, stats = LsD.carve (Rng.create 5) g ~epsilon in
  let cap = LS.max_radius ~n:100 ~epsilon in
  check bool
    (Printf.sprintf "simulated %d rounds <= charged scale %d"
       stats.Congest.Sim.rounds_used
       ((2 * cap) + 8))
    true
    (stats.Congest.Sim.rounds_used <= (2 * cap) + 8)

let test_ls_distributed_decompose () =
  let g = Gen.grid 8 8 in
  let decomp, stats = LsD.decompose (Rng.create 7) g in
  fail_on_error (Cluster.Decomposition.check decomp);
  check int "covers all" 64
    (Clustering.clustered_count (Cluster.Decomposition.clustering decomp));
  (* every message of the end-to-end run fit the CONGEST bandwidth *)
  check bool "small messages" true
    (stats.LsD.max_bits <= Congest.Bits.bandwidth ~n:64);
  check bool "rounds accumulated" true (stats.LsD.total_rounds > 0)

let test_ls_distributed_decompose_er () =
  let rng = Rng.create 8 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 80 0.05) in
  let decomp, _ = LsD.decompose (Rng.create 9) g in
  fail_on_error (Cluster.Decomposition.check decomp)

let test_ls_distributed_weak_diameter () =
  let g = Gen.grid 10 10 in
  let epsilon = 0.5 in
  let carving, _ = LsD.carve (Rng.create 6) g ~epsilon in
  let cap = LS.max_radius ~n:100 ~epsilon in
  let wd = Clustering.max_weak_diameter carving.Carving.clustering in
  check bool "weak diameter <= 2 cap" true (wd >= 0 && wd <= 2 * cap)

(* ------------------------------------------------------------------ *)
(* Luby's MIS on the simulator                                          *)
(* ------------------------------------------------------------------ *)

let test_luby_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let mis, stats = Apps.Luby.run g in
      fail_on_error (Apps.Mis.check g mis);
      check bool "halted" true stats.Congest.Sim.all_halted)
    (workload 41)

let test_luby_rounds_logarithmic_shape () =
  let rng = Rng.create 3 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 300 0.03) in
  let _, stats = Apps.Luby.run g in
  (* O(log n) iterations of 2 rounds each, with slack *)
  check bool
    (Printf.sprintf "%d rounds is logarithmic-ish" stats.Congest.Sim.rounds_used)
    true
    (stats.Congest.Sim.rounds_used <= 64)

let test_luby_message_size () =
  let g = Gen.grid 8 8 in
  let _, stats = Apps.Luby.run g in
  check bool "small messages" true (stats.Congest.Sim.max_bits_seen <= 24)

let test_luby_deterministic_given_seed () =
  let g = Gen.grid 7 7 in
  let a, _ = Apps.Luby.run ~seed:5 g in
  let b, _ = Apps.Luby.run ~seed:5 g in
  Alcotest.(check (array bool)) "same output" a b

(* ------------------------------------------------------------------ *)
(* Distributed MPX                                                      *)
(* ------------------------------------------------------------------ *)

module MpxD = Baseline.Mpx_distributed

let test_mpx_distributed_matches_reference () =
  List.iter
    (fun (name, g) ->
      check bool (name ^ ": matches oracle") true
        (MpxD.matches_reference g ~beta:0.3))
    (workload 43)

let test_mpx_distributed_valid_partition () =
  let g = Gen.grid 8 8 in
  let r = MpxD.partition g ~beta:0.25 in
  check int "all assigned" 64 (Clustering.clustered_count r.MpxD.clustering);
  check bool "clusters connected" true
    (Clustering.max_strong_diameter r.MpxD.clustering >= 0);
  check bool "halted" true r.MpxD.sim_stats.Congest.Sim.all_halted

let test_mpx_distributed_beta_extremes () =
  let g = Gen.path 40 in
  (* huge beta: tiny shifts, everyone nearly its own cluster *)
  let frag = MpxD.partition ~seed:2 g ~beta:20.0 in
  check bool "fragmented" true
    (Clustering.num_clusters frag.MpxD.clustering > 10);
  check bool "still matches oracle" true
    (MpxD.matches_reference ~seed:2 g ~beta:20.0)

(* ------------------------------------------------------------------ *)
(* Barabási–Albert generator                                            *)
(* ------------------------------------------------------------------ *)

let test_ba_shape () =
  let g = Gen.barabasi_albert (Rng.create 4) 200 3 in
  check int "n" 200 (Graph.n g);
  check bool "connected" true (Components.is_connected g);
  (* preferential attachment: some hub far above the minimum degree *)
  check bool "has hubs" true (Graph.max_degree g >= 10);
  (* each newcomer adds at most 3 edges *)
  check bool "m bounded" true (Graph.m g <= 6 + (197 * 3))

let test_ba_validation () =
  Alcotest.check_raises "bad k"
    (Invalid_argument "Gen.barabasi_albert: need 1 <= k < n") (fun () ->
      ignore (Gen.barabasi_albert (Rng.create 1) 5 5))

(* ------------------------------------------------------------------ *)
(* Spanner                                                              *)
(* ------------------------------------------------------------------ *)

let test_spanner_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let spanner, _ = Spanner.run g in
      fail_on_error (Spanner.check g spanner))
    (workload 21)

let test_spanner_is_sparse_on_dense_graph () =
  let g = Gen.complete 24 in
  let spanner, decomp = Spanner.run g in
  let clustering = Cluster.Decomposition.clustering decomp in
  let pairs = List.length (Clustering.adjacent_cluster_pairs clustering) in
  check bool "edges <= n - 1 + adjacent pairs" true
    (List.length spanner.Spanner.edges <= 23 + pairs);
  check bool "far below m" true (List.length spanner.Spanner.edges < Graph.m g / 3)

let test_spanner_measured_stretch_within_bound () =
  let g = Gen.grid 10 10 in
  let spanner, _ = Spanner.run g in
  check bool "measured <= bound" true
    (Spanner.measured_stretch g spanner
    <= float_of_int spanner.Spanner.stretch_bound)

let test_spanner_on_mpx_decomposition () =
  (* works on any strong-diameter decomposition *)
  let g = Gen.erdos_renyi (Rng.create 3) 60 0.1 in
  let g = Gen.ensure_connected (Rng.create 4) g in
  let d = Baseline.Mpx.decompose (Rng.create 5) g in
  let spanner = Spanner.of_decomposition g d in
  fail_on_error (Spanner.check g spanner)

let test_spanner_rejects_weak_decomposition () =
  (* a cluster inducing a disconnected subgraph cannot host a BFS tree *)
  let g = Gen.star 6 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 1; 1; 1; 1; 1 |] in
  let d = Cluster.Decomposition.make clustering ~color_of_cluster:[| 0; 1 |] in
  Alcotest.check_raises "disconnected cluster"
    (Invalid_argument
       "Spanner.of_decomposition: cluster induces a disconnected subgraph")
    (fun () -> ignore (Spanner.of_decomposition g d))

(* ------------------------------------------------------------------ *)
(* Expander decomposition                                               *)
(* ------------------------------------------------------------------ *)

let test_expander_decomp_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let t = ExpD.decompose g in
      fail_on_error (ExpD.check g t))
    (workload 31)

let test_expander_decomp_expander_is_one_cluster () =
  (* a genuine expander has no balanced sparse cut: one big cluster *)
  let g = Gen.expander (Rng.create 8) 128 in
  let t = ExpD.decompose g in
  let sizes = Clustering.sizes t.ExpD.clustering in
  let biggest = Array.fold_left max 0 sizes in
  check bool "dominant cluster" true (3 * biggest >= Graph.n g)

let test_expander_decomp_cliques_cut_few_edges () =
  let g = Gen.ring_of_cliques 8 8 in
  let t = ExpD.decompose g in
  check bool "few inter-cluster edges" true
    (ExpD.inter_cluster_fraction g t <= 0.25)

let test_expander_decomp_covers_disconnected_inputs () =
  let g = Gen.disjoint_union (Gen.grid 5 5) (Gen.cycle 9) in
  let t = ExpD.decompose g in
  fail_on_error (ExpD.check g t)

let test_expander_decomp_internal_conductance () =
  let g = Gen.ring_of_cliques 6 8 in
  let t = ExpD.decompose g in
  let phi = ExpD.min_internal_sweep_conductance g t in
  (* clusters should be at least as well-connected as the clique blocks *)
  check bool "internal conductance positive" true (phi > 0.0)

(* ------------------------------------------------------------------ *)
(* Graph IO                                                             *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip () =
  let g = Gen.erdos_renyi (Rng.create 12) 40 0.1 in
  let text = Io.to_edge_list g in
  check bool "roundtrip" true (Graph.equal g (Io.of_edge_list text))

let test_io_preserves_isolated_nodes () =
  let g = Graph.of_edge_seq ~n:5 (Seq.return (0, 1)) in
  let g' = Io.of_edge_list (Io.to_edge_list g) in
  check int "n preserved" 5 (Graph.n g')

let test_io_infers_n_without_header () =
  let g = Io.of_edge_list "0 1\n1 2\n" in
  check int "n" 3 (Graph.n g);
  check int "m" 2 (Graph.m g)

let test_io_rejects_garbage () =
  Alcotest.check_raises "garbage"
    (Invalid_argument "Io.of_edge_list: malformed line 1: \"zero one\"")
    (fun () -> ignore (Io.of_edge_list "zero one\n"))

let test_io_file_roundtrip () =
  let g = Gen.grid 5 5 in
  let path = Filename.temp_file "dsgraph" ".edges" in
  Io.save path g;
  let g' = Io.load path in
  Sys.remove path;
  check bool "file roundtrip" true (Graph.equal g g')

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

let test_io_dot_output () =
  let g = Gen.path 3 in
  let dot = Io.to_dot ~cluster_of:(fun v -> if v < 2 then 0 else -1) g in
  check bool "mentions edge" true (contains dot "0 -- 1");
  check bool "unclustered node is white" true (contains dot "2 [fillcolor=\"#ffffff\"]");
  check bool "clustered node colored" true (contains dot "0 [fillcolor=\"#a6cee3\"]")

(* ------------------------------------------------------------------ *)
(* Diameter estimates vs exact                                          *)
(* ------------------------------------------------------------------ *)

let prop_estimates_bracket_exact =
  QCheck.Test.make ~name:"double-sweep estimates bracket the exact diameter"
    ~count:50
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 2 30) (int_range 5 30)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      (* random clustering by parity of id blocks *)
      let cluster_of = Array.init (Graph.n g) (fun v -> v mod 3) in
      let c = Clustering.make g ~cluster_of in
      let ok = ref true in
      for i = 0 to Clustering.num_clusters c - 1 do
        let exact = Clustering.strong_diameter c i in
        let est = Clustering.strong_diameter_estimate c i in
        (* both agree on connectivity; the estimate is a lower bound
           within a factor 2 *)
        if exact = -1 then ok := !ok && est = -1
        else ok := !ok && est <= exact && exact <= (2 * est) + 1;
        let wexact = Clustering.weak_diameter c i in
        let west = Clustering.weak_diameter_estimate c i in
        if wexact = -1 then ok := !ok && west = -1
        else ok := !ok && west <= wexact && wexact <= (2 * west) + 1
      done;
      !ok)

let prop_ls_transform_valid =
  QCheck.Test.make ~name:"theorem 2.1 over linial-saks is a valid strong carving"
    ~count:45
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 2 40) (int_range 3 25)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g =
        Gen.ensure_connected rng (Gen.erdos_renyi rng n (float_of_int pct /. 100.0))
      in
      let carving, _ = LsT.carve (Rng.create (seed + 1)) g ~epsilon:0.5 in
      is_ok (Carving.check_strong ~epsilon:0.5 carving))

let prop_ls_distributed_valid =
  QCheck.Test.make ~name:"distributed linial-saks is a valid weak carving"
    ~count:45
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 2 40) (int_range 3 25)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      let carving, _ = LsD.carve (Rng.create (seed + 1)) g ~epsilon:0.5 in
      is_ok (Carving.check_weak ~epsilon:0.5 carving))

let prop_mpx_distributed_matches =
  QCheck.Test.make ~name:"distributed mpx matches its centralized oracle"
    ~count:60
    (QCheck.make
       ~print:(fun (s, n, p, b) -> Printf.sprintf "seed=%d n=%d p=%d beta=%d/10" s n p b)
       QCheck.Gen.(
         quad (int_bound 50_000) (int_range 2 35) (int_range 4 30)
           (int_range 1 15)))
    (fun (seed, n, pct, b) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      MpxD.matches_reference ~seed g ~beta:(float_of_int b /. 10.0))

let prop_luby_valid =
  QCheck.Test.make ~name:"luby mis is independent and maximal" ~count:60
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 50_000) (int_range 2 40) (int_range 4 30)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      let mis, _ = Apps.Luby.run ~seed g in
      is_ok (Apps.Mis.check g mis))

let prop_io_roundtrip =
  QCheck.Test.make ~name:"edge-list IO roundtrips" ~count:50
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 0 40) (int_range 0 40)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      Graph.equal g (Io.of_edge_list (Io.to_edge_list g)))

let () =
  Alcotest.run "extensions"
    [
      ( "ls_trees",
        [
          Alcotest.test_case "contract" `Quick test_ls_trees_contract;
          Alcotest.test_case "roots may be nonmembers" `Quick
            test_ls_trees_roots_may_be_nonmembers;
          Alcotest.test_case "depth bounded" `Quick test_ls_trees_depth_bounded;
        ] );
      ( "ls_transform",
        [
          Alcotest.test_case "families" `Quick test_ls_transform_families;
          Alcotest.test_case "decompose" `Quick test_ls_transform_decompose;
          Alcotest.test_case "unknown n over ls93" `Quick
            test_ls_transform_unknown_n;
          Alcotest.test_case "beats deterministic on path" `Quick
            test_ls_transform_beats_deterministic_diameter_on_path;
        ] );
      ( "ls_distributed",
        [
          Alcotest.test_case "valid" `Quick test_ls_distributed_valid;
          Alcotest.test_case "message size" `Quick
            test_ls_distributed_message_size;
          Alcotest.test_case "anchors cost model" `Quick
            test_ls_distributed_anchors_cost_model;
          Alcotest.test_case "weak diameter" `Quick
            test_ls_distributed_weak_diameter;
          Alcotest.test_case "decompose end-to-end" `Quick
            test_ls_distributed_decompose;
          Alcotest.test_case "decompose er" `Quick
            test_ls_distributed_decompose_er;
        ] );
      ( "luby",
        [
          Alcotest.test_case "families" `Quick test_luby_families;
          Alcotest.test_case "rounds logarithmic" `Quick
            test_luby_rounds_logarithmic_shape;
          Alcotest.test_case "message size" `Quick test_luby_message_size;
          Alcotest.test_case "deterministic by seed" `Quick
            test_luby_deterministic_given_seed;
        ] );
      ( "mpx_distributed",
        [
          Alcotest.test_case "matches reference" `Quick
            test_mpx_distributed_matches_reference;
          Alcotest.test_case "valid partition" `Quick
            test_mpx_distributed_valid_partition;
          Alcotest.test_case "beta extremes" `Quick
            test_mpx_distributed_beta_extremes;
        ] );
      ( "barabasi_albert",
        [
          Alcotest.test_case "shape" `Quick test_ba_shape;
          Alcotest.test_case "validation" `Quick test_ba_validation;
        ] );
      ( "spanner",
        [
          Alcotest.test_case "families" `Quick test_spanner_families;
          Alcotest.test_case "sparse on dense" `Quick
            test_spanner_is_sparse_on_dense_graph;
          Alcotest.test_case "measured stretch" `Quick
            test_spanner_measured_stretch_within_bound;
          Alcotest.test_case "mpx decomposition" `Quick
            test_spanner_on_mpx_decomposition;
          Alcotest.test_case "rejects weak" `Quick
            test_spanner_rejects_weak_decomposition;
        ] );
      ( "expander_decomp",
        [
          Alcotest.test_case "families" `Quick test_expander_decomp_families;
          Alcotest.test_case "expander one cluster" `Quick
            test_expander_decomp_expander_is_one_cluster;
          Alcotest.test_case "cliques few cuts" `Quick
            test_expander_decomp_cliques_cut_few_edges;
          Alcotest.test_case "disconnected inputs" `Quick
            test_expander_decomp_covers_disconnected_inputs;
          Alcotest.test_case "internal conductance" `Quick
            test_expander_decomp_internal_conductance;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "isolated nodes" `Quick
            test_io_preserves_isolated_nodes;
          Alcotest.test_case "infers n" `Quick test_io_infers_n_without_header;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "dot output" `Quick test_io_dot_output;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_estimates_bracket_exact;
            prop_ls_transform_valid;
            prop_ls_distributed_valid;
            prop_mpx_distributed_matches;
            prop_luby_valid;
            prop_io_roundtrip;
          ] );
    ]
