open Dsgraph
module Clustering = Cluster.Clustering
module Steiner = Cluster.Steiner
module Carving = Cluster.Carving
module Decomposition = Cluster.Decomposition

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let is_ok = function Ok () -> true | Error _ -> false

let result_t = Alcotest.testable (fun fmt r ->
    match r with
    | Ok () -> Format.fprintf fmt "Ok"
    | Error e -> Format.fprintf fmt "Error %s" e)
    (fun a b -> is_ok a = is_ok b)

(* ------------------------------------------------------------------ *)
(* Clustering                                                           *)
(* ------------------------------------------------------------------ *)

let test_clustering_normalizes () =
  let g = Gen.path 5 in
  let c = Clustering.make g ~cluster_of:[| 7; 7; -1; 42; 42 |] in
  check int "num clusters" 2 (Clustering.num_clusters c);
  check int "first" 0 (Clustering.cluster_of c 0);
  check int "second" 1 (Clustering.cluster_of c 3);
  check int "unclustered" (-1) (Clustering.cluster_of c 2);
  Alcotest.(check (list int)) "members 0" [ 0; 1 ] (Clustering.members c 0);
  Alcotest.(check (list int)) "members 1" [ 3; 4 ] (Clustering.members c 1);
  check int "clustered count" 4 (Clustering.clustered_count c);
  Alcotest.(check (list int)) "unclustered" [ 2 ] (Clustering.unclustered c)

let test_clustering_length_mismatch () =
  let g = Gen.path 3 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Clustering.make: array length mismatch") (fun () ->
      ignore (Clustering.make g ~cluster_of:[| 0; 0 |]))

let test_clustering_adjacency () =
  let g = Gen.path 4 in
  let adjacent = Clustering.make g ~cluster_of:[| 0; 0; 1; 1 |] in
  check bool "adjacent" false (Clustering.non_adjacent adjacent);
  Alcotest.(check (list (pair int int)))
    "pair" [ (0, 1) ]
    (Clustering.adjacent_cluster_pairs adjacent);
  let separated = Clustering.make g ~cluster_of:[| 0; 0; -1; 1 |] in
  check bool "separated" true (Clustering.non_adjacent separated)

let test_clustering_largest () =
  let g = Gen.path 6 in
  let c = Clustering.make g ~cluster_of:[| 0; 0; 0; 1; 1; -1 |] in
  check int "largest" 0 (Clustering.largest_cluster c);
  Alcotest.(check (array int)) "sizes" [| 3; 2 |] (Clustering.sizes c)

let test_clustering_strong_diameter () =
  let g = Gen.cycle 8 in
  let c = Clustering.make g ~cluster_of:[| 0; 0; 0; -1; 1; 1; -1; 0 |] in
  (* cluster 0 = {0,1,2,7}: induced path 7-0-1-2 -> diameter 3 *)
  check int "arc diameter" 3 (Clustering.strong_diameter c 0);
  check int "pair" 1 (Clustering.strong_diameter c 1);
  check int "max strong" 3 (Clustering.max_strong_diameter c)

let test_clustering_disconnected_cluster () =
  let g = Gen.star 5 in
  let c = Clustering.make g ~cluster_of:[| -1; 0; 0; -1; -1 |] in
  check int "strong" (-1) (Clustering.strong_diameter c 0);
  check int "max strong" (-1) (Clustering.max_strong_diameter c);
  check int "weak through hub" 2 (Clustering.weak_diameter c 0);
  check int "max weak" 2 (Clustering.max_weak_diameter c)

let test_clustering_weak_diameter_masked () =
  let g = Gen.star 5 in
  let c = Clustering.make g ~cluster_of:[| -1; 0; 0; -1; -1 |] in
  (* excluding the hub from the host graph disconnects the leaves *)
  let within = Mask.of_list 5 [ 1; 2; 3; 4 ] in
  check int "masked weak" (-1) (Clustering.weak_diameter ~within c 0)

(* ------------------------------------------------------------------ *)
(* Steiner trees                                                        *)
(* ------------------------------------------------------------------ *)

let tree_path =
  (* path 0-1-2-3 rooted at 0 *)
  { Steiner.root = 0; parent = [ (0, 0); (1, 0); (2, 1); (3, 2) ] }

let test_steiner_depth () =
  check int "path depth" 3 (Steiner.depth tree_path);
  check int "singleton" 0 (Steiner.depth { Steiner.root = 5; parent = [ (5, 5) ] })

let test_steiner_nodes () =
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ] (Steiner.nodes tree_path)

let test_steiner_check_valid () =
  let g = Gen.path 4 in
  check result_t "valid" (Ok ())
    (Steiner.check g tree_path ~terminals:[ 0; 3 ])

let test_steiner_check_missing_terminal () =
  let g = Gen.path 5 in
  check bool "missing terminal rejected" false
    (is_ok (Steiner.check g tree_path ~terminals:[ 4 ]))

let test_steiner_check_non_edge () =
  let g = Gen.path 4 in
  let tree = { Steiner.root = 0; parent = [ (0, 0); (3, 0) ] } in
  check bool "non-edge rejected" false (is_ok (Steiner.check g tree ~terminals:[]))

let test_steiner_check_cycle () =
  let g = Gen.cycle 4 in
  let tree =
    { Steiner.root = 0; parent = [ (0, 0); (1, 2); (2, 1); (3, 0) ] }
  in
  check bool "cycle rejected" false (is_ok (Steiner.check g tree ~terminals:[]))

let test_steiner_check_missing_root () =
  let g = Gen.path 4 in
  let tree = { Steiner.root = 0; parent = [ (1, 0); (2, 1) ] } in
  check bool "missing root entry rejected" false
    (is_ok (Steiner.check g tree ~terminals:[ 1 ]))

let test_steiner_congestion () =
  let g = Gen.star 4 in
  (* two trees both using edge (0,1) *)
  let t1 = { Steiner.root = 0; parent = [ (0, 0); (1, 0) ] } in
  let t2 = { Steiner.root = 1; parent = [ (1, 1); (0, 1); (2, 0) ] } in
  check int "congestion" 2 (Steiner.congestion g [| t1; t2 |]);
  check int "single tree" 1 (Steiner.congestion g [| t1 |])

let test_steiner_forest_check () =
  let g = Gen.path 4 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; -1; 1 |] in
  let forest =
    [|
      { Steiner.root = 0; parent = [ (0, 0); (1, 0) ] };
      { Steiner.root = 3; parent = [ (3, 3) ] };
    |]
  in
  check result_t "forest ok" (Ok ())
    (Steiner.check_forest g forest ~clustering ~depth_bound:1
       ~congestion_bound:1);
  check bool "depth bound violation" false
    (is_ok
       (Steiner.check_forest g forest ~clustering ~depth_bound:0
          ~congestion_bound:1))

(* ------------------------------------------------------------------ *)
(* Carving                                                              *)
(* ------------------------------------------------------------------ *)

let test_carving_dead_fraction () =
  let g = Gen.path 4 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; -1; 1 |] in
  let carving = Carving.make clustering ~domain:(Mask.full 4) in
  Alcotest.(check (list int)) "dead" [ 2 ] (Carving.dead carving);
  check (Alcotest.float 1e-9) "fraction" 0.25 (Carving.dead_fraction carving)

let test_carving_domain_violation () =
  let g = Gen.path 4 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; -1; 1 |] in
  Alcotest.check_raises "outside domain"
    (Invalid_argument "Carving.make: clustered node outside domain") (fun () ->
      ignore (Carving.make clustering ~domain:(Mask.of_list 4 [ 0; 1; 2 ])))

let test_carving_check_strong () =
  let g = Gen.path 6 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; -1; 1; 1; 1 |] in
  let carving = Carving.make clustering ~domain:(Mask.full 6) in
  check result_t "ok" (Ok ())
    (Carving.check_strong ~epsilon:0.2 ~diameter_bound:2 carving);
  check bool "diameter bound" false
    (is_ok (Carving.check_strong ~diameter_bound:1 carving));
  check bool "epsilon bound" false
    (is_ok (Carving.check_strong ~epsilon:0.1 carving))

let test_carving_check_rejects_adjacent_clusters () =
  let g = Gen.path 4 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; 1; 1 |] in
  let carving = Carving.make clustering ~domain:(Mask.full 4) in
  check bool "adjacent rejected" false (is_ok (Carving.check_strong carving))

let test_carving_check_rejects_disconnected_cluster () =
  let g = Gen.star 5 in
  let clustering = Clustering.make g ~cluster_of:[| -1; 0; 0; -1; -1 |] in
  let carving = Carving.make clustering ~domain:(Mask.full 5) in
  check bool "weak ok" true (is_ok (Carving.check_weak carving));
  check bool "strong rejects" false (is_ok (Carving.check_strong carving))

let test_carving_check_weak_with_steiner () =
  let g = Gen.star 5 in
  let clustering = Clustering.make g ~cluster_of:[| -1; 0; 0; -1; -1 |] in
  let carving = Carving.make clustering ~domain:(Mask.full 5) in
  let forest =
    [| { Steiner.root = 1; parent = [ (1, 1); (0, 1); (2, 0) ] } |]
  in
  check result_t "weak with trees" (Ok ())
    (Carving.check_weak ~steiner:forest ~depth_bound:2 ~congestion_bound:1
       carving);
  check bool "tight depth fails" false
    (is_ok
       (Carving.check_weak ~steiner:forest ~depth_bound:1 ~congestion_bound:1
          carving))

let test_carving_empty_domain () =
  let g = Gen.path 3 in
  let clustering = Clustering.make g ~cluster_of:[| -1; -1; -1 |] in
  let carving = Carving.make clustering ~domain:(Mask.empty 3) in
  check (Alcotest.float 1e-9) "no dead fraction" 0.0
    (Carving.dead_fraction carving)

(* ------------------------------------------------------------------ *)
(* Decomposition                                                        *)
(* ------------------------------------------------------------------ *)

let test_decomposition_valid () =
  let g = Gen.path 6 in
  (* clusters {0,1} {2,3} {4,5}; alternate colors 0 1 0 *)
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; 1; 1; 2; 2 |] in
  let d = Decomposition.make clustering ~color_of_cluster:[| 0; 1; 0 |] in
  check int "colors" 2 (Decomposition.num_colors d);
  check result_t "valid" (Ok ()) (Decomposition.check d);
  check int "node color" 1 (Decomposition.color_of_node d 3);
  Alcotest.(check (list int)) "color 0 clusters" [ 0; 2 ]
    (Decomposition.clusters_of_color d 0)

let test_decomposition_rejects_same_color_adjacent () =
  let g = Gen.path 4 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; 1; 1 |] in
  let d = Decomposition.make clustering ~color_of_cluster:[| 0; 0 |] in
  check bool "same color adjacent" false (is_ok (Decomposition.check d))

let test_decomposition_rejects_unclustered () =
  let g = Gen.path 3 in
  let clustering = Clustering.make g ~cluster_of:[| 0; -1; 1 |] in
  let d = Decomposition.make clustering ~color_of_cluster:[| 0; 0 |] in
  check bool "unclustered node" false (is_ok (Decomposition.check d));
  (* ... unless the domain excludes it *)
  check bool "domain excuses" true
    (is_ok (Decomposition.check ~domain:(Mask.of_list 3 [ 0; 2 ]) d))

let test_decomposition_bounds () =
  let g = Gen.path 6 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; 1; 1; 2; 2 |] in
  let d = Decomposition.make clustering ~color_of_cluster:[| 0; 1; 0 |] in
  check bool "colors bound ok" true (is_ok (Decomposition.check ~colors_bound:2 d));
  check bool "colors bound tight" false
    (is_ok (Decomposition.check ~colors_bound:1 d));
  check bool "strong diameter ok" true
    (is_ok (Decomposition.check ~strong_diameter_bound:1 d));
  check bool "strong diameter tight" false
    (is_ok (Decomposition.check ~strong_diameter_bound:0 d))

let test_decomposition_quality () =
  let g = Gen.path 6 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; 0; 1; 1; 1 |] in
  let d = Decomposition.make clustering ~color_of_cluster:[| 0; 1 |] in
  let colors, strong, weak = Decomposition.quality d in
  check int "colors" 2 colors;
  check int "strong" 2 strong;
  check int "weak" 2 weak

let test_decomposition_rejects_negative_color () =
  let g = Gen.path 2 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0 |] in
  Alcotest.check_raises "negative color"
    (Invalid_argument "Decomposition.make: negative color") (fun () ->
      ignore (Decomposition.make clustering ~color_of_cluster:[| -1 |]))

(* ------------------------------------------------------------------ *)
(* Failure injection: corrupt a valid decomposition and expect reject   *)
(* ------------------------------------------------------------------ *)

(* Mutate real algorithm outputs and make sure the checkers notice. *)

let test_checker_catches_steiner_corruption () =
  let g = Gen.grid 6 6 in
  let r = Weakdiam.Weak_carving.carve g ~epsilon:0.5 in
  let forest = r.Weakdiam.Weak_carving.forest in
  let carving = r.Weakdiam.Weak_carving.carving in
  check bool "pristine accepted" true
    (is_ok (Carving.check_weak ~epsilon:0.5 ~steiner:forest carving));
  (* corrupt one tree: make a non-root entry its own parent (breaks the
     parent-chain-reaches-root invariant) *)
  let target =
    Array.to_list forest
    |> List.find_opt (fun t -> List.length t.Steiner.parent > 1)
  in
  match target with
  | None -> () (* all clusters are singletons: nothing to corrupt *)
  | Some victim ->
      let idx =
        let found = ref 0 in
        Array.iteri (fun i t -> if t == victim then found := i) forest;
        !found
      in
      let bad_parent =
        List.map
          (fun (v, p) -> if v <> victim.Steiner.root then (v, v) else (v, p))
          victim.Steiner.parent
      in
      let corrupted = Array.copy forest in
      corrupted.(idx) <- { victim with parent = bad_parent };
      check bool "corrupted rejected" false
        (is_ok (Carving.check_weak ~epsilon:0.5 ~steiner:corrupted carving))

let test_checker_catches_membership_corruption () =
  let g = Gen.grid 6 6 in
  let carving = Baseline.Greedy.carve g ~epsilon:0.5 in
  let clustering = carving.Carving.clustering in
  check bool "pristine accepted" true (is_ok (Carving.check_strong carving));
  (* move one node into a non-adjacent foreign cluster *)
  let cluster_of =
    Array.init (Graph.n g) (fun v -> Clustering.cluster_of clustering v)
  in
  if Clustering.num_clusters clustering >= 2 then begin
    let a = List.hd (Clustering.members clustering 0) in
    cluster_of.(a) <- 1;
    let mutated =
      Carving.make (Clustering.make g ~cluster_of) ~domain:(Mask.full (Graph.n g))
    in
    (* either the cluster is now disconnected or two clusters touch *)
    check bool "mutated rejected" false (is_ok (Carving.check_strong mutated))
  end

let test_checker_catches_color_corruption () =
  let g = Gen.cycle 6 in
  let clustering = Clustering.make g ~cluster_of:[| 0; 0; 1; 1; 2; 2 |] in
  let good = Decomposition.make clustering ~color_of_cluster:[| 0; 1; 2 |] in
  check bool "good" true (is_ok (Decomposition.check good));
  (* all-same color must fail: clusters 0 and 1 are adjacent *)
  let bad = Decomposition.make clustering ~color_of_cluster:[| 0; 0; 0 |] in
  check bool "bad" false (is_ok (Decomposition.check bad))

let () =
  Alcotest.run "cluster"
    [
      ( "clustering",
        [
          Alcotest.test_case "normalizes" `Quick test_clustering_normalizes;
          Alcotest.test_case "length mismatch" `Quick
            test_clustering_length_mismatch;
          Alcotest.test_case "adjacency" `Quick test_clustering_adjacency;
          Alcotest.test_case "largest" `Quick test_clustering_largest;
          Alcotest.test_case "strong diameter" `Quick
            test_clustering_strong_diameter;
          Alcotest.test_case "disconnected cluster" `Quick
            test_clustering_disconnected_cluster;
          Alcotest.test_case "weak diameter masked" `Quick
            test_clustering_weak_diameter_masked;
        ] );
      ( "steiner",
        [
          Alcotest.test_case "depth" `Quick test_steiner_depth;
          Alcotest.test_case "nodes" `Quick test_steiner_nodes;
          Alcotest.test_case "check valid" `Quick test_steiner_check_valid;
          Alcotest.test_case "missing terminal" `Quick
            test_steiner_check_missing_terminal;
          Alcotest.test_case "non edge" `Quick test_steiner_check_non_edge;
          Alcotest.test_case "cycle" `Quick test_steiner_check_cycle;
          Alcotest.test_case "missing root" `Quick
            test_steiner_check_missing_root;
          Alcotest.test_case "congestion" `Quick test_steiner_congestion;
          Alcotest.test_case "forest check" `Quick test_steiner_forest_check;
        ] );
      ( "carving",
        [
          Alcotest.test_case "dead fraction" `Quick test_carving_dead_fraction;
          Alcotest.test_case "domain violation" `Quick
            test_carving_domain_violation;
          Alcotest.test_case "check strong" `Quick test_carving_check_strong;
          Alcotest.test_case "rejects adjacent clusters" `Quick
            test_carving_check_rejects_adjacent_clusters;
          Alcotest.test_case "rejects disconnected cluster" `Quick
            test_carving_check_rejects_disconnected_cluster;
          Alcotest.test_case "weak with steiner" `Quick
            test_carving_check_weak_with_steiner;
          Alcotest.test_case "empty domain" `Quick test_carving_empty_domain;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "valid" `Quick test_decomposition_valid;
          Alcotest.test_case "same color adjacent" `Quick
            test_decomposition_rejects_same_color_adjacent;
          Alcotest.test_case "unclustered" `Quick
            test_decomposition_rejects_unclustered;
          Alcotest.test_case "bounds" `Quick test_decomposition_bounds;
          Alcotest.test_case "quality" `Quick test_decomposition_quality;
          Alcotest.test_case "negative color" `Quick
            test_decomposition_rejects_negative_color;
          Alcotest.test_case "catches corruption" `Quick
            test_checker_catches_color_corruption;
          Alcotest.test_case "catches steiner corruption" `Quick
            test_checker_catches_steiner_corruption;
          Alcotest.test_case "catches membership corruption" `Quick
            test_checker_catches_membership_corruption;
        ] );
    ]
