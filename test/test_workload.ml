(* Tests for the workload/measurement harness itself: family generators at
   several sizes, the algorithm registry, measurement rows (validity
   verdicts included), the theory formulas, and the CSV writers. *)

open Dsgraph
module Suite = Workload.Suite
module Algorithms = Workload.Algorithms
module Measure = Workload.Measure
module Theory = Workload.Theory

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Suite                                                                *)
(* ------------------------------------------------------------------ *)

let test_families_build () =
  List.iter
    (fun (fam : Suite.family) ->
      List.iter
        (fun n ->
          let g = fam.Suite.build ~seed:7 ~n in
          check bool
            (Printf.sprintf "%s n=%d nonempty" fam.Suite.name n)
            true (Graph.n g > 0);
          (* size should be in the requested ballpark *)
          check bool
            (Printf.sprintf "%s n=%d size %d in ballpark" fam.Suite.name n
               (Graph.n g))
            true
            (Graph.n g >= n / 4 && Graph.n g <= (3 * n) + 8))
        [ 64; 256 ])
    Suite.all

let test_families_deterministic () =
  List.iter
    (fun (fam : Suite.family) ->
      let a = fam.Suite.build ~seed:3 ~n:128 in
      let b = fam.Suite.build ~seed:3 ~n:128 in
      check bool (fam.Suite.name ^ " deterministic") true (Graph.equal a b))
    Suite.all

let test_core_families_connected () =
  List.iter
    (fun (fam : Suite.family) ->
      let g = fam.Suite.build ~seed:5 ~n:200 in
      check bool (fam.Suite.name ^ " connected") true (Components.is_connected g))
    Suite.core

let test_find_family () =
  check Alcotest.string "grid found" "grid" (Suite.find "grid").Suite.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Suite.find "nope"))

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let test_registry_names_unique () =
  let names = List.map (fun (d : Algorithms.decomposer) -> d.name) Algorithms.decomposers in
  check int "unique decomposer names" (List.length names)
    (List.length (List.sort_uniq compare names));
  let cnames = List.map (fun (c : Algorithms.carver) -> c.name) Algorithms.carvers in
  check int "unique carver names" (List.length cnames)
    (List.length (List.sort_uniq compare cnames))

let test_registry_contains_paper_rows () =
  List.iter
    (fun name -> ignore (Algorithms.find_decomposer name))
    [ "ls93"; "rg20"; "ggr21"; "mpx"; "abcp96"; "thm2.3"; "thm3.4"; "thm2.1+ls" ];
  List.iter
    (fun name -> ignore (Algorithms.find_carver name))
    [ "ls93"; "rg20"; "ggr21"; "mpx"; "thm2.2"; "thm3.3"; "thm2.1+ls" ]

(* ------------------------------------------------------------------ *)
(* Measurement rows                                                     *)
(* ------------------------------------------------------------------ *)

let test_decomposition_rows_valid () =
  List.iter
    (fun name ->
      let d = Algorithms.find_decomposer name in
      let row = Measure.decomposition_row ~seed:11 d Suite.grid ~n:100 in
      check bool (name ^ " row valid") true row.Measure.valid;
      check bool (name ^ " rounds positive") true (row.Measure.rounds > 0))
    [ "ls93"; "ggr21"; "mpx"; "greedy"; "thm2.3"; "thm3.4" ]

let test_carving_rows_valid () =
  List.iter
    (fun name ->
      let c = Algorithms.find_carver name in
      let row = Measure.carving_row ~seed:11 c Suite.path ~n:128 ~epsilon:0.5 in
      check bool (name ^ " row valid") true row.Measure.valid;
      check bool (name ^ " dead within eps") true
        (row.Measure.dead_fraction <= 0.5 +. 1e-9))
    [ "ls93"; "rg20"; "ggr21"; "mpx"; "thm2.2"; "thm3.3" ]

let test_csv_shape () =
  let d = Algorithms.find_decomposer "greedy" in
  let rows =
    [
      Measure.decomposition_row ~seed:1 d Suite.grid ~n:64;
      Measure.decomposition_row ~seed:1 d Suite.path ~n:64;
    ]
  in
  let csv = Measure.decomp_csv rows in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check int "header + 2 rows" 3 (List.length lines);
  check bool "header fields" true
    (String.length (List.hd lines) > 0
    && String.split_on_char ',' (List.hd lines) |> List.length = 14)

(* ------------------------------------------------------------------ *)
(* Theory formulas                                                      *)
(* ------------------------------------------------------------------ *)

let test_theory_ordering () =
  (* at any fixed n and eps, the paper's Table 2 diameter hierarchy holds
     between the formulas themselves *)
  let n = 4096 and epsilon = 0.5 in
  let d name =
    (Theory.find Theory.carving_rows name).Theory.diameter ~n ~epsilon
  in
  check bool "mpx <= ggr21" true (d "mpx" <= d "ggr21");
  check bool "ggr21 <= rg20" true (d "ggr21" <= d "rg20");
  check bool "thm3.3 <= thm2.2" true (d "thm3.3" <= d "thm2.2")

let test_theory_epsilon_scaling () =
  let row = Theory.find Theory.carving_rows "thm2.2" in
  let a = row.Theory.rounds ~n:1024 ~epsilon:0.5 in
  let b = row.Theory.rounds ~n:1024 ~epsilon:0.25 in
  (* rounds scale as 1/eps^2 *)
  check (Alcotest.float 1e-6) "eps^-2 scaling" 4.0 (b /. a)

let test_theory_ratio () =
  let row = Theory.find Theory.carving_rows "ls93" in
  let formula = row.Theory.diameter ~n:1024 ~epsilon:0.5 in
  let r = Theory.ratio row `Diameter ~n:1024 ~epsilon:0.5 ~measured:20 in
  check (Alcotest.float 1e-9) "ratio" (20.0 /. formula) r

let () =
  Alcotest.run "workload"
    [
      ( "suite",
        [
          Alcotest.test_case "families build" `Quick test_families_build;
          Alcotest.test_case "deterministic" `Quick test_families_deterministic;
          Alcotest.test_case "core connected" `Quick test_core_families_connected;
          Alcotest.test_case "find" `Quick test_find_family;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unique names" `Quick test_registry_names_unique;
          Alcotest.test_case "paper rows present" `Quick
            test_registry_contains_paper_rows;
        ] );
      ( "measure",
        [
          Alcotest.test_case "decomposition rows" `Quick
            test_decomposition_rows_valid;
          Alcotest.test_case "carving rows" `Quick test_carving_rows_valid;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
        ] );
      ( "theory",
        [
          Alcotest.test_case "ordering" `Quick test_theory_ordering;
          Alcotest.test_case "epsilon scaling" `Quick test_theory_epsilon_scaling;
          Alcotest.test_case "ratio" `Quick test_theory_ratio;
        ] );
    ]
