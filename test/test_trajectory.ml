(* Tests for Workload.Trajectory: the BENCH_trajectory.json snapshot
   format and the >10% regression comparator, with the edge cases CI
   depends on — rows missing from the baseline, rows removed since the
   baseline, zero-valued baselines, and baselines predating the resource
   columns must all be skipped, never flagged and never a crash. *)

module T = Workload.Trajectory

let check = Alcotest.check
let int = Alcotest.int

let entry ?(rounds = 100) ?(messages = 5000) ?(max_bits = 64) ?(phases = 4)
    ?(seconds = 0.5) ?(minor_words = 1000.0) ?(peak_mb = 12.0) name =
  {
    T.name;
    rounds;
    messages;
    max_bits;
    phases;
    seconds;
    minor_words_per_node = minor_words;
    peak_heap_mb = peak_mb;
  }

let compare_entries olds news =
  T.compare_lines
    ~old_line:(T.snapshot_json ~time:0.0 olds)
    ~new_line:(T.snapshot_json ~time:1.0 news)
    ()

let metric_names regs =
  List.sort_uniq compare (List.map (fun r -> r.T.r_metric) regs)

(* ------------------------------------------------------------------ *)

let test_no_regression_on_identical () =
  let es = [ entry "grid"; entry "expander" ] in
  check int "identical snapshots" 0 (List.length (compare_entries es es))

let test_flags_seeded_allocation_regression () =
  (* the acceptance-criteria case: a >10% minor-allocation regression
     seeded on purpose must be flagged on the new resource column *)
  let old_e = [ entry "grid" ~minor_words:1000.0 ] in
  let new_e = [ entry "grid" ~minor_words:1150.0 ] in
  let regs = compare_entries old_e new_e in
  check int "one regression" 1 (List.length regs);
  let r = List.hd regs in
  check Alcotest.string "metric" "minor_words_per_node" r.T.r_metric;
  check Alcotest.string "workload" "grid" r.T.r_name;
  Alcotest.(check bool) "pct is +15%" true (abs_float (r.T.r_pct -. 15.0) < 0.01);
  Alcotest.(check string)
    "rendered shape" "regression: grid minor_words_per_node: 1000 -> 1150 (+15.0%)"
    (T.regression_line r)

let test_exactly_ten_percent_not_flagged () =
  let regs =
    compare_entries [ entry "g" ~rounds:100 ] [ entry "g" ~rounds:110 ]
  in
  check int "10% is the fence, not inside it" 0 (List.length regs)

let test_missing_baseline_row () =
  (* workload present in the new snapshot but absent from the baseline:
     nothing to diff against, so nothing is flagged *)
  let regs =
    compare_entries [ entry "old_only" ]
      [ entry "brand_new" ~rounds:999999 ~minor_words:1e9 ]
  in
  check int "new row skipped" 0 (List.length regs)

let test_removed_row () =
  (* workload in the baseline but gone from the new snapshot: also not
     a regression (and must not crash the parser) *)
  let regs = compare_entries [ entry "gone"; entry "kept" ] [ entry "kept" ] in
  check int "removed row skipped" 0 (List.length regs)

let test_zero_valued_baseline () =
  (* zero (or negative) baselines make the percentage meaningless:
     skipped even though the new value is positive *)
  let old_e = [ entry "z" ~messages:0 ~seconds:0.0 ~peak_mb:0.0 ] in
  let new_e = [ entry "z" ~messages:100000 ~seconds:9.9 ~peak_mb:512.0 ] in
  check int "zero baselines skipped" 0 (List.length (compare_entries old_e new_e))

let test_baseline_predating_resource_columns () =
  (* a trajectory line written before the resource columns existed:
     logical metrics still gate, resource metrics are skipped *)
  let old_line =
    "{\"time\":0,\"workloads\":[{\"name\":\"grid\",\"rounds\":100,\
     \"messages\":5000,\"max_bits\":64,\"phases\":4}]}"
  in
  let new_line =
    T.snapshot_json ~time:1.0
      [ entry "grid" ~rounds:150 ~seconds:99.0 ~minor_words:1e9 ~peak_mb:4096.0 ]
  in
  let regs = T.compare_lines ~old_line ~new_line () in
  check
    Alcotest.(list string)
    "only the logical metric fires" [ "rounds" ] (metric_names regs)

let test_resource_columns_gate () =
  (* all three resource columns are part of the default gate *)
  let old_e = [ entry "g" ] in
  let new_e =
    [ entry "g" ~seconds:0.7 ~minor_words:2000.0 ~peak_mb:20.0 ]
  in
  check
    Alcotest.(list string)
    "resource regressions flagged"
    [ "minor_words_per_node"; "peak_heap_mb"; "seconds" ]
    (metric_names (compare_entries old_e new_e))

let test_metrics_filter () =
  let old_e = [ entry "g" ~rounds:100 ~minor_words:1000.0 ] in
  let new_e = [ entry "g" ~rounds:200 ~minor_words:2000.0 ] in
  let regs =
    T.compare_lines ~metrics:[ "rounds" ]
      ~old_line:(T.snapshot_json ~time:0.0 old_e)
      ~new_line:(T.snapshot_json ~time:1.0 new_e)
      ()
  in
  check Alcotest.(list string) "only requested metric" [ "rounds" ]
    (metric_names regs)

let test_write_read_roundtrip () =
  let path = Filename.temp_file "trajectory" ".json" in
  let lines =
    [
      T.snapshot_json ~time:1.0 [ entry "a" ];
      T.snapshot_json ~time:2.0 [ entry "a" ~rounds:120 ];
    ]
  in
  T.write path lines;
  let back = T.read_snapshot_lines path in
  Sys.remove path;
  check int "both snapshots back" 2 (List.length back);
  Alcotest.(check (list string)) "lines survive verbatim" lines back;
  check int "missing file reads empty" 0
    (List.length (T.read_snapshot_lines path))

let () =
  Alcotest.run "trajectory"
    [
      ( "comparator",
        [
          Alcotest.test_case "identical snapshots clean" `Quick
            test_no_regression_on_identical;
          Alcotest.test_case "seeded allocation regression flagged" `Quick
            test_flags_seeded_allocation_regression;
          Alcotest.test_case "exactly 10% not flagged" `Quick
            test_exactly_ten_percent_not_flagged;
          Alcotest.test_case "missing baseline row skipped" `Quick
            test_missing_baseline_row;
          Alcotest.test_case "removed row skipped" `Quick test_removed_row;
          Alcotest.test_case "zero-valued baseline skipped" `Quick
            test_zero_valued_baseline;
          Alcotest.test_case "pre-resource baseline tolerated" `Quick
            test_baseline_predating_resource_columns;
          Alcotest.test_case "resource columns gate" `Quick
            test_resource_columns_gate;
          Alcotest.test_case "metrics filter respected" `Quick
            test_metrics_filter;
          Alcotest.test_case "write/read round-trip" `Quick
            test_write_read_roundtrip;
        ] );
    ]
