(* Tests for Workload.Trajectory: the BENCH_trajectory.json snapshot
   format and the >10% regression comparator, with the edge cases CI
   depends on — rows missing from the baseline, rows removed since the
   baseline, zero-valued baselines, and baselines predating the resource
   columns must all be skipped, never flagged and never a crash. *)

module T = Workload.Trajectory

let check = Alcotest.check
let int = Alcotest.int

let entry ?(rounds = 100) ?(messages = 5000) ?(max_bits = 64) ?(phases = 4)
    ?(seconds = 0.5) ?(mad = 0.0) ?(minor_words = 1000.0) ?(peak_mb = 12.0)
    name =
  {
    T.name;
    rounds;
    messages;
    max_bits;
    phases;
    seconds;
    seconds_mad = mad;
    minor_words_per_node = minor_words;
    peak_heap_mb = peak_mb;
  }

let compare_entries olds news =
  T.compare_lines
    ~old_line:(T.snapshot_json ~time:0.0 olds)
    ~new_line:(T.snapshot_json ~time:1.0 news)
    ()

let metric_names regs =
  List.sort_uniq compare (List.map (fun r -> r.T.r_metric) regs)

(* ------------------------------------------------------------------ *)

let test_no_regression_on_identical () =
  let es = [ entry "grid"; entry "expander" ] in
  check int "identical snapshots" 0 (List.length (compare_entries es es))

let test_flags_seeded_allocation_regression () =
  (* the acceptance-criteria case: a >10% minor-allocation regression
     seeded on purpose must be flagged on the new resource column *)
  let old_e = [ entry "grid" ~minor_words:1000.0 ] in
  let new_e = [ entry "grid" ~minor_words:1150.0 ] in
  let regs = compare_entries old_e new_e in
  check int "one regression" 1 (List.length regs);
  let r = List.hd regs in
  check Alcotest.string "metric" "minor_words_per_node" r.T.r_metric;
  check Alcotest.string "workload" "grid" r.T.r_name;
  Alcotest.(check bool) "pct is +15%" true (abs_float (r.T.r_pct -. 15.0) < 0.01);
  Alcotest.(check string)
    "rendered shape" "regression: grid minor_words_per_node: 1000 -> 1150 (+15.0%)"
    (T.regression_line r)

let test_exactly_ten_percent_not_flagged () =
  let regs =
    compare_entries [ entry "g" ~rounds:100 ] [ entry "g" ~rounds:110 ]
  in
  check int "10% is the fence, not inside it" 0 (List.length regs)

let test_missing_baseline_row () =
  (* workload present in the new snapshot but absent from the baseline:
     nothing to diff against, so nothing is flagged *)
  let regs =
    compare_entries [ entry "old_only" ]
      [ entry "brand_new" ~rounds:999999 ~minor_words:1e9 ]
  in
  check int "new row skipped" 0 (List.length regs)

let test_removed_row () =
  (* workload in the baseline but gone from the new snapshot: also not
     a regression (and must not crash the parser) *)
  let regs = compare_entries [ entry "gone"; entry "kept" ] [ entry "kept" ] in
  check int "removed row skipped" 0 (List.length regs)

let test_zero_valued_baseline () =
  (* zero (or negative) baselines make the percentage meaningless:
     skipped even though the new value is positive *)
  let old_e = [ entry "z" ~messages:0 ~seconds:0.0 ~peak_mb:0.0 ] in
  let new_e = [ entry "z" ~messages:100000 ~seconds:9.9 ~peak_mb:512.0 ] in
  check int "zero baselines skipped" 0 (List.length (compare_entries old_e new_e))

let test_baseline_predating_resource_columns () =
  (* a trajectory line written before the resource columns existed:
     logical metrics still gate, resource metrics are skipped *)
  let old_line =
    "{\"time\":0,\"workloads\":[{\"name\":\"grid\",\"rounds\":100,\
     \"messages\":5000,\"max_bits\":64,\"phases\":4}]}"
  in
  let new_line =
    T.snapshot_json ~time:1.0
      [ entry "grid" ~rounds:150 ~seconds:99.0 ~minor_words:1e9 ~peak_mb:4096.0 ]
  in
  let regs = T.compare_lines ~old_line ~new_line () in
  check
    Alcotest.(list string)
    "only the logical metric fires" [ "rounds" ] (metric_names regs)

let test_resource_columns_gate () =
  (* all three resource columns are part of the default gate *)
  let old_e = [ entry "g" ] in
  let new_e =
    [ entry "g" ~seconds:0.7 ~minor_words:2000.0 ~peak_mb:20.0 ]
  in
  check
    Alcotest.(list string)
    "resource regressions flagged"
    [ "minor_words_per_node"; "peak_heap_mb"; "seconds" ]
    (metric_names (compare_entries old_e new_e))

let test_metrics_filter () =
  let old_e = [ entry "g" ~rounds:100 ~minor_words:1000.0 ] in
  let new_e = [ entry "g" ~rounds:200 ~minor_words:2000.0 ] in
  let regs =
    T.compare_lines ~metrics:[ "rounds" ]
      ~old_line:(T.snapshot_json ~time:0.0 old_e)
      ~new_line:(T.snapshot_json ~time:1.0 new_e)
      ()
  in
  check Alcotest.(list string) "only requested metric" [ "rounds" ]
    (metric_names regs)

let test_mad_widens_seconds_gate () =
  (* +24% on seconds clears the 10% gate, but the recorded MAD says the
     measurement is that noisy: 3*0.05 = 0.15 > 0.12 delta, so the
     MAD-aware comparator stays quiet where the naive one would flag *)
  let old_e = [ entry "g" ~seconds:0.5 ~mad:0.05 ] in
  let new_e = [ entry "g" ~seconds:0.62 ~mad:0.05 ] in
  check int "within noise" 0 (List.length (compare_entries old_e new_e));
  let regs =
    compare_entries [ entry "g" ~seconds:0.5 ] [ entry "g" ~seconds:0.62 ]
  in
  check Alcotest.(list string) "same delta without MAD flags" [ "seconds" ]
    (metric_names regs)

let test_seconds_absolute_floor () =
  (* the bench record x3 acceptance case: +16.7% on a 0.6ms headline is
     quantization noise, not a regression — seconds must also clear the
     5ms absolute floor *)
  let old_e = [ entry "g" ~seconds:0.0006 ] in
  let new_e = [ entry "g" ~seconds:0.0007 ] in
  check int "sub-floor jitter ignored" 0
    (List.length (compare_entries old_e new_e))

let test_mad_taken_from_either_side () =
  (* only the new side recorded a MAD (baseline predates the stats
     runner): the larger of the two sides still widens the gate *)
  let old_e = [ entry "g" ~seconds:0.5 ] in
  let new_e = [ entry "g" ~seconds:0.62 ~mad:0.05 ] in
  check int "new-side MAD widens" 0 (List.length (compare_entries old_e new_e))

let fp ?(sha = "abc123") () =
  {
    Workload.Stats.git_sha = sha;
    ocaml_version = "5.1.1";
    word_size = 64;
    flambda = false;
    hostname = "ci";
  }

let test_fingerprint_refusal () =
  (* same tree, wildly different numbers, but the fingerprints differ:
     the verdict is Incomparable, never a phantom regression list *)
  let old_line = T.snapshot_json ~fingerprint:(fp ()) ~time:0.0 [ entry "g" ] in
  let new_line =
    T.snapshot_json ~fingerprint:(fp ~sha:"def456" ()) ~time:1.0
      [ entry "g" ~rounds:900 ~seconds:9.0 ]
  in
  (match T.compare_snapshots ~old_line ~new_line () with
  | T.Incomparable { old_fp; new_fp } ->
      Alcotest.(check bool)
        "old fp carries its sha" true
        (Workload.Stats.fingerprint_of_json old_fp
        = Some (fp ()))
      ;
      Alcotest.(check bool)
        "new fp carries its sha" true
        (Workload.Stats.fingerprint_of_json new_fp
        = Some (fp ~sha:"def456" ()))
  | T.Regressions _ -> Alcotest.fail "cross-fingerprint compare not refused");
  (* identical fingerprints compare as usual *)
  match
    T.compare_snapshots ~old_line
      ~new_line:
        (T.snapshot_json ~fingerprint:(fp ()) ~time:1.0
           [ entry "g" ~rounds:900 ])
      ()
  with
  | T.Regressions regs ->
      check Alcotest.(list string) "same fp gates" [ "rounds" ]
        (metric_names regs)
  | T.Incomparable _ -> Alcotest.fail "same-fingerprint compare refused"

let test_missing_fingerprint_still_compares () =
  (* pre-observatory baselines carry no fingerprint: history must stay
     comparable rather than be orphaned wholesale *)
  let old_line = T.snapshot_json ~time:0.0 [ entry "g" ] in
  let new_line =
    T.snapshot_json ~fingerprint:(fp ()) ~time:1.0 [ entry "g" ~rounds:900 ]
  in
  match T.compare_snapshots ~old_line ~new_line () with
  | T.Regressions regs ->
      check Alcotest.(list string) "still gates" [ "rounds" ]
        (metric_names regs)
  | T.Incomparable _ -> Alcotest.fail "fingerprint-less baseline refused"

let test_fingerprint_json_roundtrip () =
  let line = T.snapshot_json ~fingerprint:(fp ()) ~time:7.0 [ entry "a" ] in
  (match T.fingerprint_of_line line with
  | None -> Alcotest.fail "fingerprint object not found in snapshot line"
  | Some raw ->
      Alcotest.(check bool)
        "roundtrips through json" true
        (Workload.Stats.fingerprint_of_json raw = Some (fp ())));
  check Alcotest.(option string) "absent stays absent" None
    (T.fingerprint_of_line (T.snapshot_json ~time:7.0 [ entry "a" ]))

let test_malformed_line_warned_and_skipped () =
  (* a hand-edited (or truncated) trajectory file: the good snapshots
     survive, the bad line is reported with its 1-based line number *)
  let path = Filename.temp_file "trajectory" ".json" in
  let good1 = T.snapshot_json ~time:1.0 [ entry "a" ] in
  let good2 = T.snapshot_json ~time:2.0 [ entry "a" ~rounds:120 ] in
  let oc = open_out path in
  output_string oc
    (String.concat "\n"
       [ "["; good1 ^ ","; "{\"time\":3,\"workloads\":[{\"trunca"; good2; "]" ]);
  close_out oc;
  let warned = ref [] in
  let back =
    T.read_snapshot_lines
      ~warn:(fun ~line_number line -> warned := (line_number, line) :: !warned)
      path
  in
  Sys.remove path;
  Alcotest.(check (list string)) "good snapshots survive" [ good1; good2 ] back;
  match !warned with
  | [ (line_number, line) ] ->
      check int "1-based line number" 3 line_number;
      Alcotest.(check bool)
        "offending content reported" true
        (String.length line > 0 && line.[0] = '{')
  | ws -> Alcotest.fail (Printf.sprintf "expected 1 warning, got %d" (List.length ws))

let test_write_read_roundtrip () =
  let path = Filename.temp_file "trajectory" ".json" in
  let lines =
    [
      T.snapshot_json ~time:1.0 [ entry "a" ];
      T.snapshot_json ~time:2.0 [ entry "a" ~rounds:120 ];
    ]
  in
  T.write path lines;
  let back = T.read_snapshot_lines path in
  Sys.remove path;
  check int "both snapshots back" 2 (List.length back);
  Alcotest.(check (list string)) "lines survive verbatim" lines back;
  check int "missing file reads empty" 0
    (List.length (T.read_snapshot_lines path))

let () =
  Alcotest.run "trajectory"
    [
      ( "comparator",
        [
          Alcotest.test_case "identical snapshots clean" `Quick
            test_no_regression_on_identical;
          Alcotest.test_case "seeded allocation regression flagged" `Quick
            test_flags_seeded_allocation_regression;
          Alcotest.test_case "exactly 10% not flagged" `Quick
            test_exactly_ten_percent_not_flagged;
          Alcotest.test_case "missing baseline row skipped" `Quick
            test_missing_baseline_row;
          Alcotest.test_case "removed row skipped" `Quick test_removed_row;
          Alcotest.test_case "zero-valued baseline skipped" `Quick
            test_zero_valued_baseline;
          Alcotest.test_case "pre-resource baseline tolerated" `Quick
            test_baseline_predating_resource_columns;
          Alcotest.test_case "resource columns gate" `Quick
            test_resource_columns_gate;
          Alcotest.test_case "metrics filter respected" `Quick
            test_metrics_filter;
          Alcotest.test_case "MAD widens the seconds gate" `Quick
            test_mad_widens_seconds_gate;
          Alcotest.test_case "seconds absolute floor" `Quick
            test_seconds_absolute_floor;
          Alcotest.test_case "MAD taken from either side" `Quick
            test_mad_taken_from_either_side;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "cross-fingerprint compare refused" `Quick
            test_fingerprint_refusal;
          Alcotest.test_case "fingerprint-less baseline compares" `Quick
            test_missing_fingerprint_still_compares;
          Alcotest.test_case "fingerprint json round-trip" `Quick
            test_fingerprint_json_roundtrip;
        ] );
      ( "file",
        [
          Alcotest.test_case "malformed line warned and skipped" `Quick
            test_malformed_line_warned_and_skipped;
          Alcotest.test_case "write/read round-trip" `Quick
            test_write_read_roundtrip;
        ] );
    ]
