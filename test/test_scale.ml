(* Scale tests: the same invariants as the unit suites, on instances one to
   two orders of magnitude larger, so size-dependent bugs (overflow,
   quadratic blowups, recursion depth, accounting drift) surface. Each case
   is kept under a few seconds. *)

open Dsgraph
module Carving = Cluster.Carving
module Clustering = Cluster.Clustering
module Decomposition = Cluster.Decomposition

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let fail_on_error = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "checker rejected: %s" e

let test_thm23_path_8192 () =
  let g = Gen.path 8192 in
  let d = Strongdecomp.Netdecomp.strong g in
  fail_on_error (Decomposition.check d);
  let diam = Clustering.max_strong_diameter_estimate (Decomposition.clustering d) in
  check bool "clusters far below n" true (diam >= 1 && diam < 2048)

let test_thm34_path_4096 () =
  let g = Gen.path 4096 in
  let d = Strongdecomp.Netdecomp.strong_improved g in
  fail_on_error (Decomposition.check d);
  let d34 = Clustering.max_strong_diameter_estimate (Decomposition.clustering d) in
  (* the improved diameter stays near its n=1024 value (log^2-shaped) *)
  check bool "log^2-shaped diameter" true (d34 >= 1 && d34 <= 400)

let test_weak_carving_grid_4096 () =
  let g = Gen.grid 64 64 in
  List.iter
    (fun preset ->
      let r = Weakdiam.Weak_carving.carve ~preset g ~epsilon:0.5 in
      let b = Congest.Bits.id_bits ~n:4096 in
      fail_on_error
        (Carving.check_weak ~epsilon:0.5 ~steiner:r.forest
           ~congestion_bound:(b + 1) r.carving))
    [ Weakdiam.Weak_carving.Rg20; Weakdiam.Weak_carving.Ggr21 ]

let test_sparse_cut_path_10000 () =
  let g = Gen.path 10_000 in
  match Strongdecomp.Sparse_cut.run ~epsilon:0.5 g ~domain:(Mask.full 10_000) with
  | Strongdecomp.Sparse_cut.Cut { v1; v2; removed } ->
      check int "partition" 10_000
        (List.length v1 + List.length v2 + List.length removed);
      check bool "thin separator" true (List.length removed <= 3)
  | Strongdecomp.Sparse_cut.Component _ ->
      Alcotest.fail "expected a cut on a long path"

let test_improve_barbell_2000 () =
  let g = Gen.barbell 900 200 in
  let carving, _ = Strongdecomp.Strong_carving.carve_improved g ~epsilon:0.5 in
  fail_on_error (Carving.check_strong ~epsilon:0.5 carving)

let test_mpx_expander_4096 () =
  let g = Gen.expander (Rng.create 2) 4096 in
  let carving = Baseline.Mpx.carve (Rng.create 3) g ~epsilon:0.5 in
  fail_on_error (Carving.check_strong ~epsilon:0.5 carving)

let test_ls_grid_4096 () =
  let g = Gen.grid 64 64 in
  let carving = Baseline.Linial_saks.carve (Rng.create 4) g ~epsilon:0.5 in
  fail_on_error (Carving.check_weak ~epsilon:0.5 carving)

let test_edge_carving_torus_4096 () =
  let g = Gen.torus 64 64 in
  let r = Strongdecomp.Edge_carving.carve g ~epsilon:0.25 in
  fail_on_error (Strongdecomp.Edge_carving.check r ~epsilon:0.25 g)

let test_barrier_8192 () =
  let g = Strongdecomp.Barrier.build (Rng.create 5) ~target_n:8192 in
  let a = Strongdecomp.Barrier.analyze ~epsilon:0.5 g in
  (* either branch must pay at its scale *)
  (match a.Strongdecomp.Barrier.outcome with
  | `Component ->
      check bool "diameter at the log^2 scale" true
        (float_of_int a.u_diameter >= 0.5 *. a.diameter_scale)
  | `Cut ->
      check bool "separator at the eps n/log n scale" true
        (float_of_int a.separator_size >= 0.2 *. a.separator_bound));
  check bool "size in range" true (a.Strongdecomp.Barrier.n > 4000)

let test_greedy_er_8192 () =
  let rng = Rng.create 6 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 8192 (2.5 /. 8192.0)) in
  let d = Baseline.Greedy.decompose g in
  fail_on_error (Decomposition.check d)

let test_ls_distributed_400 () =
  let rng = Rng.create 7 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 400 0.012) in
  let decomp, stats = Baseline.Ls_distributed.decompose (Rng.create 8) g in
  fail_on_error (Decomposition.check decomp);
  check bool "bandwidth respected end to end" true
    (stats.Baseline.Ls_distributed.max_bits <= Congest.Bits.bandwidth ~n:400)

let test_mis_grid_4096 () =
  let g = Gen.grid 64 64 in
  let mis, _ = Apps.Mis.run g in
  fail_on_error (Apps.Mis.check g mis)

let test_spanner_er_2048 () =
  let rng = Rng.create 9 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 2048 (3.0 /. 2048.0)) in
  let spanner, _ = Apps.Spanner.run g in
  fail_on_error (Apps.Spanner.check g spanner)

let test_unknown_n_grid_2500 () =
  let g = Gen.grid 50 50 in
  let weak ?cost g ~domain ~epsilon =
    let r = Weakdiam.Weak_carving.carve ?cost ~domain g ~epsilon in
    {
      Strongdecomp.Transform.clustering = r.carving.Carving.clustering;
      forest = r.forest;
      depth = r.max_depth;
      congestion = r.congestion;
    }
  in
  let carving = Strongdecomp.Transform.strong_carve_unknown_n ~weak g ~epsilon:0.5 in
  fail_on_error (Carving.check_strong ~epsilon:0.5 carving)

let () =
  Alcotest.run "scale"
    [
      ( "scale",
        [
          Alcotest.test_case "thm2.3 path 8192" `Slow test_thm23_path_8192;
          Alcotest.test_case "thm3.4 path 4096" `Slow test_thm34_path_4096;
          Alcotest.test_case "weak carving grid 4096" `Slow
            test_weak_carving_grid_4096;
          Alcotest.test_case "sparse cut path 10000" `Slow
            test_sparse_cut_path_10000;
          Alcotest.test_case "improve barbell 2000" `Slow
            test_improve_barbell_2000;
          Alcotest.test_case "mpx expander 4096" `Slow test_mpx_expander_4096;
          Alcotest.test_case "linial-saks grid 4096" `Slow test_ls_grid_4096;
          Alcotest.test_case "edge carving torus 4096" `Slow
            test_edge_carving_torus_4096;
          Alcotest.test_case "barrier 8192" `Slow test_barrier_8192;
          Alcotest.test_case "greedy er 8192" `Slow test_greedy_er_8192;
          Alcotest.test_case "distributed ls 400" `Slow test_ls_distributed_400;
          Alcotest.test_case "mis grid 4096" `Slow test_mis_grid_4096;
          Alcotest.test_case "spanner er 2048" `Slow test_spanner_er_2048;
          Alcotest.test_case "unknown n grid 2500" `Slow
            test_unknown_n_grid_2500;
        ] );
    ]
