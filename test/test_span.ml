(* Tests for the phase-span profiler: balanced/unbalanced enter-exit,
   replay attribution (per-span self totals must sum exactly to the
   Metrics.of_trace globals, on weak and strong algorithms, fault-free
   and adversarial), folded-stack round-trips, per-phase metrics
   derivation, and the allocation-freedom of the spans-off path. *)

open Dsgraph
module Sim = Congest.Sim
module Trace = Congest.Trace
module Span = Congest.Span
module Metrics = Congest.Metrics
module Fault = Congest.Fault

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let grid8 = Gen.grid 8 8

let er seed n =
  Gen.ensure_connected (Rng.create seed) (Gen.erdos_renyi (Rng.create seed) n 0.08)

let find_rollup path rolls =
  match List.find_opt (fun (r : Span.rollup) -> r.Span.path = path) rolls with
  | Some r -> r
  | None -> Alcotest.fail ("missing rollup for " ^ path)

(* ------------------------------------------------------------------ *)
(* Enter/exit mechanics                                                 *)
(* ------------------------------------------------------------------ *)

let test_unbalanced_exit_raises () =
  (* without a sink every call is a silent no-op *)
  Span.exit None;
  Span.enter None "phantom";
  let s = Trace.sink () in
  Span.enter (Some s) "a";
  Span.exit (Some s);
  check int "balanced again" 0 (Trace.span_depth s);
  Alcotest.check_raises "extra exit raises"
    (Invalid_argument "Trace.exit_span: unbalanced exit (no span is open)")
    (fun () -> Span.exit (Some s))

let test_enter_idx_names () =
  let s = Trace.sink () in
  Span.enter_idx (Some s) "color" 3;
  Span.enter_idx (Some s) "carve_iter" 7;
  Span.exit (Some s);
  Span.exit (Some s);
  let paths = List.map (fun (r : Span.rollup) -> r.Span.path) (Span.rollups s) in
  check bool "indexed paths" true
    (paths = [ "color=3"; "color=3/carve_iter=7" ])

let test_with_span_exception_safe () =
  let s = Trace.sink () in
  (try
     Span.with_span (Some s) "risky" (fun () -> failwith "boom")
   with Failure _ -> ());
  check int "span closed on exception" 0 (Trace.span_depth s);
  let r = find_rollup "risky" (Span.rollups s) in
  check int "one activation" 1 r.Span.entries;
  check bool "wall time recorded" true (r.Span.seconds_incl >= 0.0)

let test_capacity_drop_keeps_stack_balanced () =
  (* span events past capacity are dropped from the stream, but the
     live stack must stay balanced so exits never misfire *)
  let s = Trace.sink ~capacity:2 () in
  for i = 0 to 4 do
    Span.enter_idx (Some s) "deep" i
  done;
  check int "depth tracked past capacity" 5 (Trace.span_depth s);
  for _ = 0 to 4 do
    Span.exit (Some s)
  done;
  check int "balanced" 0 (Trace.span_depth s);
  (* replay of the truncated stream is best-effort, not an error *)
  ignore (Span.rollups s)

(* ------------------------------------------------------------------ *)
(* Replay attribution on a hand-built stream                            *)
(* ------------------------------------------------------------------ *)

let test_manual_attribution () =
  let s = Trace.sink () in
  Trace.record s (Trace.Round_start { round = 1 });
  Span.enter (Some s) "a";
  Trace.record s
    (Trace.Cost_charged { tag = "t"; rounds = 2; messages = 3; max_bits = 8 });
  Span.enter (Some s) "b";
  Trace.record s (Trace.Round_start { round = 2 });
  Trace.record s (Trace.Message_sent { round = 2; src = 0; dst = 1; bits = 12 });
  Span.exit (Some s);
  Span.exit (Some s);
  let rolls = Span.rollups s in
  let paths = List.map (fun (r : Span.rollup) -> r.Span.path) rolls in
  check bool "first-seen order" true (paths = [ Span.unspanned; "a"; "a/b" ]);
  let un = find_rollup Span.unspanned rolls in
  check int "pre-span round is unspanned" 1 un.Span.rounds;
  let a = find_rollup "a" rolls in
  check int "a self rounds" 2 a.Span.rounds;
  check int "a inclusive rounds" 3 a.Span.rounds_incl;
  check int "a self messages" 3 a.Span.messages;
  check int "a inclusive messages" 4 a.Span.messages_incl;
  check int "a inclusive bits" 12 a.Span.bits_incl;
  check int "a self bits" 0 a.Span.bits;
  check int "a max bits" 8 a.Span.max_message_bits;
  let b = find_rollup "a/b" rolls in
  check int "b depth" 2 b.Span.depth;
  check int "b self bits" 12 b.Span.bits;
  check int "b self rounds" 1 b.Span.rounds

(* ------------------------------------------------------------------ *)
(* Exact-sum property on real algorithms                                *)
(* ------------------------------------------------------------------ *)

(* self totals over every rollup (including the unspanned bucket) must
   reproduce the trace-wide Metrics.of_trace globals exactly *)
let assert_sums name sink =
  check int (name ^ ": nothing truncated") 0 (Trace.truncated sink);
  let rolls = Span.rollups sink in
  let m = Metrics.of_trace sink in
  let c n = Metrics.counter_value (Metrics.counter m n) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rolls in
  check int
    (name ^ ": rounds attributed")
    (c "rounds" + c "cost_rounds")
    (sum (fun (r : Span.rollup) -> r.Span.rounds));
  check int
    (name ^ ": messages attributed")
    (c "messages_sent" + c "cost_messages")
    (sum (fun (r : Span.rollup) -> r.Span.messages));
  check int
    (name ^ ": bits attributed")
    (Metrics.hist_sum (Metrics.histogram m "bits_per_message"))
    (sum (fun (r : Span.rollup) -> r.Span.bits));
  rolls

let test_sums_weak_fault_free () =
  let sink = Trace.sink () in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  let rolls = assert_sums "weak carve" sink in
  let root = find_rollup "weakdiam_sim" rolls in
  check bool "simulate phase under the root" true
    (List.exists
       (fun (r : Span.rollup) -> r.Span.path = "weakdiam_sim/simulate")
       rolls);
  check bool "root sees every simulated round" true
    (root.Span.rounds_incl > 0)

let test_sums_weak_adversarial () =
  let adv =
    Fault.create (Fault.spec ~seed:5 ~drop:0.05 ~duplicate:0.02 ~delay:0.03 ())
  in
  let sink = Trace.sink () in
  let r =
    Weakdiam.Distributed.carve_reliable ~adversary:adv ~trace:sink
      (Gen.grid 5 5) ~epsilon:0.5
  in
  check bool "adversary actually dropped" true
    (r.Weakdiam.Distributed.r_sim_stats.Sim.faults.Sim.dropped > 0);
  let rolls = assert_sums "weak carve reliable+adversary" sink in
  ignore (find_rollup "weakdiam_reliable" rolls)

let test_sums_strong_fault_free () =
  (* engine-level run: the netdecomp color loop over Theorem 2.2 carving,
     every Cost.charge attributed through the open span path *)
  let sink = Trace.sink () in
  let cost = Congest.Cost.create ~trace:sink () in
  ignore (Strongdecomp.Netdecomp.strong ~cost grid8);
  let rolls = assert_sums "thm2.3" sink in
  let root = find_rollup "netdecomp" rolls in
  check bool "color phases recorded" true
    (List.exists
       (fun (r : Span.rollup) -> r.Span.path = "netdecomp/color=0")
       rolls);
  check bool "transform nested below carving" true
    (List.exists
       (fun (r : Span.rollup) ->
         r.Span.depth >= 4
         && String.length r.Span.path >= 9
         && String.sub r.Span.path 0 9 = "netdecomp")
       rolls);
  check bool "root inclusive covers the run" true (root.Span.rounds_incl > 0)

let test_sums_strong_adversarial () =
  let adv = Fault.create (Fault.spec ~seed:9 ~drop:0.08 ~delay:0.05 ()) in
  let sink = Trace.sink () in
  let r =
    Baseline.Mpx_distributed.partition ~adversary:adv ~trace:sink (er 3 80)
      ~beta:0.4
  in
  check bool "adversary actually dropped" true
    (r.Baseline.Mpx_distributed.sim_stats.Sim.faults.Sim.dropped > 0);
  let rolls = assert_sums "mpx under faults" sink in
  ignore (find_rollup "mpx_partition" rolls)

(* ------------------------------------------------------------------ *)
(* Folded stacks                                                        *)
(* ------------------------------------------------------------------ *)

let test_folded_round_trip () =
  let sink = Trace.sink () in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  let rolls = Span.rollups sink in
  List.iter
    (fun weight ->
      let self (r : Span.rollup) =
        match weight with
        | `Rounds -> r.Span.rounds
        | `Messages -> r.Span.messages
        | `Bits -> r.Span.bits
      in
      match Span.of_folded (Span.to_folded ~weight sink) with
      | Error e -> Alcotest.fail e
      | Ok pairs ->
          let expected =
            List.filter_map
              (fun r -> if self r > 0 then Some (r.Span.path, self r) else None)
              rolls
          in
          check bool "folded round-trips to the nonzero self weights" true
            (pairs = expected))
    [ `Rounds; `Messages; `Bits ]

let test_folded_rejects_garbage () =
  check bool "missing weight" true (Result.is_error (Span.of_folded "justpath"));
  check bool "non-numeric weight" true
    (Result.is_error (Span.of_folded "a;b notanumber"))

(* ------------------------------------------------------------------ *)
(* Metrics derivation                                                   *)
(* ------------------------------------------------------------------ *)

let test_of_spans_metrics () =
  let sink = Trace.sink () in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  let m = Metrics.of_spans sink in
  let root = find_rollup "weakdiam_sim" (Span.rollups sink) in
  check int "rollup rounds_incl exported as a counter"
    root.Span.rounds_incl
    (Metrics.counter_value (Metrics.counter m "span.weakdiam_sim.rounds_incl"));
  check int "rollup entries exported" root.Span.entries
    (Metrics.counter_value (Metrics.counter m "span.weakdiam_sim.entries"))

(* ------------------------------------------------------------------ *)
(* Allocation behavior                                                  *)
(* ------------------------------------------------------------------ *)

let test_spans_off_allocation_free () =
  (* both no-op paths — no sink at all, and a sink with spans disabled —
     must not allocate in a hot loop *)
  let none : Trace.sink option = None in
  let off = Some (Trace.sink ~spans:false ()) in
  let observe trace () =
    let before = Gc.minor_words () in
    for _ = 1 to 10_000 do
      Span.enter trace "phase";
      Span.exit trace
    done;
    Gc.minor_words () -. before
  in
  List.iter
    (fun (name, trace) ->
      ignore (observe trace ());
      let delta = observe trace () in
      check bool
        (Printf.sprintf "%s allocates nothing (%.0f words)" name delta)
        true (delta < 64.0))
    [ ("no sink", none); ("spans disabled", off) ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "span"
    [
      ( "mechanics",
        [
          Alcotest.test_case "unbalanced exit" `Quick test_unbalanced_exit_raises;
          Alcotest.test_case "enter_idx names" `Quick test_enter_idx_names;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_exception_safe;
          Alcotest.test_case "capacity drop keeps stack" `Quick
            test_capacity_drop_keeps_stack_balanced;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "manual stream" `Quick test_manual_attribution;
          Alcotest.test_case "weak fault-free sums" `Quick
            test_sums_weak_fault_free;
          Alcotest.test_case "weak adversarial sums" `Quick
            test_sums_weak_adversarial;
          Alcotest.test_case "strong fault-free sums" `Quick
            test_sums_strong_fault_free;
          Alcotest.test_case "strong adversarial sums" `Quick
            test_sums_strong_adversarial;
        ] );
      ( "folded",
        [
          Alcotest.test_case "round trip" `Quick test_folded_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_folded_rejects_garbage;
        ] );
      ( "metrics",
        [ Alcotest.test_case "of_spans" `Quick test_of_spans_metrics ] );
      ( "allocation",
        [
          Alcotest.test_case "spans-off path free" `Quick
            test_spans_off_allocation_free;
        ] );
    ]
