(* Tests for the binary CSR on-disk format (Io.save_csr / Io.load_csr):
   qcheck round-trips, header validation (magic / endianness / version),
   truncation errors, checksum verification, and byte-identical files
   from seeded large-scale generators. *)

open Dsgraph

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let with_tmp f =
  let path = Filename.temp_file "csr_test" ".dsg" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* byte-level header/payload tampering for the rejection tests *)
let patch path ~pos bytes =
  let s = Bytes.of_string (read_file path) in
  Bytes.blit_string bytes 0 s pos (String.length bytes);
  write_file path (Bytes.to_string s)

let save_star path =
  let g = Gen.star 5 in
  Io.save_csr path g;
  g

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_basic () =
  with_tmp (fun path ->
      let g = Gen.grid 7 9 in
      Io.save_csr path g;
      let g' = Io.load_csr path in
      check bool "equal" true (Graph.equal g g');
      let g'' = Io.load_csr ~verify:true path in
      check bool "equal under verify" true (Graph.equal g g''))

let test_roundtrip_empty () =
  with_tmp (fun path ->
      let g = Graph.of_edge_seq ~n:0 Seq.empty in
      Io.save_csr path g;
      check int "n" 0 (Graph.n (Io.load_csr ~verify:true path)));
  with_tmp (fun path ->
      let g = Graph.of_edge_seq ~n:6 Seq.empty in
      Io.save_csr path g;
      let g' = Io.load_csr ~verify:true path in
      check int "isolated nodes survive" 6 (Graph.n g');
      check int "no edges" 0 (Graph.m g'))

let prop_roundtrip =
  QCheck.Test.make ~name:"save_csr/load_csr is the identity" ~count:80
    (QCheck.make
       ~print:(fun (seed, n, pct) ->
         Printf.sprintf "seed=%d n=%d p=%d%%" seed n pct)
       QCheck.Gen.(triple (int_bound 100_000) (int_range 1 60) (int_range 0 50)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      with_tmp (fun path ->
          Io.save_csr path g;
          Graph.equal g (Io.load_csr ~verify:true path)))

(* ------------------------------------------------------------------ *)
(* Header and payload rejection                                        *)
(* ------------------------------------------------------------------ *)

let test_rejects_bad_magic () =
  with_tmp (fun path ->
      ignore (save_star path);
      patch path ~pos:0 "NOTAGRPH";
      Alcotest.check_raises "magic"
        (Invalid_argument "Io.load_csr: bad magic (not a CSR graph file)")
        (fun () -> ignore (Io.load_csr path)))

let test_rejects_foreign_endianness () =
  with_tmp (fun path ->
      ignore (save_star path);
      (* byte-swap the endian marker: what the same file would look like
         to a reader of the opposite endianness *)
      let s = read_file path in
      let swapped = String.init 8 (fun i -> s.[8 + (7 - i)]) in
      patch path ~pos:8 swapped;
      Alcotest.check_raises "endianness"
        (Invalid_argument "Io.load_csr: endianness mismatch") (fun () ->
          ignore (Io.load_csr path)))

let test_rejects_unknown_version () =
  with_tmp (fun path ->
      ignore (save_star path);
      let v2 = Bytes.create 8 in
      Bytes.set_int64_ne v2 0 2L;
      patch path ~pos:16 (Bytes.to_string v2);
      Alcotest.check_raises "version"
        (Invalid_argument "Io.load_csr: unsupported version 2") (fun () ->
          ignore (Io.load_csr path)))

let test_rejects_truncated_header () =
  with_tmp (fun path ->
      ignore (save_star path);
      let s = read_file path in
      write_file path (String.sub s 0 10);
      Alcotest.check_raises "header"
        (Invalid_argument "Io.load_csr: truncated header") (fun () ->
          ignore (Io.load_csr path)))

let test_rejects_truncated_payload () =
  with_tmp (fun path ->
      let g = save_star path in
      let words = Graph.n g + 1 + (2 * Graph.m g) in
      let expected = 64 + (8 * words) in
      let s = read_file path in
      write_file path (String.sub s 0 (String.length s - 8));
      Alcotest.check_raises "payload"
        (Invalid_argument
           (Printf.sprintf
              "Io.load_csr: truncated file (expected %d bytes, found %d)"
              expected (expected - 8)))
        (fun () -> ignore (Io.load_csr path)))

let test_checksum_catches_bit_rot () =
  with_tmp (fun path ->
      ignore (save_star path);
      (* flip a word in the targets payload, past the offsets block *)
      let s = read_file path in
      let pos = String.length s - 8 in
      let corrupt = Bytes.create 8 in
      Bytes.set_int64_ne corrupt 0 0x7FL;
      patch path ~pos (Bytes.to_string corrupt);
      Alcotest.check_raises "checksum"
        (Invalid_argument "Io.load_csr: checksum mismatch") (fun () ->
          ignore (Io.load_csr ~verify:true path)))

(* ------------------------------------------------------------------ *)
(* Large-scale generators: determinism down to the file bytes          *)
(* ------------------------------------------------------------------ *)

let save_generated path gen seed =
  let rng = Rng.create seed in
  Io.save_csr path (gen rng)

let bytes_identical gen seed =
  with_tmp (fun p1 ->
      with_tmp (fun p2 ->
          save_generated p1 gen seed;
          save_generated p2 gen seed;
          read_file p1 = read_file p2))

let test_rmat_deterministic () =
  let gen rng = Gen.rmat rng ~n:131_072 ~m:400_000 in
  check bool "same seed, same bytes" true (bytes_identical gen 42);
  with_tmp (fun p1 ->
      with_tmp (fun p2 ->
          save_generated p1 gen 42;
          save_generated p2 gen 43;
          check bool "different seed, different bytes" false
            (read_file p1 = read_file p2)))

let test_power_law_deterministic () =
  let gen rng = Gen.power_law rng ~n:100_000 ~m:300_000 in
  check bool "same seed, same bytes" true (bytes_identical gen 7)

let test_pref_attach_deterministic () =
  let gen rng = Gen.pref_attach rng ~n:100_000 ~k:3 in
  check bool "same seed, same bytes" true (bytes_identical gen 7)

let test_rmat_shape () =
  let rng = Rng.create 5 in
  let g = Gen.rmat rng ~n:1024 ~m:4096 in
  check int "n" 1024 (Graph.n g);
  (* m samples minus self-loops and duplicates *)
  check bool "m close to requested" true
    (Graph.m g > 3_000 && Graph.m g <= 4096);
  Alcotest.check_raises "power of two"
    (Invalid_argument "Gen.rmat: n must be a power of two >= 2") (fun () ->
      ignore (Gen.rmat rng ~n:1000 ~m:10))

let test_power_law_shape () =
  let rng = Rng.create 5 in
  let g = Gen.power_law rng ~n:2_000 ~m:8_000 in
  check int "n" 2_000 (Graph.n g);
  check bool "m close to requested" true
    (Graph.m g > 6_000 && Graph.m g <= 8_000)

let test_pref_attach_shape () =
  let rng = Rng.create 5 in
  let g = Gen.pref_attach rng ~n:3_000 ~k:4 in
  check int "n" 3_000 (Graph.n g);
  (* every non-seed node brings k (possibly duplicated) edges *)
  check bool "m lower bound" true (Graph.m g >= 3_000);
  check bool "connected" true
    (Array.for_all (fun d -> d >= 0) (Bfs.distances g ~source:0))

let () =
  Alcotest.run "csr"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "basic" `Quick test_roundtrip_basic;
          Alcotest.test_case "empty graphs" `Quick test_roundtrip_empty;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "bad magic" `Quick test_rejects_bad_magic;
          Alcotest.test_case "foreign endianness" `Quick
            test_rejects_foreign_endianness;
          Alcotest.test_case "unknown version" `Quick
            test_rejects_unknown_version;
          Alcotest.test_case "truncated header" `Quick
            test_rejects_truncated_header;
          Alcotest.test_case "truncated payload" `Quick
            test_rejects_truncated_payload;
          Alcotest.test_case "checksum catches bit rot" `Quick
            test_checksum_catches_bit_rot;
        ] );
      ( "generators",
        [
          Alcotest.test_case "rmat deterministic at 10^5" `Quick
            test_rmat_deterministic;
          Alcotest.test_case "power_law deterministic at 10^5" `Quick
            test_power_law_deterministic;
          Alcotest.test_case "pref_attach deterministic at 10^5" `Quick
            test_pref_attach_deterministic;
          Alcotest.test_case "rmat shape" `Quick test_rmat_shape;
          Alcotest.test_case "power_law shape" `Quick test_power_law_shape;
          Alcotest.test_case "pref_attach shape" `Quick test_pref_attach_shape;
        ] );
    ]
