(* Tests for Workload.Stats: median/MAD summaries, the significance
   gate the trajectory comparator and diff engine share, the sampling
   plan, and the environment-fingerprint JSON round-trip. *)

module S = Workload.Stats

let check = Alcotest.check

let feq msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

(* ------------------------------------------------------------------ *)

let test_summarize_odd () =
  let s = S.summarize [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  check Alcotest.int "runs" 5 s.S.runs;
  feq "median" 3.0 s.S.median;
  (* deviations from 3 are [2;1;0;1;2] -> sorted median 1 *)
  feq "mad" 1.0 s.S.mad;
  feq "lo" 1.0 s.S.lo;
  feq "hi" 5.0 s.S.hi

let test_summarize_even () =
  let s = S.summarize [ 4.0; 1.0; 3.0; 2.0 ] in
  feq "median interpolates" 2.5 s.S.median;
  (* deviations [1.5;0.5;0.5;1.5] -> median 1.0 *)
  feq "mad interpolates" 1.0 s.S.mad

let test_summarize_singleton () =
  let s = S.summarize [ 7.0 ] in
  feq "median is the sample" 7.0 s.S.median;
  feq "mad is zero" 0.0 s.S.mad

let test_summarize_empty_raises () =
  Alcotest.check_raises "empty sample list"
    (Invalid_argument "Stats.summarize: empty sample list") (fun () ->
      ignore (S.summarize []))

let test_threshold () =
  (* mad = 0: pure 10% relative gate *)
  feq "relative gate" 10.0 (S.threshold ~mad:0.0 100.0);
  (* large mad: the k*MAD term dominates *)
  feq "mad gate" 30.0 (S.threshold ~mad:10.0 100.0);
  (* negative baseline: gate on its magnitude *)
  feq "magnitude of baseline" 10.0 (S.threshold ~mad:0.0 (-100.0));
  feq "custom rel and k" 50.0 (S.threshold ~rel:0.5 ~k:1.0 ~mad:10.0 100.0)

let test_exceeds_one_sided () =
  let bool = Alcotest.bool in
  check bool "past the gate" true (S.exceeds ~mad:0.0 ~baseline:100.0 110.5);
  check bool "the fence itself" false (S.exceeds ~mad:0.0 ~baseline:100.0 110.0);
  check bool "improvement never flags" false
    (S.exceeds ~mad:0.0 ~baseline:100.0 50.0);
  check bool "mad widens" false (S.exceeds ~mad:10.0 ~baseline:100.0 125.0);
  check bool "past the widened gate" true
    (S.exceeds ~mad:10.0 ~baseline:100.0 131.0)

let test_measure_counts_runs () =
  let calls = ref 0 in
  let plan = { S.warmup = 2; samples = 3; settle = false } in
  let v, s = S.measure ~plan (fun () -> incr calls; !calls) in
  check Alcotest.int "warmup + samples executions" 5 !calls;
  check Alcotest.int "last run's result" 5 v;
  check Alcotest.int "summary covers the timed runs" 3 s.S.runs;
  Alcotest.(check bool) "timings are non-negative" true (s.S.lo >= 0.0)

let test_measure_clamps_samples () =
  let plan = { S.warmup = 0; samples = 0; settle = false } in
  let _, s = S.measure ~plan (fun () -> ()) in
  check Alcotest.int "at least one sample" 1 s.S.runs

let test_noise_floor_finite () =
  let plan = { S.warmup = 0; samples = 3; settle = false } in
  let nf = S.noise_floor ~plan (fun () -> Sys.opaque_identity (List.init 100 Fun.id)) in
  Alcotest.(check bool) "finite and non-negative" true
    (Float.is_finite nf && nf >= 0.0)

(* ------------------------------------------------------------------ *)

let fp =
  {
    S.git_sha = "abc123def456";
    ocaml_version = "5.1.1";
    word_size = 64;
    flambda = true;
    hostname = "ci-runner-7";
  }

let test_fingerprint_roundtrip () =
  match S.fingerprint_of_json (S.fingerprint_json fp) with
  | None -> Alcotest.fail "fingerprint did not parse back"
  | Some back ->
      Alcotest.(check bool) "round-trips" true (S.fingerprint_equal fp back)

let test_fingerprint_of_json_rejects () =
  check
    Alcotest.(option reject)
    "missing fields" None
    (S.fingerprint_of_json "{\"git_sha\":\"abc\"}");
  check
    Alcotest.(option reject)
    "malformed word size" None
    (S.fingerprint_of_json
       "{\"git_sha\":\"a\",\"ocaml_version\":\"5\",\"word_size\":\"sixty\",\"flambda\":false,\"hostname\":\"h\"}")

let test_current_fingerprint () =
  let fp = S.current_fingerprint () in
  check Alcotest.string "ocaml version" Sys.ocaml_version fp.S.ocaml_version;
  check Alcotest.int "word size" Sys.word_size fp.S.word_size;
  Alcotest.(check bool) "git sha resolved in this checkout" true
    (fp.S.git_sha <> "" && fp.S.git_sha <> "unknown");
  (* and it survives its own JSON round-trip *)
  Alcotest.(check bool) "serializable" true
    (S.fingerprint_of_json (S.fingerprint_json fp) = Some fp)

let test_pp_fingerprint_shape () =
  check Alcotest.string "rendered shape"
    "sha=abc123def456 ocaml=5.1.1 word=64 flambda=true host=ci-runner-7"
    (Format.asprintf "%a" S.pp_fingerprint fp)

let () =
  Alcotest.run "stats"
    [
      ( "summaries",
        [
          Alcotest.test_case "odd sample count" `Quick test_summarize_odd;
          Alcotest.test_case "even sample count" `Quick test_summarize_even;
          Alcotest.test_case "singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "empty raises" `Quick test_summarize_empty_raises;
        ] );
      ( "significance",
        [
          Alcotest.test_case "threshold" `Quick test_threshold;
          Alcotest.test_case "exceeds is one-sided" `Quick
            test_exceeds_one_sided;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "measure runs warmup + samples" `Quick
            test_measure_counts_runs;
          Alcotest.test_case "samples clamped to one" `Quick
            test_measure_clamps_samples;
          Alcotest.test_case "noise floor finite" `Quick test_noise_floor_finite;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "json round-trip" `Quick test_fingerprint_roundtrip;
          Alcotest.test_case "malformed json rejected" `Quick
            test_fingerprint_of_json_rejects;
          Alcotest.test_case "current fingerprint" `Quick
            test_current_fingerprint;
          Alcotest.test_case "pp shape" `Quick test_pp_fingerprint_shape;
        ] );
    ]
