(* Tests for the typed whole-program analyzer (tools/analyze): the bad
   fixtures must trip the domain-safety and hot-allocation rules, the
   good fixtures (same shapes, annotated) must pass, module aliases must
   resolve interprocedurally, config/baseline must suppress, the JSON
   report must be deterministic, and the shipped library tree itself
   must analyze clean. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_dir = Filename.dirname Sys.executable_name
let fixtures_dir = Filename.concat test_dir "fixtures"

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "dune-project not found above test dir"
      else up parent
  in
  up test_dir

(* one sweep over the five fixture units, shared by the tests below *)
let fixture_result = lazy (Analyze_core.analyze [ fixtures_dir ])

let in_file name xs field = List.filter (fun x -> field x = name) xs

let findings_of name =
  let r = Lazy.force fixture_result in
  in_file name r.Analyze_core.r_findings (fun f -> f.Analyze_core.f_file)

let entries_of name =
  let r = Lazy.force fixture_result in
  in_file name r.Analyze_core.r_entries (fun e -> e.Analyze_core.e_file)

let hots_of name =
  let r = Lazy.force fixture_result in
  in_file name r.Analyze_core.r_hots (fun h -> h.Analyze_core.h_file)

let entry binding entries =
  match
    List.filter (fun e -> e.Analyze_core.e_binding = binding) entries
  with
  | [ e ] -> e
  | [] -> failwith ("no inventory entry for " ^ binding)
  | _ -> failwith ("ambiguous inventory entry for " ^ binding)

let test_units_loaded () =
  let r = Lazy.force fixture_result in
  check bool "all five fixture units loaded" true
    (r.Analyze_core.r_units >= 5)

let test_bad_domain () =
  let fs = findings_of "bad_domain.ml" in
  check int "table, hits, global_stats, cells all flagged" 4
    (List.length fs);
  List.iter
    (fun f ->
      check bool "rule is domain-unsafe" true
        (f.Analyze_core.f_rule = "domain-unsafe"))
    fs;
  let details = String.concat " | " (List.map (fun f -> f.Analyze_core.f_detail) fs) in
  let has sub =
    let n = String.length sub and m = String.length details in
    let rec go i =
      i + n <= m && (String.sub details i n = sub || go (i + 1))
    in
    go 0
  in
  check bool "module-global cause reported" true (has "module-global");
  check bool "closure-capture cause reported" true (has "escaping closure");
  check bool "mutable record creation inventoried" true (has "global_stats");
  (* the mutable-field type declaration is inventoried too *)
  let r = Lazy.force fixture_result in
  check bool "stats type with mutable fields recorded" true
    (List.exists
       (fun t ->
         t.Analyze_core.t_name = "stats"
         && t.Analyze_core.t_fields = [ "count"; "sum" ])
       r.Analyze_core.r_mutable_types)

let test_good_domain () =
  check int "annotated twin passes clean" 0
    (List.length (findings_of "good_domain.ml"));
  let es = entries_of "good_domain.ml" in
  check bool "local scratch classified local" true
    ((entry "zeros" es).Analyze_core.e_class = Analyze_core.Local);
  check bool "returned table classified owned" true
    ((entry "fresh_table" es).Analyze_core.e_class = Analyze_core.Owned);
  check bool "callee-handed bytes classified owned" true
    ((entry "b" es).Analyze_core.e_class = Analyze_core.Owned);
  let registry = entry "registry" es in
  check bool "module global still shared" true
    (registry.Analyze_core.e_class = Analyze_core.Shared);
  check bool "annotation reason preserved" true
    (match registry.Analyze_core.e_reason with
    | Some r -> String.length r > 0
    | None -> false);
  check bool "record-captured cells shared but annotated" true
    ((entry "cells" es).Analyze_core.e_class = Analyze_core.Shared)

let test_bad_hot () =
  let hots = hots_of "bad_hot.ml" in
  check int "all four [@hot] functions analyzed" 4 (List.length hots);
  List.iter
    (fun h ->
      check bool
        (h.Analyze_core.h_fn ^ " allocates")
        true
        (h.Analyze_core.h_allocs >= 1))
    hots;
  let details =
    String.concat " | "
      (List.map
         (fun f -> f.Analyze_core.f_detail)
         (findings_of "bad_hot.ml"))
  in
  let has sub =
    let n = String.length sub and m = String.length details in
    let rec go i =
      i + n <= m && (String.sub details i n = sub || go (i + 1))
    in
    go 0
  in
  check bool "tuple allocation found" true (has "tuple allocation");
  check bool "boxed arithmetic found" true (has "boxed arithmetic");
  check bool "interprocedural chain reported" true (has "Hot_dep.leaky");
  check bool "module alias resolved to the callee" true (has "A.leaky")

let test_good_hot () =
  check int "clean [@hot] functions pass" 0
    (List.length (findings_of "good_hot.ml"));
  let hots = hots_of "good_hot.ml" in
  check int "all three [@hot] functions analyzed" 3 (List.length hots);
  let by name =
    List.find (fun h -> h.Analyze_core.h_fn = name) hots
  in
  check bool "[@alloc_ok] ref accepted, not ignored" true
    ((by "sum").Analyze_core.h_accepted >= 1);
  check bool "callee-level [@alloc_ok] accepted" true
    ((by "drain").Analyze_core.h_accepted >= 1);
  check int "interprocedural clean callee stays clean" 0
    ((by "lookup").Analyze_core.h_allocs)

let test_config_suppression () =
  let disabled =
    Analyze_core.analyze
      ~config:{ Analyze_core.allow = []; disabled = [ "domain-unsafe" ] }
      [ fixtures_dir ]
  in
  check int "disabled rule is silent" 0
    (List.length
       (List.filter
          (fun f -> f.Analyze_core.f_rule = "domain-unsafe")
          disabled.Analyze_core.r_findings));
  let allowed =
    Analyze_core.analyze
      ~config:
        { Analyze_core.allow = [ ("hot-alloc", "bad_hot") ]; disabled = [] }
      [ fixtures_dir ]
  in
  check int "allow list is per-rule and per-path" 0
    (List.length
       (List.filter
          (fun f -> f.Analyze_core.f_rule = "hot-alloc")
          allowed.Analyze_core.r_findings));
  check bool "other rules still fire" true
    (List.exists
       (fun f -> f.Analyze_core.f_rule = "domain-unsafe")
       allowed.Analyze_core.r_findings)

let test_baseline_roundtrip () =
  let r = Lazy.force fixture_result in
  let keys =
    List.filter_map
      (fun f ->
        if f.Analyze_core.f_file = "bad_domain.ml" then
          Some f.Analyze_core.f_key
        else None)
      r.Analyze_core.r_findings
  in
  let path = Filename.temp_file "analyze_baseline" ".json" in
  let oc = open_out path in
  output_string oc
    (Printf.sprintf "{\n  \"accept\": [%s]\n}\n"
       (String.concat ", " (List.map (fun k -> "\"" ^ k ^ "\"") keys)));
  close_out oc;
  let accept = Analyze_core.read_baseline path in
  Sys.remove path;
  check int "every key survives the round-trip" (List.length keys)
    (List.length accept);
  let open_findings, accepted =
    Analyze_core.split_baseline ~accept r.Analyze_core.r_findings
  in
  check int "accepted findings split out" (List.length keys)
    (List.length accepted);
  check bool "bad_domain findings demoted" true
    (List.for_all
       (fun f -> f.Analyze_core.f_file <> "bad_domain.ml")
       open_findings);
  check bool "hot findings stay open" true
    (List.exists
       (fun f -> f.Analyze_core.f_file = "bad_hot.ml")
       open_findings);
  check int "missing baseline file means empty accept list" 0
    (List.length (Analyze_core.read_baseline "/nonexistent/baseline.json"))

let test_json_deterministic () =
  let a = Analyze_core.analyze [ fixtures_dir ] in
  let b = Analyze_core.analyze [ fixtures_dir ] in
  check bool "two sweeps, one byte-identical report" true
    (Analyze_core.to_json a = Analyze_core.to_json b);
  let json = Analyze_core.to_json a in
  List.iter
    (fun (rule, _) ->
      let needle = "\"" ^ rule ^ "\"" in
      let n = String.length needle and m = String.length json in
      let rec go i =
        i + n <= m && (String.sub json i n = needle || go (i + 1))
      in
      check bool ("counts mention " ^ rule) true (go 0))
    Analyze_core.rules

let test_tree_analyzes_clean () =
  let root = repo_root () in
  let result = Analyze_core.analyze [ Filename.concat root "lib" ] in
  (* tier-1 runs `dune build` first, so the lib cmts exist; if this is
     a bare `dune runtest` in a fresh tree there is nothing to check *)
  if result.Analyze_core.r_units > 0 then begin
    check bool "found the library tree" true
      (result.Analyze_core.r_units > 30);
    List.iter
      (fun f -> Format.eprintf "%a@." Analyze_core.pp_finding f)
      result.Analyze_core.r_findings;
    check int "shipped tree analyzes clean" 0
      (List.length result.Analyze_core.r_findings);
    check bool "every shared value carries a reason" true
      (List.for_all
         (fun e ->
           e.Analyze_core.e_class <> Analyze_core.Shared
           || e.Analyze_core.e_reason <> None)
         result.Analyze_core.r_entries);
    check bool "the [@hot] annotations are visible" true
      (List.length result.Analyze_core.r_hots >= 4)
  end

let () =
  Alcotest.run "analyze"
    [
      ( "analyze",
        [
          Alcotest.test_case "fixture units load" `Quick test_units_loaded;
          Alcotest.test_case "unannotated shared state flagged" `Quick
            test_bad_domain;
          Alcotest.test_case "annotated twin passes, lattice correct" `Quick
            test_good_domain;
          Alcotest.test_case "[@hot] allocations flagged through aliases"
            `Quick test_bad_hot;
          Alcotest.test_case "clean and [@alloc_ok] hot paths pass" `Quick
            test_good_hot;
          Alcotest.test_case "allow and disable lists" `Quick
            test_config_suppression;
          Alcotest.test_case "baseline accept keys round-trip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "deterministic JSON with per-rule counts"
            `Quick test_json_deterministic;
          Alcotest.test_case "shipped tree analyzes clean" `Quick
            test_tree_analyzes_clean;
        ] );
    ]
