open Dsgraph
module LS = Baseline.Linial_saks
module Mpx = Baseline.Mpx
module Greedy = Baseline.Greedy
module Abcp = Baseline.Abcp
module Clustering = Cluster.Clustering
module Carving = Cluster.Carving
module Decomposition = Cluster.Decomposition

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let is_ok = function Ok () -> true | Error _ -> false

let fail_on_error = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "checker rejected: %s" e

let log2_ceil n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (2 * k) in
  max 1 (go 0 1)

let color_bound n = (6 * log2_ceil n) + 6

let workload seed =
  let rng = Rng.create seed in
  [
    ("path", Gen.path 64);
    ("grid", Gen.grid 8 8);
    ("tree", Gen.random_tree (Rng.split rng) 70);
    ("er", Gen.ensure_connected rng (Gen.erdos_renyi (Rng.split rng) 64 0.06));
    ("hypercube", Gen.hypercube 6);
    ("ring_of_cliques", Gen.ring_of_cliques 6 6);
    ("expander", Gen.expander (Rng.split rng) 64);
  ]

(* ------------------------------------------------------------------ *)
(* Linial–Saks                                                          *)
(* ------------------------------------------------------------------ *)

let test_ls_carve_contract () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving = LS.carve (Rng.create 1) g ~epsilon:0.5 in
      fail_on_error (Carving.check_weak ~epsilon:0.5 carving))
    (workload 1)

let test_ls_carve_weak_diameter_bound () =
  let g = Gen.grid 10 10 in
  let epsilon = 0.5 in
  let carving = LS.carve (Rng.create 2) g ~epsilon in
  let bound = 2 * LS.max_radius ~n:100 ~epsilon in
  let diam = Clustering.max_weak_diameter carving.Carving.clustering in
  check bool
    (Printf.sprintf "weak diameter %d <= 2·cap %d" diam bound)
    true
    (diam >= 0 && diam <= bound)

let test_ls_decompose () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let d = LS.decompose (Rng.create 3) g in
      fail_on_error (Decomposition.check ~colors_bound:(color_bound (Graph.n g)) d))
    (workload 3)

let test_ls_epsilon_sweep () =
  let g = Gen.grid 9 9 in
  List.iter
    (fun epsilon ->
      let carving = LS.carve (Rng.create 4) g ~epsilon in
      check bool "dead bounded" true (Carving.dead_fraction carving <= epsilon))
    [ 0.5; 0.25 ]

let test_ls_charges_cost () =
  let cost = Congest.Cost.create () in
  ignore (LS.carve ~cost (Rng.create 5) (Gen.grid 8 8) ~epsilon:0.5);
  check bool "rounds" true (Congest.Cost.rounds cost > 0);
  check bool "small messages" true
    (Congest.Cost.max_message_bits cost <= 2 * Congest.Bits.id_bits ~n:64)

(* ------------------------------------------------------------------ *)
(* MPX / EN16                                                           *)
(* ------------------------------------------------------------------ *)

let test_mpx_partition_covers_and_connects () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let clustering = Mpx.partition (Rng.create 1) g ~beta:0.3 in
      check int "all assigned" (Graph.n g) (Clustering.clustered_count clustering);
      check bool "clusters connected" true
        (Clustering.max_strong_diameter clustering >= 0))
    (workload 11)

let test_mpx_partition_big_beta_fragments () =
  (* large beta = tiny shifts = most nodes are their own cluster *)
  let g = Gen.grid 8 8 in
  let c = Mpx.partition (Rng.create 2) g ~beta:50.0 in
  check bool "many clusters" true (Clustering.num_clusters c > 32)

let test_mpx_carve_contract () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving = Mpx.carve (Rng.create 3) g ~epsilon:0.5 in
      fail_on_error (Carving.check_strong ~epsilon:0.5 carving))
    (workload 13)

let test_mpx_decompose () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let d = Mpx.decompose (Rng.create 5) g in
      fail_on_error (Decomposition.check ~colors_bound:(color_bound (Graph.n g)) d);
      check bool "strong clusters" true
        (Clustering.max_strong_diameter (Decomposition.clustering d) >= 0))
    (workload 15)

let test_mpx_diameter_shape () =
  (* strong diameter should stay in the O(log n / eps) regime *)
  let g = Gen.expander (Rng.create 6) 256 in
  let carving = Mpx.carve (Rng.create 7) g ~epsilon:0.5 in
  let diam = Clustering.max_strong_diameter carving.Carving.clustering in
  let bound = 40.0 *. log 256.0 in
  check bool
    (Printf.sprintf "diameter %d within O(log n/eps) scale %.0f" diam bound)
    true
    (float_of_int diam <= bound)

(* ------------------------------------------------------------------ *)
(* Greedy ball growing                                                  *)
(* ------------------------------------------------------------------ *)

let test_greedy_carve_contract () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving = Greedy.carve g ~epsilon:0.5 in
      fail_on_error (Carving.check_strong ~epsilon:0.5 carving))
    (workload 21)

let test_greedy_carve_diameter_bound () =
  let g = Gen.grid 12 12 in
  let carving = Greedy.carve g ~epsilon:0.5 in
  (* beta = 2: diameter <= 2·log2 n *)
  let diam = Clustering.max_strong_diameter carving.Carving.clustering in
  check bool "diameter <= 2 log2 n" true (diam <= 2 * log2_ceil 144)

let test_greedy_decompose_presets () =
  let g = Gen.grid 10 10 in
  List.iter
    (fun preset ->
      let d = Greedy.decompose ~preset g in
      fail_on_error (Decomposition.check d);
      check bool "strong clusters" true
        (Clustering.max_strong_diameter (Decomposition.clustering d) >= 0))
    [ Greedy.Ls93_existential; Greedy.Aglp; Greedy.Gha19 ]

let test_greedy_tradeoff_direction () =
  (* larger beta => shallower clusters (fewer BFS layers), possibly more
     colors: the AGLP-style points trade diameter against colors *)
  let g = Gen.path 256 in
  let d2 = Greedy.decompose ~preset:Greedy.Ls93_existential g in
  let dbig = Greedy.decompose ~preset:Greedy.Gha19 g in
  let diam d = Clustering.max_strong_diameter (Decomposition.clustering d) in
  check bool "bigger beta not deeper" true (diam dbig <= max 2 (diam d2))

let test_greedy_deterministic () =
  let g = Gen.erdos_renyi (Rng.create 8) 60 0.08 in
  let a = Greedy.carve g ~epsilon:0.5 in
  let b = Greedy.carve g ~epsilon:0.5 in
  for v = 0 to 59 do
    check int "same"
      (Clustering.cluster_of a.Carving.clustering v)
      (Clustering.cluster_of b.Carving.clustering v)
  done

let test_greedy_beta_validation () =
  Alcotest.check_raises "beta" (Invalid_argument "Greedy.carve: beta must exceed 1")
    (fun () -> ignore (Greedy.carve ~beta:1.0 (Gen.path 4) ~epsilon:0.5))

(* ------------------------------------------------------------------ *)
(* ABCP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_abcp_carve_contract () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving, _ = Abcp.carve g ~epsilon:0.5 in
      fail_on_error (Carving.check_strong ~epsilon:0.5 carving))
    (workload 31)

let test_abcp_diameter_bound () =
  let g = Gen.grid 8 8 in
  let carving, _ = Abcp.carve g ~epsilon:0.5 in
  let diam = Clustering.max_strong_diameter carving.Carving.clustering in
  check bool "diameter <= 2 log2 n" true (diam <= 2 * log2_ceil 64)

let test_abcp_messages_blow_up () =
  (* the whole point: topology gathering needs more than O(log n) bits *)
  let g = Gen.grid 8 8 in
  let _, info = Abcp.carve g ~epsilon:0.5 in
  check bool
    (Printf.sprintf "max message %d bits exceeds CONGEST bandwidth %d"
       info.Abcp.max_message_bits
       (Congest.Bits.bandwidth ~n:64))
    true
    (info.Abcp.max_message_bits > Congest.Bits.bandwidth ~n:64)

let test_abcp_decompose () =
  let g = Gen.grid 7 7 in
  let d, info = Abcp.decompose g in
  fail_on_error (Decomposition.check ~colors_bound:(color_bound 49) d);
  check bool "info aggregated" true (info.Abcp.max_message_bits > 0)

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)
(* ------------------------------------------------------------------ *)

let arb_connected =
  QCheck.make
    ~print:(fun (seed, n, pct) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n pct)
    QCheck.Gen.(triple (int_bound 100_000) (int_range 2 40) (int_range 3 25))

let connected_graph (seed, n, pct) =
  let rng = Rng.create seed in
  Gen.ensure_connected rng (Gen.erdos_renyi rng n (float_of_int pct /. 100.0))

let prop_ls_carve =
  QCheck.Test.make ~name:"linial-saks carving is a valid weak carving" ~count:60
    arb_connected (fun input ->
      let g = connected_graph input in
      let carving = LS.carve (Rng.create (Graph.n g)) g ~epsilon:0.5 in
      is_ok (Carving.check_weak ~epsilon:0.5 carving))

let prop_mpx_carve =
  QCheck.Test.make ~name:"mpx carving is a valid strong carving" ~count:60
    arb_connected (fun input ->
      let g = connected_graph input in
      let carving = Mpx.carve (Rng.create (Graph.n g)) g ~epsilon:0.5 in
      is_ok (Carving.check_strong ~epsilon:0.5 carving))

let prop_greedy_carve =
  QCheck.Test.make ~name:"greedy carving is a valid strong carving" ~count:60
    arb_connected (fun input ->
      let g = connected_graph input in
      is_ok (Carving.check_strong ~epsilon:0.5 (Greedy.carve g ~epsilon:0.5)))

let prop_abcp_carve =
  QCheck.Test.make ~name:"abcp carving is a valid strong carving" ~count:25
    arb_connected (fun input ->
      let g = connected_graph input in
      let carving, _ = Abcp.carve g ~epsilon:0.5 in
      is_ok (Carving.check_strong ~epsilon:0.5 carving))

let () =
  Alcotest.run "baseline"
    [
      ( "linial_saks",
        [
          Alcotest.test_case "carve contract" `Quick test_ls_carve_contract;
          Alcotest.test_case "weak diameter bound" `Quick
            test_ls_carve_weak_diameter_bound;
          Alcotest.test_case "decompose" `Quick test_ls_decompose;
          Alcotest.test_case "epsilon sweep" `Quick test_ls_epsilon_sweep;
          Alcotest.test_case "charges cost" `Quick test_ls_charges_cost;
        ] );
      ( "mpx",
        [
          Alcotest.test_case "partition covers" `Quick
            test_mpx_partition_covers_and_connects;
          Alcotest.test_case "big beta fragments" `Quick
            test_mpx_partition_big_beta_fragments;
          Alcotest.test_case "carve contract" `Quick test_mpx_carve_contract;
          Alcotest.test_case "decompose" `Quick test_mpx_decompose;
          Alcotest.test_case "diameter shape" `Quick test_mpx_diameter_shape;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "carve contract" `Quick test_greedy_carve_contract;
          Alcotest.test_case "diameter bound" `Quick
            test_greedy_carve_diameter_bound;
          Alcotest.test_case "decompose presets" `Quick
            test_greedy_decompose_presets;
          Alcotest.test_case "tradeoff direction" `Quick
            test_greedy_tradeoff_direction;
          Alcotest.test_case "deterministic" `Quick test_greedy_deterministic;
          Alcotest.test_case "beta validation" `Quick test_greedy_beta_validation;
        ] );
      ( "abcp",
        [
          Alcotest.test_case "carve contract" `Quick test_abcp_carve_contract;
          Alcotest.test_case "diameter bound" `Quick test_abcp_diameter_bound;
          Alcotest.test_case "messages blow up" `Quick
            test_abcp_messages_blow_up;
          Alcotest.test_case "decompose" `Quick test_abcp_decompose;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ls_carve; prop_mpx_carve; prop_greedy_carve; prop_abcp_carve ]
      );
    ]
