open Dsgraph
module Sim = Congest.Sim
module Bits = Congest.Bits
module Cost = Congest.Cost
module Programs = Congest.Programs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Bits                                                                 *)
(* ------------------------------------------------------------------ *)

let test_int_bits () =
  check int "0" 1 (Bits.int_bits 0);
  check int "1" 1 (Bits.int_bits 1);
  check int "2" 2 (Bits.int_bits 2);
  check int "255" 8 (Bits.int_bits 255);
  check int "256" 9 (Bits.int_bits 256)

let test_id_bits () =
  check int "n=1" 1 (Bits.id_bits ~n:1);
  check int "n=2" 1 (Bits.id_bits ~n:2);
  check int "n=1024" 10 (Bits.id_bits ~n:1024);
  check int "n=1025" 11 (Bits.id_bits ~n:1025)

(* ------------------------------------------------------------------ *)
(* Cost meter                                                           *)
(* ------------------------------------------------------------------ *)

let test_cost_accumulates () =
  let c = Cost.create () in
  Cost.charge c ~rounds:3 ~messages:10 ~max_bits:16 "a";
  Cost.charge c ~rounds:2 ~messages:5 ~max_bits:8 "b";
  Cost.charge c "a";
  check int "rounds" 6 (Cost.rounds c);
  check int "messages" 15 (Cost.messages c);
  check int "max bits" 16 (Cost.max_message_bits c);
  Alcotest.(check (list (pair string int)))
    "breakdown" [ ("a", 4); ("b", 2) ] (Cost.breakdown c)

let test_cost_reset () =
  let c = Cost.create () in
  Cost.charge c ~rounds:3 "x";
  Cost.reset c;
  check int "rounds" 0 (Cost.rounds c);
  check int "messages" 0 (Cost.messages c)

let test_cost_parallel () =
  let acc = Cost.create () in
  let mk r =
    let c = Cost.create () in
    Cost.charge c ~rounds:r ~messages:r "sub";
    c
  in
  Cost.parallel acc [ mk 5; mk 9; mk 2 ] "par";
  check int "max rounds" 9 (Cost.rounds acc);
  check int "sum messages" 16 (Cost.messages acc)

let test_cost_merge_max () =
  let acc = Cost.create () in
  Cost.charge acc ~rounds:5 ~messages:3 ~max_bits:10 "a";
  let other = Cost.create () in
  Cost.charge other ~rounds:2 ~messages:4 ~max_bits:12 "a";
  Cost.charge other ~rounds:1 "b";
  Cost.merge_max acc other;
  check int "rounds added" 8 (Cost.rounds acc);
  check int "messages added" 7 (Cost.messages acc);
  check int "max bits" 12 (Cost.max_message_bits acc);
  Alcotest.(check (list (pair string int)))
    "breakdown merged" [ ("a", 7); ("b", 1) ] (Cost.breakdown acc)

let test_cost_parallel_empty () =
  let acc = Cost.create () in
  Cost.parallel acc [] "nothing";
  check int "no rounds" 0 (Cost.rounds acc)

let test_cost_rejects_negative () =
  let c = Cost.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Cost.charge: negative charge") (fun () ->
      Cost.charge c ~rounds:(-1) "x")

(* ------------------------------------------------------------------ *)
(* Simulator                                                            *)
(* ------------------------------------------------------------------ *)

(* a one-round program where each node sends its id to all neighbors and
   records the max received *)
type gossip_state = { sent : bool; best : int }

let gossip_program g =
  {
    Sim.init = (fun ~node ~neighbors:_ -> { sent = false; best = node });
    round =
      (fun ~node ~state ~inbox ->
        let best = List.fold_left (fun acc (_, m) -> max acc m) state.best inbox in
        if not state.sent then
          let out =
            Array.to_list
              (Array.map (fun nb -> (nb, node)) (Graph.neighbors g node))
          in
          ({ sent = true; best }, out, false)
        else ({ state with best }, [], true));
  }

let test_sim_delivers_messages () =
  let g = Gen.cycle 5 in
  let states, stats = Sim.simulate ~bits:(fun _ -> 3) g (gossip_program g) in
  check bool "halted" true stats.all_halted;
  check int "messages" 10 stats.total_messages;
  (* every node hears its two neighbors *)
  Array.iteri
    (fun v st ->
      let expected = max v (max ((v + 1) mod 5) ((v + 4) mod 5)) in
      check int "max of closed neighborhood" expected st.best)
    states

let test_sim_bandwidth_enforced () =
  let g = Gen.path 2 in
  let oversized =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round = (fun ~node:_ ~state:_ ~inbox:_ -> ((), [ (1, ()) ], true));
    }
  in
  Alcotest.check_raises "bandwidth"
    (Sim.Bandwidth_exceeded
       { node = 0; dst = 1; round = 1; bits = 9999; bandwidth = 10 })
    (fun () ->
      ignore
        (Sim.simulate
           ~config:Sim.Config.(default |> with_bandwidth 10)
           ~bits:(fun _ -> 9999)
           g oversized))

let test_sim_rejects_non_neighbor () =
  let g = Gen.path 3 in
  let bad =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round =
        (fun ~node ~state:_ ~inbox:_ ->
          if node = 0 then ((), [ (2, ()) ], true) else ((), [], true));
    }
  in
  Alcotest.check_raises "non neighbor"
    (Invalid_argument "Sim.simulate: node 0 sent to non-neighbor 2") (fun () ->
      ignore (Sim.simulate ~bits:(fun _ -> 1) g bad))

let test_sim_rejects_double_send () =
  let g = Gen.path 2 in
  let bad =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round =
        (fun ~node ~state:_ ~inbox:_ ->
          if node = 0 then ((), [ (1, ()); (1, ()) ], true) else ((), [], true));
    }
  in
  Alcotest.check_raises "double send"
    (Invalid_argument "Sim.simulate: node 0 sent twice to 1 in one round") (fun () ->
      ignore (Sim.simulate ~bits:(fun _ -> 1) g bad))

let test_sim_max_rounds_cutoff () =
  let g = Gen.path 2 in
  let forever =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round = (fun ~node:_ ~state:_ ~inbox:_ -> ((), [], false));
    }
  in
  let _, stats =
    Sim.simulate
      ~config:Sim.Config.(default |> with_max_rounds 7)
      ~bits:(fun _ -> 1)
      g forever
  in
  check int "cut off" 7 stats.rounds_used;
  check bool "not halted" false stats.all_halted

(* ------------------------------------------------------------------ *)
(* Classic programs                                                     *)
(* ------------------------------------------------------------------ *)

let test_leader_election_connected () =
  let g = Gen.ensure_connected (Rng.create 2) (Gen.erdos_renyi (Rng.create 1) 40 0.08) in
  let leaders, stats = Programs.leader_election g in
  check bool "halted" true stats.all_halted;
  Array.iter (fun l -> check int "leader is min id" 0 l) leaders

let test_leader_election_per_component () =
  let g = Gen.disjoint_union (Gen.cycle 4) (Gen.path 3) in
  let leaders, _ = Programs.leader_election g in
  for v = 0 to 3 do
    check int "first comp" 0 leaders.(v)
  done;
  for v = 4 to 6 do
    check int "second comp" 4 leaders.(v)
  done

let test_leader_election_rounds_near_diameter () =
  let g = Gen.path 30 in
  let _, stats = Programs.leader_election g in
  (* min id is 0 at one end: needs ~29 rounds to flood, plus constant *)
  check bool "rounds lower" true (stats.rounds_used >= 29);
  check bool "rounds upper" true (stats.rounds_used <= 35)

let test_leader_election_message_size () =
  let g = Gen.grid 8 8 in
  let _, stats = Programs.leader_election g in
  check bool "messages are O(log n) bits" true
    (stats.max_bits_seen <= Bits.bandwidth ~n:(Graph.n g))

let test_bfs_program_matches_central () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 30 0.1) in
      let (dist, parent), stats = Programs.bfs g ~source:0 in
      check bool "halted" true stats.all_halted;
      let expected = Bfs.distances g ~source:0 in
      Alcotest.(check (array int)) "distances" expected dist;
      for v = 0 to Graph.n g - 1 do
        if v <> 0 && dist.(v) >= 0 then begin
          check bool "parent edge" true (Graph.is_edge g v parent.(v));
          check int "parent closer" (dist.(v) - 1) dist.(parent.(v))
        end
      done)
    [ 1; 2; 3 ]

let test_bfs_program_rounds_anchor_cost_model () =
  (* this anchors the Cost charging rule: a radius-r wave costs ~r rounds *)
  let g = Gen.path 20 in
  let (_, _), stats = Programs.bfs g ~source:0 in
  check bool "wave takes ecc + O(1) rounds" true
    (stats.rounds_used >= 19 && stats.rounds_used <= 24)

let test_subtree_counts_path () =
  let g = Gen.path 5 in
  let parent = [| 0; 0; 1; 2; 3 |] in
  let counts, stats = Programs.subtree_counts g ~parent in
  check bool "halted" true stats.all_halted;
  Alcotest.(check (array int)) "counts" [| 5; 4; 3; 2; 1 |] counts

let test_subtree_counts_bfs_tree () =
  let rng = Rng.create 4 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 25 0.12) in
  let parent = Bfs.parents g ~source:0 in
  let counts, _ = Programs.subtree_counts g ~parent in
  check int "root counts all" (Graph.n g) counts.(0)

let test_subtree_counts_skips_non_tree_nodes () =
  let g = Gen.path 4 in
  let parent = [| 0; 0; -1; -1 |] in
  let counts, _ = Programs.subtree_counts g ~parent in
  check int "root" 2 counts.(0);
  check int "outside untouched" 1 counts.(2)

let test_cost_max_bits_tracks_max () =
  let c = Cost.create () in
  Cost.charge c ~max_bits:4 "a";
  check int "first charge sets it" 4 (Cost.max_message_bits c);
  Cost.charge c ~max_bits:2 "a";
  check int "smaller charge ignored" 4 (Cost.max_message_bits c);
  Cost.charge c ~max_bits:9 "b";
  check int "larger charge raises it" 9 (Cost.max_message_bits c);
  check int "rounds default to 1 each" 3 (Cost.rounds c);
  check int "messages default to 0" 0 (Cost.messages c)

(* ------------------------------------------------------------------ *)
(* Property: simulator BFS = sequential BFS                             *)
(* ------------------------------------------------------------------ *)

let prop_sim_bfs =
  QCheck.Test.make ~name:"simulated BFS equals sequential BFS" ~count:25
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 2 30)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.ensure_connected rng (Gen.erdos_renyi rng n 0.15) in
      let src = seed mod n in
      let (dist, _), _ = Programs.bfs g ~source:src in
      dist = Bfs.distances g ~source:src)

let prop_leader_min =
  QCheck.Test.make ~name:"leader election finds component minimum" ~count:25
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 2 30)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n 0.1 in
      let leaders, _ = Programs.leader_election g in
      let ids, _ = Components.component_ids g in
      let mins = Hashtbl.create 8 in
      List.iter
        (fun v ->
          let c = ids.(v) in
          let cur = Option.value ~default:max_int (Hashtbl.find_opt mins c) in
          Hashtbl.replace mins c (min cur v))
        (Graph.nodes g);
      List.for_all
        (fun v -> leaders.(v) = Hashtbl.find mins ids.(v))
        (Graph.nodes g))

(* a Cost meter charged from each program's Sim stats reproduces the
   simulator's own accounting — the anchoring claim of DESIGN.md §5 *)
let prop_cost_matches_sim =
  QCheck.Test.make
    ~name:"Cost meter charged from Sim stats agrees with the simulator"
    ~count:25
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 2 30)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.ensure_connected rng (Gen.erdos_renyi rng n 0.15) in
      let c = Cost.create () in
      let charge tag (stats : Sim.stats) =
        Cost.charge c ~rounds:stats.Sim.rounds_used
          ~messages:stats.Sim.total_messages ~max_bits:stats.Sim.max_bits_seen
          tag
      in
      let leaders, s1 = Programs.leader_election g in
      charge "leader" s1;
      let (_, parent), s2 = Programs.bfs g ~source:leaders.(0) in
      charge "bfs" s2;
      let _, s3 = Programs.subtree_counts g ~parent in
      charge "convergecast" s3;
      Cost.rounds c
      = s1.Sim.rounds_used + s2.Sim.rounds_used + s3.Sim.rounds_used
      && Cost.messages c
         = s1.Sim.total_messages + s2.Sim.total_messages + s3.Sim.total_messages
      && Cost.max_message_bits c
         = max s1.Sim.max_bits_seen
             (max s2.Sim.max_bits_seen s3.Sim.max_bits_seen)
      && Cost.breakdown c
         = [
             ("bfs", s2.Sim.rounds_used);
             ("convergecast", s3.Sim.rounds_used);
             ("leader", s1.Sim.rounds_used);
           ])

let () =
  Alcotest.run "congest"
    [
      ( "bits",
        [
          Alcotest.test_case "int_bits" `Quick test_int_bits;
          Alcotest.test_case "id_bits" `Quick test_id_bits;
        ] );
      ( "cost",
        [
          Alcotest.test_case "accumulates" `Quick test_cost_accumulates;
          Alcotest.test_case "reset" `Quick test_cost_reset;
          Alcotest.test_case "parallel" `Quick test_cost_parallel;
          Alcotest.test_case "merge max" `Quick test_cost_merge_max;
          Alcotest.test_case "parallel empty" `Quick test_cost_parallel_empty;
          Alcotest.test_case "rejects negative" `Quick
            test_cost_rejects_negative;
          Alcotest.test_case "max bits tracks max" `Quick
            test_cost_max_bits_tracks_max;
        ] );
      ( "sim",
        [
          Alcotest.test_case "delivers messages" `Quick
            test_sim_delivers_messages;
          Alcotest.test_case "bandwidth enforced" `Quick
            test_sim_bandwidth_enforced;
          Alcotest.test_case "rejects non-neighbor" `Quick
            test_sim_rejects_non_neighbor;
          Alcotest.test_case "rejects double send" `Quick
            test_sim_rejects_double_send;
          Alcotest.test_case "max rounds cutoff" `Quick
            test_sim_max_rounds_cutoff;
        ] );
      ( "programs",
        [
          Alcotest.test_case "leader election" `Quick
            test_leader_election_connected;
          Alcotest.test_case "leader per component" `Quick
            test_leader_election_per_component;
          Alcotest.test_case "leader rounds ~ diameter" `Quick
            test_leader_election_rounds_near_diameter;
          Alcotest.test_case "leader message size" `Quick
            test_leader_election_message_size;
          Alcotest.test_case "bfs matches central" `Quick
            test_bfs_program_matches_central;
          Alcotest.test_case "bfs rounds anchor cost model" `Quick
            test_bfs_program_rounds_anchor_cost_model;
          Alcotest.test_case "subtree counts path" `Quick
            test_subtree_counts_path;
          Alcotest.test_case "subtree counts bfs tree" `Quick
            test_subtree_counts_bfs_tree;
          Alcotest.test_case "subtree counts skip" `Quick
            test_subtree_counts_skips_non_tree_nodes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sim_bfs; prop_leader_min; prop_cost_matches_sim ] );
    ]
