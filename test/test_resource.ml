(* Tests for the resource side channel (Congest.Resource): the exact-sum
   attribution invariant (per-path self seconds/words plus "(unspanned)"
   reproduce the process totals, fault-free and adversarial, weak and
   strong engines), byte-identical traces with and without a recorder
   attached, the Chrome trace-event export round-trip with balanced B/E
   stack discipline, the peak-heap watermark, and the folded/CSV/metrics
   surfaces. *)

open Dsgraph
module Sim = Congest.Sim
module Trace = Congest.Trace
module Span = Congest.Span
module Metrics = Congest.Metrics
module Fault = Congest.Fault
module Resource = Congest.Resource

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let grid8 = Gen.grid 8 8

let er seed n =
  Gen.ensure_connected (Rng.create seed) (Gen.erdos_renyi (Rng.create seed) n 0.08)

let find_rollup path rolls =
  match
    List.find_opt (fun (r : Resource.rollup) -> r.Resource.r_path = path) rolls
  with
  | Some r -> r
  | None -> Alcotest.fail ("missing resource rollup for " ^ path)

(* ------------------------------------------------------------------ *)
(* Exact-sum invariant                                                  *)
(* ------------------------------------------------------------------ *)

(* One atomic snapshot: self words over every path (unspanned included)
   must equal the window totals EXACTLY — integral word counts stored in
   floats add without rounding below 2^53. Seconds get a tolerance. *)
let assert_exact_sums name res =
  let rolls, tot = Resource.snapshot res in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0.0 rolls in
  let sumi f = List.fold_left (fun acc r -> acc + f r) 0 rolls in
  check (Alcotest.float 0.0) (* exact float equality, on purpose *)
    (name ^ ": minor words attributed")
    tot.Resource.t_minor_words
    (sumf (fun r -> r.Resource.r_minor_words));
  check (Alcotest.float 0.0)
    (name ^ ": promoted words attributed")
    tot.Resource.t_promoted_words
    (sumf (fun r -> r.Resource.r_promoted_words));
  check (Alcotest.float 0.0)
    (name ^ ": major words attributed")
    tot.Resource.t_major_words
    (sumf (fun r -> r.Resource.r_major_words));
  check int
    (name ^ ": major collections attributed")
    tot.Resource.t_major_collections
    (sumi (fun r -> r.Resource.r_major_collections));
  check (Alcotest.float 1e-6)
    (name ^ ": seconds attributed")
    tot.Resource.t_seconds
    (sumf (fun r -> r.Resource.r_seconds));
  check bool (name ^ ": window nonempty") true (tot.Resource.t_seconds > 0.0);
  check bool (name ^ ": something was allocated") true
    (tot.Resource.t_minor_words > 0.0);
  rolls

let attach_fresh sink =
  let res = Resource.create () in
  Resource.attach res sink;
  res

let test_sums_weak_fault_free () =
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  let rolls = assert_exact_sums "weak carve" res in
  let root = find_rollup "weakdiam_sim" rolls in
  check bool "root saw wall time" true (root.Resource.r_seconds_incl > 0.0);
  check bool "root saw allocation" true
    (root.Resource.r_minor_words_incl > 0.0);
  check bool "simulate phase charged" true
    (List.exists
       (fun (r : Resource.rollup) -> r.Resource.r_path = "weakdiam_sim/simulate")
       rolls);
  (* construction work before the first enter_span lands unspanned *)
  ignore (find_rollup "(unspanned)" rolls)

let test_sums_weak_adversarial () =
  let adv =
    Fault.create (Fault.spec ~seed:5 ~drop:0.05 ~duplicate:0.02 ~delay:0.03 ())
  in
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  let r =
    Weakdiam.Distributed.carve_reliable ~adversary:adv ~trace:sink
      (Gen.grid 5 5) ~epsilon:0.5
  in
  check bool "adversary actually dropped" true
    (r.Weakdiam.Distributed.r_sim_stats.Sim.faults.Sim.dropped > 0);
  let rolls = assert_exact_sums "weak carve reliable+adversary" res in
  ignore (find_rollup "weakdiam_reliable" rolls)

let test_sums_strong_fault_free () =
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  let cost = Congest.Cost.create ~trace:sink () in
  ignore (Strongdecomp.Netdecomp.strong ~cost grid8);
  let rolls = assert_exact_sums "thm2.3" res in
  ignore (find_rollup "netdecomp" rolls);
  check bool "color phases charged" true
    (List.exists
       (fun (r : Resource.rollup) -> r.Resource.r_path = "netdecomp/color=0")
       rolls)

let test_sums_strong_adversarial () =
  let adv = Fault.create (Fault.spec ~seed:9 ~drop:0.08 ~delay:0.05 ()) in
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  let r =
    Baseline.Mpx_distributed.partition ~adversary:adv ~trace:sink (er 3 80)
      ~beta:0.4
  in
  check bool "adversary actually dropped" true
    (r.Baseline.Mpx_distributed.sim_stats.Sim.faults.Sim.dropped > 0);
  let rolls = assert_exact_sums "mpx under faults" res in
  ignore (find_rollup "mpx_partition" rolls)

let test_sums_stable_across_reads () =
  (* reading is itself work: a second snapshot re-charges the list
     allocation of the first to (unspanned) and the invariant must
     still hold exactly *)
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  ignore (assert_exact_sums "first read" res);
  ignore (assert_exact_sums "second read" res);
  ignore (Resource.rollups res);
  ignore (assert_exact_sums "after separate reads" res)

(* ------------------------------------------------------------------ *)
(* Traces stay byte-identical                                           *)
(* ------------------------------------------------------------------ *)

let test_trace_byte_identical () =
  (* the side channel must never leak into the packed stream: the same
     seeded run with and without a recorder serializes identically *)
  let run ~resourced =
    let sink = Trace.sink () in
    if resourced then ignore (attach_fresh sink);
    ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
    Trace.to_jsonl sink
  in
  let bare = run ~resourced:false and profiled = run ~resourced:true in
  check bool "traces byte-identical" true (String.equal bare profiled);
  let strong ~resourced =
    let sink = Trace.sink () in
    if resourced then ignore (attach_fresh sink);
    let cost = Congest.Cost.create ~trace:sink () in
    ignore (Strongdecomp.Netdecomp.strong ~cost (Gen.grid 6 6));
    Trace.to_jsonl sink
  in
  check bool "strong traces byte-identical" true
    (String.equal (strong ~resourced:false) (strong ~resourced:true))

let test_span_seconds_served_by_recorder () =
  (* Span.rollups seconds columns light up only when a recorder is
     attached; without one span_seconds is empty *)
  let bare = Trace.sink () in
  ignore (Weakdiam.Distributed.carve ~trace:bare grid8 ~epsilon:0.5);
  check int "no recorder, no seconds" 0 (List.length (Trace.span_seconds bare));
  let sink = Trace.sink () in
  ignore (attach_fresh sink);
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  check bool "recorder serves seconds" true
    (List.length (Trace.span_seconds sink) > 0);
  let rolls = Span.rollups sink in
  check bool "Span rollups see wall time" true
    (List.exists (fun (r : Span.rollup) -> r.Span.seconds_incl > 0.0) rolls)

let test_clear_detaches () =
  let sink = Trace.sink () in
  ignore (attach_fresh sink);
  Span.enter (Some sink) "a";
  Span.exit (Some sink);
  check bool "seconds before clear" true
    (List.length (Trace.span_seconds sink) > 0);
  Trace.clear sink;
  check int "clear resets the hooks" 0 (List.length (Trace.span_seconds sink));
  (* spans still work recorder-free after clear *)
  Span.enter (Some sink) "b";
  Span.exit (Some sink);
  check int "stack balanced" 0 (Trace.span_depth sink)

(* ------------------------------------------------------------------ *)
(* Peak-heap watermark                                                  *)
(* ------------------------------------------------------------------ *)

let test_peak_heap_watermark () =
  let res = Resource.create () in
  (* force the major heap past 8 MB and keep it reachable across the
     sample so the watermark must see it *)
  let big = Array.make (1 lsl 20) 0.0 in
  let tot = Resource.totals res in
  check bool "watermark saw the major heap" true
    (Resource.peak_heap_mb tot > 4.0);
  check bool "watermark is words" true (tot.Resource.t_peak_heap_words > 0);
  ignore (Array.length big)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                            *)
(* ------------------------------------------------------------------ *)

let test_chrome_round_trip () =
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  let events = Resource.chrome_events res in
  check bool "timeline nonempty" true (events <> []);
  (* balanced B/E with stack discipline: every E closes the most recent
     open B of the same path, and nothing stays open *)
  let depth =
    List.fold_left
      (fun stack (e : Resource.chrome_event) ->
        match e.Resource.ce_phase with
        | `B -> e.Resource.ce_path :: stack
        | `E -> (
            match stack with
            | top :: rest ->
                check Alcotest.string "E closes innermost B" top
                  e.Resource.ce_path;
                rest
            | [] -> Alcotest.fail "E without open B"))
      [] events
  in
  check int "all spans closed" 0 (List.length depth);
  (* timestamps are monotone microseconds from the recorder origin *)
  ignore
    (List.fold_left
       (fun prev (e : Resource.chrome_event) ->
         check bool "monotone ts" true (e.Resource.ce_ts >= prev);
         e.Resource.ce_ts)
       0.0 events);
  (* the JSON serialization parses back to the same timeline *)
  match Resource.chrome_of_json (Resource.chrome_json res) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      check int "same event count" (List.length events) (List.length parsed);
      check bool "round-trips exactly" true (parsed = events)

let test_chrome_json_shape () =
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  Span.enter (Some sink) "outer";
  Span.enter (Some sink) "inner";
  Span.exit (Some sink);
  Span.exit (Some sink);
  let json = Resource.chrome_json res in
  let has sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check bool "catapult envelope" true (has "\"traceEvents\":[");
  check bool "display unit" true (has "\"displayTimeUnit\":\"ms\"");
  check bool "begin phase" true (has "\"ph\":\"B\"");
  check bool "end phase" true (has "\"ph\":\"E\"");
  (* names are the last segment; args carry the full path *)
  check bool "short name" true (has "\"name\":\"inner\"");
  check bool "full path in args" true (has "outer/inner")

let test_chrome_rejects_garbage () =
  check bool "not json" true
    (Result.is_error (Resource.chrome_of_json "\"ph\":\"B\" but no ts"));
  check bool "empty input round-trips" true
    (Resource.chrome_of_json "{\"traceEvents\":[\n]}" = Ok [])

(* ------------------------------------------------------------------ *)
(* Folded stacks, CSV, metrics, weights                                 *)
(* ------------------------------------------------------------------ *)

let test_folded_parses () =
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  List.iter
    (fun weight ->
      match Span.of_folded (Resource.to_folded ~weight res) with
      | Error e -> Alcotest.fail e
      | Ok pairs ->
          check bool "nonempty folded stacks" true (pairs <> []);
          List.iter
            (fun (path, v) ->
              check bool "positive weights only" true (v > 0);
              check bool "known path" true (String.length path > 0))
            pairs)
    [ `Seconds; `Minor_words ]

let test_weight_of_string () =
  check bool "seconds" true (Resource.weight_of_string "seconds" = Some `Seconds);
  check bool "minor" true
    (Resource.weight_of_string "minor-words" = Some `Minor_words);
  check bool "major" true
    (Resource.weight_of_string "major-words" = Some `Major_words);
  check bool "unknown" true (Resource.weight_of_string "rounds" = None)

let test_csv_shape () =
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  Span.enter (Some sink) "a";
  Span.exit (Some sink);
  let rolls, _ = Resource.snapshot res in
  let csv = Resource.csv rolls in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check bool "header + unspanned + a" true (List.length lines >= 3);
  check Alcotest.string "header row"
    "path,depth,entries,seconds,seconds_incl,minor_words,minor_words_incl,promoted_words,promoted_words_incl,major_words,major_words_incl,major_collections,major_collections_incl"
    (List.hd lines);
  check bool "a row present" true
    (List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "a,") lines)

let test_metrics_export () =
  let sink = Trace.sink () in
  let res = attach_fresh sink in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5);
  let _, tot = Resource.snapshot res in
  let m = Resource.metrics res in
  check bool "seconds gauge" true
    (Metrics.gauge_value (Metrics.gauge m "res.seconds") > 0.0);
  check bool "minor words gauge" true
    (Metrics.gauge_value (Metrics.gauge m "res.minor_words")
     >= tot.Resource.t_minor_words);
  check int "major collections counter"
    tot.Resource.t_major_collections
    (Metrics.counter_value (Metrics.counter m "res.major_collections"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "resource"
    [
      ( "exact-sum",
        [
          Alcotest.test_case "weak fault-free" `Quick test_sums_weak_fault_free;
          Alcotest.test_case "weak adversarial" `Quick
            test_sums_weak_adversarial;
          Alcotest.test_case "strong fault-free" `Quick
            test_sums_strong_fault_free;
          Alcotest.test_case "strong adversarial" `Quick
            test_sums_strong_adversarial;
          Alcotest.test_case "stable across reads" `Quick
            test_sums_stable_across_reads;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "traces byte-identical" `Quick
            test_trace_byte_identical;
          Alcotest.test_case "span seconds via recorder" `Quick
            test_span_seconds_served_by_recorder;
          Alcotest.test_case "clear detaches" `Quick test_clear_detaches;
        ] );
      ( "watermark",
        [ Alcotest.test_case "peak heap" `Quick test_peak_heap_watermark ] );
      ( "chrome",
        [
          Alcotest.test_case "round trip" `Quick test_chrome_round_trip;
          Alcotest.test_case "json shape" `Quick test_chrome_json_shape;
          Alcotest.test_case "rejects garbage" `Quick
            test_chrome_rejects_garbage;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "folded parses" `Quick test_folded_parses;
          Alcotest.test_case "weight names" `Quick test_weight_of_string;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
          Alcotest.test_case "metrics export" `Quick test_metrics_export;
        ] );
    ]
