(* Tests for Workload.Audit: per-cluster quality certificates and their
   independent re-verification against the raw graph.

   The certificates of honest runs must verify; the load-bearing tests
   seed corruptions — a wrong diameter witness, overlapping colors,
   miscounted dead nodes, and structural tampering — and assert that
   [Audit.verify] rejects every one. The verifier only consults the
   graph, so these rejections hold no matter which algorithm produced
   the certificate. *)

module Audit = Workload.Audit
open Dsgraph

let check = Alcotest.check
let bool = Alcotest.bool

(* abcp96 on grid64 yields many clusters over 2 colors, several with
   more than one member — enough structure for every corruption below
   (the paper's own algorithms often cover small grids with a single
   cluster, which would leave the adjacency corruptions nothing to
   corrupt) *)
let decomp_fixture =
  lazy
    (let d = Workload.Algorithms.find_decomposer "abcp96" in
     let _, decomp, g =
       Workload.Measure.decomposition_result d Workload.Suite.grid ~n:64
     in
     (Audit.certify_decomposition decomp, g))

let carve_fixture =
  lazy
    (let c = Workload.Algorithms.find_carver "thm2.2" in
     let _, carving, g =
       Workload.Measure.carving_result c Workload.Suite.grid ~n:64
         ~epsilon:0.25
     in
     (Audit.certify_carving carving, g))

let is_ok = function Ok () -> true | Error _ -> false

let expect_reject what g t =
  match Audit.verify g t with
  | Ok () -> Alcotest.failf "corruption not rejected: %s" what
  | Error _ -> ()

(* rebuild the audit with cluster [i]'s certificate transformed *)
let tamper t i f =
  {
    t with
    Audit.certs =
      List.map
        (fun (c : Audit.cert) -> if c.Audit.cluster = i then f c else c)
        t.Audit.certs;
  }

let test_honest_decomposition_verifies () =
  let t, g = Lazy.force decomp_fixture in
  (match Audit.verify g t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest decomposition rejected: %s" e);
  check bool "has clusters" true (t.Audit.certs <> []);
  check bool "decompositions leave nobody dead" true (t.Audit.dead = 0);
  check bool "bounds are consistent" true
    (match Audit.max_diameter_ub t with
    | Some ub -> Audit.max_diameter_lb t <= ub
    | None -> false)

let test_honest_carving_verifies () =
  let t, g = Lazy.force carve_fixture in
  (match Audit.verify g t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest carving rejected: %s" e);
  List.iter
    (fun (c : Audit.cert) ->
      check bool "carved clusters carry no colors" true (c.Audit.color = -1))
    t.Audit.certs

(* corruption 1: wrong diameter witness — inflate the claimed height
   (and the upper bound consistently); the verifier recomputes depths
   from the parent pointers and must notice *)
let test_rejects_wrong_witness_height () =
  let t, g = Lazy.force decomp_fixture in
  let big =
    List.find
      (fun (c : Audit.cert) -> List.length c.Audit.members > 1)
      t.Audit.certs
  in
  let bad =
    tamper t big.Audit.cluster (fun c ->
        match c.Audit.tree with
        | Some w ->
            let w = { w with Audit.w_height = w.Audit.w_height + 1 } in
            {
              c with
              Audit.tree = Some w;
              diameter_ub = Some (2 * w.Audit.w_height);
            }
        | None -> c)
  in
  expect_reject "inflated witness height" g bad

(* corruption 1b: tampered eccentric pair — the claimed lower bound no
   longer matches the BFS distance of the named pair *)
let test_rejects_wrong_diameter_lb () =
  let t, g = Lazy.force decomp_fixture in
  let big =
    List.find
      (fun (c : Audit.cert) -> List.length c.Audit.members > 1)
      t.Audit.certs
  in
  let bad =
    tamper t big.Audit.cluster (fun c ->
        { c with Audit.diameter_lb = c.Audit.diameter_lb + 1 })
  in
  expect_reject "inflated diameter lower bound" g bad

(* corruption 2: overlapping colors — recolor one cluster to the color
   of an adjacent cluster; one edge scan must refute disjointness *)
let test_rejects_overlapping_colors () =
  let t, g = Lazy.force decomp_fixture in
  let owner = Array.make t.Audit.n (-1) in
  List.iter
    (fun (c : Audit.cert) ->
      List.iter (fun v -> owner.(v) <- c.Audit.cluster) c.Audit.members)
    t.Audit.certs;
  let pair = ref None in
  Graph.iter_edges g (fun u v ->
      if !pair = None && owner.(u) >= 0 && owner.(v) >= 0 && owner.(u) <> owner.(v)
      then pair := Some (owner.(u), owner.(v)));
  match !pair with
  | None -> Alcotest.fail "fixture has no adjacent cluster pair"
  | Some (a, b) ->
      let color_of i =
        (List.find (fun (c : Audit.cert) -> c.Audit.cluster = i) t.Audit.certs)
          .Audit.color
      in
      let bad = tamper t a (fun c -> { c with Audit.color = color_of b }) in
      expect_reject "adjacent clusters share a color" g bad

(* corruption 3: miscounted dead nodes *)
let test_rejects_miscounted_dead () =
  let t, g = Lazy.force carve_fixture in
  expect_reject "dead count off by one" g
    { t with Audit.dead = t.Audit.dead + 1 };
  expect_reject "dead fraction tampered" g
    { t with Audit.dead_fraction = t.Audit.dead_fraction +. 0.125 }

(* corruption 4: structural tampering — stolen members and forged tree
   edges must also fall to the graph-only checks *)
let test_rejects_structural_tampering () =
  let t, g = Lazy.force decomp_fixture in
  (match t.Audit.certs with
  | (a : Audit.cert) :: (b : Audit.cert) :: _ ->
      let stolen = List.hd a.Audit.members in
      let bad =
        tamper t b.Audit.cluster (fun c ->
            { c with Audit.members = stolen :: c.Audit.members })
      in
      expect_reject "member claimed by two clusters" g bad
  | _ -> Alcotest.fail "fixture has fewer than two clusters");
  let with_tree =
    List.find
      (fun (c : Audit.cert) ->
        match c.Audit.tree with
        | Some w -> w.Audit.w_parents <> []
        | None -> false)
      t.Audit.certs
  in
  let bad =
    tamper t with_tree.Audit.cluster (fun c ->
        match c.Audit.tree with
        | Some w ->
            let far v = if v >= 32 then 0 else t.Audit.n - 1 in
            let w_parents =
              match w.Audit.w_parents with
              | (v, _) :: rest -> (v, far v) :: rest
              | [] -> []
            in
            { c with Audit.tree = Some { w with Audit.w_parents } }
        | None -> c)
  in
  expect_reject "forged tree edge" g bad

let test_verify_is_independent () =
  (* a certificate for the wrong graph must be rejected outright *)
  let t, _ = Lazy.force decomp_fixture in
  let other = Gen.grid 4 4 in
  check bool "wrong graph rejected" false (is_ok (Audit.verify other t))

let () =
  Alcotest.run "audit"
    [
      ( "audit",
        [
          Alcotest.test_case "honest decomposition verifies" `Quick
            test_honest_decomposition_verifies;
          Alcotest.test_case "honest carving verifies" `Quick
            test_honest_carving_verifies;
          Alcotest.test_case "rejects inflated witness height" `Quick
            test_rejects_wrong_witness_height;
          Alcotest.test_case "rejects tampered diameter lower bound" `Quick
            test_rejects_wrong_diameter_lb;
          Alcotest.test_case "rejects overlapping colors" `Quick
            test_rejects_overlapping_colors;
          Alcotest.test_case "rejects miscounted dead nodes" `Quick
            test_rejects_miscounted_dead;
          Alcotest.test_case "rejects structural tampering" `Quick
            test_rejects_structural_tampering;
          Alcotest.test_case "verification is graph-anchored" `Quick
            test_verify_is_independent;
        ] );
    ]
