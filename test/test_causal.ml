(* Tests for Congest.Causal, the happens-before replay analyzer.

   The load-bearing property is the exact-sum acceptance criterion: on
   every fault-free registry run (engine-level, Cost_charged only) the
   critical-path length equals the measured round count exactly, with
   zero slack. Hand-built traces pin down the chain arithmetic, the
   fault degradation to [exact = false], and the per-span
   critical/slack split; a real simulator run cross-checks against
   Sim.stats. *)

module Trace = Congest.Trace
module Causal = Congest.Causal
open Dsgraph

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* sim-shaped hand trace: within a round, deliveries (of the previous
   round's sends) precede sends, as the simulator emits them *)
let chain_sink () =
  let s = Trace.sink () in
  Trace.record s (Trace.Round_start { round = 1 });
  Trace.emit_message_sent s ~round:1 ~src:0 ~dst:1 ~bits:8;
  (* a parallel message off the chain: same shape, shorter chain *)
  Trace.emit_message_sent s ~round:1 ~src:3 ~dst:4 ~bits:16;
  Trace.record s
    (Trace.Round_end { round = 1; sent = 2; delivered = 0; in_flight = 2; halted = 0 });
  Trace.record s (Trace.Round_start { round = 2 });
  Trace.emit_message_delivered s ~round:2 ~src:0 ~dst:1;
  Trace.emit_message_delivered s ~round:2 ~src:3 ~dst:4;
  Trace.emit_message_sent s ~round:2 ~src:1 ~dst:2 ~bits:8;
  Trace.record s
    (Trace.Round_end { round = 2; sent = 1; delivered = 2; in_flight = 1; halted = 0 });
  Trace.record s (Trace.Round_start { round = 3 });
  Trace.emit_message_delivered s ~round:3 ~src:1 ~dst:2;
  Trace.record s
    (Trace.Round_end { round = 3; sent = 0; delivered = 1; in_flight = 0; halted = 5 });
  s

let test_hand_chain () =
  let t = Causal.analyze (chain_sink ()) in
  check int "sim rounds counted" 3 t.Causal.sim_rounds;
  check int "no engine rounds" 0 t.Causal.engine_rounds;
  check int "total rounds" 3 t.Causal.rounds;
  check bool "fault-free trace is exact" true t.Causal.exact;
  (* 0 -> 1 (rounds 1->2) then 1 -> 2 (rounds 2->3): chain value 2 *)
  check int "chain rounds" 2 t.Causal.chain_rounds;
  check int "chain hops" 2 (List.length t.Causal.chain);
  check int "critical = chain (no engine part)" 2 t.Causal.critical_rounds;
  (* round 1 holds only the initial sends: slack *)
  check int "slack rounds" 1 t.Causal.slack_rounds;
  (match t.Causal.chain with
  | [ h1; h2 ] ->
      check int "hop 1 src" 0 h1.Causal.src;
      check int "hop 1 dst" 1 h1.Causal.dst;
      check int "hop 1 delivered one round after send"
        (h1.Causal.sent_round + 1) h1.Causal.delivered_round;
      check int "hop 2 extends from hop 1's destination" h1.Causal.dst
        h2.Causal.src;
      check bool "hops causally ordered" true
        (h2.Causal.sent_round >= h1.Causal.delivered_round)
  | _ -> Alcotest.fail "expected a two-hop chain");
  (* node depths: the chain grows 0 -> 1 -> 2; the side message gives 4
     depth 1; senders that receive nothing stay at 0 *)
  check int "depth at chain end" 2 t.Causal.node_depth.(2);
  check int "depth mid-chain" 1 t.Causal.node_depth.(1);
  check int "depth off-chain" 1 t.Causal.node_depth.(4);
  check int "depth at source" 0 t.Causal.node_depth.(0);
  (* rounds 2 and 3 are on the chain; round 1 is not *)
  check bool "round 1 slack" false t.Causal.round_critical.(1);
  check bool "round 2 critical" true t.Causal.round_critical.(2);
  check bool "round 3 critical" true t.Causal.round_critical.(3);
  (* exactly chain_rounds rounds are marked critical (disjoint hops) *)
  let marked = ref 0 in
  Array.iter (fun b -> if b then incr marked) t.Causal.round_critical;
  check int "marked rounds = chain rounds" t.Causal.chain_rounds !marked

let test_faults_degrade_exactness () =
  let s = chain_sink () in
  Trace.record s
    (Trace.Message_dropped { round = 3; src = 2; dst = 3; reason = Trace.Adversary });
  let t = Causal.analyze s in
  check bool "drop clears exact" false t.Causal.exact;
  let s = chain_sink () in
  Trace.record s (Trace.Message_delayed { round = 3; src = 2; dst = 3; delay = 2 });
  check bool "delay clears exact" false (Causal.analyze s).Causal.exact;
  (* an unmatched delivery (no prior send on that edge) also degrades *)
  let s = chain_sink () in
  Trace.emit_message_delivered s ~round:3 ~src:7 ~dst:8;
  check bool "unmatched delivery clears exact" false
    (Causal.analyze s).Causal.exact

let test_empty_sink () =
  let t = Causal.analyze (Trace.sink ()) in
  check int "no rounds" 0 t.Causal.rounds;
  check int "no chain" 0 (List.length t.Causal.chain);
  check int "no nodes" 0 t.Causal.nodes;
  check bool "vacuously exact" true t.Causal.exact

(* THE acceptance property: engine-level registry runs are a single
   sequential thread, so critical = rounds and slack = 0, exactly *)
let test_registry_exact_sum () =
  let run_decomposer (d : Workload.Algorithms.decomposer) family n =
    let sink = Trace.sink () in
    let row =
      Workload.Measure.decomposition_row ~trace:sink d family ~n
    in
    let t = Causal.analyze sink in
    let label what =
      Printf.sprintf "%s/%s n=%d: %s" d.Workload.Algorithms.name
        family.Workload.Suite.name n what
    in
    check int (label "critical path = measured rounds")
      row.Workload.Measure.rounds t.Causal.critical_rounds;
    check int (label "no slack") 0 t.Causal.slack_rounds;
    check bool (label "exact") true t.Causal.exact
  in
  List.iter
    (fun d ->
      run_decomposer d Workload.Suite.grid 64;
      run_decomposer d Workload.Suite.erdos_renyi 48)
    Workload.Algorithms.decomposers;
  List.iter
    (fun (c : Workload.Algorithms.carver) ->
      let sink = Trace.sink () in
      let row =
        Workload.Measure.carving_row ~trace:sink c Workload.Suite.grid ~n:64
          ~epsilon:0.25
      in
      let t = Causal.analyze sink in
      let label what =
        Printf.sprintf "%s/grid64: %s" c.Workload.Algorithms.name what
      in
      check int (label "critical path = measured rounds")
        row.Workload.Measure.rounds t.Causal.critical_rounds;
      check int (label "no slack") 0 t.Causal.slack_rounds)
    Workload.Algorithms.carvers

let test_simulated_run () =
  let g = Gen.grid 8 8 in
  let sink = Trace.sink () in
  let r = Weakdiam.Distributed.carve ~trace:sink g ~epsilon:0.5 in
  let t = Causal.analyze sink in
  check int "sim rounds match Sim.stats"
    r.Weakdiam.Distributed.sim_stats.Congest.Sim.rounds_used
    t.Causal.sim_rounds;
  check bool "fault-free sim run is exact" true t.Causal.exact;
  check bool "critical path bounded by rounds" true
    (t.Causal.critical_rounds <= t.Causal.rounds);
  check bool "nonempty chain on a real run" true (t.Causal.chain <> []);
  (* consecutive hops occupy disjoint, ordered round intervals *)
  let rec ordered = function
    | h1 :: (h2 :: _ as rest) ->
        h1.Causal.delivered_round > h1.Causal.sent_round
        && h2.Causal.sent_round >= h1.Causal.delivered_round
        && ordered rest
    | [ h ] -> h.Causal.delivered_round > h.Causal.sent_round
    | [] -> true
  in
  check bool "chain hops causally ordered" true (ordered t.Causal.chain);
  (* the per-span split partitions the full round count *)
  let spans = Causal.span_breakdown sink t in
  let covered =
    List.fold_left
      (fun acc s -> acc + s.Causal.critical + s.Causal.slack)
      0 spans
  in
  check int "span critical+slack partition the rounds" t.Causal.rounds covered;
  let critical_total =
    List.fold_left (fun acc s -> acc + s.Causal.critical) 0 spans
  in
  check int "span critical totals match" t.Causal.critical_rounds
    critical_total

let test_metrics_emitter () =
  let sink = Trace.sink () in
  ignore (Weakdiam.Distributed.carve ~trace:sink (Gen.grid 8 8) ~epsilon:0.5);
  let t = Causal.analyze sink in
  let m = Causal.metrics t in
  let cv name =
    Congest.Metrics.counter_value (Congest.Metrics.counter m name)
  in
  check int "causal_rounds counter" t.Causal.rounds (cv "causal_rounds");
  check int "causal_critical_rounds counter" t.Causal.critical_rounds
    (cv "causal_critical_rounds");
  check int "causal_slack_rounds counter" t.Causal.slack_rounds
    (cv "causal_slack_rounds");
  check int "causal_chain_hops counter"
    (List.length t.Causal.chain)
    (cv "causal_chain_hops");
  let active =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
      t.Causal.node_active
  in
  check int "one slack observation per active node" active
    (Congest.Metrics.hist_count
       (Congest.Metrics.histogram m "causal_node_slack"))

let () =
  Alcotest.run "causal"
    [
      ( "causal",
        [
          Alcotest.test_case "hand-built chain arithmetic" `Quick
            test_hand_chain;
          Alcotest.test_case "faults degrade to approximate" `Quick
            test_faults_degrade_exactness;
          Alcotest.test_case "empty sink" `Quick test_empty_sink;
          Alcotest.test_case "registry runs: critical = rounds exactly"
            `Quick test_registry_exact_sum;
          Alcotest.test_case "simulated run cross-checks" `Quick
            test_simulated_run;
          Alcotest.test_case "metrics emitter" `Quick test_metrics_emitter;
        ] );
    ]
