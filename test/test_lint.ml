(* Tests for the source-level conformance lint (tools/lint): the committed
   bad fixture must trip every rule, the good fixture none, the allow /
   disable configuration must suppress findings, unparseable input must
   degrade to a parse-error finding, and the shipped tree itself must lint
   clean under the default configuration. *)

let check = Alcotest.check
let int = Alcotest.int

let rules_of findings =
  List.sort_uniq compare (List.map (fun f -> f.Lint_core.rule) findings)

let count rule findings =
  List.length (List.filter (fun f -> f.Lint_core.rule = rule) findings)

(* The binary lives in _build/default/test, where dune copies the sources
   (and, via the stanza deps, the fixtures). Resolve everything relative
   to the executable, so both `dune runtest` (cwd = test dir) and
   `dune exec` (cwd = invocation dir) find them. *)
let test_dir = Filename.dirname Sys.executable_name
let fixture name = Filename.concat (Filename.concat test_dir "fixtures") name

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "dune-project not found above test dir"
      else up parent
  in
  up test_dir

let test_bad_fixture () =
  let findings = Lint_core.lint_file (fixture "bad_congest.ml") in
  check
    Alcotest.(list string)
    "every rule trips"
    [ "catchall"; "obj"; "physeq"; "print-in-program"; "random" ]
    (rules_of findings);
  (* Random.bits + [module R = Random] *)
  check int "both Random uses found" 2 (count "random" findings);
  (* print_endline + Printf.printf, both inside the program record *)
  check int "both prints found" 2 (count "print-in-program" findings);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        "finding carries a location" true
        (f.Lint_core.line > 0 && f.Lint_core.file <> ""))
    findings

let test_good_fixture () =
  check int "good fixture lints clean" 0
    (List.length (Lint_core.lint_file (fixture "good_congest.ml")))

let test_allow_and_disable () =
  let allow_random =
    {
      Lint_core.disabled = [];
      allow = [ ("random", "fixtures") ];
    }
  in
  let findings =
    Lint_core.lint_file ~config:allow_random (fixture "bad_congest.ml")
  in
  check int "allow-listed rule suppressed" 0 (count "random" findings);
  check int "other rules still fire" 2 (count "print-in-program" findings);
  let disable_physeq =
    { Lint_core.disabled = [ "physeq" ]; allow = [] }
  in
  let findings =
    Lint_core.lint_file ~config:disable_physeq (fixture "bad_congest.ml")
  in
  check int "disabled rule silent" 0 (count "physeq" findings);
  check int "disable is per-rule" 2 (count "random" findings)

let test_bad_trace_fixture () =
  let findings = Lint_core.lint_file (fixture "bad_trace.ml") in
  check
    Alcotest.(list string)
    "only trace-emit trips" [ "trace-emit" ] (rules_of findings);
  (* record + emit_message_sent + emit_message_delivered + exit_span *)
  check int "every writer call found" 4 (count "trace-emit" findings);
  (* the default config allow-lists the one legitimate writer site *)
  let inside_congest =
    {
      Lint_core.disabled = [];
      allow = [ ("trace-emit", "fixtures") ];
    }
  in
  check int "allow-listed under lib/congest-style paths" 0
    (List.length
       (Lint_core.lint_file ~config:inside_congest (fixture "bad_trace.ml")))

let test_good_trace_fixture () =
  check int "trace consumers lint clean" 0
    (List.length (Lint_core.lint_file (fixture "good_trace.ml")))

let test_bad_edit_fixture () =
  let findings = Lint_core.lint_file (fixture "bad_edit.ml") in
  check
    Alcotest.(list string)
    "only graph-edit trips" [ "graph-edit" ] (rules_of findings);
  (* qualified, first-class, and unqualified-Graph call sites *)
  check int "every edit site found" 3 (count "graph-edit" findings);
  (* the default config allow-lists the engine and dsgraph themselves *)
  let inside_repair =
    { Lint_core.disabled = []; allow = [ ("graph-edit", "fixtures") ] }
  in
  check int "allow-listed under cluster/repair-style paths" 0
    (List.length
       (Lint_core.lint_file ~config:inside_repair (fixture "bad_edit.ml")))

let test_good_edit_fixture () =
  check int "repair-engine callers lint clean" 0
    (List.length (Lint_core.lint_file (fixture "good_edit.ml")))

let test_bad_io_fixture () =
  let findings = Lint_core.lint_file (fixture "bad_io.ml") in
  check
    Alcotest.(list string)
    "only raw-io trips" [ "raw-io" ] (rules_of findings);
  (* openfile + map_file + lseek + write + read *)
  check int "every raw call found" 5 (count "raw-io" findings);
  (* the default config allow-lists Dsgraph.Io and the trace sink *)
  let inside_io =
    { Lint_core.disabled = []; allow = [ ("raw-io", "fixtures") ] }
  in
  check int "allow-listed under dsgraph/io-style paths" 0
    (List.length (Lint_core.lint_file ~config:inside_io (fixture "bad_io.ml")))

let test_good_io_fixture () =
  check int "Io-mediated persistence lints clean" 0
    (List.length (Lint_core.lint_file (fixture "good_io.ml")))

let test_bad_clock_fixture () =
  let findings = Lint_core.lint_file (fixture "bad_clock.ml") in
  check
    Alcotest.(list string)
    "only wallclock trips" [ "wallclock" ] (rules_of findings);
  (* gettimeofday + Unix.time + Sys.time + Gc.minor_words
     + Stdlib.Gc.quick_stat + [module G = Gc] *)
  check int "every clock/GC read found" 6 (count "wallclock" findings);
  (* the default config allow-lists the resource layer and bench *)
  let inside_resource =
    { Lint_core.disabled = []; allow = [ ("wallclock", "fixtures") ] }
  in
  check int "allow-listed under congest/resource-style paths" 0
    (List.length
       (Lint_core.lint_file ~config:inside_resource (fixture "bad_clock.ml")))

let test_good_clock_fixture () =
  check int "Resource-mediated timing lints clean" 0
    (List.length (Lint_core.lint_file (fixture "good_clock.ml")))

let test_parse_error () =
  let path = Filename.temp_file "lint_garbage" ".ml" in
  let oc = open_out path in
  output_string oc "let let let = in in in";
  close_out oc;
  let findings = Lint_core.lint_file path in
  Sys.remove path;
  check Alcotest.(list string) "degrades to parse-error" [ "parse-error" ]
    (rules_of findings)

let test_tree_lints_clean () =
  let root = repo_root () in
  let roots =
    List.map (Filename.concat root) [ "lib"; "bin"; "bench" ]
  in
  let files = Lint_core.ml_files roots in
  Alcotest.(check bool) "found the tree" true (List.length files > 30);
  let findings = List.concat_map (fun f -> Lint_core.lint_file f) files in
  List.iter
    (fun f -> Format.eprintf "%a@." Lint_core.pp_finding f)
    findings;
  check int "shipped tree lints clean" 0 (List.length findings)

let test_json_shape () =
  let findings = Lint_core.lint_file (fixture "bad_congest.ml") in
  let json = Lint_core.to_json ~files_scanned:1 findings in
  Alcotest.(check bool)
    "mentions every rule name" true
    (List.for_all
       (fun (name, _) ->
         let needle = "\"" ^ name ^ "\"" in
         let n = String.length needle and m = String.length json in
         let rec go i =
           i + n <= m && (String.sub json i n = needle || go (i + 1))
         in
         go 0)
       Lint_core.rules)

let () =
  Alcotest.run "lint"
    [
      ( "lint",
        [
          Alcotest.test_case "bad fixture trips every rule" `Quick
            test_bad_fixture;
          Alcotest.test_case "good fixture is clean" `Quick test_good_fixture;
          Alcotest.test_case "trace writers outside lib/congest flagged"
            `Quick test_bad_trace_fixture;
          Alcotest.test_case "trace consumers allowed anywhere" `Quick
            test_good_trace_fixture;
          Alcotest.test_case "graph edits outside the engine flagged" `Quick
            test_bad_edit_fixture;
          Alcotest.test_case "repair-engine callers allowed" `Quick
            test_good_edit_fixture;
          Alcotest.test_case "raw file I/O outside Dsgraph.Io flagged" `Quick
            test_bad_io_fixture;
          Alcotest.test_case "Io-mediated persistence allowed" `Quick
            test_good_io_fixture;
          Alcotest.test_case "clock/GC reads outside resource layer flagged"
            `Quick test_bad_clock_fixture;
          Alcotest.test_case "Resource-mediated timing allowed" `Quick
            test_good_clock_fixture;
          Alcotest.test_case "allow and disable lists" `Quick
            test_allow_and_disable;
          Alcotest.test_case "parse error degrades to finding" `Quick
            test_parse_error;
          Alcotest.test_case "shipped tree lints clean" `Quick
            test_tree_lints_clean;
          Alcotest.test_case "json payload shape" `Quick test_json_shape;
        ] );
    ]
