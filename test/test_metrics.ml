(* Edge-case tests for the Congest.Metrics emitters: empty traces,
   single-round runs, and power-of-two histogram boundary values
   round-tripped through both serialization formats (CSV long format
   and JSONL). The bucket contract under test: the bucket labeled with
   upper bound [2^k] counts observations with [2^(k-1) <= v < 2^k], and
   values [<= 0] land in the bucket labeled [1]. *)

module Trace = Congest.Trace
module Metrics = Congest.Metrics

let check = Alcotest.check
let int = Alcotest.int

let counter_value m name = Metrics.counter_value (Metrics.counter m name)

(* parse "metric,stat,value" long-format CSV rows back out *)
let csv_rows m =
  Metrics.to_csv m |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         match String.split_on_char ',' line with
         | [ metric; stat; value ] when metric <> "metric" ->
             Some (metric, stat, value)
         | _ -> None)

(* (ub, count) bucket list of [name], recovered from the lt_<ub> rows *)
let csv_buckets m name =
  List.filter_map
    (fun (metric, stat, value) ->
      if
        metric = name
        && String.length stat > 3
        && String.sub stat 0 3 = "lt_"
      then
        Some
          ( int_of_string (String.sub stat 3 (String.length stat - 3)),
            int_of_string value )
      else None)
    (csv_rows m)

(* (ub, count) bucket list recovered from the "buckets":[[ub,k],...]
   field of [name]'s JSONL object *)
let jsonl_buckets m name =
  let line =
    Metrics.to_jsonl m |> String.split_on_char '\n'
    |> List.find (fun l ->
           let needle = Printf.sprintf "\"metric\":\"%s\"" name in
           let n = String.length needle and len = String.length l in
           let rec go i = i + n <= len && (String.sub l i n = needle || go (i + 1)) in
           go 0)
  in
  let start =
    let needle = "\"buckets\":[" in
    let n = String.length needle and len = String.length line in
    let rec go i =
      if i + n > len then failwith "no buckets field"
      else if String.sub line i n = needle then i + n
      else go (i + 1)
    in
    go 0
  in
  let rec parse i acc =
    match line.[i] with
    | ']' -> List.rev acc
    | '[' ->
        let close = String.index_from line i ']' in
        let body = String.sub line (i + 1) (close - i - 1) in
        let pair =
          match String.split_on_char ',' body with
          | [ ub; k ] -> (int_of_string ub, int_of_string k)
          | _ -> failwith "malformed bucket pair"
        in
        parse (close + 1) (pair :: acc)
    | _ -> parse (i + 1) acc
  in
  parse start []

let test_empty_trace () =
  let m = Metrics.of_trace (Trace.sink ()) in
  (* the standard counters are registered up front, all zero *)
  List.iter
    (fun name ->
      check int (name ^ " is zero") 0 (counter_value m name))
    [
      "rounds";
      "messages_sent";
      "messages_delivered";
      "messages_dropped";
      "nodes_halted";
    ];
  check int "empty histogram count" 0
    (Metrics.hist_count (Metrics.histogram m "bits_per_message"));
  (* both dumps stay well-formed: every CSV row parses, every JSONL
     histogram reports count/min/max of 0 with no buckets *)
  Alcotest.(check bool) "csv has rows" true (csv_rows m <> []);
  check int "no csv buckets" 0 (List.length (csv_buckets m "bits_per_message"));
  check int "no jsonl buckets" 0
    (List.length (jsonl_buckets m "bits_per_message"))

let test_single_round () =
  let s = Trace.sink () in
  Trace.record s (Trace.Round_start { round = 1 });
  Trace.emit_message_sent s ~round:1 ~src:0 ~dst:1 ~bits:5;
  Trace.record s
    (Trace.Round_end { round = 1; sent = 1; delivered = 0; in_flight = 1; halted = 0 });
  let m = Metrics.of_trace s in
  check int "one round" 1 (counter_value m "rounds");
  check int "one send" 1 (counter_value m "messages_sent");
  check int "no deliveries" 0 (counter_value m "messages_delivered");
  (* 5 bits: 4 <= 5 < 8, so the single bucket has upper bound 8 *)
  check
    Alcotest.(list (pair int int))
    "csv bucket boundary" [ (8, 1) ]
    (csv_buckets m "bits_per_message");
  check
    Alcotest.(list (pair int int))
    "jsonl agrees with csv"
    (csv_buckets m "bits_per_message")
    (jsonl_buckets m "bits_per_message")

let test_pow2_boundaries () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "edges" in
  (* boundary values around each power of two, plus the non-positive
     degenerates that all land in the lt_1 bucket *)
  List.iter (Metrics.observe h)
    [ -3; 0; 1; 2; 3; 4; 7; 8; (1 lsl 20) - 1; 1 lsl 20; (1 lsl 20) + 1 ];
  let expected =
    [
      (1, 2) (* -3, 0 *);
      (2, 1) (* 1 *);
      (4, 2) (* 2, 3 *);
      (8, 2) (* 4, 7 *);
      (16, 1) (* 8 *);
      (1 lsl 20, 1) (* 2^20 - 1 *);
      (1 lsl 21, 2) (* 2^20, 2^20 + 1 *);
    ]
  in
  check
    Alcotest.(list (pair int int))
    "hist_buckets boundaries" expected (Metrics.hist_buckets h);
  check
    Alcotest.(list (pair int int))
    "csv round-trips the buckets" expected (csv_buckets m "edges");
  check
    Alcotest.(list (pair int int))
    "jsonl round-trips the buckets" expected (jsonl_buckets m "edges");
  check int "count" 11 (Metrics.hist_count h);
  check int "min" (-3) (Metrics.hist_min h);
  check int "max" ((1 lsl 20) + 1) (Metrics.hist_max h)

let () =
  Alcotest.run "metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
          Alcotest.test_case "single-round run" `Quick test_single_round;
          Alcotest.test_case "pow2 bucket boundaries round-trip" `Quick
            test_pow2_boundaries;
        ] );
    ]
