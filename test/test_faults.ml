open Dsgraph
module Sim = Congest.Sim
module Bits = Congest.Bits
module Fault = Congest.Fault
module Reliable = Congest.Reliable

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* A small instrumented program: every node broadcasts a tagged message
   for [talk] rounds, then stops; it logs each round's inbox. The log is
   the observable behavior we compare across transports.               *)
(* ------------------------------------------------------------------ *)

type chat_state = { r : int; log : (int * (int * int) list) list }

let chatter ~talk g =
  {
    Sim.init = (fun ~node:_ ~neighbors:_ -> { r = 0; log = [] });
    round =
      (fun ~node ~state ~inbox ->
        let r = state.r + 1 in
        let state = { r; log = (r, inbox) :: state.log } in
        if r <= talk then
          let out =
            Array.to_list
              (Array.map
                 (fun nb -> (nb, (node * 1000) + r))
                 (Graph.neighbors g node))
          in
          (state, out, false)
        else (state, [], true));
  }

let chat_bits _ = 8

(* pad a log to [upto] rounds with empty inboxes (an unwrapped run stops
   calling [round] once quiescent; the wrapped one runs a fixed count) *)
let normalize_log ~upto st =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (r, inbox) -> Hashtbl.replace tbl r inbox) st.log;
  List.init upto (fun i ->
      match Hashtbl.find_opt tbl (i + 1) with Some l -> l | None -> [])

(* ------------------------------------------------------------------ *)
(* Fault adversary unit tests                                           *)
(* ------------------------------------------------------------------ *)

let test_fault_deterministic () =
  let run () =
    let adv = Fault.create (Fault.spec ~seed:42 ~drop:0.3 ~duplicate:0.1 ()) in
    List.init 200 (fun i ->
        Fault.fate adv ~round:(1 + (i / 10)) ~src:(i mod 7) ~dst:((i + 1) mod 7))
  in
  Alcotest.(check bool) "same fates" true (run () = run ())

let test_fault_drop_all () =
  let adv = Fault.create (Fault.spec ~seed:1 ~drop:1.0 ()) in
  for i = 0 to 50 do
    match Fault.fate adv ~round:1 ~src:0 ~dst:i with
    | Fault.Drop -> ()
    | _ -> Alcotest.fail "drop rate 1.0 must drop everything"
  done;
  check int "counted" 51 (Fault.dropped adv)

let test_fault_burst () =
  let burst =
    { Fault.from_round = 3; until_round = 5; on_edges = Some [ (0, 1) ] }
  in
  let adv = Fault.create (Fault.spec ~bursts:[ burst ] ()) in
  let fate ~round ~src ~dst = Fault.fate adv ~round ~src ~dst in
  Alcotest.(check bool) "before window" true (fate ~round:2 ~src:0 ~dst:1 = Fault.Deliver);
  Alcotest.(check bool) "in window" true (fate ~round:3 ~src:0 ~dst:1 = Fault.Drop);
  Alcotest.(check bool) "reverse orientation" true (fate ~round:5 ~src:1 ~dst:0 = Fault.Drop);
  Alcotest.(check bool) "other edge" true (fate ~round:4 ~src:1 ~dst:2 = Fault.Deliver);
  Alcotest.(check bool) "after window" true (fate ~round:6 ~src:0 ~dst:1 = Fault.Deliver)

let test_fault_validation () =
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Fault.create: drop rate 1.5 not in [0,1]") (fun () ->
      ignore (Fault.create (Fault.spec ~drop:1.5 ())));
  Alcotest.check_raises "bad crash round"
    (Invalid_argument "Fault.create: crash round must be >= 1") (fun () ->
      ignore (Fault.create (Fault.spec ~crashes:[ (0, 0) ] ())))

(* ------------------------------------------------------------------ *)
(* Sim + adversary                                                      *)
(* ------------------------------------------------------------------ *)

let test_sim_crash_freezes_node () =
  let g = Gen.path 4 in
  let adv = Fault.create (Fault.spec ~crashes:[ (3, 2) ] ()) in
  let states, stats =
    Sim.simulate
      ~config:Sim.Config.(default |> with_adversary adv)
      ~bits:chat_bits g (chatter ~talk:4 g)
  in
  Alcotest.(check (list int)) "crashed listed" [ 3 ] stats.faults.crashed;
  (* node 3 executed only round 1 before crashing at round 2 *)
  check int "frozen" 1 states.(3).r;
  check bool "others finished" true (states.(0).r > 4);
  (* node 2 stops hearing from 3 after the crash *)
  let heard_from_3 =
    List.exists
      (fun (r, inbox) -> r > 2 && List.mem_assoc 3 inbox)
      states.(2).log
  in
  check bool "no posthumous messages" false heard_from_3

let test_sim_drop_loses_messages () =
  let g = Gen.cycle 6 in
  let adv = Fault.create (Fault.spec ~seed:7 ~drop:0.5 ()) in
  let _, stats =
    Sim.simulate
      ~config:Sim.Config.(default |> with_adversary adv)
      ~bits:chat_bits g (chatter ~talk:3 g)
  in
  check bool "some dropped" true (stats.faults.dropped > 0);
  check bool "replayable" true
    (let adv2 = Fault.create (Fault.spec ~seed:7 ~drop:0.5 ()) in
     let _, stats2 =
       Sim.simulate
         ~config:Sim.Config.(default |> with_adversary adv2)
         ~bits:chat_bits g (chatter ~talk:3 g)
     in
     stats2.faults.dropped = stats.faults.dropped)

let test_sim_duplicate_and_delay () =
  let g = Gen.path 2 in
  let adv =
    Fault.create (Fault.spec ~seed:5 ~duplicate:0.5 ~delay:0.4 ~delay_window:3 ())
  in
  let states, stats =
    Sim.simulate
      ~config:Sim.Config.(default |> with_adversary adv)
      ~bits:chat_bits g (chatter ~talk:6 g)
  in
  check bool "duplicated" true (stats.faults.duplicated > 0);
  check bool "delayed" true (stats.faults.delayed > 0);
  (* duplicated messages show up as extra inbox entries: total receptions
     across both nodes = total sent + injected copies (nothing dropped) *)
  let total_received =
    Array.fold_left
      (fun a st ->
        a + List.fold_left (fun a (_, inbox) -> a + List.length inbox) 0 st.log)
      0 states
  in
  check int "receptions = sent + duplicates" total_received
    (stats.total_messages + stats.faults.duplicated);
  check int "nothing dropped" 0 stats.faults.dropped

let test_sim_on_incomplete () =
  let g = Gen.path 2 in
  let never_halt =
    {
      Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round = (fun ~node:_ ~state:_ ~inbox:_ -> ((), [], false));
    }
  in
  (match
     Sim.simulate
       ~config:Sim.Config.(default |> with_max_rounds 3 |> with_on_incomplete `Raise)
       ~bits:(fun _ -> 1) g never_halt
   with
  | exception Sim.Incomplete { max_rounds; running } ->
      check int "max_rounds" 3 max_rounds;
      check int "running" 2 running
  | _ -> Alcotest.fail "expected Incomplete");
  let _, stats =
    Sim.simulate
      ~config:Sim.Config.(default |> with_max_rounds 3 |> with_on_incomplete `Ignore)
      ~bits:(fun _ -> 1) g never_halt
  in
  check bool "not halted" false stats.all_halted

(* ------------------------------------------------------------------ *)
(* Reliable transport                                                   *)
(* ------------------------------------------------------------------ *)

let inner_rounds_for ~talk = (2 * talk) + 6

let run_reliable ?adversary ~talk g =
  let cfg = Reliable.config ~inner_rounds:(inner_rounds_for ~talk) () in
  Reliable.simulate
    ~sim:{ Sim.Config.default with adversary }
    cfg ~bits:chat_bits g (chatter ~talk g)

let test_reliable_zero_fault_transparency () =
  let g = Gen.erdos_renyi (Rng.create 3) 20 0.2 in
  let talk = 5 in
  let plain, _ = Sim.simulate ~bits:chat_bits g (chatter ~talk g) in
  let r = run_reliable ~talk g in
  let upto = inner_rounds_for ~talk in
  Array.iteri
    (fun v st ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d log identical" v)
        true
        (normalize_log ~upto st = normalize_log ~upto r.Reliable.states.(v)))
    plain;
  check int "no retransmissions at drop 0" 0 r.Reliable.transport.retransmissions;
  Alcotest.(check (list int)) "no dead" [] r.Reliable.transport.detected_dead;
  check bool "all finished" true (Array.for_all (fun f -> f) r.Reliable.finished)

let test_reliable_exactly_once_under_drop () =
  let g = Gen.cycle 8 in
  let talk = 5 in
  let plain, _ = Sim.simulate ~bits:chat_bits g (chatter ~talk g) in
  List.iter
    (fun drop ->
      let adv = Fault.create (Fault.spec ~seed:11 ~drop ()) in
      let r = run_reliable ~adversary:adv ~talk g in
      let upto = inner_rounds_for ~talk in
      check bool
        (Printf.sprintf "drop %.2f: faults actually injected" drop)
        true
        (r.Reliable.sim_stats.faults.dropped > 0);
      Array.iteri
        (fun v st ->
          Alcotest.(check bool)
            (Printf.sprintf "drop %.2f node %d" drop v)
            true
            (normalize_log ~upto st
            = normalize_log ~upto r.Reliable.states.(v)))
        plain)
    [ 0.05; 0.1; 0.25 ]

let test_reliable_under_duplication_and_reordering () =
  let g = Gen.path 6 in
  let talk = 4 in
  let plain, _ = Sim.simulate ~bits:chat_bits g (chatter ~talk g) in
  let adv =
    Fault.create
      (Fault.spec ~seed:2 ~drop:0.1 ~duplicate:0.2 ~delay:0.2 ~delay_window:4 ())
  in
  let r = run_reliable ~adversary:adv ~talk g in
  let upto = inner_rounds_for ~talk in
  Array.iteri
    (fun v st ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d" v)
        true
        (normalize_log ~upto st = normalize_log ~upto r.Reliable.states.(v)))
    plain

let test_reliable_burst_blackout () =
  let g = Gen.path 4 in
  let talk = 4 in
  let plain, _ = Sim.simulate ~bits:chat_bits g (chatter ~talk g) in
  (* total blackout for 10 rounds: nothing gets through, then recovery *)
  let adv =
    Fault.create
      (Fault.spec
         ~bursts:[ { Fault.from_round = 2; until_round = 11; on_edges = None } ]
         ())
  in
  let r = run_reliable ~adversary:adv ~talk g in
  let upto = inner_rounds_for ~talk in
  Array.iteri
    (fun v st ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d" v)
        true
        (normalize_log ~upto st = normalize_log ~upto r.Reliable.states.(v)))
    plain;
  check bool "retransmitted through the blackout" true
    (r.Reliable.transport.retransmissions > 0)

let test_reliable_crash_detection () =
  let g = Gen.path 4 in
  let talk = 6 in
  let adv = Fault.create (Fault.spec ~crashes:[ (0, 3) ] ()) in
  let cfg =
    Reliable.config
      ~inner_rounds:(inner_rounds_for ~talk)
      ~liveness_timeout:20 ()
  in
  let r =
    Reliable.simulate
      ~sim:Sim.Config.(default |> with_adversary adv)
      cfg ~bits:chat_bits g (chatter ~talk g)
  in
  Alcotest.(check (list int))
    "survivor detected the crash" [ 0 ] r.Reliable.dead_view.(1);
  Alcotest.(check (list int)) "union" [ 0 ] r.Reliable.transport.detected_dead;
  (* survivors still complete all inner rounds *)
  check bool "1 finished" true r.Reliable.finished.(1);
  check bool "2 finished" true r.Reliable.finished.(2);
  check bool "3 finished" true r.Reliable.finished.(3)

let test_reliable_header_within_budget () =
  let g = Gen.cycle 8 in
  let talk = 4 in
  let n = Graph.n g in
  let inner_rounds = inner_rounds_for ~talk in
  let adv = Fault.create (Fault.spec ~seed:9 ~drop:0.2 ~duplicate:0.1 ()) in
  let cfg = Reliable.config ~inner_rounds () in
  let r =
    Reliable.simulate
      ~sim:Sim.Config.(default |> with_adversary adv)
      cfg ~bits:chat_bits g (chatter ~talk g)
  in
  let budget = Bits.bandwidth ~n + Reliable.header_bits ~inner_rounds in
  check bool "frames within widened budget" true
    (r.Reliable.sim_stats.max_bits_seen <= budget);
  (* and the header is genuinely O(log inner_rounds) small *)
  check bool "header small" true
    (Reliable.header_bits ~inner_rounds <= (2 * Bits.int_bits inner_rounds) + 2)

(* ------------------------------------------------------------------ *)
(* End-to-end: the distributed carvings under faults                    *)
(* ------------------------------------------------------------------ *)

let test_ls_zero_fault_transparency () =
  let g = Gen.erdos_renyi (Rng.create 17) 48 0.1 in
  let plain, _ =
    Baseline.Ls_distributed.attempt (Rng.create 5) g ~epsilon:0.5
  in
  let r =
    Baseline.Ls_distributed.attempt_reliable (Rng.create 5) g ~epsilon:0.5
  in
  Alcotest.(check (array int))
    "identical labels" plain r.Baseline.Ls_distributed.cluster_of;
  check int "no retransmissions" 0
    r.Baseline.Ls_distributed.transport.Reliable.retransmissions

let test_ls_exactly_once_under_drop () =
  let g = Gen.grid 6 6 in
  let plain, _ =
    Baseline.Ls_distributed.attempt (Rng.create 5) g ~epsilon:0.5
  in
  List.iter
    (fun drop ->
      let adv = Fault.create (Fault.spec ~seed:3 ~drop ()) in
      let r =
        Baseline.Ls_distributed.attempt_reliable ~adversary:adv (Rng.create 5)
          g ~epsilon:0.5
      in
      check bool
        (Printf.sprintf "drop %.2f injected faults" drop)
        true
        (r.Baseline.Ls_distributed.sim_stats.Sim.faults.dropped > 0);
      Alcotest.(check (array int))
        (Printf.sprintf "drop %.2f labels identical" drop)
        plain r.Baseline.Ls_distributed.cluster_of)
    [ 0.05; 0.1 ]

let test_weakdiam_zero_fault_transparency () =
  let g = Gen.erdos_renyi (Rng.create 23) 40 0.12 in
  let base = Weakdiam.Distributed.carve g ~epsilon:0.5 in
  let labels v =
    Cluster.Clustering.cluster_of base.Weakdiam.Distributed.carving.clustering v
  in
  let r = Weakdiam.Distributed.carve_reliable g ~epsilon:0.5 in
  let sim =
    Cluster.Clustering.make g ~cluster_of:r.Weakdiam.Distributed.cluster_of
  in
  for v = 0 to Graph.n g - 1 do
    check int
      (Printf.sprintf "node %d label" v)
      (labels v)
      (Cluster.Clustering.cluster_of sim v)
  done;
  check int "no retransmissions" 0
    r.Weakdiam.Distributed.transport.Reliable.retransmissions

let test_weakdiam_under_drop () =
  let g = Gen.grid 5 5 in
  let base = Weakdiam.Distributed.carve g ~epsilon:0.5 in
  let adv = Fault.create (Fault.spec ~seed:13 ~drop:0.1 ()) in
  let r = Weakdiam.Distributed.carve_reliable ~adversary:adv g ~epsilon:0.5 in
  check bool "faults injected" true
    (r.Weakdiam.Distributed.r_sim_stats.Sim.faults.dropped > 0);
  (* exactly-once delivery: identical result despite the losses *)
  let base_labels =
    Array.init (Graph.n g) (fun v ->
        Cluster.Clustering.cluster_of
          base.Weakdiam.Distributed.carving.clustering v)
  in
  let sim =
    Cluster.Clustering.make g ~cluster_of:r.Weakdiam.Distributed.cluster_of
  in
  let sim_labels =
    Array.init (Graph.n g) (fun v -> Cluster.Clustering.cluster_of sim v)
  in
  Alcotest.(check (array int)) "labels identical" base_labels sim_labels

let test_ls_crash_survivors_valid () =
  let g = Gen.erdos_renyi (Rng.create 31) 60 0.08 in
  let adv =
    Fault.create (Fault.spec ~seed:4 ~drop:0.05 ~crashes:[ (7, 3); (22, 9) ] ())
  in
  let r =
    Baseline.Ls_distributed.attempt_reliable ~adversary:adv (Rng.create 9) g
      ~epsilon:0.5
  in
  Alcotest.(check (list int))
    "crashed recorded" [ 7; 22 ] r.Baseline.Ls_distributed.crashed;
  (* survivors' output is a valid carving of the surviving subgraph *)
  let survivors =
    List.filter (fun v -> v <> 7 && v <> 22) (List.init (Graph.n g) Fun.id)
  in
  let sub, back = Subgraph.induce g survivors in
  let sub_labels =
    Array.init (Graph.n sub) (fun i ->
        let l = r.Baseline.Ls_distributed.cluster_of.(back.(i)) in
        if l < 0 then -1 else l)
  in
  let clustering = Cluster.Clustering.make sub ~cluster_of:sub_labels in
  check bool "non-adjacent on survivors" true
    (Cluster.Clustering.non_adjacent clustering)

let test_harness_row () =
  let row =
    Workload.Faults.run
      {
        Workload.Faults.algorithm = Workload.Faults.Ls;
        family = "path";
        n = 64;
        epsilon = 0.5;
        drop = 0.05;
        crashes = 2;
        seed = 1;
      }
  in
  check bool "valid on survivors" true row.Workload.Faults.valid;
  check int "two crashes" 2 (List.length row.Workload.Faults.crashed_nodes);
  check bool "overhead recorded" true (row.Workload.Faults.round_overhead > 0.0);
  check bool "csv has data line" true
    (String.split_on_char '\n' (Workload.Faults.csv [ row ]) |> List.length > 2)

let test_harness_weakdiam_recovery_path () =
  (* crashes may corrupt the weak carving; the harness must always end
     with a valid output on the survivor subgraph (recovering if needed) *)
  let row =
    Workload.Faults.run
      {
        Workload.Faults.algorithm = Workload.Faults.Weakdiam;
        family = "grid";
        n = 36;
        epsilon = 0.5;
        drop = 0.05;
        crashes = 2;
        seed = 3;
      }
  in
  check bool "valid (possibly after recovery)" true row.Workload.Faults.valid;
  check bool "recovery coherent" true
    (row.Workload.Faults.valid_degraded || row.Workload.Faults.recovery_rounds > 0)

let test_harness_zero_fault_row () =
  let row =
    Workload.Faults.run
      {
        Workload.Faults.algorithm = Workload.Faults.Weakdiam;
        family = "grid";
        n = 25;
        epsilon = 0.5;
        drop = 0.0;
        crashes = 0;
        seed = 1;
      }
  in
  check bool "valid" true row.Workload.Faults.valid;
  check bool "degraded = final at zero faults" true
    row.Workload.Faults.valid_degraded;
  check int "nothing dropped" 0 row.Workload.Faults.dropped;
  check int "no recovery" 0 row.Workload.Faults.recovery_rounds

(* ------------------------------------------------------------------ *)
(* qcheck: exactly-once + in-order delivery under arbitrary adversaries *)
(* ------------------------------------------------------------------ *)

let prop_reliable_faithful =
  QCheck2.Test.make ~count:40
    ~name:"reliable transport is transparent under any seeded adversary"
    QCheck2.Gen.(
      quad (int_range 0 10_000) (int_range 4 14) (float_range 0.0 0.3)
        (pair (float_range 0.0 0.2) (float_range 0.0 0.2)))
    (fun (seed, n, drop, (duplicate, delay)) ->
      let g = Gen.erdos_renyi (Rng.create (seed + 1)) n 0.3 in
      let talk = 4 in
      let plain, _ = Sim.simulate ~bits:chat_bits g (chatter ~talk g) in
      let adv =
        Fault.create
          (Fault.spec ~seed ~drop ~duplicate ~delay ~delay_window:3 ())
      in
      let r = run_reliable ~adversary:adv ~talk g in
      let upto = inner_rounds_for ~talk in
      Array.for_all (fun f -> f) r.Reliable.finished
      && Array.for_all2
           (fun a b -> normalize_log ~upto a = normalize_log ~upto b)
           plain r.Reliable.states)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "adversary",
        [
          Alcotest.test_case "deterministic" `Quick test_fault_deterministic;
          Alcotest.test_case "drop all" `Quick test_fault_drop_all;
          Alcotest.test_case "burst schedule" `Quick test_fault_burst;
          Alcotest.test_case "validation" `Quick test_fault_validation;
        ] );
      ( "sim",
        [
          Alcotest.test_case "crash freezes node" `Quick
            test_sim_crash_freezes_node;
          Alcotest.test_case "drop loses messages" `Quick
            test_sim_drop_loses_messages;
          Alcotest.test_case "duplicate and delay" `Quick
            test_sim_duplicate_and_delay;
          Alcotest.test_case "on_incomplete" `Quick test_sim_on_incomplete;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "zero-fault transparency" `Quick
            test_reliable_zero_fault_transparency;
          Alcotest.test_case "exactly-once under drops" `Quick
            test_reliable_exactly_once_under_drop;
          Alcotest.test_case "duplication + reordering" `Quick
            test_reliable_under_duplication_and_reordering;
          Alcotest.test_case "burst blackout" `Quick test_reliable_burst_blackout;
          Alcotest.test_case "crash detection" `Quick
            test_reliable_crash_detection;
          Alcotest.test_case "header within budget" `Quick
            test_reliable_header_within_budget;
          QCheck_alcotest.to_alcotest prop_reliable_faithful;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "ls zero-fault transparency" `Quick
            test_ls_zero_fault_transparency;
          Alcotest.test_case "ls exactly-once under drops" `Quick
            test_ls_exactly_once_under_drop;
          Alcotest.test_case "weakdiam zero-fault transparency" `Quick
            test_weakdiam_zero_fault_transparency;
          Alcotest.test_case "weakdiam under drop" `Quick
            test_weakdiam_under_drop;
          Alcotest.test_case "ls crash survivors valid" `Quick
            test_ls_crash_survivors_valid;
        ] );
      ( "harness",
        [
          Alcotest.test_case "ls row" `Quick test_harness_row;
          Alcotest.test_case "weakdiam recovery path" `Quick
            test_harness_weakdiam_recovery_path;
          Alcotest.test_case "zero-fault row" `Quick test_harness_zero_fault_row;
        ] );
    ]
