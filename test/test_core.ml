open Dsgraph
module SC = Strongdecomp.Sparse_cut
module Transform = Strongdecomp.Transform
module Carve = Strongdecomp.Strong_carving
module Improve = Strongdecomp.Improve
module Netdecomp = Strongdecomp.Netdecomp
module Barrier = Strongdecomp.Barrier
module EdgeC = Strongdecomp.Edge_carving
module Clustering = Cluster.Clustering
module Carving = Cluster.Carving
module Decomposition = Cluster.Decomposition

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let is_ok = function Ok () -> true | Error _ -> false

let fail_on_error = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "checker rejected: %s" e

let log2_ceil n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (2 * k) in
  max 1 (go 0 1)

(* Analytic diameter bound for Lemma 3.1 components (see Sparse_cut docs):
   r* <= ceil(log2 n) · (K + 2) + K, diameter <= 2·r*. *)
let lemma_diameter_bound ~n ~epsilon =
  let k = SC.window ~n ~epsilon in
  2 * ((log2_ceil n * (k + 2)) + k)

let workload seed =
  let rng = Rng.create seed in
  [
    ("path", Gen.path 64);
    ("cycle", Gen.cycle 50);
    ("grid", Gen.grid 8 8);
    ("tree", Gen.random_tree (Rng.split rng) 70);
    ("er", Gen.ensure_connected rng (Gen.erdos_renyi (Rng.split rng) 64 0.06));
    ("hypercube", Gen.hypercube 6);
    ("ring_of_cliques", Gen.ring_of_cliques 6 6);
    ("expander", Gen.expander (Rng.split rng) 64);
    ("barbell", Gen.barbell 12 10);
  ]

(* ------------------------------------------------------------------ *)
(* Lemma 3.1                                                            *)
(* ------------------------------------------------------------------ *)

let validate_sparse_cut ~epsilon g =
  let n = Graph.n g in
  let domain = Mask.full n in
  let outcome = SC.run ~epsilon g ~domain in
  let members = Mask.to_list domain in
  (match outcome with
  | SC.Cut { v1; v2; removed } ->
      (* partition *)
      let all = List.sort compare (v1 @ v2 @ removed) in
      Alcotest.(check (list int)) "cut partitions domain" members all;
      (* balance *)
      check bool "v1 large" true (3 * List.length v1 >= n);
      check bool "v2 large" true (3 * List.length v2 >= n);
      (* non-adjacency *)
      let m1 = Mask.of_list n v1 in
      List.iter
        (fun v ->
          Graph.iter_neighbors g v (fun w ->
              check bool "v2 not adjacent to v1" false (Mask.mem m1 w)))
        v2
  | SC.Component { u; boundary } ->
      check bool "u large" true (3 * List.length u >= n);
      (* boundary is exactly the outside nodes adjacent to u *)
      let mu = Mask.of_list n u in
      let expected = Metrics.node_boundary g mu in
      Alcotest.(check (list int))
        "boundary exact" expected
        (List.sort compare boundary);
      (* diameter bound *)
      let d = Bfs.diameter_of_set g u in
      check bool "u connected" true (d >= 0);
      check bool
        (Printf.sprintf "u diameter %d within analytic bound %d" d
           (lemma_diameter_bound ~n ~epsilon))
        true
        (d <= lemma_diameter_bound ~n ~epsilon));
  outcome

let test_sparse_cut_families () =
  List.iter
    (fun (name, g) ->
      ignore (validate_sparse_cut ~epsilon:0.5 g);
      ignore name)
    (workload 11)

let test_sparse_cut_epsilons () =
  let g = Gen.grid 10 10 in
  List.iter (fun e -> ignore (validate_sparse_cut ~epsilon:e g)) [ 0.5; 0.25 ]

let test_sparse_cut_singleton () =
  let g = Graph.of_edge_seq ~n:1 Seq.empty in
  match SC.run g ~domain:(Mask.full 1) with
  | SC.Component { u; boundary } ->
      Alcotest.(check (list int)) "u" [ 0 ] u;
      Alcotest.(check (list int)) "no boundary" [] boundary
  | SC.Cut _ -> Alcotest.fail "expected component on singleton"

let test_sparse_cut_long_path_returns_cut () =
  (* a long path has huge diameter: the [a,b] window is wide, so the
     algorithm must find a balanced sparse cut (of a single node) *)
  let g = Gen.path 400 in
  match SC.run ~epsilon:0.5 g ~domain:(Mask.full 400) with
  | SC.Cut { removed; _ } ->
      check bool "tiny separator" true (List.length removed <= 3)
  | SC.Component { u; _ } ->
      (* also acceptable only if the diameter bound holds, which on a long
         path forces a small component — contradiction with |u| >= n/3 *)
      Alcotest.failf "expected cut on path, got component of size %d"
        (List.length u)

let test_sparse_cut_clique_returns_component () =
  let g = Gen.complete 30 in
  match SC.run ~epsilon:0.5 g ~domain:(Mask.full 30) with
  | SC.Component { u; boundary } ->
      check bool "everything" true (List.length u + List.length boundary = 30)
  | SC.Cut _ -> Alcotest.fail "clique has no balanced sparse cut"

let test_sparse_cut_rejects_disconnected () =
  let g = Gen.disjoint_union (Gen.path 3) (Gen.path 3) in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Sparse_cut.run: domain disconnected") (fun () ->
      ignore (SC.run g ~domain:(Mask.full 6)))

let test_sparse_cut_rejects_empty () =
  let g = Gen.path 3 in
  Alcotest.check_raises "empty" (Invalid_argument "Sparse_cut.run: empty domain")
    (fun () -> ignore (SC.run g ~domain:(Mask.empty 3)))

let test_sparse_cut_charges_cost () =
  let cost = Congest.Cost.create () in
  let g = Gen.grid 8 8 in
  ignore (SC.run ~cost g ~domain:(Mask.full 64));
  check bool "rounds" true (Congest.Cost.rounds cost > 0)

let test_sparse_cut_window_monotone () =
  check bool "smaller eps, larger window" true
    (SC.window ~n:1024 ~epsilon:0.25 > SC.window ~n:1024 ~epsilon:0.5);
  check bool "larger n, larger window" true
    (SC.window ~n:4096 ~epsilon:0.5 >= SC.window ~n:64 ~epsilon:0.5)

(* ------------------------------------------------------------------ *)
(* Theorem 2.1 / 2.2: strong carving                                    *)
(* ------------------------------------------------------------------ *)

let validate_strong_carving ?preset ~epsilon g =
  let carving, stats = Carve.carve ?preset g ~epsilon in
  fail_on_error (Carving.check_strong ~epsilon carving);
  let diam = Clustering.max_strong_diameter carving.Carving.clustering in
  check bool "clusters connected" true (diam >= 0);
  check bool
    (Printf.sprintf "diameter %d <= 2·max_ball_radius %d" diam
       (2 * stats.Transform.max_ball_radius))
    true
    (diam <= max 1 (2 * stats.Transform.max_ball_radius));
  (carving, stats)

let test_thm22_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      ignore (validate_strong_carving ~epsilon:0.5 g))
    (workload 21)

let test_thm22_rg20_preset () =
  List.iter
    (fun (name, g) ->
      ignore name;
      ignore
        (validate_strong_carving ~preset:Weakdiam.Weak_carving.Rg20
           ~epsilon:0.5 g))
    (workload 22)

let test_thm22_epsilon_sweep () =
  let g = Gen.grid 9 9 in
  List.iter
    (fun epsilon -> ignore (validate_strong_carving ~epsilon g))
    [ 0.5; 0.25; 0.125 ]

let test_thm22_iterations_logarithmic () =
  let g = Gen.grid 12 12 in
  let _, stats = Carve.carve g ~epsilon:0.5 in
  check bool "iterations <= 2·log2 n + 2" true
    (stats.Transform.iterations <= (2 * log2_ceil 144) + 2)

let test_thm22_ball_radius_bound () =
  (* r* <= R + growth_limit; with the Rg20 preset R has an analytic bound *)
  let g = Gen.grid 10 10 in
  let n = 100 in
  let epsilon = 0.5 in
  let cost = Congest.Cost.create () in
  let carving, stats =
    Carve.carve ~cost ~preset:Weakdiam.Weak_carving.Rg20 g ~epsilon
  in
  ignore carving;
  let b = Congest.Bits.id_bits ~n in
  let eps' = epsilon /. (2.0 *. float_of_int (log2_ceil n)) in
  let depth_bound = int_of_float (float_of_int (4 * b * b * b) /. eps') + (4 * b) in
  let limit = Transform.ball_growth_limit ~n ~epsilon in
  check bool "ball radius within R(n,eps') + growth limit" true
    (stats.Transform.max_ball_radius <= depth_bound + limit)

let test_thm22_dead_fraction_tight_epsilon () =
  let g = Gen.expander (Rng.create 3) 128 in
  List.iter
    (fun epsilon ->
      let carving, _ = Carve.carve g ~epsilon in
      check bool
        (Printf.sprintf "dead fraction within %.3f" epsilon)
        true
        (Carving.dead_fraction carving <= epsilon +. 1e-9))
    [ 0.5; 0.25; 0.125 ]

let test_thm22_domain_restriction () =
  let g = Gen.grid 8 8 in
  let domain = Mask.of_list 64 (List.filter (fun v -> v < 40) (Graph.nodes g)) in
  let carving, _ = Carve.carve ~domain g ~epsilon:0.5 in
  fail_on_error (Carving.check_strong ~epsilon:0.5 carving);
  for v = 40 to 63 do
    check int "outside untouched" (-1)
      (Clustering.cluster_of carving.Carving.clustering v)
  done

let test_thm22_deterministic () =
  let g = Gen.erdos_renyi (Rng.create 17) 60 0.07 in
  let c1, _ = Carve.carve g ~epsilon:0.5 in
  let c2, _ = Carve.carve g ~epsilon:0.5 in
  for v = 0 to 59 do
    check int "same output"
      (Clustering.cluster_of c1.Carving.clustering v)
      (Clustering.cluster_of c2.Carving.clustering v)
  done

let test_thm22_message_size_small () =
  let cost = Congest.Cost.create () in
  let g = Gen.grid 8 8 in
  ignore (Carve.carve ~cost g ~epsilon:0.5);
  check bool "O(log n) bit messages" true
    (Congest.Cost.max_message_bits cost <= 2 * Congest.Bits.id_bits ~n:64)

(* ------------------------------------------------------------------ *)
(* Section 2 remark: removing the global-n assumption                   *)
(* ------------------------------------------------------------------ *)

let weak_box preset : Transform.weak_carver =
 fun ?cost g ~domain ~epsilon ->
  let r = Weakdiam.Weak_carving.carve ~preset ?cost ~domain g ~epsilon in
  {
    Transform.clustering = r.carving.Carving.clustering;
    forest = r.forest;
    depth = r.max_depth;
    congestion = r.congestion;
  }

let test_unknown_n_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving =
        Transform.strong_carve_unknown_n
          ~weak:(weak_box Weakdiam.Weak_carving.Ggr21)
          g ~epsilon:0.5
      in
      fail_on_error (Carving.check_strong ~epsilon:0.5 carving))
    (workload 61)

let test_unknown_n_matches_known_n_contract () =
  (* not the same output as strong_carve, but the same contract *)
  let g = Gen.grid 9 9 in
  List.iter
    (fun epsilon ->
      let carving =
        Transform.strong_carve_unknown_n
          ~weak:(weak_box Weakdiam.Weak_carving.Ggr21)
          g ~epsilon
      in
      fail_on_error (Carving.check_strong ~epsilon carving))
    [ 0.5; 0.25 ]

let test_unknown_n_domain () =
  let g = Gen.grid 8 8 in
  let domain = Mask.of_list 64 (List.filter (fun v -> v < 32) (Graph.nodes g)) in
  let carving =
    Transform.strong_carve_unknown_n
      ~weak:(weak_box Weakdiam.Weak_carving.Ggr21)
      ~domain g ~epsilon:0.5
  in
  fail_on_error (Carving.check_strong ~epsilon:0.5 carving);
  for v = 32 to 63 do
    check int "outside untouched" (-1)
      (Clustering.cluster_of carving.Carving.clustering v)
  done

(* ------------------------------------------------------------------ *)
(* Theorem 3.2 / 3.3: improved diameter                                 *)
(* ------------------------------------------------------------------ *)

let validate_improved ~epsilon g =
  let carving, stats = Carve.carve_improved g ~epsilon in
  fail_on_error (Carving.check_strong ~epsilon carving);
  let n = Graph.n g in
  let diam = Clustering.max_strong_diameter carving.Carving.clustering in
  check bool "connected clusters" true (diam >= 0);
  (* every final cluster came out of Lemma 3.1 with eps/4 *)
  let bound = lemma_diameter_bound ~n ~epsilon:(epsilon /. 4.0) in
  check bool
    (Printf.sprintf "diameter %d within lemma bound %d" diam bound)
    true (diam <= bound);
  (carving, stats)

let test_thm33_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      ignore (validate_improved ~epsilon:0.5 g))
    (workload 31)

let test_thm33_levels_logarithmic () =
  let g = Gen.grid 10 10 in
  let _, stats = Carve.carve_improved g ~epsilon:0.5 in
  check bool "levels" true (stats.Improve.levels <= (3 * log2_ceil 100) + 3)

let test_thm33_domain_restriction () =
  let g = Gen.grid 8 8 in
  let domain = Mask.of_list 64 (List.filter (fun v -> v >= 16) (Graph.nodes g)) in
  let carving, _ = Carve.carve_improved ~domain g ~epsilon:0.5 in
  fail_on_error (Carving.check_strong ~epsilon:0.5 carving);
  for v = 0 to 15 do
    check int "outside untouched" (-1)
      (Clustering.cluster_of carving.Carving.clustering v)
  done

let test_thm33_stats_consistent () =
  let g = Gen.expander (Rng.create 9) 64 in
  let _, stats = Carve.carve_improved g ~epsilon:0.5 in
  check bool "every lemma call is a cut or a component" true
    (stats.Improve.lemma_invocations
    = stats.Improve.cuts_taken + stats.Improve.components_taken);
  check bool "some component emitted" true (stats.Improve.components_taken > 0)

(* ------------------------------------------------------------------ *)
(* Theorem 2.1 as a composed distributed execution                      *)
(* ------------------------------------------------------------------ *)

module TD = Strongdecomp.Transform_distributed

let small_workload seed =
  let rng = Rng.create seed in
  [
    ("path", Gen.path 20);
    ("grid", Gen.grid 5 5);
    ("er", Gen.ensure_connected rng (Gen.erdos_renyi (Rng.split rng) 28 0.12));
    ("cliquering", Gen.ring_of_cliques 3 4);
    ("star", Gen.star 12);
    ("two components", Gen.disjoint_union (Gen.path 8) (Gen.cycle 6));
  ]

let test_transform_distributed_matches () =
  List.iter
    (fun (name, g) ->
      check bool
        (name ^ ": distributed Thm 2.1 equals centralized")
        true
        (TD.matches_centralized g ~epsilon:0.5))
    (small_workload 71)

let test_transform_distributed_valid () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let carving, stats = TD.strong_carve g ~epsilon:0.5 in
      fail_on_error (Carving.check_strong ~epsilon:0.5 carving);
      check bool "weak stages matched their engines" true stats.TD.all_matched;
      check bool "small messages" true
        (stats.TD.max_bits <= Congest.Bits.bandwidth ~n:(Graph.n g) + 8))
    (small_workload 72)

let test_transform_distributed_epsilons () =
  let g = Gen.grid 5 5 in
  List.iter
    (fun epsilon ->
      check bool "matches" true (TD.matches_centralized g ~epsilon))
    [ 0.5; 0.25 ]

let test_transform_distributed_rg20_preset () =
  let g = Gen.path 18 in
  check bool "matches with rg20 preset" true
    (TD.matches_centralized ~preset:Weakdiam.Weak_carving.Rg20 g ~epsilon:0.5)

let prop_transform_distributed =
  QCheck.Test.make
    ~name:"distributed theorem 2.1 equals the centralized transformation"
    ~count:35
    (QCheck.make
       ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d" s n p)
       QCheck.Gen.(triple (int_bound 50_000) (int_range 2 26) (int_range 5 30)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      TD.matches_centralized g ~epsilon:0.5)

(* ------------------------------------------------------------------ *)
(* Theorems 2.3 / 3.4: network decomposition                            *)
(* ------------------------------------------------------------------ *)

let color_bound n = (4 * log2_ceil n) + 4

let validate_strong_decomposition decomp g =
  let n = Graph.n g in
  fail_on_error (Decomposition.check ~colors_bound:(color_bound n) decomp);
  (match Clustering.max_strong_diameter (Decomposition.clustering decomp) with
  | -1 -> Alcotest.fail "a cluster is internally disconnected"
  | _ -> ());
  decomp

let test_thm23_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      ignore (validate_strong_decomposition (Netdecomp.strong g) g))
    (workload 41)

let test_thm34_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      ignore (validate_strong_decomposition (Netdecomp.strong_improved g) g))
    (workload 42)

let test_weak_decomposition_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let d = Netdecomp.weak g in
      fail_on_error
        (Decomposition.check ~colors_bound:(color_bound (Graph.n g)) d);
      (* weak clusters must at least be connected through the host graph *)
      check bool "weak diameter finite" true
        (Clustering.max_weak_diameter (Decomposition.clustering d) >= 0))
    (workload 43)

let test_decomposition_disconnected_graph () =
  (* the whole stack must handle disconnected inputs: components are
     processed independently *)
  let g =
    Gen.disjoint_union
      (Gen.disjoint_union (Gen.grid 5 5) (Gen.cycle 9))
      (Gen.path 14)
  in
  let d23 = Netdecomp.strong g in
  fail_on_error (Decomposition.check d23);
  check int "covers everything" (Graph.n g)
    (Clustering.clustered_count (Decomposition.clustering d23));
  let d34 = Netdecomp.strong_improved g in
  fail_on_error (Decomposition.check d34)

let test_decomposition_covers_all_nodes () =
  let g = Gen.grid 9 9 in
  let d = Netdecomp.strong g in
  check int "all clustered" (Graph.n g)
    (Clustering.clustered_count (Decomposition.clustering d))

let test_decomposition_color_sizes_halve () =
  (* color 0 holds at least half the nodes (eps = 1/2) *)
  let g = Gen.expander (Rng.create 4) 128 in
  let d = Netdecomp.strong g in
  let clustering = Decomposition.clustering d in
  let color0_nodes =
    List.fold_left
      (fun acc c -> acc + List.length (Clustering.members clustering c))
      0
      (Decomposition.clusters_of_color d 0)
  in
  check bool "first color >= half" true (2 * color0_nodes >= 128)

let test_thm34_diameter_no_worse_than_thm23_shape () =
  (* on a deep structure Thm 3.4's clusters should not be wildly larger *)
  let g = Gen.grid 16 16 in
  let d23 = Netdecomp.strong g in
  let d34 = Netdecomp.strong_improved g in
  let diam d = Clustering.max_strong_diameter (Decomposition.clustering d) in
  check bool "both valid" true (diam d23 >= 0 && diam d34 >= 0)

(* ------------------------------------------------------------------ *)
(* Edge carving                                                         *)
(* ------------------------------------------------------------------ *)

let test_netdecomp_custom_epsilon () =
  (* any eps in (0,1) yields a valid decomposition; smaller eps means more
     colors with smaller per-color coverage *)
  let g = Gen.grid 9 9 in
  List.iter
    (fun epsilon ->
      let carver ?cost ?domain g ~epsilon =
        fst (Carve.carve ?cost ?domain g ~epsilon)
      in
      let d = Netdecomp.of_carver ~epsilon carver g in
      fail_on_error (Decomposition.check d))
    [ 0.75; 0.5; 0.3 ]

let test_edge_carving_domain () =
  let g = Gen.grid 8 8 in
  let domain = Mask.of_list 64 (List.filter (fun v -> v mod 8 < 5) (Graph.nodes g)) in
  let r = EdgeC.carve ~domain g ~epsilon:0.25 in
  for v = 0 to 63 do
    if not (Mask.mem domain v) then
      check int "outside unclustered" (-1)
        (Clustering.cluster_of r.EdgeC.clustering v)
  done;
  check int "inside all clustered" (Mask.count domain)
    (Clustering.clustered_count r.EdgeC.clustering)

let test_edge_carving_families () =
  List.iter
    (fun (name, g) ->
      ignore name;
      let r = EdgeC.carve g ~epsilon:0.25 in
      fail_on_error (EdgeC.check r ~epsilon:0.25 g))
    (workload 51)

let test_edge_carving_epsilons () =
  let g = Gen.grid 10 10 in
  List.iter
    (fun epsilon ->
      let r = EdgeC.carve g ~epsilon in
      fail_on_error (EdgeC.check r ~epsilon g))
    [ 0.5; 0.25; 0.125 ]

let test_edge_carving_all_nodes_clustered () =
  let g = Gen.expander (Rng.create 2) 64 in
  let r = EdgeC.carve g ~epsilon:0.25 in
  check int "every node clustered" 64 (Clustering.clustered_count r.clustering)

let test_edge_carving_tree_cuts_little () =
  (* on a path, ball growth reaches boundary <= eps quickly *)
  let g = Gen.path 100 in
  let r = EdgeC.carve g ~epsilon:0.5 in
  check bool "few cut edges" true
    (List.length r.EdgeC.cut_edges <= Graph.m g / 2)

(* ------------------------------------------------------------------ *)
(* Barrier                                                              *)
(* ------------------------------------------------------------------ *)

let test_barrier_build_shape () =
  let g = Barrier.build (Rng.create 5) ~target_n:400 in
  check bool "connected" true (Components.is_connected g);
  check bool "about the right size" true
    (Graph.n g >= 150 && Graph.n g <= 1200);
  check bool "subdivision keeps degree <= 4" true (Graph.max_degree g <= 4)

let test_barrier_analysis_pays () =
  (* on the barrier graph, either branch of Lemma 3.1 must be expensive:
     a component with diameter at the log^2 scale, or a chunky cut *)
  let g = Barrier.build (Rng.create 5) ~target_n:600 in
  let a = Barrier.analyze ~epsilon:0.5 g in
  (match a.Barrier.outcome with
  | `Component ->
      check bool
        (Printf.sprintf "component diameter %d at scale %.0f" a.u_diameter
           a.diameter_scale)
        true
        (float_of_int a.u_diameter >= 0.2 *. a.diameter_scale)
  | `Cut ->
      check bool "cut separator is chunky" true
        (float_of_int a.separator_size >= 0.2 *. a.separator_bound));
  check int "n recorded" (Graph.n g) a.Barrier.n

let test_grid_analysis_is_cheap () =
  (* contrast: on a grid, Lemma 3.1 finds either a thin cut or a small
     diameter component, far below the barrier scales *)
  let g = Gen.grid 24 24 in
  let a = Barrier.analyze ~epsilon:0.5 g in
  match a.Barrier.outcome with
  | `Cut ->
      check bool "thin separator" true
        (float_of_int a.separator_size <= a.separator_bound)
  | `Component ->
      check bool "small diameter" true
        (float_of_int a.u_diameter <= a.diameter_scale)

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)
(* ------------------------------------------------------------------ *)

let arb_connected =
  QCheck.make
    ~print:(fun (seed, n, pct) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n pct)
    QCheck.Gen.(triple (int_bound 100_000) (int_range 2 48) (int_range 3 25))

let connected_graph (seed, n, pct) =
  let rng = Rng.create seed in
  Gen.ensure_connected rng (Gen.erdos_renyi rng n (float_of_int pct /. 100.0))

let prop_sparse_cut_valid =
  QCheck.Test.make ~name:"lemma 3.1 outcome is always valid" ~count:80
    arb_connected (fun input ->
      let g = connected_graph input in
      let n = Graph.n g in
      match SC.run ~epsilon:0.5 g ~domain:(Mask.full n) with
      | SC.Cut { v1; v2; removed } ->
          let m1 = Mask.of_list n v1 in
          List.length v1 + List.length v2 + List.length removed = n
          && 3 * List.length v1 >= n
          && 3 * List.length v2 >= n
          && List.for_all
               (fun v ->
                 Array.for_all
                   (fun w -> not (Mask.mem m1 w))
                   (Graph.neighbors g v))
               v2
      | SC.Component { u; boundary } ->
          3 * List.length u >= n
          && Bfs.diameter_of_set g u >= 0
          && List.sort compare boundary
             = Metrics.node_boundary g (Mask.of_list n u))

let prop_thm22_valid =
  QCheck.Test.make ~name:"theorem 2.2 carving is a valid strong carving"
    ~count:50 arb_connected (fun input ->
      let g = connected_graph input in
      let carving, _ = Carve.carve g ~epsilon:0.5 in
      is_ok (Carving.check_strong ~epsilon:0.5 carving))

let prop_thm33_valid =
  QCheck.Test.make ~name:"theorem 3.3 carving is a valid strong carving"
    ~count:30 arb_connected (fun input ->
      let g = connected_graph input in
      let carving, _ = Carve.carve_improved g ~epsilon:0.5 in
      is_ok (Carving.check_strong ~epsilon:0.5 carving))

let prop_thm23_valid =
  QCheck.Test.make ~name:"theorem 2.3 decomposition is valid" ~count:30
    arb_connected (fun input ->
      let g = connected_graph input in
      let d = Netdecomp.strong g in
      is_ok (Decomposition.check ~colors_bound:(color_bound (Graph.n g)) d)
      && Clustering.max_strong_diameter (Decomposition.clustering d) >= 0)

let prop_edge_carving_valid =
  QCheck.Test.make ~name:"edge carving is valid" ~count:60 arb_connected
    (fun input ->
      let g = connected_graph input in
      let r = EdgeC.carve g ~epsilon:0.25 in
      is_ok (EdgeC.check r ~epsilon:0.25 g))

let () =
  Alcotest.run "core"
    [
      ( "sparse_cut",
        [
          Alcotest.test_case "families" `Quick test_sparse_cut_families;
          Alcotest.test_case "epsilons" `Quick test_sparse_cut_epsilons;
          Alcotest.test_case "singleton" `Quick test_sparse_cut_singleton;
          Alcotest.test_case "long path -> cut" `Quick
            test_sparse_cut_long_path_returns_cut;
          Alcotest.test_case "clique -> component" `Quick
            test_sparse_cut_clique_returns_component;
          Alcotest.test_case "rejects disconnected" `Quick
            test_sparse_cut_rejects_disconnected;
          Alcotest.test_case "rejects empty" `Quick test_sparse_cut_rejects_empty;
          Alcotest.test_case "charges cost" `Quick test_sparse_cut_charges_cost;
          Alcotest.test_case "window monotone" `Quick
            test_sparse_cut_window_monotone;
        ] );
      ( "thm22",
        [
          Alcotest.test_case "families" `Quick test_thm22_families;
          Alcotest.test_case "rg20 preset" `Quick test_thm22_rg20_preset;
          Alcotest.test_case "epsilon sweep" `Quick test_thm22_epsilon_sweep;
          Alcotest.test_case "iterations log" `Quick
            test_thm22_iterations_logarithmic;
          Alcotest.test_case "ball radius bound" `Quick
            test_thm22_ball_radius_bound;
          Alcotest.test_case "dead fraction" `Quick
            test_thm22_dead_fraction_tight_epsilon;
          Alcotest.test_case "domain restriction" `Quick
            test_thm22_domain_restriction;
          Alcotest.test_case "deterministic" `Quick test_thm22_deterministic;
          Alcotest.test_case "message size" `Quick test_thm22_message_size_small;
        ] );
      ( "unknown_n",
        [
          Alcotest.test_case "families" `Quick test_unknown_n_families;
          Alcotest.test_case "contract across eps" `Quick
            test_unknown_n_matches_known_n_contract;
          Alcotest.test_case "domain" `Quick test_unknown_n_domain;
        ] );
      ( "thm33",
        [
          Alcotest.test_case "families" `Quick test_thm33_families;
          Alcotest.test_case "levels log" `Quick test_thm33_levels_logarithmic;
          Alcotest.test_case "domain restriction" `Quick
            test_thm33_domain_restriction;
          Alcotest.test_case "stats consistent" `Quick test_thm33_stats_consistent;
        ] );
      ( "transform_distributed",
        [
          Alcotest.test_case "matches centralized" `Quick
            test_transform_distributed_matches;
          Alcotest.test_case "valid strong carving" `Quick
            test_transform_distributed_valid;
          Alcotest.test_case "epsilons" `Quick test_transform_distributed_epsilons;
          Alcotest.test_case "rg20 preset" `Quick
            test_transform_distributed_rg20_preset;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "thm 2.3 families" `Quick test_thm23_families;
          Alcotest.test_case "thm 3.4 families" `Quick test_thm34_families;
          Alcotest.test_case "weak families" `Quick
            test_weak_decomposition_families;
          Alcotest.test_case "covers all nodes" `Quick
            test_decomposition_covers_all_nodes;
          Alcotest.test_case "disconnected graph" `Quick
            test_decomposition_disconnected_graph;
          Alcotest.test_case "first color halves" `Quick
            test_decomposition_color_sizes_halve;
          Alcotest.test_case "3.4 vs 2.3" `Quick
            test_thm34_diameter_no_worse_than_thm23_shape;
          Alcotest.test_case "custom epsilon" `Quick
            test_netdecomp_custom_epsilon;
        ] );
      ( "edge_carving",
        [
          Alcotest.test_case "families" `Quick test_edge_carving_families;
          Alcotest.test_case "epsilons" `Quick test_edge_carving_epsilons;
          Alcotest.test_case "domain" `Quick test_edge_carving_domain;
          Alcotest.test_case "all clustered" `Quick
            test_edge_carving_all_nodes_clustered;
          Alcotest.test_case "path cuts little" `Quick
            test_edge_carving_tree_cuts_little;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "build shape" `Quick test_barrier_build_shape;
          Alcotest.test_case "barrier pays" `Quick test_barrier_analysis_pays;
          Alcotest.test_case "grid is cheap" `Quick test_grid_analysis_is_cheap;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sparse_cut_valid;
            prop_transform_distributed;
            prop_thm22_valid;
            prop_thm33_valid;
            prop_thm23_valid;
            prop_edge_carving_valid;
          ] );
    ]
