open Dsgraph

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Reference implementations used as oracles                            *)
(* ------------------------------------------------------------------ *)

(* O(n^3) Floyd–Warshall distances as an oracle for BFS. *)
let reference_distances g =
  let n = Graph.n g in
  let inf = max_int / 4 in
  let d = Array.make_matrix n n inf in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0
  done;
  Graph.iter_edges g (fun u v ->
      d.(u).(v) <- 1;
      d.(v).(u) <- 1);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  Array.map (Array.map (fun x -> if x >= inf then -1 else x)) d

let random_graph seed n p =
  let rng = Rng.create seed in
  Gen.erdos_renyi rng n p

(* ------------------------------------------------------------------ *)
(* Graph basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_create_dedup () =
  let g =
    Graph.of_edge_seq ~n:4 (List.to_seq [ (0, 1); (1, 0); (0, 1); (2, 3) ])
  in
  check int "m" 2 (Graph.m g);
  check bool "edge 0-1" true (Graph.is_edge g 0 1);
  check bool "edge 1-0" true (Graph.is_edge g 1 0);
  check bool "edge 0-2" false (Graph.is_edge g 0 2)

let test_create_rejects_self_loop () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.Builder.add_edge: self-loop") (fun () ->
      ignore (Graph.of_edge_seq ~n:3 (List.to_seq [ (1, 1) ])))

let test_create_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.Builder.add_edge: endpoint out of range")
    (fun () -> ignore (Graph.of_edge_seq ~n:3 (List.to_seq [ (0, 3) ])))

let test_builder_incremental () =
  let b = Graph.Builder.create ~n:5 in
  Graph.Builder.add_edge b 4 0;
  Graph.Builder.add_edge b 0 4;
  Graph.Builder.add_edge b 2 1;
  let g = Graph.Builder.build b in
  check int "m" 2 (Graph.m g);
  check bool "0-4" true (Graph.is_edge g 0 4);
  check bool "1-2" true (Graph.is_edge g 1 2);
  Alcotest.check_raises "reuse"
    (Invalid_argument "Graph.Builder.build: already built") (fun () ->
      ignore (Graph.Builder.build b))

let test_degrees () =
  let g = Gen.star 5 in
  check int "center degree" 4 (Graph.degree g 0);
  check int "leaf degree" 1 (Graph.degree g 3);
  check int "max degree" 4 (Graph.max_degree g)

let test_edges_ordered () =
  let g = Graph.of_edge_seq ~n:4 (List.to_seq [ (3, 2); (1, 0); (2, 0) ]) in
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 1); (0, 2); (2, 3) ]
    (List.of_seq (Graph.edges_seq g))

let test_edge_index_distinct () =
  let g = Gen.grid 4 4 in
  let seen = Hashtbl.create 32 in
  Graph.iter_edges g (fun u v ->
      let i = Graph.edge_index g (u, v) in
      check bool "fresh index" false (Hashtbl.mem seen i);
      Hashtbl.add seen i ();
      check int "orientation independent" i (Graph.edge_index g (v, u)));
  check int "count" (Graph.m g) (Hashtbl.length seen)

let test_equal () =
  let a = Gen.cycle 5 and b = Gen.cycle 5 and c = Gen.path 5 in
  check bool "equal" true (Graph.equal a b);
  check bool "not equal" false (Graph.equal a c)

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

let test_gen_path () =
  let g = Gen.path 6 in
  check int "n" 6 (Graph.n g);
  check int "m" 5 (Graph.m g);
  check int "diameter" 5 (Bfs.eccentricity g 0)

let test_gen_cycle () =
  let g = Gen.cycle 8 in
  check int "m" 8 (Graph.m g);
  check int "regular" 2 (Graph.max_degree g);
  check int "ecc" 4 (Bfs.eccentricity g 0)

let test_gen_complete () =
  let g = Gen.complete 6 in
  check int "m" 15 (Graph.m g);
  check int "ecc" 1 (Bfs.eccentricity g 3)

let test_gen_grid () =
  let g = Gen.grid 3 4 in
  check int "n" 12 (Graph.n g);
  check int "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  check int "corner-to-corner" 5 (Bfs.distances g ~source:0).(11)

let test_gen_torus () =
  let g = Gen.torus 4 4 in
  check int "n" 16 (Graph.n g);
  check int "4-regular" 4 (Graph.max_degree g);
  check int "m" 32 (Graph.m g)

let test_gen_binary_tree () =
  let g = Gen.binary_tree 7 in
  check int "m" 6 (Graph.m g);
  check bool "connected" true (Components.is_connected g)

let test_gen_hypercube () =
  let g = Gen.hypercube 4 in
  check int "n" 16 (Graph.n g);
  check int "m" 32 (Graph.m g);
  check int "diameter" 4 (Bfs.eccentricity g 0)

let test_gen_random_tree () =
  let g = Gen.random_tree (Rng.create 7) 40 in
  check int "m" 39 (Graph.m g);
  check bool "connected" true (Components.is_connected g)

let test_gen_random_regular_even () =
  let g = Gen.random_regular (Rng.create 3) 20 3 in
  check int "n" 20 (Graph.n g);
  List.iter (fun v -> check int "degree 3" 3 (Graph.degree g v)) (Graph.nodes g)

let test_gen_random_regular_odd_n_even_d () =
  let g = Gen.random_regular (Rng.create 3) 21 4 in
  List.iter (fun v -> check int "degree 4" 4 (Graph.degree g v)) (Graph.nodes g)

let test_gen_expander_connected () =
  let g = Gen.expander (Rng.create 11) 64 in
  check bool "connected" true (Components.is_connected g);
  check int "4-regular" 4 (Graph.max_degree g)

let test_gen_subdivide () =
  let g = Gen.cycle 4 in
  let s = Gen.subdivide g 3 in
  check int "n" (4 + (4 * 3)) (Graph.n s);
  check int "m" (4 * 4) (Graph.m s);
  check bool "connected" true (Components.is_connected s);
  check int "2-regular" 2 (Graph.max_degree s);
  (* original nodes keep ids: node 0 and 1 now at distance 4 *)
  check int "stretched distance" 4 (Bfs.distances s ~source:0).(1)

let test_gen_subdivide_zero () =
  let g = Gen.grid 3 3 in
  check bool "identity" true (Graph.equal g (Gen.subdivide g 0))

let test_gen_ring_of_cliques () =
  let g = Gen.ring_of_cliques 4 5 in
  check int "n" 20 (Graph.n g);
  check bool "connected" true (Components.is_connected g);
  check int "m" ((4 * 10) + 4) (Graph.m g)

let test_gen_barbell () =
  let g = Gen.barbell 4 3 in
  check int "n" 11 (Graph.n g);
  check bool "connected" true (Components.is_connected g);
  (* 0 -> 3 -> 4 -> 5 -> 6 -> 7 -> 10 *)
  check int "cross distance" 6 (Bfs.distances g ~source:0).(10)

let test_gen_lollipop () =
  let g = Gen.lollipop 5 4 in
  check int "n" 9 (Graph.n g);
  check bool "connected" true (Components.is_connected g)

let test_gen_caterpillar () =
  let g = Gen.caterpillar (Rng.create 5) 10 15 in
  check int "n" 25 (Graph.n g);
  check int "m (tree)" 24 (Graph.m g);
  check bool "connected" true (Components.is_connected g)

let test_gen_planted_partition () =
  let g = Gen.planted_partition (Rng.create 5) 3 10 0.9 0.05 in
  check int "n" 30 (Graph.n g)

let test_gen_disjoint_union () =
  let g = Gen.disjoint_union (Gen.path 3) (Gen.cycle 3) in
  check int "n" 6 (Graph.n g);
  check int "m" 5 (Graph.m g);
  check bool "disconnected" false (Components.is_connected g)

let test_gen_ensure_connected () =
  let rng = Rng.create 9 in
  let g = Gen.disjoint_union (Gen.path 3) (Gen.cycle 4) in
  let g = Gen.ensure_connected rng g in
  check bool "connected" true (Components.is_connected g)

(* ------------------------------------------------------------------ *)
(* BFS                                                                  *)
(* ------------------------------------------------------------------ *)

let test_bfs_matches_floyd_warshall () =
  List.iter
    (fun seed ->
      let g = random_graph seed 24 0.12 in
      let ref_d = reference_distances g in
      for s = 0 to Graph.n g - 1 do
        let d = Bfs.distances g ~source:s in
        for v = 0 to Graph.n g - 1 do
          check int (Printf.sprintf "d(%d,%d) seed %d" s v seed) ref_d.(s).(v)
            d.(v)
        done
      done)
    [ 1; 2; 3 ]

let test_bfs_mask_blocks () =
  let g = Gen.path 5 in
  let mask = Mask.of_list 5 [ 0; 1; 3; 4 ] in
  let d = Bfs.distances ~mask g ~source:0 in
  check int "reaches 1" 1 d.(1);
  check int "blocked" (-1) d.(3);
  check int "masked-out source side" (-1) d.(4)

let test_bfs_multi_source () =
  let g = Gen.path 7 in
  let d = Bfs.multi_distances g ~sources:[ 0; 6 ] in
  check int "middle" 3 d.(3);
  check int "near left" 1 d.(1);
  check int "near right" 1 d.(5)

let test_bfs_parents_form_tree () =
  let g = random_graph 4 30 0.15 in
  let p = Bfs.parents g ~source:0 in
  let d = Bfs.distances g ~source:0 in
  check int "source parent" 0 p.(0);
  for v = 1 to Graph.n g - 1 do
    if d.(v) >= 0 then begin
      check bool "parent is edge" true (Graph.is_edge g v p.(v));
      check int "parent one closer" (d.(v) - 1) d.(p.(v))
    end
    else check int "unreachable has no parent" (-1) p.(v)
  done

let test_bfs_ball () =
  let g = Gen.grid 5 5 in
  let ball = Bfs.ball g ~center:12 ~radius:1 in
  Alcotest.(check (list int)) "plus shape" [ 7; 11; 12; 13; 17 ] ball

let test_bfs_layer_sizes_cumulative () =
  let g = Gen.cycle 10 in
  let ls = Bfs.layer_sizes g ~sources:[ 0 ] in
  check int "layers" 6 (Array.length ls);
  check int "B_0" 1 ls.(0);
  check int "B_1" 3 ls.(1);
  check int "B_5" 10 ls.(5)

let test_diameter_of_set () =
  let g = Gen.path 10 in
  check int "sub-path" 3 (Bfs.diameter_of_set g [ 2; 3; 4; 5 ]);
  check int "disconnected" (-1) (Bfs.diameter_of_set g [ 0; 1; 5; 6 ]);
  check int "singleton" 0 (Bfs.diameter_of_set g [ 4 ]);
  check int "empty" 0 (Bfs.diameter_of_set g [])

let test_weak_vs_strong_diameter () =
  (* star: leaves are pairwise non-adjacent; induced subgraph on leaves is
     disconnected but weak diameter through the hub is 2 *)
  let g = Gen.star 6 in
  let leaves = [ 1; 2; 3; 4; 5 ] in
  check int "strong disconnected" (-1) (Bfs.diameter_of_set g leaves);
  check int "weak via hub" 2 (Bfs.weak_diameter_of_set g leaves)

let test_component_of () =
  let g = Gen.disjoint_union (Gen.path 3) (Gen.path 2) in
  Alcotest.(check (list int)) "first" [ 0; 1; 2 ] (Bfs.component_of g 1);
  Alcotest.(check (list int)) "second" [ 3; 4 ] (Bfs.component_of g 4)

(* ------------------------------------------------------------------ *)
(* Components                                                           *)
(* ------------------------------------------------------------------ *)

let test_components_basic () =
  let g = Gen.disjoint_union (Gen.cycle 3) (Gen.path 4) in
  let comps = Components.components g in
  check int "count" 2 (List.length comps);
  check bool "connected check" false (Components.is_connected g)

let test_components_mask () =
  let g = Gen.path 6 in
  let mask = Mask.of_list 6 [ 0; 1; 3; 4; 5 ] in
  let comps = Components.components ~mask g in
  check int "two pieces" 2 (List.length comps);
  Alcotest.(check (list int)) "largest" [ 3; 4; 5 ] (Components.largest ~mask g)

let test_component_ids_cover () =
  let g = random_graph 8 40 0.05 in
  let ids, k = Components.component_ids g in
  Array.iter (fun id -> check bool "in range" true (id >= 0 && id < k)) ids;
  Graph.iter_edges g (fun u v -> check int "edge same comp" ids.(u) ids.(v))

(* ------------------------------------------------------------------ *)
(* Power graphs                                                        *)
(* ------------------------------------------------------------------ *)

let test_power_path () =
  let g = Gen.path 6 in
  let g2 = Power.power g 2 in
  check bool "0-2" true (Graph.is_edge g2 0 2);
  check bool "0-1 kept" true (Graph.is_edge g2 0 1);
  check bool "0-3 absent" false (Graph.is_edge g2 0 3)

let test_power_matches_distances () =
  let g = random_graph 5 20 0.1 in
  let k = 3 in
  let gk = Power.power g k in
  let ref_d = reference_distances g in
  for u = 0 to Graph.n g - 1 do
    for v = u + 1 to Graph.n g - 1 do
      let expected = ref_d.(u).(v) >= 1 && ref_d.(u).(v) <= k in
      check bool
        (Printf.sprintf "power edge %d-%d" u v)
        expected (Graph.is_edge gk u v)
    done
  done

let test_power_one_is_identity () =
  let g = random_graph 6 15 0.2 in
  check bool "G^1 = G" true (Graph.equal g (Power.power g 1))

(* ------------------------------------------------------------------ *)
(* Mask                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mask_ops () =
  let m = Mask.of_list 10 [ 1; 3; 5 ] in
  check int "count" 3 (Mask.count m);
  Mask.add m 7;
  Mask.add m 7;
  check int "idempotent add" 4 (Mask.count m);
  Mask.remove m 1;
  Mask.remove m 1;
  check int "idempotent remove" 3 (Mask.count m);
  Alcotest.(check (list int)) "to_list" [ 3; 5; 7 ] (Mask.to_list m)

let test_mask_set_ops () =
  let a = Mask.of_list 6 [ 0; 1; 2; 3 ] in
  let b = Mask.of_list 6 [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Mask.to_list (Mask.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 1 ] (Mask.to_list (Mask.diff a b));
  check bool "subset no" false (Mask.subset a b);
  check bool "subset yes" true (Mask.subset (Mask.of_list 6 [ 2 ]) b)

(* ------------------------------------------------------------------ *)
(* Subgraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_subgraph_induce_basic () =
  let g = Gen.cycle 6 in
  let h, back = Subgraph.induce g [ 0; 1; 2; 4 ] in
  check int "n" 4 (Graph.n h);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2; 4 |] back;
  (* surviving edges: (0,1), (1,2); node 4's neighbors 3 and 5 are gone *)
  check int "m" 2 (Graph.m h);
  check bool "0-1" true (Graph.is_edge h 0 1);
  check bool "4 isolated" true (Graph.degree h 3 = 0)

let test_subgraph_induce_rejects_bad () =
  let g = Gen.path 4 in
  Alcotest.check_raises "dup" (Invalid_argument "Subgraph.induce: duplicate nodes")
    (fun () -> ignore (Subgraph.induce g [ 1; 1 ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Subgraph.induce: node out of range") (fun () ->
      ignore (Subgraph.induce g [ 7 ]))

let test_subgraph_induce_mask () =
  let g = Gen.grid 4 4 in
  let mask = Mask.of_list 16 [ 0; 1; 4; 5 ] in
  let h, back = Subgraph.induce_mask g mask in
  check int "n" 4 (Graph.n h);
  check int "m (2x2 block)" 4 (Graph.m h);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 4; 5 |] back

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_cut () =
  let g = Gen.path 4 in
  let s = Mask.of_list 4 [ 0; 1 ] in
  check int "cut" 1 (Metrics.cut_edges g s);
  check int "volume" 3 (Metrics.volume g s);
  Alcotest.(check (list int)) "boundary" [ 2 ] (Metrics.node_boundary g s)

let test_metrics_conductance () =
  let g = Gen.complete 4 in
  let s = Mask.of_list 4 [ 0; 1 ] in
  (* cut = 4, vol = 6 *)
  check (Alcotest.float 1e-9) "phi" (4.0 /. 6.0) (Metrics.conductance_of_set g s)

let test_metrics_sweep () =
  (* barbell has a very sparse middle cut; sweep from inside one clique
     must find it *)
  let g = Gen.barbell 8 4 in
  let phi = Metrics.sweep_conductance g ~source:0 in
  check bool "finds sparse cut" true (phi < 0.05)

let test_metrics_average_degree () =
  check (Alcotest.float 1e-9) "cycle" 2.0 (Metrics.average_degree (Gen.cycle 7))

let test_metrics_histogram () =
  let g = Gen.star 4 in
  Alcotest.(check (list (pair int int)))
    "hist" [ (1, 3); (3, 1) ] (Metrics.degree_histogram g)

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    check int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check bool "in range" true (x >= 0 && x < 7)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check bool "streams differ" true (xs <> ys)

let test_rng_permutation () =
  let p = Rng.permutation (Rng.create 3) 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    check bool "nonneg" true (Rng.exponential rng 0.5 >= 0.0)
  done

let test_rng_geometric_mean () =
  let rng = Rng.create 5 in
  let k = 20000 in
  let sum = ref 0 in
  for _ = 1 to k do
    sum := !sum + Rng.geometric rng 0.5
  done;
  let mean = float_of_int !sum /. float_of_int k in
  (* E[failures before success] = (1-p)/p = 1 *)
  check bool "mean near 1" true (abs_float (mean -. 1.0) < 0.1)

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)
(* ------------------------------------------------------------------ *)

let arb_graph =
  QCheck.make
    ~print:(fun (seed, n, pct) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n pct)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 2 40) (int_range 0 40))

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances satisfy edge triangle inequality"
    ~count:60 arb_graph (fun (seed, n, pct) ->
      let g = random_graph seed n (float_of_int pct /. 100.0) in
      let d = Bfs.distances g ~source:0 in
      Graph.fold_edges g ~init:true ~f:(fun ok u v ->
          (* adjacent nodes are both reachable or both not, and their
             distances differ by at most one *)
          ok
          && (d.(u) >= 0) = (d.(v) >= 0)
          && (d.(u) < 0 || abs (d.(u) - d.(v)) <= 1)))

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the node set" ~count:60 arb_graph
    (fun (seed, n, pct) ->
      let g = random_graph seed n (float_of_int pct /. 100.0) in
      let all = List.concat (Components.components g) in
      List.sort compare all = Graph.nodes g)

let prop_subdivide_preserves_components =
  QCheck.Test.make ~name:"subdivision preserves component count" ~count:40
    arb_graph (fun (seed, n, pct) ->
      let g = random_graph seed n (float_of_int pct /. 100.0) in
      let _, k = Components.component_ids g in
      let isolated =
        List.length (List.filter (fun v -> Graph.degree g v = 0) (Graph.nodes g))
      in
      let s = Gen.subdivide g 2 in
      let _, k' = Components.component_ids s in
      (* isolated nodes stay isolated; others keep their components *)
      k' = k && isolated <= k)

let prop_subgraph_distances_dominate =
  QCheck.Test.make ~name:"induced distances dominate original distances"
    ~count:40 arb_graph (fun (seed, n, pct) ->
      let g = random_graph seed n (float_of_int pct /. 100.0) in
      let keep = List.filter (fun v -> v mod 2 = 0) (Graph.nodes g) in
      match keep with
      | [] -> true
      | src :: _ ->
          let h, back = Subgraph.induce g keep in
          let dh = Bfs.distances h ~source:0 in
          let dg = Bfs.distances g ~source:src in
          List.for_all
            (fun i -> dh.(i) = -1 || dh.(i) >= dg.(back.(i)))
            (Graph.nodes h))

let prop_power_monotone =
  QCheck.Test.make ~name:"G^k edges grow with k" ~count:30 arb_graph
    (fun (seed, n, pct) ->
      let g = random_graph seed n (float_of_int pct /. 100.0) in
      Graph.m (Power.power g 2) <= Graph.m (Power.power g 3))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bfs_triangle_inequality;
      prop_components_partition;
      prop_subdivide_preserves_components;
      prop_subgraph_distances_dominate;
      prop_power_monotone;
    ]

let () =
  Alcotest.run "dsgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "create dedups" `Quick test_create_dedup;
          Alcotest.test_case "rejects self loop" `Quick
            test_create_rejects_self_loop;
          Alcotest.test_case "rejects out of range" `Quick
            test_create_rejects_out_of_range;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "edges ordered" `Quick test_edges_ordered;
          Alcotest.test_case "edge_index distinct" `Quick
            test_edge_index_distinct;
          Alcotest.test_case "builder incremental" `Quick
            test_builder_incremental;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ( "gen",
        [
          Alcotest.test_case "path" `Quick test_gen_path;
          Alcotest.test_case "cycle" `Quick test_gen_cycle;
          Alcotest.test_case "complete" `Quick test_gen_complete;
          Alcotest.test_case "grid" `Quick test_gen_grid;
          Alcotest.test_case "torus" `Quick test_gen_torus;
          Alcotest.test_case "binary tree" `Quick test_gen_binary_tree;
          Alcotest.test_case "hypercube" `Quick test_gen_hypercube;
          Alcotest.test_case "random tree" `Quick test_gen_random_tree;
          Alcotest.test_case "random regular (even n)" `Quick
            test_gen_random_regular_even;
          Alcotest.test_case "random regular (odd n, even d)" `Quick
            test_gen_random_regular_odd_n_even_d;
          Alcotest.test_case "expander connected" `Quick
            test_gen_expander_connected;
          Alcotest.test_case "subdivide" `Quick test_gen_subdivide;
          Alcotest.test_case "subdivide zero" `Quick test_gen_subdivide_zero;
          Alcotest.test_case "ring of cliques" `Quick test_gen_ring_of_cliques;
          Alcotest.test_case "barbell" `Quick test_gen_barbell;
          Alcotest.test_case "lollipop" `Quick test_gen_lollipop;
          Alcotest.test_case "caterpillar" `Quick test_gen_caterpillar;
          Alcotest.test_case "planted partition" `Quick
            test_gen_planted_partition;
          Alcotest.test_case "disjoint union" `Quick test_gen_disjoint_union;
          Alcotest.test_case "ensure connected" `Quick test_gen_ensure_connected;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "matches Floyd-Warshall" `Quick
            test_bfs_matches_floyd_warshall;
          Alcotest.test_case "mask blocks" `Quick test_bfs_mask_blocks;
          Alcotest.test_case "multi source" `Quick test_bfs_multi_source;
          Alcotest.test_case "parents form tree" `Quick
            test_bfs_parents_form_tree;
          Alcotest.test_case "ball" `Quick test_bfs_ball;
          Alcotest.test_case "layer sizes cumulative" `Quick
            test_bfs_layer_sizes_cumulative;
          Alcotest.test_case "diameter of set" `Quick test_diameter_of_set;
          Alcotest.test_case "weak vs strong diameter" `Quick
            test_weak_vs_strong_diameter;
          Alcotest.test_case "component_of" `Quick test_component_of;
        ] );
      ( "components",
        [
          Alcotest.test_case "basic" `Quick test_components_basic;
          Alcotest.test_case "mask" `Quick test_components_mask;
          Alcotest.test_case "ids cover" `Quick test_component_ids_cover;
        ] );
      ( "power",
        [
          Alcotest.test_case "path" `Quick test_power_path;
          Alcotest.test_case "matches distances" `Quick
            test_power_matches_distances;
          Alcotest.test_case "identity" `Quick test_power_one_is_identity;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "induce basic" `Quick test_subgraph_induce_basic;
          Alcotest.test_case "rejects bad input" `Quick
            test_subgraph_induce_rejects_bad;
          Alcotest.test_case "induce mask" `Quick test_subgraph_induce_mask;
        ] );
      ( "mask",
        [
          Alcotest.test_case "ops" `Quick test_mask_ops;
          Alcotest.test_case "set ops" `Quick test_mask_set_ops;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "cut" `Quick test_metrics_cut;
          Alcotest.test_case "conductance" `Quick test_metrics_conductance;
          Alcotest.test_case "sweep" `Quick test_metrics_sweep;
          Alcotest.test_case "average degree" `Quick test_metrics_average_degree;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "exponential positive" `Quick
            test_rng_exponential_positive;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
        ] );
      ("properties", qcheck_cases);
    ]
