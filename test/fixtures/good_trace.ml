(* Clean counterpart to bad_trace.ml: read-only consumers of a sink —
   replay, metrics, persistence — are allowed anywhere. Never built. *)

let event_count sink = Congest.Trace.length sink

let rounds_seen sink =
  let n = ref 0 in
  Congest.Trace.iter
    (fun ev -> match ev with Congest.Trace.Round_start _ -> incr n | _ -> ())
    sink;
  !n

let persist sink = Congest.Trace.save ~file:"events.jsonl" sink

let replay sink =
  let metrics = Congest.Metrics.of_trace sink in
  let causal = Congest.Causal.analyze sink in
  (metrics, causal)
