(* Analyzer fixture: the same shapes as bad_domain, but every shared
   value carries its [@domain_unsafe] reason — and the local/owned
   patterns below never escape at all. Zero findings expected. *)

let registry : (int, int) Hashtbl.t =
  Hashtbl.create 16
[@@domain_unsafe "fixture registry: single-domain test harness state"]

type counter = { bump : unit -> unit; total : unit -> int }

let make_counter () =
  let cells =
    Array.make 4 0
    [@@domain_unsafe
      "captured by the counter record's closures; one counter per owner"]
  in
  {
    bump = (fun () -> cells.(0) <- cells.(0) + 1);
    total = (fun () -> Array.fold_left ( + ) 0 cells);
  }

(* local: scratch that never leaves the function *)
let count_zeros a =
  let zeros = ref 0 in
  Array.iter (fun x -> if x = 0 then incr zeros) a;
  !zeros

(* owned: escapes only as the returned value *)
let fresh_table n = Hashtbl.create (max 1 n)

(* owned: handed to exactly one callee *)
let checksum n =
  let b = Bytes.make n ' ' in
  Digest.bytes b
