(* Clean counterpart to bad_edit.ml: fault deltas routed through the
   repair engine's state, plus innocuous names that merely resemble the
   banned path. Never built; only parsed by the lint tests. *)

let crash st v = Cluster.Repair.step st (Cluster.Repair.delta ~crash:[ v ] ())

let heal st vs = Cluster.Repair.step st (Cluster.Repair.delta ~revive:vs ())

(* a local function called apply_edits is not Graph.apply_edits *)
let apply_edits xs = List.map (fun (u, v) -> (v, u)) xs

let shuffle edits = apply_edits edits
