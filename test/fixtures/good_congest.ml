(* Conforming counterpart of bad_congest.ml: the lint tests assert this
   yields zero findings. Never built. *)

let rng_bits rng = Dsgraph.Rng.bits rng

let guarded f = try f () with Invalid_argument _ -> 0

let same x y = x = y

let honest_program g =
  {
    Congest.Sim.init = (fun ~node ~neighbors:_ -> node);
    round =
      (fun ~node ~state ~inbox:_ ->
        ignore g;
        ignore node;
        (state, [], true));
  }
