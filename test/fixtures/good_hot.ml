(* Analyzer fixture: [@hot] functions that stay allocation-free, or
   accept a deliberate allocation with an [@alloc_ok] reason — zero
   findings expected. *)

let[@hot] sum a =
  let s = (ref 0 [@alloc_ok "one accumulator cell per call"]) in
  for i = 0 to Array.length a - 1 do
    s := !s + a.(i)
  done;
  !s

let[@hot] lookup a i = Hot_dep.clean a i

let[@hot] drain xs = Hot_dep.accepted xs
