(* Clean counterpart to bad_io.ml: graph persistence through Dsgraph.Io,
   stdlib channels for text, and the sanctioned Congest.Resource.now
   timebase instead of raw clock reads. Never built. *)

let save_graph path g = Dsgraph.Io.save_csr path g
let load_graph path = Dsgraph.Io.load_csr ~verify:true path

let save_report path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let timed f =
  let t0 = Congest.Resource.now () in
  let x = f () in
  (x, Congest.Resource.now () -. t0)
