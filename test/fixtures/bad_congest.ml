(* Deliberately non-conforming CONGEST code: the lint test suite asserts
   that tools/lint flags every construct below. Never built — kept out of
   any dune stanza on purpose. *)

let rng_bits () = Random.bits ()

let seeded () =
  let module R = Random in
  R.int 7

let sneak (x : int) : float = Obj.magic x

let swallow f = try f () with _ -> 0

let same x y = x == y

let cheating_program g =
  {
    Congest.Sim.init = (fun ~node ~neighbors:_ -> node);
    round =
      (fun ~node ~state ~inbox:_ ->
        print_endline "leaking state through stdout";
        Printf.printf "node %d\n" node;
        ignore g;
        (state, [], true));
  }
