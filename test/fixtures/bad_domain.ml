(* Analyzer fixture: every mutable value here is shared — module-global
   or captured by the closures of an escaping record — and none carries
   a [@domain_unsafe] annotation, so each must produce a domain-unsafe
   finding. Compiled by the fixtures dune rule with -bin-annot only;
   never linked. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0

type stats = { mutable count : int; mutable sum : int }

let global_stats = { count = 0; sum = 0 }

type counter = { bump : unit -> unit; total : unit -> int }

let make_counter () =
  let cells = Array.make 4 0 in
  {
    bump = (fun () -> cells.(0) <- cells.(0) + 1);
    total = (fun () -> Array.fold_left ( + ) 0 cells);
  }

let touch k =
  incr hits;
  global_stats.count <- global_stats.count + 1;
  Hashtbl.replace table k !hits
