(* Deliberate raw-io violations: code outside lib/dsgraph/io.ml and the
   trace sink doing file-descriptor I/O by hand, bypassing the checksummed
   CSR format and the spill protocol. The lint test asserts every call
   below is flagged. Never built — kept out of any dune stanza on
   purpose. *)

let roll_my_own_save path g =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let words = 2 * Dsgraph.Graph.m g in
  let map =
    Unix.map_file fd Bigarray.int Bigarray.c_layout true [| words |]
  in
  ignore map;
  fd

let poke_header fd buf =
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  ignore (Unix.write fd buf 0 8)

let peek_header fd buf = Unix.read fd buf 0 64
