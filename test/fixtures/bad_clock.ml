(* Deliberate wallclock violations: engine-side code observing real time
   and allocator state, which deterministic replay forbids outside
   Congest.Resource and bench/. The lint test asserts every read below is
   flagged. Never built — kept out of any dune stanza on purpose. *)

let stamp () = Unix.gettimeofday ()
let epoch () = Unix.time ()
let cpu () = Sys.time ()

let pressure () =
  let words = Gc.minor_words () in
  let st = Stdlib.Gc.quick_stat () in
  words +. st.Stdlib.Gc.major_words

(* aliasing the module does not launder the read *)
module G = Gc

let squeeze () = G.compact ()
