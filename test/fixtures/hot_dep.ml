(* Interprocedural callee fixture for the [@hot] allocation analysis:
   [leaky] allocates, [clean] does not, [accepted] allocates but takes
   responsibility with [@alloc_ok]. Referenced from bad_hot / good_hot
   both directly and through a module alias. *)

let leaky xs = List.map (fun x -> x + 1) xs

let clean a i = if i < Array.length a then a.(i) else 0

let accepted xs = List.rev xs
[@@alloc_ok "fixture: deliberate allocation accepted at the callee"]
