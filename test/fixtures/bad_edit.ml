(* Fixture: direct graph surgery outside the repair engine. Every
   [Graph.apply_edits] call site below must trip the graph-edit rule —
   faulted graphs are derived through Cluster.Repair's audited state,
   never ad hoc. Never built; only parsed by the lint tests. *)

let drop_edge g u v = Dsgraph.Graph.apply_edits g ~del:[ (u, v) ] ~add:[]

(* even a first-class reference is a call site *)
let rewire = Dsgraph.Graph.apply_edits ~del:[] ~add:[ (0, 1) ]

let isolate g v edges =
  Graph.apply_edits g ~del:(List.map (fun w -> (v, w)) edges) ~add:[]
