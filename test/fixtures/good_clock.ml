(* Clean counterpart to bad_clock.ml: wall-clock through the sanctioned
   Congest.Resource.now timebase and allocator pressure through an
   attached recorder — no direct clock or GC reads anywhere. Never
   built. *)

let timed f =
  let t0 = Congest.Resource.now () in
  let x = f () in
  (x, Congest.Resource.now () -. t0)

let pressure res =
  let tot = Congest.Resource.totals res in
  tot.Congest.Resource.t_minor_words

let profile_run sink res f =
  Congest.Resource.attach res sink;
  let x, seconds = timed f in
  let rollups, totals = Congest.Resource.snapshot res in
  (x, seconds, rollups, totals)
