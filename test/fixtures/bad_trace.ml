(* Deliberate trace-emit violations: code outside lib/congest writing
   events straight into a sink, bypassing the simulator's event-order
   contract (deliveries before sends, spans balanced). The lint test
   asserts every call below is flagged. Never built — kept out of any
   dune stanza on purpose. *)

let forge_round sink =
  Congest.Trace.record sink (Congest.Trace.Round_start { round = 99 })

let forge_message sink =
  Congest.Trace.emit_message_sent sink ~round:1 ~src:0 ~dst:1 ~bits:32;
  Congest.Trace.emit_message_delivered sink ~round:2 ~src:0 ~dst:1 ~bits:32

let unbalanced_span sink = Congest.Trace.exit_span sink
