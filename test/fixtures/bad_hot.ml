(* Analyzer fixture: every [@hot] function here allocates — directly,
   through a callee, or through a module alias — and must be flagged. *)

module A = Hot_dep

let[@hot] pair x y = (x, y)

let[@hot] boxed a b = Int64.add a b

let[@hot] deep xs = Hot_dep.leaky xs

let[@hot] aliased xs = A.leaky xs
