(* Tests for the self-healing repair engine: [Cluster.Repair] (fault
   state, dirty-region planning, merge) and [Workload.Repair] (sessions,
   repair certificates, registry adapters).

   The load-bearing properties: untouched clusters are carried over
   byte-identical (and tampering with a carried certificate or the
   partition claim is rejected), every repaired result passes the
   graph-only audit verifier on the post-fault graph, and — the qcheck
   property — under random seeded fault deltas the repaired
   decomposition is valid on the survivor subgraph exactly when a
   from-scratch run is. *)

open Dsgraph
module CR = Cluster.Repair
module Repair = Workload.Repair
module Chaos = Workload.Chaos
module Audit = Workload.Audit

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "expected Invalid_argument: %s" what

(* ------------------------------------------------------------------ *)
(* Graph.apply_edits                                                   *)
(* ------------------------------------------------------------------ *)

let test_apply_edits () =
  let g = Gen.path 4 in
  let g' = Graph.apply_edits g ~del:[ (2, 1) ] ~add:[ (3, 0) ] in
  check bool "deleted" false (Graph.is_edge g' 1 2);
  check bool "added" true (Graph.is_edge g' 0 3);
  check bool "kept" true (Graph.is_edge g' 0 1);
  check int "edge count" 3 (Graph.m g');
  check bool "base untouched" true (Graph.is_edge g 1 2);
  expect_invalid "deleting a non-edge" (fun () ->
      Graph.apply_edits g ~del:[ (0, 2) ] ~add:[]);
  expect_invalid "adding an existing edge" (fun () ->
      Graph.apply_edits g ~del:[] ~add:[ (0, 1) ]);
  expect_invalid "self-loop" (fun () ->
      Graph.apply_edits g ~del:[] ~add:[ (2, 2) ]);
  expect_invalid "del and add the same edge" (fun () ->
      Graph.apply_edits g ~del:[ (0, 1) ] ~add:[ (1, 0) ])

(* ------------------------------------------------------------------ *)
(* Fault state                                                          *)
(* ------------------------------------------------------------------ *)

let test_state_crash_revive () =
  let g = Gen.path 4 in
  let st = CR.init g in
  let st1 = CR.step st (CR.delta ~crash:[ 1 ] ()) in
  check bool "isolated" false (Graph.is_edge (CR.graph st1) 0 1);
  check bool "down" true (CR.is_down st1 1);
  Alcotest.(check (list int)) "down list" [ 1 ] (CR.down st1);
  check bool "prior state untouched" false (CR.is_down st 1);
  let st2 = CR.step st1 (CR.delta ~revive:[ 1 ] ()) in
  check bool "edges restored" true
    (Graph.is_edge (CR.graph st2) 0 1 && Graph.is_edge (CR.graph st2) 1 2);
  (* a deletion survives the owner's crash and revival *)
  let st3 = CR.step st (CR.delta ~del_edges:[ (0, 1) ] ()) in
  let st4 = CR.step st3 (CR.delta ~crash:[ 1 ] ()) in
  let st5 = CR.step st4 (CR.delta ~revive:[ 1 ] ()) in
  check bool "deletion persists" false (Graph.is_edge (CR.graph st5) 0 1);
  check bool "other edge back" true (Graph.is_edge (CR.graph st5) 1 2)

let test_step_validation () =
  let g = Gen.path 4 in
  let st = CR.init g in
  let down = CR.step st (CR.delta ~crash:[ 1 ] ()) in
  expect_invalid "crash a down node" (fun () ->
      CR.step down (CR.delta ~crash:[ 1 ] ()));
  expect_invalid "revive an up node" (fun () ->
      CR.step st (CR.delta ~revive:[ 2 ] ()));
  expect_invalid "crash and revive the same node" (fun () ->
      CR.step down (CR.delta ~crash:[ 2 ] ~revive:[ 2 ] ()));
  expect_invalid "delete an absent edge" (fun () ->
      CR.step st (CR.delta ~del_edges:[ (0, 2) ] ()));
  expect_invalid "insert an existing edge" (fun () ->
      CR.step st (CR.delta ~add_edges:[ (1, 2) ] ()));
  expect_invalid "insert at a down endpoint" (fun () ->
      CR.step down (CR.delta ~add_edges:[ (1, 3) ] ()))

(* ------------------------------------------------------------------ *)
(* Planning on a hand-built clustering: cycle of 8 nodes, clusters
   {0,1} {2,3} {4,5} {6,7} — all strongly certifiable pairs            *)
(* ------------------------------------------------------------------ *)

let pairs_fixture () =
  let g = Gen.cycle 8 in
  let cl = Cluster.Clustering.make g ~cluster_of:[| 0; 0; 1; 1; 2; 2; 3; 3 |] in
  (g, cl)

let strong _ = false
let carving_color _ = -1

let test_plan_halo () =
  let g, cl = pairs_fixture () in
  let d = CR.delta ~crash:[ 0 ] () in
  let st = CR.step (CR.init g) d in
  let p0 = CR.plan ~weak:strong ~color:carving_color ~old:cl st d in
  Alcotest.(check (list int)) "halo 0: only the hit cluster" [ 0 ] p0.CR.dirty;
  Alcotest.(check (list int)) "halo 0: surviving member" [ 1 ] p0.CR.region;
  let p1 = CR.plan ~halo:1 ~weak:strong ~color:carving_color ~old:cl st d in
  Alcotest.(check (list int)) "halo 1: ball reaches neighbors" [ 0; 1; 3 ]
    p1.CR.dirty;
  Alcotest.(check (list int)) "halo 1: region" [ 1; 2; 3; 6; 7 ] p1.CR.region

let test_plan_edge_rules () =
  let g, cl = pairs_fixture () in
  (* intra-cluster deletion invalidates the exact eccentric witness *)
  let d = CR.delta ~del_edges:[ (2, 3) ] () in
  let st = CR.step (CR.init g) d in
  let p = CR.plan ~weak:strong ~color:carving_color ~old:cl st d in
  Alcotest.(check (list int)) "intra del dirties its cluster" [ 1 ] p.CR.dirty;
  (* inter-cluster insertion with equal colors dirties both sides *)
  let d = CR.delta ~add_edges:[ (1, 4) ] () in
  let st = CR.step (CR.init g) d in
  let p = CR.plan ~weak:strong ~color:carving_color ~old:cl st d in
  Alcotest.(check (list int)) "same-color insertion dirties both" [ 0; 2 ]
    p.CR.dirty;
  (* distinct colors: separation is allowed to survive the insertion *)
  let p =
    CR.plan ~weak:strong ~color:(fun c -> c) ~old:cl st d
  in
  Alcotest.(check (list int)) "distinct-color insertion is clean" [] p.CR.dirty;
  (* weak certificates are dirtied by any delta at all *)
  let p = CR.plan ~weak:(fun _ -> true) ~color:(fun c -> c) ~old:cl st d in
  Alcotest.(check (list int)) "weak certs always dirty" [ 0; 1; 2; 3 ]
    p.CR.dirty

let test_merge_carving_frontier () =
  (* a real (non-adjacent) carving on the path 0-1-2-3-4-5: clusters
     {0,1} and {3,4}, dead separators 2 and 5. Crashing 0 with halo 1
     pulls the dead node 2 into the region as a halo extra — but 2
     borders the untouched cluster {3,4}, so it must be withheld from
     the re-carver and left dead *)
  let g = Gen.path 6 in
  let cl =
    Cluster.Clustering.make g ~cluster_of:[| 0; 0; -1; 1; 1; -1 |]
  in
  let d = CR.delta ~crash:[ 0 ] () in
  let st = CR.step (CR.init g) d in
  let p = CR.plan ~halo:1 ~weak:strong ~color:carving_color ~old:cl st d in
  Alcotest.(check (list int)) "region = survivor + halo extra" [ 1; 2 ]
    p.CR.region;
  let recarve_nodes = ref (-1) in
  let m =
    CR.merge ~kind:CR.Carving ~old:cl ~color_of:carving_color ~plan:p ~state:st
      ~recarve:(fun sub ->
        recarve_nodes := Graph.n sub;
        (Array.make (Graph.n sub) 0, [| -1 |]))
  in
  check int "only the interior node reaches the re-carver" 1 !recarve_nodes;
  check int "two clusters" 2 (Cluster.Clustering.num_clusters m.CR.clustering);
  check int "frontier node stays dead" (-1)
    (Cluster.Clustering.cluster_of m.CR.clustering 2);
  check bool "separation preserved" true
    (Cluster.Clustering.non_adjacent m.CR.clustering);
  Alcotest.(check (list int)) "untouched members intact" [ 3; 4 ]
    (Cluster.Clustering.members m.CR.clustering m.CR.old_to_new.(1));
  check int "one fresh cluster" 1 (List.length m.CR.fresh)

let test_merge_empty_delta_is_identity () =
  let fam = Workload.Suite.find "grid" in
  let g = fam.Workload.Suite.build ~seed:3 ~n:64 in
  let a = Workload.Algorithms.find_decomposer "greedy" in
  let dcp = a.Workload.Algorithms.run ~cost:(Congest.Cost.create ()) ~seed:3 g in
  let s = Repair.start_decomposition dcp in
  let s', rep = Repair.repair ~recarve:(Repair.recarve_decomposer a ~seed:4) s (CR.delta ()) in
  check int "nothing touched" 0 rep.Repair.touched_nodes;
  check int "nothing fresh" 0 rep.Repair.fresh_clusters;
  check int "all carried"
    (Cluster.Clustering.num_clusters s.Repair.clustering)
    rep.Repair.carried_clusters;
  (match Repair.verify_cert ~prev:s ~post:(CR.graph s'.Repair.state) rep.Repair.cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "identity repair rejected: %s" e);
  check bool "audit unchanged" true (s'.Repair.audit = s.Repair.audit)

(* ------------------------------------------------------------------ *)
(* Workload sessions: end-to-end repair + certificate                   *)
(* ------------------------------------------------------------------ *)

let decomp_session ?(n = 64) ?(seed = 3) () =
  let fam = Workload.Suite.find "grid" in
  let g = fam.Workload.Suite.build ~seed ~n in
  let a = Workload.Algorithms.find_decomposer "greedy" in
  let d = a.Workload.Algorithms.run ~cost:(Congest.Cost.create ()) ~seed g in
  (Repair.start_decomposition d, Repair.recarve_decomposer a ~seed:(seed + 1))

let test_decomposition_repair_certified () =
  let s, recarve = decomp_session () in
  let g = CR.graph s.Repair.state in
  let v = Graph.n g / 2 in
  let w = List.hd (Array.to_list (Graph.neighbors g (v + 1))) in
  let d =
    CR.delta ~crash:[ v ]
      ~del_edges:[ (v + 1, w) ]
      ()
  in
  let s', rep = Repair.repair ~halo:1 ~recarve s d in
  (match Repair.verify_cert ~prev:s ~post:(CR.graph s'.Repair.state) rep.Repair.cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest repair rejected: %s" e);
  check int "every survivor clustered" 0 s'.Repair.audit.Audit.dead;
  check bool "repair was local" true (rep.Repair.touched_fraction < 0.5);
  check bool "some clusters carried" true (rep.Repair.carried_clusters > 0)

let test_carving_repair_certified () =
  let fam = Workload.Suite.find "grid" in
  let g = fam.Workload.Suite.build ~seed:5 ~n:64 in
  let a = Workload.Algorithms.find_carver "thm2.2" in
  let cv =
    a.Workload.Algorithms.run ~cost:(Congest.Cost.create ()) ~seed:5 g
      ~epsilon:0.25
  in
  let s = Repair.start_carving cv in
  let d = CR.delta ~crash:[ 7 ] () in
  let s', rep =
    Repair.repair ~halo:1
      ~recarve:(Repair.recarve_carver a ~seed:6 ~epsilon:0.25)
      s d
  in
  (match Repair.verify_cert ~prev:s ~post:(CR.graph s'.Repair.state) rep.Repair.cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest carving repair rejected: %s" e);
  check bool "separation preserved" true
    (Cluster.Clustering.non_adjacent s'.Repair.clustering)

let test_tampered_cert_rejected () =
  let s, recarve = decomp_session () in
  let d = CR.delta ~crash:[ 10 ] () in
  let s', rep = Repair.repair ~halo:1 ~recarve s d in
  let post = CR.graph s'.Repair.state in
  let cert = rep.Repair.cert in
  let expect_reject what c =
    match Repair.verify_cert ~prev:s ~post c with
    | Ok () -> Alcotest.failf "tampering not rejected: %s" what
    | Error _ -> ()
  in
  (* claim a dirty cluster was carried-clean: the partition check fails *)
  expect_reject "dropped dirty id"
    { cert with Repair.c_dirty = List.tl cert.Repair.c_dirty };
  (* tamper one carried cluster's certificate content *)
  (match cert.Repair.c_carried with
  | [] -> Alcotest.fail "expected carried clusters"
  | (_, nw) :: _ ->
      let audit = cert.Repair.c_audit in
      let tampered =
        {
          audit with
          Audit.certs =
            List.map
              (fun (c : Audit.cert) ->
                if c.Audit.cluster = nw then
                  { c with Audit.diameter_ub = Some 9999 }
                else c)
              audit.Audit.certs;
        }
      in
      expect_reject "mutated carried certificate"
        { cert with Repair.c_audit = tampered })

(* the ISSUE acceptance bar: grid256, one crash, halo 1 — the repair
   re-carves at most 25% of the nodes *)
let test_grid256_single_crash_locality () =
  let s, recarve = decomp_session ~n:256 () in
  let d = CR.delta ~crash:[ 128 ] () in
  let s', rep = Repair.repair ~halo:1 ~recarve s d in
  (match Repair.verify_cert ~prev:s ~post:(CR.graph s'.Repair.state) rep.Repair.cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grid256 repair rejected: %s" e);
  check bool
    (Printf.sprintf "touched fraction %.3f <= 0.25" rep.Repair.touched_fraction)
    true
    (rep.Repair.touched_fraction <= 0.25)

(* ------------------------------------------------------------------ *)
(* qcheck: repair-equivalence under random seeded fault deltas          *)
(* ------------------------------------------------------------------ *)

let prop_repair_equivalence =
  QCheck2.Test.make ~count:40
    ~name:
      "random deltas: repair certificate accepted and repaired validity \
       matches from-scratch validity"
    QCheck2.Gen.(
      quad (int_range 0 100_000) (int_range 12 48) (int_range 0 2)
        (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)))
    (fun (seed, n, crashes, (dels, adds, halo)) ->
      let algo =
        match seed mod 4 with
        | 0 -> Chaos.Decomposer "greedy"
        | 1 -> Chaos.Decomposer "gha19"
        | 2 -> Chaos.Decomposer "ls93"
        | _ -> Chaos.Carver "thm2.2"
      in
      let family = match seed mod 3 with 0 -> "er" | 1 -> "grid" | _ -> "tree" in
      let sp =
        Chaos.spec algo ~family ~n ~seed ~steps:2 ~crashes ~edge_dels:dels
          ~edge_adds:adds ~halo ~revive_prob:0.5
      in
      let r = Chaos.run sp in
      (* zero invariant violations = repair accepted + valid on the
         survivor subgraph; scratch_valid = the from-scratch side of the
         equivalence (both must hold, and do) *)
      r.Chaos.failures = []
      && List.for_all (fun row -> row.Chaos.scratch_valid) r.Chaos.rows)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repair"
    [
      ( "state",
        [
          Alcotest.test_case "apply_edits" `Quick test_apply_edits;
          Alcotest.test_case "crash and revive" `Quick test_state_crash_revive;
          Alcotest.test_case "delta validation" `Quick test_step_validation;
        ] );
      ( "plan",
        [
          Alcotest.test_case "halo balls" `Quick test_plan_halo;
          Alcotest.test_case "edge dirty rules" `Quick test_plan_edge_rules;
        ] );
      ( "merge",
        [
          Alcotest.test_case "carving frontier withheld" `Quick
            test_merge_carving_frontier;
          Alcotest.test_case "empty delta is identity" `Quick
            test_merge_empty_delta_is_identity;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "decomposition repair certified" `Quick
            test_decomposition_repair_certified;
          Alcotest.test_case "carving repair certified" `Quick
            test_carving_repair_certified;
          Alcotest.test_case "tampered certificates rejected" `Quick
            test_tampered_cert_rejected;
          Alcotest.test_case "grid256 single crash is local" `Quick
            test_grid256_single_crash_locality;
          QCheck_alcotest.to_alcotest prop_repair_equivalence;
        ] );
    ]
