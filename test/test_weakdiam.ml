open Dsgraph
module WC = Weakdiam.Weak_carving
module Clustering = Cluster.Clustering
module Carving = Cluster.Carving
module Steiner = Cluster.Steiner
module Cost = Congest.Cost

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let is_ok = function Ok () -> true | Error _ -> false

let log2i n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (2 * k) in
  go 0 1

(* Full validation of a weak carving result against the contract of the
   black box [A] in Theorem 2.1. *)
let validate ?(preset = WC.Ggr21) ~epsilon g =
  let result = WC.carve ~preset g ~epsilon in
  let b = Congest.Bits.id_bits ~n:(Graph.n g) in
  (* 1. clusters non-adjacent, dead fraction <= epsilon, valid trees *)
  let checked =
    Carving.check_weak ~epsilon ~steiner:result.forest
      ~congestion_bound:(b + 1) result.carving
  in
  (match checked with
  | Ok () -> ()
  | Error e -> Alcotest.failf "carving invalid: %s" e);
  result

let workload seed =
  let rng = Rng.create seed in
  [
    ("path", Gen.path 60);
    ("cycle", Gen.cycle 48);
    ("grid", Gen.grid 8 8);
    ("tree", Gen.random_tree (Rng.split rng) 70);
    ("er", Gen.ensure_connected rng (Gen.erdos_renyi (Rng.split rng) 64 0.06));
    ("hypercube", Gen.hypercube 6);
    ("ring of cliques", Gen.ring_of_cliques 6 6);
    ("expander", Gen.expander (Rng.split rng) 64);
  ]

let test_contract_all_families preset () =
  List.iter
    (fun (name, g) ->
      let r = validate ~preset ~epsilon:0.5 g in
      check bool (name ^ ": some node clustered") true
        (Clustering.clustered_count (Carving.(r.carving.clustering)) > 0))
    (workload 1)

let test_epsilon_sweep preset () =
  let g = Gen.grid 10 10 in
  List.iter
    (fun epsilon -> ignore (validate ~preset ~epsilon g))
    [ 0.5; 0.25; 0.125 ]

let test_all_alive_nodes_clustered () =
  (* every domain node is either dead or in a cluster; clusters partition *)
  let g = Gen.grid 7 7 in
  let r = WC.carve g ~epsilon:0.5 in
  let clustering = r.carving.Carving.clustering in
  let dead = Carving.dead r.carving in
  check int "dead + clustered = n" (Graph.n g)
    (List.length dead + Clustering.clustered_count clustering)

let test_clusters_cover_components () =
  (* adjacent alive nodes always end with the same label: each alive
     component lies inside one cluster *)
  let g = Gen.expander (Rng.create 5) 64 in
  let r = WC.carve g ~epsilon:0.5 in
  let clustering = r.carving.Carving.clustering in
  let alive =
    Mask.of_list (Graph.n g)
      (List.filter (fun v -> Clustering.cluster_of clustering v >= 0)
         (Graph.nodes g))
  in
  List.iter
    (fun comp ->
      match comp with
      | [] -> ()
      | v :: rest ->
          let c = Clustering.cluster_of clustering v in
          List.iter
            (fun u -> check int "same cluster" c (Clustering.cluster_of clustering u))
            rest)
    (Components.components ~mask:alive g)

let test_deterministic () =
  let g = Gen.erdos_renyi (Rng.create 7) 50 0.08 in
  let r1 = WC.carve g ~epsilon:0.5 in
  let r2 = WC.carve g ~epsilon:0.5 in
  let c1 = r1.carving.Carving.clustering and c2 = r2.carving.Carving.clustering in
  check int "same cluster count" (Clustering.num_clusters c1)
    (Clustering.num_clusters c2);
  for v = 0 to Graph.n g - 1 do
    check int "same assignment" (Clustering.cluster_of c1 v)
      (Clustering.cluster_of c2 v)
  done

let test_depth_bound_rg20 () =
  (* RG20 worst-case Steiner depth is O(log^3 n / eps); check a generous
     concrete constant on the workload suite *)
  List.iter
    (fun (name, g) ->
      let epsilon = 0.5 in
      let r = WC.carve ~preset:WC.Rg20 g ~epsilon in
      let b = log2i (Graph.n g) in
      let bound =
        int_of_float (float_of_int (4 * b * b * b) /. epsilon) + (4 * b) + 8
      in
      let measured =
        Array.fold_left (fun acc t -> max acc (Steiner.depth t)) 0 r.forest
      in
      check bool
        (Printf.sprintf "%s: depth %d within O(log^3/eps) bound %d" name
           measured bound)
        true (measured <= bound))
    (workload 2)

let test_depth_ggr21_not_worse_than_rg20_shape () =
  (* on long paths the GGR21 preset should produce clearly shallower trees *)
  let g = Gen.path 200 in
  let rg = WC.carve ~preset:WC.Rg20 g ~epsilon:0.5 in
  let gg = WC.carve ~preset:WC.Ggr21 g ~epsilon:0.5 in
  check bool "both bounded" true (rg.max_depth >= 0 && gg.max_depth >= 0);
  check bool "ggr21 within rg20 * 2" true (gg.max_depth <= (2 * rg.max_depth) + 8)

let test_congestion_bound () =
  (* each node joins a given cluster's tree at most once per phase, so an
     edge serves at most b+1 trees *)
  List.iter
    (fun (name, g) ->
      let r = WC.carve g ~epsilon:0.5 in
      let b = Congest.Bits.id_bits ~n:(Graph.n g) in
      check bool
        (Printf.sprintf "%s: congestion %d <= %d" name r.congestion (b + 1))
        true
        (r.congestion <= b + 1))
    (workload 3)

let test_cost_meter_charged () =
  let cost = Cost.create () in
  let g = Gen.grid 8 8 in
  ignore (WC.carve ~cost g ~epsilon:0.5);
  check bool "rounds charged" true (Cost.rounds cost > 0);
  check bool "messages charged" true (Cost.messages cost > 0);
  (* messages stay small: 2 * id bits *)
  check bool "message size O(log n)" true
    (Cost.max_message_bits cost <= 2 * Congest.Bits.id_bits ~n:64)

let test_domain_restriction () =
  let g = Gen.grid 6 6 in
  (* carve only the left half *)
  let domain =
    Mask.of_list (Graph.n g)
      (List.filter (fun v -> v mod 6 < 3) (Graph.nodes g))
  in
  let r = WC.carve ~domain g ~epsilon:0.5 in
  let clustering = r.carving.Carving.clustering in
  for v = 0 to Graph.n g - 1 do
    if not (Mask.mem domain v) then
      check int "outside domain unclustered" (-1)
        (Clustering.cluster_of clustering v)
  done;
  check bool "inside clustered" true (Clustering.clustered_count clustering > 0)

let test_epsilon_validation () =
  let g = Gen.path 4 in
  Alcotest.check_raises "eps 0"
    (Invalid_argument "Weak_carving.carve: epsilon must be in (0, 1)")
    (fun () -> ignore (WC.carve g ~epsilon:0.0));
  Alcotest.check_raises "eps 1"
    (Invalid_argument "Weak_carving.carve: epsilon must be in (0, 1)")
    (fun () -> ignore (WC.carve g ~epsilon:1.0))

let test_singleton_graph () =
  let g = Graph.of_edge_seq ~n:1 Seq.empty in
  let r = WC.carve g ~epsilon:0.5 in
  let clustering = r.carving.Carving.clustering in
  check int "one cluster" 1 (Clustering.num_clusters clustering);
  check int "no dead" 0 (List.length (Carving.dead r.carving))

let test_two_isolated_nodes () =
  let g = Graph.of_edge_seq ~n:2 Seq.empty in
  let r = WC.carve g ~epsilon:0.5 in
  check int "two clusters" 2
    (Clustering.num_clusters r.carving.Carving.clustering)

let test_complete_graph_one_cluster () =
  (* on a clique everything merges into a single cluster or dies; with
     eps=0.5 at most half may die, so a big cluster must exist *)
  let g = Gen.complete 16 in
  let r = WC.carve g ~epsilon:0.5 in
  let clustering = r.carving.Carving.clustering in
  check bool "non adjacent" true (Clustering.non_adjacent clustering);
  (* all alive nodes in one cluster (clique = adjacent) *)
  check bool "at most one cluster" true (Clustering.num_clusters clustering <= 1)

(* ------------------------------------------------------------------ *)
(* The genuinely distributed execution (Congest.Sim node program)       *)
(* ------------------------------------------------------------------ *)

module Dist = Weakdiam.Distributed

let small_workload seed =
  let rng = Rng.create seed in
  [
    ("path", Gen.path 20);
    ("cycle", Gen.cycle 16);
    ("grid", Gen.grid 5 5);
    ("er", Gen.ensure_connected rng (Gen.erdos_renyi (Rng.split rng) 28 0.12));
    ("clique", Gen.complete 9);
    ("star", Gen.star 12);
    ("tree", Gen.random_tree (Rng.split rng) 24);
  ]

let test_distributed_matches_engine preset () =
  List.iter
    (fun (name, g) ->
      let r = Dist.carve ~preset g ~epsilon:0.5 in
      check bool (name ^ ": simulation equals engine") true
        (Dist.matches_engine r);
      check bool (name ^ ": halted") true r.Dist.sim_stats.Congest.Sim.all_halted)
    (small_workload 5)

let test_distributed_small_messages () =
  let g = Gen.grid 6 6 in
  let r = Dist.carve g ~epsilon:0.5 in
  check bool "messages fit CONGEST bandwidth" true
    (r.Dist.sim_stats.Congest.Sim.max_bits_seen
    <= Congest.Bits.bandwidth ~n:36);
  check bool "still matches" true (Dist.matches_engine r)

let test_distributed_epsilon_sweep () =
  let g = Gen.grid 5 5 in
  List.iter
    (fun epsilon ->
      let r = Dist.carve g ~epsilon in
      check bool "matches engine" true (Dist.matches_engine r))
    [ 0.5; 0.25 ]

let test_distributed_rounds_within_schedule () =
  let g = Gen.path 24 in
  let r = Dist.carve g ~epsilon:0.5 in
  check bool "rounds within schedule budget" true
    (r.Dist.sim_stats.Congest.Sim.rounds_used
    <= ((r.Dist.total_steps + 6) * r.Dist.step_budget))

let prop_distributed_matches_engine =
  QCheck.Test.make
    ~name:"distributed weak carving equals the step-granular engine" ~count:45
    (QCheck.make
       ~print:(fun (seed, n, pct) ->
         Printf.sprintf "seed=%d n=%d p=%d%%" seed n pct)
       QCheck.Gen.(triple (int_bound 50_000) (int_range 2 30) (int_range 4 30)))
    (fun (seed, n, pct) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      let r = Dist.carve g ~epsilon:0.5 in
      Dist.matches_engine r)

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)
(* ------------------------------------------------------------------ *)

let arb =
  QCheck.make
    ~print:(fun (seed, n, pct, e) ->
      Printf.sprintf "seed=%d n=%d p=%d%% eps=%d/8" seed n pct e)
    QCheck.Gen.(
      quad (int_bound 100_000) (int_range 2 60) (int_range 0 30)
        (int_range 2 6))

let prop_contract preset name =
  QCheck.Test.make ~name ~count:70 arb (fun (seed, n, pct, e) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      let epsilon = float_of_int e /. 8.0 in
      let r = WC.carve ~preset g ~epsilon in
      let b = Congest.Bits.id_bits ~n in
      is_ok
        (Carving.check_weak ~epsilon ~steiner:r.forest ~congestion_bound:(b + 1)
           r.carving))

let prop_rg20 = prop_contract WC.Rg20 "rg20 carving meets the weak contract"

let prop_ggr21 =
  prop_contract WC.Ggr21 "ggr21 carving meets the weak contract"

let prop_hybrid =
  prop_contract WC.Hybrid "hybrid carving meets the weak contract"

let prop_hybrid_kills_at_most_rg20_budget =
  (* the hybrid threshold is the min of the two, so a stopping cluster
     kills strictly less than the RG20 threshold: the dead fraction obeys
     the RG20 worst-case proof *)
  QCheck.Test.make ~name:"hybrid dead fraction within rg20 budget" ~count:70
    arb (fun (seed, n, pct, e) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      let epsilon = float_of_int e /. 8.0 in
      let r = WC.carve ~preset:WC.Hybrid g ~epsilon in
      Cluster.Carving.dead_fraction r.WC.carving <= epsilon +. 1e-9)

let prop_alive_components_in_one_cluster =
  QCheck.Test.make ~name:"alive components lie inside single clusters"
    ~count:70 arb (fun (seed, n, pct, e) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n (float_of_int pct /. 100.0) in
      let epsilon = float_of_int e /. 8.0 in
      let r = WC.carve g ~epsilon in
      let clustering = r.carving.Carving.clustering in
      let alive =
        Mask.of_list n
          (List.filter
             (fun v -> Clustering.cluster_of clustering v >= 0)
             (Graph.nodes g))
      in
      List.for_all
        (fun comp ->
          match comp with
          | [] -> true
          | v :: rest ->
              let c = Clustering.cluster_of clustering v in
              List.for_all (fun u -> Clustering.cluster_of clustering u = c) rest)
        (Components.components ~mask:alive g))

let () =
  Alcotest.run "weakdiam"
    [
      ( "contract",
        [
          Alcotest.test_case "all families (ggr21)" `Quick
            (test_contract_all_families WC.Ggr21);
          Alcotest.test_case "all families (rg20)" `Quick
            (test_contract_all_families WC.Rg20);
          Alcotest.test_case "all families (hybrid)" `Quick
            (test_contract_all_families WC.Hybrid);
          Alcotest.test_case "epsilon sweep (ggr21)" `Quick
            (test_epsilon_sweep WC.Ggr21);
          Alcotest.test_case "epsilon sweep (rg20)" `Quick
            (test_epsilon_sweep WC.Rg20);
          Alcotest.test_case "dead + clustered = n" `Quick
            test_all_alive_nodes_clustered;
          Alcotest.test_case "components in one cluster" `Quick
            test_clusters_cover_components;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "rg20 depth bound" `Quick test_depth_bound_rg20;
          Alcotest.test_case "ggr21 vs rg20 depth" `Quick
            test_depth_ggr21_not_worse_than_rg20_shape;
          Alcotest.test_case "congestion bound" `Quick test_congestion_bound;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "cost meter" `Quick test_cost_meter_charged;
          Alcotest.test_case "domain restriction" `Quick test_domain_restriction;
          Alcotest.test_case "epsilon validation" `Quick test_epsilon_validation;
          Alcotest.test_case "singleton" `Quick test_singleton_graph;
          Alcotest.test_case "isolated nodes" `Quick test_two_isolated_nodes;
          Alcotest.test_case "complete graph" `Quick
            test_complete_graph_one_cluster;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "matches engine (ggr21)" `Quick
            (test_distributed_matches_engine Weakdiam.Weak_carving.Ggr21);
          Alcotest.test_case "matches engine (rg20)" `Quick
            (test_distributed_matches_engine Weakdiam.Weak_carving.Rg20);
          Alcotest.test_case "matches engine (hybrid)" `Quick
            (test_distributed_matches_engine Weakdiam.Weak_carving.Hybrid);
          Alcotest.test_case "small messages" `Quick
            test_distributed_small_messages;
          Alcotest.test_case "epsilon sweep" `Quick
            test_distributed_epsilon_sweep;
          Alcotest.test_case "rounds within schedule" `Quick
            test_distributed_rounds_within_schedule;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rg20;
            prop_ggr21;
            prop_hybrid;
            prop_hybrid_kills_at_most_rg20_budget;
            prop_alive_components_in_one_cluster;
            prop_distributed_matches_engine;
          ] );
    ]
