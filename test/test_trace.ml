(* Tests for the observability layer: Congest.Trace event streams checked
   against the simulator's own stats (for a weak and a strong algorithm,
   fault-free and adversarial), JSONL round-trips, the packed sink's
   allocation behavior, and Metrics derivation. *)

open Dsgraph
module Sim = Congest.Sim
module Trace = Congest.Trace
module Metrics = Congest.Metrics
module Fault = Congest.Fault

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let count p sink =
  let c = ref 0 in
  Trace.iter (fun ev -> if p ev then incr c) sink;
  !c

let grid8 = Gen.grid 8 8
let er seed n = Gen.ensure_connected (Rng.create seed) (Gen.erdos_renyi (Rng.create seed) n 0.08)

(* ------------------------------------------------------------------ *)
(* Trace/stats agreement                                                *)
(* ------------------------------------------------------------------ *)

(* the invariants every simulated run must satisfy, traced *)
let agree name (stats : Sim.stats) sink =
  check int (name ^ ": nothing truncated") 0 (Trace.truncated sink);
  check int (name ^ ": sent events = total_messages") stats.Sim.total_messages
    (count (function Trace.Message_sent _ -> true | _ -> false) sink);
  check int (name ^ ": round_start events = rounds_used") stats.Sim.rounds_used
    (count (function Trace.Round_start _ -> true | _ -> false) sink);
  check int (name ^ ": round_end events = rounds_used") stats.Sim.rounds_used
    (count (function Trace.Round_end _ -> true | _ -> false) sink);
  check int (name ^ ": dropped events = faults.dropped")
    stats.Sim.faults.Sim.dropped
    (count (function Trace.Message_dropped _ -> true | _ -> false) sink);
  check int (name ^ ": duplicated events = faults.duplicated")
    stats.Sim.faults.Sim.duplicated
    (count (function Trace.Message_duplicated _ -> true | _ -> false) sink);
  check int (name ^ ": delayed events = faults.delayed")
    stats.Sim.faults.Sim.delayed
    (count (function Trace.Message_delayed _ -> true | _ -> false) sink);
  let high_water =
    let m = ref 0 in
    Trace.iter
      (function
        | Trace.Bandwidth_high_water { bits; _ } -> m := max !m bits
        | _ -> ())
      sink;
    !m
  in
  check int (name ^ ": high-water = max_bits_seen") stats.Sim.max_bits_seen
    high_water

let test_agreement_weak_fault_free () =
  let sink = Trace.sink () in
  let r = Weakdiam.Distributed.carve ~trace:sink grid8 ~epsilon:0.5 in
  check bool "carving matches engine" true (Weakdiam.Distributed.matches_engine r);
  agree "weak carve" r.Weakdiam.Distributed.sim_stats sink;
  (* a complete fault-free run delivers every message it sends *)
  check int "delivered = sent"
    (count (function Trace.Message_sent _ -> true | _ -> false) sink)
    (count (function Trace.Message_delivered _ -> true | _ -> false) sink)

let test_agreement_weak_adversarial () =
  let adv = Fault.create (Fault.spec ~seed:5 ~drop:0.05 ~duplicate:0.02 ~delay:0.03 ()) in
  let sink = Trace.sink () in
  (* the reliable wrapper multiplies traffic; a 5x5 grid keeps the stream
     well under the sink's capacity *)
  let r =
    Weakdiam.Distributed.carve_reliable ~adversary:adv ~trace:sink
      (Gen.grid 5 5) ~epsilon:0.5
  in
  let stats = r.Weakdiam.Distributed.r_sim_stats in
  check bool "adversary actually dropped" true (stats.Sim.faults.Sim.dropped > 0);
  agree "weak carve reliable+adversary" stats sink

let test_agreement_strong_fault_free () =
  let sink = Trace.sink () in
  let r = Baseline.Mpx_distributed.partition ~trace:sink (er 3 80) ~beta:0.4 in
  agree "mpx partition" r.Baseline.Mpx_distributed.sim_stats sink

let test_agreement_strong_adversarial () =
  let adv = Fault.create (Fault.spec ~seed:9 ~drop:0.08 ~delay:0.05 ()) in
  let sink = Trace.sink () in
  let r =
    Baseline.Mpx_distributed.partition ~adversary:adv ~trace:sink (er 3 80)
      ~beta:0.4
  in
  let stats = r.Baseline.Mpx_distributed.sim_stats in
  check bool "adversary actually dropped" true (stats.Sim.faults.Sim.dropped > 0);
  agree "mpx partition under faults" stats sink

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)
(* ------------------------------------------------------------------ *)

let test_event_stream_deterministic () =
  let run () =
    let sink = Trace.sink () in
    let adv = Fault.create (Fault.spec ~seed:7 ~drop:0.05 ~duplicate:0.02 ()) in
    ignore
      (Baseline.Mpx_distributed.partition ~seed:2 ~adversary:adv ~trace:sink
         (er 4 60) ~beta:0.5);
    Trace.events sink
  in
  let a = run () and b = run () in
  check int "same length" (List.length a) (List.length b);
  check bool "identical event streams" true (a = b)

(* ------------------------------------------------------------------ *)
(* Sink mechanics                                                       *)
(* ------------------------------------------------------------------ *)

let test_capacity_truncation () =
  let s = Trace.sink ~capacity:10 () in
  for round = 1 to 25 do
    Trace.record s (Trace.Round_start { round })
  done;
  check int "length capped" 10 (Trace.length s);
  check int "overflow counted" 15 (Trace.truncated s);
  (* the first 10 events are the ones retained *)
  (match List.rev (Trace.events s) with
  | Trace.Round_start { round } :: _ -> check int "last retained" 10 round
  | _ -> Alcotest.fail "unexpected event");
  Trace.clear s;
  check int "cleared" 0 (Trace.length s);
  check int "cleared truncation" 0 (Trace.truncated s)

let test_spill_streams_past_capacity () =
  let path = Filename.temp_file "trace_spill" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* capacity 16, 10k events: the overwhelming majority live on disk *)
      let s = Trace.sink ~capacity:16 ~spill:path () in
      for round = 1 to 5_000 do
        Trace.record s (Trace.Round_start { round });
        Trace.emit_message_sent s ~round ~src:(round mod 7)
          ~dst:((round + 1) mod 7) ~bits:round
      done;
      check int "nothing truncated" 0 (Trace.truncated s);
      check int "all events retained" 10_000 (Trace.length s);
      check bool "spilled to disk" true (Trace.spilled s > 9_000);
      (* iter replays the spilled prefix then the in-memory tail, in
         emission order *)
      let next = ref 1 and ok = ref true in
      Trace.iter
        (fun ev ->
          (match ev with
          | Trace.Round_start { round } -> if round <> !next then ok := false
          | Trace.Message_sent { round; bits; _ } ->
              if round <> !next || bits <> !next then ok := false;
              incr next
          | _ -> ok := false))
        s;
      check bool "replay order intact" true !ok;
      check int "replayed everything" 5_001 !next;
      (* random access crosses the disk/memory boundary transparently *)
      (match Trace.events s with
      | Trace.Round_start { round } :: _ -> check int "first event" 1 round
      | _ -> Alcotest.fail "unexpected first event");
      Trace.clear s;
      check int "cleared" 0 (Trace.length s);
      check int "cleared spill" 0 (Trace.spilled s);
      check bool "spill file removed" false (Sys.file_exists path))

let test_spill_jsonl_matches_memory () =
  (* the same workload traced into an unbounded in-memory sink and a
     tiny spilling sink must serialize identically *)
  let run sink =
    let adv = Fault.create (Fault.spec ~seed:7 ~drop:0.05 ~duplicate:0.02 ()) in
    ignore
      (Baseline.Mpx_distributed.partition ~seed:2 ~adversary:adv ~trace:sink
         (er 4 60) ~beta:0.5);
    Trace.to_jsonl sink
  in
  let mem = run (Trace.sink ()) in
  let path = Filename.temp_file "trace_spill" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let spilling = Trace.sink ~capacity:8 ~spill:path () in
      let disk = run spilling in
      check bool "spilled at all" true (Trace.spilled spilling > 0);
      check bool "identical serialization" true (mem = disk))

let test_off_path_allocation_free () =
  (* the simulator's guard pattern: with no sink attached, the emission
     site must not allocate anything *)
  let trace : Trace.sink option = None in
  let observe () =
    let before = Gc.minor_words () in
    for round = 1 to 10_000 do
      match trace with
      | None -> ()
      | Some s -> Trace.record s (Trace.Round_start { round })
    done;
    Gc.minor_words () -. before
  in
  ignore (observe ());
  let delta = observe () in
  check bool
    (Printf.sprintf "no-sink loop allocates nothing (%.0f words)" delta)
    true (delta < 64.0)

let test_hot_emitters_allocation_free () =
  (* the packed emitters never allocate once the buffer has grown *)
  let s = Trace.sink () in
  let burst () =
    for round = 1 to 10_000 do
      Trace.emit_message_sent s ~round ~src:1 ~dst:2 ~bits:8;
      Trace.emit_message_delivered s ~round ~src:1 ~dst:2
    done
  in
  burst ();
  (* buffer is now sized; emitting into the cleared sink must be free *)
  Trace.clear s;
  let before = Gc.minor_words () in
  burst ();
  let delta = Gc.minor_words () -. before in
  check bool
    (Printf.sprintf "warm emitters allocate nothing (%.0f words)" delta)
    true (delta < 64.0);
  check int "events stored" 20_000 (Trace.length s)

let test_emitters_equal_record () =
  let a = Trace.sink () and b = Trace.sink () in
  Trace.emit_message_sent a ~round:3 ~src:0 ~dst:5 ~bits:14;
  Trace.emit_message_delivered a ~round:4 ~src:0 ~dst:5;
  Trace.record b (Trace.Message_sent { round = 3; src = 0; dst = 5; bits = 14 });
  Trace.record b (Trace.Message_delivered { round = 4; src = 0; dst = 5 });
  check bool "same decoded events" true (Trace.events a = Trace.events b)

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let all_variants =
  [
    Trace.Round_start { round = 1 };
    Trace.Round_end { round = 1; sent = 4; delivered = 3; in_flight = 1; halted = 0 };
    Trace.Message_sent { round = 1; src = 0; dst = 7; bits = 12 };
    Trace.Message_delivered { round = 2; src = 0; dst = 7 };
    Trace.Message_dropped { round = 2; src = 1; dst = 3; reason = Trace.Adversary };
    Trace.Message_dropped
      { round = 2; src = 1; dst = 4; reason = Trace.Crashed_destination };
    Trace.Message_duplicated { round = 3; src = 2; dst = 0; copy_delay = 2 };
    Trace.Message_delayed { round = 3; src = 2; dst = 1; delay = 4 };
    Trace.Node_halted { round = 4; node = 5 };
    Trace.Node_crashed { round = 4; node = 6 };
    Trace.Bandwidth_high_water { round = 5; node = 0; bits = 15 };
    Trace.Cost_charged
      { tag = "level \"0\"\nweird\\tag"; rounds = 9; messages = 40; max_bits = 16 };
    Trace.Span_enter { path = "netdecomp/color=3/steiner" };
    Trace.Span_exit { path = "netdecomp/color=3/steiner" };
  ]

let test_jsonl_round_trip () =
  List.iter
    (fun ev ->
      match Trace.event_of_jsonl (Trace.event_to_jsonl ev) with
      | Ok ev' -> check bool (Trace.event_to_jsonl ev) true (ev = ev')
      | Error e -> Alcotest.fail e)
    all_variants;
  (* whole-sink round trip preserves order *)
  let s = Trace.sink () in
  List.iter (Trace.record s) all_variants;
  match Trace.of_jsonl (Trace.to_jsonl s) with
  | Ok evs -> check bool "sink round trip" true (evs = all_variants)
  | Error e -> Alcotest.fail e

let test_jsonl_rejects_garbage () =
  check bool "non-json" true (Result.is_error (Trace.event_of_jsonl "hello"));
  check bool "unknown kind" true
    (Result.is_error (Trace.event_of_jsonl {|{"ev":"warp","round":1}|}));
  check bool "missing field" true
    (Result.is_error (Trace.event_of_jsonl {|{"ev":"message_sent","round":1}|}))

let test_simulated_trace_parses () =
  let sink = Trace.sink () in
  let adv = Fault.create (Fault.spec ~seed:3 ~drop:0.1 ~crashes:[ (2, 4) ] ()) in
  ignore
    (Baseline.Mpx_distributed.partition ~adversary:adv ~trace:sink (er 6 50)
       ~beta:0.5);
  match Trace.of_jsonl (Trace.to_jsonl sink) with
  | Ok evs -> check int "every event survives" (Trace.length sink) (List.length evs)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_of_trace () =
  let sink = Trace.sink () in
  let adv = Fault.create (Fault.spec ~seed:5 ~drop:0.05 ()) in
  let r =
    Baseline.Mpx_distributed.partition ~adversary:adv ~trace:sink (er 3 80)
      ~beta:0.4
  in
  let stats = r.Baseline.Mpx_distributed.sim_stats in
  let m = Metrics.of_trace sink in
  check int "rounds counter" stats.Sim.rounds_used
    (Metrics.counter_value (Metrics.counter m "rounds"));
  check int "messages_sent counter" stats.Sim.total_messages
    (Metrics.counter_value (Metrics.counter m "messages_sent"));
  check int "messages_dropped counter" stats.Sim.faults.Sim.dropped
    (Metrics.counter_value (Metrics.counter m "messages_dropped"));
  let bits = Metrics.histogram m "bits_per_message" in
  check int "bits histogram count" stats.Sim.total_messages
    (Metrics.hist_count bits);
  check bool "bits histogram max = max_bits_seen" true
    (Metrics.hist_max bits = stats.Sim.max_bits_seen);
  check (Alcotest.float 1e-9) "max_message_bits gauge"
    (float_of_int stats.Sim.max_bits_seen)
    (Metrics.gauge_max (Metrics.gauge m "max_message_bits"));
  let per_round = Metrics.histogram m "messages_per_round" in
  check int "per-round histogram sums to sent" stats.Sim.total_messages
    (Metrics.hist_sum per_round)

let test_metrics_primitives () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check int "counter" 5 (Metrics.counter_value c);
  check bool "counter idempotent registration" true (Metrics.counter m "c" == c);
  let g = Metrics.gauge m "g" in
  Metrics.set g 3.0;
  Metrics.set g 1.0;
  check (Alcotest.float 1e-9) "gauge last" 1.0 (Metrics.gauge_value g);
  check (Alcotest.float 1e-9) "gauge max" 3.0 (Metrics.gauge_max g);
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 4; 9 ];
  check int "hist count" 5 (Metrics.hist_count h);
  check int "hist sum" 19 (Metrics.hist_sum h);
  check int "hist min" 1 (Metrics.hist_min h);
  check int "hist max" 9 (Metrics.hist_max h);
  (* buckets: 1 -> [1,2), 2..3 -> [2,4), 4 -> [4,8), 9 -> [8,16) *)
  check bool "buckets" true
    (Metrics.hist_buckets h = [ (2, 1); (4, 2); (8, 1); (16, 1) ])

let test_metrics_csv_shape () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter m "a");
  Metrics.observe (Metrics.histogram m "h") 5;
  let lines = String.split_on_char '\n' (String.trim (Metrics.to_csv m)) in
  check Alcotest.string "header" "metric,stat,value" (List.hd lines);
  List.iter
    (fun l ->
      check int ("3 fields: " ^ l) 3 (List.length (String.split_on_char ',' l)))
    lines

(* ------------------------------------------------------------------ *)
(* Cost-level tracing                                                   *)
(* ------------------------------------------------------------------ *)

let test_cost_charges_traced () =
  let sink = Trace.sink () in
  let cost = Congest.Cost.create ~trace:sink () in
  Congest.Cost.charge cost ~rounds:3 ~messages:10 ~max_bits:12 "phase.a";
  Congest.Cost.charge cost ~rounds:2 "phase.b";
  check int "two cost events" 2
    (count (function Trace.Cost_charged _ -> true | _ -> false) sink);
  let m = Metrics.of_trace sink in
  check int "cost_rounds" (Congest.Cost.rounds cost)
    (Metrics.counter_value (Metrics.counter m "cost_rounds"));
  check int "per-tag rounds" 3
    (Metrics.counter_value (Metrics.counter m "cost.phase.a.rounds"))

let test_measure_row_carries_trace () =
  let sink = Trace.sink () in
  let d = Workload.Algorithms.find_decomposer "thm2.3" in
  let row =
    Workload.Measure.decomposition_row ~seed:1 ~trace:sink d
      Workload.Suite.grid ~n:64
  in
  check bool "row valid" true row.Workload.Measure.valid;
  check bool "row carries the sink" true
    (match row.Workload.Measure.trace with Some s -> s == sink | None -> false);
  check bool "trace non-empty" true (Trace.length sink > 0);
  check bool "strong diameter present" true
    (row.Workload.Measure.strong_diameter <> None)


let () =
  Alcotest.run "trace"
    [
      ( "agreement",
        [
          Alcotest.test_case "weak fault-free" `Quick
            test_agreement_weak_fault_free;
          Alcotest.test_case "weak adversarial" `Quick
            test_agreement_weak_adversarial;
          Alcotest.test_case "strong fault-free" `Quick
            test_agreement_strong_fault_free;
          Alcotest.test_case "strong adversarial" `Quick
            test_agreement_strong_adversarial;
        ] );
      ( "determinism",
        [ Alcotest.test_case "event stream" `Quick test_event_stream_deterministic ] );
      ( "sink",
        [
          Alcotest.test_case "capacity truncation" `Quick test_capacity_truncation;
          Alcotest.test_case "spill streams past capacity" `Quick
            test_spill_streams_past_capacity;
          Alcotest.test_case "spill serializes like memory" `Quick
            test_spill_jsonl_matches_memory;
          Alcotest.test_case "off path allocation-free" `Quick
            test_off_path_allocation_free;
          Alcotest.test_case "hot emitters allocation-free" `Quick
            test_hot_emitters_allocation_free;
          Alcotest.test_case "emitters = record" `Quick test_emitters_equal_record;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "simulated trace parses" `Quick
            test_simulated_trace_parses;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "of_trace" `Quick test_metrics_of_trace;
          Alcotest.test_case "primitives" `Quick test_metrics_primitives;
          Alcotest.test_case "csv shape" `Quick test_metrics_csv_shape;
        ] );
      ( "integration",
        [
          Alcotest.test_case "cost charges traced" `Quick test_cost_charges_traced;
          Alcotest.test_case "measure row carries trace" `Quick
            test_measure_row_carries_trace;
        ] );
    ]
