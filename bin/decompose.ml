(* Command-line front end: run any registered decomposition or carving
   algorithm on any workload family and print the measured parameters.

     decompose run   --algo thm2.3 --family grid --n 1024
     decompose carve --algo thm2.2 --family path --n 4096 --epsilon 0.25
     decompose lemma31 --family subdiv --n 2048
     decompose trace thm2.3 grid --n 1024
     decompose list *)

open Cmdliner
module Suite = Workload.Suite
module Algorithms = Workload.Algorithms
module Measure = Workload.Measure

let write_file path text =
  let dir = Filename.dirname path in
  (if not (Sys.file_exists dir) then
     try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let oc = open_out path in
  output_string oc text;
  close_out oc

let family_arg =
  let doc =
    "Workload family: " ^ String.concat ", " (List.map (fun f -> f.Suite.name) Suite.all)
  in
  Arg.(value & opt string "grid" & info [ "family"; "f" ] ~docv:"FAMILY" ~doc)

let n_arg =
  Arg.(value & opt int 1024 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Approximate node count.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let epsilon_arg =
  Arg.(
    value & opt float 0.5
    & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Boundary parameter in (0,1).")

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "input"; "i" ] ~docv:"FILE"
        ~doc:
          "Load the graph from an edge-list file (one 'u v' pair per line, \
           optional '# n <count>' header) instead of generating a workload \
           family.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write a Graphviz rendering of the clustering to FILE.")

let lookup_family name =
  try Suite.find name
  with Not_found ->
    Format.eprintf "unknown family %s@." name;
    exit 2

(* when --input is given, wrap the file as a single-use family *)
let family_or_input family input =
  match input with
  | None -> lookup_family family
  | Some path ->
      {
        Suite.name = Filename.basename path;
        build = (fun ~seed:_ ~n:_ -> Dsgraph.Io.load path);
      }

let run_cmd =
  let algo_arg =
    let doc =
      "Decomposition algorithm: "
      ^ String.concat ", "
          (List.map (fun (d : Algorithms.decomposer) -> d.name)
             Algorithms.decomposers)
    in
    Arg.(value & opt string "thm2.3" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)
  in
  let run algo family n seed input dot =
    let d =
      try Algorithms.find_decomposer algo
      with Not_found ->
        Format.eprintf "unknown algorithm %s@." algo;
        exit 2
    in
    let family = family_or_input family input in
    let row = Measure.decomposition_row ~seed d family ~n in
    Format.printf "%s -- %s@.@." d.Algorithms.name d.Algorithms.reference;
    Measure.pp_decomp_table Format.std_formatter [ row ];
    (match dot with
    | None -> ()
    | Some path ->
        let g = family.Suite.build ~seed ~n in
        let decomp = d.run ~cost:(Congest.Cost.create ()) ~seed g in
        let clustering = Cluster.Decomposition.clustering decomp in
        let oc = open_out path in
        output_string oc
          (Dsgraph.Io.to_dot
             ~cluster_of:(Cluster.Clustering.cluster_of clustering)
             g);
        close_out oc;
        Format.printf "wrote %s@." path);
    if not row.Measure.valid then exit 1
  in
  let doc = "compute a network decomposition and report (C, D, rounds)" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ algo_arg $ family_arg $ n_arg $ seed_arg $ input_arg
      $ dot_arg)

let carve_cmd =
  let algo_arg =
    let doc =
      "Carving algorithm: "
      ^ String.concat ", "
          (List.map (fun (c : Algorithms.carver) -> c.name) Algorithms.carvers)
    in
    Arg.(value & opt string "thm2.2" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)
  in
  let run algo family n seed epsilon =
    let c =
      try Algorithms.find_carver algo
      with Not_found ->
        Format.eprintf "unknown algorithm %s@." algo;
        exit 2
    in
    let family = lookup_family family in
    let row = Measure.carving_row ~seed c family ~n ~epsilon in
    Format.printf "%s -- %s@.@." c.Algorithms.name c.Algorithms.reference;
    Measure.pp_carve_table Format.std_formatter [ row ];
    if not row.Measure.valid then exit 1
  in
  let doc = "run a single ball carving and report (diameter, dead, rounds)" in
  Cmd.v (Cmd.info "carve" ~doc)
    Term.(const run $ algo_arg $ family_arg $ n_arg $ seed_arg $ epsilon_arg)

let lemma31_cmd =
  let run family n seed epsilon =
    let family = lookup_family family in
    let g = family.Suite.build ~seed ~n in
    let a = Strongdecomp.Barrier.analyze ~epsilon g in
    Format.printf "lemma 3.1 on %s (n=%d, eps=%.3f):@." family.Suite.name
      a.Strongdecomp.Barrier.n epsilon;
    match a.Strongdecomp.Barrier.outcome with
    | `Cut ->
        Format.printf
          "  balanced sparse cut; separator %d nodes (eps*n/ln n scale %.1f)@."
          a.separator_size a.separator_bound
    | `Component ->
        Format.printf
          "  large component; diameter %d (ln^2 n/eps scale %.1f), boundary %d@."
          a.u_diameter a.diameter_scale a.separator_size
  in
  let doc = "run Lemma 3.1 (balanced sparse cut or large component)" in
  Cmd.v (Cmd.info "lemma31" ~doc)
    Term.(const run $ family_arg $ n_arg $ seed_arg $ epsilon_arg)

let sweep_cmd =
  let algo_arg =
    Arg.(
      value & opt string "thm2.3"
      & info [ "algo"; "a" ] ~docv:"ALGO" ~doc:"Decomposition algorithm.")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 256; 512; 1024; 2048 ]
      & info [ "sizes" ] ~docv:"N1,N2,..." ~doc:"Node counts to sweep.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write CSV here (default stdout).")
  in
  let run algo family seed sizes out =
    let d =
      try Algorithms.find_decomposer algo
      with Not_found ->
        Format.eprintf "unknown algorithm %s@." algo;
        exit 2
    in
    let family = lookup_family family in
    let rows = List.map (fun n -> Measure.decomposition_row ~seed d family ~n) sizes in
    let csv = Measure.decomp_csv rows in
    (match out with
    | None -> print_string csv
    | Some path ->
        let oc = open_out path in
        output_string oc csv;
        close_out oc;
        Format.printf "wrote %s (%d rows)@." path (List.length rows));
    if List.exists (fun (r : Measure.decomp_row) -> not r.Measure.valid) rows
    then exit 1
  in
  let doc = "sweep one algorithm over a size series and emit CSV" in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ algo_arg $ family_arg $ seed_arg $ sizes_arg $ out_arg)

let faults_cmd =
  let algo_arg =
    let parse s =
      match s with
      | "ls" -> Ok Workload.Faults.Ls
      | "weakdiam" -> Ok Workload.Faults.Weakdiam
      | _ -> Error (`Msg (Printf.sprintf "unknown fault algorithm %s" s))
    in
    let print ppf a =
      Format.pp_print_string ppf
        (match a with Workload.Faults.Ls -> "ls" | Workload.Faults.Weakdiam -> "weakdiam")
    in
    Arg.(
      value
      & opt (conv (parse, print)) Workload.Faults.Ls
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:"Algorithm to run through the reliable transport: ls, weakdiam.")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.05
      & info [ "drop" ] ~docv:"P" ~doc:"IID message drop probability in [0,1].")
  in
  let crashes_arg =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~docv:"K"
          ~doc:"Number of crash-stop faults (seeded nodes and rounds).")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run the full drop x crash grid (drops 0/0.01/0.05/0.1, crashes \
             0/2) instead of a single scenario, and emit CSV.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write CSV here (default stdout).")
  in
  let run algorithm family n seed epsilon drop crashes sweep out =
    (* surface the simulator's incomplete-run warnings *)
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Warning);
    if not (drop >= 0.0 && drop <= 1.0) then begin
      Format.eprintf "drop rate %g not in [0,1]@." drop;
      exit 2
    end;
    if crashes < 0 then begin
      Format.eprintf "crash count %d is negative@." crashes;
      exit 2
    end;
    let _ = lookup_family family in
    let rows =
      if sweep then
        Workload.Faults.sweep ~seed algorithm ~family ~n ~epsilon
      else
        [
          Workload.Faults.run
            { Workload.Faults.algorithm; family; n; epsilon; drop; crashes; seed };
        ]
    in
    (if sweep then
       let csv = Workload.Faults.csv rows in
       match out with
       | None -> print_string csv
       | Some path ->
           let oc = open_out path in
           output_string oc csv;
           close_out oc;
           Format.printf "wrote %s (%d rows)@." path (List.length rows)
     else
       List.iter
         (fun r -> Format.printf "%a@." Workload.Faults.pp_row r)
         rows);
    if List.exists (fun (r : Workload.Faults.row) -> not r.valid) rows then
      exit 1
  in
  let doc =
    "run a distributed carving through the reliable transport under a seeded \
     fault adversary and check graceful degradation"
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ algo_arg $ family_arg $ n_arg $ seed_arg $ epsilon_arg
      $ drop_arg $ crashes_arg $ sweep_arg $ out_arg)

let trace_cmd =
  let algo_pos =
    Arg.(
      value & pos 0 string "thm2.3"
      & info [] ~docv:"ALGO"
          ~doc:"Algorithm to trace (a decomposer name; carver names work too).")
  in
  let family_pos =
    Arg.(value & pos 1 string "grid" & info [] ~docv:"FAMILY" ~doc:"Workload family.")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "bench_results"
      & info [ "out-dir"; "o" ] ~docv:"DIR"
          ~doc:"Directory for the JSONL event stream and metric dumps.")
  in
  let run algo family n seed epsilon out_dir =
    let family = lookup_family family in
    let sink = Congest.Trace.sink () in
    let name, reference, valid, print_row =
      match Algorithms.find_decomposer algo with
      | d ->
          let row = Measure.decomposition_row ~seed ~trace:sink d family ~n in
          ( d.Algorithms.name,
            d.Algorithms.reference,
            row.Measure.valid,
            fun () -> Measure.pp_decomp_table Format.std_formatter [ row ] )
      | exception Not_found -> (
          match Algorithms.find_carver algo with
          | c ->
              let row =
                Measure.carving_row ~seed ~trace:sink c family ~n ~epsilon
              in
              ( c.Algorithms.name,
                c.Algorithms.reference,
                row.Measure.valid,
                fun () -> Measure.pp_carve_table Format.std_formatter [ row ] )
          | exception Not_found ->
              Format.eprintf "unknown algorithm %s@." algo;
              exit 2)
    in
    Format.printf "%s -- %s@.@." name reference;
    print_row ();
    let base = Printf.sprintf "trace_%s_%s" name family.Suite.name in
    let jsonl =
      Congest.Trace.save ~dir:out_dir ~file:(base ^ ".jsonl") sink
    in
    let metrics = Congest.Metrics.of_trace sink in
    let metric_files = Congest.Metrics.save ~dir:out_dir ~prefix:base metrics in
    Format.printf "@.%d trace events%s -> %s@." (Congest.Trace.length sink)
      (if Congest.Trace.truncated sink > 0 then
         Printf.sprintf " (%d more dropped at capacity)"
           (Congest.Trace.truncated sink)
       else "")
      jsonl;
    List.iter (Format.printf "derived metrics -> %s@.") metric_files;
    if not valid then exit 1
  in
  let doc =
    "run one algorithm with a trace sink attached and dump the per-round \
     event stream (JSONL) plus derived metrics (CSV/JSONL)"
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ algo_pos $ family_pos $ n_arg $ seed_arg $ epsilon_arg
      $ out_dir_arg)

let profile_cmd =
  let algo_pos =
    Arg.(
      value & pos 0 string "thm2.3"
      & info [] ~docv:"ALGO"
          ~doc:"Algorithm to profile (a decomposer name; carver names work too).")
  in
  let family_pos =
    Arg.(value & pos 1 string "grid" & info [] ~docv:"FAMILY" ~doc:"Workload family.")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "bench_results"
      & info [ "out-dir"; "o" ] ~docv:"DIR"
          ~doc:"Directory for the per-phase CSV and folded stacks.")
  in
  let weight_arg =
    let weight_conv =
      Arg.enum
        [
          ("rounds", `Rounds);
          ("messages", `Messages);
          ("bits", `Bits);
          ("seconds", `Seconds);
          ("minor-words", `Minor_words);
          ("major-words", `Major_words);
        ]
    in
    Arg.(
      value & opt weight_conv `Rounds
      & info [ "weight"; "w" ] ~docv:"WEIGHT"
          ~doc:
            "Folded-stack weight: $(b,rounds), $(b,messages) or $(b,bits) \
             (logical costs from the trace), or $(b,seconds), \
             $(b,minor-words), $(b,major-words) (from the resource \
             recorder).")
  in
  let resources_arg =
    Arg.(
      value & flag
      & info [ "resources" ]
          ~doc:
            "Also dump the per-phase resource rollups (wall seconds, \
             minor/promoted/major GC words, major collections) to \
             $(i,PREFIX)_resources.csv and check their exact-sum \
             invariant against the process totals.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the span timeline as Chrome trace-event (catapult) \
             JSON to $(i,FILE) — open it in chrome://tracing or \
             Perfetto.")
  in
  let run algo family n seed epsilon out_dir weight resources chrome =
    let family = lookup_family family in
    let sink = Congest.Trace.sink () in
    let res = Congest.Resource.create () in
    Congest.Resource.attach res sink;
    let name, valid =
      match Algorithms.find_decomposer algo with
      | d ->
          let row = Measure.decomposition_row ~seed ~trace:sink d family ~n in
          (d.Algorithms.name, row.Measure.valid)
      | exception Not_found -> (
          match Algorithms.find_carver algo with
          | c ->
              let row =
                Measure.carving_row ~seed ~trace:sink c family ~n ~epsilon
              in
              (c.Algorithms.name, row.Measure.valid)
          | exception Not_found ->
              Format.eprintf "unknown algorithm %s@." algo;
              exit 2)
    in
    let rollups = Congest.Span.rollups sink in
    Format.printf "%s on %s (n=%d): per-phase rollups@.@." name
      family.Suite.name n;
    Congest.Span.pp_rollups Format.std_formatter rollups;
    let prefix = Printf.sprintf "profile_%s_%s" name family.Suite.name in
    let files =
      match weight with
      | (`Rounds | `Messages | `Bits) as w ->
          Congest.Span.save ~dir:out_dir ~weight:w ~prefix sink
      | (`Seconds | `Minor_words | `Major_words) as w ->
          (* resource-weighted stacks: same files, folded values from the
             recorder instead of the logical trace costs *)
          let csv_path = Filename.concat out_dir (prefix ^ "_phases.csv") in
          let folded_path = Filename.concat out_dir (prefix ^ ".folded") in
          write_file csv_path (Congest.Span.rollup_csv rollups);
          write_file folded_path (Congest.Resource.to_folded ~weight:w res);
          [ csv_path; folded_path ]
    in
    (* one sample serves both the CSV and the exact-sum check below *)
    let res_rollups, res_totals = Congest.Resource.snapshot res in
    let files =
      if resources then begin
        let path = Filename.concat out_dir (prefix ^ "_resources.csv") in
        write_file path (Congest.Resource.csv res_rollups);
        files @ [ path ]
      end
      else files
    in
    let files =
      match chrome with
      | None -> files
      | Some path ->
          write_file path (Congest.Resource.chrome_json res);
          files @ [ path ]
    in
    List.iter (Format.printf "@.wrote %s") files;
    Format.printf "@.";
    (* resource exact-sum invariant: per-path self words (plus the
       "(unspanned)" bucket) telescope to the window totals *)
    if resources then begin
      let rrs = res_rollups and tot = res_totals in
      let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rrs in
      let minor = sum (fun r -> r.Congest.Resource.r_minor_words) in
      let major = sum (fun r -> r.Congest.Resource.r_major_words) in
      if
        minor <> tot.Congest.Resource.t_minor_words
        || major <> tot.Congest.Resource.t_major_words
      then begin
        Format.eprintf
          "resource attribution mismatch: spans (%.0f minor, %.0f major \
           words) vs process (%.0f minor, %.0f major words)@."
          minor major tot.Congest.Resource.t_minor_words
          tot.Congest.Resource.t_major_words;
        exit 1
      end
      else
        Format.printf
          "resource attribution check: %.0f minor words, %.0f major words, \
           %.3f s fully attributed (peak heap %.1f MB)@."
          tot.Congest.Resource.t_minor_words
          tot.Congest.Resource.t_major_words
          tot.Congest.Resource.t_seconds
          (Congest.Resource.peak_heap_mb tot)
    end;
    (* self-totals over all phases must reproduce the trace-wide globals;
       only enforceable when nothing was dropped at capacity *)
    if Congest.Trace.truncated sink = 0 then begin
      let m = Congest.Metrics.of_trace sink in
      let c name' =
        Congest.Metrics.counter_value (Congest.Metrics.counter m name')
      in
      let global_rounds = c "rounds" + c "cost_rounds" in
      let global_messages = c "messages_sent" + c "cost_messages" in
      let global_bits =
        Congest.Metrics.hist_sum
          (Congest.Metrics.histogram m "bits_per_message")
      in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 rollups in
      let span_rounds = sum (fun (r : Congest.Span.rollup) -> r.rounds) in
      let span_messages = sum (fun (r : Congest.Span.rollup) -> r.messages) in
      let span_bits = sum (fun (r : Congest.Span.rollup) -> r.bits) in
      if
        span_rounds <> global_rounds
        || span_messages <> global_messages
        || span_bits <> global_bits
      then begin
        Format.eprintf
          "attribution mismatch: spans (%d rounds, %d msgs, %d bits) vs \
           trace (%d rounds, %d msgs, %d bits)@."
          span_rounds span_messages span_bits global_rounds global_messages
          global_bits;
        exit 1
      end
      else
        Format.printf
          "attribution check: %d rounds, %d messages, %d bits fully \
           attributed@."
          global_rounds global_messages global_bits
    end;
    if not valid then exit 1
  in
  let doc =
    "run one algorithm with phase spans attached and emit per-phase cost \
     rollups (CSV) plus flamegraph-compatible folded stacks; a resource \
     recorder rides along for wall-clock/GC attribution ($(b,--resources)) \
     and Chrome-trace export ($(b,--chrome))"
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ algo_pos $ family_pos $ n_arg $ seed_arg $ epsilon_arg
      $ out_dir_arg $ weight_arg $ resources_arg $ chrome_arg)

let conform_cmd =
  let target_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"TARGET"
          ~doc:
            "What to verify: 'all' (registry + node programs), 'registry', \
             'programs', or the name of a single registered decomposer or \
             carver.")
  in
  let no_adversarial_arg =
    Arg.(
      value & flag
      & info [ "no-adversarial" ]
          ~doc:"Skip the seeded-adversary leg of the program checks.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full conformance reports as JSON to FILE.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write per-check CSV to FILE.")
  in
  let run target family n seed epsilon no_adversarial json out =
    let family = lookup_family family in
    let adversarial = not no_adversarial in
    let rows =
      match target with
      | "all" -> Workload.Conform.suite ~seed ~epsilon ~adversarial family ~n
      | "registry" -> Workload.Conform.registry_rows ~seed ~epsilon family ~n
      | "programs" ->
          Workload.Conform.program_rows ~seed ~epsilon ~adversarial:false
            family ~n
          @
          if adversarial then
            Workload.Conform.program_rows ~seed ~epsilon ~adversarial:true
              family ~n
          else []
      | name -> (
          match Algorithms.find_decomposer name with
          | d -> [ Workload.Conform.decomposer_row ~seed d family ~n ]
          | exception Not_found -> (
              match Algorithms.find_carver name with
              | c -> [ Workload.Conform.carver_row ~seed ~epsilon c family ~n ]
              | exception Not_found ->
                  Format.eprintf
                    "unknown target %s (want all, registry, programs, or an \
                     algorithm name)@."
                    name;
                  exit 2))
    in
    Workload.Conform.pp_table Format.std_formatter rows;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Workload.Conform.csv rows);
        close_out oc;
        Format.printf "wrote %s@." path);
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Workload.Conform.to_json rows);
        close_out oc;
        Format.printf "wrote %s@." path);
    if List.exists (fun r -> not (Workload.Conform.ok r)) rows then exit 1
  in
  let doc =
    "verify CONGEST model invariants (replay determinism, bandwidth \
     cross-check, edge discipline, halt monotonicity, inbox-order \
     robustness) over the algorithm registry and the node programs"
  in
  Cmd.v (Cmd.info "conform" ~doc)
    Term.(
      const run $ target_arg $ family_arg $ n_arg $ seed_arg $ epsilon_arg
      $ no_adversarial_arg $ json_arg $ out_arg)

let report_cmd =
  let algo_pos =
    Arg.(
      value & pos 0 string "thm2.3"
      & info [] ~docv:"ALGO"
          ~doc:
            "Algorithm to report on (a decomposer name; carver names work \
             too).")
  in
  let family_pos =
    Arg.(value & pos 1 string "grid" & info [] ~docv:"FAMILY" ~doc:"Workload family.")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "bench_results"
      & info [ "out-dir"; "o" ] ~docv:"DIR"
          ~doc:"Directory for the markdown and JSON reports.")
  in
  let run algo family n seed epsilon out_dir =
    let family = lookup_family family in
    let report =
      match Algorithms.find_decomposer algo with
      | d -> Workload.Report.of_decomposer ~seed d family ~n
      | exception Not_found -> (
          match Algorithms.find_carver algo with
          | c -> Workload.Report.of_carver ~seed ~epsilon c family ~n
          | exception Not_found ->
              Format.eprintf "unknown algorithm %s@." algo;
              exit 2)
    in
    Workload.Report.pp_summary Format.std_formatter report;
    Format.printf "%a@." Congest.Causal.pp report.Workload.Report.causal;
    let files = Workload.Report.save ~dir:out_dir report in
    List.iter (Format.printf "wrote %s@.") files;
    (match report.Workload.Report.audit_verdict with
    | Ok () -> ()
    | Error e ->
        Format.eprintf "certificate audit rejected: %s@." e;
        exit 1);
    if not report.Workload.Report.valid then exit 1
  in
  let doc =
    "run one algorithm and write a unified report (markdown + JSON): \
     measured row, metrics, phase rollups, causal critical path and slack, \
     and an independently verified per-cluster certificate audit"
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ algo_pos $ family_pos $ n_arg $ seed_arg $ epsilon_arg
      $ out_dir_arg)

let repair_cmd =
  let algo_pos =
    Arg.(
      value & pos 0 string "greedy"
      & info [] ~docv:"ALGO"
          ~doc:
            "Algorithm to heal (a decomposer name, or a carver name with \
             $(b,--carve)).")
  in
  let family_pos =
    Arg.(
      value & pos 1 string "grid"
      & info [] ~docv:"FAMILY" ~doc:"Workload family.")
  in
  let carve_arg =
    Arg.(
      value & flag
      & info [ "carve" ]
          ~doc:"Treat ALGO as a carver (Table 2) instead of a decomposer.")
  in
  let steps_arg =
    Arg.(
      value & opt int 4
      & info [ "steps" ] ~docv:"K" ~doc:"Fault deltas to inject and repair.")
  in
  let crashes_arg =
    Arg.(
      value & opt int 1
      & info [ "crashes" ] ~docv:"K" ~doc:"Crash-stops per delta (at most).")
  in
  let revive_arg =
    Arg.(
      value & opt float 0.25
      & info [ "revive-prob" ] ~docv:"P"
          ~doc:"Per-step revival probability of each down node.")
  in
  let dels_arg =
    Arg.(
      value & opt int 1
      & info [ "edge-dels" ] ~docv:"K" ~doc:"Edge deletions per delta.")
  in
  let adds_arg =
    Arg.(
      value & opt int 1
      & info [ "edge-adds" ] ~docv:"K" ~doc:"Edge insertions per delta.")
  in
  let halo_arg =
    Arg.(
      value & opt int 1
      & info [ "halo" ] ~docv:"H"
          ~doc:
            "Dirty every cluster within distance H of a fault site (0 = \
             minimal certified invalidation).")
  in
  let max_touched_arg =
    Arg.(
      value & opt float 1.0
      & info [ "max-touched" ] ~docv:"F"
          ~doc:
            "Fail if a repair touches more than this fraction of the \
             survivors (>= 1 disables the bound).")
  in
  let run algo family n seed epsilon carve steps crashes revive_prob edge_dels
      edge_adds halo max_touched =
    ignore (lookup_family family);
    let algo_spec =
      if carve then Workload.Chaos.Carver algo else Workload.Chaos.Decomposer algo
    in
    (match algo_spec with
    | Workload.Chaos.Decomposer a -> (
        try ignore (Algorithms.find_decomposer a)
        with Not_found ->
          Format.eprintf "unknown decomposer %s@." a;
          exit 2)
    | Workload.Chaos.Carver a -> (
        try ignore (Algorithms.find_carver a)
        with Not_found ->
          Format.eprintf "unknown carver %s@." a;
          exit 2));
    let sp =
      Workload.Chaos.spec algo_spec ~family ~n ~seed ~epsilon ~steps ~crashes
        ~revive_prob ~edge_dels ~edge_adds ~halo ~max_touched
    in
    let r = Workload.Chaos.run sp in
    Format.printf "%s on %s (n=%d, seed=%d, halo=%d)@.@."
      (Workload.Chaos.algo_label algo_spec)
      family n seed halo;
    List.iter
      (fun (row : Workload.Chaos.step_row) ->
        Format.printf
          "step %d: -%d nodes +%d nodes -%d/+%d edges | dirty=%d carried=%d \
           fresh=%d touched=%d/%d (%.1f%%) | repair %.2fms vs scratch %.2fms \
           (x%.2f)%s@."
          row.Workload.Chaos.step row.Workload.Chaos.d_crashes
          row.Workload.Chaos.d_revives row.Workload.Chaos.d_dels
          row.Workload.Chaos.d_adds row.Workload.Chaos.dirty
          row.Workload.Chaos.carried row.Workload.Chaos.fresh
          row.Workload.Chaos.touched row.Workload.Chaos.survivors
          (100.0 *. row.Workload.Chaos.touched_fraction)
          (1000.0 *. row.Workload.Chaos.repair_seconds)
          (1000.0 *. row.Workload.Chaos.scratch_seconds)
          (row.Workload.Chaos.repair_seconds
          /. Float.max 1e-9 row.Workload.Chaos.scratch_seconds)
          (match row.Workload.Chaos.violations with
          | [] -> ""
          | vs -> Format.asprintf " VIOLATIONS: %s" (String.concat "; " vs)))
      r.Workload.Chaos.rows;
    Format.printf "@.";
    match r.Workload.Chaos.failures with
    | [] ->
        Format.printf
          "all %d repairs certified: untouched clusters byte-identical, \
           merged audits accepted@."
          steps
    | fs ->
        Format.printf "%d invariant violation(s)@." (List.length fs);
        exit 1
  in
  let doc =
    "inject seeded fault deltas (crash / churn / edge faults) and heal the \
     decomposition by local re-carving, verifying a repair certificate after \
     every step"
  in
  Cmd.v (Cmd.info "repair" ~doc)
    Term.(
      const run $ algo_pos $ family_pos $ n_arg $ seed_arg $ epsilon_arg
      $ carve_arg $ steps_arg $ crashes_arg $ revive_arg $ dels_arg $ adds_arg
      $ halo_arg $ max_touched_arg)

let diff_cmd =
  let a_pos =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"OLD"
          ~doc:
            "Baseline side: a run-report JSON ($(b,decompose report) \
             artifact) or a trajectory file, optionally with $(b,#N) \
             selecting the 1-based snapshot (negative counts from the end; \
             default the newest).")
  in
  let b_pos =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate side; same specs as $(i,OLD).")
  in
  let force_arg =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Compare even when the two sides carry different environment \
             fingerprints (cross-machine timings are not comparable; the \
             logical columns still are).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the diff as JSON to FILE ('-' for stdout).")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write differential folded stacks ('frames old new', seconds in \
             microseconds) to FILE ('-' for stdout) — the input \
             difffolded.pl expects.")
  in
  let rel_arg =
    Arg.(
      value & opt float Workload.Diff.default_options.Workload.Diff.rel
      & info [ "rel" ] ~docv:"R"
          ~doc:"Relative significance gate (fraction of the baseline).")
  in
  let k_arg =
    Arg.(
      value & opt float Workload.Diff.default_options.Workload.Diff.k
      & info [ "k" ] ~docv:"K"
          ~doc:"MAD multiplier widening the seconds gate.")
  in
  let min_seconds_arg =
    Arg.(
      value
      & opt float Workload.Diff.default_options.Workload.Diff.min_seconds
      & info [ "min-seconds" ] ~docv:"S"
          ~doc:"Absolute floor for a seconds delta to count as significant.")
  in
  let run a_spec b_spec force json folded rel k min_seconds =
    let load spec =
      match Workload.Diff.load spec with
      | Ok side -> side
      | Error e ->
          Format.eprintf "%s@." e;
          exit 2
    in
    let a = load a_spec and b = load b_spec in
    let options = { Workload.Diff.rel; k; min_seconds; force } in
    match Workload.Diff.compare ~options a b with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 3
    | Ok d ->
        print_string (Workload.Diff.to_markdown d);
        let emit what = function
          | None -> ()
          | Some "-" -> print_string (what d)
          | Some path ->
              write_file path (what d);
              Format.printf "wrote %s@." path
        in
        emit Workload.Diff.to_json json;
        emit Workload.Diff.to_folded folded;
        if d.Workload.Diff.significant > 0 then exit 1
  in
  let doc =
    "align the span trees of two runs by phase path and report per-phase \
     deltas (rounds, messages, bits, seconds, minor words) with \
     added/removed/renamed detection; deltas below the noise floor \
     (max of the relative gate and the MAD-widened gate, plus an absolute \
     seconds floor) are not significant. Exits 0 when nothing significant \
     changed, 1 when something did, 3 when the environment fingerprints \
     differ (pass $(b,--force) to compare anyway)."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const run $ a_pos $ b_pos $ force_arg $ json_arg $ folded_arg $ rel_arg
      $ k_arg $ min_seconds_arg)

let list_cmd =
  let run () =
    Format.printf "families:@.";
    List.iter (fun f -> Format.printf "  %s@." f.Suite.name) Suite.all;
    Format.printf "@.decomposition algorithms (Table 1 rows):@.";
    List.iter
      (fun (d : Algorithms.decomposer) ->
        Format.printf "  %-8s %s@." d.name d.reference)
      Algorithms.decomposers;
    Format.printf "@.carving algorithms (Table 2 rows):@.";
    List.iter
      (fun (c : Algorithms.carver) ->
        Format.printf "  %-8s %s@." c.name c.reference)
      Algorithms.carvers
  in
  let doc = "list available families and algorithms" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc =
    "strong-diameter network decomposition (Chang & Ghaffari, PODC 2021)"
  in
  let info = Cmd.info "decompose" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            carve_cmd;
            lemma31_cmd;
            sweep_cmd;
            faults_cmd;
            trace_cmd;
            profile_cmd;
            repair_cmd;
            report_cmd;
            conform_cmd;
            diff_cmd;
            list_cmd;
          ]))
