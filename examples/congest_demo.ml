(* The raw CONGEST simulator: genuinely distributed node programs running
   in synchronous rounds with O(log n)-bit messages, which anchor the round
   accounting used by the polylog-round algorithms.

   Run with:  dune exec examples/congest_demo.exe *)

open Dsgraph

let () =
  (* show Sim.simulate's incomplete-run warnings, should any fire *)
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let rng = Rng.create 99 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 64 0.06) in
  Format.printf "network: %a, bandwidth %d bits@." Graph.pp g
    (Congest.Bits.bandwidth ~n:(Graph.n g));

  (* leader election by min-identifier flooding *)
  let leaders, stats = Congest.Programs.leader_election g in
  Format.printf
    "leader election: leader %d elected everywhere=%b, %d rounds, %d \
     messages, max %d bits@."
    leaders.(0)
    (Array.for_all (fun l -> l = leaders.(0)) leaders)
    stats.Congest.Sim.rounds_used stats.Congest.Sim.total_messages
    stats.Congest.Sim.max_bits_seen;

  (* distributed BFS; cross-checked against the sequential implementation *)
  let (dist, parent), stats = Congest.Programs.bfs g ~source:leaders.(0) in
  let reference = Bfs.distances g ~source:leaders.(0) in
  Format.printf "BFS: matches sequential BFS=%b, %d rounds (ecc = %d)@."
    (dist = reference) stats.Congest.Sim.rounds_used
    (Array.fold_left max 0 reference);

  (* convergecast: every node learns its BFS-subtree size *)
  let counts, stats = Congest.Programs.subtree_counts g ~parent in
  Format.printf "convergecast: root counted %d/%d nodes, %d rounds@."
    counts.(leaders.(0)) (Graph.n g) stats.Congest.Sim.rounds_used;

  (* Luby's MIS: a complete randomized algorithm on the simulator *)
  let mis, stats = Apps.Luby.run g in
  Format.printf "Luby MIS: %d nodes, %s, %d rounds@."
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 mis)
    (match Apps.Mis.check g mis with Ok () -> "valid" | Error e -> e)
    stats.Congest.Sim.rounds_used;

  (* the flagship: the weak-diameter cluster-growing engine executed as a
     real node program — identical output to the step-granular engine *)
  let r = Weakdiam.Distributed.carve g ~epsilon:0.5 in
  Format.printf
    "distributed weak carving: matches engine=%b, %d simulated rounds \
     (%d steps x %d budget), max message %d bits@."
    (Weakdiam.Distributed.matches_engine r)
    r.Weakdiam.Distributed.sim_stats.Congest.Sim.rounds_used
    r.Weakdiam.Distributed.total_steps r.Weakdiam.Distributed.step_budget
    r.Weakdiam.Distributed.sim_stats.Congest.Sim.max_bits_seen;

  (* bandwidth is enforced, not just reported: an oversized message kills
     the run *)
  let oversized =
    {
      Congest.Sim.init = (fun ~node:_ ~neighbors:_ -> ());
      round =
        (fun ~node ~state:_ ~inbox:_ ->
          if node = 0 then ((), [ (Graph.neighbors g 0).(0), () ], true)
          else ((), [], true));
    }
  in
  (try
     ignore
       (Congest.Sim.simulate ~bits:(fun () -> 10_000) g oversized)
   with Congest.Sim.Bandwidth_exceeded { node; dst; round; bits; bandwidth } ->
     Format.printf
       "bandwidth check: node %d tried to send %d bits > %d (to %d, round %d) \
        and was rejected@."
       node bits bandwidth dst round);

  (* observability: attach a trace sink and get the per-round event
     stream plus derived metrics for free *)
  let sink = Congest.Trace.sink () in
  let _, stats = Congest.Programs.leader_election ~trace:sink g in
  let metrics = Congest.Metrics.of_trace sink in
  Format.printf
    "tracing: %d events over %d rounds (%d messages); derived metrics:@.%a"
    (Congest.Trace.length sink) stats.Congest.Sim.rounds_used
    stats.Congest.Sim.total_messages Congest.Metrics.pp metrics;

  (* fault injection: leader election under a lossy adversary still
     terminates, but dropped updates are never resent, so nodes can elect
     inconsistent leaders — the failure mode Reliable exists to fix *)
  let adv =
    Congest.Fault.create
      (Congest.Fault.spec ~seed:7 ~drop:0.10 ~duplicate:0.02 ~delay:0.05 ())
  in
  let leaders', stats = Congest.Programs.leader_election ~adversary:adv g in
  Format.printf
    "lossy leader election: agreement preserved=%b, %d rounds, faults: %d \
     dropped %d duplicated %d delayed@."
    (leaders' = leaders) stats.Congest.Sim.rounds_used
    stats.Congest.Sim.faults.Congest.Sim.dropped
    stats.Congest.Sim.faults.Congest.Sim.duplicated
    stats.Congest.Sim.faults.Congest.Sim.delayed;

  (* the reliable transport makes a fault-intolerant program exact again:
     the weak-diameter carving through Reliable under drops + two crashes,
     validated on the surviving subgraph *)
  let adv =
    Congest.Fault.create
      (Congest.Fault.spec ~seed:11 ~drop:0.05
         ~crashes:[ (3, 5); (17, 9) ] ())
  in
  let rr = Weakdiam.Distributed.carve_reliable ~adversary:adv g ~epsilon:0.5 in
  let survivors =
    List.filter
      (fun v -> not (List.mem v rr.Weakdiam.Distributed.crashed))
      (List.init (Graph.n g) (fun i -> i))
  in
  let sub, back = Subgraph.induce g survivors in
  let labels =
    Array.init (Graph.n sub) (fun i ->
        let l = rr.Weakdiam.Distributed.cluster_of.(back.(i)) in
        if l < 0 then -1 else l)
  in
  let clustering = Cluster.Clustering.make sub ~cluster_of:labels in
  Format.printf
    "reliable weak carving under 5%% drop + crashes %a: non-adjacent on \
     survivors=%b, %d outer rounds (%d inner), %d retransmissions, dead \
     neighbors detected: %a@."
    Fmt.(Dump.list int)
    rr.Weakdiam.Distributed.crashed
    (Cluster.Clustering.non_adjacent clustering)
    rr.Weakdiam.Distributed.r_sim_stats.Congest.Sim.rounds_used
    rr.Weakdiam.Distributed.inner_rounds
    rr.Weakdiam.Distributed.transport.Congest.Reliable.retransmissions
    Fmt.(Dump.list int)
    rr.Weakdiam.Distributed.transport.Congest.Reliable.detected_dead;

  (* crashes can corrupt the carving's convergecast; the harness policy is
     detect-then-recover: re-run on the survivor subgraph. The end state is
     valid either way. *)
  let row =
    Workload.Faults.run
      {
        Workload.Faults.algorithm = Workload.Faults.Weakdiam;
        family = "er";
        n = 64;
        epsilon = 0.5;
        drop = 0.05;
        crashes = 2;
        seed = 11;
      }
  in
  Format.printf "graceful degradation: %a@." Workload.Faults.pp_row row
