(* A tour of every ball-carving algorithm in the repository on one graph:
   the two weak-diameter engines (RG20, GGR21), the randomized baselines
   (Linial–Saks, MPX), the paper's strong-diameter transformations
   (Theorems 2.2 and 3.3), the big-message ABCP96 foil, and the edge
   version. Prints the measured (diameter, dead fraction, rounds, message
   bits) so the trade-offs are visible side by side.

   Run with:  dune exec examples/carving_tour.exe *)

open Dsgraph

let line name ~kind carving cost =
  let clustering = carving.Cluster.Carving.clustering in
  let sd = Cluster.Clustering.max_strong_diameter clustering in
  let wd = Cluster.Clustering.max_weak_diameter clustering in
  Format.printf "%-24s %-6s sDiam=%-4d wDiam=%-4d dead=%4.1f%% rounds=%-9d maxbits=%d@."
    name kind sd wd
    (100.0 *. Cluster.Carving.dead_fraction carving)
    (Congest.Cost.rounds cost)
    (Congest.Cost.max_message_bits cost)

let () =
  let g = Gen.grid 20 20 in
  let epsilon = 0.25 in
  Format.printf "graph: %a, epsilon = %.2f@.@." Graph.pp g epsilon;

  let meter f =
    let cost = Congest.Cost.create () in
    let r = f cost in
    (r, cost)
  in

  (* weak-diameter engines: clusters may induce disconnected subgraphs but
     carry shallow Steiner trees *)
  let r, cost =
    meter (fun cost ->
        Weakdiam.Weak_carving.carve ~preset:Weakdiam.Weak_carving.Rg20 ~cost g
          ~epsilon)
  in
  line "weak RG20" ~kind:"weak" r.Weakdiam.Weak_carving.carving cost;
  Format.printf "%-24s        steiner depth=%d congestion=%d steps=%d@." ""
    r.max_depth r.congestion r.steps;
  let r, cost =
    meter (fun cost -> Weakdiam.Weak_carving.carve ~cost g ~epsilon)
  in
  line "weak GGR21" ~kind:"weak" r.Weakdiam.Weak_carving.carving cost;

  (* randomized baselines *)
  let c, cost =
    meter (fun cost -> Baseline.Linial_saks.carve ~cost (Rng.create 5) g ~epsilon)
  in
  line "Linial-Saks (rand)" ~kind:"weak" c cost;
  let c, cost =
    meter (fun cost -> Baseline.Mpx.carve ~cost (Rng.create 5) g ~epsilon)
  in
  line "MPX/EN16 (rand)" ~kind:"strong" c cost;

  (* the paper *)
  let (c, stats), cost =
    meter (fun cost -> Strongdecomp.Strong_carving.carve ~cost g ~epsilon)
  in
  line "Theorem 2.2" ~kind:"strong" c cost;
  Format.printf "%-24s        halving iterations=%d weak invocations=%d@." ""
    stats.Strongdecomp.Transform.iterations
    stats.Strongdecomp.Transform.weak_invocations;
  let (c, stats), cost =
    meter (fun cost ->
        Strongdecomp.Strong_carving.carve_improved ~cost g ~epsilon)
  in
  line "Theorem 3.3" ~kind:"strong" c cost;
  Format.printf "%-24s        levels=%d cuts=%d components=%d@." ""
    stats.Strongdecomp.Improve.levels stats.Strongdecomp.Improve.cuts_taken
    stats.Strongdecomp.Improve.components_taken;

  (* the big-message foil *)
  let (c, info), cost = meter (fun cost -> Baseline.Abcp.carve ~cost g ~epsilon) in
  line "ABCP96 (big messages)" ~kind:"strong" c cost;
  Format.printf "%-24s        gathered-topology message: %d bits (bandwidth %d)@."
    "" info.Baseline.Abcp.max_message_bits
    (Congest.Bits.bandwidth ~n:(Graph.n g));

  (* the greedy sequential comparator *)
  let c, cost = meter (fun cost -> Baseline.Greedy.carve ~cost g ~epsilon) in
  line "greedy (sequential)" ~kind:"strong" c cost;

  (* edge version *)
  let r, cost =
    meter (fun cost -> Strongdecomp.Edge_carving.carve ~cost g ~epsilon)
  in
  Format.printf "%-24s %-6s cut %d/%d edges, %d clusters, max radius %d, rounds=%d@."
    "edge version" "edge"
    (List.length r.Strongdecomp.Edge_carving.cut_edges)
    (Graph.m g)
    (Cluster.Clustering.num_clusters r.Strongdecomp.Edge_carving.clustering)
    r.Strongdecomp.Edge_carving.max_radius
    (Congest.Cost.rounds cost)
