(* The Section 3 barrier: a subdivided expander on which the O(log^2 n/eps)
   diameter bound of Lemma 3.1 is tight — there is no balanced sparse cut
   with a small separator, and no large subset with small induced diameter.
   We build the construction, run Lemma 3.1 on it and on a grid of the same
   size, and print the contrast.

   Run with:  dune exec examples/barrier_demo.exe *)

open Dsgraph

let describe name g =
  let a = Strongdecomp.Barrier.analyze ~epsilon:0.5 g in
  Format.printf "%-10s n=%-6d -> %s@." name a.Strongdecomp.Barrier.n
    (match a.Strongdecomp.Barrier.outcome with
    | `Cut ->
        Printf.sprintf "balanced sparse cut, separator %d (eps*n/ln n scale: %.0f)"
          a.separator_size a.separator_bound
    | `Component ->
        Printf.sprintf
          "large component, diameter %d (ln^2 n/eps scale: %.0f), boundary %d"
          a.u_diameter a.diameter_scale a.separator_size)

let () =
  let rng = Rng.create 7 in
  Format.printf
    "Barrier construction: 4-regular expander with every edge subdivided@.\
     into a path of ~ln(n)/eps nodes (paper, end of Section 3).@.@.";
  List.iter
    (fun n ->
      let barrier = Strongdecomp.Barrier.build (Rng.split rng) ~target_n:n in
      let side =
        let rec go k = if (k + 1) * (k + 1) > Graph.n barrier then k else go (k + 1) in
        go 1
      in
      let grid = Gen.grid side side in
      describe "barrier" barrier;
      describe "grid" grid;
      (* conductance probe: the barrier has conductance Theta(eps/log n),
         far below the expander it came from *)
      Format.printf "%-10s sweep-conductance: %.4f vs grid %.4f@.@." ""
        (Metrics.sweep_conductance barrier ~source:0)
        (Metrics.sweep_conductance grid ~source:0))
    [ 1000; 4000 ];
  Format.printf
    "Reading: on the barrier, whichever branch Lemma 3.1 takes is expensive@.\
     (diameter at the ln^2 n scale or a chunky separator). On the grid the@.\
     same probe is cheap. This is why improving the O(log^2 n/eps) bound@.\
     needs a fundamentally different technique (paper, Section 3).@."
