(* MIS and (Δ+1)-coloring via network decomposition — the classical
   application template: process decomposition colors one at a time;
   same-color clusters are non-adjacent, so each cluster decides its
   members simultaneously; total cost is O(C · D)-shaped rounds.

   Run with:  dune exec examples/mis_demo.exe *)

open Dsgraph

let () =
  let rng = Rng.create 2024 in
  let g = Gen.ensure_connected rng (Gen.erdos_renyi rng 400 0.015) in
  Format.printf "input: %a@." Graph.pp g;

  let cost = Congest.Cost.create () in
  let decomp = Strongdecomp.Netdecomp.strong ~cost g in
  let colors, diameter, _ = Cluster.Decomposition.quality decomp in
  Format.printf "decomposition: C = %d colors, D = %d diameter@." colors
    diameter;

  (* maximal independent set *)
  let mis_cost = Congest.Cost.create () in
  let mis = Apps.Mis.of_decomposition ~cost:mis_cost g decomp in
  let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mis in
  (match Apps.Mis.check g mis with
  | Ok () ->
      Format.printf "MIS: %d nodes, valid, %d rounds (C*D scale = %d)@." size
        (Congest.Cost.rounds mis_cost)
        (colors * (diameter + 1))
  | Error e -> Format.printf "MIS INVALID: %s@." e);

  (* (Δ+1)-coloring on the same decomposition *)
  let col_cost = Congest.Cost.create () in
  let coloring = Apps.Coloring.of_decomposition ~cost:col_cost g decomp in
  let palette = 1 + Array.fold_left max 0 coloring in
  (match Apps.Coloring.check g coloring with
  | Ok () ->
      Format.printf
        "coloring: %d palette colors (max degree %d), valid, %d rounds@."
        palette (Graph.max_degree g)
        (Congest.Cost.rounds col_cost)
  | Error e -> Format.printf "coloring INVALID: %s@." e);

  (* the same template runs on any decomposition — e.g. the randomized
     Linial–Saks baseline, or the improved-diameter Theorem 3.4 *)
  let d34 = Strongdecomp.Netdecomp.strong_improved g in
  let mis34 = Apps.Mis.of_decomposition g d34 in
  Format.printf "MIS on Thm 3.4 decomposition: %s@."
    (match Apps.Mis.check g mis34 with Ok () -> "valid" | Error e -> e)
