(* Quickstart: build a graph, compute the paper's strong-diameter network
   decomposition (Theorem 2.3), inspect and validate the result.

   Run with:  dune exec examples/quickstart.exe *)

open Dsgraph

let () =
  (* A 24x24 grid: 576 nodes. Any [Graph.t] works. *)
  let g = Gen.grid 24 24 in
  Format.printf "input: %a@." Graph.pp g;

  (* Attach a cost meter to get CONGEST round/message accounting. *)
  let cost = Congest.Cost.create () in

  (* Theorem 2.3: deterministic strong-diameter network decomposition with
     O(log n) colors and O(log^3 n) cluster diameter, small messages. *)
  let decomp = Strongdecomp.Netdecomp.strong ~cost g in

  let clustering = Cluster.Decomposition.clustering decomp in
  let colors, strong_diameter, _ = Cluster.Decomposition.quality decomp in
  Format.printf "decomposition: %d colors, %d clusters, strong diameter %d@."
    colors
    (Cluster.Clustering.num_clusters clustering)
    strong_diameter;
  Format.printf "cost: %a@." Congest.Cost.pp cost;

  (* Every output in this library has a ground-truth checker. *)
  (match Cluster.Decomposition.check ~strong_diameter_bound:strong_diameter
           ~colors_bound:colors decomp
   with
  | Ok () -> Format.printf "checker: decomposition is valid@."
  | Error e -> Format.printf "checker: INVALID (%s)@." e);

  (* The per-color cluster view: same-color clusters are non-adjacent, so
     they can do work simultaneously — that is the whole point. *)
  for color = 0 to colors - 1 do
    let clusters = Cluster.Decomposition.clusters_of_color decomp color in
    let nodes =
      List.fold_left
        (fun acc c -> acc + List.length (Cluster.Clustering.members clustering c))
        0 clusters
    in
    Format.printf "  color %d: %d clusters, %d nodes@." color
      (List.length clusters) nodes
  done;

  (* One-shot ball carving (Theorem 2.2) is also exposed directly: remove
     at most an eps fraction of nodes, leave non-adjacent low-diameter
     components. *)
  let carving, stats = Strongdecomp.Strong_carving.carve g ~epsilon:0.25 in
  Format.printf
    "carving (eps=1/4): %d clusters, dead fraction %.3f, %d halving \
     iterations@."
    (Cluster.Clustering.num_clusters carving.Cluster.Carving.clustering)
    (Cluster.Carving.dead_fraction carving)
    stats.Strongdecomp.Transform.iterations
