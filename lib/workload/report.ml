type t = {
  algo : string;
  reference : string;
  family : string;
  n : int;
  m : int;
  seed : int;
  epsilon : float option;
  colors : int;
  strong_diameter : int option;
  weak_diameter : int;
  dead_fraction : float option;
  rounds : int;
  messages : int;
  max_message_bits : int;
  valid : bool;
  seconds : float;
  events : int;
  truncated : int;
  metrics : Congest.Metrics.t;
  rollups : Congest.Span.rollup list;
  res_rollups : Congest.Resource.rollup list;
  res_totals : Congest.Resource.totals;
  causal : Congest.Causal.t;
  span_slack : Congest.Causal.span_slack list;
  audit : Audit.t;
  audit_verdict : (unit, string) result;
  fingerprint : Stats.fingerprint;
}

let assemble ~algo ~reference ~family ~n ~m ~seed ~epsilon ~colors
    ~strong_diameter ~weak_diameter ~dead_fraction ~rounds ~messages
    ~max_message_bits ~valid ~seconds ~sink ~resource ~audit ~graph =
  let res_rollups, res_totals = Congest.Resource.snapshot resource in
  let metrics = Congest.Metrics.of_trace sink in
  let metrics = Congest.Metrics.of_spans ~into:metrics sink in
  let causal = Congest.Causal.analyze sink in
  let metrics = Congest.Causal.metrics ~into:metrics causal in
  let metrics = Congest.Resource.metrics ~into:metrics resource in
  {
    algo;
    reference;
    family;
    n;
    m;
    seed;
    epsilon;
    colors;
    strong_diameter;
    weak_diameter;
    dead_fraction;
    rounds;
    messages;
    max_message_bits;
    valid;
    seconds;
    events = Congest.Trace.length sink;
    truncated = Congest.Trace.truncated sink;
    metrics;
    rollups = Congest.Span.rollups sink;
    res_rollups;
    res_totals;
    causal;
    span_slack = Congest.Causal.span_breakdown sink causal;
    audit;
    audit_verdict = Audit.verify graph audit;
    fingerprint = Stats.current_fingerprint ();
  }

let of_decomposer ?(seed = 42) (d : Algorithms.decomposer) family ~n =
  let sink = Congest.Trace.sink ~spans:true () in
  let resource = Congest.Resource.create () in
  Congest.Resource.attach resource sink;
  let row, decomp, graph =
    Measure.decomposition_result ~seed ~trace:sink d family ~n
  in
  assemble ~algo:row.Measure.algorithm ~reference:row.Measure.reference
    ~family:row.Measure.family ~n:row.Measure.n ~m:row.Measure.m ~seed
    ~epsilon:None ~colors:row.Measure.colors
    ~strong_diameter:row.Measure.strong_diameter
    ~weak_diameter:row.Measure.weak_diameter ~dead_fraction:None
    ~rounds:row.Measure.rounds ~messages:row.Measure.messages
    ~max_message_bits:row.Measure.max_message_bits ~valid:row.Measure.valid
    ~seconds:row.Measure.seconds ~sink ~resource
    ~audit:(Audit.certify_decomposition decomp)
    ~graph

let of_carver ?(seed = 42) ?(epsilon = 0.25) (c : Algorithms.carver) family ~n
    =
  let sink = Congest.Trace.sink ~spans:true () in
  let resource = Congest.Resource.create () in
  Congest.Resource.attach resource sink;
  let row, carving, graph =
    Measure.carving_result ~seed ~trace:sink c family ~n ~epsilon
  in
  let counter name =
    Congest.Metrics.counter_value
      (Congest.Metrics.counter (Congest.Metrics.of_trace sink) name)
  in
  let messages = counter "messages_sent" + counter "cost_messages" in
  assemble ~algo:row.Measure.algorithm ~reference:row.Measure.reference
    ~family:row.Measure.family ~n:row.Measure.n
    ~m:(Dsgraph.Graph.m graph) ~seed ~epsilon:(Some epsilon) ~colors:0
    ~strong_diameter:row.Measure.strong_diameter
    ~weak_diameter:row.Measure.weak_diameter
    ~dead_fraction:(Some row.Measure.dead_fraction) ~rounds:row.Measure.rounds
    ~messages ~max_message_bits:row.Measure.max_message_bits
    ~valid:row.Measure.valid ~seconds:row.Measure.seconds ~sink ~resource
    ~audit:(Audit.certify_carving carving)
    ~graph

(* ------------------------------------------------------------------ *)
(* Markdown                                                             *)
(* ------------------------------------------------------------------ *)

let opt_int = function Some d -> string_of_int d | None -> "-"
let verdict_cell = function Ok () -> "ok" | Error e -> "REJECTED: " ^ e

let max_chain_rows = 20

let to_markdown t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Run report: %s on %s (n=%d)\n\n" t.algo t.family t.n;
  add "Reference: %s. Seed %d. %d events recorded" t.reference t.seed t.events;
  if t.truncated > 0 then add " (%d truncated)" t.truncated;
  add ".\n\n";
  add "Environment: %s.\n\n"
    (Format.asprintf "%a" Stats.pp_fingerprint t.fingerprint);
  add "| quantity | value |\n|---|---|\n";
  add "| nodes / edges | %d / %d |\n" t.n t.m;
  (match t.epsilon with Some e -> add "| epsilon | %.3f |\n" e | None -> ());
  if t.colors > 0 then add "| colors | %d |\n" t.colors;
  add "| strong diameter | %s |\n" (opt_int t.strong_diameter);
  add "| weak diameter | %d |\n" t.weak_diameter;
  (match t.dead_fraction with
  | Some f -> add "| dead fraction | %.4f |\n" f
  | None -> ());
  add "| rounds | %d |\n" t.rounds;
  add "| messages | %d |\n" t.messages;
  add "| max message bits | %d |\n" t.max_message_bits;
  add "| checker verdict | %s |\n" (if t.valid then "ok" else "FAIL");
  add "| certificate audit | %s |\n" (verdict_cell t.audit_verdict);
  add "| wall seconds | %.3f |\n" t.seconds;
  add "| minor words | %.0f |\n" t.res_totals.Congest.Resource.t_minor_words;
  add "| major words | %.0f |\n" t.res_totals.Congest.Resource.t_major_words;
  add "| peak heap MB | %.1f |\n\n"
    (Congest.Resource.peak_heap_mb t.res_totals);
  add "## Causal critical path\n\n";
  add "%s\n\n" (Format.asprintf "%a" Congest.Causal.pp t.causal);
  let c = t.causal in
  add
    "Of %d total rounds, %d are on the critical path (%d engine-charged + \
     a %d-round happens-before chain over %d message hops) and %d are \
     slack.%s\n\n"
    c.Congest.Causal.rounds c.Congest.Causal.critical_rounds
    c.Congest.Causal.engine_rounds c.Congest.Causal.chain_rounds
    (List.length c.Congest.Causal.chain)
    c.Congest.Causal.slack_rounds
    (if c.Congest.Causal.exact then ""
     else
       " The chain is approximate: the trace contains faults, unmatched \
        deliveries, or was truncated.");
  (if c.Congest.Causal.chain <> [] then begin
     add "| hop | src | dst | sent | delivered | bits |\n|---|---|---|---|---|---|\n";
     List.iteri
       (fun i (h : Congest.Causal.hop) ->
         if i < max_chain_rows then
           add "| %d | %d | %d | %d | %d | %d |\n" (i + 1) h.Congest.Causal.src
             h.Congest.Causal.dst h.Congest.Causal.sent_round
             h.Congest.Causal.delivered_round h.Congest.Causal.bits)
       c.Congest.Causal.chain;
     let rest = List.length c.Congest.Causal.chain - max_chain_rows in
     if rest > 0 then add "\n... and %d more hops (full chain in the JSON report).\n" rest;
     add "\n"
   end);
  (if t.span_slack <> [] then begin
     add "## Critical vs. slack rounds by span\n\n";
     add "| span | critical | slack |\n|---|---|---|\n";
     List.iter
       (fun (s : Congest.Causal.span_slack) ->
         add "| %s | %d | %d |\n" s.Congest.Causal.span_path
           s.Congest.Causal.critical s.Congest.Causal.slack)
       t.span_slack;
     add "\n"
   end);
  (if t.rollups <> [] then begin
     add "## Phase rollups\n\n```\n%s```\n\n"
       (Format.asprintf "%a" Congest.Span.pp_rollups t.rollups)
   end);
  (if t.res_rollups <> [] then begin
     add "## Resource profile\n\n";
     add
       "Wall-clock and GC attribution per span (self values sum to the \
        process totals; \"(unspanned)\" absorbs time outside any span).\n\n";
     add "```\n%s```\n\n" (Congest.Resource.csv t.res_rollups)
   end);
  add "## Metrics\n\n```\n%s```\n\n"
    (Format.asprintf "%a" Congest.Metrics.pp t.metrics);
  add "## Cluster audit\n\n";
  add "%d clusters; max diameter lower bound %s, upper bound %s. Verdict: \
       %s.\n\n"
    (List.length t.audit.Audit.certs)
    (let lb = Audit.max_diameter_lb t.audit in
     if lb < 0 then "-" else string_of_int lb)
    (opt_int (Audit.max_diameter_ub t.audit))
    (verdict_cell t.audit_verdict);
  add "```\n%s```\n" (Format.asprintf "%a" (Audit.pp_table ?max_rows:None) t.audit);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""
let jopt_int = function Some d -> string_of_int d | None -> "null"
let jopt_float = function Some f -> Printf.sprintf "%.6f" f | None -> "null"

let to_json t =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"report\":{";
  add "\"algo\":%s,\"reference\":%s,\"family\":%s," (jstr t.algo)
    (jstr t.reference) (jstr t.family);
  add "\"n\":%d,\"m\":%d,\"seed\":%d,\"epsilon\":%s," t.n t.m t.seed
    (jopt_float t.epsilon);
  add "\"colors\":%d,\"strong_diameter\":%s,\"weak_diameter\":%d," t.colors
    (jopt_int t.strong_diameter) t.weak_diameter;
  add "\"dead_fraction\":%s," (jopt_float t.dead_fraction);
  add "\"rounds\":%d,\"messages\":%d,\"max_message_bits\":%d," t.rounds
    t.messages t.max_message_bits;
  add "\"valid\":%b,\"seconds\":%.6f,\"events\":%d,\"truncated\":%d}," t.valid
    t.seconds t.events t.truncated;
  add "\"fingerprint\":%s," (Stats.fingerprint_json t.fingerprint);
  let c = t.causal in
  add "\"causal\":{";
  add "\"rounds\":%d,\"sim_rounds\":%d,\"engine_rounds\":%d,"
    c.Congest.Causal.rounds c.Congest.Causal.sim_rounds
    c.Congest.Causal.engine_rounds;
  add "\"chain_rounds\":%d,\"critical_rounds\":%d,\"slack_rounds\":%d,"
    c.Congest.Causal.chain_rounds c.Congest.Causal.critical_rounds
    c.Congest.Causal.slack_rounds;
  add "\"exact\":%b,\"chain\":[%s]}," c.Congest.Causal.exact
    (String.concat ","
       (List.map
          (fun (h : Congest.Causal.hop) ->
            Printf.sprintf
              "{\"src\":%d,\"dst\":%d,\"sent\":%d,\"delivered\":%d,\"bits\":%d}"
              h.Congest.Causal.src h.Congest.Causal.dst
              h.Congest.Causal.sent_round h.Congest.Causal.delivered_round
              h.Congest.Causal.bits)
          c.Congest.Causal.chain));
  add "\"span_slack\":[%s],"
    (String.concat ","
       (List.map
          (fun (s : Congest.Causal.span_slack) ->
            Printf.sprintf "{\"span\":%s,\"critical\":%d,\"slack\":%d}"
              (jstr s.Congest.Causal.span_path) s.Congest.Causal.critical
              s.Congest.Causal.slack)
          t.span_slack));
  add "\"rollups\":[%s],"
    (String.concat ","
       (List.map
          (fun (r : Congest.Span.rollup) ->
            Printf.sprintf
              "{\"path\":%s,\"depth\":%d,\"entries\":%d,\"rounds\":%d,\"rounds_incl\":%d,\"messages\":%d,\"messages_incl\":%d,\"bits\":%d,\"bits_incl\":%d,\"max_message_bits\":%d,\"seconds\":%.6f,\"seconds_incl\":%.6f}"
              (jstr r.Congest.Span.path) r.Congest.Span.depth
              r.Congest.Span.entries r.Congest.Span.rounds
              r.Congest.Span.rounds_incl r.Congest.Span.messages
              r.Congest.Span.messages_incl r.Congest.Span.bits
              r.Congest.Span.bits_incl r.Congest.Span.max_message_bits
              r.Congest.Span.seconds r.Congest.Span.seconds_incl)
          t.rollups));
  let tot = t.res_totals in
  add
    "\"resources\":{\"seconds\":%.6f,\"minor_words\":%.0f,\"promoted_words\":%.0f,\"major_words\":%.0f,\"major_collections\":%d,\"peak_heap_mb\":%.3f,\"rollups\":[%s]},"
    tot.Congest.Resource.t_seconds tot.Congest.Resource.t_minor_words
    tot.Congest.Resource.t_promoted_words tot.Congest.Resource.t_major_words
    tot.Congest.Resource.t_major_collections
    (Congest.Resource.peak_heap_mb tot)
    (String.concat ","
       (List.map
          (fun (r : Congest.Resource.rollup) ->
            Printf.sprintf
              "{\"path\":%s,\"depth\":%d,\"entries\":%d,\"seconds\":%.6f,\"seconds_incl\":%.6f,\"minor_words\":%.0f,\"minor_words_incl\":%.0f,\"major_words\":%.0f,\"major_words_incl\":%.0f,\"major_collections\":%d}"
              (jstr r.Congest.Resource.r_path) r.Congest.Resource.r_depth
              r.Congest.Resource.r_entries r.Congest.Resource.r_seconds
              r.Congest.Resource.r_seconds_incl
              r.Congest.Resource.r_minor_words
              r.Congest.Resource.r_minor_words_incl
              r.Congest.Resource.r_major_words
              r.Congest.Resource.r_major_words_incl
              r.Congest.Resource.r_major_collections)
          t.res_rollups));
  let metric_lines =
    String.split_on_char '\n' (Congest.Metrics.to_jsonl t.metrics)
    |> List.filter (fun s -> String.trim s <> "")
  in
  add "\"metrics\":[%s]," (String.concat "," metric_lines);
  let a = t.audit in
  add "\"audit\":{";
  add "\"kind\":%s,\"n\":%d,\"num_colors\":%d,\"dead\":%d,\"dead_fraction\":%.6f,"
    (jstr
       (match a.Audit.kind with
       | Audit.Decomposition -> "decomposition"
       | Audit.Carving -> "carving"))
    a.Audit.n a.Audit.num_colors a.Audit.dead a.Audit.dead_fraction;
  add "\"max_diameter_lb\":%d,\"max_diameter_ub\":%s,"
    (Audit.max_diameter_lb a)
    (jopt_int (Audit.max_diameter_ub a));
  add "\"verdict\":%s,"
    (jstr (match t.audit_verdict with Ok () -> "ok" | Error e -> e));
  add "\"certs\":[%s]}}"
    (String.concat ","
       (List.map
          (fun (cert : Audit.cert) ->
            Printf.sprintf
              "{\"cluster\":%d,\"color\":%d,\"size\":%d,\"strong\":%b,\"height\":%s,\"diameter_lb\":%d,\"diameter_ub\":%s}"
              cert.Audit.cluster cert.Audit.color
              (List.length cert.Audit.members)
              cert.Audit.strong
              (match cert.Audit.tree with
              | Some w -> string_of_int w.Audit.w_height
              | None -> "null")
              cert.Audit.diameter_lb
              (jopt_int cert.Audit.diameter_ub))
          a.Audit.certs));
  Buffer.contents buf

let save ?(dir = "bench_results") t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base = Printf.sprintf "report_%s_%s" t.algo t.family in
  let write ext contents =
    let path = Filename.concat dir (base ^ ext) in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  [ write ".md" (to_markdown t); write ".json" (to_json t) ]

let pp_summary ppf t =
  Format.fprintf ppf
    "report: %s on %s n=%d — %s; %d rounds (%d critical, %d slack); audit %s@."
    t.algo t.family t.n
    (if t.valid then "valid" else "INVALID")
    t.rounds t.causal.Congest.Causal.critical_rounds
    t.causal.Congest.Causal.slack_rounds
    (match t.audit_verdict with Ok () -> "ok" | Error e -> "REJECTED: " ^ e)
