type fingerprint = {
  git_sha : string;
  ocaml_version : string;
  word_size : int;
  flambda : bool;
  hostname : string;
}

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                          *)
(* ------------------------------------------------------------------ *)

let read_first_line path =
  try
    let ic = open_in path in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    close_in ic;
    line
  with Sys_error _ -> None

let short_sha s = if String.length s > 12 then String.sub s 0 12 else s

(* .git may be a file in a worktree: "gitdir: <path>" *)
let git_dir_of root =
  let dotgit = Filename.concat root ".git" in
  if Sys.file_exists dotgit then
    if Sys.is_directory dotgit then Some dotgit
    else
      match read_first_line dotgit with
      | Some line
        when String.length line > 8 && String.sub line 0 8 = "gitdir: " ->
          Some (String.sub line 8 (String.length line - 8))
      | _ -> None
  else None

let sha_of_git_dir gitdir =
  match read_first_line (Filename.concat gitdir "HEAD") with
  | None -> None
  | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
        let refname = String.trim (String.sub head 5 (String.length head - 5)) in
        match read_first_line (Filename.concat gitdir refname) with
        | Some sha when String.length sha >= 7 -> Some sha
        | _ -> (
            (* loose ref absent: scan packed-refs for "<sha> <refname>" *)
            try
              let ic = open_in (Filename.concat gitdir "packed-refs") in
              let found = ref None in
              (try
                 while !found = None do
                   let line = input_line ic in
                   match String.index_opt line ' ' with
                   | Some i
                     when String.sub line (i + 1) (String.length line - i - 1)
                          = refname ->
                       found := Some (String.sub line 0 i)
                   | _ -> ()
                 done
               with End_of_file -> ());
              close_in ic;
              !found
            with Sys_error _ -> None)
      end
      else if String.length head >= 7 then Some head
      else None

let resolve_git_sha () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when String.length s >= 7 -> Some (short_sha s)
  | _ ->
      let rec walk dir depth =
        if depth > 16 then None
        else
          match git_dir_of dir with
          | Some gitdir -> sha_of_git_dir gitdir
          | None ->
              let parent = Filename.dirname dir in
              if parent = dir then None else walk parent (depth + 1)
      in
      Option.map short_sha (walk (Sys.getcwd ()) 0)

let current_fingerprint () =
  {
    git_sha = Option.value (resolve_git_sha ()) ~default:"unknown";
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    flambda = Config.flambda;
    hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
  }

let fingerprint_json fp =
  Printf.sprintf
    "{\"git_sha\":%S,\"ocaml_version\":%S,\"word_size\":%d,\"flambda\":%b,\"hostname\":%S}"
    fp.git_sha fp.ocaml_version fp.word_size fp.flambda fp.hostname

let index_of_sub s pos sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go pos

let jfield_str field obj =
  match index_of_sub obj 0 ("\"" ^ field ^ "\":\"") with
  | None -> None
  | Some i -> (
      let start = i + String.length field + 4 in
      match String.index_from_opt obj start '"' with
      | None -> None
      | Some j -> Some (String.sub obj start (j - start)))

let jfield_raw field obj =
  match index_of_sub obj 0 ("\"" ^ field ^ "\":") with
  | None -> None
  | Some i ->
      let start = i + String.length field + 3 in
      let j = ref start in
      let len = String.length obj in
      while
        !j < len && (match obj.[!j] with ',' | '}' -> false | _ -> true)
      do
        incr j
      done;
      Some (String.trim (String.sub obj start (!j - start)))

let fingerprint_of_json obj =
  match
    ( jfield_str "git_sha" obj,
      jfield_str "ocaml_version" obj,
      jfield_raw "word_size" obj,
      jfield_raw "flambda" obj,
      jfield_str "hostname" obj )
  with
  | Some git_sha, Some ocaml_version, Some ws, Some fl, Some hostname -> (
      match (int_of_string_opt ws, bool_of_string_opt fl) with
      | Some word_size, Some flambda ->
          Some { git_sha; ocaml_version; word_size; flambda; hostname }
      | _ -> None)
  | _ -> None

let fingerprint_equal (a : fingerprint) b = a = b

let pp_fingerprint ppf fp =
  Format.fprintf ppf "sha=%s ocaml=%s word=%d flambda=%b host=%s" fp.git_sha
    fp.ocaml_version fp.word_size fp.flambda fp.hostname

(* ------------------------------------------------------------------ *)
(* Sampling                                                             *)
(* ------------------------------------------------------------------ *)

type plan = { warmup : int; samples : int; settle : bool }

let default_plan = { warmup = 1; samples = 5; settle = true }
let quick_plan = { warmup = 1; samples = 3; settle = true }

let settle () = Gc.full_major ()

type summary = { runs : int; median : float; mad : float; lo : float; hi : float }

let sorted_median a =
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

let summarize xs =
  if xs = [] then invalid_arg "Stats.summarize: empty sample list";
  let a = Array.of_list xs in
  Array.sort compare a;
  let median = sorted_median a in
  let dev = Array.map (fun x -> Float.abs (x -. median)) a in
  Array.sort compare dev;
  { runs = Array.length a; median; mad = sorted_median dev; lo = a.(0); hi = a.(Array.length a - 1) }

let measure ?(plan = default_plan) f =
  for _ = 1 to plan.warmup do
    ignore (f ())
  done;
  let result = ref None in
  let samples =
    List.init (max 1 plan.samples) (fun _ ->
        if plan.settle then settle ();
        let t0 = Congest.Resource.now () in
        let v = f () in
        let dt = Congest.Resource.now () -. t0 in
        result := Some v;
        dt)
  in
  match !result with
  | Some v -> (v, summarize samples)
  | None -> assert false (* samples >= 1 *)

let noise_floor ?plan f =
  let _, a = measure ?plan f in
  let _, b = measure ?plan f in
  if a.median <= 0.0 then 0.0
  else Float.abs (b.median -. a.median) /. a.median

(* ------------------------------------------------------------------ *)
(* Significance                                                         *)
(* ------------------------------------------------------------------ *)

let threshold ?(rel = 0.10) ?(k = 3.0) ~mad baseline =
  Float.max (rel *. Float.abs baseline) (k *. mad)

let exceeds ?rel ?k ~mad ~baseline v =
  v -. baseline > threshold ?rel ?k ~mad baseline
