(** Run the algorithm registry and the distributed node programs under the
    {!Congest.Conformance} model-invariant verifier.

    Two legs, mirroring how the repository executes algorithms:

    - {b registry leg} — every Table 1 decomposer and Table 2 carver in
      {!Algorithms}, run through {!Measure} with a trace sink twice:
      replay determinism (a) plus the exact bandwidth cross-check (b)
      between the event stream, {!Congest.Metrics.of_trace}, and the
      {!Congest.Cost} meter totals the row reports;
    - {b program leg} — the genuinely distributed executions
      ({!Congest.Programs}, [Ls_distributed], [Weakdiam.Distributed],
      [Mpx_distributed]), instrumented per round for edge discipline (c),
      halt monotonicity (d), and — where registered order-invariant —
      inbox-order robustness (e), both fault-free and under a seeded
      {!Congest.Fault} adversary.

    Registered order-invariant: leader election, the subtree-count
    convergecast, and the Linial–Saks flood (all fold their inboxes with
    commutative operations). BFS (first-arrival parent tie-break) and the
    mutable-state Weakdiam/MPX programs are checked for (c)–(d) only. *)

type row = {
  target : string;  (** e.g. ["decomposer:thm2.3"], ["program:ls_attempt"] *)
  family : string;
  n : int;
  adversarial : bool;
  report : Congest.Conformance.report;
  seconds : float;
}

val ok : row -> bool

val decomposer_row :
  ?seed:int -> Algorithms.decomposer -> Suite.family -> n:int -> row

val carver_row :
  ?seed:int ->
  ?epsilon:float ->
  Algorithms.carver ->
  Suite.family ->
  n:int ->
  row

val registry_rows :
  ?seed:int -> ?epsilon:float -> Suite.family -> n:int -> row list
(** One row per registered decomposer and carver (fault-free; the
    registry entry points are adversary-free by construction). *)

val program_rows :
  ?seed:int ->
  ?epsilon:float ->
  adversarial:bool ->
  Suite.family ->
  n:int ->
  row list
(** The distributed node programs. With [adversarial:true] each program
    runs under a seeded drop/duplicate/delay/crash adversary (recreated
    from its {!Congest.Fault.spec} on every replay, so determinism still
    holds), with the lossy direct programs swapped for their
    {!Congest.Reliable} variants where one exists. *)

val suite :
  ?seed:int ->
  ?epsilon:float ->
  ?adversarial:bool ->
  Suite.family ->
  n:int ->
  row list
(** [registry_rows @ program_rows ~adversarial:false @ (program_rows
    ~adversarial:true when adversarial)] — the full conformance sweep for
    one family ([adversarial] defaults to [true]). *)

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit

val csv : row list -> string
(** One line per (row, check) plus one per violation. *)

val to_json : row list -> string
(** A JSON array of reports, companion to [lint_results.json]. *)
