(** The graph-family workload suite [W] used by every experiment (see
    DESIGN.md §4). Each family builds a connected graph of approximately
    the requested size from a seed, so sweeps are reproducible. *)

type family = { name : string; build : seed:int -> n:int -> Dsgraph.Graph.t }

val path : family
(** Extreme-diameter family: the one where cluster diameters of the
    polylog algorithms are far below the graph diameter, so the measured
    [(C, D)] trade-offs are non-degenerate at laptop scale. *)

val cycle : family

val grid : family
(** 2-d square grid: the high-diameter, well-cuttable extreme. *)

val torus : family

val erdos_renyi : family
(** [G(n, 3/n)]: sparse near-supercritical random graph (made connected). *)

val random_regular : family
(** random 4-regular: a constant-degree expander. *)

val subdivided_expander : family
(** The Section 3 barrier family. *)

val tree : family
(** random attachment tree. *)

val hypercube : family
(** rounded down to the nearest power of two. *)

val scale_free : family
(** Barabási–Albert preferential attachment (heavy-tailed degrees). *)

val ring_of_cliques : family
(** dense cliques, sparse ring: locality-friendly structure. *)

val all : family list

val core : family list
(** The families the table sweeps run on (path, grid, Erdős–Rényi,
    random-regular expander): one extreme-diameter family, one
    shallow-cut family, one sparse random family, one expander. *)

val find : string -> family
(** @raise Not_found for unknown family names. *)
