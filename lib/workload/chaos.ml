open Dsgraph
module CR = Cluster.Repair

type algo = Decomposer of string | Carver of string

type spec = {
  algo : algo;
  family : string;
  n : int;
  epsilon : float;
  seed : int;
  steps : int;
  crashes : int;
  revive_prob : float;
  edge_dels : int;
  edge_adds : int;
  halo : int;
  max_touched : float;
}

let spec ?(epsilon = 0.2) ?(steps = 2) ?(crashes = 1) ?(revive_prob = 0.25)
    ?(edge_dels = 1) ?(edge_adds = 1) ?(halo = 1) ?(max_touched = 1.0) algo
    ~family ~n ~seed =
  if steps < 1 then invalid_arg "Chaos.spec: steps < 1";
  if halo < 0 then invalid_arg "Chaos.spec: negative halo";
  {
    algo;
    family;
    n;
    epsilon;
    seed;
    steps;
    crashes;
    revive_prob;
    edge_dels;
    edge_adds;
    halo;
    max_touched;
  }

let algo_label = function
  | Decomposer s -> "decomp:" ^ s
  | Carver s -> "carve:" ^ s

type step_row = {
  r_spec : spec;
  step : int;
  d_crashes : int;
  d_revives : int;
  d_dels : int;
  d_adds : int;
  survivors : int;
  dirty : int;
  carried : int;
  fresh : int;
  touched : int;
  touched_fraction : float;
  repair_seconds : float;
  scratch_seconds : float;
  scratch_valid : bool;
  violations : string list;
}

type result = { rows : step_row list; failures : (int * string) list }

(* ------------------------------------------------------------------ *)
(* Seeded delta generation                                             *)
(* ------------------------------------------------------------------ *)

(* Every component is sampled against the *pre*-delta state so the
   delta always passes [Cluster.Repair.step]'s validation: crashes
   among up nodes (always leaving at least two up), revivals among down
   nodes, deletions among live current edges avoiding this step's crash
   victims, insertions among up non-adjacent pairs (rejection-sampled;
   re-inserting a previously deleted edge is fine and un-deletes it). *)
let gen_delta rng sp st =
  let g = CR.graph st in
  let n = Graph.n g in
  let up_arr = Array.of_list (Mask.to_list (CR.survivors st)) in
  let n_up = Array.length up_arr in
  let c_budget = min sp.crashes (max 0 (n_up - 2)) in
  let crash =
    if c_budget = 0 then []
    else begin
      Rng.shuffle rng up_arr;
      Array.to_list (Array.sub up_arr 0 c_budget)
    end
  in
  let crashed = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace crashed v ()) crash;
  let revive =
    List.filter
      (fun v -> CR.is_down st v && Rng.float rng 1.0 < sp.revive_prob)
      (List.init n Fun.id)
  in
  let live_edges = ref [] in
  Graph.iter_edges g (fun u v ->
      if not (Hashtbl.mem crashed u || Hashtbl.mem crashed v) then
        live_edges := (u, v) :: !live_edges);
  let cand = Array.of_list !live_edges in
  Rng.shuffle rng cand;
  let del_edges =
    Array.to_list (Array.sub cand 0 (min sp.edge_dels (Array.length cand)))
  in
  let pool =
    Array.of_list
      (List.filter (fun v -> not (Hashtbl.mem crashed v)) (Array.to_list up_arr))
  in
  let add_edges = ref [] in
  let added = ref 0 in
  let tries = ref 0 in
  while
    !added < sp.edge_adds
    && !tries < 50 * (sp.edge_adds + 1)
    && Array.length pool >= 2
  do
    incr tries;
    let u = pool.(Rng.int rng (Array.length pool)) in
    let v = pool.(Rng.int rng (Array.length pool)) in
    if u <> v && not (Graph.is_edge g u v) then begin
      let e = if u < v then (u, v) else (v, u) in
      if (not (List.mem e !add_edges)) && not (List.mem e del_edges) then begin
        add_edges := e :: !add_edges;
        incr added
      end
    end
  done;
  CR.delta ~crash ~revive ~del_edges ~add_edges:!add_edges ()

(* ------------------------------------------------------------------ *)
(* Engine plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let kind_of = function
  | Decomposer _ -> Audit.Decomposition
  | Carver _ -> Audit.Carving

(* initial run on the fault-free graph + a per-seed recarve closure *)
let start sp g =
  match sp.algo with
  | Decomposer name ->
      let a = Algorithms.find_decomposer name in
      let d = a.Algorithms.run ~cost:(Congest.Cost.create ()) ~seed:sp.seed g in
      ( Repair.start_decomposition d,
        fun ~seed sub -> Repair.recarve_decomposer a ~seed sub )
  | Carver name ->
      let a = Algorithms.find_carver name in
      let cv =
        a.Algorithms.run
          ~cost:(Congest.Cost.create ())
          ~seed:sp.seed g ~epsilon:sp.epsilon
      in
      ( Repair.start_carving cv,
        fun ~seed sub -> Repair.recarve_carver a ~seed ~epsilon:sp.epsilon sub )

(* from-scratch baseline: same engine on the survivor subgraph,
   including certification — the cost a repair is competing against *)
let scratch sp ~recarve ~seed post domain =
  let t0 = Congest.Resource.now () in
  let sub, _back = Subgraph.induce post domain in
  let labels, lcolors = recarve ~seed sub in
  let cl = Cluster.Clustering.make sub ~cluster_of:labels in
  let k = Cluster.Clustering.num_clusters cl in
  let color_of_cluster =
    Array.init k (fun c ->
        match Cluster.Clustering.members cl c with
        | [] -> 0
        | v :: _ -> max 0 lcolors.(labels.(v)))
  in
  let audit =
    match kind_of sp.algo with
    | Audit.Decomposition ->
        Audit.certify_decomposition
          (Cluster.Decomposition.make cl ~color_of_cluster)
    | Audit.Carving ->
        Audit.certify_carving
          (Cluster.Carving.make cl ~domain:(Mask.full (Graph.n sub)))
  in
  let valid =
    Result.is_ok (Audit.verify sub audit)
    && (kind_of sp.algo = Audit.Carving
       || Cluster.Clustering.clustered_count cl = Graph.n sub)
  in
  (Congest.Resource.now () -. t0, valid)

(* ------------------------------------------------------------------ *)
(* The detect -> repair -> re-audit loop                               *)
(* ------------------------------------------------------------------ *)

let run sp =
  let fam = Suite.find sp.family in
  let g = fam.Suite.build ~seed:sp.seed ~n:sp.n in
  let n = Graph.n g in
  let session0, recarve = start sp g in
  let rng = Rng.create ((sp.seed * 31) + 17) in
  let rows = ref [] in
  let failures = ref [] in
  let session = ref session0 in
  for step = 1 to sp.steps do
    let d = gen_delta rng sp !session.Repair.state in
    let recarve_seed = (sp.seed * 1009) + step in
    let prev = !session in
    let s', rep =
      Repair.repair ~halo:sp.halo ~recarve:(recarve ~seed:recarve_seed) prev d
    in
    let post = CR.graph s'.Repair.state in
    let viol = ref [] in
    let violate fmt = Printf.ksprintf (fun s -> viol := s :: !viol) fmt in
    (match Repair.verify_cert ~prev ~post rep.Repair.cert with
    | Ok () -> ()
    | Error e -> violate "certificate rejected: %s" e);
    (match kind_of sp.algo with
    | Audit.Decomposition ->
        (* every survivor must be clustered again *)
        if s'.Repair.audit.Audit.dead <> 0 then
          violate "decomposition left %d survivors unclustered"
            s'.Repair.audit.Audit.dead
    | Audit.Carving ->
        (* cross-check through the fault sweeps' survivor verifier *)
        let labels =
          Array.init n (Cluster.Clustering.cluster_of s'.Repair.clustering)
        in
        let surv =
          List.filter
            (fun v -> s'.Repair.base_domain.(v))
            (Mask.to_list (CR.survivors s'.Repair.state))
        in
        let verdict, _ = Audit.check_survivors post ~survivors:surv ~labels in
        (match verdict with
        | Ok () -> ()
        | Error e -> violate "survivor check rejected: %s" e));
    if sp.max_touched < 1.0 && rep.Repair.touched_fraction > sp.max_touched
    then
      violate "touched fraction %.3f exceeds bound %.3f"
        rep.Repair.touched_fraction sp.max_touched;
    let survivors = Mask.count (CR.survivors s'.Repair.state) in
    let scratch_seconds, scratch_valid =
      scratch sp ~recarve ~seed:recarve_seed post
        (List.filter
           (fun v -> not (CR.is_down s'.Repair.state v))
           (List.init n Fun.id))
    in
    let row =
      {
        r_spec = sp;
        step;
        d_crashes = List.length d.CR.crash;
        d_revives = List.length d.CR.revive;
        d_dels = List.length d.CR.del_edges;
        d_adds = List.length d.CR.add_edges;
        survivors;
        dirty = rep.Repair.dirty_clusters;
        carried = rep.Repair.carried_clusters;
        fresh = rep.Repair.fresh_clusters;
        touched = rep.Repair.touched_nodes;
        touched_fraction = rep.Repair.touched_fraction;
        repair_seconds = rep.Repair.seconds;
        scratch_seconds;
        scratch_valid;
        violations = List.rev !viol;
      }
    in
    rows := row :: !rows;
    List.iter (fun v -> failures := (step, v) :: !failures) (List.rev !viol);
    session := s'
  done;
  { rows = List.rev !rows; failures = List.rev !failures }

let sweep specs = List.map run specs

let default_specs
    ?(algos =
      [
        (* a granularity mix: fine strong clusters (greedy, gha19), weak
           certificates (ls93 — always-dirty path), one giant cluster
           (thm2.3 — full re-carve path), and a carver (thm2.2) *)
        Decomposer "greedy"; Decomposer "gha19"; Decomposer "ls93";
        Decomposer "thm2.3"; Carver "thm2.2";
      ]) ?(families = [ "grid"; "er"; "reg4" ]) ?(n = 64)
    ?(steps = 2) ?(count = 24) ~seed () =
  let na = List.length algos and nf = List.length families in
  if na = 0 || nf = 0 then invalid_arg "Chaos.default_specs: empty axis";
  List.init count (fun i ->
      spec ~steps
        (List.nth algos (i mod na))
        ~family:(List.nth families (i / na mod nf))
        ~n ~seed:(seed + (1000 * i)))

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let csv_header =
  "algo,family,n,epsilon,seed,halo,step,crashes,revives,edge_dels,edge_adds,survivors,dirty,carried,fresh,touched,touched_fraction,repair_seconds,scratch_seconds,cost_ratio,scratch_valid,violations\n"

let csv_row r =
  let sp = r.r_spec in
  Printf.sprintf
    "%s,%s,%d,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.6f,%.6f,%.3f,%b,%s\n"
    (algo_label sp.algo) sp.family sp.n sp.epsilon sp.seed sp.halo r.step
    r.d_crashes r.d_revives r.d_dels r.d_adds r.survivors r.dirty r.carried
    r.fresh r.touched r.touched_fraction r.repair_seconds r.scratch_seconds
    (r.repair_seconds /. Float.max 1e-9 r.scratch_seconds)
    r.scratch_valid
    (String.concat ";"
       (List.map
          (fun v ->
            String.map (function ',' | '\n' -> ' ' | c -> c) v)
          r.violations))

let csv rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  List.iter (fun r -> Buffer.add_string buf (csv_row r)) rows;
  Buffer.contents buf
