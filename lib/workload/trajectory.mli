(** The persistent headline-metrics time series (BENCH_trajectory.json)
    and its >10% regression comparator.

    The trajectory file is a JSON array with exactly one snapshot
    object per line: [{"time":...,"workloads":[{...},{...}]}]. Each
    workload object carries the headline columns — logical costs
    (rounds, messages, max_bits, phases) plus the resource columns
    (seconds, minor_words_per_node, peak_heap_mb). [bench record]
    appends snapshots and diffs the newest against the previous one;
    CI greps the rendered ["regression: ..."] lines as warnings.

    Extracted from bench/main.ml so the comparator's edge cases
    (missing baseline row, newly-added row, zero baseline, resource
    columns) are unit-testable (test/test_trajectory.ml). *)

type entry = {
  name : string;
  rounds : int;
  messages : int;
  max_bits : int;
  phases : int;  (** distinct span paths seen *)
  seconds : float;
  minor_words_per_node : float;
      (** minor-heap allocation divided by workload node count — the
          per-node allocation pressure the hot-path work must drive
          down *)
  peak_heap_mb : float;  (** process peak-heap watermark, MB *)
}

val snapshot_json : time:float -> entry list -> string
(** One snapshot line (no trailing newline). [time] is the caller's
    epoch timestamp — this module never reads the clock. *)

val read_snapshot_lines : string -> string list
(** The '{'-prefixed snapshot lines of a trajectory file, oldest first;
    [[]] when the file does not exist. *)

val write : string -> string list -> unit
(** Rewrites the file as a JSON array, one snapshot per line. *)

type regression = {
  r_name : string;
  r_metric : string;
  r_old : float;
  r_new : float;
  r_pct : float;  (** percentage increase over the baseline *)
}

val default_metrics : string list
(** ["rounds"; "messages"; "max_bits"; "seconds";
    "minor_words_per_node"; "peak_heap_mb"] — [phases] is
    informational, not gated. *)

val compare_lines :
  ?metrics:string list -> old_line:string -> new_line:string -> unit -> regression list
(** Every metric of every workload present in both snapshots that grew
    by strictly more than 10%. Workloads missing from the baseline
    (newly added rows), metrics missing from either side (e.g. a
    baseline predating the resource columns), and zero or negative
    baseline values are all skipped, never flagged. *)

val regression_line : regression -> string
(** ["regression: <name> <metric>: <old> -> <new> (+<pct>%)"] — the
    exact shape CI greps for. *)
