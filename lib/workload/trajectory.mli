(** The persistent headline-metrics time series (BENCH_trajectory.json)
    and its noise-aware regression comparator.

    The trajectory file is a JSON array with exactly one snapshot
    object per line:
    [{"time":...,"fingerprint":{...},"workloads":[{...},{...}]}]. Each
    workload object carries the headline columns — logical costs
    (rounds, messages, max_bits, phases) plus the resource columns
    (seconds with its median/MAD, minor_words_per_node, peak_heap_mb) —
    and each snapshot carries the {!Stats.fingerprint} it was recorded
    under. [bench record] appends snapshots and diffs the newest
    against the previous one; CI greps the rendered ["regression: ..."]
    lines as warnings.

    Extracted from bench/main.ml so the comparator's edge cases
    (missing baseline row, newly-added row, zero baseline, resource
    columns, MAD widening, fingerprint refusal, malformed lines) are
    unit-testable (test/test_trajectory.ml). *)

type entry = {
  name : string;
  rounds : int;
  messages : int;
  max_bits : int;
  phases : int;  (** distinct span paths seen *)
  seconds : float;
      (** median of the {!Stats.measure} samples (kept under the
          historical ["seconds"] key for back-compat; also emitted as
          ["seconds_median"]) *)
  seconds_mad : float;
      (** median absolute deviation of the samples; [0.] for
          single-shot measurements *)
  minor_words_per_node : float;
      (** minor-heap allocation divided by workload node count — the
          per-node allocation pressure the hot-path work must drive
          down *)
  peak_heap_mb : float;  (** process peak-heap watermark, MB *)
}

val snapshot_json :
  ?fingerprint:Stats.fingerprint -> time:float -> entry list -> string
(** One snapshot line (no trailing newline). [time] is the caller's
    epoch timestamp — this module never reads the clock. *)

val read_snapshot_lines :
  ?warn:(line_number:int -> string -> unit) -> string -> string list
(** The '{'-prefixed snapshot lines of a trajectory file, oldest first;
    [[]] when the file does not exist. A malformed line (unbalanced
    braces, or non-empty content that is neither a snapshot object nor
    an array delimiter) is skipped and reported to [warn] with its
    1-based line number; the default [warn] is silent, matching the
    historical behavior. *)

val write : string -> string list -> unit
(** Rewrites the file as a JSON array, one snapshot per line. *)

val workload_objs : string -> string list
(** The flat workload objects of a snapshot line, in file order. *)

val str_field : string -> string -> string option
(** [str_field field obj]: first ["field":"..."] occurrence. *)

val num_field : string -> string -> float option
(** [num_field field obj]: first ["field":<number>] occurrence. *)

val fingerprint_of_line : string -> string option
(** The raw ["fingerprint":{...}] object of a snapshot line, if
    present; parse with {!Stats.fingerprint_of_json}. *)

type regression = {
  r_name : string;
  r_metric : string;
  r_old : float;
  r_new : float;
  r_pct : float;  (** percentage increase over the baseline *)
}

val default_metrics : string list
(** ["rounds"; "messages"; "max_bits"; "seconds";
    "minor_words_per_node"; "peak_heap_mb"] — [phases] is
    informational, not gated. *)

val compare_lines :
  ?metrics:string list ->
  ?k:float ->
  old_line:string ->
  new_line:string ->
  unit ->
  regression list
(** Every metric of every workload present in both snapshots that grew
    past {!Stats.threshold} [~rel:0.10 ~k ~mad] — i.e. by more than
    [max(10%, k*MAD)], where the MAD comes from the recorded
    ["<metric>_mad"] column (the larger of the two sides; [0.] when
    absent, restoring the pure 10% gate). [k] defaults to [3.].
    [seconds] must additionally grow by more than an absolute 5 ms
    (mirroring {!Diff.options.min_seconds}), so sub-millisecond
    headline jitter on the fast workloads never flags. Workloads
    missing from the baseline (newly added rows), metrics missing from
    either side (e.g. a baseline predating the resource columns), and
    zero or negative baseline values are all skipped, never flagged. *)

type verdict =
  | Regressions of regression list
  | Incomparable of { old_fp : string; new_fp : string }
      (** raw fingerprint JSON of each side *)

val compare_snapshots :
  ?metrics:string list ->
  ?k:float ->
  old_line:string ->
  new_line:string ->
  unit ->
  verdict
(** {!compare_lines} guarded by the environment fingerprint: when both
    snapshots carry one and they differ, the comparison is refused
    ([Incomparable]) instead of flagging phantom cross-machine deltas.
    Lines without fingerprints (pre-observatory history) compare as
    before. *)

val regression_line : regression -> string
(** ["regression: <name> <metric>: <old> -> <new> (+<pct>%)"] — the
    exact shape CI greps for. *)
