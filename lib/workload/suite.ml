open Dsgraph

type family = { name : string; build : seed:int -> n:int -> Graph.t }

let isqrt n =
  let rec go k = if (k + 1) * (k + 1) > n then k else go (k + 1) in
  go 1

let path =
  { name = "path"; build = (fun ~seed:_ ~n -> Gen.path (max 2 n)) }

let cycle =
  { name = "cycle"; build = (fun ~seed:_ ~n -> Gen.cycle (max 3 n)) }

let grid =
  {
    name = "grid";
    build =
      (fun ~seed:_ ~n ->
        let s = max 2 (isqrt n) in
        Gen.grid s s);
  }

let torus =
  {
    name = "torus";
    build =
      (fun ~seed:_ ~n ->
        let s = max 3 (isqrt n) in
        Gen.torus s s);
  }

let erdos_renyi =
  {
    name = "er";
    build =
      (fun ~seed ~n ->
        let rng = Rng.create (seed + 77) in
        Gen.ensure_connected rng
          (Gen.erdos_renyi rng n (3.0 /. float_of_int (max n 2))));
  }

let random_regular =
  {
    name = "reg4";
    build =
      (fun ~seed ~n ->
        let n = if n mod 2 = 0 then n else n + 1 in
        Gen.expander (Rng.create (seed + 13)) n);
  }

let subdivided_expander =
  {
    name = "subdiv";
    build =
      (fun ~seed ~n ->
        Strongdecomp.Barrier.build (Rng.create (seed + 5)) ~target_n:(max 32 n));
  }

let tree =
  {
    name = "tree";
    build = (fun ~seed ~n -> Gen.random_tree (Rng.create (seed + 3)) (max 2 n));
  }

let hypercube =
  {
    name = "hypercube";
    build =
      (fun ~seed:_ ~n ->
        let rec dim d = if 1 lsl (d + 1) > n then d else dim (d + 1) in
        Gen.hypercube (max 1 (dim 1)));
  }

let scale_free =
  {
    name = "ba";
    build =
      (fun ~seed ~n ->
        Gen.barabasi_albert (Rng.create (seed + 23)) (max 5 n) 3);
  }

let ring_of_cliques =
  {
    name = "cliques";
    build =
      (fun ~seed:_ ~n ->
        let s = max 4 (isqrt n) in
        let k = max 3 (n / s) in
        Gen.ring_of_cliques k s);
  }

let all =
  [
    path;
    cycle;
    grid;
    torus;
    erdos_renyi;
    random_regular;
    subdivided_expander;
    tree;
    hypercube;
    scale_free;
    ring_of_cliques;
  ]

let core = [ path; grid; erdos_renyi; random_regular ]

let find name = List.find (fun f -> f.name = name) all
