(** Unified run reports: one self-contained document per
    algorithm-on-family run, aggregating everything the observability
    stack can say about it —

    - the measurement row ({!Measure}): colors, diameters, rounds,
      message sizes, checker verdict;
    - replayed {!Congest.Metrics} (counters, gauges, histograms);
    - per-phase {!Congest.Span} rollups;
    - the causal critical path and slack ({!Congest.Causal}),
      including the per-span critical/slack split;
    - the {!Congest.Resource} side channel: per-span wall-clock and
      GC-allocation attribution plus the process totals (peak heap,
      minor/major words), gathered by a recorder attached for the run;
    - the per-cluster {!Audit} certificate table and the independent
      {!Audit.verify} verdict against the raw graph.

    Rendered as markdown (for humans and CI artifacts) and as a single
    JSON object (for downstream tooling); both carry the same data. *)

type t = {
  algo : string;
  reference : string;
  family : string;
  n : int;
  m : int;
  seed : int;
  epsilon : float option;  (** carvings only *)
  colors : int;  (** [0] for carvings *)
  strong_diameter : int option;
  weak_diameter : int;
  dead_fraction : float option;  (** carvings only *)
  rounds : int;
  messages : int;
  max_message_bits : int;
  valid : bool;
  seconds : float;
  events : int;  (** trace events recorded *)
  truncated : int;  (** events dropped by the sink's capacity bound *)
  metrics : Congest.Metrics.t;
  rollups : Congest.Span.rollup list;
  res_rollups : Congest.Resource.rollup list;
      (** per-span resource attribution, ["(unspanned)"] included *)
  res_totals : Congest.Resource.totals;
      (** process totals over the run window, one sample with
          [res_rollups] so the exact-sum invariant holds between them *)
  causal : Congest.Causal.t;
  span_slack : Congest.Causal.span_slack list;
  audit : Audit.t;
  audit_verdict : (unit, string) result;
  fingerprint : Stats.fingerprint;
      (** the environment the run was recorded in — embedded in the
          JSON so {!Diff} can refuse cross-environment comparisons *)
}

val of_decomposer :
  ?seed:int -> Algorithms.decomposer -> Suite.family -> n:int -> t
(** Runs the decomposer once with a span-enabled trace sink and
    assembles the full report, including the certificate audit and its
    independent verification. *)

val of_carver :
  ?seed:int -> ?epsilon:float -> Algorithms.carver -> Suite.family -> n:int -> t
(** As {!of_decomposer} for carvers; [epsilon] defaults to [0.25]. *)

val to_markdown : t -> string
(** Self-contained markdown document: headline table, causal summary,
    per-span critical/slack table, metrics, phase rollups, and the
    cluster audit table (capped rows are noted explicitly, never
    dropped silently). *)

val to_json : t -> string
(** One JSON object mirroring {!to_markdown}'s content; metrics are
    embedded as the array of {!Congest.Metrics.to_jsonl} objects. *)

val save : ?dir:string -> t -> string list
(** Writes [report_<algo>_<family>.md] and [.json] under [dir]
    (default ["bench_results"], created if missing); returns the paths
    written. *)

val pp_summary : Format.formatter -> t -> unit
(** Short CLI summary: headline verdicts plus where the files landed
    belongs to the caller. *)
