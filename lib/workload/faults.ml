open Dsgraph
module Fault = Congest.Fault
module Reliable = Congest.Reliable

type algorithm = Ls | Weakdiam

type scenario = {
  algorithm : algorithm;
  family : string;
  n : int;
  epsilon : float;
  drop : float;
  crashes : int;
  seed : int;
}

type row = {
  s : scenario;
  valid : bool;
  valid_degraded : bool;
  dead_fraction : float;
  crashed_nodes : int list;
  rounds : int;
  base_rounds : int;
  round_overhead : float;
  messages : int;
  base_messages : int;
  max_bits : int;
  bandwidth : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  retransmissions : int;
  detected_dead : int;
  recovery_rounds : int;
}

let algo_label = function Ls -> "ls_distributed" | Weakdiam -> "weakdiam_sim"

(* distinct crash victims with staggered crash rounds, all seeded *)
let crash_schedule rng ~n ~crashes =
  let crashes = min crashes (n / 2) in
  let chosen = Hashtbl.create (max crashes 1) in
  let rec pick i acc =
    if i >= crashes then List.rev acc
    else
      let v = Rng.int rng n in
      if Hashtbl.mem chosen v then pick i acc
      else begin
        Hashtbl.add chosen v ();
        pick (i + 1) ((v, 3 + (4 * i)) :: acc)
      end
  in
  pick 0 []

(* Validity of [labels] restricted to [survivors]: one source of truth —
   the Audit certificate verifier on the survivor subgraph (epsilon
   deliberately not enforced; the dead fraction is reported in the row
   instead). *)
let check_on_survivors g survivors labels =
  let verdict, dead_fraction =
    Audit.check_survivors g ~survivors ~labels
  in
  (Result.is_ok verdict, dead_fraction)

let survivors_of n crashed =
  let dead = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace dead v ()) crashed;
  List.filter (fun v -> not (Hashtbl.mem dead v)) (List.init n (fun i -> i))

let adversary_for sc ~crashes =
  Fault.create (Fault.spec ~seed:sc.seed ~drop:sc.drop ~crashes ())

(* drop-only adversary for the recovery re-run on the survivor subgraph *)
let recovery_adversary sc =
  Fault.create (Fault.spec ~seed:(sc.seed + 1) ~drop:sc.drop ())

let run ?trace sc =
  let fam = Suite.find sc.family in
  let g = fam.Suite.build ~seed:sc.seed ~n:sc.n in
  let n = Graph.n g in
  let crashes =
    crash_schedule (Rng.create ((sc.seed * 7919) + 13)) ~n ~crashes:sc.crashes
  in
  match sc.algorithm with
  | Ls ->
      let _, base_stats =
        Baseline.Ls_distributed.attempt (Rng.create sc.seed) g
          ~epsilon:sc.epsilon
      in
      let adv = adversary_for sc ~crashes in
      let r =
        Baseline.Ls_distributed.attempt_reliable ~adversary:adv ?trace
          (Rng.create sc.seed) g ~epsilon:sc.epsilon
      in
      let survivors = survivors_of n r.Baseline.Ls_distributed.crashed in
      let valid_degraded, dead_degraded =
        check_on_survivors g survivors r.Baseline.Ls_distributed.cluster_of
      in
      let valid, dead_fraction, recovery_rounds =
        if valid_degraded then (true, dead_degraded, 0)
        else begin
          let sub, _back = Subgraph.induce g survivors in
          let r2 =
            Baseline.Ls_distributed.attempt_reliable
              ~adversary:(recovery_adversary sc)
              (Rng.create (sc.seed + 1))
              sub ~epsilon:sc.epsilon
          in
          let v, d =
            check_on_survivors sub
              (List.init (Graph.n sub) (fun i -> i))
              r2.Baseline.Ls_distributed.cluster_of
          in
          (v, d, r2.Baseline.Ls_distributed.sim_stats.Congest.Sim.rounds_used)
        end
      in
      let stats = r.Baseline.Ls_distributed.sim_stats in
      let bandwidth =
        Congest.Bits.bandwidth ~n
        + Reliable.header_bits
            ~inner_rounds:r.Baseline.Ls_distributed.inner_rounds
      in
      {
        s = sc;
        valid;
        valid_degraded;
        dead_fraction;
        crashed_nodes = r.Baseline.Ls_distributed.crashed;
        rounds = stats.Congest.Sim.rounds_used;
        base_rounds = base_stats.Congest.Sim.rounds_used;
        round_overhead =
          float_of_int stats.Congest.Sim.rounds_used
          /. float_of_int (max 1 base_stats.Congest.Sim.rounds_used);
        messages = stats.Congest.Sim.total_messages;
        base_messages = base_stats.Congest.Sim.total_messages;
        max_bits = stats.Congest.Sim.max_bits_seen;
        bandwidth;
        dropped = stats.Congest.Sim.faults.dropped;
        duplicated = stats.Congest.Sim.faults.duplicated;
        delayed = stats.Congest.Sim.faults.delayed;
        retransmissions =
          r.Baseline.Ls_distributed.transport.Reliable.retransmissions;
        detected_dead =
          List.length r.Baseline.Ls_distributed.transport.Reliable.detected_dead;
        recovery_rounds;
      }
  | Weakdiam ->
      let base = Weakdiam.Distributed.carve g ~epsilon:sc.epsilon in
      let base_stats = base.Weakdiam.Distributed.sim_stats in
      let adv = adversary_for sc ~crashes in
      let r =
        Weakdiam.Distributed.carve_reliable ~adversary:adv ?trace g
          ~epsilon:sc.epsilon
      in
      let survivors = survivors_of n r.Weakdiam.Distributed.crashed in
      let valid_degraded, dead_degraded =
        check_on_survivors g survivors r.Weakdiam.Distributed.cluster_of
      in
      let valid, dead_fraction, recovery_rounds =
        if valid_degraded then (true, dead_degraded, 0)
        else begin
          let sub, _back = Subgraph.induce g survivors in
          let r2 =
            Weakdiam.Distributed.carve_reliable
              ~adversary:(recovery_adversary sc) sub ~epsilon:sc.epsilon
          in
          let v, d =
            check_on_survivors sub
              (List.init (Graph.n sub) (fun i -> i))
              r2.Weakdiam.Distributed.cluster_of
          in
          (v, d, r2.Weakdiam.Distributed.r_sim_stats.Congest.Sim.rounds_used)
        end
      in
      let stats = r.Weakdiam.Distributed.r_sim_stats in
      let bandwidth =
        max (Congest.Bits.bandwidth ~n) (4 + (2 * Congest.Bits.id_bits ~n))
        + Reliable.header_bits ~inner_rounds:r.Weakdiam.Distributed.inner_rounds
      in
      {
        s = sc;
        valid;
        valid_degraded;
        dead_fraction;
        crashed_nodes = r.Weakdiam.Distributed.crashed;
        rounds = stats.Congest.Sim.rounds_used;
        base_rounds = base_stats.Congest.Sim.rounds_used;
        round_overhead =
          float_of_int stats.Congest.Sim.rounds_used
          /. float_of_int (max 1 base_stats.Congest.Sim.rounds_used);
        messages = stats.Congest.Sim.total_messages;
        base_messages = base_stats.Congest.Sim.total_messages;
        max_bits = stats.Congest.Sim.max_bits_seen;
        bandwidth;
        dropped = stats.Congest.Sim.faults.dropped;
        duplicated = stats.Congest.Sim.faults.duplicated;
        delayed = stats.Congest.Sim.faults.delayed;
        retransmissions =
          r.Weakdiam.Distributed.transport.Reliable.retransmissions;
        detected_dead =
          List.length r.Weakdiam.Distributed.transport.Reliable.detected_dead;
        recovery_rounds;
      }

let sweep ?(drops = [ 0.0; 0.01; 0.05; 0.1 ]) ?(crash_counts = [ 0; 2 ])
    ?(seed = 1) algorithm ~family ~n ~epsilon =
  List.concat_map
    (fun drop ->
      List.map
        (fun crashes ->
          run { algorithm; family; n; epsilon; drop; crashes; seed })
        crash_counts)
    drops

let csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "algorithm,family,n,epsilon,drop,crashes,seed,valid,valid_degraded,dead_fraction,rounds,base_rounds,round_overhead,messages,base_messages,max_bits,bandwidth,dropped,duplicated,delayed,retransmissions,detected_dead,recovery_rounds\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s,%s,%d,%.3f,%.3f,%d,%d,%b,%b,%.4f,%d,%d,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n"
           (algo_label r.s.algorithm)
           r.s.family r.s.n r.s.epsilon r.s.drop
           (List.length r.crashed_nodes)
           r.s.seed r.valid r.valid_degraded r.dead_fraction r.rounds
           r.base_rounds r.round_overhead r.messages r.base_messages r.max_bits
           r.bandwidth r.dropped r.duplicated r.delayed r.retransmissions
           r.detected_dead r.recovery_rounds))
    rows;
  Buffer.contents buf

let pp_row fmt r =
  Format.fprintf fmt
    "%-14s %-8s n=%-5d drop=%.2f crashes=%d %s%s rounds=%d (x%.2f) retx=%d \
     dead=%.1f%%%s"
    (algo_label r.s.algorithm)
    r.s.family r.s.n r.s.drop
    (List.length r.crashed_nodes)
    (if r.valid then "ok " else "FAIL")
    (if r.valid_degraded then "" else "(recovered)")
    r.rounds r.round_overhead r.retransmissions
    (100.0 *. r.dead_fraction)
    (if r.recovery_rounds > 0 then
       Printf.sprintf " recovery=%d" r.recovery_rounds
     else "")
