open Dsgraph

type witness = {
  w_root : int;
  w_parents : (int * int) list;
  w_height : int;
}

type cert = {
  cluster : int;
  color : int;
  members : int list;
  strong : bool;
  tree : witness option;
  diameter_lb : int;
  lb_pair : int * int;
  diameter_ub : int option;
}

type kind = Decomposition | Carving

type t = {
  kind : kind;
  n : int;
  certs : cert list;
  num_colors : int;
  domain : int list;
  dead : int;
  dead_fraction : float;
}

let cert_of_cluster clustering ~color c =
  let members = Cluster.Clustering.members clustering c in
  let of_tree (root, pairs, height) =
    { w_root = root; w_parents = pairs; w_height = height }
  in
  match Cluster.Clustering.witness_tree clustering c with
  | Some w ->
      let u, v, d = Cluster.Clustering.eccentric_pair clustering c in
      let w = of_tree w in
      {
        cluster = c;
        color;
        members;
        strong = true;
        tree = Some w;
        diameter_lb = d;
        lb_pair = (u, v);
        diameter_ub = Some (2 * w.w_height);
      }
  | None ->
      (* induced subgraph disconnected: fall back to host-graph witnesses *)
      let tree =
        Option.map of_tree (Cluster.Clustering.weak_witness_tree clustering c)
      in
      let u, v, d = Cluster.Clustering.weak_eccentric_pair clustering c in
      {
        cluster = c;
        color;
        members;
        strong = false;
        tree;
        diameter_lb = d;
        lb_pair = (u, v);
        diameter_ub = Option.map (fun w -> 2 * w.w_height) tree;
      }

let certs_of_clustering clustering ~color_of =
  List.init (Cluster.Clustering.num_clusters clustering) (fun c ->
      cert_of_cluster clustering ~color:(color_of c) c)

let certify_decomposition d =
  let clustering = Cluster.Decomposition.clustering d in
  let g = Cluster.Clustering.graph clustering in
  let n = Graph.n g in
  let dead = n - Cluster.Clustering.clustered_count clustering in
  {
    kind = Decomposition;
    n;
    certs =
      certs_of_clustering clustering
        ~color_of:(Cluster.Decomposition.color_of_cluster d);
    num_colors = Cluster.Decomposition.num_colors d;
    domain = List.init n Fun.id;
    dead;
    dead_fraction =
      (if n = 0 then 0.0 else float_of_int dead /. float_of_int n);
  }

let certify_carving (cv : Cluster.Carving.t) =
  let clustering = cv.Cluster.Carving.clustering in
  let g = Cluster.Clustering.graph clustering in
  let dead = List.length (Cluster.Carving.dead cv) in
  {
    kind = Carving;
    n = Graph.n g;
    certs = certs_of_clustering clustering ~color_of:(fun _ -> -1);
    num_colors = 0;
    domain = Mask.to_list cv.Cluster.Carving.domain;
    dead;
    dead_fraction = Cluster.Carving.dead_fraction cv;
  }

(* ------------------------------------------------------------------ *)
(* Independent re-verification against the raw graph                    *)
(* ------------------------------------------------------------------ *)

exception Reject of string

let fail fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

(* depth of every tree node from the parent pointers alone, rejecting
   duplicate nodes, dangling parents, and cycles *)
let tree_depths ~cluster w =
  let parent = Hashtbl.create 64 in
  List.iter
    (fun (v, p) ->
      if v = w.w_root then
        fail "cluster %d: witness root %d also has a parent" cluster v;
      if Hashtbl.mem parent v then
        fail "cluster %d: node %d appears twice in the witness tree" cluster v;
      Hashtbl.add parent v p)
    w.w_parents;
  let depth = Hashtbl.create 64 in
  Hashtbl.add depth w.w_root 0;
  let bound = List.length w.w_parents + 1 in
  let rec depth_of steps v =
    if steps > bound then
      fail "cluster %d: witness tree has a parent cycle at node %d" cluster v;
    match Hashtbl.find_opt depth v with
    | Some d -> d
    | None ->
        (match Hashtbl.find_opt parent v with
        | None ->
            fail "cluster %d: node %d hangs off the witness tree (parent %s)"
              cluster v "missing"
        | Some p ->
            let d = 1 + depth_of (steps + 1) p in
            Hashtbl.add depth v d);
        Hashtbl.find depth v
  in
  List.iter (fun (v, _) -> ignore (depth_of 0 v)) w.w_parents;
  depth

let verify g t =
  let n = Graph.n g in
  try
    if t.n <> n then
      fail "certificate claims n=%d but the graph has %d nodes" t.n n;
    (* domain: sorted, in range, duplicate-free *)
    let in_domain = Array.make n false in
    let rec check_domain = function
      | [] -> ()
      | v :: rest ->
          if v < 0 || v >= n then fail "domain node %d out of range" v;
          if in_domain.(v) then fail "domain node %d listed twice" v;
          in_domain.(v) <- true;
          check_domain rest
    in
    check_domain t.domain;
    (* membership: disjoint clusters confined to the domain *)
    let owner = Array.make n (-1) in
    let node_color = Array.make n (-1) in
    let clustered = ref 0 in
    List.iter
      (fun cert ->
        if cert.members = [] then fail "cluster %d is empty" cert.cluster;
        (match t.kind with
        | Decomposition ->
            if cert.color < 0 || cert.color >= t.num_colors then
              fail "cluster %d: color %d outside [0, %d)" cert.cluster
                cert.color t.num_colors
        | Carving ->
            if cert.color <> -1 then
              fail "cluster %d: carved clusters carry no colors (got %d)"
                cert.cluster cert.color);
        List.iter
          (fun v ->
            if v < 0 || v >= n then
              fail "cluster %d: member %d out of range" cert.cluster v;
            if not in_domain.(v) then
              fail "cluster %d: member %d outside the domain" cert.cluster v;
            if owner.(v) >= 0 then
              fail "node %d claimed by clusters %d and %d" v owner.(v)
                cert.cluster;
            owner.(v) <- cert.cluster;
            node_color.(v) <- cert.color;
            incr clustered)
          cert.members)
      t.certs;
    (* dead accounting, recounted from the lists just validated *)
    let dead = List.length t.domain - !clustered in
    if dead <> t.dead then
      fail "dead count: certificate claims %d, recount gives %d" t.dead dead;
    (match t.kind with
    | Decomposition ->
        if dead > 0 then fail "decomposition leaves %d nodes unclustered" dead
    | Carving -> ());
    let denom = List.length t.domain in
    let expected_fraction =
      if denom = 0 then 0.0 else float_of_int dead /. float_of_int denom
    in
    if Float.abs (expected_fraction -. t.dead_fraction) > 1e-9 then
      fail "dead fraction: certificate claims %.6f, recount gives %.6f"
        t.dead_fraction expected_fraction;
    (* color-class disjointness by one scan of the raw edge set; for
       carvings every color is -1, so this is full non-adjacency *)
    Graph.iter_edges g (fun u v ->
        if
          owner.(u) >= 0 && owner.(v) >= 0
          && owner.(u) <> owner.(v)
          && node_color.(u) = node_color.(v)
        then
          fail "edge (%d,%d) joins clusters %d and %d of the same color %d" u
            v owner.(u) owner.(v) node_color.(u));
    (* witness trees and eccentric pairs, cluster by cluster *)
    List.iter
      (fun cert ->
        let member = Hashtbl.create 64 in
        List.iter (fun v -> Hashtbl.replace member v ()) cert.members;
        (match cert.tree with
        | None ->
            if cert.diameter_ub <> None then
              fail "cluster %d: diameter upper bound without a witness tree"
                cert.cluster
        | Some w ->
            if not (Hashtbl.mem member w.w_root) then
              fail "cluster %d: witness root %d is not a member" cert.cluster
                w.w_root;
            List.iter
              (fun (v, p) ->
                if v < 0 || v >= n || p < 0 || p >= n then
                  fail "cluster %d: witness pair (%d,%d) out of range"
                    cert.cluster v p;
                if not (Graph.is_edge g v p) then
                  fail "cluster %d: witness pair (%d,%d) is not a graph edge"
                    cert.cluster v p;
                if cert.strong && not (Hashtbl.mem member v && Hashtbl.mem member p)
                then
                  fail
                    "cluster %d: strong witness pair (%d,%d) leaves the \
                     cluster"
                    cert.cluster v p)
              w.w_parents;
            let depth = tree_depths ~cluster:cert.cluster w in
            List.iter
              (fun v ->
                if not (Hashtbl.mem depth v) then
                  fail "cluster %d: member %d missing from the witness tree"
                    cert.cluster v)
              cert.members;
            if cert.strong && Hashtbl.length depth <> List.length cert.members
            then
              fail "cluster %d: strong witness tree has non-member nodes"
                cert.cluster;
            let height =
              List.fold_left
                (fun h v -> max h (Hashtbl.find depth v))
                0 cert.members
            in
            if height <> w.w_height then
              fail "cluster %d: witness height claims %d, recomputed %d"
                cert.cluster w.w_height height;
            if cert.diameter_ub <> Some (2 * w.w_height) then
              fail "cluster %d: diameter upper bound is not 2 x height"
                cert.cluster);
        (if cert.diameter_lb >= 0 then begin
           let u, v = cert.lb_pair in
           if not (Hashtbl.mem member u && Hashtbl.mem member v) then
             fail "cluster %d: eccentric pair (%d,%d) not members"
               cert.cluster u v;
           let duv =
             if cert.strong then
               (* member-restricted BFS: O(cluster volume), so the full
                  recheck stays linear across 10^5+ clusters *)
               let bfs = Bfs.restricted_bfs g ~members:member ~source:u in
               match Hashtbl.find_opt bfs v with
               | Some (d, _) -> d
               | None -> -1
             else (Bfs.distances g ~source:u).(v)
           in
           if duv <> cert.diameter_lb then
             fail
               "cluster %d: eccentric pair (%d,%d) is at distance %d, not \
                the claimed %d"
               cert.cluster u v duv cert.diameter_lb
         end);
        match (cert.diameter_lb, cert.diameter_ub) with
        | lb, Some ub when lb > ub ->
            fail "cluster %d: lower bound %d exceeds upper bound %d"
              cert.cluster lb ub
        | _ -> ())
      t.certs;
    Ok ()
  with Reject msg -> Error msg

(* The one source of truth for post-fault validity: certify the labels
   restricted to the survivor subgraph as a carving (non-adjacency is
   the color scan with every color -1) and re-verify the certificate
   against that subgraph alone. Used by Workload.Faults and the chaos
   harness — there is deliberately no second, hand-rolled checker. *)
let check_survivors g ~survivors ~labels =
  let sub, back = Subgraph.induce g survivors in
  let nsub = Graph.n sub in
  let sub_labels =
    Array.init nsub (fun i ->
        let l = labels.(back.(i)) in
        if l < 0 then -1 else l)
  in
  let clustering = Cluster.Clustering.make sub ~cluster_of:sub_labels in
  let carving =
    Cluster.Carving.make clustering ~domain:(Mask.full nsub)
  in
  let t = certify_carving carving in
  (verify sub t, t.dead_fraction)

let max_diameter_lb t =
  List.fold_left
    (fun acc cert ->
      if acc < 0 || cert.diameter_lb < 0 then -1 else max acc cert.diameter_lb)
    0 t.certs

let max_diameter_ub t =
  List.fold_left
    (fun acc cert ->
      match (acc, cert.diameter_ub) with
      | Some a, Some u -> Some (max a u)
      | _ -> None)
    (Some 0) t.certs

let pp_table ?(max_rows = 40) ppf t =
  Format.fprintf ppf "%8s %6s %6s %-7s %7s %7s %7s@." "cluster" "size"
    "color" "witness" "height" "diamLB" "diamUB";
  let shown = ref 0 in
  List.iter
    (fun cert ->
      if !shown < max_rows then begin
        incr shown;
        Format.fprintf ppf "%8d %6d %6s %-7s %7s %7s %7s@." cert.cluster
          (List.length cert.members)
          (if cert.color < 0 then "-" else string_of_int cert.color)
          (if cert.strong then "strong" else "weak")
          (match cert.tree with
          | Some w -> string_of_int w.w_height
          | None -> "-")
          (if cert.diameter_lb < 0 then "-"
           else string_of_int cert.diameter_lb)
          (match cert.diameter_ub with
          | Some u -> string_of_int u
          | None -> "-")
      end)
    t.certs;
  let rest = List.length t.certs - !shown in
  if rest > 0 then Format.fprintf ppf "%8s ... and %d more clusters@." "" rest
