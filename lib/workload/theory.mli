(** The paper's asymptotic formulas (Tables 1 and 2) as evaluable
    functions, used by the benchmark to report measured/formula ratios: if
    an implementation has the claimed growth order, its ratio stays
    roughly constant across the [n] sweep (up to the low-order terms the
    O(·) hides). *)

type row = {
  t_name : string;  (** matches the registry names in {!Algorithms} *)
  diameter : n:int -> epsilon:float -> float;  (** claimed D growth *)
  rounds : n:int -> epsilon:float -> float;  (** claimed rounds growth *)
}

val carving_rows : row list
(** Table 2 claims: ls93 [(log n/ε, log n/ε)], rg20
    [(log³n/ε, log⁶n/ε²)], ggr21 [(log²n/ε, log⁴n/ε²)], mpx
    [(log n/ε, log n/ε)], thm2.2 [(log³n/ε, log⁷n/ε²)], thm3.3
    [(log²n/ε, log¹⁰n/ε²)]. *)

val decomposition_rows : row list
(** Table 1 claims with [ε] fixed to 1/2 (colors are [O(log n)] for every
    polylog row and are checked separately). *)

val find : row list -> string -> row

val ratio : row -> [ `Diameter | `Rounds ] -> n:int -> epsilon:float -> measured:int -> float
(** [measured / formula(n, ε)] — the quantity that should be flat in [n]
    for a shape-correct implementation. *)
