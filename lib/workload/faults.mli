(** Graceful-degradation experiments: the distributed carvings run
    through {!Congest.Reliable} against seeded {!Congest.Fault}
    adversaries (experiment F.FAULT, see EXPERIMENTS.md).

    Each scenario runs one algorithm on one workload graph under an iid
    drop rate plus a chosen number of crash-stop faults, and reports:

    - {b validity} of the output on the {e surviving} subgraph, judged by
      the {!Cluster.Carving} checker (non-adjacency + domain confinement;
      the dead fraction is reported, never hidden behind the check);
    - {b overhead}: outer rounds and messages against the fault-free
      unwrapped baseline;
    - {b recovery}: when crashes corrupt the output (possible for the
      weak-diameter carving, whose convergecast decisions can break), the
      harness re-runs on the survivor-induced subgraph under a drop-only
      adversary and reports the extra rounds — the protocol a real
      deployment would follow after its crash detector fires.

    Every scenario is replayable: the graph, the radii/schedule, and the
    entire fault schedule derive from [seed]. *)

type algorithm = Ls | Weakdiam

type scenario = {
  algorithm : algorithm;
  family : string;  (** a {!Suite} family name *)
  n : int;
  epsilon : float;
  drop : float;  (** iid message drop probability *)
  crashes : int;  (** crash-stop faults, nodes and rounds seeded *)
  seed : int;
}

type row = {
  s : scenario;
  valid : bool;  (** final output valid on survivors (after recovery) *)
  valid_degraded : bool;  (** first (faulty) run already valid *)
  dead_fraction : float;  (** unclustered fraction among survivors *)
  crashed_nodes : int list;
  rounds : int;  (** outer rounds of the faulty run *)
  base_rounds : int;  (** fault-free unwrapped rounds *)
  round_overhead : float;  (** [rounds / base_rounds] *)
  messages : int;  (** frames sent by the wrapped run *)
  base_messages : int;
  max_bits : int;  (** largest frame observed *)
  bandwidth : int;  (** enforced outer budget (inner + header) *)
  dropped : int;
  duplicated : int;
  delayed : int;
  retransmissions : int;
  detected_dead : int;  (** distinct neighbors declared dead by survivors *)
  recovery_rounds : int;  (** 0 when no recovery run was needed *)
}

val run : ?trace:Congest.Trace.sink -> scenario -> row
(** Executes the scenario. The optional sink observes the faulty
    (wrapped) run — not the fault-free baseline or any recovery re-run —
    so its dropped/duplicated/delayed event counts line up with the
    row's fault tallies. @raise Not_found on an unknown family. *)

val sweep :
  ?drops:float list ->
  ?crash_counts:int list ->
  ?seed:int ->
  algorithm ->
  family:string ->
  n:int ->
  epsilon:float ->
  row list
(** Cartesian sweep; defaults [drops = \[0.0; 0.01; 0.05; 0.1\]],
    [crash_counts = \[0; 2\]], [seed = 1]. *)

val csv : row list -> string
(** One line per row, stable column order (see EXPERIMENTS.md F.FAULT). *)

val pp_row : Format.formatter -> row -> unit
