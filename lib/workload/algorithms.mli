(** Registry of every decomposition / carving algorithm in the repository,
    under one uniform signature, keyed by the Table 1 / Table 2 rows they
    reproduce. *)

type kind = Weak | Strong
type model = Deterministic | Randomized

type decomposer = {
  name : string;  (** row key, e.g. "thm2.3" *)
  reference : string;  (** the paper row it reproduces, e.g. "[RG20]" *)
  kind : kind;
  model : model;
  run :
    cost:Congest.Cost.t -> seed:int -> Dsgraph.Graph.t -> Cluster.Decomposition.t;
}

type carver = {
  c_name : string;
  c_reference : string;
  c_kind : kind;
  c_model : model;
  c_run :
    cost:Congest.Cost.t ->
    seed:int ->
    Dsgraph.Graph.t ->
    epsilon:float ->
    Cluster.Carving.t;
}

val decomposers : decomposer list
(** All Table 1 rows: LS93, RG20, GGR21 (weak); MPX/EN16, AGLP89, Gha19,
    greedy-LS93, ABCP96, Theorem 2.1 over LS93, Theorem 2.3, Theorem 3.4
    (strong). *)

val carvers : carver list
(** All Table 2 rows: LS93, RG20, GGR21 (weak); MPX/EN16, Theorem 2.1
    over LS93, Theorem 2.2, Theorem 3.3 (strong). *)

val find_decomposer : string -> decomposer
val find_carver : string -> carver
