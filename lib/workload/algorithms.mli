(** Registry of every decomposition / carving algorithm in the repository,
    under one uniform signature, keyed by the Table 1 / Table 2 rows they
    reproduce.

    Both tables share one polymorphic entry record {!type-t}: the metadata
    fields ([name], [reference], [kind], [model]) are common, and only the
    [run] field's type differs between decomposers and carvers. This
    replaces the former pair of records whose carver half duplicated every
    field under a [c_] prefix. *)

type kind = Weak | Strong
type model = Deterministic | Randomized

type 'run t = {
  name : string;  (** row key, e.g. "thm2.3" *)
  reference : string;  (** the paper row it reproduces, e.g. "[RG20]" *)
  kind : kind;
  model : model;
  run : 'run;
}

type decompose_run =
  cost:Congest.Cost.t -> seed:int -> Dsgraph.Graph.t -> Cluster.Decomposition.t

type carve_run =
  cost:Congest.Cost.t ->
  seed:int ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t

type decomposer = decompose_run t
type carver = carve_run t

val decomposers : decomposer list
(** All Table 1 rows: LS93, RG20, GGR21 (weak); MPX/EN16, AGLP89, Gha19,
    greedy-LS93, ABCP96, Theorem 2.1 over LS93, Theorem 2.3, Theorem 3.4
    (strong). *)

val carvers : carver list
(** All Table 2 rows: LS93, RG20, GGR21 (weak); MPX/EN16, Theorem 2.1
    over LS93, Theorem 2.2, Theorem 3.3 (strong). *)

val find_decomposer : string -> decomposer
(** @raise Not_found on an unknown name. *)

val find_carver : string -> carver
(** @raise Not_found on an unknown name. *)
