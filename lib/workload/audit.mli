(** Per-cluster quality certificates.

    A decomposition or carving row reports aggregate numbers (colors,
    max diameter, dead fraction); an {e audit} turns each claim into an
    explicit, independently checkable witness per cluster:

    - a BFS {b witness tree} — inside the cluster's induced subgraph
      when it is connected (certifying the {e strong} diameter is at
      most [2 * height]), otherwise in the host graph pruned to the
      root-to-member paths (certifying the {e weak} diameter);
    - a double-sweep {b eccentric pair} of members at a witnessed
      distance, lower-bounding the same diameter;
    - the cluster's {b color} (decompositions), so same-color
      adjacency can be refuted by one edge scan;
    - {b dead-node accounting} (carvings): the claimed dead count
      against the domain and the member lists.

    {!verify} re-checks a certificate against the raw graph using only
    graph primitives ([is_edge], [iter_edges], reference BFS) — it
    never consults the clustering structures that produced the
    certificate, so a bug in a decomposition algorithm (or a tampered
    certificate) cannot vouch for itself. The test suite seeds
    corruptions (wrong diameter witness, overlapping colors,
    miscounted dead nodes) and asserts they are rejected. *)

type witness = {
  w_root : int;
  w_parents : (int * int) list;
      (** one [(node, parent)] pair per non-root tree node, sorted;
          every pair is a graph edge *)
  w_height : int;  (** max BFS depth over the cluster's members *)
}

type cert = {
  cluster : int;
  color : int;  (** [-1] in carvings (carved clusters carry no colors) *)
  members : int list;  (** sorted *)
  strong : bool;
      (** the witness tree is confined to the cluster (strong-diameter
          certificate); [false] means host-graph (weak) witnesses *)
  tree : witness option;
      (** [None] only when some member is unreachable even in the host
          graph *)
  diameter_lb : int;
      (** witnessed member distance ([-1] when disconnected) *)
  lb_pair : int * int;
  diameter_ub : int option;  (** [2 * w_height] when a tree exists *)
}

type kind = Decomposition | Carving

type t = {
  kind : kind;
  n : int;
  certs : cert list;  (** by cluster id *)
  num_colors : int;  (** [0] for carvings *)
  domain : int list;  (** sorted; every node for decompositions *)
  dead : int;  (** claimed domain nodes left unclustered *)
  dead_fraction : float;
}

val certify_decomposition : Cluster.Decomposition.t -> t

val certify_carving : Cluster.Carving.t -> t

val cert_of_cluster : Cluster.Clustering.t -> color:int -> int -> cert
(** Certificate of one cluster: strong witnesses when its induced
    subgraph is connected, host-graph (weak) witnesses otherwise.
    Exposed so the repair engine can re-certify {e only} the clusters
    it touched and carry every other certificate over verbatim. *)

val verify : Dsgraph.Graph.t -> t -> (unit, string) result
(** Re-checks every claim against [g] alone: members partition the
    domain (disjoint, in range) and the dead count and fraction are
    recounted; no edge joins two distinct same-color clusters (for
    carvings, where all colors are [-1], this is full cluster
    non-adjacency); every witness tree is a real tree — each pair a
    graph edge, acyclic, rooted at a member, spanning exactly the
    members (strong) or covering all members (weak), with the claimed
    height recomputed from the parent pointers and
    [diameter_ub = 2 * height]; every eccentric pair's distance is
    re-derived by reference BFS and must equal [diameter_lb], and
    [diameter_lb <= diameter_ub] where both exist. *)

val check_survivors :
  Dsgraph.Graph.t ->
  survivors:int list ->
  labels:int array ->
  (unit, string) result * float
(** Post-fault validity, routed through {!verify}: restrict [labels]
    (a per-node cluster label, [< 0] = unclustered) to the subgraph
    induced by [survivors], certify it as a carving, and re-verify the
    certificate against that subgraph alone — so cluster
    non-adjacency and domain confinement on the survivor subgraph
    have exactly one checker. Also returns the dead fraction among
    survivors. *)

val max_diameter_lb : t -> int
(** Largest witnessed lower bound over clusters ([-1] if any cluster
    is disconnected for its metric). *)

val max_diameter_ub : t -> int option
(** Largest certified upper bound; [None] when some cluster has no
    witness tree. *)

val pp_table : ?max_rows:int -> Format.formatter -> t -> unit
(** Cluster-by-cluster table (size, color, witness kind, height,
    diameter bounds); rows beyond [max_rows] (default 40) are
    summarized in a trailing "... and k more clusters" line. *)
