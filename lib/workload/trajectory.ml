type entry = {
  name : string;
  rounds : int;
  messages : int;
  max_bits : int;
  phases : int;
  seconds : float;
  seconds_mad : float;
  minor_words_per_node : float;
  peak_heap_mb : float;
}

let snapshot_json ?fingerprint ~time entries =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "{\"time\":%.0f," time);
  (match fingerprint with
  | Some fp ->
      Buffer.add_string buf
        (Printf.sprintf "\"fingerprint\":%s," (Stats.fingerprint_json fp))
  | None -> ());
  Buffer.add_string buf "\"workloads\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      (* "seconds" stays first so prefix-scanning parsers (num_field
         matches the first occurrence) keep reading the median, not
         "seconds_median"/"seconds_mad" *)
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"rounds\":%d,\"messages\":%d,\"max_bits\":%d,\"phases\":%d,\"seconds\":%.4f,\"seconds_median\":%.4f,\"seconds_mad\":%.6f,\"minor_words_per_node\":%.1f,\"peak_heap_mb\":%.1f}"
           e.name e.rounds e.messages e.max_bits e.phases e.seconds e.seconds
           e.seconds_mad e.minor_words_per_node e.peak_heap_mb))
    entries;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* a snapshot line must be a balanced one-line object mentioning
   "workloads"; the array delimiter lines '[' / ']' are structure, not
   snapshots, and anything else is malformed *)
let balanced_object line =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    line;
  !ok && !depth = 0

(* the trajectory file is a JSON array with exactly one snapshot object
   per line, so appending = collect the '{'-lines and rewrite *)
let read_snapshot_lines ?(warn = fun ~line_number:_ _ -> ()) path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         incr lineno;
         if String.length line > 0 then
           if line.[0] = '{' then begin
             let line =
               if line.[String.length line - 1] = ',' then
                 String.sub line 0 (String.length line - 1)
               else line
             in
             if balanced_object line then lines := line :: !lines
             else warn ~line_number:!lineno line
           end
           else if line <> "[" && line <> "]" then
             warn ~line_number:!lineno line
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  end

let write path lines =
  let oc = open_out path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" lines);
  output_string oc "\n]\n";
  close_out oc

(* just enough JSON scanning for our own one-line snapshots: the
   workload objects are flat, so each runs from a {"name": marker to the
   next '}' *)
let index_of_sub s pos sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go pos

let workload_objs line =
  let rec go pos acc =
    match index_of_sub line pos "{\"name\":" with
    | None -> List.rev acc
    | Some i -> (
        match String.index_from_opt line i '}' with
        | None -> List.rev acc
        | Some j -> go (j + 1) (String.sub line i (j - i + 1) :: acc))
  in
  go 0 []

let str_field field obj =
  match index_of_sub obj 0 ("\"" ^ field ^ "\":\"") with
  | None -> None
  | Some i -> (
      let start = i + String.length field + 4 in
      match String.index_from_opt obj start '"' with
      | None -> None
      | Some j -> Some (String.sub obj start (j - start)))

let num_field field obj =
  match index_of_sub obj 0 ("\"" ^ field ^ "\":") with
  | None -> None
  | Some i ->
      let start = i + String.length field + 3 in
      let j = ref start in
      let len = String.length obj in
      while
        !j < len
        && (match obj.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
           | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub obj start (!j - start))

(* the fingerprint object is flat, so it runs from its marker to the
   next '}' *)
let fingerprint_of_line line =
  match index_of_sub line 0 "\"fingerprint\":{" with
  | None -> None
  | Some i -> (
      let start = i + String.length "\"fingerprint\":" in
      match String.index_from_opt line start '}' with
      | None -> None
      | Some j -> Some (String.sub line start (j - start + 1)))

type regression = {
  r_name : string;
  r_metric : string;
  r_old : float;
  r_new : float;
  r_pct : float;
}

let default_metrics =
  [
    "rounds";
    "messages";
    "max_bits";
    "seconds";
    "minor_words_per_node";
    "peak_heap_mb";
  ]

let compare_lines ?(metrics = default_metrics) ?(k = 3.0) ~old_line ~new_line
    () =
  let olds = workload_objs old_line and news = workload_objs new_line in
  let flagged = ref [] in
  List.iter
    (fun nobj ->
      match str_field "name" nobj with
      | None -> ()
      | Some name -> (
          match
            List.find_opt (fun o -> str_field "name" o = Some name) olds
          with
          | None -> ()  (* newly-added row: nothing to diff against *)
          | Some oobj ->
              List.iter
                (fun metric ->
                  match (num_field metric oobj, num_field metric nobj) with
                  | Some ov, Some nv when ov > 0.0 ->
                      (* noisy metrics carry a recorded "<metric>_mad"
                         column; the gate widens to max(10%, k*MAD), and
                         metrics without one keep the pure 10% gate *)
                      let mad_field = metric ^ "_mad" in
                      let mad =
                        Float.max
                          (Option.value (num_field mad_field oobj) ~default:0.0)
                          (Option.value (num_field mad_field nobj) ~default:0.0)
                      in
                      (* seconds additionally needs to clear an absolute
                         floor (as in {!Diff}): sub-millisecond headline
                         jitter on the fast workloads never flags *)
                      let floor =
                        if metric = "seconds" then 0.005 else 0.0
                      in
                      if
                        Stats.exceeds ~k ~mad ~baseline:ov nv
                        && nv -. ov > floor
                      then
                        flagged :=
                          {
                            r_name = name;
                            r_metric = metric;
                            r_old = ov;
                            r_new = nv;
                            r_pct = 100.0 *. (nv -. ov) /. ov;
                          }
                          :: !flagged
                  | _ -> ())
                metrics))
    news;
  List.rev !flagged

type verdict =
  | Regressions of regression list
  | Incomparable of { old_fp : string; new_fp : string }

let compare_snapshots ?metrics ?k ~old_line ~new_line () =
  match (fingerprint_of_line old_line, fingerprint_of_line new_line) with
  | Some old_fp, Some new_fp when old_fp <> new_fp ->
      Incomparable { old_fp; new_fp }
  | _ -> Regressions (compare_lines ?metrics ?k ~old_line ~new_line ())

let regression_line r =
  Printf.sprintf "regression: %s %s: %g -> %g (+%.1f%%)" r.r_name r.r_metric
    r.r_old r.r_new r.r_pct
