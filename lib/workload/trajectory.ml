type entry = {
  name : string;
  rounds : int;
  messages : int;
  max_bits : int;
  phases : int;
  seconds : float;
  minor_words_per_node : float;
  peak_heap_mb : float;
}

let snapshot_json ~time entries =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "{\"time\":%.0f,\"workloads\":[" time);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%S,\"rounds\":%d,\"messages\":%d,\"max_bits\":%d,\"phases\":%d,\"seconds\":%.4f,\"minor_words_per_node\":%.1f,\"peak_heap_mb\":%.1f}"
           e.name e.rounds e.messages e.max_bits e.phases e.seconds
           e.minor_words_per_node e.peak_heap_mb))
    entries;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* the trajectory file is a JSON array with exactly one snapshot object
   per line, so appending = collect the '{'-lines and rewrite *)
let read_snapshot_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if String.length line > 0 && line.[0] = '{' then begin
           let line =
             if line.[String.length line - 1] = ',' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           lines := line :: !lines
         end
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  end

let write path lines =
  let oc = open_out path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" lines);
  output_string oc "\n]\n";
  close_out oc

(* just enough JSON scanning for our own one-line snapshots: the
   workload objects are flat, so each runs from a {"name": marker to the
   next '}' *)
let index_of_sub s pos sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go pos

let workload_objs line =
  let rec go pos acc =
    match index_of_sub line pos "{\"name\":" with
    | None -> List.rev acc
    | Some i -> (
        match String.index_from_opt line i '}' with
        | None -> List.rev acc
        | Some j -> go (j + 1) (String.sub line i (j - i + 1) :: acc))
  in
  go 0 []

let str_field field obj =
  match index_of_sub obj 0 ("\"" ^ field ^ "\":\"") with
  | None -> None
  | Some i -> (
      let start = i + String.length field + 4 in
      match String.index_from_opt obj start '"' with
      | None -> None
      | Some j -> Some (String.sub obj start (j - start)))

let num_field field obj =
  match index_of_sub obj 0 ("\"" ^ field ^ "\":") with
  | None -> None
  | Some i ->
      let start = i + String.length field + 3 in
      let j = ref start in
      let len = String.length obj in
      while
        !j < len
        && (match obj.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
           | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub obj start (!j - start))

type regression = {
  r_name : string;
  r_metric : string;
  r_old : float;
  r_new : float;
  r_pct : float;
}

let default_metrics =
  [
    "rounds";
    "messages";
    "max_bits";
    "seconds";
    "minor_words_per_node";
    "peak_heap_mb";
  ]

let compare_lines ?(metrics = default_metrics) ~old_line ~new_line () =
  let olds = workload_objs old_line and news = workload_objs new_line in
  let flagged = ref [] in
  List.iter
    (fun nobj ->
      match str_field "name" nobj with
      | None -> ()
      | Some name -> (
          match
            List.find_opt (fun o -> str_field "name" o = Some name) olds
          with
          | None -> ()  (* newly-added row: nothing to diff against *)
          | Some oobj ->
              List.iter
                (fun metric ->
                  match (num_field metric oobj, num_field metric nobj) with
                  | Some ov, Some nv when ov > 0.0 && nv > ov *. 1.10 ->
                      flagged :=
                        {
                          r_name = name;
                          r_metric = metric;
                          r_old = ov;
                          r_new = nv;
                          r_pct = 100.0 *. (nv -. ov) /. ov;
                        }
                        :: !flagged
                  | _ -> ())
                metrics))
    news;
  List.rev !flagged

let regression_line r =
  Printf.sprintf "regression: %s %s: %g -> %g (+%.1f%%)" r.r_name r.r_metric
    r.r_old r.r_new r.r_pct
