type row = {
  t_name : string;
  diameter : n:int -> epsilon:float -> float;
  rounds : n:int -> epsilon:float -> float;
}

let lg ~n = Float.max 1.0 (log (float_of_int n) /. log 2.0)

let pow_log ~n k ~epsilon j =
  (lg ~n ** float_of_int k) /. (epsilon ** float_of_int j)

let carving_rows =
  [
    {
      t_name = "ls93";
      diameter = (fun ~n ~epsilon -> pow_log ~n 1 ~epsilon 1);
      rounds = (fun ~n ~epsilon -> pow_log ~n 1 ~epsilon 1);
    };
    {
      t_name = "rg20";
      diameter = (fun ~n ~epsilon -> pow_log ~n 3 ~epsilon 1);
      rounds = (fun ~n ~epsilon -> pow_log ~n 6 ~epsilon 2);
    };
    {
      t_name = "ggr21";
      diameter = (fun ~n ~epsilon -> pow_log ~n 2 ~epsilon 1);
      rounds = (fun ~n ~epsilon -> pow_log ~n 4 ~epsilon 2);
    };
    {
      t_name = "mpx";
      diameter = (fun ~n ~epsilon -> pow_log ~n 1 ~epsilon 1);
      rounds = (fun ~n ~epsilon -> pow_log ~n 1 ~epsilon 1);
    };
    {
      t_name = "thm2.1+ls";
      diameter = (fun ~n ~epsilon -> pow_log ~n 2 ~epsilon 1);
      rounds = (fun ~n ~epsilon -> pow_log ~n 3 ~epsilon 1);
    };
    {
      t_name = "thm2.2";
      diameter = (fun ~n ~epsilon -> pow_log ~n 3 ~epsilon 1);
      rounds = (fun ~n ~epsilon -> pow_log ~n 7 ~epsilon 2);
    };
    {
      t_name = "thm3.3";
      diameter = (fun ~n ~epsilon -> pow_log ~n 2 ~epsilon 1);
      rounds = (fun ~n ~epsilon -> pow_log ~n 10 ~epsilon 2);
    };
  ]

(* Table 1 rows: the decomposition repeats the carving O(log n) times with
   eps = 1/2, multiplying rounds by one more log factor. *)
let decomposition_rows =
  [
    {
      t_name = "ls93";
      diameter = (fun ~n ~epsilon:_ -> lg ~n);
      rounds = (fun ~n ~epsilon:_ -> pow_log ~n 2 ~epsilon:1.0 0);
    };
    {
      t_name = "rg20";
      diameter = (fun ~n ~epsilon:_ -> pow_log ~n 3 ~epsilon:1.0 0);
      rounds = (fun ~n ~epsilon:_ -> pow_log ~n 7 ~epsilon:1.0 0);
    };
    {
      t_name = "ggr21";
      diameter = (fun ~n ~epsilon:_ -> pow_log ~n 2 ~epsilon:1.0 0);
      rounds = (fun ~n ~epsilon:_ -> pow_log ~n 5 ~epsilon:1.0 0);
    };
    {
      t_name = "mpx";
      diameter = (fun ~n ~epsilon:_ -> lg ~n);
      rounds = (fun ~n ~epsilon:_ -> pow_log ~n 2 ~epsilon:1.0 0);
    };
    {
      t_name = "thm2.1+ls";
      diameter = (fun ~n ~epsilon:_ -> pow_log ~n 2 ~epsilon:1.0 0);
      rounds = (fun ~n ~epsilon:_ -> pow_log ~n 4 ~epsilon:1.0 0);
    };
    {
      t_name = "thm2.3";
      diameter = (fun ~n ~epsilon:_ -> pow_log ~n 3 ~epsilon:1.0 0);
      rounds = (fun ~n ~epsilon:_ -> pow_log ~n 8 ~epsilon:1.0 0);
    };
    {
      t_name = "thm3.4";
      diameter = (fun ~n ~epsilon:_ -> pow_log ~n 2 ~epsilon:1.0 0);
      rounds = (fun ~n ~epsilon:_ -> pow_log ~n 11 ~epsilon:1.0 0);
    };
  ]

let find rows name = List.find (fun r -> r.t_name = name) rows

let ratio row which ~n ~epsilon ~measured =
  let formula =
    match which with
    | `Diameter -> row.diameter ~n ~epsilon
    | `Rounds -> row.rounds ~n ~epsilon
  in
  float_of_int measured /. Float.max formula 1e-9
