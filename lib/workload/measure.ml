open Dsgraph

type decomp_row = {
  algorithm : string;
  reference : string;
  kind : Algorithms.kind;
  model : Algorithms.model;
  family : string;
  n : int;
  m : int;
  colors : int;
  strong_diameter : int option;
  weak_diameter : int;
  rounds : int;
  messages : int;
  max_message_bits : int;
  valid : bool;
  seconds : float;
  trace : Congest.Trace.sink option;
}

type carve_row = {
  algorithm : string;
  reference : string;
  kind : Algorithms.kind;
  family : string;
  n : int;
  epsilon : float;
  strong_diameter : int option;
  weak_diameter : int;
  dead_fraction : float;
  rounds : int;
  max_message_bits : int;
  valid : bool;
  seconds : float;
  trace : Congest.Trace.sink option;
}

(* the clustering estimators use -1 as "no strong diameter exists" *)
let diameter_opt d = if d < 0 then None else Some d

let decomposition_result ?(seed = 42) ?trace (d : Algorithms.decomposer)
    family ~n : decomp_row * Cluster.Decomposition.t * Graph.t =
  let g = family.Suite.build ~seed ~n in
  let cost = Congest.Cost.create ?trace () in
  let t0 = Congest.Resource.now () in
  let decomp = d.run ~cost ~seed g in
  let seconds = Congest.Resource.now () -. t0 in
  let clustering = Cluster.Decomposition.clustering decomp in
  let colors = Cluster.Decomposition.num_colors decomp in
  let strong_diameter =
    diameter_opt (Cluster.Clustering.max_strong_diameter_estimate clustering)
  in
  let weak_diameter = Cluster.Clustering.max_weak_diameter_estimate clustering in
  let valid =
    match Cluster.Decomposition.check decomp with
    | Ok () -> (
        match d.kind with
        | Algorithms.Weak -> weak_diameter >= 0
        | Algorithms.Strong -> strong_diameter <> None)
    | Error _ -> false
  in
  ( {
      algorithm = d.name;
      reference = d.reference;
      kind = d.kind;
      model = d.model;
      family = family.Suite.name;
      n = Graph.n g;
      m = Graph.m g;
      colors;
      strong_diameter;
      weak_diameter;
      rounds = Congest.Cost.rounds cost;
      messages = Congest.Cost.messages cost;
      max_message_bits = Congest.Cost.max_message_bits cost;
      valid;
      seconds;
      trace;
    },
    decomp,
    g )

let decomposition_row ?seed ?trace d family ~n : decomp_row =
  let row, _, _ = decomposition_result ?seed ?trace d family ~n in
  row

(* each sample re-runs the whole workload; the trace sink (if any) is
   only attached to the last run so its event stream stays that of a
   single execution *)
let decomposition_row_sampled ?seed ?trace ?(plan = Stats.quick_plan) d family
    ~n : decomp_row * Stats.summary =
  for _ = 1 to plan.warmup do
    ignore (decomposition_row ?seed d family ~n)
  done;
  let k = max 1 plan.samples in
  let rows =
    List.init k (fun i ->
        if plan.settle then Stats.settle ();
        let trace = if i = k - 1 then trace else None in
        decomposition_row ?seed ?trace d family ~n)
  in
  let last = List.nth rows (k - 1) in
  (last, Stats.summarize (List.map (fun (r : decomp_row) -> r.seconds) rows))

let carving_result ?(seed = 42) ?trace (c : Algorithms.carver) family ~n
    ~epsilon : carve_row * Cluster.Carving.t * Graph.t =
  let g = family.Suite.build ~seed ~n in
  let cost = Congest.Cost.create ?trace () in
  let t0 = Congest.Resource.now () in
  let carving = c.run ~cost ~seed g ~epsilon in
  let seconds = Congest.Resource.now () -. t0 in
  let clustering = carving.Cluster.Carving.clustering in
  let strong_diameter =
    diameter_opt (Cluster.Clustering.max_strong_diameter_estimate clustering)
  in
  let weak_diameter = Cluster.Clustering.max_weak_diameter_estimate clustering in
  let valid =
    match c.kind with
    | Algorithms.Weak -> (
        match Cluster.Carving.check_weak ~epsilon carving with
        | Ok () -> weak_diameter >= 0
        | Error _ -> false)
    | Algorithms.Strong -> (
        match Cluster.Carving.check_strong ~epsilon carving with
        | Ok () -> true
        | Error _ -> false)
  in
  ( {
      algorithm = c.name;
      reference = c.reference;
      kind = c.kind;
      family = family.Suite.name;
      n = Graph.n g;
      epsilon;
      strong_diameter;
      weak_diameter;
      dead_fraction = Cluster.Carving.dead_fraction carving;
      rounds = Congest.Cost.rounds cost;
      max_message_bits = Congest.Cost.max_message_bits cost;
      valid;
      seconds;
      trace;
    },
    carving,
    g )

let carving_row ?seed ?trace c family ~n ~epsilon : carve_row =
  let row, _, _ = carving_result ?seed ?trace c family ~n ~epsilon in
  row

let kind_label = function Algorithms.Weak -> "weak" | Algorithms.Strong -> "strong"

let model_label = function
  | Algorithms.Deterministic -> "det"
  | Algorithms.Randomized -> "rand"

(* table cell / CSV cell for an optional diameter *)
let diam_cell = function Some d -> string_of_int d | None -> "-"
let diam_csv = function Some d -> string_of_int d | None -> "NA"

let pp_decomp_table fmt rows =
  Format.fprintf fmt
    "%-10s %-6s %-5s %-9s %6s %7s %7s %6s %6s %10s %8s %6s %8s@."
    "algo" "kind" "model" "family" "n" "m" "colors" "sDiam" "wDiam" "rounds"
    "maxbits" "valid" "secs";
  List.iter
    (fun (r : decomp_row) ->
      Format.fprintf fmt
        "%-10s %-6s %-5s %-9s %6d %7d %7d %6s %6d %10d %8d %6s %8.2f@."
        r.algorithm (kind_label r.kind) (model_label r.model) r.family r.n r.m
        r.colors
        (diam_cell r.strong_diameter)
        r.weak_diameter r.rounds r.max_message_bits
        (if r.valid then "ok" else "FAIL")
        r.seconds)
    rows

let pp_carve_table fmt rows =
  Format.fprintf fmt "%-10s %-6s %-9s %6s %6s %6s %6s %6s %10s %8s %6s %8s@."
    "algo" "kind" "family" "n" "eps" "sDiam" "wDiam" "dead%" "rounds" "maxbits"
    "valid" "secs";
  List.iter
    (fun (r : carve_row) ->
      Format.fprintf fmt
        "%-10s %-6s %-9s %6d %6.3f %6s %6d %6.1f %10d %8d %6s %8.2f@."
        r.algorithm (kind_label r.kind) r.family r.n r.epsilon
        (diam_cell r.strong_diameter)
        r.weak_diameter
        (100.0 *. r.dead_fraction)
        r.rounds r.max_message_bits
        (if r.valid then "ok" else "FAIL")
        r.seconds)
    rows

let decomp_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "algorithm,kind,model,family,n,m,colors,strong_diameter,weak_diameter,rounds,messages,max_message_bits,valid,seconds\n";
  List.iter
    (fun (r : decomp_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%d,%d,%d,%s,%d,%d,%d,%d,%b,%.4f\n"
           r.algorithm (kind_label r.kind) (model_label r.model) r.family r.n
           r.m r.colors
           (diam_csv r.strong_diameter)
           r.weak_diameter r.rounds r.messages r.max_message_bits r.valid
           r.seconds))
    rows;
  Buffer.contents buf

let carve_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "algorithm,kind,family,n,epsilon,strong_diameter,weak_diameter,dead_fraction,rounds,max_message_bits,valid,seconds\n";
  List.iter
    (fun (r : carve_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%.4f,%s,%d,%.4f,%d,%d,%b,%.4f\n"
           r.algorithm (kind_label r.kind) r.family r.n r.epsilon
           (diam_csv r.strong_diameter)
           r.weak_diameter r.dead_fraction r.rounds r.max_message_bits
           r.valid r.seconds))
    rows;
  Buffer.contents buf
