open Dsgraph
module CR = Cluster.Repair

type session = {
  state : CR.state;
  clustering : Cluster.Clustering.t;
  colors : int array;
  base_domain : bool array;
  audit : Audit.t;
}

let start_decomposition d =
  let clustering = Cluster.Decomposition.clustering d in
  let g = Cluster.Clustering.graph clustering in
  let k = Cluster.Clustering.num_clusters clustering in
  {
    state = CR.init g;
    clustering;
    colors = Array.init k (Cluster.Decomposition.color_of_cluster d);
    base_domain = Array.make (Graph.n g) true;
    audit = Audit.certify_decomposition d;
  }

let start_carving cv =
  let clustering = cv.Cluster.Carving.clustering in
  let g = Cluster.Clustering.graph clustering in
  let k = Cluster.Clustering.num_clusters clustering in
  {
    state = CR.init g;
    clustering;
    colors = Array.make k (-1);
    base_domain = Array.init (Graph.n g) (Mask.mem cv.Cluster.Carving.domain);
    audit = Audit.certify_carving cv;
  }

type cert = {
  c_delta : CR.delta;
  c_halo : int;
  c_dirty : int list;
  c_carried : (int * int) list;
  c_fresh : int list;
  c_audit : Audit.t;
}

type report = {
  dirty_clusters : int;
  touched_nodes : int;
  touched_fraction : float;
  fresh_clusters : int;
  carried_clusters : int;
  seconds : float;
  cert : cert;
}

(* by-cluster-id array view of an audit's certificates *)
let certs_by_id audit k =
  let dummy = List.hd audit.Audit.certs in
  let a = Array.make k dummy in
  List.iter (fun c -> a.(c.Audit.cluster) <- c) audit.Audit.certs;
  a

let repair ?(halo = 0) ~recarve session d =
  let t0 = Congest.Resource.now () in
  let st = CR.step session.state d in
  let k_old = Cluster.Clustering.num_clusters session.clustering in
  let weak =
    if k_old = 0 then fun _ -> false
    else begin
      let certs = certs_by_id session.audit k_old in
      fun c -> not certs.(c).Audit.strong
    end
  in
  let pl =
    CR.plan ~halo ~weak
      ~color:(fun c -> session.colors.(c))
      ~old:session.clustering st d
  in
  let kind =
    match session.audit.Audit.kind with
    | Audit.Decomposition -> CR.Decomposition
    | Audit.Carving -> CR.Carving
  in
  let m =
    CR.merge ~kind ~old:session.clustering
      ~color_of:(fun c -> session.colors.(c))
      ~plan:pl ~state:st ~recarve
  in
  let clustering = m.CR.clustering in
  let colors = m.CR.colors in
  let k_new = Cluster.Clustering.num_clusters clustering in
  let carried = ref [] in
  Array.iteri
    (fun o nw -> if nw >= 0 then carried := (o, nw) :: !carried)
    m.CR.old_to_new;
  let carried = List.rev !carried in
  let from_old = Array.make (max k_new 1) (-1) in
  List.iter (fun (o, nw) -> from_old.(nw) <- o) carried;
  (* untouched certificates are carried over verbatim (only the cluster
     id is renumbered); touched clusters are the only ones re-certified *)
  let old_certs =
    if k_old = 0 then [||] else certs_by_id session.audit k_old
  in
  let certs =
    List.init k_new (fun c ->
        let o = from_old.(c) in
        if o >= 0 then { (old_certs.(o)) with Audit.cluster = c }
        else Audit.cert_of_cluster clustering ~color:colors.(c) c)
  in
  let g = CR.graph st in
  let n = Graph.n g in
  (* audit domain: the original domain's survivors, plus anything the
     merge clustered (for decompositions this is exactly the survivor
     set; for partial-domain carvings a halo never reaches outside) *)
  let domain =
    List.filter
      (fun v ->
        (session.base_domain.(v) && not (CR.is_down st v))
        || Cluster.Clustering.cluster_of clustering v >= 0)
      (List.init n Fun.id)
  in
  let dead = List.length domain - Cluster.Clustering.clustered_count clustering in
  let num_colors =
    match kind with
    | CR.Carving -> 0
    | CR.Decomposition -> 1 + Array.fold_left max (-1) colors
  in
  let audit =
    {
      Audit.kind = session.audit.Audit.kind;
      n;
      certs;
      num_colors;
      domain;
      dead;
      dead_fraction =
        float_of_int dead /. float_of_int (max 1 (List.length domain));
    }
  in
  let cert =
    {
      c_delta = d;
      c_halo = halo;
      c_dirty = pl.CR.dirty;
      c_carried = carried;
      c_fresh = m.CR.fresh;
      c_audit = audit;
    }
  in
  let survivor_count = Mask.count (CR.survivors st) in
  let session' =
    {
      state = st;
      clustering;
      colors;
      base_domain = session.base_domain;
      audit;
    }
  in
  ( session',
    {
      dirty_clusters = List.length pl.CR.dirty;
      touched_nodes = m.CR.touched_nodes;
      touched_fraction =
        float_of_int m.CR.touched_nodes /. float_of_int (max 1 survivor_count);
      fresh_clusters = List.length m.CR.fresh;
      carried_clusters = List.length carried;
      seconds = Congest.Resource.now () -. t0;
      cert;
    } )

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let verify_cert ~prev ~post c =
  try
    let k_old = Cluster.Clustering.num_clusters prev.clustering in
    let olds = c.c_dirty @ List.map fst c.c_carried in
    if List.sort compare olds <> List.init k_old Fun.id then
      bad "dirty + carried do not partition the %d previous clusters" k_old;
    let k_new = List.length c.c_audit.Audit.certs in
    let news = c.c_fresh @ List.map snd c.c_carried in
    if List.sort compare news <> List.init k_new Fun.id then
      bad "fresh + carried do not partition the %d repaired clusters" k_new;
    let old_certs =
      if k_old = 0 then [||] else certs_by_id prev.audit k_old
    in
    let new_certs =
      if k_new = 0 then [||] else certs_by_id c.c_audit k_new
    in
    List.iter
      (fun (o, nw) ->
        if o < 0 || o >= k_old || nw < 0 || nw >= k_new then
          bad "carried pair (%d,%d) out of range" o nw;
        if { (old_certs.(o)) with Audit.cluster = nw } <> new_certs.(nw) then
          bad "carried cluster %d -> %d: certificate not identical" o nw)
      c.c_carried;
    match Audit.verify post c.c_audit with
    | Ok () -> Ok ()
    | Error e -> Error (Printf.sprintf "merged audit rejected: %s" e)
  with Bad s -> Error s

(* ------------------------------------------------------------------ *)
(* Re-carve adapters over the algorithm registry                       *)
(* ------------------------------------------------------------------ *)

(* The re-carve region is rarely connected, and the registered engines
   are written for (and measured on) connected inputs — run them per
   component and renumber the labels densely. Singleton components skip
   the engine entirely. *)
let componentwise engine sub =
  let n = Graph.n sub in
  let labels = Array.make n (-1) in
  let colors = ref [] in
  let next = ref 0 in
  List.iter
    (fun comp ->
      match comp with
      | [ v ] ->
          labels.(v) <- !next;
          colors := 0 :: !colors;
          incr next
      | comp ->
          let csub, back = Subgraph.induce sub comp in
          let cl_labels, cl_colors = engine csub in
          Array.iteri
            (fun i l -> if l >= 0 then labels.(back.(i)) <- !next + l)
            cl_labels;
          Array.iter (fun col -> colors := col :: !colors) cl_colors;
          next := !next + Array.length cl_colors)
    (Components.components sub);
  (labels, Array.of_list (List.rev !colors))

let recarve_decomposer (a : Algorithms.decomposer) ~seed sub =
  componentwise
    (fun csub ->
      let d = a.Algorithms.run ~cost:(Congest.Cost.create ()) ~seed csub in
      let cl = Cluster.Decomposition.clustering d in
      let k = Cluster.Clustering.num_clusters cl in
      ( Array.init (Graph.n csub) (Cluster.Clustering.cluster_of cl),
        Array.init k (Cluster.Decomposition.color_of_cluster d) ))
    sub

let recarve_carver (a : Algorithms.carver) ~seed ~epsilon sub =
  componentwise
    (fun csub ->
      let cv =
        a.Algorithms.run ~cost:(Congest.Cost.create ()) ~seed csub ~epsilon
      in
      let cl = cv.Cluster.Carving.clustering in
      let k = Cluster.Clustering.num_clusters cl in
      ( Array.init (Graph.n csub) (Cluster.Clustering.cluster_of cl),
        Array.make k (-1) ))
    sub
