let metric_columns =
  [
    ("seconds", "seconds");
    ("rounds", "rounds");
    ("messages", "messages");
    ("minor_words_per_node", "minor words / node");
    ("peak_heap_mb", "peak heap MB");
  ]

let html_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_compact v =
  let a = Float.abs v in
  if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if a >= 1e4 then Printf.sprintf "%.1fk" (v /. 1e3)
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

(* panel geometry: a small sparkline with room for the last-value label *)
let svg_w = 240.0
let svg_h = 56.0
let pad_l = 6.0
let pad_r = 58.0
let pad_v = 8.0

let style =
  {css|
  :root {
    color-scheme: light;
    --page:        #f9f9f7;
    --surface-1:   #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --muted:       #898781;
    --gridline:    #e1e0d9;
    --baseline:    #c3c2b7;
    --series-1:    #2a78d6;
    --critical:    #d03b3b;
    --border:      rgba(11, 11, 11, 0.10);
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --page:        #0d0d0d;
      --surface-1:   #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --muted:       #898781;
      --gridline:    #2c2c2a;
      --baseline:    #383835;
      --series-1:    #3987e5;
      --critical:    #d03b3b;
      --border:      rgba(255, 255, 255, 0.10);
    }
  }
  body {
    background: var(--page);
    color: var(--text-primary);
    font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
    margin: 24px;
  }
  h1 { font-size: 18px; margin: 0 0 4px 0; }
  .meta { color: var(--text-secondary); font-size: 12px; margin-bottom: 18px; }
  .legend { color: var(--muted); font-size: 12px; margin-bottom: 14px; }
  .workload { margin-bottom: 20px; }
  .workload h2 { font-size: 13px; margin: 0 0 6px 0; }
  .panels { display: flex; flex-wrap: wrap; gap: 10px; }
  .panel {
    background: var(--surface-1);
    border: 1px solid var(--border);
    border-radius: 6px;
    padding: 8px 10px 6px 10px;
  }
  .panel .label { color: var(--muted); font-size: 11px; margin-bottom: 2px; }
  .lastval { font-variant-numeric: tabular-nums; fill: var(--text-secondary); font-size: 11px; }
  .spark { stroke: var(--series-1); fill: none; stroke-width: 2; stroke-linejoin: round; }
  .base { stroke: var(--baseline); stroke-width: 1; }
  .fpmark { stroke: var(--muted); stroke-width: 1; stroke-dasharray: 3 3; }
  .dot-last { fill: var(--series-1); }
  .dot-reg { fill: var(--critical); }
  .hit { fill: transparent; }
  details { margin-top: 20px; }
  summary { color: var(--text-secondary); font-size: 13px; cursor: pointer; }
  table { border-collapse: collapse; font-size: 12px; margin-top: 8px; }
  th, td {
    border-bottom: 1px solid var(--gridline);
    padding: 4px 10px;
    text-align: right;
    font-variant-numeric: tabular-nums;
  }
  th:first-child, td:first-child { text-align: left; }
  th { color: var(--muted); font-weight: 500; }
  .regnote { color: var(--critical); font-size: 12px; margin-top: 6px; }
|css}

type point = { idx : int; value : float }

let sparkline buf ~series ~fp_changes ~flagged ~times =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_snaps = Array.length times in
  let xs i =
    if n_snaps <= 1 then pad_l +. ((svg_w -. pad_l -. pad_r) /. 2.0)
    else
      pad_l
      +. float_of_int i *. (svg_w -. pad_l -. pad_r) /. float_of_int (n_snaps - 1)
  in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) p -> (Float.min lo p.value, Float.max hi p.value))
      (infinity, neg_infinity) series
  in
  let ys v =
    if hi <= lo then svg_h /. 2.0
    else svg_h -. pad_v -. ((v -. lo) /. (hi -. lo) *. (svg_h -. (2.0 *. pad_v)))
  in
  add "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" role=\"img\">"
    svg_w svg_h svg_w svg_h;
  add "<line class=\"base\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>"
    pad_l (svg_h -. pad_v +. 2.0)
    (svg_w -. pad_r)
    (svg_h -. pad_v +. 2.0);
  List.iter
    (fun (i, note) ->
      add
        "<line class=\"fpmark\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" \
         y2=\"%.1f\"><title>%s</title></line>"
        (xs i) pad_v (xs i)
        (svg_h -. pad_v)
        (html_escape note))
    fp_changes;
  (match series with
  | [] | [ _ ] -> ()
  | _ ->
      add "<polyline class=\"spark\" points=\"";
      List.iter (fun p -> add "%.1f,%.1f " (xs p.idx) (ys p.value)) series;
      add "\"/>");
  (* hover targets bigger than the mark, one per point *)
  List.iter
    (fun p ->
      let t = times.(p.idx) in
      add
        "<circle class=\"hit\" cx=\"%.1f\" cy=\"%.1f\" \
         r=\"7\"><title>snapshot %d (time %.0f): %s</title></circle>"
        (xs p.idx) (ys p.value) (p.idx + 1) t (fmt_compact p.value))
    series;
  List.iter
    (fun (p, note) ->
      add
        "<circle class=\"dot-reg\" cx=\"%.1f\" cy=\"%.1f\" \
         r=\"3.5\"><title>%s</title></circle>"
        (xs p.idx) (ys p.value) (html_escape note))
    flagged;
  (match List.rev series with
  | last :: _ ->
      add "<circle class=\"dot-last\" cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\"/>"
        (xs last.idx) (ys last.value);
      add "<text class=\"lastval\" x=\"%.1f\" y=\"%.1f\">%s</text>"
        (svg_w -. pad_r +. 8.0)
        (ys last.value +. 4.0)
        (html_escape (fmt_compact last.value))
  | [] -> ());
  add "</svg>"

let render ?(title = "Benchmark trajectory") lines =
  let snaps = Array.of_list lines in
  let n_snaps = Array.length snaps in
  let objs = Array.map Trajectory.workload_objs snaps in
  let fps = Array.map Trajectory.fingerprint_of_line snaps in
  let times =
    Array.map
      (fun line -> Option.value (Trajectory.num_field "time" line) ~default:0.0)
      snaps
  in
  let names =
    let seen = Hashtbl.create 16 in
    let order = ref [] in
    Array.iter
      (List.iter (fun obj ->
           match Trajectory.str_field "name" obj with
           | Some name when not (Hashtbl.mem seen name) ->
               Hashtbl.add seen name ();
               order := name :: !order
           | _ -> ()))
      objs;
    List.rev !order
  in
  let value name metric i =
    List.find_opt
      (fun obj -> Trajectory.str_field "name" obj = Some name)
      objs.(i)
    |> Option.map (Trajectory.num_field metric)
    |> Option.join
  in
  (* regression highlights come from the same comparator the CI gate
     uses, run over each consecutive pair; incomparable pairs (the
     fingerprint changed) contribute markers instead of flags *)
  let flagged = Hashtbl.create 16 in
  for i = 1 to n_snaps - 1 do
    match
      Trajectory.compare_snapshots ~old_line:snaps.(i - 1) ~new_line:snaps.(i)
        ()
    with
    | Trajectory.Regressions rs ->
        List.iter
          (fun (r : Trajectory.regression) ->
            Hashtbl.replace flagged
              (r.Trajectory.r_name, r.Trajectory.r_metric, i)
              (Trajectory.regression_line r))
          rs
    | Trajectory.Incomparable _ -> ()
  done;
  let fp_changes =
    List.filter_map
      (fun i ->
        if i > 0 && fps.(i) <> fps.(i - 1) then
          let sha =
            match Option.bind fps.(i) Stats.fingerprint_of_json with
            | Some fp -> fp.Stats.git_sha
            | None -> "unknown"
          in
          Some (i, Printf.sprintf "environment changed at snapshot %d (sha %s)" (i + 1) sha)
        else None)
      (List.init n_snaps (fun i -> i))
  in
  let buf = Buffer.create 16384 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n";
  add "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\"/>\n";
  add "<title>%s</title>\n<style>%s</style>\n</head>\n<body>\n"
    (html_escape title) style;
  add "<h1>%s</h1>\n" (html_escape title);
  let latest_fp =
    if n_snaps = 0 then "no snapshots"
    else
      match Option.bind fps.(n_snaps - 1) Stats.fingerprint_of_json with
      | Some fp -> Format.asprintf "%a" Stats.pp_fingerprint fp
      | None -> "no fingerprint recorded"
  in
  add "<div class=\"meta\">%d snapshots &middot; latest environment: %s</div>\n"
    n_snaps (html_escape latest_fp);
  add
    "<div class=\"legend\">dashed vertical line = environment fingerprint \
     changed; red point = comparator-flagged regression against the previous \
     snapshot (hover any point for its value)</div>\n";
  if n_snaps = 0 then add "<p>The trajectory file has no snapshots yet.</p>\n";
  List.iter
    (fun name ->
      add "<div class=\"workload\">\n<h2>%s</h2>\n<div class=\"panels\">\n"
        (html_escape name);
      let reg_notes = ref [] in
      List.iter
        (fun (metric, label) ->
          let series =
            List.filter_map
              (fun i ->
                Option.map
                  (fun v -> { idx = i; value = v })
                  (value name metric i))
              (List.init n_snaps (fun i -> i))
          in
          let flags =
            List.filter_map
              (fun p ->
                match Hashtbl.find_opt flagged (name, metric, p.idx) with
                | Some note ->
                    reg_notes := note :: !reg_notes;
                    Some (p, note)
                | None -> None)
              series
          in
          add "<div class=\"panel\">\n<div class=\"label\">%s</div>\n"
            (html_escape label);
          sparkline buf ~series ~fp_changes ~flagged:flags ~times;
          add "\n</div>\n")
        metric_columns;
      add "</div>\n";
      List.iter
        (fun note -> add "<div class=\"regnote\">%s</div>\n" (html_escape note))
        (List.rev !reg_notes);
      add "</div>\n")
    names;
  (* the table view: the same data readable without the charts *)
  if n_snaps > 0 then begin
    add "<details>\n<summary>Latest snapshot as a table</summary>\n<table>\n<tr><th>workload</th>";
    List.iter (fun (_, label) -> add "<th>%s</th>" (html_escape label)) metric_columns;
    add "</tr>\n";
    List.iter
      (fun name ->
        add "<tr><td>%s</td>" (html_escape name);
        List.iter
          (fun (metric, _) ->
            match value name metric (n_snaps - 1) with
            | Some v -> add "<td>%s</td>" (html_escape (fmt_compact v))
            | None -> add "<td>-</td>")
          metric_columns;
        add "</tr>\n")
      names;
    add "</table>\n</details>\n"
  end;
  add "</body>\n</html>\n";
  Buffer.contents buf

let write ?title ~path lines =
  let oc = open_out path in
  output_string oc (render ?title lines);
  close_out oc
