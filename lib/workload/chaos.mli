(** Seeded chaos sweeps over the self-healing repair engine.

    A chaos {!spec} names an algorithm, a graph family and a fault
    profile; {!run} builds the graph, runs the algorithm once, then
    drives [steps] seeded fault deltas (crashes, timed revivals, edge
    deletions and insertions) through {!Repair.repair}, asserting after
    every step:

    - the repair certificate passes {!Repair.verify_cert} — carried
      clusters byte-identical, dirty/carried and fresh/carried
      partitions exact, merged audit accepted by the graph-only
      [Audit.verify] on the post-fault graph;
    - decompositions leave no survivor unclustered (carvings are
      additionally cross-checked through [Audit.check_survivors], the
      same verifier the fault sweeps use);
    - the touched-node fraction stays under the spec's bound.

    Each step also times a from-scratch re-run of the same engine on
    the survivor subgraph (including certification), so every row
    carries a repair-cost ratio. Everything is derived from the spec's
    integer seed — two runs of the same spec are identical. *)

type algo = Decomposer of string | Carver of string
(** Registry name (see {!Algorithms.find_decomposer} /
    {!Algorithms.find_carver}). Chaos defaults use strong algorithms:
    weak certificates are invalidated by {e any} delta, so weak
    engines degrade to from-scratch behaviour by design. *)

type spec = {
  algo : algo;
  family : string;
  n : int;
  epsilon : float;  (** carvers only *)
  seed : int;
  steps : int;
  crashes : int;  (** crash-stops injected per step (at most) *)
  revive_prob : float;  (** per down node, per step *)
  edge_dels : int;
  edge_adds : int;
  halo : int;
  max_touched : float;
      (** invariant bound on the per-step touched fraction; [>= 1]
          effectively disables it *)
}

val spec :
  ?epsilon:float ->
  ?steps:int ->
  ?crashes:int ->
  ?revive_prob:float ->
  ?edge_dels:int ->
  ?edge_adds:int ->
  ?halo:int ->
  ?max_touched:float ->
  algo ->
  family:string ->
  n:int ->
  seed:int ->
  spec
(** Defaults: [epsilon = 0.2], [steps = 2], [crashes = 1],
    [revive_prob = 0.25], [edge_dels = 1], [edge_adds = 1], [halo = 1],
    [max_touched = 1.0]. *)

val algo_label : algo -> string

type step_row = {
  r_spec : spec;
  step : int;  (** 1-based *)
  d_crashes : int;
  d_revives : int;
  d_dels : int;
  d_adds : int;
  survivors : int;  (** up nodes after the delta *)
  dirty : int;
  carried : int;
  fresh : int;
  touched : int;
  touched_fraction : float;
  repair_seconds : float;
  scratch_seconds : float;  (** from-scratch re-run incl. certification *)
  scratch_valid : bool;
  violations : string list;  (** empty when every invariant held *)
}

type result = { rows : step_row list; failures : (int * string) list }
(** [failures] is every violation, tagged with its 1-based step. *)

val run : spec -> result

val sweep : spec list -> result list

val default_specs :
  ?algos:algo list ->
  ?families:string list ->
  ?n:int ->
  ?steps:int ->
  ?count:int ->
  seed:int ->
  unit ->
  spec list
(** [count] specs (default 24) cycling over [algos] x [families]
    (defaults: greedy / gha19 / ls93 / thm2.3 decomposers + the thm2.2
    carver — a mix of fine strong clusters, weak certificates and
    giant single clusters; grid / er / reg4) with distinct derived
    seeds. *)

val csv_header : string

val csv_row : step_row -> string

val csv : step_row list -> string
