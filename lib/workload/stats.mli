(** Statistical measurement: multi-sample timing with warmup and GC
    settling, median/MAD summaries, a self-calibrated noise floor, and
    the environment fingerprint every persisted measurement carries.

    This generalizes the one-off calibration that lived in
    [bench resource]: instead of a single-shot [seconds] headline that
    drifts with machine noise, callers run {!measure} and persist the
    median together with the MAD (median absolute deviation), so the
    {!Trajectory} comparator and the {!Diff} engine can tell noise from
    regression — a delta is only significant when it exceeds
    [max(rel * baseline, k * MAD)] (see {!threshold}).

    Alongside [congest/resource] and [bench/], this module is the only
    sanctioned wall-clock/GC site (the [wallclock] lint rule admits it
    by name); all timing goes through {!Congest.Resource.now}. *)

type fingerprint = {
  git_sha : string;  (** short commit sha, or ["unknown"] outside a checkout *)
  ocaml_version : string;
  word_size : int;
  flambda : bool;
  hostname : string;
}
(** The environment a measurement was taken in. Rows recorded under
    different fingerprints are not hard-comparable: the comparator
    refuses rather than flag phantom regressions across machines or
    compiler configurations. *)

val current_fingerprint : unit -> fingerprint
(** Resolves the git sha from [GITHUB_SHA] when set, else by walking up
    from the cwd to [.git] (HEAD -> ref -> packed-refs); never raises —
    unresolvable fields degrade to ["unknown"]. *)

val fingerprint_json : fingerprint -> string
(** Flat JSON object, e.g.
    [{"git_sha":"abc123","ocaml_version":"5.1.1","word_size":64,"flambda":false,"hostname":"ci"}]. *)

val fingerprint_of_json : string -> fingerprint option
(** Inverse of {!fingerprint_json}; [None] when any field is missing or
    malformed. Scans the first occurrence of each field, so the input
    may be a whole snapshot line containing the fingerprint object. *)

val fingerprint_equal : fingerprint -> fingerprint -> bool
val pp_fingerprint : Format.formatter -> fingerprint -> unit

type plan = {
  warmup : int;  (** untimed runs before sampling *)
  samples : int;  (** timed runs; clamped to at least 1 *)
  settle : bool;  (** [Gc.full_major] before each timed run *)
}

val default_plan : plan
(** [{ warmup = 1; samples = 5; settle = true }] *)

val quick_plan : plan
(** [{ warmup = 1; samples = 3; settle = true }] — for expensive
    workloads where five samples would blow the CI budget. *)

val settle : unit -> unit
(** [Gc.full_major] — exposed so samplers living outside this module
    (e.g. {!Measure}) can settle the heap between samples without
    touching [Gc] directly, which the [wallclock] lint rule confines
    to the sanctioned sites. *)

type summary = {
  runs : int;
  median : float;
  mad : float;  (** median absolute deviation from the median *)
  lo : float;
  hi : float;
}

val summarize : float list -> summary
(** Median/MAD/extremes of a sample list. Raises [Invalid_argument] on
    the empty list. *)

val measure : ?plan:plan -> (unit -> 'a) -> 'a * summary
(** Runs [f] [plan.warmup] untimed times, then [plan.samples] timed
    times (each preceded by [Gc.full_major] when [plan.settle]),
    returning the last run's result and the timing summary. Timing uses
    {!Congest.Resource.now}, the repo's single sanctioned clock. *)

val noise_floor : ?plan:plan -> (unit -> 'a) -> float
(** Relative difference between the medians of two independent
    measurement batches of the same workload — an empirical bound on
    run-to-run noise under the current plan. [0.] when the first
    batch's median is not positive. *)

val threshold : ?rel:float -> ?k:float -> mad:float -> float -> float
(** [threshold ~mad baseline] is the absolute delta a measurement must
    exceed to be significant against [baseline]:
    [max (rel *. |baseline|) (k *. mad)]. [rel] defaults to [0.10]
    (the historical 10% gate), [k] to [3.0]. With [mad = 0.] this
    degrades to the pure relative gate, so pre-MAD baselines keep
    their old behavior. *)

val exceeds : ?rel:float -> ?k:float -> mad:float -> baseline:float -> float -> bool
(** [exceeds ~mad ~baseline v]: did [v] grow past [baseline] by more
    than {!threshold}? One-sided — improvements never flag. *)
