type phase = {
  path : string;
  depth : int;
  rounds : float;
  messages : float;
  bits : float;
  seconds : float;
  minor_words : float;
}

type side = {
  label : string;
  fingerprint : Stats.fingerprint option;
  seconds_mad : float;
  phases : phase list;
}

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader                                                  *)
(* ------------------------------------------------------------------ *)

(* run reports nest objects and arrays, so the flat scanners in
   {!Trajectory} are not enough here; this is a full (if small)
   recursive-descent parser over the subset our own emitters produce *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let code =
                  int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4)
                in
                (match code with
                | Some c when c < 128 -> Buffer.add_char buf (Char.chr c)
                | Some _ -> Buffer.add_char buf '?'
                | None -> fail "bad \\u escape");
                pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let keyword word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                loop ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                loop ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    Ok v
  with Bad_json m -> Error m

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let opt_member k j = Option.bind j (member k)
let as_str = function Some (Str s) -> Some s | _ -> None
let as_arr = function Some (Arr l) -> l | _ -> []

let num_or d = function
  | Some (Num f) -> f
  | Some (Bool true) -> 1.0
  | Some (Bool false) -> 0.0
  | _ -> d

(* ------------------------------------------------------------------ *)
(* Loading sides                                                        *)
(* ------------------------------------------------------------------ *)

let fingerprint_of_member j =
  match member "fingerprint" j with
  | None -> None
  | Some fp -> (
      match
        ( as_str (member "git_sha" fp),
          as_str (member "ocaml_version" fp),
          as_str (member "hostname" fp) )
      with
      | Some git_sha, Some ocaml_version, Some hostname ->
          Some
            {
              Stats.git_sha;
              ocaml_version;
              word_size = int_of_float (num_or 0.0 (member "word_size" fp));
              flambda = num_or 0.0 (member "flambda" fp) <> 0.0;
              hostname;
            }
      | _ -> None)

let side_of_report_json ~label text =
  match parse_json text with
  | Error e -> Error (Printf.sprintf "%s: JSON parse failed: %s" label e)
  | Ok doc ->
      if member "report" doc = None then
        Error (Printf.sprintf "%s: not a run report (no \"report\" object)" label)
      else begin
        (* span rollups carry the logical tree; resource rollups attach
           allocation (and cover resource-only paths like "(unspanned)") *)
        let res_rollups =
          as_arr (opt_member "rollups" (member "resources" doc))
        in
        let minor_words_of path =
          List.fold_left
            (fun acc r ->
              if as_str (member "path" r) = Some path then
                num_or acc (member "minor_words" r)
              else acc)
            0.0 res_rollups
        in
        let phases =
          List.map
            (fun r ->
              let path = Option.value (as_str (member "path" r)) ~default:"?" in
              {
                path;
                depth = int_of_float (num_or 0.0 (member "depth" r));
                rounds = num_or 0.0 (member "rounds" r);
                messages = num_or 0.0 (member "messages" r);
                bits = num_or 0.0 (member "bits" r);
                seconds = num_or 0.0 (member "seconds" r);
                minor_words = minor_words_of path;
              })
            (as_arr (member "rollups" doc))
        in
        let span_paths = List.map (fun p -> p.path) phases in
        let extra =
          List.filter_map
            (fun r ->
              match as_str (member "path" r) with
              | Some path when not (List.mem path span_paths) ->
                  Some
                    {
                      path;
                      depth = int_of_float (num_or 0.0 (member "depth" r));
                      rounds = 0.0;
                      messages = 0.0;
                      bits = 0.0;
                      seconds = num_or 0.0 (member "seconds" r);
                      minor_words = num_or 0.0 (member "minor_words" r);
                    }
              | _ -> None)
            res_rollups
        in
        Ok
          {
            label;
            fingerprint = fingerprint_of_member doc;
            seconds_mad = num_or 0.0 (opt_member "seconds_mad" (member "report" doc));
            phases = phases @ extra;
          }
      end

let side_of_trajectory_line ~label line =
  let phases =
    List.filter_map
      (fun obj ->
        match Trajectory.str_field "name" obj with
        | None -> None
        | Some name ->
            let num f = Option.value (Trajectory.num_field f obj) ~default:0.0 in
            Some
              {
                path = name;
                depth = 0;
                rounds = num "rounds";
                messages = num "messages";
                bits = num "max_bits";
                seconds = num "seconds";
                minor_words = num "minor_words_per_node";
              })
      (Trajectory.workload_objs line)
  in
  let seconds_mad =
    List.fold_left
      (fun acc obj ->
        Float.max acc
          (Option.value (Trajectory.num_field "seconds_mad" obj) ~default:0.0))
      0.0
      (Trajectory.workload_objs line)
  in
  {
    label;
    fingerprint =
      Option.bind
        (Trajectory.fingerprint_of_line line)
        Stats.fingerprint_of_json;
    seconds_mad;
    phases;
  }

let read_all path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load spec =
  let file, idx =
    match String.rindex_opt spec '#' with
    | Some i when i < String.length spec - 1 -> (
        match
          int_of_string_opt
            (String.sub spec (i + 1) (String.length spec - i - 1))
        with
        | Some k -> (String.sub spec 0 i, Some k)
        | None -> (spec, None))
    | _ -> (spec, None)
  in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "%s: no such file" file)
  else
    let text = read_all file in
    let trimmed = String.trim text in
    let is_report =
      String.length trimmed > 10 && String.sub trimmed 0 10 = "{\"report\":"
    in
    if is_report then
      if idx <> None then
        Error (Printf.sprintf "%s: '#<index>' only applies to trajectory files" spec)
      else side_of_report_json ~label:(Filename.basename file) text
    else begin
      let lines = Trajectory.read_snapshot_lines file in
      let count = List.length lines in
      if count = 0 then
        Error (Printf.sprintf "%s: no snapshot lines" file)
      else
        let k = Option.value idx ~default:(-1) in
        let pos = if k < 0 then count + k else k - 1 in
        if pos < 0 || pos >= count then
          Error
            (Printf.sprintf "%s: snapshot index %d out of range (1..%d)" spec k
               count)
        else
          Ok
            (side_of_trajectory_line
               ~label:(Printf.sprintf "%s#%d" (Filename.basename file) (pos + 1))
               (List.nth lines pos))
    end

(* ------------------------------------------------------------------ *)
(* Alignment and significance                                           *)
(* ------------------------------------------------------------------ *)

type status = Matched | Added | Removed | Renamed of string

type mdelta = { m_name : string; m_old : float; m_new : float; m_sig : bool }

type row = {
  r_path : string;
  r_depth : int;
  r_status : status;
  r_metrics : mdelta list;
  r_score : float;
}

type t = {
  a_label : string;
  b_label : string;
  forced : bool;
  rows : row list;
  significant : int;
}

type options = { rel : float; k : float; min_seconds : float; force : bool }

let default_options = { rel = 0.10; k = 3.0; min_seconds = 0.005; force = false }

let metric_names = [ "rounds"; "messages"; "bits"; "seconds"; "minor_words" ]

let metric_of p = function
  | "rounds" -> p.rounds
  | "messages" -> p.messages
  | "bits" -> p.bits
  | "seconds" -> p.seconds
  | "minor_words" -> p.minor_words
  | m -> invalid_arg ("Diff.metric_of: " ^ m)

(* seconds is the only noisy column: it must clear both the MAD-widened
   relative gate and an absolute floor; the logical metrics are
   deterministic for seeded runs, so the pure relative gate suffices *)
let significant_delta ~opts ~mad name ov nv =
  let gate =
    if name = "seconds" then
      Float.max (Stats.threshold ~rel:opts.rel ~k:opts.k ~mad ov) opts.min_seconds
    else Stats.threshold ~rel:opts.rel ~k:0.0 ~mad:0.0 ov
  in
  Float.abs (nv -. ov) > gate

let zero_phase path depth =
  {
    path;
    depth;
    rounds = 0.0;
    messages = 0.0;
    bits = 0.0;
    seconds = 0.0;
    minor_words = 0.0;
  }

let parent_of path =
  match String.rindex_opt path '/' with
  | None -> ""
  | Some i -> String.sub path 0 i

let row_of ~opts ~mad status (old_p : phase) (new_p : phase) =
  let metrics =
    List.map
      (fun name ->
        let ov = metric_of old_p name and nv = metric_of new_p name in
        {
          m_name = name;
          m_old = ov;
          m_new = nv;
          m_sig = significant_delta ~opts ~mad name ov nv;
        })
      metric_names
  in
  let score =
    List.fold_left
      (fun acc m ->
        if m.m_sig then
          Float.max acc
            (Float.abs (m.m_new -. m.m_old) /. Float.max (Float.abs m.m_old) 1e-9)
        else acc)
      0.0 metrics
  in
  let keep = match status with Removed -> old_p | _ -> new_p in
  {
    r_path = keep.path;
    r_depth = keep.depth;
    r_status = status;
    r_metrics = metrics;
    r_score = score;
  }

let compare ?(options = default_options) (a : side) (b : side) =
  match (a.fingerprint, b.fingerprint) with
  | Some fa, Some fb
    when (not (Stats.fingerprint_equal fa fb)) && not options.force ->
      Error
        (Format.asprintf
           "refusing to compare across environments (use --force):@ %s: %a@ \
            %s: %a"
           a.label Stats.pp_fingerprint fa b.label Stats.pp_fingerprint fb)
  | _ ->
      let forced =
        match (a.fingerprint, b.fingerprint) with
        | Some fa, Some fb -> not (Stats.fingerprint_equal fa fb)
        | _ -> false
      in
      let mad = Float.max a.seconds_mad b.seconds_mad in
      let opts = options in
      let find side path =
        List.find_opt (fun p -> p.path = path) side.phases
      in
      let matched =
        List.filter_map
          (fun bp ->
            Option.map
              (fun ap -> row_of ~opts ~mad Matched ap bp)
              (find a bp.path))
          b.phases
      in
      let added = List.filter (fun bp -> find a bp.path = None) b.phases in
      let removed = List.filter (fun ap -> find b ap.path = None) a.phases in
      (* renamed-phase pairing: a removed and an added phase sharing
         parent and depth, taken in order, count as a rename when their
         round totals are within 2x (or both zero) *)
      let renamed = ref [] in
      let still_added = ref [] in
      let remaining_removed = ref removed in
      List.iter
        (fun bp ->
          let candidate =
            List.find_opt
              (fun ap ->
                ap.depth = bp.depth
                && parent_of ap.path = parent_of bp.path
                &&
                let r_old = ap.rounds and r_new = bp.rounds in
                if r_old = 0.0 && r_new = 0.0 then true
                else
                  r_old > 0.0 && r_new > 0.0
                  && r_new /. r_old >= 0.5
                  && r_new /. r_old <= 2.0)
              !remaining_removed
          in
          match candidate with
          | Some ap ->
              remaining_removed :=
                List.filter (fun p -> p.path <> ap.path) !remaining_removed;
              renamed := row_of ~opts ~mad (Renamed ap.path) ap bp :: !renamed
          | None -> still_added := bp :: !still_added)
        added;
      let added_rows =
        List.map
          (fun bp -> row_of ~opts ~mad Added (zero_phase bp.path bp.depth) bp)
          (List.rev !still_added)
      in
      let removed_rows =
        List.map
          (fun ap ->
            row_of ~opts ~mad Removed ap (zero_phase ap.path ap.depth))
          !remaining_removed
      in
      let rows = matched @ List.rev !renamed @ added_rows @ removed_rows in
      let rows =
        List.stable_sort
          (fun r1 r2 ->
            match Float.compare r2.r_score r1.r_score with
            | 0 -> String.compare r1.r_path r2.r_path
            | c -> c)
          rows
      in
      let significant =
        List.length
          (List.filter (fun r -> List.exists (fun m -> m.m_sig) r.r_metrics) rows)
      in
      Ok { a_label = a.label; b_label = b.label; forced; rows; significant }

let significant_rows t =
  List.filter (fun r -> List.exists (fun m -> m.m_sig) r.r_metrics) t.rows

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let status_cell = function
  | Matched -> ""
  | Added -> "added"
  | Removed -> "removed"
  | Renamed old -> "renamed from " ^ old

let delta_cell m =
  if m.m_old = m.m_new then "·"
  else
    let pct =
      if m.m_old <> 0.0 then
        Printf.sprintf " (%+.1f%%)" (100.0 *. (m.m_new -. m.m_old) /. m.m_old)
      else ""
    in
    Printf.sprintf "%s%g -> %g%s" (if m.m_sig then "! " else "") m.m_old m.m_new pct

let to_markdown t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Differential profile: %s vs %s\n\n" t.a_label t.b_label;
  if t.forced then
    add "**Warning:** environment fingerprints differ; comparison was forced.\n\n";
  if t.significant = 0 then
    add "No significant phase deltas (%d phases aligned).\n\n"
      (List.length t.rows)
  else
    add "%d of %d phases changed significantly (marked `!`).\n\n" t.significant
      (List.length t.rows);
  add "| phase | status | rounds | messages | bits | seconds | minor words |\n";
  add "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      add "| %s | %s |" r.r_path (status_cell r.r_status);
      List.iter (fun m -> add " %s |" (delta_cell m)) r.r_metrics;
      add "\n")
    t.rows;
  add "\n";
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"diff\":{\"old\":%S,\"new\":%S,\"forced\":%b,\"significant\":%d,"
    t.a_label t.b_label t.forced t.significant;
  add "\"rows\":[%s]}}"
    (String.concat ","
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"path\":%S,\"depth\":%d,\"status\":%S,\"score\":%.6f,\"metrics\":[%s]}"
              r.r_path r.r_depth
              (match r.r_status with
              | Matched -> "matched"
              | Added -> "added"
              | Removed -> "removed"
              | Renamed old -> "renamed:" ^ old)
              r.r_score
              (String.concat ","
                 (List.map
                    (fun m ->
                      Printf.sprintf
                        "{\"name\":%S,\"old\":%g,\"new\":%g,\"significant\":%b}"
                        m.m_name m.m_old m.m_new m.m_sig)
                    r.r_metrics)))
          t.rows));
  Buffer.contents buf

(* difffolded input: "frame;frame old new", one line per stack, weights
   as integer microseconds of SELF time *)
let to_folded t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      let sec name =
        match List.find_opt (fun m -> m.m_name = name) r.r_metrics with
        | Some m -> (m.m_old, m.m_new)
        | None -> (0.0, 0.0)
      in
      let o, v = sec "seconds" in
      Buffer.add_string buf
        (Printf.sprintf "%s %.0f %.0f\n"
           (String.map (fun c -> if c = '/' then ';' else c) r.r_path)
           (o *. 1e6) (v *. 1e6)))
    (List.stable_sort (fun r1 r2 -> String.compare r1.r_path r2.r_path) t.rows);
  Buffer.contents buf
