(** Self-healing sessions: audited decompositions under fault deltas.

    [Cluster.Repair] is the pure engine (dirty region, local re-carve,
    merge); this module is the workload-layer harness around it. A
    {!session} bundles the fault state with the current clustering, its
    per-cluster colors and its {!Audit} certificate. {!repair} applies
    one fault delta: it plans the dirty region, re-carves it with a
    registered sequential engine, merges, and re-certifies {e only} the
    touched clusters — every untouched cluster's certificate is carried
    over verbatim (modulo the renumbered cluster id). The result is a
    {!cert}: a checkable claim that the repair was local.

    {!verify_cert} re-checks that claim against the previous session
    and the post-fault graph alone: the dirty and carried cluster ids
    partition the old clustering, every carried certificate is
    byte-identical to its predecessor except for the cluster id, the
    carried and fresh ids partition the new clustering, and the merged
    audit passes the graph-only [Audit.verify] on the post-fault
    graph. *)

type session = {
  state : Cluster.Repair.state;
  clustering : Cluster.Clustering.t;  (** over [Cluster.Repair.graph state] *)
  colors : int array;  (** per cluster id; all [-1] for carvings *)
  base_domain : bool array;
      (** the domain the original carving ran on (all-[true] for
          decompositions); survivors outside it stay out of the audit
          domain *)
  audit : Audit.t;  (** certificate of [clustering] on the current graph *)
}

val start_decomposition : Cluster.Decomposition.t -> session
(** Fault-free session over the decomposition's graph. *)

val start_carving : Cluster.Carving.t -> session

type cert = {
  c_delta : Cluster.Repair.delta;
  c_halo : int;
  c_dirty : int list;  (** old cluster ids invalidated and re-carved *)
  c_carried : (int * int) list;
      (** [(old id, new id)] for every untouched cluster, sorted *)
  c_fresh : int list;  (** new ids of re-carved clusters, sorted *)
  c_audit : Audit.t;  (** merged certificate on the post-fault graph *)
}

type report = {
  dirty_clusters : int;
  touched_nodes : int;  (** nodes handed to the re-carver *)
  touched_fraction : float;  (** touched / survivors *)
  fresh_clusters : int;
  carried_clusters : int;
  seconds : float;  (** wall time of plan + re-carve + merge + re-certify *)
  cert : cert;
}

val repair :
  ?halo:int ->
  recarve:(Dsgraph.Graph.t -> int array * int array) ->
  session ->
  Cluster.Repair.delta ->
  session * report
(** Applies one delta and heals the clustering locally. [recarve] is as
    in [Cluster.Repair.merge] (see {!recarve_decomposer} /
    {!recarve_carver}); [halo] defaults to [0].
    @raise Invalid_argument on an inconsistent delta. *)

val verify_cert :
  prev:session -> post:Dsgraph.Graph.t -> cert -> (unit, string) result
(** Checks the locality claim (see the module header). [post] must be
    the post-delta graph ([Cluster.Repair.graph] of the new state). *)

val recarve_decomposer :
  Algorithms.decomposer -> seed:int -> Dsgraph.Graph.t -> int array * int array
(** Runs a registered decomposer component-by-component (the re-carve
    region is rarely connected) and returns dense labels plus a color
    per label, the shape [Cluster.Repair.merge] consumes. Singleton
    components skip the engine. *)

val recarve_carver :
  Algorithms.carver ->
  seed:int ->
  epsilon:float ->
  Dsgraph.Graph.t ->
  int array * int array
(** As {!recarve_decomposer} for carvers; nodes the carver leaves dead
    stay [-1] (colors returned are all [-1]). *)
