open Dsgraph

type kind = Weak | Strong
type model = Deterministic | Randomized

type 'run t = {
  name : string;
  reference : string;
  kind : kind;
  model : model;
  run : 'run;
}

type decompose_run =
  cost:Congest.Cost.t -> seed:int -> Dsgraph.Graph.t -> Cluster.Decomposition.t

type carve_run =
  cost:Congest.Cost.t ->
  seed:int ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t

type decomposer = decompose_run t
type carver = carve_run t

let decomposers =
  [
    {
      name = "ls93";
      reference = "[LS93] weak randomized";
      kind = Weak;
      model = Randomized;
      run =
        (fun ~cost ~seed g ->
          Baseline.Linial_saks.decompose ~cost (Rng.create seed) g);
    };
    {
      name = "rg20";
      reference = "[RG20] weak deterministic";
      kind = Weak;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ->
          Strongdecomp.Netdecomp.weak ~cost ~preset:Weakdiam.Weak_carving.Rg20 g);
    };
    {
      name = "ggr21";
      reference = "[GGR21] weak deterministic";
      kind = Weak;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ->
          Strongdecomp.Netdecomp.weak ~cost ~preset:Weakdiam.Weak_carving.Ggr21
            g);
    };
    {
      name = "mpx";
      reference = "[MPX13,EN16] strong randomized";
      kind = Strong;
      model = Randomized;
      run = (fun ~cost ~seed g -> Baseline.Mpx.decompose ~cost (Rng.create seed) g);
    };
    {
      name = "aglp89";
      reference = "[AGLP89] strong deterministic (quality profile)";
      kind = Strong;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ->
          Baseline.Greedy.decompose ~cost ~preset:Baseline.Greedy.Aglp g);
    };
    {
      name = "gha19";
      reference = "[Gha19,PS92] strong deterministic (quality profile)";
      kind = Strong;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ->
          Baseline.Greedy.decompose ~cost ~preset:Baseline.Greedy.Gha19 g);
    };
    {
      name = "greedy";
      reference = "[LS93] existential optimum (sequential)";
      kind = Strong;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ->
          Baseline.Greedy.decompose ~cost ~preset:Baseline.Greedy.Ls93_existential
            g);
    };
    {
      name = "abcp96";
      reference = "[ABCP96] strong deterministic, unbounded messages";
      kind = Strong;
      model = Deterministic;
      run = (fun ~cost ~seed:_ g -> fst (Baseline.Abcp.decompose ~cost g));
    };
    {
      name = "thm2.1+ls";
      reference = "THIS PAPER Thm 2.1 over randomized [LS93] (new combination)";
      kind = Strong;
      model = Randomized;
      run =
        (fun ~cost ~seed g ->
          Baseline.Ls_transform.decompose ~cost (Rng.create seed) g);
    };
    {
      name = "thm2.3";
      reference = "THIS PAPER Thm 2.3: strong det, O(log n) colors";
      kind = Strong;
      model = Deterministic;
      run = (fun ~cost ~seed:_ g -> Strongdecomp.Netdecomp.strong ~cost g);
    };
    {
      name = "thm3.4";
      reference = "THIS PAPER Thm 3.4: strong det, improved diameter";
      kind = Strong;
      model = Deterministic;
      run = (fun ~cost ~seed:_ g -> Strongdecomp.Netdecomp.strong_improved ~cost g);
    };
  ]

let carvers =
  [
    {
      name = "ls93";
      reference = "[LS93] weak randomized";
      kind = Weak;
      model = Randomized;
      run =
        (fun ~cost ~seed g ~epsilon ->
          Baseline.Linial_saks.carve ~cost (Rng.create seed) g ~epsilon);
    };
    {
      name = "rg20";
      reference = "[RG20] weak deterministic";
      kind = Weak;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ~epsilon ->
          let r =
            Weakdiam.Weak_carving.carve ~preset:Weakdiam.Weak_carving.Rg20 ~cost
              g ~epsilon
          in
          r.carving);
    };
    {
      name = "ggr21";
      reference = "[GGR21] weak deterministic";
      kind = Weak;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ~epsilon ->
          let r =
            Weakdiam.Weak_carving.carve ~preset:Weakdiam.Weak_carving.Ggr21
              ~cost g ~epsilon
          in
          r.carving);
    };
    {
      name = "mpx";
      reference = "[MPX13,EN16] strong randomized";
      kind = Strong;
      model = Randomized;
      run =
        (fun ~cost ~seed g ~epsilon ->
          Baseline.Mpx.carve ~cost (Rng.create seed) g ~epsilon);
    };
    {
      name = "thm2.1+ls";
      reference = "THIS PAPER Thm 2.1 over randomized [LS93]";
      kind = Strong;
      model = Randomized;
      run =
        (fun ~cost ~seed g ~epsilon ->
          fst (Baseline.Ls_transform.carve ~cost (Rng.create seed) g ~epsilon));
    };
    {
      name = "thm2.2";
      reference = "THIS PAPER Thm 2.2: strong deterministic";
      kind = Strong;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ~epsilon ->
          fst (Strongdecomp.Strong_carving.carve ~cost g ~epsilon));
    };
    {
      name = "thm3.3";
      reference = "THIS PAPER Thm 3.3: strong det, improved diameter";
      kind = Strong;
      model = Deterministic;
      run =
        (fun ~cost ~seed:_ g ~epsilon ->
          fst (Strongdecomp.Strong_carving.carve_improved ~cost g ~epsilon));
    };
  ]

let find_decomposer name =
  List.find (fun (d : decomposer) -> d.name = name) decomposers
let find_carver name = List.find (fun c -> c.name = name) carvers
