(** Measurement harness: run a registered algorithm on a workload graph
    and record the quantities the paper's tables report — colors,
    diameters, rounds, message sizes — together with validity verdicts
    from the {!Cluster} checkers.

    Rows can optionally carry a per-run {!Congest.Trace.sink}: pass
    [~trace] and the meter given to the algorithm reports every
    {!Congest.Cost.charge} into it ([Cost_charged] events), so a row's
    headline numbers can be drilled into round by round afterwards. *)

type decomp_row = {
  algorithm : string;
  reference : string;
  kind : Algorithms.kind;
  model : Algorithms.model;
  family : string;
  n : int;
  m : int;
  colors : int;
  strong_diameter : int option;
      (** [None] when some cluster induces a disconnected subgraph, so no
          strong diameter exists (weak algorithms) *)
  weak_diameter : int;
  rounds : int;
  messages : int;
  max_message_bits : int;
  valid : bool;
  seconds : float;
  trace : Congest.Trace.sink option;  (** the sink passed in, if any *)
}

type carve_row = {
  algorithm : string;
  reference : string;
  kind : Algorithms.kind;
  family : string;
  n : int;
  epsilon : float;
  strong_diameter : int option;  (** as {!decomp_row.strong_diameter} *)
  weak_diameter : int;
  dead_fraction : float;
  rounds : int;
  max_message_bits : int;
  valid : bool;
  seconds : float;
  trace : Congest.Trace.sink option;
}

val decomposition_row :
  ?seed:int ->
  ?trace:Congest.Trace.sink ->
  Algorithms.decomposer ->
  Suite.family ->
  n:int ->
  decomp_row

val decomposition_row_sampled :
  ?seed:int ->
  ?trace:Congest.Trace.sink ->
  ?plan:Stats.plan ->
  Algorithms.decomposer ->
  Suite.family ->
  n:int ->
  decomp_row * Stats.summary
(** Multi-sample variant for trajectory recording: runs the workload
    [plan.warmup] untimed times plus [plan.samples] timed times
    ([plan] defaults to {!Stats.quick_plan}), settling the heap
    between samples, and returns the last row together with the
    {!Stats.summary} of the per-run engine seconds. The trace sink, if
    given, is attached only to the final run, so its event stream is
    that of a single execution. The logical columns (rounds, messages,
    bits) are identical across samples for seeded runs — only the
    timing varies. *)

val decomposition_result :
  ?seed:int ->
  ?trace:Congest.Trace.sink ->
  Algorithms.decomposer ->
  Suite.family ->
  n:int ->
  decomp_row * Cluster.Decomposition.t * Dsgraph.Graph.t
(** As {!decomposition_row}, also returning the decomposition and the
    workload graph it ran on, so callers can audit the result (see
    {!Audit}) without re-running the algorithm. *)

val carving_row :
  ?seed:int ->
  ?trace:Congest.Trace.sink ->
  Algorithms.carver ->
  Suite.family ->
  n:int ->
  epsilon:float ->
  carve_row

val carving_result :
  ?seed:int ->
  ?trace:Congest.Trace.sink ->
  Algorithms.carver ->
  Suite.family ->
  n:int ->
  epsilon:float ->
  carve_row * Cluster.Carving.t * Dsgraph.Graph.t
(** As {!carving_row}, also returning the carving and the graph. *)

val pp_decomp_table : Format.formatter -> decomp_row list -> unit
val pp_carve_table : Format.formatter -> carve_row list -> unit

val decomp_csv : decomp_row list -> string
(** Missing strong diameters are emitted as [NA] (never [-1], which
    plotting pipelines would average into real diameters). *)

val carve_csv : carve_row list -> string
