(** Span-level differential profiling: align the phase trees of two
    runs by interned span path and report per-phase deltas for
    rounds/messages/bits/seconds/minor-words, with added/removed/
    renamed-phase detection and significance annotations against the
    noise floor.

    A side is loaded from a run-report JSON (the [decompose report]
    artifact, whose ["rollups"] and ["resources"]["rollups"] arrays
    carry the span tree) or from a BENCH_trajectory.json row (headline
    workloads only, each a depth-0 phase). Two sides recorded under
    different {!Stats.fingerprint}s are refused unless forced —
    cross-machine phase timings are not comparable.

    Significance is per metric: logical metrics (rounds, messages,
    bits, minor words) are deterministic for seeded runs, so they use
    the pure relative gate; [seconds] additionally needs to clear an
    absolute floor ([min_seconds]) and the MAD-widened gate
    ({!Stats.threshold}), so sub-millisecond phase jitter never
    flags. Surfaced as [decompose diff <A> <B>]. *)

type phase = {
  path : string;  (** interned span path, ['/']-joined *)
  depth : int;
  rounds : float;
  messages : float;
  bits : float;
  seconds : float;
  minor_words : float;
}

type side = {
  label : string;
  fingerprint : Stats.fingerprint option;
  seconds_mad : float;
      (** recorded MAD of the side's headline seconds; [0.] for
          single-shot reports *)
  phases : phase list;
}

val load : string -> (side, string) result
(** Loads a side from a spec:
    - [path.json] containing a [{"report":...}] object — a run report;
      the span rollups become the phases;
    - [path] or [path#N] — a trajectory file; [N] is the 1-based
      snapshot index (negative counts from the end; default [-1], the
      newest); each workload row becomes a depth-0 phase.
    Errors mention the spec, never raise. *)

val side_of_report_json : label:string -> string -> (side, string) result
(** Parses a run-report JSON document (see {!Report.to_json}). *)

val side_of_trajectory_line : label:string -> string -> side
(** One trajectory snapshot line as a side of headline phases. *)

type status =
  | Matched
  | Added
  | Removed
  | Renamed of string  (** the old path this phase was paired with *)

type mdelta = {
  m_name : string;
  m_old : float;
  m_new : float;
  m_sig : bool;  (** |new - old| cleared the significance gate *)
}

type row = {
  r_path : string;
  r_depth : int;
  r_status : status;
  r_metrics : mdelta list;
  r_score : float;
      (** ranking key: the largest significant relative delta across
          metrics; [0.] for rows with no significant delta *)
}

type t = {
  a_label : string;
  b_label : string;
  forced : bool;  (** fingerprints differed but comparison was forced *)
  rows : row list;  (** most significant first, ties by path *)
  significant : int;  (** rows with at least one significant delta *)
}

type options = {
  rel : float;  (** relative gate, default [0.10] *)
  k : float;  (** MAD multiplier, default [3.0] *)
  min_seconds : float;
      (** absolute floor for a seconds delta to matter, default
          [0.005] (5 ms) *)
  force : bool;  (** compare across differing fingerprints *)
}

val default_options : options

val compare : ?options:options -> side -> side -> (t, string) result
(** Aligns [b] (new) against [a] (old). [Error] only on fingerprint
    mismatch without [force] — the message names both environments.
    Renamed-phase detection pairs a removed and an added phase that
    share parent and depth, in order, when their round counts are
    within a factor of two (or both zero). *)

val to_markdown : t -> string
(** Human summary: verdict line plus a per-phase table with old -> new
    and delta columns, significant cells marked with [!]. *)

val to_json : t -> string
(** Machine shape: labels, verdict, and the full row list. *)

val to_folded : t -> string
(** Differential flamegraph folded stacks: ["a;b;c <old> <new>"] per
    phase with seconds in microseconds — the input difffolded.pl and
    flamegraph renderers expect. Added phases have old 0; removed
    phases have new 0. *)

val significant_rows : t -> row list
(** The rows with at least one significant delta, in rank order. *)
