(** Trajectory dashboard: renders the BENCH_trajectory.json time
    series into one self-contained HTML file — no external assets, no
    scripts — with a sparkline per workload x metric, environment-
    fingerprint change markers, and regression highlights from the
    {!Trajectory} comparator.

    Layout: one row of panels per workload, one panel per headline
    metric (seconds, rounds, messages, minor_words_per_node,
    peak_heap_mb). Each panel is a single-series sparkline (so no
    legend; the panel title names the series), with the latest value
    direct-labeled, native SVG tooltips on every point, dashed
    vertical markers where the recording fingerprint changed, and a
    filled marker (plus explanatory tooltip text — color never carries
    the meaning alone) on points the comparator flagged against their
    predecessor. Light and dark modes are both styled via
    [prefers-color-scheme]. Surfaced as [bench dashboard] and uploaded
    as a CI artifact. *)

val render : ?title:string -> string list -> string
(** [render lines] builds the HTML document from trajectory snapshot
    lines (as {!Trajectory.read_snapshot_lines} returns them, oldest
    first). An empty list yields a valid page saying so. *)

val write : ?title:string -> path:string -> string list -> unit
(** {!render} to a file. *)
