module Conformance = Congest.Conformance

type row = {
  target : string;
  family : string;
  n : int;
  adversarial : bool;
  report : Conformance.report;
  seconds : float;
}

let ok r = Conformance.ok r.report

(* the reliable-transport runs are chatty (per-edge acks every round), so
   give every sink ample headroom: an overflowing sink fails the row *)
let sink_capacity = 8_000_000

(* ------------------------------------------------------------------ *)
(* Registry leg: engine-level runs, invariants (a) + (b)               *)
(* ------------------------------------------------------------------ *)

let cost_totals cost =
  [
    Conformance.Cost_totals
      {
        rounds = Congest.Cost.rounds cost;
        messages = Congest.Cost.messages cost;
        max_bits = Congest.Cost.max_message_bits cost;
      };
  ]

let timed_row ~target ~family_name ~n ~adversarial mk_report =
  let t0 = Congest.Resource.now () in
  let report = mk_report () in
  {
    target;
    family = family_name;
    n;
    adversarial;
    report;
    seconds = Congest.Resource.now () -. t0;
  }

let decomposer_row ?(seed = 42) (d : Algorithms.decomposer) family ~n =
  let target = "decomposer:" ^ d.Algorithms.name in
  let g = family.Suite.build ~seed ~n in
  timed_row ~target ~family_name:family.Suite.name ~n:(Dsgraph.Graph.n g)
    ~adversarial:false (fun () ->
      Conformance.verify_run ~label:target ~capacity:sink_capacity
        ~run:(fun sink ->
          let cost = Congest.Cost.create ~trace:sink () in
          ignore (d.Algorithms.run ~cost ~seed g);
          cost_totals cost)
        ())

let carver_row ?(seed = 42) ?(epsilon = 0.5) (c : Algorithms.carver) family ~n
    =
  let target = "carver:" ^ c.Algorithms.name in
  let g = family.Suite.build ~seed ~n in
  timed_row ~target ~family_name:family.Suite.name ~n:(Dsgraph.Graph.n g)
    ~adversarial:false (fun () ->
      Conformance.verify_run ~label:target ~capacity:sink_capacity
        ~run:(fun sink ->
          let cost = Congest.Cost.create ~trace:sink () in
          ignore (c.Algorithms.run ~cost ~seed g ~epsilon);
          cost_totals cost)
        ())

let registry_rows ?(seed = 42) ?(epsilon = 0.5) family ~n =
  List.map
    (fun d -> decomposer_row ~seed d family ~n)
    Algorithms.decomposers
  @ List.map
      (fun c -> carver_row ~seed ~epsilon c family ~n)
      Algorithms.carvers

(* ------------------------------------------------------------------ *)
(* Program leg: genuinely distributed runs, invariants (a) – (e)       *)
(* ------------------------------------------------------------------ *)

(* mild but complete adversary: every fault class, two crash-stops *)
let adversary_spec ~seed ~n =
  Congest.Fault.spec ~seed:(seed + 1000) ~drop:0.03 ~duplicate:0.02
    ~delay:0.02 ~delay_window:2
    ~crashes:[ (n / 3, 6); ((2 * n / 3) + 1, 10) ]
    ()

let sim_totals (s : Congest.Sim.stats) =
  [
    Conformance.Sim_totals
      {
        rounds = s.Congest.Sim.rounds_used;
        messages = s.Congest.Sim.total_messages;
        max_bits = s.Congest.Sim.max_bits_seen;
      };
  ]

let program_rows ?(seed = 42) ?(epsilon = 0.5) ~adversarial family ~n =
  let g = family.Suite.build ~seed ~n in
  let gn = Dsgraph.Graph.n g in
  let spec = if adversarial then Some (adversary_spec ~seed ~n:gn) else None in
  let mk target ~order_invariant run_with =
    let rec_ = Conformance.recorder () in
    let inst = Conformance.instrumentor ~order_invariant rec_ g in
    timed_row ~target ~family_name:family.Suite.name ~n:gn ~adversarial
      (fun () ->
        Conformance.verify_run ~label:target ~capacity:sink_capacity
          ~recorder:rec_
          ~run:(fun sink ->
            (* a fresh adversary per run, so the fault schedule replays *)
            let adv = Option.map Congest.Fault.create spec in
            run_with inst adv sink)
          ())
  in
  let classic =
    [
      mk "program:leader_election" ~order_invariant:true
        (fun inst adv sink ->
          let _, stats =
            Congest.Programs.leader_election ?adversary:adv ~conformance:inst
              ~trace:sink g
          in
          sim_totals stats);
      mk "program:bfs" ~order_invariant:false (fun inst adv sink ->
          let _, stats =
            Congest.Programs.bfs ?adversary:adv ~conformance:inst ~trace:sink
              g ~source:0
          in
          sim_totals stats);
      mk "program:subtree_counts" ~order_invariant:true
        (fun inst adv sink ->
          let parent = Dsgraph.Bfs.parents g ~source:0 in
          let _, stats =
            Congest.Programs.subtree_counts ?adversary:adv ~conformance:inst
              ~trace:sink g ~parent
          in
          sim_totals stats);
    ]
  in
  let carvings =
    if adversarial then
      [
        (* lossy direct floods are meaningless under faults: run the
           reliable-transport variants, whose outer program is what the
           simulator sees *)
        mk "program:ls_attempt_reliable" ~order_invariant:true
          (fun inst adv sink ->
            let r =
              Baseline.Ls_distributed.attempt_reliable ?adversary:adv
                ~conformance:inst ~trace:sink (Dsgraph.Rng.create seed) g
                ~epsilon
            in
            sim_totals r.Baseline.Ls_distributed.sim_stats);
        mk "program:weakdiam_reliable" ~order_invariant:false
          (fun inst adv sink ->
            let r =
              Weakdiam.Distributed.carve_reliable ?adversary:adv
                ~conformance:inst ~trace:sink g ~epsilon
            in
            sim_totals r.Weakdiam.Distributed.r_sim_stats);
        mk "program:mpx_partition" ~order_invariant:false
          (fun inst adv sink ->
            let r =
              Baseline.Mpx_distributed.partition ~seed ?adversary:adv
                ~conformance:inst ~trace:sink g ~beta:0.4
            in
            sim_totals r.Baseline.Mpx_distributed.sim_stats);
      ]
    else
      [
        mk "program:ls_attempt" ~order_invariant:true (fun inst _adv sink ->
            let _, stats =
              Baseline.Ls_distributed.attempt ~conformance:inst ~trace:sink
                (Dsgraph.Rng.create seed) g ~epsilon
            in
            sim_totals stats);
        mk "program:weakdiam_sim" ~order_invariant:false
          (fun inst _adv sink ->
            let r =
              Weakdiam.Distributed.carve ~conformance:inst ~trace:sink g
                ~epsilon
            in
            sim_totals r.Weakdiam.Distributed.sim_stats);
        mk "program:mpx_partition" ~order_invariant:false
          (fun inst _adv sink ->
            let r =
              Baseline.Mpx_distributed.partition ~seed ~conformance:inst
                ~trace:sink g ~beta:0.4
            in
            sim_totals r.Baseline.Mpx_distributed.sim_stats);
      ]
  in
  classic @ carvings

let suite ?seed ?epsilon ?(adversarial = true) family ~n =
  registry_rows ?seed ?epsilon family ~n
  @ program_rows ?seed ?epsilon ~adversarial:false family ~n
  @ (if adversarial then
       program_rows ?seed ?epsilon ~adversarial:true family ~n
     else [])

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_row fmt r =
  let failed =
    List.filter (fun (c : Conformance.check) -> not c.Conformance.passed)
      r.report.Conformance.checks
  in
  Format.fprintf fmt "%-30s %-10s %6d %-5s %-4s %2d checks, %d violation(s)%s"
    r.target r.family r.n
    (if r.adversarial then "adv" else "clean")
    (if ok r then "ok" else "FAIL")
    (List.length r.report.Conformance.checks)
    (List.length r.report.Conformance.violations)
    (match failed with
    | [] -> ""
    | c :: _ -> Printf.sprintf " [first failed: %s]" c.Conformance.name)

let pp_table fmt rows =
  Format.fprintf fmt "%-30s %-10s %6s %-5s %-4s@." "target" "family" "n"
    "leg" "ok";
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_row r) rows;
  let bad = List.filter (fun r -> not (ok r)) rows in
  if bad <> [] then begin
    Format.fprintf fmt "@.failing reports:@.";
    List.iter
      (fun r -> Conformance.pp_report fmt r.report)
      bad
  end

let csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "target,family,n,adversarial,check,passed,detail\n";
  let cell s = "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\"" in
  List.iter
    (fun r ->
      List.iter
        (fun (c : Conformance.check) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%b,%s,%b,%s\n" r.target r.family r.n
               r.adversarial c.Conformance.name c.Conformance.passed
               (cell c.Conformance.detail)))
        r.report.Conformance.checks;
      List.iter
        (fun (v : Conformance.violation) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%b,violation:%s,false,%s\n" r.target
               r.family r.n r.adversarial v.Conformance.invariant
               (cell
                  (Printf.sprintf "node %d step %d: %s" v.Conformance.node
                     v.Conformance.step v.Conformance.detail))))
        r.report.Conformance.violations)
    rows;
  Buffer.contents buf

let to_json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"target\":\"%s\",\"family\":\"%s\",\"n\":%d,\"adversarial\":%b,\"seconds\":%.4f,\"report\":%s}"
           r.target r.family r.n r.adversarial r.seconds
           (Conformance.report_to_json r.report)))
    rows;
  Buffer.add_char buf ']';
  Buffer.contents buf
