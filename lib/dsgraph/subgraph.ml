let induce g nodes =
  let n = Graph.n g in
  let sorted = List.sort_uniq compare nodes in
  if List.length sorted <> List.length nodes then
    invalid_arg "Subgraph.induce: duplicate nodes";
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Subgraph.induce: node out of range")
    sorted;
  let back = Array.of_list sorted in
  let fwd = Hashtbl.create (Array.length back) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) back;
  let b = Graph.Builder.create ~n:(Array.length back) in
  Array.iteri
    (fun i v ->
      Graph.iter_neighbors g v (fun w ->
          if w > v then
            match Hashtbl.find_opt fwd w with
            | Some j -> Graph.Builder.add_edge b i j
            | None -> ()))
    back;
  (Graph.Builder.build b, back)

let induce_mask g mask = induce g (Mask.to_list mask)
