type t = {
  n : int;
  adj : int array array;
  m : int;
  (* Per-node offsets into the dense edge numbering; edge (u,v) with u < v
     gets index [offset.(u) + position of v among u's larger neighbors]. *)
  edge_offset : int array;
}

let n t = t.n
let m t = t.m
let degree t v = Array.length t.adj.(v)
let neighbors t v = t.adj.(v)
let iter_neighbors t v f = Array.iter f t.adj.(v)
let nodes t = List.init t.n (fun i -> i)

let max_degree t =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.adj

let build_offsets n adj =
  let offsets = Array.make n 0 in
  let acc = ref 0 in
  for u = 0 to n - 1 do
    offsets.(u) <- !acc;
    Array.iter (fun v -> if v > u then incr acc) adj.(u)
  done;
  (offsets, !acc)

let of_adj raw =
  let n = Array.length raw in
  let sets = Array.make n [] in
  Array.iteri
    (fun u nbrs ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Graph.of_adj: endpoint out of range";
          if v = u then invalid_arg "Graph.of_adj: self-loop";
          sets.(u) <- v :: sets.(u);
          sets.(v) <- u :: sets.(v))
        nbrs)
    raw;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list (List.sort_uniq compare l) in
        a)
      sets
  in
  let edge_offset, m = build_offsets n adj in
  { n; adj; m; edge_offset }

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let sets = Array.make (max n 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.create: endpoint out of range";
      if u = v then invalid_arg "Graph.create: self-loop";
      sets.(u) <- v :: sets.(u);
      sets.(v) <- u :: sets.(v))
    edges;
  let adj =
    Array.init n (fun u -> Array.of_list (List.sort_uniq compare sets.(u)))
  in
  let edge_offset, m = build_offsets n adj in
  { n; adj; m; edge_offset }

let is_edge t u v =
  let a = t.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

let iter_edges t f =
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if u < v then f u v) t.adj.(u)
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun u v -> acc := f !acc u v);
  !acc

let edges t = List.rev (fold_edges t ~init:[] ~f:(fun acc u v -> (u, v) :: acc))

let edge_index t (u, v) =
  let u, v = if u < v then (u, v) else (v, u) in
  if not (is_edge t u v) then raise Not_found;
  let a = t.adj.(u) in
  (* count neighbors of u that are > u and < v *)
  let pos = ref 0 in
  let found = ref (-1) in
  Array.iter
    (fun w ->
      if w > u then begin
        if w = v then found := !pos;
        if w < v then incr pos
      end)
    a;
  ignore !found;
  t.edge_offset.(u) + !pos

let apply_edits t ~del ~add =
  let norm what (u, v) =
    if u = v then invalid_arg (Printf.sprintf "Graph.apply_edits: self-loop in %s" what);
    if u < 0 || u >= t.n || v < 0 || v >= t.n then
      invalid_arg
        (Printf.sprintf "Graph.apply_edits: %s endpoint out of range" what);
    if u < v then (u, v) else (v, u)
  in
  let dels = Hashtbl.create (max 1 (List.length del)) in
  List.iter
    (fun e ->
      let u, v = norm "del" e in
      if not (is_edge t u v) then
        invalid_arg
          (Printf.sprintf "Graph.apply_edits: deleting non-edge (%d,%d)" u v);
      Hashtbl.replace dels (u, v) ())
    del;
  let adds = Hashtbl.create (max 1 (List.length add)) in
  List.iter
    (fun e ->
      let u, v = norm "add" e in
      if Hashtbl.mem dels (u, v) then
        invalid_arg
          (Printf.sprintf "Graph.apply_edits: edge (%d,%d) both deleted and added"
             u v);
      if is_edge t u v then
        invalid_arg
          (Printf.sprintf "Graph.apply_edits: adding existing edge (%d,%d)" u v);
      Hashtbl.replace adds (u, v) ())
    add;
  let sets = Array.make t.n [] in
  for u = 0 to t.n - 1 do
    Array.iter
      (fun v ->
        if u < v && not (Hashtbl.mem dels (u, v)) then begin
          sets.(u) <- v :: sets.(u);
          sets.(v) <- u :: sets.(v)
        end)
      t.adj.(u)
  done;
  Hashtbl.iter
    (fun (u, v) () ->
      sets.(u) <- v :: sets.(u);
      sets.(v) <- u :: sets.(v))
    adds;
  let adj =
    Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) sets
  in
  let edge_offset, m = build_offsets t.n adj in
  { n = t.n; adj; m; edge_offset }

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d, maxdeg=%d)" t.n t.m (max_degree t)

let equal a b =
  a.n = b.n
  && a.m = b.m
  && (let ok = ref true in
      for u = 0 to a.n - 1 do
        if a.adj.(u) <> b.adj.(u) then ok := false
      done;
      !ok)
