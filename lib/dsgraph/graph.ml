(* Flat CSR (compressed sparse row) graph core. The whole structure is two
   Bigarrays of native ints — [offsets] (n+1 cells) and [targets] (2m cells,
   each undirected edge stored in both rows, rows sorted ascending) — so a
   10^6-node / 10^7-edge graph is two contiguous buffers with no per-node
   heap blocks, and Io.save_csr/load_csr can blit or mmap them directly. *)

type int_array1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  m : int;
  offsets : int_array1;
  targets : int_array1;
  (* Per-node offsets into the dense edge numbering; edge (u,v) with u < v
     gets index [edge_offset.(u) + position of v among u's larger
     neighbors]. Computed on first [edge_index] call: only the congestion
     accounting needs it, and skipping it keeps mmap loads O(1). *)
  mutable edge_offset : int array option;
}

let ba_create len : int_array1 =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 len)

let n t = t.n
let m t = t.m
let degree t v = t.offsets.{v + 1} - t.offsets.{v}
let offsets t = t.offsets
let targets t = t.targets

let iter_neighbors t v f =
  let hi = t.offsets.{v + 1} in
  for i = t.offsets.{v} to hi - 1 do
    f t.targets.{i}
  done
[@@hot]

let neighbors t v =
  let lo = t.offsets.{v} in
  Array.init (t.offsets.{v + 1} - lo) (fun i -> t.targets.{lo + i})

let nodes t = List.init t.n (fun i -> i)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = degree t v in
    if d > !best then best := d
  done;
  !best

(* Edges are accumulated packed, one per add: (min lsl 31) lor max. This
   keeps the builder a single growable int buffer (no tuple per edge) and
   makes sort-and-dedup a plain int sort; it caps n at 2^31, far beyond
   what a 63-bit address space can hold as CSR anyway. *)

let shift = 31
let lowmask = (1 lsl shift) - 1

type builder = {
  bn : int;
  mutable packed : int_array1;
  mutable blen : int;
  mutable built : bool;
}

module Builder = struct
  let create ~n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative n";
    if n > 1 lsl shift then
      invalid_arg "Graph.Builder.create: n exceeds 2^31";
    { bn = n; packed = ba_create 1024; blen = 0; built = false }

  let add_edge b u v =
    if b.built then invalid_arg "Graph.Builder.add_edge: already built";
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg "Graph.Builder.add_edge: endpoint out of range";
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    let lo = if u < v then u else v and hi = if u < v then v else u in
    let len = b.blen in
    if len = Bigarray.Array1.dim b.packed then begin
      let grown = ba_create (2 * len) in
      Bigarray.Array1.blit b.packed (Bigarray.Array1.sub grown 0 len);
      b.packed <- grown
    end;
    b.packed.{len} <- (lo lsl shift) lor hi;
    b.blen <- len + 1

  (* monomorphic in-place quicksort on a slice; inclusive bounds *)
  let rec qsort (a : int_array1) lo hi =
    if hi - lo < 16 then
      for i = lo + 1 to hi do
        let x = a.{i} in
        let j = ref (i - 1) in
        while !j >= lo && a.{!j} > x do
          a.{!j + 1} <- a.{!j};
          decr j
        done;
        a.{!j + 1} <- x
      done
    else begin
      let swap i j =
        let tmp = a.{i} in
        a.{i} <- a.{j};
        a.{j} <- tmp
      in
      let mid = (lo + hi) / 2 in
      if a.{mid} < a.{lo} then swap mid lo;
      if a.{hi} < a.{lo} then swap hi lo;
      if a.{hi} < a.{mid} then swap hi mid;
      let pivot = a.{mid} in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.{!i} < pivot do
          incr i
        done;
        while a.{!j} > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort a lo !j;
      qsort a !i hi
    end

  let build b =
    if b.built then invalid_arg "Graph.Builder.build: already built";
    b.built <- true;
    let n = b.bn and k = b.blen in
    let packed = b.packed in
    (* group by smaller endpoint (counting sort), then sort each group by
       the packed value — i.e. by larger endpoint *)
    let group = Array.make (n + 1) 0 in
    for i = 0 to k - 1 do
      let u = packed.{i} lsr shift in
      group.(u + 1) <- group.(u + 1) + 1
    done;
    for u = 1 to n do
      group.(u) <- group.(u) + group.(u - 1)
    done;
    let cursor = Array.sub group 0 (max 1 n) in
    let sorted = ba_create k in
    for i = 0 to k - 1 do
      let p = packed.{i} in
      let u = p lsr shift in
      sorted.{cursor.(u)} <- p;
      cursor.(u) <- cursor.(u) + 1
    done;
    b.packed <- ba_create 0;
    for u = 0 to n - 1 do
      qsort sorted group.(u) (group.(u + 1) - 1)
    done;
    (* dedup pass: degrees over distinct edges only *)
    let deg = Array.make (max 1 n) 0 in
    let m = ref 0 in
    for u = 0 to n - 1 do
      let prev = ref (-1) in
      for i = group.(u) to group.(u + 1) - 1 do
        let p = sorted.{i} in
        if p <> !prev then begin
          prev := p;
          incr m;
          let v = p land lowmask in
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1
        end
      done
    done;
    let m = !m in
    let offsets = ba_create (n + 1) in
    offsets.{0} <- 0;
    for u = 0 to n - 1 do
      offsets.{u + 1} <- offsets.{u} + deg.(u)
    done;
    let targets = ba_create (2 * m) in
    let fill = Array.make (max 1 n) 0 in
    for u = 0 to n - 1 do
      fill.(u) <- offsets.{u}
    done;
    (* scatter in (u,v)-sorted order: each row first receives its smaller
       partners (in increasing order of their ids), then — once its own
       group is reached — its larger partners in increasing order, so
       every row comes out sorted without a second per-row sort *)
    for u = 0 to n - 1 do
      let prev = ref (-1) in
      for i = group.(u) to group.(u + 1) - 1 do
        let p = sorted.{i} in
        if p <> !prev then begin
          prev := p;
          let v = p land lowmask in
          targets.{fill.(u)} <- v;
          fill.(u) <- fill.(u) + 1;
          targets.{fill.(v)} <- u;
          fill.(v) <- fill.(v) + 1
        end
      done
    done;
    { n; m; offsets; targets; edge_offset = None }
end

let of_edge_seq ~n seq =
  let b = Builder.create ~n in
  Seq.iter (fun (u, v) -> Builder.add_edge b u v) seq;
  Builder.build b

let edges_seq t =
  let rec from u i () =
    if u >= t.n then Seq.Nil
    else if i >= t.offsets.{u + 1} then from (u + 1) t.offsets.{u + 1} ()
    else
      let v = t.targets.{i} in
      if v > u then Seq.Cons ((u, v), from u (i + 1)) else from u (i + 1) ()
  in
  fun () -> if t.n = 0 then Seq.Nil else from 0 0 ()

let of_csr_unchecked ~n ~m ~offsets ~targets =
  if n < 0 || m < 0 then invalid_arg "Graph.of_csr_unchecked: negative size";
  if Bigarray.Array1.dim offsets < n + 1 then
    invalid_arg "Graph.of_csr_unchecked: offsets too short";
  if Bigarray.Array1.dim targets < 2 * m then
    invalid_arg "Graph.of_csr_unchecked: targets too short";
  if offsets.{0} <> 0 || offsets.{n} <> 2 * m then
    invalid_arg "Graph.of_csr_unchecked: inconsistent offsets";
  { n; m; offsets; targets; edge_offset = None }

let is_edge t u v =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let x = t.targets.{mid} in
      if x = v then true
      else if x < v then search (mid + 1) hi
      else search lo mid
  in
  search t.offsets.{u} t.offsets.{u + 1}

let iter_edges t f =
  for u = 0 to t.n - 1 do
    let hi = t.offsets.{u + 1} in
    for i = t.offsets.{u} to hi - 1 do
      let v = t.targets.{i} in
      if u < v then f u v
    done
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun u v -> acc := f !acc u v);
  !acc

let edge_offset t =
  match t.edge_offset with
  | Some a -> a
  | None ->
      let a = Array.make (max 1 t.n) 0 in
      let acc = ref 0 in
      for u = 0 to t.n - 1 do
        a.(u) <- !acc;
        iter_neighbors t u (fun v -> if v > u then incr acc)
      done;
      t.edge_offset <- Some a;
      a

let edge_index t (u, v) =
  let u, v = if u < v then (u, v) else (v, u) in
  if not (is_edge t u v) then raise Not_found;
  (* count neighbors of u that are > u and < v *)
  let pos = ref 0 in
  iter_neighbors t u (fun w -> if w > u && w < v then incr pos);
  (edge_offset t).(u) + !pos

let apply_edits t ~del ~add =
  let norm what (u, v) =
    if u = v then
      invalid_arg (Printf.sprintf "Graph.apply_edits: self-loop in %s" what);
    if u < 0 || u >= t.n || v < 0 || v >= t.n then
      invalid_arg
        (Printf.sprintf "Graph.apply_edits: %s endpoint out of range" what);
    if u < v then (u, v) else (v, u)
  in
  let dels = Hashtbl.create (max 1 (List.length del)) in
  List.iter
    (fun e ->
      let u, v = norm "del" e in
      if not (is_edge t u v) then
        invalid_arg
          (Printf.sprintf "Graph.apply_edits: deleting non-edge (%d,%d)" u v);
      Hashtbl.replace dels (u, v) ())
    del;
  let adds = Hashtbl.create (max 1 (List.length add)) in
  List.iter
    (fun e ->
      let u, v = norm "add" e in
      if Hashtbl.mem dels (u, v) then
        invalid_arg
          (Printf.sprintf
             "Graph.apply_edits: edge (%d,%d) both deleted and added" u v);
      if is_edge t u v then
        invalid_arg
          (Printf.sprintf "Graph.apply_edits: adding existing edge (%d,%d)" u
             v);
      Hashtbl.replace adds (u, v) ())
    add;
  let b = Builder.create ~n:t.n in
  iter_edges t (fun u v ->
      if not (Hashtbl.mem dels (u, v)) then Builder.add_edge b u v);
  Hashtbl.iter (fun (u, v) () -> Builder.add_edge b u v) adds;
  Builder.build b

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d, maxdeg=%d)" t.n t.m (max_degree t)

let equal a b =
  a.n = b.n
  && a.m = b.m
  &&
  let ok = ref true in
  for u = 0 to a.n do
    if a.offsets.{u} <> b.offsets.{u} then ok := false
  done;
  if !ok then
    for i = 0 to (2 * a.m) - 1 do
      if a.targets.{i} <> b.targets.{i} then ok := false
    done;
  !ok
