let path n =
  Graph.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.create ~n ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let star n =
  Graph.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid: need positive dimensions";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (id x y, id (x + 1) y) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1)) :: !edges
    done
  done;
  Graph.create ~n:(w * h) ~edges:!edges

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Gen.torus: need w, h >= 3";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      edges := (id x y, id ((x + 1) mod w) y) :: !edges;
      edges := (id x y, id x ((y + 1) mod h)) :: !edges
    done
  done;
  Graph.create ~n:(w * h) ~edges:!edges

let binary_tree n =
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, (v - 1) / 2) :: !edges
  done;
  Graph.create ~n ~edges:!edges

let random_tree rng n =
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, Rng.int rng v) :: !edges
  done;
  Graph.create ~n ~edges:!edges

let hypercube d =
  if d < 1 then invalid_arg "Gen.hypercube: need d >= 1";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then edges := (v, u) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let erdos_renyi rng n p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

(* One random perfect matching on [0..n-1] avoiding self-pairs that would
   collide with [forbidden]; returns pairs. *)
let random_matching rng n forbidden =
  let max_attempts = 200 in
  let rec attempt k =
    if k >= max_attempts then None
    else
      let p = Rng.permutation rng n in
      let ok = ref true in
      let pairs = ref [] in
      let i = ref 0 in
      while !ok && !i < n do
        let u = p.(!i) and v = p.(!i + 1) in
        if forbidden u v then ok := false
        else pairs := ((min u v, max u v) : int * int) :: !pairs;
        i := !i + 2
      done;
      if !ok then Some !pairs else attempt (k + 1)
  in
  attempt 0

let random_regular rng n d =
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n*d must be even";
  if d >= n then invalid_arg "Gen.random_regular: need d < n";
  if d mod 2 = 1 && n mod 2 = 1 then
    invalid_arg "Gen.random_regular: odd d needs even n";
  (* union of d matchings (n even) — for odd n with even d use d/2 random
     hamiltonian-cycle-ish 2-factors via permutations *)
  let seen = Hashtbl.create (n * d) in
  let forbidden u v = u = v || Hashtbl.mem seen (min u v, max u v) in
  let edges = ref [] in
  if n mod 2 = 0 then
    for _ = 1 to d do
      match random_matching rng n forbidden with
      | Some pairs ->
          List.iter
            (fun (u, v) ->
              Hashtbl.add seen (u, v) ();
              edges := (u, v) :: !edges)
            pairs
      | None -> failwith "Gen.random_regular: could not complete matching"
    done
  else
    (* odd n, even d: d/2 random cyclic 2-factors *)
    for _ = 1 to d / 2 do
      let rec attempt k =
        if k >= 200 then failwith "Gen.random_regular: could not complete cycle"
        else
          let p = Rng.permutation rng n in
          let ok = ref true in
          let pairs = ref [] in
          for i = 0 to n - 1 do
            let u = p.(i) and v = p.((i + 1) mod n) in
            if forbidden u v then ok := false
            else pairs := (min u v, max u v) :: !pairs
          done;
          (* the pairs list may contain duplicates within this attempt *)
          let sorted = List.sort_uniq compare !pairs in
          if !ok && List.length sorted = n then sorted else attempt (k + 1)
      in
      let pairs = attempt 0 in
      List.iter
        (fun (u, v) ->
          Hashtbl.add seen (u, v) ();
          edges := (u, v) :: !edges)
        pairs
    done;
  Graph.create ~n ~edges:!edges

let rec expander rng n =
  let g = random_regular rng n 4 in
  if Components.is_connected g then g else expander rng n

let subdivide g k =
  if k < 0 then invalid_arg "Gen.subdivide: k must be >= 0";
  if k = 0 then g
  else begin
    let n = Graph.n g in
    let next = ref n in
    let edges = ref [] in
    Graph.iter_edges g (fun u v ->
        (* replace (u,v) by u - w1 - ... - wk - v *)
        let first = !next in
        next := !next + k;
        edges := (u, first) :: !edges;
        for i = 0 to k - 2 do
          edges := (first + i, first + i + 1) :: !edges
        done;
        edges := (first + k - 1, v) :: !edges);
    Graph.create ~n:!next ~edges:!edges
  end

let ring_of_cliques k s =
  if k < 3 then invalid_arg "Gen.ring_of_cliques: need k >= 3";
  if s < 2 then invalid_arg "Gen.ring_of_cliques: need s >= 2";
  let n = k * s in
  let edges = ref [] in
  for c = 0 to k - 1 do
    let base = c * s in
    for u = 0 to s - 1 do
      for v = u + 1 to s - 1 do
        edges := (base + u, base + v) :: !edges
      done
    done;
    (* bridge: last node of clique c to first node of clique c+1 *)
    let next_base = (c + 1) mod k * s in
    edges := (base + s - 1, next_base) :: !edges
  done;
  Graph.create ~n ~edges:!edges

let barbell s len =
  if s < 2 then invalid_arg "Gen.barbell: need s >= 2";
  let n = (2 * s) + len in
  let edges = ref [] in
  let clique base =
    for u = 0 to s - 1 do
      for v = u + 1 to s - 1 do
        edges := (base + u, base + v) :: !edges
      done
    done
  in
  clique 0;
  clique (s + len);
  (* path of interior nodes s .. s+len-1 *)
  let prev = ref (s - 1) in
  for i = 0 to len - 1 do
    edges := (!prev, s + i) :: !edges;
    prev := s + i
  done;
  edges := (!prev, s + len) :: !edges;
  Graph.create ~n ~edges:!edges

let caterpillar rng spine legs =
  if spine < 1 then invalid_arg "Gen.caterpillar: need spine >= 1";
  let n = spine + legs in
  let edges = ref (List.init (spine - 1) (fun i -> (i, i + 1))) in
  for l = 0 to legs - 1 do
    edges := (spine + l, Rng.int rng spine) :: !edges
  done;
  Graph.create ~n ~edges:!edges

let lollipop s len =
  if s < 2 then invalid_arg "Gen.lollipop: need s >= 2";
  let n = s + len in
  let edges = ref [] in
  for u = 0 to s - 1 do
    for v = u + 1 to s - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let prev = ref (s - 1) in
  for i = 0 to len - 1 do
    edges := (!prev, s + i) :: !edges;
    prev := s + i
  done;
  Graph.create ~n ~edges:!edges

let barabasi_albert rng n k =
  if k < 1 || k >= n then invalid_arg "Gen.barabasi_albert: need 1 <= k < n";
  let edges = ref [] in
  (* endpoint pool: each edge contributes both endpoints, so sampling the
     pool uniformly is sampling nodes proportionally to degree *)
  let capacity = (2 * ((k + 1) * k)) + (4 * n * k) in
  let pool = Array.make (max 2 capacity) 0 in
  let pool_size = ref 0 in
  let add_edge u v =
    edges := (u, v) :: !edges;
    pool.(!pool_size) <- u;
    pool.(!pool_size + 1) <- v;
    pool_size := !pool_size + 2
  in
  (* seed clique on k+1 nodes *)
  for u = 0 to k do
    for v = u + 1 to k do
      add_edge u v
    done
  done;
  for v = k + 1 to n - 1 do
    (* sample k distinct targets by degree; retry on duplicates *)
    let chosen = Hashtbl.create k in
    let guard = ref 0 in
    let snapshot = !pool_size in
    while Hashtbl.length chosen < k && !guard < 10_000 do
      incr guard;
      let t = pool.(Rng.int rng snapshot) in
      if t <> v && not (Hashtbl.mem chosen t) then Hashtbl.replace chosen t ()
    done;
    Hashtbl.iter (fun t () -> add_edge v t) chosen
  done;
  Graph.create ~n ~edges:!edges

let planted_partition rng k s p_in p_out =
  let n = k * s in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = if u / s = v / s then p_in else p_out in
      if Rng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let disjoint_union a b =
  let na = Graph.n a in
  let edges =
    Graph.fold_edges a ~init:[] ~f:(fun acc u v -> (u, v) :: acc)
  in
  let edges =
    Graph.fold_edges b ~init:edges ~f:(fun acc u v -> (u + na, v + na) :: acc)
  in
  Graph.create ~n:(na + Graph.n b) ~edges

let ensure_connected rng g =
  let comps = Components.components g in
  match comps with
  | [] | [ _ ] -> g
  | _ ->
      let pick rng comp =
        let a = Array.of_list comp in
        a.(Rng.int rng (Array.length a))
      in
      let rec bridge acc = function
        | c1 :: (c2 :: _ as rest) -> bridge ((pick rng c1, pick rng c2) :: acc) rest
        | _ -> acc
      in
      let extra = bridge [] comps in
      let edges =
        Graph.fold_edges g ~init:extra ~f:(fun acc u v -> (u, v) :: acc)
      in
      Graph.create ~n:(Graph.n g) ~edges
