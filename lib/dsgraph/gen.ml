(* Generators stream edges straight into a Graph.Builder — one packed int
   per edge, no (int * int) list is ever materialized — so the large-scale
   families (rmat, power_law, pref_attach) stay flat-memory at n = 10^6+. *)

let build_edges n f =
  let b = Graph.Builder.create ~n in
  f (Graph.Builder.add_edge b);
  Graph.Builder.build b

let path n =
  build_edges n (fun add ->
      for i = 0 to n - 2 do
        add i (i + 1)
      done)

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  build_edges n (fun add ->
      add (n - 1) 0;
      for i = 0 to n - 2 do
        add i (i + 1)
      done)

let complete n =
  build_edges n (fun add ->
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          add u v
        done
      done)

let star n =
  build_edges n (fun add ->
      for i = 1 to n - 1 do
        add 0 i
      done)

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid: need positive dimensions";
  let id x y = (y * w) + x in
  build_edges (w * h) (fun add ->
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          if x + 1 < w then add (id x y) (id (x + 1) y);
          if y + 1 < h then add (id x y) (id x (y + 1))
        done
      done)

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Gen.torus: need w, h >= 3";
  let id x y = (y * w) + x in
  build_edges (w * h) (fun add ->
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          add (id x y) (id ((x + 1) mod w) y);
          add (id x y) (id x ((y + 1) mod h))
        done
      done)

let binary_tree n =
  build_edges n (fun add ->
      for v = 1 to n - 1 do
        add v ((v - 1) / 2)
      done)

let random_tree rng n =
  build_edges n (fun add ->
      for v = 1 to n - 1 do
        add v (Rng.int rng v)
      done)

let hypercube d =
  if d < 1 then invalid_arg "Gen.hypercube: need d >= 1";
  let n = 1 lsl d in
  build_edges n (fun add ->
      for v = 0 to n - 1 do
        for b = 0 to d - 1 do
          let u = v lxor (1 lsl b) in
          if u > v then add v u
        done
      done)

let erdos_renyi rng n p =
  build_edges n (fun add ->
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Rng.float rng 1.0 < p then add u v
        done
      done)

(* One random perfect matching on [0..n-1] avoiding self-pairs that would
   collide with [forbidden]; returns pairs. *)
let random_matching rng n forbidden =
  let max_attempts = 200 in
  let rec attempt k =
    if k >= max_attempts then None
    else
      let p = Rng.permutation rng n in
      let ok = ref true in
      let pairs = ref [] in
      let i = ref 0 in
      while !ok && !i < n do
        let u = p.(!i) and v = p.(!i + 1) in
        if forbidden u v then ok := false
        else pairs := ((min u v, max u v) : int * int) :: !pairs;
        i := !i + 2
      done;
      if !ok then Some !pairs else attempt (k + 1)
  in
  attempt 0

let random_regular rng n d =
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n*d must be even";
  if d >= n then invalid_arg "Gen.random_regular: need d < n";
  if d mod 2 = 1 && n mod 2 = 1 then
    invalid_arg "Gen.random_regular: odd d needs even n";
  (* union of d matchings (n even) — for odd n with even d use d/2 random
     hamiltonian-cycle-ish 2-factors via permutations *)
  let seen = Hashtbl.create (n * d) in
  let forbidden u v = u = v || Hashtbl.mem seen (min u v, max u v) in
  let b = Graph.Builder.create ~n in
  if n mod 2 = 0 then
    for _ = 1 to d do
      match random_matching rng n forbidden with
      | Some pairs ->
          List.iter
            (fun (u, v) ->
              Hashtbl.add seen (u, v) ();
              Graph.Builder.add_edge b u v)
            pairs
      | None -> failwith "Gen.random_regular: could not complete matching"
    done
  else
    (* odd n, even d: d/2 random cyclic 2-factors *)
    for _ = 1 to d / 2 do
      let rec attempt k =
        if k >= 200 then failwith "Gen.random_regular: could not complete cycle"
        else
          let p = Rng.permutation rng n in
          let ok = ref true in
          let pairs = ref [] in
          for i = 0 to n - 1 do
            let u = p.(i) and v = p.((i + 1) mod n) in
            if forbidden u v then ok := false
            else pairs := (min u v, max u v) :: !pairs
          done;
          (* the pairs list may contain duplicates within this attempt *)
          let sorted = List.sort_uniq compare !pairs in
          if !ok && List.length sorted = n then sorted else attempt (k + 1)
      in
      let pairs = attempt 0 in
      List.iter
        (fun (u, v) ->
          Hashtbl.add seen (u, v) ();
          Graph.Builder.add_edge b u v)
        pairs
    done;
  Graph.Builder.build b

let rec expander rng n =
  let g = random_regular rng n 4 in
  if Components.is_connected g then g else expander rng n

let subdivide g k =
  if k < 0 then invalid_arg "Gen.subdivide: k must be >= 0";
  if k = 0 then g
  else begin
    let n = Graph.n g in
    let total = n + (k * Graph.m g) in
    let next = ref n in
    build_edges total (fun add ->
        Graph.iter_edges g (fun u v ->
            (* replace (u,v) by u - w1 - ... - wk - v *)
            let first = !next in
            next := !next + k;
            add u first;
            for i = 0 to k - 2 do
              add (first + i) (first + i + 1)
            done;
            add (first + k - 1) v))
  end

let ring_of_cliques k s =
  if k < 3 then invalid_arg "Gen.ring_of_cliques: need k >= 3";
  if s < 2 then invalid_arg "Gen.ring_of_cliques: need s >= 2";
  build_edges (k * s) (fun add ->
      for c = 0 to k - 1 do
        let base = c * s in
        for u = 0 to s - 1 do
          for v = u + 1 to s - 1 do
            add (base + u) (base + v)
          done
        done;
        (* bridge: last node of clique c to first node of clique c+1 *)
        let next_base = (c + 1) mod k * s in
        add (base + s - 1) next_base
      done)

let barbell s len =
  if s < 2 then invalid_arg "Gen.barbell: need s >= 2";
  build_edges ((2 * s) + len) (fun add ->
      let clique base =
        for u = 0 to s - 1 do
          for v = u + 1 to s - 1 do
            add (base + u) (base + v)
          done
        done
      in
      clique 0;
      clique (s + len);
      (* path of interior nodes s .. s+len-1 *)
      let prev = ref (s - 1) in
      for i = 0 to len - 1 do
        add !prev (s + i);
        prev := s + i
      done;
      add !prev (s + len))

let caterpillar rng spine legs =
  if spine < 1 then invalid_arg "Gen.caterpillar: need spine >= 1";
  build_edges (spine + legs) (fun add ->
      for i = 0 to spine - 2 do
        add i (i + 1)
      done;
      for l = 0 to legs - 1 do
        add (spine + l) (Rng.int rng spine)
      done)

let lollipop s len =
  if s < 2 then invalid_arg "Gen.lollipop: need s >= 2";
  build_edges (s + len) (fun add ->
      for u = 0 to s - 1 do
        for v = u + 1 to s - 1 do
          add u v
        done
      done;
      let prev = ref (s - 1) in
      for i = 0 to len - 1 do
        add !prev (s + i);
        prev := s + i
      done)

let barabasi_albert rng n k =
  if k < 1 || k >= n then invalid_arg "Gen.barabasi_albert: need 1 <= k < n";
  let b = Graph.Builder.create ~n in
  (* endpoint pool: each edge contributes both endpoints, so sampling the
     pool uniformly is sampling nodes proportionally to degree *)
  let capacity = (2 * ((k + 1) * k)) + (4 * n * k) in
  let pool = Array.make (max 2 capacity) 0 in
  let pool_size = ref 0 in
  let add_edge u v =
    Graph.Builder.add_edge b u v;
    pool.(!pool_size) <- u;
    pool.(!pool_size + 1) <- v;
    pool_size := !pool_size + 2
  in
  (* seed clique on k+1 nodes *)
  for u = 0 to k do
    for v = u + 1 to k do
      add_edge u v
    done
  done;
  for v = k + 1 to n - 1 do
    (* sample k distinct targets by degree; retry on duplicates *)
    let chosen = Hashtbl.create k in
    let guard = ref 0 in
    let snapshot = !pool_size in
    while Hashtbl.length chosen < k && !guard < 10_000 do
      incr guard;
      let t = pool.(Rng.int rng snapshot) in
      if t <> v && not (Hashtbl.mem chosen t) then Hashtbl.replace chosen t ()
    done;
    Hashtbl.iter (fun t () -> add_edge v t) chosen
  done;
  Graph.Builder.build b

let planted_partition rng k s p_in p_out =
  build_edges (k * s) (fun add ->
      let n = k * s in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let p = if u / s = v / s then p_in else p_out in
          if Rng.float rng 1.0 < p then add u v
        done
      done)

let disjoint_union a b =
  let na = Graph.n a in
  build_edges (na + Graph.n b) (fun add ->
      Graph.iter_edges a add;
      Graph.iter_edges b (fun u v -> add (u + na) (v + na)))

let ensure_connected rng g =
  let comps = Components.components g in
  match comps with
  | [] | [ _ ] -> g
  | _ ->
      let pick rng comp =
        let a = Array.of_list comp in
        a.(Rng.int rng (Array.length a))
      in
      let rec bridge acc = function
        | c1 :: (c2 :: _ as rest) ->
            bridge ((pick rng c1, pick rng c2) :: acc) rest
        | _ -> acc
      in
      let extra = bridge [] comps in
      build_edges (Graph.n g) (fun add ->
          List.iter (fun (u, v) -> add u v) extra;
          Graph.iter_edges g add)

(* ------------------------------------------------------------------ *)
(* Large-scale families: streaming, O(m) work, O(m) packed ints        *)
(* ------------------------------------------------------------------ *)

let rmat ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) rng ~n ~m =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Gen.rmat: n must be a power of two >= 2";
  if a < 0.0 || b < 0.0 || c < 0.0 || a +. b +. c >= 1.0 then
    invalid_arg "Gen.rmat: quadrant probabilities must be in [0,1)";
  let scale =
    let s = ref 0 in
    while 1 lsl !s < n do
      incr s
    done;
    !s
  in
  let builder = Graph.Builder.create ~n in
  let ab = a +. b and abc = a +. b +. c in
  for _ = 1 to m do
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Rng.float rng 1.0 in
      let ubit, vbit =
        if r < a then (0, 0)
        else if r < ab then (0, 1)
        else if r < abc then (1, 0)
        else (1, 1)
      in
      u := (2 * !u) + ubit;
      v := (2 * !v) + vbit
    done;
    (* self-loops are dropped rather than resampled (keeps the draw count
       at exactly scale·m for any seed); duplicates merge at build *)
    if !u <> !v then Graph.Builder.add_edge builder !u !v
  done;
  Graph.Builder.build builder

let power_law ?(exponent = 2.5) rng ~n ~m =
  if n < 2 then invalid_arg "Gen.power_law: need n >= 2";
  if exponent <= 1.0 then invalid_arg "Gen.power_law: need exponent > 1";
  (* Chung-Lu style with a fixed edge budget: endpoints drawn i.i.d.
     proportionally to w_i = (i+1)^(-1/(exponent-1)), via binary search
     on the cumulative weights *)
  let alpha = -1.0 /. (exponent -. 1.0) in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (float_of_int (i + 1) ** alpha);
    cum.(i) <- !acc
  done;
  let total = !acc in
  let sample () =
    let x = Rng.float rng total in
    (* smallest i with cum.(i) > x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) > x then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let b = Graph.Builder.create ~n in
  for _ = 1 to m do
    let u = sample () in
    let v = sample () in
    if u <> v then Graph.Builder.add_edge b u v
  done;
  Graph.Builder.build b

let pref_attach rng ~n ~k =
  if k < 1 || k >= n then invalid_arg "Gen.pref_attach: need 1 <= k < n";
  (* Streaming preferential attachment: like barabasi_albert but without
     the per-node distinct-target retry loop — duplicate picks merge at
     build time, which is the standard scalable variant. The endpoint
     pool lives in one Bigarray: two cells per added edge. *)
  let seed_edges = (k + 1) * k / 2 in
  let capacity = 2 * (seed_edges + (k * (max 0 (n - k - 1)))) in
  let pool =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 2 capacity)
  in
  let pool_size = ref 0 in
  let b = Graph.Builder.create ~n in
  let add_edge u v =
    Graph.Builder.add_edge b u v;
    pool.{!pool_size} <- u;
    pool.{!pool_size + 1} <- v;
    pool_size := !pool_size + 2
  in
  for u = 0 to k do
    for v = u + 1 to k do
      add_edge u v
    done
  done;
  for v = k + 1 to n - 1 do
    let snapshot = !pool_size in
    for _ = 1 to k do
      (* v is not yet in the pool, so no self-loop is possible *)
      add_edge v pool.{Rng.int rng snapshot}
    done
  done;
  Graph.Builder.build b
