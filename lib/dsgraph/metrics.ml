let cut_edges g set =
  Graph.fold_edges g ~init:0 ~f:(fun acc u v ->
      if Mask.mem set u <> Mask.mem set v then acc + 1 else acc)

let volume g set =
  let acc = ref 0 in
  Mask.iter set (fun v -> acc := !acc + Graph.degree g v);
  !acc

let conductance_of_set g set =
  let vol_s = volume g set in
  let vol_rest = (2 * Graph.m g) - vol_s in
  let denom = min vol_s vol_rest in
  if denom = 0 then Float.nan
  else float_of_int (cut_edges g set) /. float_of_int denom

let node_boundary g set =
  let n = Graph.n g in
  let marked = Array.make n false in
  Mask.iter set (fun u ->
      Graph.iter_neighbors g u (fun v ->
          if not (Mask.mem set v) then marked.(v) <- true));
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if marked.(v) then acc := v :: !acc
  done;
  !acc

let sweep_conductance g ~source =
  let n = Graph.n g in
  let dist = Bfs.distances g ~source in
  let order =
    List.sort
      (fun a b -> compare dist.(a) dist.(b))
      (List.filter (fun v -> dist.(v) >= 0) (Graph.nodes g))
  in
  let set = Mask.empty n in
  let best = ref Float.infinity in
  let order = Array.of_list order in
  let k = Array.length order in
  for i = 0 to k - 2 do
    Mask.add set order.(i);
    (* only evaluate at radius boundaries to keep this O(n·m) worst case in
       check: evaluate whenever the next node is strictly farther *)
    if dist.(order.(i + 1)) > dist.(order.(i)) then begin
      let phi = conductance_of_set g set in
      if not (Float.is_nan phi) && phi < !best then best := phi
    end
  done;
  !best

let average_degree g =
  if Graph.n g = 0 then 0.0
  else 2.0 *. float_of_int (Graph.m g) /. float_of_int (Graph.n g)

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let d = Graph.degree g v in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    (Graph.nodes g);
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])
