(** Deterministic, seedable pseudo-random number generator (splitmix64).

    All randomized algorithms and workload generators in this repository
    draw their randomness from this module, so every experiment is
    reproducible from an integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Useful for giving sub-experiments their own streams. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t rate] samples from Exp(rate) (mean [1/rate]),
    the distribution used by the MPX random-shift clustering. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of
    a Bernoulli([p]) trial sequence (support {0, 1, 2, ...}), as used by
    the Linial–Saks radius sampling. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
