(** Node subsets ("alive" sets) used to run algorithms on induced subgraphs
    [G\[S\]] without materializing them.

    Every traversal primitive in {!Bfs} and {!Components} takes an optional
    mask; nodes outside the mask are treated as deleted. *)

type t

val full : int -> t
(** All of [0..n-1]. *)

val empty : int -> t

val of_list : int -> int list -> t

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val count : t -> int
(** Number of member nodes; O(1). *)

val size : t -> int
(** Size of the underlying universe [n]. *)

val to_list : t -> int list
(** Members in increasing order. *)

val iter : t -> (int -> unit) -> unit

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
