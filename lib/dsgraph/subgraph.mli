(** Materialized induced subgraphs.

    Most algorithms avoid materialization by taking {!Mask} arguments, but
    genuinely distributed executions (e.g. re-running a node program on
    the not-yet-clustered remainder) need a real graph with compact node
    identifiers. *)

val induce : Graph.t -> int list -> Graph.t * int array
(** [induce g nodes] returns the subgraph induced by [nodes] (compacted to
    identifiers [0 .. k-1], in the sorted order of [nodes]) together with
    the map back: cell [i] holds the original identifier of new node [i].
    @raise Invalid_argument on duplicate or out-of-range nodes. *)

val induce_mask : Graph.t -> Mask.t -> Graph.t * int array
