(** Immutable simple undirected graphs in flat CSR form.

    Nodes are the integers [0 .. n-1]; this plays the role of the
    {i O(log n)-bit unique identifiers} of the CONGEST model. Graphs are
    simple (no self-loops, no parallel edges) and undirected; every edge
    appears in both rows, and rows are sorted.

    The representation is two Bigarrays of native ints: {!offsets}
    ([n+1] cells) and {!targets} ([2m] cells), so million-node graphs
    are two contiguous buffers that {!Io.save_csr} / {!Io.load_csr} can
    write and mmap wholesale. Construction goes through {!Builder} (or
    {!of_edge_seq}), which streams packed edges and finishes with one
    counting-sort + dedup pass — never a per-edge heap value. *)

type t

type int_array1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type builder
(** A write-once graph under construction: stream edges in with
    {!Builder.add_edge}, finish with {!Builder.build}. *)

module Builder : sig
  val create : n:int -> builder
  (** Fresh builder on nodes [0..n-1].
      @raise Invalid_argument if [n] is negative or exceeds [2^31]. *)

  val add_edge : builder -> int -> int -> unit
  (** Adds an undirected edge; orientation is irrelevant and duplicates
      (in either orientation) are merged at {!build} time. O(1) amortized,
      one packed int per call. @raise Invalid_argument on out-of-range
      endpoints, self-loops, or a builder already built. *)

  val build : builder -> t
  (** Sorts, dedups and freezes into CSR; the builder is consumed and
      must not be reused. O(k log k) in the number of added edges. *)
end

val of_edge_seq : n:int -> (int * int) Seq.t -> t
(** [of_edge_seq ~n seq] streams [seq] through a {!Builder}. *)

val edges_seq : t -> (int * int) Seq.t
(** All edges with [u < v], in lexicographic order, produced lazily. *)

val of_csr_unchecked :
  n:int -> m:int -> offsets:int_array1 -> targets:int_array1 -> t
(** Wraps raw CSR buffers without validating sortedness or symmetry —
    the constructor {!Io.load_csr} uses on mmapped data, where the
    checksummed header vouches for integrity. Only O(1) shape checks
    ([dim offsets >= n+1], [dim targets >= 2m], [offsets.{0} = 0],
    [offsets.{n} = 2m]) are performed.
    @raise Invalid_argument when those fail. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int

val max_degree : t -> int

val offsets : t -> int_array1
(** The CSR row-offset buffer, [n+1] cells; row [u] of {!targets} is
    [offsets.{u} .. offsets.{u+1} - 1]. A view of the live structure —
    treat as read-only. *)

val targets : t -> int_array1
(** The CSR adjacency buffer, [2m] cells, each row sorted. A view of the
    live structure — treat as read-only. *)

val neighbors : t -> int -> int array
(** Sorted adjacency of a node, as a freshly allocated array the caller
    owns (a copying convenience). Hot paths should use {!iter_neighbors}
    or the {!offsets}/{!targets} views, which allocate nothing. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Applies the function to each neighbor in sorted order; allocation-free. *)

val is_edge : t -> int -> int -> bool
(** Binary search on the adjacency row; [O(log degree)]. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterates each undirected edge once, with [u < v]. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val edge_index : t -> int * int -> int
(** [edge_index g (u, v)] is a dense index in [0 .. m-1] identifying the
    undirected edge, usable for per-edge accounting (e.g. congestion).
    The numbering table is computed on first use and cached.
    @raise Not_found if [(u, v)] is not an edge. *)

val apply_edits : t -> del:(int * int) list -> add:(int * int) list -> t
(** [apply_edits t ~del ~add] is a new graph with the edges of [del]
    removed and the edges of [add] inserted; [t] is unchanged. This is
    the {e only} sanctioned way to derive a faulted graph from a base
    graph — the conformance lint confines its callers to [lib/dsgraph]
    and the repair engine ([lib/cluster/repair.ml]), so every fault
    delta flows through one audited path.
    @raise Invalid_argument on out-of-range endpoints, self-loops,
    deleting a non-edge, adding an existing edge, or an edge listed in
    both [del] and [add]. *)

val nodes : t -> int list

val pp : Format.formatter -> t -> unit
(** Short human-readable summary ([n], [m], max degree). *)

val equal : t -> t -> bool
(** Structural equality (same node count and edge set). *)
