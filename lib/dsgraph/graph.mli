(** Immutable simple undirected graphs in compressed adjacency form.

    Nodes are the integers [0 .. n-1]; this plays the role of the
    {i O(log n)-bit unique identifiers} of the CONGEST model. Graphs are
    simple (no self-loops, no parallel edges) and undirected: every edge
    appears in both adjacency lists, and adjacency lists are sorted. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph on nodes [0..n-1]. Self-loops are
    rejected; duplicate edges (in either orientation) are merged.
    @raise Invalid_argument on out-of-range endpoints or self-loops. *)

val of_adj : int array array -> t
(** [of_adj adj] builds a graph from adjacency lists. The lists are
    symmetrized, sorted and deduplicated. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int

val max_degree : t -> int

val neighbors : t -> int -> int array
(** Sorted adjacency of a node. The returned array must not be mutated. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit

val is_edge : t -> int -> int -> bool
(** Binary search on the adjacency list; [O(log degree)]. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterates each undirected edge once, with [u < v]. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val edges : t -> (int * int) list
(** All edges with [u < v], in lexicographic order. *)

val edge_index : t -> (int * int) -> int
(** [edge_index g (u, v)] is a dense index in [0 .. m-1] identifying the
    undirected edge, usable for per-edge accounting (e.g. congestion).
    @raise Not_found if [(u, v)] is not an edge. *)

val apply_edits : t -> del:(int * int) list -> add:(int * int) list -> t
(** [apply_edits t ~del ~add] is a new graph with the edges of [del]
    removed and the edges of [add] inserted; [t] is unchanged. This is
    the {e only} sanctioned way to derive a faulted graph from a base
    graph — the conformance lint confines its callers to [lib/dsgraph]
    and the repair engine ([lib/cluster/repair.ml]), so every fault
    delta flows through one audited path.
    @raise Invalid_argument on out-of-range endpoints, self-loops,
    deleting a non-edge, adding an existing edge, or an edge listed in
    both [del] and [add]. *)

val nodes : t -> int list

val pp : Format.formatter -> t -> unit
(** Short human-readable summary ([n], [m], max degree). *)

val equal : t -> t -> bool
(** Structural equality (same node count and edge set). *)
