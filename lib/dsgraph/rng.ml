type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_seed t)

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let r = Int64.to_int (Int64.logand (int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let float t x =
  (* 53 random bits mapped to [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = float t 1.0 in
  -.log (1.0 -. u) /. rate

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    int_of_float (Float.floor (log (1.0 -. u) /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
