type t = { mem : bool array; mutable count : int }

let full n = { mem = Array.make n true; count = n }
let empty n = { mem = Array.make n false; count = 0 }

let of_list n l =
  let t = empty n in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Mask.of_list: out of range";
      if not t.mem.(v) then begin
        t.mem.(v) <- true;
        t.count <- t.count + 1
      end)
    l;
  t

let copy t = { mem = Array.copy t.mem; count = t.count }
let mem t v = t.mem.(v)

let add t v =
  if not t.mem.(v) then begin
    t.mem.(v) <- true;
    t.count <- t.count + 1
  end

let remove t v =
  if t.mem.(v) then begin
    t.mem.(v) <- false;
    t.count <- t.count - 1
  end

let count t = t.count
let size t = Array.length t.mem

let to_list t =
  let acc = ref [] in
  for v = Array.length t.mem - 1 downto 0 do
    if t.mem.(v) then acc := v :: !acc
  done;
  !acc

let iter t f =
  for v = 0 to Array.length t.mem - 1 do
    if t.mem.(v) then f v
  done

let inter a b =
  let n = Array.length a.mem in
  if Array.length b.mem <> n then invalid_arg "Mask.inter: size mismatch";
  let r = empty n in
  for v = 0 to n - 1 do
    if a.mem.(v) && b.mem.(v) then add r v
  done;
  r

let diff a b =
  let n = Array.length a.mem in
  if Array.length b.mem <> n then invalid_arg "Mask.diff: size mismatch";
  let r = empty n in
  for v = 0 to n - 1 do
    if a.mem.(v) && not b.mem.(v) then add r v
  done;
  r

let subset a b =
  let n = Array.length a.mem in
  if Array.length b.mem <> n then invalid_arg "Mask.subset: size mismatch";
  let ok = ref true in
  for v = 0 to n - 1 do
    if a.mem.(v) && not b.mem.(v) then ok := false
  done;
  !ok

let pp fmt t = Format.fprintf fmt "mask(%d/%d)" t.count (Array.length t.mem)
