(** Reading and writing graphs.

    The text format is a plain edge list: an optional header line
    [# n <count>] (needed to preserve isolated trailing nodes), then one
    [u v] pair per line; [#]-lines and blank lines are ignored. *)

val to_edge_list : Graph.t -> string

val of_edge_list : string -> Graph.t
(** @raise Invalid_argument on malformed lines or bad endpoints. *)

val save : string -> Graph.t -> unit
(** [save path g] writes the edge-list format to a file. *)

val load : string -> Graph.t
(** @raise Sys_error on IO failure, [Invalid_argument] on parse errors. *)

val to_dot : ?cluster_of:(int -> int) -> Graph.t -> string
(** Graphviz output. With [cluster_of], nodes are filled with one of 12
    repeating colors by cluster id (negative = unclustered, white). *)
