(** Reading and writing graphs.

    Two formats:

    {ul
    {- A plain text edge list: an optional header line [# n <count>]
       (needed to preserve isolated trailing nodes), then one [u v] pair
       per line; [#]-lines and blank lines are ignored. Human-readable,
       fine up to tens of thousands of edges.}
    {- A binary CSR image ({!save_csr} / {!load_csr}): a checksummed
       64-byte header followed by the graph's two CSR buffers verbatim,
       so loading is an [O(1)] mmap — the format for the
       million-node generators and the [bench scale] smoke.}} *)

val to_edge_list : Graph.t -> string

val of_edge_list : string -> Graph.t
(** @raise Invalid_argument on malformed lines or bad endpoints. *)

val save : string -> Graph.t -> unit
(** [save path g] writes the edge-list format to a file. *)

val load : string -> Graph.t
(** @raise Sys_error on IO failure, [Invalid_argument] on parse errors. *)

val save_csr : string -> Graph.t -> unit
(** [save_csr path g] writes the binary CSR image: magic ["DSGCSR01"],
    native-endianness marker, format version, [n], [m], a 62-bit
    splitmix checksum of the payload, then the [n+1] offset words and
    [2m] target words exactly as held in memory. The payload is written
    through one shared mapping, so saving a loaded graph is a page-level
    copy. @raise Sys_error / [Unix.Unix_error] on IO failure. *)

val load_csr : ?verify:bool -> string -> Graph.t
(** [load_csr path] maps the file and wraps the two buffer slices as a
    graph without copying or parsing — [O(1)] in the graph size; pages
    are faulted in on first touch. Header validation always runs: bad
    magic, a byte-order mismatch, an unknown version, or a file whose
    size disagrees with its claimed [n]/[m] (truncation) all raise.
    [~verify:true] additionally refolds the payload checksum — an
    [O(n+m)] scan, off by default to keep loads constant-time.
    @raise Invalid_argument on any of the above,
    [Unix.Unix_error] / [Sys_error] on IO failure. *)

val to_dot : ?cluster_of:(int -> int) -> Graph.t -> string
(** Graphviz output. With [cluster_of], nodes are filled with one of 12
    repeating colors by cluster id (negative = unclustered, white). *)
