let to_edge_list g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# n %d\n" (Graph.n g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_edge_list text =
  let n = ref (-1) in
  let edges = ref [] in
  let max_node = ref (-1) in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         if line = "" then ()
         else if String.length line >= 1 && line.[0] = '#' then begin
           (* header: "# n <count>" *)
           match String.split_on_char ' ' line with
           | [ "#"; "n"; count ] -> (
               match int_of_string_opt count with
               | Some c -> n := c
               | None ->
                   invalid_arg
                     (Printf.sprintf "Io.of_edge_list: bad header line %d"
                        (lineno + 1)))
           | _ -> ()
         end
         else
           match
             line |> String.split_on_char ' '
             |> List.filter (fun s -> s <> "")
             |> List.map int_of_string_opt
           with
           | [ Some u; Some v ] ->
               edges := (u, v) :: !edges;
               if u > !max_node then max_node := u;
               if v > !max_node then max_node := v
           | _ ->
               invalid_arg
                 (Printf.sprintf "Io.of_edge_list: malformed line %d: %S"
                    (lineno + 1) line));
  let n = if !n >= 0 then !n else !max_node + 1 in
  Graph.create ~n ~edges:!edges

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len |> of_edge_list)

let palette =
  [|
    "#a6cee3"; "#1f78b4"; "#b2df8a"; "#33a02c"; "#fb9a99"; "#e31a1c";
    "#fdbf6f"; "#ff7f00"; "#cab2d6"; "#6a3d9a"; "#ffff99"; "#b15928";
  |]

let to_dot ?cluster_of g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph g {\n  node [style=filled];\n";
  List.iter
    (fun v ->
      let color =
        match cluster_of with
        | None -> "#ffffff"
        | Some f ->
            let c = f v in
            if c < 0 then "#ffffff"
            else palette.(c mod Array.length palette)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d [fillcolor=\"%s\"];\n" v color))
    (Graph.nodes g);
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
