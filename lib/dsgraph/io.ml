let to_edge_list g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# n %d\n" (Graph.n g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_edge_list text =
  let n = ref (-1) in
  let edges = ref [] in
  let max_node = ref (-1) in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         if line = "" then ()
         else if String.length line >= 1 && line.[0] = '#' then begin
           (* header: "# n <count>" *)
           match String.split_on_char ' ' line with
           | [ "#"; "n"; count ] -> (
               match int_of_string_opt count with
               | Some c -> n := c
               | None ->
                   invalid_arg
                     (Printf.sprintf "Io.of_edge_list: bad header line %d"
                        (lineno + 1)))
           | _ -> ()
         end
         else
           match
             line |> String.split_on_char ' '
             |> List.filter (fun s -> s <> "")
             |> List.map int_of_string_opt
           with
           | [ Some u; Some v ] ->
               edges := (u, v) :: !edges;
               if u > !max_node then max_node := u;
               if v > !max_node then max_node := v
           | _ ->
               invalid_arg
                 (Printf.sprintf "Io.of_edge_list: malformed line %d: %S"
                    (lineno + 1) line));
  let n = if !n >= 0 then !n else !max_node + 1 in
  Graph.of_edge_seq ~n (List.to_seq (List.rev !edges))

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len |> of_edge_list)

(* ------------------------------------------------------------------ *)
(* Binary CSR format                                                   *)
(* ------------------------------------------------------------------ *)

(* A 64-byte header of eight native-endian 64-bit words, then the two CSR
   buffers verbatim: [n+1] offset words followed by [2m] target words.

     word 0   magic "DSGCSR01" (eight ASCII bytes)
     word 1   endianness marker 0x0123456789ABCDEF (native order)
     word 2   format version (currently 1)
     word 3   n
     word 4   m
     word 5   checksum over the payload words (62-bit splitmix fold)
     words 6-7  reserved, zero

   Because the payload is exactly the in-memory representation, loading
   is two [Unix.map_file] slices over one mapping: O(1) regardless of
   graph size, no parsing, pages faulted in on first touch. A file
   written on a platform with the other byte order fails the marker
   check rather than decoding garbage. *)

let csr_magic = "DSGCSR01"
let csr_version = 1L
let csr_endian_marker = 0x0123456789ABCDEFL
let csr_header_bytes = 64

let checksum_mix h x =
  let h = h lxor x in
  let h = h * 0x2545F4914F6CDD1 in
  h lxor (h lsr 29)

let checksum_csr ~n ~m (offsets : Graph.int_array1)
    (targets : Graph.int_array1) =
  let h = ref (checksum_mix 0 ((n lsl 20) lxor m)) in
  for i = 0 to n do
    h := checksum_mix !h offsets.{i}
  done;
  for i = 0 to (2 * m) - 1 do
    h := checksum_mix !h targets.{i}
  done;
  !h land 0x3FFF_FFFF_FFFF_FFFF

let map_words fd ~shared words =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int csr_header_bytes) Bigarray.int
       Bigarray.c_layout shared [| words |])

let really_read fd buf len =
  let got = ref 0 in
  let eof = ref false in
  while !got < len && not !eof do
    let r = Unix.read fd buf !got (len - !got) in
    if r = 0 then eof := true else got := !got + r
  done;
  !got

let save_csr path g =
  let n = Graph.n g and m = Graph.m g in
  let offsets = Graph.offsets g and targets = Graph.targets g in
  let words = n + 1 + (2 * m) in
  let header = Bytes.make csr_header_bytes '\000' in
  Bytes.blit_string csr_magic 0 header 0 8;
  Bytes.set_int64_ne header 8 csr_endian_marker;
  Bytes.set_int64_ne header 16 csr_version;
  Bytes.set_int64_ne header 24 (Int64.of_int n);
  Bytes.set_int64_ne header 32 (Int64.of_int m);
  Bytes.set_int64_ne header 40
    (Int64.of_int (checksum_csr ~n ~m offsets targets));
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let wrote = Unix.write fd header 0 csr_header_bytes in
      if wrote <> csr_header_bytes then
        failwith "Io.save_csr: short header write";
      let map = map_words fd ~shared:true words in
      Bigarray.Array1.blit
        (Bigarray.Array1.sub offsets 0 (n + 1))
        (Bigarray.Array1.sub map 0 (n + 1));
      if m > 0 then
        Bigarray.Array1.blit
          (Bigarray.Array1.sub targets 0 (2 * m))
          (Bigarray.Array1.sub map (n + 1) (2 * m)))

let load_csr ?(verify = false) path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < csr_header_bytes then
        invalid_arg "Io.load_csr: truncated header";
      let header = Bytes.make csr_header_bytes '\000' in
      if really_read fd header csr_header_bytes <> csr_header_bytes then
        invalid_arg "Io.load_csr: truncated header";
      if Bytes.sub_string header 0 8 <> csr_magic then
        invalid_arg "Io.load_csr: bad magic (not a CSR graph file)";
      if Bytes.get_int64_ne header 8 <> csr_endian_marker then
        invalid_arg "Io.load_csr: endianness mismatch";
      let version = Bytes.get_int64_ne header 16 in
      if version <> csr_version then
        invalid_arg
          (Printf.sprintf "Io.load_csr: unsupported version %Ld" version);
      let n = Int64.to_int (Bytes.get_int64_ne header 24) in
      let m = Int64.to_int (Bytes.get_int64_ne header 32) in
      if n < 0 || m < 0 then invalid_arg "Io.load_csr: negative sizes";
      let words = n + 1 + (2 * m) in
      let expected = csr_header_bytes + (8 * words) in
      if size <> expected then
        invalid_arg
          (Printf.sprintf "Io.load_csr: truncated file (expected %d bytes, \
                           found %d)"
             expected size);
      let map = map_words fd ~shared:false words in
      let offsets = Bigarray.Array1.sub map 0 (n + 1) in
      let targets = Bigarray.Array1.sub map (n + 1) (2 * m) in
      if verify then begin
        let stored = Int64.to_int (Bytes.get_int64_ne header 40) in
        if checksum_csr ~n ~m offsets targets <> stored then
          invalid_arg "Io.load_csr: checksum mismatch"
      end;
      Graph.of_csr_unchecked ~n ~m ~offsets ~targets)

let palette =
  [|
    "#a6cee3"; "#1f78b4"; "#b2df8a"; "#33a02c"; "#fb9a99"; "#e31a1c";
    "#fdbf6f"; "#ff7f00"; "#cab2d6"; "#6a3d9a"; "#ffff99"; "#b15928";
  |]
[@@domain_unsafe
  "module-level color table for dot output; written nowhere after module \
   init, read-only sharing is safe"]

let to_dot ?cluster_of g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph g {\n  node [style=filled];\n";
  List.iter
    (fun v ->
      let color =
        match cluster_of with
        | None -> "#ffffff"
        | Some f ->
            let c = f v in
            if c < 0 then "#ffffff"
            else palette.(c mod Array.length palette)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d [fillcolor=\"%s\"];\n" v color))
    (Graph.nodes g);
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
