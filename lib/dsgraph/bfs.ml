let alive mask v =
  match mask with None -> true | Some m -> Mask.mem m v

let multi_distances ?mask g ~sources =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if alive mask s && dist.(s) = -1 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if alive mask v && dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let distances ?mask g ~source = multi_distances ?mask g ~sources:[ source ]

let parents ?mask g ~source =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  if alive mask source then begin
    parent.(source) <- source;
    let queue = Queue.create () in
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Graph.iter_neighbors g u (fun v ->
          if alive mask v && parent.(v) = -1 then begin
            parent.(v) <- u;
            Queue.add v queue
          end)
    done
  end;
  parent

let ball ?mask g ~center ~radius =
  let dist = distances ?mask g ~source:center in
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if dist.(v) >= 0 && dist.(v) <= radius then acc := v :: !acc
  done;
  !acc

let layer_sizes ?mask g ~sources =
  let dist = multi_distances ?mask g ~sources in
  let maxd = Array.fold_left max 0 dist in
  let counts = Array.make (maxd + 1) 0 in
  Array.iter (fun d -> if d >= 0 then counts.(d) <- counts.(d) + 1) dist;
  (* cumulative *)
  for r = 1 to maxd do
    counts.(r) <- counts.(r) + counts.(r - 1)
  done;
  counts

let eccentricity ?mask g v =
  let dist = distances ?mask g ~source:v in
  Array.fold_left max 0 dist

let diameter_of_set g set =
  match set with
  | [] | [ _ ] -> 0
  | _ ->
      let mask = Mask.of_list (Graph.n g) set in
      let diam = ref 0 in
      let disconnected = ref false in
      List.iter
        (fun s ->
          let dist = distances ~mask g ~source:s in
          List.iter
            (fun v ->
              if dist.(v) = -1 then disconnected := true
              else if dist.(v) > !diam then diam := dist.(v))
            set)
        set;
      if !disconnected then -1 else !diam

let weak_diameter_of_set ?mask g set =
  match set with
  | [] | [ _ ] -> 0
  | _ ->
      let diam = ref 0 in
      let disconnected = ref false in
      List.iter
        (fun s ->
          let dist = distances ?mask g ~source:s in
          List.iter
            (fun v ->
              if dist.(v) = -1 then disconnected := true
              else if dist.(v) > !diam then diam := dist.(v))
            set)
        set;
      if !disconnected then -1 else !diam

(* Scale variants: the allocation-per-call BFS above is fine for one-off
   queries, but per-cluster loops at n = 10^6 need reusable buffers and
   member-restricted traversals whose cost is the cluster's volume, not
   the whole graph. *)

let distances_into ?mask g ~source ~dist ~queue =
  if not (alive mask source) then 0
  else begin
    dist.(source) <- 0;
    queue.(0) <- source;
    let head = (ref 0 [@alloc_ok "two cursor cells per call, not per node"])
    and tail = (ref 1 [@alloc_ok "two cursor cells per call, not per node"]) in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      Graph.iter_neighbors g u
        ((fun v ->
           if alive mask v && dist.(v) = -1 then begin
             dist.(v) <- du + 1;
             queue.(!tail) <- v;
             incr tail
           end)
        [@alloc_ok
          "one visitor closure per dequeued node; capturing du keeps \
           the loop branch-free and the closure dies in the minor heap"])
    done;
    !tail
  end
[@@hot]

let restricted_bfs g ~members ~source =
  let out = Hashtbl.create (max 16 (Hashtbl.length members)) in
  if Hashtbl.mem members source then begin
    Hashtbl.add out source (0, source);
    let q = Queue.create () in
    Queue.add source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let du, _ = Hashtbl.find out u in
      Graph.iter_neighbors g u (fun v ->
          if Hashtbl.mem members v && not (Hashtbl.mem out v) then begin
            Hashtbl.add out v (du + 1, u);
            Queue.add v q
          end)
    done
  end;
  out

let component_of ?mask g v =
  if not (alive mask v) then []
  else
    let dist = distances ?mask g ~source:v in
    let acc = ref [] in
    for u = Graph.n g - 1 downto 0 do
      if dist.(u) >= 0 then acc := u :: !acc
    done;
    !acc
