(** Connected components of (masked) graphs. *)

val component_ids : ?mask:Mask.t -> Graph.t -> int array * int
(** [(ids, k)] where [ids.(v)] is the component index of [v] in [G\[mask\]]
    ([-1] for nodes outside the mask) and [k] the number of components. *)

val components : ?mask:Mask.t -> Graph.t -> int list list
(** Components as sorted node lists, ordered by smallest member. *)

val is_connected : ?mask:Mask.t -> Graph.t -> bool
(** True when [G\[mask\]] has at most one component. *)

val largest : ?mask:Mask.t -> Graph.t -> int list
(** Nodes of a largest component ([\[\]] when the mask is empty). *)
