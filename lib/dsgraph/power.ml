let power g k =
  if k < 1 then invalid_arg "Power.power: k must be >= 1";
  let n = Graph.n g in
  let b = Graph.Builder.create ~n in
  let dist = Array.make (max 1 n) (-1) in
  let touched = ref [] in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    (* truncated BFS to depth k; every node reached within distance k
       becomes a power-graph edge of s (duplicates merge at build) *)
    dist.(s) <- 0;
    touched := [ s ];
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      if dist.(u) < k then
        Graph.iter_neighbors g u (fun v ->
            if dist.(v) = -1 then begin
              dist.(v) <- dist.(u) + 1;
              touched := v :: !touched;
              Graph.Builder.add_edge b s v;
              Queue.add v queue
            end)
    done;
    List.iter (fun v -> dist.(v) <- -1) !touched
  done;
  Graph.Builder.build b
