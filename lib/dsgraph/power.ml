let power g k =
  if k < 1 then invalid_arg "Power.power: k must be >= 1";
  let n = Graph.n g in
  let adj = Array.make n [||] in
  let dist = Array.make n (-1) in
  let touched = ref [] in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    (* truncated BFS to depth k *)
    dist.(s) <- 0;
    touched := [ s ];
    Queue.add s queue;
    let reached = ref [] in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      if dist.(u) < k then
        Graph.iter_neighbors g u (fun v ->
            if dist.(v) = -1 then begin
              dist.(v) <- dist.(u) + 1;
              touched := v :: !touched;
              reached := v :: !reached;
              Queue.add v queue
            end)
    done;
    adj.(s) <- Array.of_list !reached;
    List.iter (fun v -> dist.(v) <- -1) !touched
  done;
  Graph.of_adj adj
