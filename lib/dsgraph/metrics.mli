(** Structural metrics used to sanity-check workloads and to verify the
    Section 3 barrier properties (conductance, cut sizes, boundary sizes). *)

val cut_edges : Graph.t -> Mask.t -> int
(** Number of edges with exactly one endpoint in the set. *)

val volume : Graph.t -> Mask.t -> int
(** Sum of degrees of the set's nodes. *)

val conductance_of_set : Graph.t -> Mask.t -> float
(** [cut / min(vol S, vol V\S)]; [nan] when a side has zero volume. *)

val node_boundary : Graph.t -> Mask.t -> int list
(** Nodes outside the set adjacent to it. *)

val sweep_conductance : Graph.t -> source:int -> float
(** Cheap upper bound on graph conductance: the best conductance among the
    BFS-ball sweep cuts from [source] (balls of every radius, both sides
    nonempty). Used as a proxy to check expander-ness of generated base
    graphs. *)

val average_degree : Graph.t -> float

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs, increasing degree. *)
