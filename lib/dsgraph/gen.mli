(** Graph generators: the workload families used by the test suite and by
    the Table 1 / Table 2 benchmark sweeps, plus the building blocks of the
    paper's Section 3 barrier construction (random regular expanders and
    edge subdivision). Randomized generators take an explicit {!Rng.t}. *)

val path : int -> Graph.t
(** Path on [n] nodes (diameter [n-1]). *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] nodes. *)

val complete : int -> Graph.t

val star : int -> Graph.t
(** Node 0 connected to all others. *)

val grid : int -> int -> Graph.t
(** [grid w h]: 2-dimensional [w*h] grid. *)

val torus : int -> int -> Graph.t
(** [torus w h]: 2-dimensional wrap-around grid, [w, h >= 3]. *)

val binary_tree : int -> Graph.t
(** Complete-shaped binary tree on [n] nodes (heap numbering). *)

val random_tree : Rng.t -> int -> Graph.t
(** Uniform random attachment tree. *)

val hypercube : int -> Graph.t
(** [hypercube d]: [2^d] nodes. *)

val erdos_renyi : Rng.t -> int -> float -> Graph.t
(** [erdos_renyi rng n p]: each pair independently an edge w.p. [p]. *)

val random_regular : Rng.t -> int -> int -> Graph.t
(** [random_regular rng n d]: union of [d] random perfect matchings with
    collision retries — degree exactly [d] for even [n·d]; a standard
    constant-degree expander with overwhelming probability.
    @raise Invalid_argument if [n·d] is odd or [d >= n]. *)

val expander : Rng.t -> int -> Graph.t
(** 4-regular random expander, the base graph [G_1] of the paper's
    Section 3 barrier construction. Guaranteed connected (retries until
    connected). *)

val subdivide : Graph.t -> int -> Graph.t
(** [subdivide g k] replaces every edge by a path with [k] interior nodes
    (so edge length [k+1]); original nodes keep their identifiers
    [0..n-1]. [subdivide g 0 = g]. This is how the paper builds the
    barrier graph [G_2] from an expander [G_1]. *)

val ring_of_cliques : int -> int -> Graph.t
(** [ring_of_cliques k s]: [k >= 3] cliques of size [s >= 2] arranged in a
    ring, consecutive cliques joined by one edge. *)

val barbell : int -> int -> Graph.t
(** [barbell s len]: two [s]-cliques joined by a path with [len] interior
    nodes. *)

val caterpillar : Rng.t -> int -> int -> Graph.t
(** [caterpillar rng spine legs]: a path of length [spine] with [legs]
    pendant nodes attached to random spine nodes. *)

val lollipop : int -> int -> Graph.t
(** [lollipop s len]: an [s]-clique with a tail path of [len] nodes. *)

val barabasi_albert : Rng.t -> int -> int -> Graph.t
(** [barabasi_albert rng n k]: preferential-attachment graph; each new
    node attaches to [k] distinct existing nodes sampled proportionally
    to degree (the first [k+1] nodes form a clique). Produces the
    heavy-tailed degree distributions of real networks.
    @raise Invalid_argument unless [1 <= k < n]. *)

val planted_partition : Rng.t -> int -> int -> float -> float -> Graph.t
(** [planted_partition rng k s p_in p_out]: [k] blocks of [s] nodes;
    intra-block pairs joined w.p. [p_in], inter-block w.p. [p_out]. *)

val disjoint_union : Graph.t -> Graph.t -> Graph.t
(** Disjoint union; the second graph's nodes are shifted by [n] of the
    first. *)

val ensure_connected : Rng.t -> Graph.t -> Graph.t
(** Adds one random edge between consecutive components until connected. *)

(** {1 Large-scale families}

    Streaming generators for the million-node regime: each emits edges
    straight into a {!Graph.Builder} (one packed int per edge, no edge
    list), so peak memory is [O(m)] flat words. All are deterministic in
    the given {!Rng.t}: the same seed produces a byte-identical CSR. *)

val rmat : ?a:float -> ?b:float -> ?c:float -> Rng.t -> n:int -> m:int -> Graph.t
(** [rmat rng ~n ~m]: recursive-matrix graph (Chakrabarti–Zhan–Faloutsos)
    on [n] nodes ([n] a power of two) from [m] quadrant-walk samples with
    probabilities [a], [b], [c], [1-a-b-c] (defaults 0.57/0.19/0.19/0.05,
    the Graph500 mix). Self-loop samples are dropped and duplicate samples
    merged, so the result has at most [m] edges.
    @raise Invalid_argument unless [n] is a power of two [>= 2] and the
    probabilities lie in [0,1). *)

val power_law : ?exponent:float -> Rng.t -> n:int -> m:int -> Graph.t
(** [power_law rng ~n ~m]: Chung–Lu-style graph with a fixed edge budget;
    both endpoints of each of the [m] samples are drawn independently
    with probability proportional to [(i+1)^(-1/(exponent-1))] (default
    exponent 2.5), giving a heavy-tailed degree sequence.
    @raise Invalid_argument unless [n >= 2] and [exponent > 1]. *)

val pref_attach : Rng.t -> n:int -> k:int -> Graph.t
(** [pref_attach rng ~n ~k]: scalable preferential attachment — each new
    node draws [k] targets from the degree-proportional endpoint pool
    (duplicates merge, so degrees are at most [k] per arrival); the
    first [k+1] nodes form a clique. Unlike {!barabasi_albert} there is
    no distinct-target retry loop, so generation is [O(m)] at any scale.
    @raise Invalid_argument unless [1 <= k < n]. *)
