(** Breadth-first traversals, with optional alive-masks.

    These are the sequential reference implementations; the CONGEST-model
    algorithms charge their round cost separately (see [Congest.Cost]).
    Distances are hop counts; [-1] means unreachable (or outside the mask). *)

val distances : ?mask:Mask.t -> Graph.t -> source:int -> int array
(** Single-source BFS distances in [G\[mask\]]. *)

val multi_distances : ?mask:Mask.t -> Graph.t -> sources:int list -> int array
(** Multi-source BFS: distance to the nearest source. *)

val parents : ?mask:Mask.t -> Graph.t -> source:int -> int array
(** BFS-tree parent pointers; [parents.(source) = source], [-1] if
    unreachable. *)

val ball : ?mask:Mask.t -> Graph.t -> center:int -> radius:int -> int list
(** Nodes at distance [<= radius] from [center] in [G\[mask\]]. *)

val layer_sizes : ?mask:Mask.t -> Graph.t -> sources:int list -> int array
(** [layer_sizes g ~sources] where cell [r] holds [|B_r(sources)|], the
    number of nodes within distance [r]; the array extends to the largest
    finite distance. Cumulative, i.e. non-decreasing. *)

val eccentricity : ?mask:Mask.t -> Graph.t -> int -> int
(** Largest finite distance from the node within its component. *)

val diameter_of_set : Graph.t -> int list -> int
(** Strong diameter of the sub{i graph induced by} the set: max pairwise
    distance measured inside the set. Returns [-1] if the induced subgraph
    is disconnected, [0] for singletons and the empty set. O(k·(k+m)). *)

val weak_diameter_of_set : ?mask:Mask.t -> Graph.t -> int list -> int
(** Max pairwise distance between set members measured in [G\[mask\]]
    (paths may leave the set). [-1] if some pair is disconnected. *)

val component_of : ?mask:Mask.t -> Graph.t -> int -> int list
(** The connected component of a node in [G\[mask\]], sorted. *)

val distances_into :
  ?mask:Mask.t -> Graph.t -> source:int -> dist:int array -> queue:int array -> int
(** Allocation-free BFS into caller-owned scratch, for per-cluster loops
    at scale. [dist] (length [>= n], every reachable cell [-1] on entry)
    receives hop counts; [queue] (length [>= n]) receives the visited
    nodes in BFS order — it doubles as the touched-list, so the caller
    restores the [-1] invariant by resetting exactly
    [dist.(queue.(0 .. k-1))], where [k] is the returned visit count
    ([0] when the source is outside the mask). Distances along [queue]
    are non-decreasing; results equal {!distances} on the same mask. *)

val restricted_bfs :
  Graph.t -> members:(int, unit) Hashtbl.t -> source:int ->
  (int, int * int) Hashtbl.t
(** BFS over the subgraph induced by [members], in [O(volume of members)]
    time and space — independent of [Graph.n]. Maps each reached member
    to [(distance, bfs parent)]; the source maps to [(0, source)];
    unreached members are absent. Visit order (and hence parents) match
    {!distances}/{!parents} under the equivalent {!Mask}. *)
