let alive mask v =
  match mask with None -> true | Some m -> Mask.mem m v

let component_ids ?mask g =
  let n = Graph.n g in
  let ids = Array.make n (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if alive mask s && ids.(s) = -1 then begin
      let id = !next in
      incr next;
      ids.(s) <- id;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun v ->
            if alive mask v && ids.(v) = -1 then begin
              ids.(v) <- id;
              Queue.add v queue
            end)
      done
    end
  done;
  (ids, !next)

let components ?mask g =
  let ids, k = component_ids ?mask g in
  let buckets = Array.make k [] in
  for v = Graph.n g - 1 downto 0 do
    let id = ids.(v) in
    if id >= 0 then buckets.(id) <- v :: buckets.(id)
  done;
  Array.to_list buckets

let is_connected ?mask g =
  let _, k = component_ids ?mask g in
  k <= 1

let largest ?mask g =
  let comps = components ?mask g in
  List.fold_left
    (fun best c -> if List.length c > List.length best then c else best)
    [] comps
