(** Graph powers. [G^k] connects any two distinct nodes at distance
    [<= k] in [G]; used by the ABCP96 transformation, which runs a
    decomposition on [G^{2d}]. *)

val power : Graph.t -> int -> Graph.t
(** [power g k]. [k >= 1]. O(n·(n+m)) via one truncated BFS per node. *)
