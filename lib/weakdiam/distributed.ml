open Dsgraph

type result = {
  carving : Cluster.Carving.t;
  sim_stats : Congest.Sim.stats;
  step_budget : int;
  total_steps : int;
  engine : Weak_carving.result;
}

type msg =
  | Propose
  | Count_up of int * int (* cluster label, aggregated proposal count *)
  | Depart_up of int * int (* cluster label, departures (forwarded up) *)
  | Decide of int * bool (* cluster label, grow? *)
  | Accepted of int (* your proposal to this cluster was accepted *)
  | Rejected (* your target stopped: die *)
  | Attach of int (* sender becomes my tree child for this cluster *)
  | Label_is of int
  | Died
  | Stopped of int

type tree_entry = { parent : int; mutable children : int list }

type nstate = {
  id : int;
  mutable label : int; (* >= 0 cluster label, -2 dead *)
  trees : (int, tree_entry) Hashtbl.t;
  nbr_label : (int, int) Hashtbl.t;
  stopped : (int, unit) Hashtbl.t; (* per phase *)
  (* root-side bookkeeping, meaningful when some cluster label = id *)
  mutable size : int;
  mutable joined : int;
  (* per-step transient state *)
  props : (int, int list ref) Hashtbl.t; (* cluster -> proposer neighbors *)
  counts : (int, int * int) Hashtbl.t; (* cluster -> (#reports, sum) *)
  sent_up : (int, unit) Hashtbl.t;
  outq : (int, msg Queue.t) Hashtbl.t;
  mutable round_in_step : int;
  mutable steps_left_in_phase : int;
  mutable phases_left : int list; (* step counts of the remaining phases *)
  mutable bit : int; (* current phase's bit *)
}

let is_red bit lbl = (lbl lsr bit) land 1 = 1

(* Everything needed to run the node program, shared by the fault-free
   and the reliable-transport entry points. *)
type built = {
  b_engine : Weak_carving.result;
  b_step_budget : int;
  b_total_steps : int;
  b_domain : Mask.t;
  b_program : (nstate, msg) Congest.Sim.program;
  b_bits : msg -> int;
  b_bandwidth : int;
  b_max_rounds : int;
}

let build ?(preset = Weak_carving.default_preset) ?domain g ~epsilon =
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let engine = Weak_carving.carve ~preset ~domain g ~epsilon in
  let b = Congest.Bits.id_bits ~n in
  let id_bits = b in
  (* Step budget: proposals (2) + count convergecast (depth + queueing) +
     decide broadcast (same) + accept/join/departure traffic (same). A
     deployment would use the worst-case R and L bounds here. *)
  let step_budget =
    max 40 ((4 * (engine.Weak_carving.max_depth + engine.congestion + 6)) + 24)
  in
  let schedule = engine.Weak_carving.steps_per_phase in
  let total_steps = List.fold_left ( + ) 0 schedule in
  let threshold st =
    let rg20 = epsilon /. (2.0 *. float_of_int b) *. float_of_int st.size in
    let ggr21 = epsilon /. 2.0 *. float_of_int (max st.joined 1) in
    match preset with
    | Weak_carving.Rg20 -> rg20
    | Weak_carving.Ggr21 -> ggr21
    | Weak_carving.Hybrid -> Float.min rg20 ggr21
  in
  let enqueue st nbr m =
    let q =
      match Hashtbl.find_opt st.outq nbr with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace st.outq nbr q;
          q
    in
    Queue.add m q
  in
  let neighbors = Graph.neighbors g in
  let broadcast st m = Array.iter (fun nb -> enqueue st nb m) (neighbors st.id) in
  (* mark a cluster stopped; members announce it to their neighborhood *)
  let note_stopped st c =
    if not (Hashtbl.mem st.stopped c) then begin
      Hashtbl.replace st.stopped c ();
      if st.label = c then broadcast st (Stopped c)
    end
  in
  let depart st old =
    if old >= 0 then
      if old = st.id then st.size <- st.size - 1
      else
        match Hashtbl.find_opt st.trees old with
        | Some e -> enqueue st e.parent (Depart_up (old, 1))
        | None -> () (* unreachable: members always hold a tree entry *)
  in
  let handle_decide st c grow =
    (match Hashtbl.find_opt st.trees c with
    | Some e -> List.iter (fun child -> enqueue st child (Decide (c, grow))) e.children
    | None -> ());
    if not grow then note_stopped st c;
    (match Hashtbl.find_opt st.props c with
    | None -> ()
    | Some proposers ->
        List.iter
          (fun p -> enqueue st p (if grow then Accepted c else Rejected))
          !proposers;
        Hashtbl.remove st.props c)
  in
  let join st c contact =
    let old = st.label in
    depart st old;
    st.label <- c;
    if not (Hashtbl.mem st.trees c) then begin
      Hashtbl.replace st.trees c { parent = contact; children = [] };
      enqueue st contact (Attach c)
    end;
    broadcast st (Label_is c)
  in
  let die st =
    depart st st.label;
    st.label <- -2;
    broadcast st Died
  in
  let process st sender m =
    match m with
    | Label_is l -> Hashtbl.replace st.nbr_label sender l
    | Died -> Hashtbl.replace st.nbr_label sender (-2)
    | Stopped c -> note_stopped st c
    | Propose ->
        let c = st.label in
        let cell =
          match Hashtbl.find_opt st.props c with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.replace st.props c r;
              r
        in
        cell := sender :: !cell
    | Count_up (c, k) ->
        let reports, sum =
          Option.value ~default:(0, 0) (Hashtbl.find_opt st.counts c)
        in
        Hashtbl.replace st.counts c (reports + 1, sum + k)
    | Depart_up (c, k) ->
        if c = st.id then st.size <- st.size - k
        else (
          match Hashtbl.find_opt st.trees c with
          | Some e -> enqueue st e.parent (Depart_up (c, k))
          | None -> ())
    | Decide (c, grow) -> handle_decide st c grow
    | Accepted c -> join st c sender
    | Rejected -> die st
    | Attach c -> (
        match Hashtbl.find_opt st.trees c with
        | Some e -> e.children <- sender :: e.children
        | None -> ())
  in
  (* aggregation pass: once proposals have arrived (round >= 4), each tree
     node reports each cluster once all of that cluster's children have *)
  let aggregate st =
    Hashtbl.iter
      (fun c (e : tree_entry) ->
        if not (Hashtbl.mem st.sent_up c) then begin
          let reports, sum =
            Option.value ~default:(0, 0) (Hashtbl.find_opt st.counts c)
          in
          if reports = List.length e.children then begin
            let own =
              if st.label = c then
                match Hashtbl.find_opt st.props c with
                | Some r -> List.length !r
                | None -> 0
              else 0
            in
            let total = own + sum in
            Hashtbl.replace st.sent_up c ();
            if c = st.id then begin
              (* root: decide *)
              if total > 0 then begin
                let grow = float_of_int total >= threshold st in
                if grow then begin
                  st.size <- st.size + total;
                  st.joined <- st.joined + total
                end;
                handle_decide st c grow
              end
            end
            else enqueue st e.parent (Count_up (c, total))
          end
        end)
      st.trees
  in
  let start_step st =
    st.round_in_step <- 1;
    Hashtbl.reset st.props;
    Hashtbl.reset st.counts;
    Hashtbl.reset st.sent_up;
    (* red nodes adjacent to a live blue cluster propose *)
    if st.label >= 0 && is_red st.bit st.label then begin
      let best = ref None in
      Array.iter
        (fun w ->
          match Hashtbl.find_opt st.nbr_label w with
          | Some lw
            when lw >= 0
                 && (not (is_red st.bit lw))
                 && not (Hashtbl.mem st.stopped lw) -> (
              match !best with
              | None -> best := Some (lw, w)
              | Some (bl, bw) ->
                  if lw < bl || (lw = bl && w < bw) then best := Some (lw, w))
          | _ -> ())
        (neighbors st.id);
      match !best with None -> () | Some (_, w) -> enqueue st w Propose
    end
  in
  let rec start_phase st steps rest =
    if steps = 0 then (
      (* the engine needed no steps for this bit: skip it immediately *)
      match rest with
      | [] ->
          st.steps_left_in_phase <- 0;
          st.phases_left <- [];
          st.round_in_step <- 0
      | s :: r ->
          st.bit <- st.bit + 1;
          start_phase st s r)
    else begin
      st.steps_left_in_phase <- steps;
      st.phases_left <- rest;
      Hashtbl.reset st.stopped;
      st.joined <- 0;
      start_step st
    end
  in
  let program =
    {
      Congest.Sim.init =
        (fun ~node ~neighbors:nbrs ->
          let st =
            {
              id = node;
              label = (if Mask.mem domain node then node else -1);
              trees = Hashtbl.create 4;
              nbr_label = Hashtbl.create (Array.length nbrs);
              stopped = Hashtbl.create 4;
              size = 1;
              joined = 0;
              props = Hashtbl.create 4;
              counts = Hashtbl.create 4;
              sent_up = Hashtbl.create 4;
              outq = Hashtbl.create (Array.length nbrs);
              round_in_step = 0;
              steps_left_in_phase = 0;
              phases_left = [];
              bit = 0;
            }
          in
          if Mask.mem domain node then
            Hashtbl.replace st.trees node { parent = node; children = [] };
          Array.iter
            (fun w ->
              Hashtbl.replace st.nbr_label w (if Mask.mem domain w then w else -2))
            nbrs;
          (* the whole schedule is known up front (derived from n in a real
             deployment); bit i is phase i. Nodes outside the domain sleep. *)
          (if Mask.mem domain node then
             match schedule with
             | [] -> st.phases_left <- []
             | steps :: rest ->
                 st.bit <- 0;
                 start_phase st steps rest);
          st);
      round =
        (fun ~node ~state:st ~inbox ->
          ignore node;
          (* schedule bookkeeping: advance step/phase on budget expiry *)
          let active = st.steps_left_in_phase > 0 || st.phases_left <> [] in
          if active then begin
            if st.round_in_step >= step_budget then begin
              st.steps_left_in_phase <- st.steps_left_in_phase - 1;
              if st.steps_left_in_phase > 0 then start_step st
              else
                match st.phases_left with
                | [] -> st.round_in_step <- 0 (* schedule finished *)
                | steps :: rest ->
                    st.bit <- st.bit + 1;
                    start_phase st steps rest
            end
            else st.round_in_step <- st.round_in_step + 1
          end;
          List.iter (fun (s, m) -> process st s m) inbox;
          if st.round_in_step >= 4 && st.steps_left_in_phase > 0 then
            aggregate st;
          (* drain one message per edge *)
          let out = ref [] in
          Hashtbl.iter
            (fun nbr q ->
              if not (Queue.is_empty q) then out := (nbr, Queue.pop q) :: !out)
            st.outq;
          let done_ =
            st.steps_left_in_phase = 0 && st.phases_left = []
            && !out = []
          in
          (st, !out, done_));
    }
  in
  let bits = function
    | Propose | Rejected | Died -> 4
    | Accepted _ | Attach _ | Label_is _ | Stopped _ -> 4 + id_bits
    | Count_up _ | Depart_up _ -> 4 + (2 * id_bits)
    | Decide _ -> 5 + id_bits
  in
  let max_rounds = ((total_steps + 2) * step_budget) + (4 * step_budget) in
  let bandwidth = max (Congest.Bits.bandwidth ~n) (4 + (2 * id_bits)) in
  {
    b_engine = engine;
    b_step_budget = step_budget;
    b_total_steps = total_steps;
    b_domain = domain;
    b_program = program;
    b_bits = bits;
    b_bandwidth = bandwidth;
    b_max_rounds = max_rounds;
  }

(* The node-program state is mutated in place, so a conformance wrapper
   must never be registered order-invariant here: the (e) re-run would
   corrupt the state. (c)/(d) are read-only and safe. *)
let wrap_conformance conformance program =
  match conformance with
  | None -> program
  | Some c -> c.Congest.Conformance.instrument program

let carve ?conformance ?preset ?domain ?trace g ~epsilon =
  Congest.Span.enter trace "weakdiam_sim";
  let b =
    Congest.Span.with_span trace "engine" (fun () ->
        build ?preset ?domain g ~epsilon)
  in
  let config =
    {
      Congest.Sim.Config.default with
      max_rounds = Some b.b_max_rounds;
      bandwidth = Some b.b_bandwidth;
      trace;
    }
  in
  Congest.Span.enter trace "simulate";
  let states, sim_stats =
    Congest.Sim.simulate ~config ~bits:b.b_bits g
      (wrap_conformance conformance b.b_program)
  in
  Congest.Span.exit trace;
  Congest.Span.exit trace;
  let cluster_of = Array.map (fun st -> st.label) states in
  let clustering = Cluster.Clustering.make g ~cluster_of in
  let carving = Cluster.Carving.make clustering ~domain:b.b_domain in
  {
    carving;
    sim_stats;
    step_budget = b.b_step_budget;
    total_steps = b.b_total_steps;
    engine = b.b_engine;
  }

type reliable_result = {
  cluster_of : int array;
  crashed : int list;
  finished : bool array;
  dead_view : int list array;
  r_sim_stats : Congest.Sim.stats;
  transport : Congest.Reliable.transport_stats;
  inner_rounds : int;
  oracle_rounds : int;
  r_step_budget : int;
  r_total_steps : int;
  r_engine : Weak_carving.result;
}

let carve_reliable ?adversary ?conformance ?(liveness_timeout = 64) ?preset
    ?domain ?trace g ~epsilon =
  Congest.Span.enter trace "weakdiam_reliable";
  let b =
    Congest.Span.with_span trace "engine" (fun () ->
        build ?preset ?domain g ~epsilon)
  in
  (* Sizing oracle: the program is deterministic, so a fault-free run
     tells us exactly how many inner rounds the computation needs; the
     wrapper then executes that many plus slack. Running the program value
     twice is safe — [init] builds fresh state each run. *)
  let oracle_config =
    {
      Congest.Sim.Config.default with
      max_rounds = Some b.b_max_rounds;
      bandwidth = Some b.b_bandwidth;
    }
  in
  let _, oracle_stats =
    Congest.Span.with_span trace "oracle" (fun () ->
        Congest.Sim.simulate ~config:oracle_config ~bits:b.b_bits g b.b_program)
  in
  let oracle_rounds = oracle_stats.Congest.Sim.rounds_used in
  let inner_rounds = oracle_rounds + b.b_step_budget + 8 in
  let cfg = Congest.Reliable.config ~inner_rounds ~liveness_timeout () in
  let sim =
    {
      Congest.Sim.Config.default with
      adversary;
      on_incomplete = `Ignore;
      bandwidth = Some b.b_bandwidth;
      trace;
    }
  in
  Congest.Span.enter trace "simulate";
  let r =
    Congest.Reliable.simulate ~sim cfg ~bits:b.b_bits g
      (wrap_conformance conformance b.b_program)
  in
  Congest.Span.exit trace;
  Congest.Span.exit trace;
  let cluster_of =
    Array.map (fun st -> st.label) r.Congest.Reliable.states
  in
  let crashed = r.Congest.Reliable.sim_stats.Congest.Sim.faults.crashed in
  List.iter (fun v -> cluster_of.(v) <- -2) crashed;
  {
    cluster_of;
    crashed;
    finished = r.Congest.Reliable.finished;
    dead_view = r.Congest.Reliable.dead_view;
    r_sim_stats = r.Congest.Reliable.sim_stats;
    transport = r.Congest.Reliable.transport;
    inner_rounds;
    oracle_rounds;
    r_step_budget = b.b_step_budget;
    r_total_steps = b.b_total_steps;
    r_engine = b.b_engine;
  }

let matches_engine r =
  let sim = r.carving.Cluster.Carving.clustering in
  let eng = r.engine.Weak_carving.carving.Cluster.Carving.clustering in
  let g = Cluster.Clustering.graph sim in
  let n = Graph.n g in
  let ok = ref (Cluster.Clustering.num_clusters sim = Cluster.Clustering.num_clusters eng) in
  (* same dead set and same partition (cluster ids may be permuted; both
     normalize by first appearance, so equality is direct) *)
  for v = 0 to n - 1 do
    if Cluster.Clustering.cluster_of sim v <> Cluster.Clustering.cluster_of eng v
    then ok := false
  done;
  !ok
