open Dsgraph

type preset = Rg20 | Ggr21 | Hybrid

let default_preset = Ggr21

type result = {
  carving : Cluster.Carving.t;
  forest : Cluster.Steiner.forest;
  steps : int;
  phases : int;
  steps_per_phase : int list;
  max_depth : int;
  congestion : int;
}

(* Per-cluster bookkeeping, keyed by label (= identifier of the origin
   node). *)
type cluster_info = {
  mutable size : int;
  mutable joined_this_phase : int;
  mutable stopped : bool;
}

(* A node's membership record in one cluster's Steiner tree. *)
type tree_entry = { parent : int; depth : int }

let carve ?(preset = default_preset) ?cost ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Weak_carving.carve: epsilon must be in (0, 1)";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let charge ?rounds ?messages ?max_bits tag =
    match cost with
    | None -> ()
    | Some c -> Congest.Cost.charge c ?rounds ?messages ?max_bits tag
  in
  let id_bits = Congest.Bits.id_bits ~n in
  let b = id_bits in
  (* label.(v): current cluster label; -1 = outside the domain; -2 = dead *)
  let label = Array.make n (-1) in
  Mask.iter domain (fun v -> label.(v) <- v);
  let alive v = label.(v) >= 0 in
  let clusters : (int, cluster_info) Hashtbl.t = Hashtbl.create 64 in
  (* trails.(label): the Steiner tree built for that cluster *)
  let trails : (int, (int, tree_entry) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  Mask.iter domain (fun v ->
      Hashtbl.replace clusters v
        { size = 1; joined_this_phase = 0; stopped = false };
      let t = Hashtbl.create 4 in
      Hashtbl.replace t v { parent = v; depth = 0 };
      Hashtbl.replace trails v t);
  let info lbl = Hashtbl.find clusters lbl in
  let trail lbl = Hashtbl.find trails lbl in
  (* congestion tracking: number of distinct trees using each edge *)
  let edge_trees : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let max_congestion = ref 0 in
  let note_tree_edge v p =
    if v <> p then begin
      let key = (min v p, max v p) in
      let c = 1 + Option.value ~default:0 (Hashtbl.find_opt edge_trees key) in
      Hashtbl.replace edge_trees key c;
      if c > !max_congestion then max_congestion := c
    end
  in
  let max_depth = ref 0 in
  let total_steps = ref 0 in
  let phase_steps = ref [] in
  let grow_threshold lbl =
    let inf = info lbl in
    let rg20 = epsilon /. (2.0 *. float_of_int b) *. float_of_int inf.size in
    let ggr21 = epsilon /. 2.0 *. float_of_int (max inf.joined_this_phase 1) in
    match preset with
    | Rg20 -> rg20
    | Ggr21 -> ggr21
    | Hybrid ->
        (* grow whenever either criterion is satisfied: stops are rarest,
           and a stopping cluster kills less than its RG20 threshold, so
           RG20's worst-case dead-fraction budget holds a fortiori; depth
           behaves like RG20 (GGR21's shallow trees come from stopping
           more, not growing faster) *)
        Float.min rg20 ggr21
  in
  (* Join v into cluster [lbl] through neighbor [w] (already in [lbl]). *)
  let join v w lbl =
    let old = label.(v) in
    if old >= 0 then begin
      let oi = info old in
      oi.size <- oi.size - 1
    end;
    label.(v) <- lbl;
    let inf = info lbl in
    inf.size <- inf.size + 1;
    inf.joined_this_phase <- inf.joined_this_phase + 1;
    let t = trail lbl in
    let wd =
      match Hashtbl.find_opt t w with
      | Some e -> e.depth
      | None ->
          (* w must be in the tree: it is a current member of [lbl] *)
          invalid_arg "Weak_carving: join target missing from tree"
    in
    (* Trees are append-only: entries are never removed or replaced, so
       every parent chain stays valid and acyclic. If [v] once belonged to
       this cluster and rejoins it, its old tree position still connects it
       to the root — reusing it avoids parent cycles (e.g. the root
       reparenting under its own descendant). *)
    if not (Hashtbl.mem t v) then begin
      Hashtbl.replace t v { parent = w; depth = wd + 1 };
      note_tree_edge v w;
      if wd + 1 > !max_depth then max_depth := wd + 1
    end
  in
  let kill v =
    let old = label.(v) in
    if old >= 0 then begin
      let oi = info old in
      oi.size <- oi.size - 1
    end;
    label.(v) <- -2
  in
  (* One phase: separate red (bit set) from blue (bit clear) clusters. *)
  let run_phase bit =
    Hashtbl.iter
      (fun _ inf ->
        inf.joined_this_phase <- 0;
        inf.stopped <- false)
      clusters;
    let is_red lbl = (lbl lsr bit) land 1 = 1 in
    let continue = ref true in
    while !continue do
      (* Collect proposals: each alive red node adjacent to a live blue
         cluster proposes to the smallest-label such cluster (via the
         smallest such neighbor). *)
      let proposals : (int, (int * int) list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      let num_proposals = ref 0 in
      for v = 0 to n - 1 do
        if alive v && is_red label.(v) then begin
          let best = ref None in
          Graph.iter_neighbors g v (fun w ->
              if alive w && not (is_red label.(w)) then begin
                let lw = label.(w) in
                if not (info lw).stopped then
                  match !best with
                  | None -> best := Some (lw, w)
                  | Some (bl, bw) ->
                      if lw < bl || (lw = bl && w < bw) then best := Some (lw, w)
              end);
          match !best with
          | None -> ()
          | Some (lbl, w) ->
              incr num_proposals;
              let cell =
                match Hashtbl.find_opt proposals lbl with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.replace proposals lbl r;
                    r
              in
              cell := (v, w) :: !cell
        end
      done;
      if !num_proposals = 0 then continue := false
      else begin
        incr total_steps;
        (* Decide per target cluster. *)
        Hashtbl.iter
          (fun lbl cell ->
            let plist = !cell in
            let count = List.length plist in
            if float_of_int count >= grow_threshold lbl then
              List.iter (fun (v, w) -> join v w lbl) plist
            else begin
              (info lbl).stopped <- true;
              List.iter (fun (v, _) -> kill v) plist
            end)
          proposals;
        (* CONGEST cost of one step: proposal exchange (1 round), count
           convergecast + decision broadcast over the Steiner trees
           (2·(depth + congestion)), join confirmations (1 round). *)
        let d = !max_depth and l = max 1 !max_congestion in
        charge
          ~rounds:(2 + (2 * (d + l)))
          ~messages:!num_proposals ~max_bits:(2 * id_bits) "weak_carving.step"
      end
    done
  in
  let trace = Option.bind cost Congest.Cost.trace in
  Congest.Span.enter trace "weak_carving";
  for bit = 0 to b - 1 do
    Congest.Span.enter_idx trace "phase" bit;
    let before = !total_steps in
    run_phase bit;
    phase_steps := (!total_steps - before) :: !phase_steps;
    Congest.Span.exit trace
  done;
  Congest.Span.exit trace;
  (* Assemble the output: dense cluster ids in order of first appearance by
     node index, so that [Clustering.make]'s normalization is the
     identity and the forest indexing matches. *)
  let cluster_of = Array.make n (-1) in
  let order : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let labels_in_order = ref [] in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if alive v then begin
      let lbl = label.(v) in
      let id =
        match Hashtbl.find_opt order lbl with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.replace order lbl id;
            labels_in_order := lbl :: !labels_in_order;
            id
      in
      cluster_of.(v) <- id
    end
  done;
  let labels = Array.of_list (List.rev !labels_in_order) in
  let forest =
    Array.map
      (fun lbl ->
        let t = trail lbl in
        let parent =
          Hashtbl.fold (fun v e acc -> (v, e.parent) :: acc) t []
        in
        { Cluster.Steiner.root = lbl; parent })
      labels
  in
  let clustering = Cluster.Clustering.make g ~cluster_of in
  let carving = Cluster.Carving.make clustering ~domain in
  {
    carving;
    forest;
    steps = !total_steps;
    phases = b;
    steps_per_phase = List.rev !phase_steps;
    max_depth = !max_depth;
    congestion = !max_congestion;
  }
