(** The weak-diameter carving as a {e genuinely distributed} CONGEST node
    program, executed round by round on {!Congest.Sim} with
    bandwidth-checked [O(log n)]-bit messages.

    This is the strongest validation artifact in the repository: the
    step-granular engine ({!Weak_carving}) is the workhorse used by the
    paper's transformations, and this module replays the {e same
    algorithm} as real message passing — proposals over edges, per-cluster
    proposal counting by convergecast over the (possibly non-member)
    Steiner-tree nodes, grow/stop decisions broadcast back down, joins
    attaching to the tree, departures reported upward — with one message
    per edge per round enforced by per-edge FIFO queues. The test suite
    asserts the distributed execution produces {e exactly} the same
    clustering as the engine.

    Scheduling: every step runs for a fixed budget of rounds and every
    phase for a fixed number of steps, as in the paper (that is how
    CONGEST algorithms synchronize without global coordination). A real
    deployment would use worst-case bounds for both; to keep the
    simulation at laptop scale we take the step/phase schedule from a
    prior engine run and a round budget derived from the measured tree
    depth and congestion — the {e execution} is faithful, only the
    schedule lengths are oracle-provided (see DESIGN.md §2). *)

type result = {
  carving : Cluster.Carving.t;
  sim_stats : Congest.Sim.stats;  (** measured rounds/messages/bits *)
  step_budget : int;  (** rounds allotted to each step *)
  total_steps : int;
  engine : Weak_carving.result;  (** the oracle run it is compared to *)
}

val carve :
  ?conformance:Congest.Conformance.instrumentor ->
  ?preset:Weak_carving.preset ->
  ?domain:Dsgraph.Mask.t ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  result
(** Runs the engine (for the schedule and as the comparison oracle), then
    the full synchronous simulation. [result.carving] is built from the
    {e simulated} node states. A [trace] sink observes the simulated
    rounds and messages. A [conformance] instrumentor wraps the node
    program with the model-invariant checks; the per-node state is
    mutable, so the instrumentor must {e not} be built with
    [~order_invariant:true] (the re-run would corrupt it). *)

val matches_engine : result -> bool
(** True iff the simulated clustering equals the engine's exactly
    (same cluster membership per node, same dead set). *)

type reliable_result = {
  cluster_of : int array;
      (** simulated labels ([>= 0] cluster, [-1] outside domain, [-2]
          dead); crashed nodes are forced to [-2] *)
  crashed : int list;  (** ground truth from the fault schedule *)
  finished : bool array;  (** per node: executed all inner rounds *)
  dead_view : int list array;  (** per node: neighbors it declared dead *)
  r_sim_stats : Congest.Sim.stats;
  transport : Congest.Reliable.transport_stats;
  inner_rounds : int;
  oracle_rounds : int;  (** rounds the fault-free sizing run used *)
  r_step_budget : int;
  r_total_steps : int;
  r_engine : Weak_carving.result;
}

val carve_reliable :
  ?adversary:Congest.Fault.t ->
  ?conformance:Congest.Conformance.instrumentor ->
  ?liveness_timeout:int ->
  ?preset:Weak_carving.preset ->
  ?domain:Dsgraph.Mask.t ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  reliable_result
(** The same node program wrapped in {!Congest.Reliable} and run against
    an optional fault adversary. The program is deterministic, so a
    fault-free run first sizes [inner_rounds = rounds_used + step_budget
    + 8]; with no adversary the resulting labels are {e identical} to
    {!carve}'s (zero-fault transparency). Under crashes the surviving
    labels may violate non-adjacency (a broken convergecast can
    mis-decide); callers wanting a guaranteed-valid carving re-run on the
    survivor-induced subgraph — see [Workload.Faults]. *)
