(** Deterministic weak-diameter ball carving — the Rozhoň–Ghaffari (STOC
    2020) bit-phase cluster-growing algorithm, with the Ghaffari–Grunau–
    Rozhoň (SODA 2021) parameter preset. This is the black-box algorithm
    [A] consumed by the paper's Theorem 2.1 transformation.

    The algorithm runs [b = ceil(log2 n)] phases, one per identifier bit.
    Every node starts as its own cluster labeled by its identifier. In
    phase [i], clusters whose label has bit [i] clear are {e blue}, the
    others {e red}. Repeatedly, every red node adjacent to a live blue
    cluster proposes to one such cluster; a blue cluster that receives
    enough proposals absorbs the proposers (they adopt its label and hang
    onto its Steiner tree via the proposal edge); a blue cluster that
    receives too few stops for the phase and its proposers die. At the end
    of phase [i], adjacent alive nodes agree on identifier bits [0..i], so
    after all phases the surviving clusters are non-adjacent.

    Presets differ in the growth threshold:
    - {!Rg20} grows when proposals [>= ε/(2b) · |C|]. Worst-case
      guarantees: dead fraction [<= ε], Steiner depth
      [R = O(log^3 n / ε)], congestion [L <= b + 1 = O(log n)].
    - {!Ggr21} grows when proposals [>= ε/2 · max(joined this phase, 1)],
      reproducing GGR21's depth [R = O(log^2 n / ε)] and step count
      [O(log n/ε)] per phase. Its worst-case dead-fraction argument is the
      part of GGR21 we simplified away (see DESIGN.md §2); the [ε] bound
      is enforced empirically by the test suite across the whole workload
      suite, and holds with large slack in practice because a cluster only
      kills when it stops with a nonzero but sub-threshold proposal set.
    - {!Hybrid} grows when {e either} criterion is met (threshold =
      min of the two) — the {e minimum-deaths} point of the design
      space. Stopping is rarest here and a stopping cluster kills fewer
      than its RG20 threshold, so the RG20 worst-case dead-fraction proof
      carries over verbatim. The flip side, visible in ablation A1, is
      that GGR21's shallower trees come precisely from stopping {e more}
      aggressively, so Hybrid's depths track the RG20 preset. Use it when
      dead nodes are expensive and diameter is not. *)

type preset = Rg20 | Ggr21 | Hybrid

type result = {
  carving : Cluster.Carving.t;
  forest : Cluster.Steiner.forest;  (** tree per cluster, same indexing *)
  steps : int;  (** total growth/stop exchange steps across phases *)
  phases : int;
  steps_per_phase : int list;
      (** step counts per phase, used to schedule the genuinely
          distributed execution ({!Distributed}) *)
  max_depth : int;  (** measured max Steiner depth [R] *)
  congestion : int;  (** measured max trees per edge [L] *)
}

val carve :
  ?preset:preset ->
  ?cost:Congest.Cost.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  result
(** [carve g ~epsilon] runs the carving on [G\[domain\]] (default: all
    nodes). Guarantees on the output: clusters are pairwise non-adjacent;
    every non-dead domain node is clustered; each cluster has a valid
    Steiner tree containing all its members as nodes.

    Cost charging (see DESIGN.md §5): each step charges one round for the
    proposal exchange plus [2·(d + L) + 2] rounds for the per-cluster
    count/decision convergecast-broadcast over Steiner trees of current
    max depth [d] and congestion [L], with [O(log n)]-bit messages.

    @param preset default {!Ggr21} (the paper composes with GGR21).
    @raise Invalid_argument if [epsilon] is outside (0, 1). *)

val default_preset : preset
