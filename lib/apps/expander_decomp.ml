open Dsgraph

type t = {
  clustering : Cluster.Clustering.t;
  inter_cluster_edges : int;
  levels : int;
}

let decompose ?cost ?(epsilon = 0.5) g =
  let n = Graph.n g in
  let cluster_of = Array.make n (-1) in
  let next = ref 0 in
  let emit members =
    let id = !next in
    incr next;
    List.iter (fun v -> cluster_of.(v) <- id) members
  in
  let max_level = ref 0 in
  let rec handle level members =
    if level > !max_level then max_level := level;
    match members with
    | [] -> ()
    | [ v ] -> emit [ v ]
    | _ -> (
        let part = Mask.of_list n members in
        match Strongdecomp.Sparse_cut.run ?cost ~epsilon g ~domain:part with
        | Strongdecomp.Sparse_cut.Cut { v1; v2; removed } ->
            (* no node is discarded: the separating layer becomes singleton
               clusters (they sit between two well-separated halves) *)
            List.iter (fun v -> emit [ v ]) removed;
            recurse level v1;
            recurse level v2
        | Strongdecomp.Sparse_cut.Component { u; boundary = _ } ->
            emit u;
            let rest = Mask.copy part in
            List.iter (fun v -> Mask.remove rest v) u;
            recurse level (Mask.to_list rest))
  and recurse level members =
    match members with
    | [] -> ()
    | _ ->
        let mask = Mask.of_list n members in
        List.iter (handle (level + 1)) (Components.components ~mask g)
  in
  List.iter (handle 0) (Components.components g);
  let clustering = Cluster.Clustering.make g ~cluster_of in
  let inter_cluster_edges =
    Graph.fold_edges g ~init:0 ~f:(fun acc u v ->
        if Cluster.Clustering.cluster_of clustering u
           <> Cluster.Clustering.cluster_of clustering v
        then acc + 1
        else acc)
  in
  { clustering; inter_cluster_edges; levels = !max_level }

let inter_cluster_fraction g t =
  if Graph.m g = 0 then 0.0
  else float_of_int t.inter_cluster_edges /. float_of_int (Graph.m g)

let min_internal_sweep_conductance g t =
  let n = Graph.n g in
  let best = ref Float.infinity in
  List.iter
    (fun members ->
      match members with
      | [] | [ _ ] -> ()
      | root :: _ ->
          let mask = Mask.of_list n members in
          (* sweep conductance measured in the induced subgraph *)
          let sub_edges = ref [] in
          List.iter
            (fun u ->
              Graph.iter_neighbors g u (fun v ->
                  if u < v && Mask.mem mask v then sub_edges := (u, v) :: !sub_edges))
            members;
          if !sub_edges <> [] then begin
            (* compact the induced subgraph *)
            let index = Hashtbl.create (List.length members) in
            List.iteri (fun i v -> Hashtbl.replace index v i) members;
            let edges =
              List.map
                (fun (u, v) -> (Hashtbl.find index u, Hashtbl.find index v))
                !sub_edges
            in
            let h =
              Graph.of_edge_seq ~n:(List.length members) (List.to_seq edges)
            in
            let phi =
              Metrics.sweep_conductance h ~source:(Hashtbl.find index root)
            in
            if phi < !best then best := phi
          end)
    (Cluster.Clustering.clusters t.clustering);
  !best

let check g t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    let unassigned =
      List.filter
        (fun v -> Cluster.Clustering.cluster_of t.clustering v < 0)
        (Graph.nodes g)
    in
    match unassigned with
    | [] -> Ok ()
    | v :: _ -> Error (Printf.sprintf "expander_decomp: node %d unclustered" v)
  in
  let rec go c =
    if c >= Cluster.Clustering.num_clusters t.clustering then Ok ()
    else if Cluster.Clustering.strong_diameter t.clustering c >= 0 then
      go (c + 1)
    else Error (Printf.sprintf "expander_decomp: cluster %d disconnected" c)
  in
  go 0
