(** Maximal independent set via network decomposition — the standard use
    template the paper's introduction describes: process colors one by
    one; clusters of one color are non-adjacent, so they decide
    simultaneously; inside a cluster the center gathers the members'
    frozen neighborhood state and decides greedily. With a [(C, D)]
    decomposition this costs [O(C · D)]-shaped rounds. *)

val of_decomposition :
  ?cost:Congest.Cost.t ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t ->
  bool array
(** [of_decomposition g decomp] returns the membership vector of a maximal
    independent set of [g]. The decomposition must cover all nodes.
    Deterministic given the decomposition. *)

val check : Dsgraph.Graph.t -> bool array -> (unit, string) result
(** Independence and maximality. *)

val run :
  ?cost:Congest.Cost.t -> Dsgraph.Graph.t -> bool array * Cluster.Decomposition.t
(** End-to-end: Theorem 2.3 decomposition, then MIS on top. *)
