(** Sparse spanners via network decomposition — a third classical use of
    the [(C, D)] template: keep a BFS tree inside every cluster plus one
    edge between each pair of adjacent clusters. Every graph edge then has
    a detour of length at most [4D + 2] through the trees and the kept
    inter-cluster edge, so the subgraph is a multiplicative
    [O(D)]-spanner with at most [n - 1 + (#adjacent cluster pairs)]
    edges. *)

type t = {
  edges : (int * int) list;  (** spanner edges, a subset of the graph's *)
  stretch_bound : int;  (** the proven bound [4D + 2] *)
}

val of_decomposition :
  ?cost:Congest.Cost.t -> Dsgraph.Graph.t -> Cluster.Decomposition.t -> t
(** The decomposition must be strong-diameter (clusters induce connected
    subgraphs) and cover all nodes.
    @raise Invalid_argument on a cluster inducing a disconnected
    subgraph. *)

val check : Dsgraph.Graph.t -> t -> (unit, string) result
(** Validates: spanner edges exist in the graph, and every graph edge
    [(u,v)] satisfies [dist_spanner(u,v) <= stretch_bound]. *)

val measured_stretch : Dsgraph.Graph.t -> t -> float
(** Max over graph edges of the actual detour length (the effective
    stretch, usually far below the bound). *)

val run : ?cost:Congest.Cost.t -> Dsgraph.Graph.t -> t * Cluster.Decomposition.t
(** End-to-end: Theorem 2.3 decomposition, then the spanner. *)
