(** Luby's randomized MIS as a genuinely distributed CONGEST node program
    — the classical [O(log n)]-round randomized comparison point for the
    decomposition-template MIS of {!Mis}. The contrast (randomized
    [O(log n)] vs deterministic [O(C·D)] via network decomposition) is
    precisely the randomized/deterministic gap the network-decomposition
    line of work, including this paper, exists to close.

    Each iteration takes two synchronous rounds: undecided nodes draw a
    random priority and exchange it with their neighbors; a node whose
    (priority, identifier) is a strict local maximum among undecided
    neighbors joins the MIS and announces it; its neighbors drop out. *)

val run : ?seed:int -> Dsgraph.Graph.t -> bool array * Congest.Sim.stats
(** Runs on {!Congest.Sim} with [O(log n)]-bit messages; returns the
    membership vector (validate with {!Mis.check}) and the measured
    simulator statistics. Deterministic given [seed] (default 1). *)
