(** (Δ+1) vertex coloring via network decomposition, by the same
    color-by-color template as {!Mis}: inside each cluster the center
    assigns members the smallest palette color not used by an
    already-decided neighbor. Since at most [Δ] neighbors are decided
    when a node is processed, [Δ+1] palette colors always suffice. *)

val of_decomposition :
  ?cost:Congest.Cost.t ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t ->
  int array
(** Per-node palette colors in [0 .. Δ]. *)

val check : ?palette:int -> Dsgraph.Graph.t -> int array -> (unit, string) result
(** Properness, and palette size at most [palette] (default [Δ+1]). *)

val run :
  ?cost:Congest.Cost.t -> Dsgraph.Graph.t -> int array * Cluster.Decomposition.t
(** End-to-end: Theorem 2.3 decomposition, then coloring on top. *)
