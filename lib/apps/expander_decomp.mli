(** Expander decomposition driven by Lemma 3.1 — the application family
    the paper's introduction cites for ball carving ([CS20], [CPSZ21]).

    Recursively apply {!Strongdecomp.Sparse_cut}: when it returns a
    balanced sparse cut, split and recurse on both sides (the separating
    layer is absorbed into the smaller side as singleton clusters after
    the recursion bottoms out — no node is lost); when it returns a large
    small-diameter component, emit it as a cluster and recurse on the
    rest. Parts without balanced sparse cuts at the [ε n/log n] scale are
    exactly the "no-sparse-cut" certificates Lemma 3.1 can give, so the
    emitted clusters are low-diameter or well-connected regions.

    This is a {e Lemma 3.1-powered} decomposition with measured quality —
    we report the fraction of inter-cluster edges and each cluster's sweep
    conductance — rather than a reproduction of the full [CS20]
    machinery. *)

type t = {
  clustering : Cluster.Clustering.t;  (** covers every node *)
  inter_cluster_edges : int;
  levels : int;
}

val decompose :
  ?cost:Congest.Cost.t ->
  ?epsilon:float ->
  Dsgraph.Graph.t ->
  t
(** [epsilon] (default 1/2) controls the sparse-cut scale. *)

val inter_cluster_fraction : Dsgraph.Graph.t -> t -> float

val min_internal_sweep_conductance : Dsgraph.Graph.t -> t -> float
(** Minimum, over clusters with at least one internal edge, of the sweep
    conductance measured inside the cluster — a cheap certificate proxy. *)

val check : Dsgraph.Graph.t -> t -> (unit, string) result
(** Clusters partition the node set and each induces a connected
    subgraph. *)
