open Dsgraph

let of_decomposition ?cost g decomp =
  let n = Graph.n g in
  let clustering = Cluster.Decomposition.clustering decomp in
  let in_mis = Array.make n false in
  let decided = Array.make n false in
  for color = 0 to Cluster.Decomposition.num_colors decomp - 1 do
    let clusters = Cluster.Decomposition.clusters_of_color decomp color in
    (* all clusters of one color decide simultaneously; the round cost is
       dominated by the largest cluster diameter of the color *)
    let max_diam = ref 0 in
    List.iter
      (fun c ->
        let members = Cluster.Clustering.members clustering c in
        (match Bfs.diameter_of_set g members with
        | -1 -> () (* weak-diameter cluster: charged via weak diameter *)
        | d -> if d > !max_diam then max_diam := d);
        (* greedy inside the cluster, respecting already-decided nodes *)
        List.iter
          (fun v ->
            if not decided.(v) then begin
              let blocked = ref false in
              Graph.iter_neighbors g v (fun w ->
                  if decided.(w) && in_mis.(w) then blocked := true);
              if not !blocked then in_mis.(v) <- true;
              decided.(v) <- true
            end)
          members)
      clusters;
    match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.charge c
          ~rounds:((2 * !max_diam) + 2)
          ~messages:(Graph.n g)
          ~max_bits:(2 * Congest.Bits.id_bits ~n)
          (Printf.sprintf "mis.color_%02d" color)
  done;
  in_mis

let check g mis =
  let ( let* ) r f = Result.bind r f in
  let* () =
    Graph.fold_edges g ~init:(Ok ()) ~f:(fun acc u v ->
        let* () = acc in
        if mis.(u) && mis.(v) then
          Error (Printf.sprintf "MIS: adjacent members %d and %d" u v)
        else Ok ())
  in
  List.fold_left
    (fun acc v ->
      let* () = acc in
      if mis.(v) then Ok ()
      else
        let dominated = ref false in
        Graph.iter_neighbors g v (fun w -> if mis.(w) then dominated := true);
        if !dominated then Ok ()
        else Error (Printf.sprintf "MIS: node %d undominated" v))
    (Ok ()) (Graph.nodes g)

let run ?cost g =
  let decomp = Strongdecomp.Netdecomp.strong ?cost g in
  (of_decomposition ?cost g decomp, decomp)
