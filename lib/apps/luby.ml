open Dsgraph

type status = Undecided | In_mis | Out

type msg = Priority of int * int (* priority, id *) | In_announce

type nstate = {
  rng : Rng.t;
  mutable status : status;
  mutable current : int * int; (* this iteration's (priority, id) *)
  mutable exchange : bool; (* alternating exchange/decide rounds *)
}

let priority_bits = 10

let run ?(seed = 1) g =
  let n = Graph.n g in
  let id_bits = Congest.Bits.id_bits ~n in
  let program =
    {
      Congest.Sim.init =
        (fun ~node ~neighbors:_ ->
          {
            rng = Rng.create ((seed * 1_000_003) + node);
            status = Undecided;
            current = (0, node);
            exchange = true;
          });
      round =
        (fun ~node ~state:st ~inbox ->
          (* decided nodes only react to announcements (nothing to do) *)
          match st.status with
          | In_mis | Out -> (st, [], true)
          | Undecided ->
              if st.exchange then begin
                (* if any neighbor joined the MIS last round, drop out *)
                let dominated =
                  List.exists (fun (_, m) -> m = In_announce) inbox
                in
                if dominated then begin
                  st.status <- Out;
                  (st, [], true)
                end
                else begin
                  st.exchange <- false;
                  let p = Rng.int st.rng (1 lsl priority_bits) in
                  st.current <- (p, node);
                  let out =
                    Array.to_list
                      (Array.map
                         (fun nb -> (nb, Priority (p, node)))
                         (Graph.neighbors g node))
                  in
                  (st, out, false)
                end
              end
              else begin
                st.exchange <- true;
                let beaten =
                  List.exists
                    (fun (_, m) ->
                      match m with
                      | Priority (p, i) -> (p, i) > st.current
                      | In_announce -> false)
                    inbox
                in
                let dominated =
                  List.exists (fun (_, m) -> m = In_announce) inbox
                in
                if dominated then begin
                  st.status <- Out;
                  (st, [], true)
                end
                else if not beaten then begin
                  st.status <- In_mis;
                  let out =
                    Array.to_list
                      (Array.map
                         (fun nb -> (nb, In_announce))
                         (Graph.neighbors g node))
                  in
                  (st, out, false)
                end
                else (st, [], false)
              end);
    }
  in
  let bits = function
    | Priority _ -> 1 + priority_bits + id_bits
    | In_announce -> 1
  in
  let config =
    Congest.Sim.Config.(
      default
      |> with_max_rounds ((8 * id_bits) + 64)
      |> with_bandwidth
           (max (Congest.Bits.bandwidth ~n) (1 + priority_bits + id_bits)))
  in
  let states, stats = Congest.Sim.simulate ~config ~bits g program in
  (Array.map (fun st -> st.status = In_mis) states, stats)
