open Dsgraph

let of_decomposition ?cost g decomp =
  let n = Graph.n g in
  let clustering = Cluster.Decomposition.clustering decomp in
  let color = Array.make n (-1) in
  for decomposition_color = 0 to Cluster.Decomposition.num_colors decomp - 1 do
    let clusters =
      Cluster.Decomposition.clusters_of_color decomp decomposition_color
    in
    let max_diam = ref 0 in
    List.iter
      (fun c ->
        let members = Cluster.Clustering.members clustering c in
        (match Bfs.diameter_of_set g members with
        | -1 -> ()
        | d -> if d > !max_diam then max_diam := d);
        List.iter
          (fun v ->
            if color.(v) = -1 then begin
              let used = Array.make (Graph.degree g v + 1) false in
              Graph.iter_neighbors g v (fun w ->
                  if color.(w) >= 0 && color.(w) < Array.length used then
                    used.(color.(w)) <- true);
              let rec first c = if used.(c) then first (c + 1) else c in
              color.(v) <- first 0
            end)
          members)
      clusters;
    match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.charge c
          ~rounds:((2 * !max_diam) + 2)
          ~messages:(Graph.n g)
          ~max_bits:(2 * Congest.Bits.id_bits ~n)
          (Printf.sprintf "coloring.color_%02d" decomposition_color)
  done;
  color

let check ?palette g color =
  let ( let* ) r f = Result.bind r f in
  let palette =
    match palette with Some p -> p | None -> Graph.max_degree g + 1
  in
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        if color.(v) < 0 then Error (Printf.sprintf "coloring: node %d uncolored" v)
        else if color.(v) >= palette then
          Error
            (Printf.sprintf "coloring: node %d uses color %d >= palette %d" v
               color.(v) palette)
        else Ok ())
      (Ok ()) (Graph.nodes g)
  in
  Graph.fold_edges g ~init:(Ok ()) ~f:(fun acc u v ->
      let* () = acc in
      if color.(u) = color.(v) then
        Error (Printf.sprintf "coloring: edge (%d,%d) monochromatic" u v)
      else Ok ())

let run ?cost g =
  let decomp = Strongdecomp.Netdecomp.strong ?cost g in
  (of_decomposition ?cost g decomp, decomp)
