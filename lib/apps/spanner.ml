open Dsgraph

type t = { edges : (int * int) list; stretch_bound : int }

let of_decomposition ?cost g decomp =
  let n = Graph.n g in
  let clustering = Cluster.Decomposition.clustering decomp in
  let edges = ref [] in
  let add u v = edges := (min u v, max u v) :: !edges in
  let max_diam = ref 0 in
  (* intra-cluster BFS trees *)
  List.iter
    (fun members ->
      match members with
      | [] -> ()
      | root :: _ ->
          let mask = Mask.of_list n members in
          let parent = Bfs.parents ~mask g ~source:root in
          List.iter
            (fun v ->
              if v <> root then begin
                if parent.(v) = -1 then
                  invalid_arg
                    "Spanner.of_decomposition: cluster induces a disconnected \
                     subgraph";
                add v parent.(v)
              end)
            members;
          let diam = Bfs.eccentricity ~mask g root in
          if diam > !max_diam then max_diam := diam)
    (Cluster.Clustering.clusters clustering);
  (* one edge per adjacent cluster pair: the lexicographically smallest *)
  let pick : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  Graph.iter_edges g (fun u v ->
      let cu = Cluster.Clustering.cluster_of clustering u
      and cv = Cluster.Clustering.cluster_of clustering v in
      if cu >= 0 && cv >= 0 && cu <> cv then begin
        let key = (min cu cv, max cu cv) in
        match Hashtbl.find_opt pick key with
        | Some best when best <= (min u v, max u v) -> ()
        | _ -> Hashtbl.replace pick key (min u v, max u v)
      end);
  Hashtbl.iter (fun _ (u, v) -> add u v) pick;
  (match cost with
  | None -> ()
  | Some c ->
      (* per color: intra-cluster BFS tree + per-edge candidate election *)
      Congest.Cost.charge c
        ~rounds:(Cluster.Decomposition.num_colors decomp * ((2 * !max_diam) + 2))
        ~messages:(Graph.m g)
        ~max_bits:(2 * Congest.Bits.id_bits ~n)
        "spanner.build");
  let edges = List.sort_uniq compare !edges in
  (* the eccentricity from one root bounds the tree depth; stretch uses
     tree-depth detours: up-down inside each endpoint cluster plus the
     kept inter-cluster edge *)
  { edges; stretch_bound = (4 * !max_diam) + 2 }

let spanner_graph g t =
  Graph.of_edge_seq ~n:(Graph.n g) (List.to_seq t.edges)

let check g t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    List.fold_left
      (fun acc (u, v) ->
        let* () = acc in
        if Graph.is_edge g u v then Ok ()
        else Error (Printf.sprintf "spanner: (%d,%d) is not a graph edge" u v))
      (Ok ()) t.edges
  in
  let h = spanner_graph g t in
  Graph.fold_edges g ~init:(Ok ()) ~f:(fun acc u v ->
      let* () = acc in
      let dist = Bfs.distances h ~source:u in
      if dist.(v) >= 0 && dist.(v) <= t.stretch_bound then Ok ()
      else
        Error
          (Printf.sprintf "spanner: edge (%d,%d) stretched to %d > %d" u v
             dist.(v) t.stretch_bound))

let measured_stretch g t =
  let h = spanner_graph g t in
  let worst = ref 0 in
  (* one BFS per distinct source among edge endpoints *)
  let last_source = ref (-1) in
  let dist = ref [||] in
  Graph.iter_edges g (fun u v ->
      if u <> !last_source then begin
        last_source := u;
        dist := Bfs.distances h ~source:u
      end;
      if !dist.(v) > !worst then worst := !dist.(v));
  float_of_int !worst

let run ?cost g =
  let decomp = Strongdecomp.Netdecomp.strong ?cost g in
  (of_decomposition ?cost g decomp, decomp)
