type counter = { mutable count : int }
type gauge = { mutable last : float; mutable g_max : float; mutable set_yet : bool }

(* power-of-two buckets: index k counts v with 2^(k-1) <= v < 2^k, index 0
   counts v <= 0 or v = ... actually v < 1, i.e. v <= 0; v = 1 lands at
   index 1. 63 indices cover every OCaml int. *)
type histogram = {
  mutable n_obs : int;
  mutable total : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* reverse insertion order *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let register t name m =
  Hashtbl.add t.tbl name m;
  t.order <- name :: t.order

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { count = 0 } in
      register t name (Counter c);
      c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { last = 0.0; g_max = neg_infinity; set_yet = false } in
      register t name (Gauge g);
      g

let set g v =
  g.last <- v;
  g.set_yet <- true;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.last
let gauge_max g = if g.set_yet then g.g_max else 0.0

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      let h =
        {
          n_obs = 0;
          total = 0;
          h_min = max_int;
          h_max = min_int;
          buckets = Array.make 63 0;
        }
      in
      register t name (Histogram h);
      h

let bucket_index v =
  if v <= 0 then 0
  else begin
    let k = ref 0 and x = ref v in
    while !x > 0 do
      k := !k + 1;
      x := !x lsr 1
    done;
    (* 2^(k-1) <= v < 2^k *)
    !k
  end

let observe h v =
  h.n_obs <- h.n_obs + 1;
  h.total <- h.total + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let hist_count h = h.n_obs
let hist_sum h = h.total
let hist_min h = h.h_min
let hist_max h = h.h_max

let hist_mean h =
  if h.n_obs = 0 then nan else float_of_int h.total /. float_of_int h.n_obs

let hist_buckets h =
  let acc = ref [] in
  for k = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(k) > 0 then acc := (1 lsl k, h.buckets.(k)) :: !acc
  done;
  !acc

let of_trace ?into sink =
  let t = match into with Some t -> t | None -> create () in
  let rounds = counter t "rounds" in
  let sent = counter t "messages_sent" in
  let delivered = counter t "messages_delivered" in
  let dropped = counter t "messages_dropped" in
  let duplicated = counter t "messages_duplicated" in
  let delayed = counter t "messages_delayed" in
  let halts = counter t "nodes_halted" in
  let crashes = counter t "nodes_crashed" in
  let per_round = histogram t "messages_per_round" in
  let bits_hist = histogram t "bits_per_message" in
  let inbox = histogram t "inbox_size" in
  let max_bits = gauge t "max_message_bits" in
  let max_in_flight = gauge t "max_in_flight" in
  (* inbox sizes: deliveries grouped by destination within one round *)
  let inbox_now : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let flush_inboxes () =
    Hashtbl.iter (fun _dst k -> observe inbox k) inbox_now;
    Hashtbl.reset inbox_now
  in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Round_start _ -> incr rounds
      | Trace.Round_end { sent; in_flight; _ } ->
          observe per_round sent;
          set max_in_flight (float_of_int in_flight);
          flush_inboxes ()
      | Trace.Message_sent { bits; _ } ->
          incr sent;
          observe bits_hist bits
      | Trace.Message_delivered { dst; _ } ->
          incr delivered;
          let k =
            match Hashtbl.find_opt inbox_now dst with Some k -> k | None -> 0
          in
          Hashtbl.replace inbox_now dst (k + 1)
      | Trace.Message_dropped _ -> incr dropped
      | Trace.Message_duplicated _ -> incr duplicated
      | Trace.Message_delayed _ -> incr delayed
      | Trace.Node_halted _ -> incr halts
      | Trace.Node_crashed _ -> incr crashes
      | Trace.Bandwidth_high_water { bits; _ } ->
          set max_bits (float_of_int bits)
      | Trace.Cost_charged { tag; rounds = r; messages = m; max_bits = b } ->
          incr ~by:r (counter t "cost_rounds");
          incr ~by:m (counter t "cost_messages");
          incr ~by:r (counter t ("cost." ^ tag ^ ".rounds"));
          observe (histogram t "cost_charge_rounds") r;
          set (gauge t "cost_max_bits") (float_of_int b)
      | Trace.Span_enter _ | Trace.Span_exit _ -> ())
    sink;
  flush_inboxes ();
  t

let of_spans ?into sink =
  let t = match into with Some t -> t | None -> create () in
  List.iter
    (fun (r : Span.rollup) ->
      let pre = "span." ^ r.Span.path ^ "." in
      incr ~by:r.Span.entries (counter t (pre ^ "entries"));
      incr ~by:r.Span.rounds (counter t (pre ^ "rounds"));
      incr ~by:r.Span.rounds_incl (counter t (pre ^ "rounds_incl"));
      incr ~by:r.Span.messages (counter t (pre ^ "messages"));
      incr ~by:r.Span.messages_incl (counter t (pre ^ "messages_incl"));
      incr ~by:r.Span.bits (counter t (pre ^ "bits"));
      incr ~by:r.Span.bits_incl (counter t (pre ^ "bits_incl"));
      set (gauge t (pre ^ "max_message_bits"))
        (float_of_int r.Span.max_message_bits);
      set (gauge t (pre ^ "seconds")) r.Span.seconds;
      set (gauge t (pre ^ "seconds_incl")) r.Span.seconds_incl)
    (Span.rollups sink);
  t

let names t = List.rev t.order

let float_str v =
  if Float.is_nan v then "nan" else Printf.sprintf "%g" v

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "metric,stat,value\n";
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "%s,value,%d\n" name c.count)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "%s,value,%s\n" name (float_str g.last));
          Buffer.add_string b
            (Printf.sprintf "%s,max,%s\n" name (float_str (gauge_max g)))
      | Histogram h ->
          Buffer.add_string b (Printf.sprintf "%s,count,%d\n" name h.n_obs);
          Buffer.add_string b (Printf.sprintf "%s,sum,%d\n" name h.total);
          if h.n_obs > 0 then begin
            Buffer.add_string b (Printf.sprintf "%s,min,%d\n" name h.h_min);
            Buffer.add_string b (Printf.sprintf "%s,max,%d\n" name h.h_max);
            Buffer.add_string b
              (Printf.sprintf "%s,mean,%s\n" name (float_str (hist_mean h)))
          end;
          List.iter
            (fun (ub, k) ->
              Buffer.add_string b (Printf.sprintf "%s,lt_%d,%d\n" name ub k))
            (hist_buckets h))
    (names t);
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      (match Hashtbl.find t.tbl name with
      | Counter c ->
          Buffer.add_string b
            (Printf.sprintf {|{"metric":"%s","kind":"counter","value":%d}|}
               name c.count)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf
               {|{"metric":"%s","kind":"gauge","value":%s,"max":%s}|} name
               (float_str g.last)
               (float_str (gauge_max g)))
      | Histogram h ->
          let buckets =
            String.concat ","
              (List.map
                 (fun (ub, k) -> Printf.sprintf "[%d,%d]" ub k)
                 (hist_buckets h))
          in
          Buffer.add_string b
            (Printf.sprintf
               {|{"metric":"%s","kind":"histogram","count":%d,"sum":%d,"min":%d,"max":%d,"buckets":[%s]}|}
               name h.n_obs h.total
               (if h.n_obs = 0 then 0 else h.h_min)
               (if h.n_obs = 0 then 0 else h.h_max)
               buckets));
      Buffer.add_char b '\n')
    (names t);
  Buffer.contents b

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let save ?(dir = "bench_results") ~prefix t =
  ensure_dir dir;
  let csv_path = Filename.concat dir (prefix ^ "_metrics.csv") in
  let jsonl_path = Filename.concat dir (prefix ^ "_metrics.jsonl") in
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  write csv_path (to_csv t);
  write jsonl_path (to_jsonl t);
  [ csv_path; jsonl_path ]

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c -> Format.fprintf ppf "%-24s %d@." name c.count
      | Gauge g ->
          Format.fprintf ppf "%-24s %s (max %s)@." name (float_str g.last)
            (float_str (gauge_max g))
      | Histogram h ->
          if h.n_obs = 0 then Format.fprintf ppf "%-24s (empty)@." name
          else
            Format.fprintf ppf "%-24s n=%d sum=%d min=%d max=%d mean=%.1f@."
              name h.n_obs h.total h.h_min h.h_max (hist_mean h))
    (names t)
