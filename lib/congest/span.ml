(* Hierarchical phase spans over the trace sink. The recording half is
   in Trace (the sink owns the open-span stack and the packed buffer);
   this module is the user-facing API plus the replay that attributes
   rounds, messages, and bits to span paths. *)

let unspanned = "(unspanned)"

let enter trace name =
  match trace with None -> () | Some s -> Trace.enter_span s name

let enter_idx trace name i =
  match trace with
  | None -> ()
  | Some s -> Trace.enter_span s (Printf.sprintf "%s=%d" name i)

let exit trace = match trace with None -> () | Some s -> Trace.exit_span s

let with_span trace name f =
  match trace with
  | None -> f ()
  | Some s -> (
      Trace.enter_span s name;
      match f () with
      | v ->
          Trace.exit_span s;
          v
      | exception e ->
          Trace.exit_span s;
          raise e)

type rollup = {
  path : string;
  depth : int;
  entries : int;
  rounds : int;
  rounds_incl : int;
  messages : int;
  messages_incl : int;
  bits : int;
  bits_incl : int;
  max_message_bits : int;
  seconds : float;
  seconds_incl : float;
}

type acc = {
  mutable a_entries : int;
  mutable a_rounds : int;
  mutable a_rounds_incl : int;
  mutable a_messages : int;
  mutable a_messages_incl : int;
  mutable a_bits : int;
  mutable a_bits_incl : int;
  mutable a_max_bits : int;
}

let path_depth path =
  if path = unspanned then 0
  else 1 + String.fold_left (fun k c -> if c = '/' then k + 1 else k) 0 path

(* Replay attribution: self goes to the innermost open span at the time
   of the event ([unspanned] when none is open — kept as an explicit
   bucket so per-span self totals sum exactly to the Metrics.of_trace
   globals), inclusive to every open ancestor. Open paths are pairwise
   distinct (each extends its parent), so inclusive counts each once. *)
let rollups sink =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let get path =
    match Hashtbl.find_opt tbl path with
    | Some a -> a
    | None ->
        let a =
          {
            a_entries = 0;
            a_rounds = 0;
            a_rounds_incl = 0;
            a_messages = 0;
            a_messages_incl = 0;
            a_bits = 0;
            a_bits_incl = 0;
            a_max_bits = 0;
          }
        in
        Hashtbl.add tbl path a;
        order := path :: !order;
        a
  in
  let stack = ref [] in
  let charge ~rounds ~messages ~bits ~maxb =
    let open_paths = !stack in
    let self = match open_paths with p :: _ -> p | [] -> unspanned in
    let a = get self in
    a.a_rounds <- a.a_rounds + rounds;
    a.a_messages <- a.a_messages + messages;
    a.a_bits <- a.a_bits + bits;
    if maxb > a.a_max_bits then a.a_max_bits <- maxb;
    let incl p =
      let a = get p in
      a.a_rounds_incl <- a.a_rounds_incl + rounds;
      a.a_messages_incl <- a.a_messages_incl + messages;
      a.a_bits_incl <- a.a_bits_incl + bits
    in
    match open_paths with
    | [] -> incl unspanned
    | ps -> List.iter incl ps
  in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Span_enter { path } ->
          let a = get path in
          a.a_entries <- a.a_entries + 1;
          stack := path :: !stack
      | Trace.Span_exit _ -> (
          match !stack with [] -> () | _ :: rest -> stack := rest)
      | Trace.Round_start _ -> charge ~rounds:1 ~messages:0 ~bits:0 ~maxb:0
      | Trace.Message_sent { bits; _ } ->
          charge ~rounds:0 ~messages:1 ~bits ~maxb:bits
      | Trace.Cost_charged { rounds; messages; max_bits; _ } ->
          charge ~rounds ~messages ~bits:0 ~maxb:max_bits
      | _ -> ())
    sink;
  let secs = Trace.span_seconds sink in
  List.iter (fun (p, _, _) -> ignore (get p)) secs;
  let sec_of p =
    match List.find_opt (fun (q, _, _) -> q = p) secs with
    | Some (_, self, incl) -> (self, incl)
    | None -> (0.0, 0.0)
  in
  List.rev_map
    (fun path ->
      let a = Hashtbl.find tbl path in
      let seconds, seconds_incl = sec_of path in
      {
        path;
        depth = path_depth path;
        entries = a.a_entries;
        rounds = a.a_rounds;
        rounds_incl = a.a_rounds_incl;
        messages = a.a_messages;
        messages_incl = a.a_messages_incl;
        bits = a.a_bits;
        bits_incl = a.a_bits_incl;
        max_message_bits = a.a_max_bits;
        seconds;
        seconds_incl;
      })
    !order

type weight = [ `Rounds | `Messages | `Bits ]

let weight_of r = function
  | `Rounds -> r.rounds
  | `Messages -> r.messages
  | `Bits -> r.bits

(* flamegraph folded-stack format: frames joined by ';', one
   "stack value" line per path, weight = the span's SELF count (the
   flamegraph renderer re-derives inclusive totals by summation) *)
let to_folded ?(weight = `Rounds) sink =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      let v = weight_of r weight in
      if v > 0 then begin
        Buffer.add_string b
          (String.map (fun c -> if c = '/' then ';' else c) r.path);
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int v);
        Buffer.add_char b '\n'
      end)
    (rollups sink);
  Buffer.contents b

let of_folded text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        if String.trim line = "" then go acc rest
        else
          match String.rindex_opt line ' ' with
          | None -> Error (Printf.sprintf "folded line without weight: %s" line)
          | Some i -> (
              let stack = String.sub line 0 i in
              let count =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              match int_of_string_opt (String.trim count) with
              | None ->
                  Error (Printf.sprintf "bad folded weight %S in %s" count line)
              | Some v ->
                  let path =
                    String.map (fun c -> if c = ';' then '/' else c) stack
                  in
                  go ((path, v) :: acc) rest))
  in
  go [] (String.split_on_char '\n' text)

let rollup_csv rs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "path,depth,entries,rounds,rounds_incl,messages,messages_incl,bits,bits_incl,max_message_bits,seconds,seconds_incl\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f\n" r.path
           r.depth r.entries r.rounds r.rounds_incl r.messages r.messages_incl
           r.bits r.bits_incl r.max_message_bits r.seconds r.seconds_incl))
    rs;
  Buffer.contents b

let pp_rollups ppf rs =
  Format.fprintf ppf "%-52s %10s %10s %10s %9s@." "phase" "rounds" "messages"
    "bits" "seconds";
  List.iter
    (fun r ->
      let indent = String.make (2 * max 0 (r.depth - 1)) ' ' in
      let label =
        match String.rindex_opt r.path '/' with
        | Some i -> String.sub r.path (i + 1) (String.length r.path - i - 1)
        | None -> r.path
      in
      Format.fprintf ppf "%-52s %10d %10d %10d %9.4f@."
        (indent ^ label)
        r.rounds_incl r.messages_incl r.bits_incl r.seconds_incl)
    rs

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let save ?(dir = "bench_results") ?weight ~prefix sink =
  ensure_dir dir;
  let rs = rollups sink in
  let csv_path = Filename.concat dir (prefix ^ "_phases.csv") in
  let folded_path = Filename.concat dir (prefix ^ ".folded") in
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  write csv_path (rollup_csv rs);
  write folded_path (to_folded ?weight sink);
  [ csv_path; folded_path ]
