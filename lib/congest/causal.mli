(** Causal critical-path analysis over a recorded trace.

    A replay-time consumer of the {!Trace} event stream (like
    {!Span.rollups} and {!Metrics.of_trace}): it never writes events,
    it only folds over [Trace.iter]. The analysis reconstructs the
    happens-before order of a run and extracts its {e critical path} —
    the longest chain of causally dependent messages — which
    lower-bounds the number of rounds any schedule of the same causal
    structure must pay. Rounds not covered by the critical chain are
    {e slack}: the run spent them, but no single dependency chain
    required them.

    Two kinds of traces occur in this repository and both are handled:

    - {b Simulator traces} ([Sim.simulate] with a sink attached) carry
      the full per-message stream. A message [m'] sent by node [v]
      causally depends on a message [m] delivered to [v] at a round
      [<= sent_round m'] (the simulator delivers into inboxes before
      stepping the nodes, so within one trace the deliveries of a round
      precede its sends — one forward pass suffices). The chain value of
      a delivered message is its in-flight latency
      [delivered - sent] plus the best chain value delivered to its
      sender beforehand; the critical path is the maximum over all
      messages. Because consecutive chain hops occupy disjoint round
      intervals, that value never exceeds [rounds_used] — it is a true
      lower bound, and under fault-free FIFO delivery (exactly one
      round of latency, no drops or duplicates) the send/delivery
      matching is exact.
    - {b Engine traces} (step-granular algorithms charging
      {!Cost.charge}) contain only [Cost_charged] events. The engine is
      a single sequential thread, so every charged round is causally
      ordered after the previous one: the critical path equals the sum
      of charged rounds exactly — [critical_rounds = Cost.rounds] on
      every fault-free registry run (test/test_causal.ml asserts this
      over the whole registry), and the slack is zero.

    Under an adversary (drops, duplicates, delays) the per-edge FIFO
    matching of sends to deliveries is a best-effort approximation
    ({!field-exact} is [false]); the result is still a valid chain of
    real deliveries, hence still a lower bound. *)

type hop = {
  src : int;
  dst : int;
  sent_round : int;
  delivered_round : int;
  bits : int;
}
(** One delivered message on the witness chain. *)

type t = {
  nodes : int;  (** [1 + ] the largest node id seen; [0] if none *)
  sim_rounds : int;  (** [Round_start] events (simulator rounds) *)
  engine_rounds : int;  (** total rounds from [Cost_charged] events *)
  rounds : int;  (** [sim_rounds + engine_rounds] *)
  chain_rounds : int;
      (** in-flight rounds along the best message chain ([<= sim_rounds]
          on complete traces) *)
  critical_rounds : int;  (** [engine_rounds + chain_rounds] *)
  slack_rounds : int;  (** [rounds - critical_rounds] *)
  chain : hop list;
      (** the witness chain in causal order: each hop is sent by the
          destination of the previous one, at or after its delivery *)
  node_depth : int array;
      (** [nodes] cells; best chain value over deliveries into each
          node ([0] for nodes that never received) *)
  node_active : bool array;
      (** [nodes] cells; whether the node appears as a message
          endpoint *)
  round_critical : bool array;
      (** [sim_rounds + 1] cells, 1-indexed by round; whether the round
          is covered by a witness-chain hop's flight interval *)
  exact : bool;
      (** no drops, duplicates, delays, or crashes were seen, so the
          FIFO send/delivery matching is exact *)
}

val analyze : Trace.sink -> t

type span_slack = { span_path : string; critical : int; slack : int }
(** Per-span attribution of rounds: [critical] rounds are covered by
    the witness chain (every [Cost_charged] round counts as critical),
    [slack] rounds are not. Summed over all spans,
    [critical + slack = rounds]. *)

val span_breakdown : Trace.sink -> t -> span_slack list
(** Replays the span stack (as {!Span.rollups} does) and splits each
    span's self-attributed rounds into critical vs. slack using
    [t.round_critical]. Rounds outside any span land in the
    ["(unspanned)"] bucket; order is first-seen. *)

val metrics : ?into:Metrics.t -> t -> Metrics.t
(** Exports counters [causal_rounds], [causal_chain_rounds],
    [causal_critical_rounds], [causal_slack_rounds], [causal_chain_hops]
    and the pow2 histogram [causal_node_slack] — per active node, the
    gap [chain_rounds - node_depth] between the run's critical depth
    and the deepest chain that reached the node (0 = the node is on a
    deepest chain's frontier). *)

val pp : Format.formatter -> t -> unit
(** One-paragraph summary: rounds, critical/slack split, chain shape. *)
