(** Classic CONGEST node programs, used to validate the simulator and to
    anchor the {!Cost} charging formulas: a radius-[r] BFS wave really does
    take [r + O(1)] rounds, a convergecast over a depth-[d] tree takes
    [d + O(1)] rounds, and all messages stay within [O(log n)] bits.

    Every entry point accepts a {!Conformance.instrumentor}, so the model
    invariants (edge discipline, halt monotonicity, inbox-order
    robustness) can be checked on the programs themselves.
    [leader_election] and [subtree_counts] fold their inboxes with
    commutative operations (min / sums) and may be instrumented
    order-invariant; [bfs] breaks distance ties by {e first arrival in
    inbox order} when choosing a parent, so it must not be. *)

val leader_election :
  ?adversary:Fault.t ->
  ?conformance:Conformance.instrumentor ->
  ?trace:Trace.sink ->
  Dsgraph.Graph.t ->
  int array * Sim.stats
(** Min-identifier flooding. Returns the leader elected at each node (all
    equal to the component's minimum id) and run statistics; terminates in
    [O(diameter)] rounds on connected graphs. Under a lossy [adversary]
    nodes may quiesce before the minimum reaches them (dropped updates are
    never resent), electing inconsistent leaders — wrap with {!Reliable}
    to recover exactness. *)

val bfs :
  ?adversary:Fault.t ->
  ?conformance:Conformance.instrumentor ->
  ?trace:Trace.sink ->
  Dsgraph.Graph.t ->
  source:int ->
  (int array * int array) * Sim.stats
(** Distributed BFS from [source]: per-node [(dist, parent)] with [-1] for
    unreached, [parent.(source) = source]. Under an [adversary], distances
    are only upper bounds — wrap with {!Reliable} to recover exactness. *)

val subtree_counts :
  ?adversary:Fault.t ->
  ?conformance:Conformance.instrumentor ->
  ?trace:Trace.sink ->
  Dsgraph.Graph.t ->
  parent:int array ->
  int array * Sim.stats
(** Convergecast over a rooted spanning forest given by [parent] (root has
    [parent.(v) = v]; [-1] = not in any tree): each node ends with the size
    of its subtree. *)
