(** Round-cost meter for CONGEST-model algorithms.

    The polylogarithmic-round algorithms in this repository execute at
    {i step} granularity (a step = one BFS wave, one Steiner-tree
    convergecast, one cluster-growing exchange, ...) and charge this meter
    the number of CONGEST rounds the step costs, together with message
    counts and the maximum message size in bits. This keeps execution
    feasible at interesting [n] while reporting honest round complexities;
    the charging formulas are listed in DESIGN.md §5 and anchored against
    the true synchronous simulator ({!Sim}) in the test suite. *)

type t

val create : ?trace:Trace.sink -> unit -> t
(** A meter, optionally reporting each charge into a {!Trace.sink} as a
    [Cost_charged] event so engine-level runs are observable with the
    same machinery as simulator-level runs. *)

val trace : t -> Trace.sink option
(** The sink this meter reports into, if any. *)

val charge : t -> ?rounds:int -> ?messages:int -> ?max_bits:int -> string -> unit
(** [charge t ~rounds ~messages ~max_bits tag] adds [rounds] CONGEST rounds
    (default 1) under the breakdown key [tag], plus [messages] messages
    (default 0) and updates the maximum observed message size. When the
    meter was created with a [trace] sink, the charge is also recorded
    there as a [Cost_charged] event. *)

val rounds : t -> int
(** Total rounds charged. *)

val messages : t -> int

val max_message_bits : t -> int
(** Largest single message charged, in bits; 0 if none recorded. *)

val breakdown : t -> (string * int) list
(** Rounds per tag, sorted by tag. *)

val reset : t -> unit

val merge_max : t -> t -> unit
(** [merge_max acc other] adds [other]'s rounds as if it ran {i in
    parallel} with previously merged meters under the same tag — used when
    independent components execute simultaneously: the per-tag cost is the
    max, message counts still add. (Simplified: callers that need parallel
    semantics should use {!val:parallel} instead.) *)

val parallel : t -> t list -> string -> unit
(** [parallel acc metered tag] charges [acc] the {e maximum} round count
    among the [metered] sub-meters (components running simultaneously) and
    the {e sum} of their messages, under [tag]. *)

val pp : Format.formatter -> t -> unit
