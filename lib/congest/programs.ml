open Dsgraph

(* ------------------------------------------------------------------ *)
(* Leader election: flood the minimum identifier.                      *)
(* ------------------------------------------------------------------ *)

let config ?adversary ?trace () =
  { Sim.Config.default with adversary; trace }

let wrap conformance program =
  match conformance with
  | None -> program
  | Some c -> c.Conformance.instrument program

type leader_state = { best : int; dirty : bool }

let leader_election ?adversary ?conformance ?trace g =
  let n = Graph.n g in
  let id_bits = Bits.id_bits ~n in
  let program =
    {
      Sim.init = (fun ~node ~neighbors:_ -> { best = node; dirty = true });
      round =
        (fun ~node ~state ~inbox ->
          ignore node;
          let best =
            List.fold_left (fun acc (_, m) -> min acc m) state.best inbox
          in
          if state.dirty || best < state.best then
            let out =
              Array.to_list
                (Array.map (fun nb -> (nb, best)) (Graph.neighbors g node))
            in
            ({ best; dirty = false }, out, false)
          else ({ best; dirty = false }, [], true));
    }
  in
  let states, stats =
    Sim.simulate ~config:(config ?adversary ?trace ())
      ~bits:(fun _ -> id_bits)
      g (wrap conformance program)
  in
  (Array.map (fun s -> s.best) states, stats)

(* ------------------------------------------------------------------ *)
(* BFS wave.                                                           *)
(* ------------------------------------------------------------------ *)

type bfs_state = { dist : int; parent : int; announced : bool }

let bfs ?adversary ?conformance ?trace g ~source =
  let n = Graph.n g in
  let msg_bits = Bits.int_bits (max 1 n) in
  let program =
    {
      Sim.init =
        (fun ~node ~neighbors:_ ->
          if node = source then { dist = 0; parent = source; announced = false }
          else { dist = -1; parent = -1; announced = false });
      round =
        (fun ~node ~state ~inbox ->
          let state =
            if state.dist >= 0 then state
            else
              match inbox with
              | [] -> state
              | (u, d) :: rest ->
                  let best_u, best_d =
                    List.fold_left
                      (fun (bu, bd) (u', d') ->
                        if d' < bd then (u', d') else (bu, bd))
                      (u, d) rest
                  in
                  { dist = best_d + 1; parent = best_u; announced = false }
          in
          if state.dist >= 0 && not state.announced then
            let out =
              Array.to_list
                (Array.map
                   (fun nb -> (nb, state.dist))
                   (Graph.neighbors g node))
            in
            ({ state with announced = true }, out, false)
          else (state, [], true));
    }
  in
  let states, stats =
    Sim.simulate ~config:(config ?adversary ?trace ())
      ~bits:(fun _ -> msg_bits)
      g (wrap conformance program)
  in
  ((Array.map (fun s -> s.dist) states, Array.map (fun s -> s.parent) states), stats)

(* ------------------------------------------------------------------ *)
(* Subtree counting (convergecast).                                    *)
(* ------------------------------------------------------------------ *)

type count_msg = Child | Count of int

type count_state = {
  round_no : int;
  pending : int; (* children that have not reported yet *)
  total : int;
  sent_up : bool;
}

(* Timing invariant: every node sends [Child] to its parent in round 1, so
   all [Child] messages arrive exactly in round 2; [Count] messages are sent
   in rounds >= 2 and arrive in rounds >= 3. Hence after processing the
   round-2 inbox, [pending] equals the true child count, and from round 2 on
   [pending = 0] means the whole subtree has reported. *)
let subtree_counts ?adversary ?conformance ?trace g ~parent =
  let n = Graph.n g in
  let msg_bits = Bits.int_bits (max 1 n) + 1 in
  let program =
    {
      Sim.init =
        (fun ~node ~neighbors:_ ->
          ignore node;
          { round_no = 0; pending = 0; total = 1; sent_up = false });
      round =
        (fun ~node ~state ~inbox ->
          if parent.(node) = -1 then (state, [], true)
          else
            let state = { state with round_no = state.round_no + 1 } in
            if state.round_no = 1 then
              let out =
                if parent.(node) <> node then [ (parent.(node), Child) ] else []
              in
              (state, out, false)
            else
              let state =
                List.fold_left
                  (fun st (_, m) ->
                    match m with
                    | Child -> { st with pending = st.pending + 1 }
                    | Count c ->
                        { st with pending = st.pending - 1; total = st.total + c })
                  state inbox
              in
              let is_root = parent.(node) = node in
              if state.pending = 0 && not state.sent_up && not is_root then
                ( { state with sent_up = true },
                  [ (parent.(node), Count state.total) ],
                  false )
              else (state, [], state.sent_up || (is_root && state.pending = 0)));
    }
  in
  let states, stats =
    Sim.simulate ~config:(config ?adversary ?trace ())
      ~bits:(fun m -> match m with Child -> 1 | Count _ -> msg_bits)
      g (wrap conformance program)
  in
  (Array.map (fun s -> s.total) states, stats)
