(** Reliable transport over a faulty {!Sim} fabric.

    [wrap cfg program] turns any CONGEST program into one that survives a
    {!Fault} adversary (message drops, duplication, bounded reordering,
    crash-stop nodes). It is an alpha-synchronizer running the inner
    program in lockstep: one {e token} — the inner message, or an explicit
    "nothing this round" — per live neighbor per inner round, carrying a
    sequence number and a cumulative acknowledgement. A node executes
    inner round [r] only once it holds every live neighbor's round-[r-1]
    token, so under any fault schedule the inner program observes exactly
    the synchronous semantics of {!Sim.simulate}: delivery is
    exactly-once and in order per sequence number.

    The wrapped program runs the inner program for a {e fixed} number of
    rounds, [cfg.inner_rounds] — distributed termination detection under
    message loss is deliberately out of scope — so callers size
    [inner_rounds] generously; all of this repo's distributed programs
    idle harmlessly after quiescence, which is what makes the zero-fault
    transparency guarantee exact rather than approximate.

    {b Pipelining.} A send window of [window] tokens per neighbor lets a
    node run ahead of acknowledgements: with the default [window = 2], a
    fault-free run advances one inner round per outer round — the wrapper
    costs only a small additive number of drain rounds. Under loss it
    degrades towards stop-and-wait, retransmitting the oldest
    unacknowledged token every [rto] outer rounds; retransmissions of
    already-delivered tokens trigger re-acknowledgements rather than
    duplicate deliveries.

    {b Crash detection.} A link is declared dead when the node has been
    {e awaiting} it (unacknowledged tokens outstanding, or blocked on its
    next token) and has heard nothing for [liveness_timeout] outer rounds.
    Pure-ack heartbeats every [heartbeat_every] rounds keep live-but-idle
    links audible, so with the default timeout only genuinely crashed
    neighbors are excluded. Survivors then continue the inner program on
    the induced live subgraph (the dead neighbor simply stops appearing in
    inboxes).

    {b Bit accounting.} Every frame pays {!header_bits} on top of its
    payload — two sequence-number-sized fields plus flags — and
    {!simulate} checks frames against [inner bandwidth + header_bits].
    Since [inner_rounds] is polynomial in [n] for every program in this
    repo, the header is [O(log n)] and the CONGEST claim survives
    wrapping. *)

type config = {
  inner_rounds : int;  (** exact number of inner rounds to execute *)
  window : int;  (** send window per neighbor (tokens in flight) *)
  rto : int;  (** retransmit oldest unacked token after this many rounds *)
  heartbeat_every : int;
      (** an unfinished node pings otherwise-silent links at this cadence *)
  liveness_timeout : int;
      (** declare an awaited link dead after this many silent rounds *)
  backoff : float;
      (** exponential backoff factor: the [k]-th retransmission of a
          token waits [rto * backoff^k] rounds; [1.0] (the default)
          keeps the classic fixed-interval behavior byte-identical *)
  max_rto : int;  (** cap on the backed-off interval; [0] = uncapped *)
  max_retries : int;
      (** declare a link dead once its oldest token has been
          retransmitted this many times unacknowledged, even before the
          silence timeout; [0] (the default) = retry forever *)
  jitter : int;
      (** add a deterministic pseudo-random extra wait in
          [0 .. jitter] rounds per retransmission, de-synchronizing
          retry storms; [0] = none *)
  jitter_seed : int;
      (** seeds the jitter mixer; the jitter of a retransmission is a
          pure function of (seed, node, neighbor, seq, attempt), so
          replays stay deterministic *)
}

val config :
  ?window:int ->
  ?rto:int ->
  ?heartbeat_every:int ->
  ?liveness_timeout:int ->
  ?backoff:float ->
  ?max_rto:int ->
  ?max_retries:int ->
  ?jitter:int ->
  ?jitter_seed:int ->
  inner_rounds:int ->
  unit ->
  config
(** Defaults: [window = 2], [rto = 2], [heartbeat_every = 8],
    [liveness_timeout = 64], [backoff = 1.0], [max_rto = 0] (uncapped),
    [max_retries = 0] (unbounded), [jitter = 0], [jitter_seed = 0] —
    the adaptive-backoff knobs all default {e off}, preserving
    byte-identical traces for pre-existing runs.
    @raise Invalid_argument unless [inner_rounds >= 1], [window >= 1],
    [rto >= 1], [heartbeat_every >= 1],
    [liveness_timeout > rto + heartbeat_every] (anything tighter risks
    declaring slow-but-live links dead), [backoff >= 1.0], and the
    remaining knobs are non-negative with [max_rto >= rto] when set. *)

val header_bits : inner_rounds:int -> int
(** Per-frame overhead: sequence number + cumulative ack + flag bits. *)

type 'msg frame
(** Wire format of the wrapped program: token and/or acknowledgement. *)

val frame_bits : bits:('msg -> int) -> inner_rounds:int -> 'msg frame -> int
(** Size of a frame: {!header_bits} plus the payload's [bits] (if any). *)

type ('st, 'msg) node
(** Transport state of one node: inner state plus per-neighbor link
    bookkeeping (send queue, expected sequence, liveness clock). *)

val wrap :
  config -> ('st, 'msg) Sim.program -> (('st, 'msg) node, 'msg frame) Sim.program
(** The transport combinator. Run the result through {!Sim.simulate} with
    [bits = frame_bits ~bits ~inner_rounds] and a bandwidth widened by
    {!header_bits} — or use {!simulate}, which does exactly that. *)

val inner_state : ('st, 'msg) node -> 'st
val finished : ('st, 'msg) node -> bool
(** Whether the node executed all [inner_rounds] inner rounds. *)

val dead_neighbors : ('st, 'msg) node -> int list
(** Neighbors this node declared crashed, sorted. *)

type transport_stats = {
  retransmissions : int;
  heartbeats : int;
  detected_dead : int list;
      (** union over nodes of {!dead_neighbors}, sorted *)
}

val transport_stats : ('st, 'msg) node array -> transport_stats

type 'st result = {
  states : 'st array;  (** final inner states (crashed nodes: frozen) *)
  finished : bool array;
  dead_view : int list array;  (** per-node {!dead_neighbors} *)
  sim_stats : Sim.stats;
  transport : transport_stats;
}

val simulate :
  ?sim:Sim.Config.t ->
  config ->
  bits:('msg -> int) ->
  Dsgraph.Graph.t ->
  ('st, 'msg) Sim.program ->
  'st result
(** [simulate ~sim cfg ~bits g program] wraps [program] and simulates it
    under the run configuration [sim] (default {!Sim.Config.default}).
    [sim.bandwidth] is the {e inner} budget (default {!Bits.bandwidth});
    the outer simulation enforces [bandwidth + header_bits].
    [sim.max_rounds] defaults to
    [6 * inner_rounds + 8 * liveness_timeout + 64], ample for drop rates
    well beyond the benchmarked 0.1. A [sim.trace] sink observes the
    {e outer} (transport-level) rounds and frames.

    When [sim.transport_window], [sim.transport_rto], or
    [sim.liveness_timeout] is set, it overrides the corresponding
    [cfg] field (revalidated through {!val-config}), so run harnesses
    configure the transport through the one {!Sim.Config.t} record. *)
