(* The single sanctioned clock/GC read point outside bench/ (enforced
   by the [wallclock] lint rule). Attribution works on a sample cursor:
   every span transition reads the clock and the GC counters once and
   charges the delta since the previous sample to the innermost open
   bucket (self) and to every open frame (inclusive). Deltas telescope,
   so self totals across all buckets reproduce the process totals
   exactly for word counts (integral floats below 2^53 add exactly) and
   up to float rounding for seconds. *)

let now () = Unix.gettimeofday ()
let word_bytes = float_of_int (Sys.word_size / 8)

type acc = {
  a_path : string;
  a_depth : int;
  mutable a_entries : int;
  mutable self_s : float;
  mutable incl_s : float;
  mutable self_minor : float;
  mutable incl_minor : float;
  mutable self_promoted : float;
  mutable incl_promoted : float;
  mutable self_major : float;
  mutable incl_major : float;
  mutable self_majors : int;
  mutable incl_majors : int;
}

type t = {
  accs : (int, acc) Hashtbl.t;  (* sink path id -> accumulator *)
  unspanned : acc;
  mutable stack : acc array;  (* open frames, innermost last *)
  mutable depth : int;
  t0 : float;
  (* sample cursor: the last (clock, GC counters) reading *)
  mutable l_time : float;
  mutable l_minor : float;
  mutable l_promoted : float;
  mutable l_major : float;
  mutable l_majors : int;
  mutable peak_heap : int;
  (* window totals, accumulated transition-by-transition so the
     exact-sum invariant is a telescoping identity, not a definition *)
  mutable tot_s : float;
  mutable tot_minor : float;
  mutable tot_promoted : float;
  mutable tot_major : float;
  mutable tot_majors : int;
  (* chrome timeline: one (phase, acc, ts) triple per span transition *)
  mutable ev_phase : Bytes.t;  (* 'B' or 'E' *)
  mutable ev_acc : acc array;
  mutable ev_ts : float array;  (* microseconds since t0 *)
  mutable ev_len : int;
}

let fresh_acc path depth =
  {
    a_path = path;
    a_depth = depth;
    a_entries = 0;
    self_s = 0.0;
    incl_s = 0.0;
    self_minor = 0.0;
    incl_minor = 0.0;
    self_promoted = 0.0;
    incl_promoted = 0.0;
    self_major = 0.0;
    incl_major = 0.0;
    self_majors = 0;
    incl_majors = 0;
  }

let create () =
  let st = Gc.quick_stat () in
  let unspanned = fresh_acc "(unspanned)" 0 in
  {
    accs = Hashtbl.create 16;
    unspanned;
    stack = Array.make 8 unspanned;
    depth = 0;
    t0 = now ();
    l_time = now ();
    l_minor = Gc.minor_words ();
    l_promoted = st.Gc.promoted_words;
    l_major = st.Gc.major_words;
    l_majors = st.Gc.major_collections;
    peak_heap = st.Gc.top_heap_words;
    tot_s = 0.0;
    tot_minor = 0.0;
    tot_promoted = 0.0;
    tot_major = 0.0;
    tot_majors = 0;
    ev_phase = Bytes.create 64;
    ev_acc = Array.make 64 unspanned;
    ev_ts = Array.make 64 0.0;
    ev_len = 0;
  }

(* read the clock + GC once, charge the delta since the previous sample,
   advance the cursor. The innermost open frame gets self; every open
   frame gets inclusive; no open frame means "(unspanned)". *)
let transition t =
  let tm = now () in
  let minor = Gc.minor_words () in
  let st = Gc.quick_stat () in
  let ds = tm -. t.l_time in
  let dminor = minor -. t.l_minor in
  let dpromoted = st.Gc.promoted_words -. t.l_promoted in
  let dmajor = st.Gc.major_words -. t.l_major in
  let dmajors = st.Gc.major_collections - t.l_majors in
  let self = if t.depth = 0 then t.unspanned else t.stack.(t.depth - 1) in
  self.self_s <- self.self_s +. ds;
  self.self_minor <- self.self_minor +. dminor;
  self.self_promoted <- self.self_promoted +. dpromoted;
  self.self_major <- self.self_major +. dmajor;
  self.self_majors <- self.self_majors + dmajors;
  (if t.depth = 0 then begin
     t.unspanned.incl_s <- t.unspanned.incl_s +. ds;
     t.unspanned.incl_minor <- t.unspanned.incl_minor +. dminor;
     t.unspanned.incl_promoted <- t.unspanned.incl_promoted +. dpromoted;
     t.unspanned.incl_major <- t.unspanned.incl_major +. dmajor;
     t.unspanned.incl_majors <- t.unspanned.incl_majors + dmajors
   end
   else
     for i = 0 to t.depth - 1 do
       let a = t.stack.(i) in
       a.incl_s <- a.incl_s +. ds;
       a.incl_minor <- a.incl_minor +. dminor;
       a.incl_promoted <- a.incl_promoted +. dpromoted;
       a.incl_major <- a.incl_major +. dmajor;
       a.incl_majors <- a.incl_majors + dmajors
     done);
  t.tot_s <- t.tot_s +. ds;
  t.tot_minor <- t.tot_minor +. dminor;
  t.tot_promoted <- t.tot_promoted +. dpromoted;
  t.tot_major <- t.tot_major +. dmajor;
  t.tot_majors <- t.tot_majors + dmajors;
  if st.Gc.top_heap_words > t.peak_heap then
    t.peak_heap <- st.Gc.top_heap_words;
  t.l_time <- tm;
  t.l_minor <- minor;
  t.l_promoted <- st.Gc.promoted_words;
  t.l_major <- st.Gc.major_words;
  t.l_majors <- st.Gc.major_collections

let push_event t phase acc =
  let n = t.ev_len in
  if n = Bytes.length t.ev_phase then begin
    let cap = 2 * n in
    let phase' = Bytes.make cap ' '
    and acc' = Array.make cap t.unspanned
    and ts' = Array.make cap 0.0 in
    Bytes.blit t.ev_phase 0 phase' 0 n;
    Array.blit t.ev_acc 0 acc' 0 n;
    Array.blit t.ev_ts 0 ts' 0 n;
    t.ev_phase <- phase';
    t.ev_acc <- acc';
    t.ev_ts <- ts'
  end;
  Bytes.set t.ev_phase n phase;
  t.ev_acc.(n) <- acc;
  (* quantize to the 3-decimal grid the JSON prints, so the in-memory
     timeline and a chrome_of_json round-trip are bit-identical *)
  t.ev_ts.(n) <- Float.round ((t.l_time -. t.t0) *. 1e9) /. 1e3;
  t.ev_len <- n + 1

let path_depth path =
  let d = ref 0 in
  String.iter (fun c -> if c = '/' then incr d) path;
  !d

let on_enter t sink pid =
  transition t;
  let acc =
    match Hashtbl.find_opt t.accs pid with
    | Some a -> a
    | None ->
        let path = Trace.span_path sink pid in
        let a = fresh_acc path (path_depth path) in
        Hashtbl.add t.accs pid a;
        a
  in
  acc.a_entries <- acc.a_entries + 1;
  if t.depth = Array.length t.stack then begin
    let grown = Array.make (2 * t.depth) t.unspanned in
    Array.blit t.stack 0 grown 0 t.depth;
    t.stack <- grown
  end;
  t.stack.(t.depth) <- acc;
  t.depth <- t.depth + 1;
  push_event t 'B' acc

let on_exit t _sink _pid =
  transition t;
  if t.depth > 0 then begin
    t.depth <- t.depth - 1;
    push_event t 'E' t.stack.(t.depth)
  end

let span_seconds t =
  Hashtbl.fold (fun _ a l -> (a.a_path, a.self_s, a.incl_s) :: l) t.accs []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let attach t sink =
  Trace.set_span_hooks sink
    ~enter:(fun pid -> on_enter t sink pid)
    ~exit:(fun pid -> on_exit t sink pid)
    ~seconds:(fun () -> span_seconds t)

type rollup = {
  r_path : string;
  r_depth : int;
  r_entries : int;
  r_seconds : float;
  r_seconds_incl : float;
  r_minor_words : float;
  r_minor_words_incl : float;
  r_promoted_words : float;
  r_promoted_words_incl : float;
  r_major_words : float;
  r_major_words_incl : float;
  r_major_collections : int;
  r_major_collections_incl : int;
}

type totals = {
  t_seconds : float;
  t_minor_words : float;
  t_promoted_words : float;
  t_major_words : float;
  t_major_collections : int;
  t_peak_heap_words : int;
}

let rollup_of_acc a =
  {
    r_path = a.a_path;
    r_depth = a.a_depth;
    r_entries = a.a_entries;
    r_seconds = a.self_s;
    r_seconds_incl = a.incl_s;
    r_minor_words = a.self_minor;
    r_minor_words_incl = a.incl_minor;
    r_promoted_words = a.self_promoted;
    r_promoted_words_incl = a.incl_promoted;
    r_major_words = a.self_major;
    r_major_words_incl = a.incl_major;
    r_major_collections = a.self_majors;
    r_major_collections_incl = a.incl_majors;
  }

(* readers of the current state, no sampling: [snapshot] needs both
   views of the same instant for the exact-sum invariant to be checkable *)
let rollups_now t =
  let spanned =
    Hashtbl.fold (fun _ a l -> rollup_of_acc a :: l) t.accs []
    |> List.sort (fun a b -> compare a.r_path b.r_path)
  in
  rollup_of_acc t.unspanned :: spanned

let totals_now t =
  {
    t_seconds = t.tot_s;
    t_minor_words = t.tot_minor;
    t_promoted_words = t.tot_promoted;
    t_major_words = t.tot_major;
    t_major_collections = t.tot_majors;
    t_peak_heap_words = t.peak_heap;
  }

let rollups t =
  transition t;
  rollups_now t

let totals t =
  transition t;
  totals_now t

let snapshot t =
  transition t;
  let tot = totals_now t in
  (rollups_now t, tot)

let peak_heap_mb tot = float_of_int tot.t_peak_heap_words *. word_bytes /. 1e6

let csv rs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "path,depth,entries,seconds,seconds_incl,minor_words,minor_words_incl,promoted_words,promoted_words_incl,major_words,major_words_incl,major_collections,major_collections_incl\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%d,%.6f,%.6f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%d,%d\n"
           r.r_path r.r_depth r.r_entries r.r_seconds r.r_seconds_incl
           r.r_minor_words r.r_minor_words_incl r.r_promoted_words
           r.r_promoted_words_incl r.r_major_words r.r_major_words_incl
           r.r_major_collections r.r_major_collections_incl))
    rs;
  Buffer.contents b

type weight = [ `Seconds | `Minor_words | `Major_words ]

let weight_of_string = function
  | "seconds" -> Some `Seconds
  | "minor-words" -> Some `Minor_words
  | "major-words" -> Some `Major_words
  | _ -> None

let to_folded ?(weight = `Seconds) t =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      let v =
        match weight with
        | `Seconds -> int_of_float (r.r_seconds *. 1e6)
        | `Minor_words -> int_of_float r.r_minor_words
        | `Major_words -> int_of_float r.r_major_words
      in
      if v > 0 then begin
        Buffer.add_string b
          (String.concat ";" (String.split_on_char '/' r.r_path));
        Buffer.add_char b ' ';
        Buffer.add_string b (string_of_int v);
        Buffer.add_char b '\n'
      end)
    (rollups t);
  Buffer.contents b

let metrics ?into t =
  let m = match into with Some m -> m | None -> Metrics.create () in
  let tot = totals t in
  Metrics.set (Metrics.gauge m "res.seconds") tot.t_seconds;
  Metrics.set (Metrics.gauge m "res.minor_words") tot.t_minor_words;
  Metrics.set (Metrics.gauge m "res.promoted_words") tot.t_promoted_words;
  Metrics.set (Metrics.gauge m "res.major_words") tot.t_major_words;
  Metrics.set (Metrics.gauge m "res.peak_heap_mb") (peak_heap_mb tot);
  Metrics.incr
    ~by:tot.t_major_collections
    (Metrics.counter m "res.major_collections");
  m

let heartbeat t phase =
  let tot = totals t in
  Printf.eprintf "[resource] %-14s +%7.1fs peak_heap=%.1fMB minor=%.1fMw\n%!"
    phase tot.t_seconds (peak_heap_mb tot) (tot.t_minor_words /. 1e6)

(* Chrome trace-event (catapult) export. One JSON object per span
   transition: B/E duration pairs, microsecond timestamps, event name =
   last path segment so the viewer nests stacks, full path in args. *)

type chrome_event = {
  ce_path : string;
  ce_phase : [ `B | `E ];
  ce_ts : float;
}

let chrome_events t =
  List.init t.ev_len (fun i ->
      {
        ce_path = t.ev_acc.(i).a_path;
        ce_phase = (if Bytes.get t.ev_phase i = 'B' then `B else `E);
        ce_ts = t.ev_ts.(i);
      })

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let last_segment path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"path\":\"%s\"}}"
           (json_escape (last_segment ev.ce_path))
           (match ev.ce_phase with `B -> "B" | `E -> "E")
           ev.ce_ts
           (json_escape ev.ce_path)))
    (chrome_events t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* minimal parser for the exporter above (round-trip testing); scans
   one event object per line, tolerating the wrapper lines *)

let find_sub line pat =
  let plen = String.length pat and llen = String.length line in
  let rec go i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else go (i + 1)
  in
  go 0

let parse_string_at line i =
  let b = Buffer.create 16 in
  let j = ref i and closed = ref false in
  while (not !closed) && !j < String.length line do
    (match line.[!j] with
    | '\\' when !j + 1 < String.length line ->
        incr j;
        Buffer.add_char b
          (match line.[!j] with 'n' -> '\n' | 't' -> '\t' | c -> c)
    | '"' -> closed := true
    | c -> Buffer.add_char b c);
    incr j
  done;
  if !closed then Some (Buffer.contents b) else None

let chrome_of_json text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match find_sub line "\"ph\":\"" with
        | None -> go acc rest  (* wrapper line, no event object *)
        | Some i -> (
            let phase =
              if i < String.length line then
                match line.[i] with
                | 'B' -> Some `B
                | 'E' -> Some `E
                | _ -> None
              else None
            in
            match phase with
            | None -> Error ("bad ph in: " ^ line)
            | Some ce_phase -> (
                match
                  (find_sub line "\"ts\":", find_sub line "\"path\":\"")
                with
                | None, _ -> Error ("missing ts in: " ^ line)
                | _, None -> Error ("missing path in: " ^ line)
                | Some ti, Some pi -> (
                    let j = ref ti in
                    while
                      !j < String.length line
                      && (line.[!j] = '-' || line.[!j] = '.'
                        || (line.[!j] >= '0' && line.[!j] <= '9'))
                    do
                      incr j
                    done;
                    match
                      ( float_of_string_opt (String.sub line ti (!j - ti)),
                        parse_string_at line pi )
                    with
                    | None, _ -> Error ("bad ts in: " ^ line)
                    | _, None -> Error ("bad path in: " ^ line)
                    | Some ce_ts, Some ce_path ->
                        go ({ ce_path; ce_phase; ce_ts } :: acc) rest))))
  in
  go [] lines
