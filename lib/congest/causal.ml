(* Happens-before replay over a recorded trace. Like Span.rollups this
   is a pure consumer of the event stream: two Trace.iter passes, no
   writes into the sink.

   The forward pass exploits the simulator's event order (deliveries of
   a round precede its sends): when a send is seen, the best chain
   value delivered to its source so far is exactly the best over all
   causally earlier deliveries. Sends are matched to deliveries per
   directed edge in FIFO order, which is exact fault-free (at most one
   message per edge per round, delivery one round after the send) and a
   best-effort approximation under adversaries.

   Round indices are our own cumulative Round_start counter, not the
   event's round field: a sink can hold several simulator runs back to
   back (the distributed transforms re-enter Sim.simulate), and the
   cumulative index keeps the happens-before order monotone across
   them. *)

type hop = {
  src : int;
  dst : int;
  sent_round : int;
  delivered_round : int;
  bits : int;
}

type t = {
  nodes : int;
  sim_rounds : int;
  engine_rounds : int;
  rounds : int;
  chain_rounds : int;
  critical_rounds : int;
  slack_rounds : int;
  chain : hop list;
  node_depth : int array;
  node_active : bool array;
  round_critical : bool array;
  exact : bool;
}

(* one in-flight or delivered message during the replay *)
type cell = {
  c_src : int;
  c_dst : int;
  c_sent : int;
  c_bits : int;
  c_pred : int;  (* cell index of the delivery this send depends on; -1 *)
  c_base : int;  (* chain value at the sender when sent *)
  mutable c_delivered : int;  (* -1 until matched *)
  mutable c_value : int;
}

let unspanned = "(unspanned)"

let analyze sink =
  (* pass 1: node-id range, engine rounds, and exactness markers *)
  let max_node = ref (-1) in
  let exact = ref (Trace.truncated sink = 0) in
  let sim_rounds = ref 0 in
  let engine_rounds = ref 0 in
  let see v = if v > !max_node then max_node := v in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Round_start _ -> incr sim_rounds
      | Trace.Message_sent { src; dst; _ }
      | Trace.Message_delivered { src; dst; _ } ->
          see src;
          see dst
      | Trace.Message_dropped { src; dst; _ }
      | Trace.Message_duplicated { src; dst; _ }
      | Trace.Message_delayed { src; dst; _ } ->
          see src;
          see dst;
          exact := false
      | Trace.Node_halted { node; _ } -> see node
      | Trace.Node_crashed { node; _ } ->
          see node;
          exact := false
      | Trace.Bandwidth_high_water { node; _ } -> see node
      | Trace.Cost_charged { rounds; _ } ->
          engine_rounds := !engine_rounds + rounds
      | Trace.Round_end _ | Trace.Span_enter _ | Trace.Span_exit _ -> ())
    sink;
  let nodes = !max_node + 1 in
  let sim_rounds = !sim_rounds and engine_rounds = !engine_rounds in

  (* pass 2: forward happens-before replay *)
  let node_depth = Array.make nodes 0 in
  let node_pred = Array.make nodes (-1) in
  let node_active = Array.make nodes false in
  let cells = ref [||] in
  let n_cells = ref 0 in
  let push c =
    if !n_cells = Array.length !cells then begin
      let grown = Array.make (max 256 (2 * !n_cells)) c in
      Array.blit !cells 0 grown 0 !n_cells;
      cells := grown
    end;
    !cells.(!n_cells) <- c;
    incr n_cells;
    !n_cells - 1
  in
  (* per directed edge, indices of sends awaiting delivery, FIFO *)
  let in_flight : (int, int Queue.t) Hashtbl.t = Hashtbl.create 256 in
  let edge_key src dst = (src * max nodes 1) + dst in
  let cur_round = ref 0 in
  let best_value = ref 0 and best_idx = ref (-1) in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Round_start _ -> incr cur_round
      | Trace.Message_sent { src; dst; bits; _ } ->
          node_active.(src) <- true;
          node_active.(dst) <- true;
          let idx =
            push
              {
                c_src = src;
                c_dst = dst;
                c_sent = !cur_round;
                c_bits = bits;
                c_pred = node_pred.(src);
                c_base = node_depth.(src);
                c_delivered = -1;
                c_value = 0;
              }
          in
          let key = edge_key src dst in
          let q =
            match Hashtbl.find_opt in_flight key with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.add in_flight key q;
                q
          in
          Queue.push idx q
      | Trace.Message_delivered { src; dst; _ } -> (
          node_active.(src) <- true;
          node_active.(dst) <- true;
          match Hashtbl.find_opt in_flight (edge_key src dst) with
          | None -> exact := false  (* delivery without a matching send *)
          | Some q when Queue.is_empty q -> exact := false
          | Some q ->
              let idx = Queue.pop q in
              let c = !cells.(idx) in
              c.c_delivered <- !cur_round;
              c.c_value <- c.c_base + max 0 (!cur_round - c.c_sent);
              if c.c_value > node_depth.(dst) then begin
                node_depth.(dst) <- c.c_value;
                node_pred.(dst) <- idx
              end;
              if c.c_value > !best_value then begin
                best_value := c.c_value;
                best_idx := idx
              end)
      | _ -> ())
    sink;

  (* witness chain, causal order, by walking the pred pointers back *)
  let chain = ref [] in
  let idx = ref !best_idx in
  while !idx >= 0 do
    let c = !cells.(!idx) in
    chain :=
      {
        src = c.c_src;
        dst = c.c_dst;
        sent_round = c.c_sent;
        delivered_round = c.c_delivered;
        bits = c.c_bits;
      }
      :: !chain;
    idx := c.c_pred
  done;
  let chain = !chain in
  let round_critical = Array.make (sim_rounds + 1) false in
  List.iter
    (fun h ->
      for r = h.sent_round + 1 to min h.delivered_round sim_rounds do
        round_critical.(r) <- true
      done)
    chain;
  let chain_rounds = !best_value in
  let rounds = sim_rounds + engine_rounds in
  let critical_rounds = engine_rounds + chain_rounds in
  {
    nodes;
    sim_rounds;
    engine_rounds;
    rounds;
    chain_rounds;
    critical_rounds;
    slack_rounds = rounds - critical_rounds;
    chain;
    node_depth;
    node_active;
    round_critical;
    exact = !exact;
  }

type span_slack = { span_path : string; critical : int; slack : int }

type span_acc = { mutable s_critical : int; mutable s_slack : int }

let span_breakdown sink t =
  let tbl : (string, span_acc) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let get path =
    match Hashtbl.find_opt tbl path with
    | Some a -> a
    | None ->
        let a = { s_critical = 0; s_slack = 0 } in
        Hashtbl.add tbl path a;
        order := path :: !order;
        a
  in
  let stack = ref [] in
  let innermost () = match !stack with p :: _ -> p | [] -> unspanned in
  let cur_round = ref 0 in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Span_enter { path } -> stack := path :: !stack
      | Trace.Span_exit _ -> (
          match !stack with [] -> () | _ :: rest -> stack := rest)
      | Trace.Round_start _ ->
          incr cur_round;
          let a = get (innermost ()) in
          let critical =
            !cur_round < Array.length t.round_critical
            && t.round_critical.(!cur_round)
          in
          if critical then a.s_critical <- a.s_critical + 1
          else a.s_slack <- a.s_slack + 1
      | Trace.Cost_charged { rounds; _ } ->
          (* the engine is a single causal thread: all charged rounds
             are on the critical path *)
          let a = get (innermost ()) in
          a.s_critical <- a.s_critical + rounds
      | _ -> ())
    sink;
  List.rev_map
    (fun path ->
      let a = Hashtbl.find tbl path in
      { span_path = path; critical = a.s_critical; slack = a.s_slack })
    !order

let metrics ?into t =
  let m = match into with Some m -> m | None -> Metrics.create () in
  let c name v = Metrics.incr ~by:v (Metrics.counter m name) in
  c "causal_rounds" t.rounds;
  c "causal_chain_rounds" t.chain_rounds;
  c "causal_critical_rounds" t.critical_rounds;
  c "causal_slack_rounds" t.slack_rounds;
  c "causal_chain_hops" (List.length t.chain);
  let h = Metrics.histogram m "causal_node_slack" in
  Array.iteri
    (fun v active ->
      if active then Metrics.observe h (t.chain_rounds - t.node_depth.(v)))
    t.node_active;
  m

let pp ppf t =
  Format.fprintf ppf
    "causal: %d rounds (%d sim + %d engine), critical %d (chain %d over %d \
     hops), slack %d%s"
    t.rounds t.sim_rounds t.engine_rounds t.critical_rounds t.chain_rounds
    (List.length t.chain) t.slack_rounds
    (if t.exact then "" else " (approximate: faults or truncation seen)")
