(** Deterministic, seeded fault-injection adversaries for {!Sim}.

    An adversary sits between a node's [send] and the destination's inbox
    and may, per message: drop it (iid rate or scheduled bursts on chosen
    edges), duplicate it (the extra copy optionally delayed, modelling
    retransmitting hardware), or delay it by a bounded number of rounds
    (reordering within the window). Independently, it may {e crash-stop} a
    chosen set of nodes at chosen rounds: from its crash round onward a
    node executes nothing, sends nothing, and receives nothing.

    All randomness is drawn from {!Dsgraph.Rng} seeded by [spec.seed], and
    decisions are consumed in the simulator's deterministic message order,
    so an entire fault schedule is replayable from its spec — rerunning
    the same program on the same graph under [create spec] injects exactly
    the same faults. *)

type burst = {
  from_round : int;  (** first affected round (1-based, inclusive) *)
  until_round : int;  (** last affected round (inclusive) *)
  on_edges : (int * int) list option;
      (** edges (either orientation) whose messages are dropped during the
          burst; [None] means every edge — a network-wide blackout *)
}

type spec = {
  seed : int;
  drop : float;  (** iid per-message drop probability in [0, 1] *)
  duplicate : float;  (** iid per-message duplication probability *)
  delay : float;  (** iid per-message delay probability *)
  delay_window : int;
      (** maximum extra rounds a delayed message (or duplicate copy) may
          take; delays are uniform on [1 .. delay_window] *)
  bursts : burst list;  (** adversarial burst schedules, checked first *)
  crashes : (int * int) list;
      (** [(node, round)]: node crash-stops at the {e start} of [round] *)
  revives : (int * int) list;
      (** [(node, round)]: a previously crashed node resumes at the
          {e start} of [round] — a {e churn} adversary. Its program state
          is whatever it held when it crashed (crash-recovery, not
          reboot); messages sent to it while down are lost, and
          neighbors that already declared it dead at the transport
          layer ignore it. Per node, crash and revive rounds must
          strictly interleave ([c1 < r1 < c2 < r2 < ...]); a final
          crash without a matching revive is permanent. *)
}

val spec :
  ?seed:int ->
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?delay_window:int ->
  ?bursts:burst list ->
  ?crashes:(int * int) list ->
  ?revives:(int * int) list ->
  unit ->
  spec
(** Smart constructor; everything defaults to benign (no faults, seed 0). *)

type t
(** An instantiated adversary: spec + RNG stream + fault counters.
    Single-use — create a fresh one per {!Sim.simulate} to replay a schedule. *)

val create : spec -> t
(** @raise Invalid_argument on rates outside [0, 1], negative windows,
    crash rounds < 1, burst windows with [until_round < from_round],
    or a churn schedule whose crash/revive rounds do not strictly
    interleave per node (a revive without a preceding crash, a revive
    at or before its crash, or a re-crash before the pending revive). *)

val spec_of : t -> spec

(** {2 Interface consumed by {!Sim} — exposed for tests and custom
    harnesses} *)

type fate =
  | Deliver
  | Drop
  | Duplicate of int
      (** deliver now {e and} deliver an extra copy after this many extra
          rounds (0 = both copies in the same inbox) *)
  | Delay of int  (** deliver after this many extra rounds ([>= 1]) *)

val fate : t -> round:int -> src:int -> dst:int -> fate
(** Decide the fate of one message sent in [round] over edge
    [(src, dst)]; advances the RNG stream and the counters. *)

val is_crashed : t -> round:int -> int -> bool
(** Whether a node is crash-stopped at (the start of) [round]; with a
    churn schedule this is interval membership, so a revived node
    reports [false] again until its next crash. *)

val crashed_nodes : t -> upto_round:int -> int list
(** Sorted list of nodes whose {e first} crash round is
    [<= upto_round], whether or not they were later revived. *)

val down_nodes : t -> round:int -> int list
(** Sorted list of nodes crash-stopped {e at} [round] — the churn-aware
    complement of the survivor set at that instant. *)

val count_drop : t -> unit
(** Record a message lost for a non-[fate] reason (sent to an
    already-crashed destination). *)

val dropped : t -> int
val duplicated : t -> int
val delayed : t -> int

val pp : Format.formatter -> t -> unit
