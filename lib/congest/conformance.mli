(** Dynamic CONGEST model-conformance verifier.

    The paper's headline claims (Theorem 2.1, Tables 1–2) are statements
    about the CONGEST model: [O(log n)]-bit messages, at most one message
    per incident edge per round, state transitions that depend only on the
    local inbox. This module certifies that the node programs and
    engine-level runs in this repository actually adhere to that model,
    instead of quietly cheating (e.g. closing over the global graph and
    reading remote state).

    Five invariants are checked:

    - {b (a) replay determinism} — two runs of the same configuration
      produce byte-identical {!Trace} streams ({!verify_run},
      {!verify_program});
    - {b (b) bandwidth cross-check} — per-edge bits summed over the trace
      equal {!Metrics.of_trace}'s aggregates, the simulator's own
      {!Sim.stats}, and (for engine-level runs) the {!Cost} meter totals,
      {e exactly};
    - {b (c) edge discipline} — at most one program message per incident
      edge per round, addressed to neighbors only ({!instrument});
    - {b (d) halt monotonicity} — a node that voted to halt sends nothing
      and stays halted unless re-awakened by a delivery ({!instrument});
    - {b (e) inbox-order robustness} — for programs registered as
      order-invariant, re-running a round with a permuted inbox yields the
      same (state, outbox set, halt vote) ({!instrument}).

    (a)–(b) apply to any traced run, including the step-granular engine
    algorithms; (c)–(e) wrap a {!Sim.program} and therefore apply to the
    genuinely distributed executions. The order-invariance re-run requires
    the wrapped [round] function to be pure in its [state] argument —
    programs with mutable per-node state (e.g.
    [Weakdiam.Distributed]) must not be registered order-invariant. *)

type violation = {
  invariant : string;  (** ["edge-discipline"], ["halt-monotonic"], ... *)
  node : int;
  step : int;  (** per-node [round] invocation count, 1-based *)
  detail : string;
}

type check = {
  name : string;
  passed : bool;
  detail : string;  (** the compared quantities, or why a check was skipped *)
}

type report = {
  label : string;
  checks : check list;  (** whole-run checks: determinism, exact sums *)
  violations : violation list;  (** per-round violations from {!instrument} *)
  violations_dropped : int;  (** recorded beyond the recorder's limit *)
}

val ok : report -> bool
(** Every check passed and no violation was recorded. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
(** One JSON object (no trailing newline), machine-readable companion to
    [lint_results.json]. *)

(** {2 Per-round instrumentation — invariants (c), (d), (e)} *)

type recorder
(** Accumulates violations across the rounds of a run. *)

val recorder : ?limit:int -> unit -> recorder
(** At most [limit] (default 200) violations are retained; the rest are
    counted in {!dropped}. *)

val recorded : recorder -> violation list
(** Violations in the order they occurred. *)

val dropped : recorder -> int

val clear : recorder -> unit

val instrument :
  ?order_invariant:bool ->
  recorder ->
  Dsgraph.Graph.t ->
  ('st, 'msg) Sim.program ->
  ('st, 'msg) Sim.program
(** Wraps a program so that every [round] invocation is checked for
    invariants (c) and (d), and — when [order_invariant] (default
    [false]) — (e): the inner [round] is re-run on the reversed inbox and
    the resulting state, outbox {e set}, and halt vote must coincide.
    Comparison uses structural equality; states containing closures are
    compared only by their halt/outbox behavior. The wrapper adds no
    messages and never alters the program's observable behavior. *)

type instrumentor = {
  instrument : 'st 'msg. ('st, 'msg) Sim.program -> ('st, 'msg) Sim.program;
}
(** A polymorphic wrapping hook, for algorithms that build their node
    program internally (e.g. [Ls_distributed.attempt ~conformance]). *)

val instrumentor :
  ?order_invariant:bool -> recorder -> Dsgraph.Graph.t -> instrumentor
(** {!instrument} with the recorder and graph pre-applied. *)

(** {2 Whole-run verification — invariants (a), (b)} *)

type totals = { rounds : int; messages : int; max_bits : int }

type expectation =
  | Cost_totals of totals
      (** the final {!Cost} meter: must equal the [Cost_charged] sums *)
  | Sim_totals of totals
      (** a {!Sim.stats}: must equal the [Message_sent]/[Round_start]
          sums of the trace *)

val consistency_checks :
  ?expect:expectation list -> Trace.sink -> check list
(** Invariant (b) on one recorded run: folds the event stream into
    per-edge bit sums and message/round/cost totals, and asserts exact
    agreement with {!Metrics.of_trace} and with every [expect]ation.
    When the sink overflowed its capacity the exact-sum checks are
    reported as skipped and a failing [capacity] check is emitted. *)

val verify_run :
  ?label:string ->
  ?capacity:int ->
  ?recorder:recorder ->
  run:(Trace.sink -> expectation list) ->
  unit ->
  report
(** Runs [run] twice, each time against a fresh sink. [run] must rebuild
    {e all} of its state (graph, RNG, adversary from a {!Fault.spec}) so
    the two executions are replays of one configuration; it returns the
    independently-accounted totals of that execution. Checks: (a) the two
    JSONL-serialized traces are byte-identical and the returned
    expectations coincide; (b) {!consistency_checks} on the first run.
    When a [recorder] is given (shared with an {!instrumentor} inside
    [run]) it is cleared between the runs, both runs must record the same
    violations, and the report carries them. [capacity] bounds each sink
    (the {!Trace.sink} default); raise it for chatty programs, since an
    overflowing sink yields a failing [capacity] check. *)

val verify_program :
  ?label:string ->
  ?capacity:int ->
  ?order_invariant:bool ->
  ?max_rounds:int ->
  ?bandwidth:int ->
  ?adversary:Fault.spec ->
  bits:('msg -> int) ->
  Dsgraph.Graph.t ->
  ('st, 'msg) Sim.program ->
  report
(** The full battery (a)–(e) for one node program: {!instrument}s it,
    runs it twice under {!Sim.simulate} (a fresh {!Fault.create} of
    [adversary] per run, so fault schedules replay), and cross-checks the
    traces against the returned {!Sim.stats}. *)
