(** Faithful synchronous CONGEST simulator.

    Nodes run the same program; per round each node reads its inbox (one
    message per neighbor at most on a fault-free fabric; an adversary may
    duplicate or delay deliveries), updates its state, and emits at most
    one message per incident edge. Message sizes are measured by a
    user-supplied [bits] function and checked against the bandwidth;
    exceeding it raises {!Bandwidth_exceeded} — this is how the ABCP96
    baseline's unbounded messages are surfaced.

    The fabric is perfectly reliable unless an adversary ({!Fault.t}) is
    interposed via the run {!Config}, in which case messages may be
    dropped, duplicated, or delayed, and nodes may crash-stop; every
    injected fault is counted in {!stats.faults}. Programs that must
    survive such an adversary should be wrapped with
    {!Reliable.simulate}.

    All run options live in one {!Config.t} record consumed by
    {!simulate}; build one with {!Config.default} and the [with_*]
    setters (or a record update). *)

exception
  Bandwidth_exceeded of {
    node : int;
    dst : int;  (** destination neighbor of the offending message *)
    round : int;  (** 1-based round in which it was sent *)
    bits : int;
    bandwidth : int;
  }

exception Incomplete of { max_rounds : int; running : int }
(** Raised by [`Raise] on incomplete runs: [max_rounds] elapsed with
    [running] nodes still not halted (or messages still in flight). *)

type ('st, 'msg) program = {
  init : node:int -> neighbors:int array -> 'st;
      (** Initial state; a node knows its own identifier and its neighbors'
          (standard after one round of identifier exchange). *)
  round :
    node:int ->
    state:'st ->
    inbox:(int * 'msg) list ->
    'st * (int * 'msg) list * bool;
      (** [round ~node ~state ~inbox] returns the new state, outgoing
          [(neighbor, message)] pairs, and whether the node votes to halt.
          Sending twice to the same neighbor in one round is rejected. *)
}

type fault_stats = {
  dropped : int;  (** messages lost (iid, burst, or sent to a crashed node) *)
  duplicated : int;  (** extra copies injected *)
  delayed : int;  (** deliveries postponed past the next round *)
  crashed : int list;  (** nodes crash-stopped during the run, sorted *)
}

val no_faults : fault_stats

type stats = {
  rounds_used : int;
  total_messages : int;  (** program-sent messages (injected copies excluded) *)
  max_bits_seen : int;
  all_halted : bool;  (** false when stopped by [max_rounds] *)
  faults : fault_stats;  (** {!no_faults} when no adversary was given *)
}

(** Run configuration: every knob of a simulation in one value, so entry
    points take [?config] instead of a growing pile of optional
    arguments, and new knobs (like tracing) do not ripple through every
    caller's signature. *)
module Config : sig
  type t = {
    max_rounds : int option;  (** [None] means [4 * n + 16] *)
    bandwidth : int option;  (** [None] means {!Bits.bandwidth} *)
    adversary : Fault.t option;
    on_incomplete : [ `Ignore | `Warn | `Raise ];
    trace : Trace.sink option;  (** event sink; [None] = tracing off *)
    transport_window : int option;
        (** overrides {!Reliable.config}'s send window when set; ignored
            by raw (non-reliable) simulations *)
    transport_rto : int option;
        (** overrides {!Reliable.config}'s base retransmission timeout *)
    liveness_timeout : int option;
        (** overrides {!Reliable.config}'s crash-detection timeout: the
            silence threshold (in outer rounds) after which an awaited
            neighbor is declared dead *)
  }

  val default : t
  (** No adversary, no trace, defaults for rounds/bandwidth, [`Warn],
      no transport overrides (so reliable runs keep their
      byte-identical default behavior). *)

  val with_max_rounds : int -> t -> t
  val with_bandwidth : int -> t -> t
  val with_adversary : Fault.t -> t -> t
  val with_on_incomplete : [ `Ignore | `Warn | `Raise ] -> t -> t
  val with_transport_window : int -> t -> t
  val with_transport_rto : int -> t -> t
  val with_liveness_timeout : int -> t -> t

  val with_trace : Trace.sink -> t -> t
  (** Setters take the configuration last for pipeline style:
      [Config.(default |> with_max_rounds 64 |> with_trace sink)]. *)
end

val log_src : Logs.src
(** Logs source ["congest.sim"] used by [`Warn] on incomplete runs. *)

val simulate :
  ?config:Config.t ->
  bits:('msg -> int) ->
  Dsgraph.Graph.t ->
  ('st, 'msg) program ->
  'st array * stats
(** Runs until every node votes to halt {e and} no message is in flight,
    or until [config.max_rounds] (default [4 * n + 16]).
    [config.bandwidth] defaults to {!Bits.bandwidth}. Returns final
    states (a crashed node's state is frozen at its crash round).

    When the run is cut off by [max_rounds] with nodes still running or
    messages still in flight, [config.on_incomplete] decides what
    happens: [`Warn] (default) logs a warning on {!log_src} —
    easy-to-miss silent truncation was a real bug source — [`Raise]
    raises {!Incomplete}, and [`Ignore] stays silent for callers that
    use the cutoff deliberately (Las Vegas retries, adversarial-fault
    sweeps).

    When [config.trace] holds a sink, every round boundary, message
    event (sent / delivered / dropped / duplicated / delayed), halt and
    crash transition, and bandwidth high-water mark is recorded in it;
    with [trace = None] no event is allocated at all. *)
