(** Faithful synchronous CONGEST simulator.

    Nodes run the same program; per round each node reads its inbox (one
    message per neighbor at most), updates its state, and emits at most one
    message per incident edge. Message sizes are measured by a user-supplied
    [bits] function and checked against the bandwidth; exceeding it raises
    {!Bandwidth_exceeded} — this is how the ABCP96 baseline's unbounded
    messages are surfaced. *)

exception Bandwidth_exceeded of { node : int; bits : int; bandwidth : int }

type ('st, 'msg) program = {
  init : node:int -> neighbors:int array -> 'st;
      (** Initial state; a node knows its own identifier and its neighbors'
          (standard after one round of identifier exchange). *)
  round :
    node:int ->
    state:'st ->
    inbox:(int * 'msg) list ->
    'st * (int * 'msg) list * bool;
      (** [round ~node ~state ~inbox] returns the new state, outgoing
          [(neighbor, message)] pairs, and whether the node votes to halt.
          Sending twice to the same neighbor in one round is rejected. *)
}

type stats = {
  rounds_used : int;
  total_messages : int;
  max_bits_seen : int;
  all_halted : bool;  (** false when stopped by [max_rounds] *)
}

val run :
  ?max_rounds:int ->
  ?bandwidth:int ->
  bits:('msg -> int) ->
  Dsgraph.Graph.t ->
  ('st, 'msg) program ->
  'st array * stats
(** Runs until every node votes to halt {e and} no message is in flight, or
    until [max_rounds] (default [4 * n + 16]). [bandwidth] defaults to
    {!Bits.bandwidth}. Returns final states. *)
