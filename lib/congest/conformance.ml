(* no [open Dsgraph]: it would shadow this library's [Metrics] with
   [Dsgraph.Metrics] *)
module Graph = Dsgraph.Graph

type violation = { invariant : string; node : int; step : int; detail : string }
type check = { name : string; passed : bool; detail : string }

type report = {
  label : string;
  checks : check list;
  violations : violation list;
  violations_dropped : int;
}

let ok r = r.violations = [] && List.for_all (fun c -> c.passed) r.checks

let pp_violation fmt v =
  Format.fprintf fmt "%s: node %d step %d: %s" v.invariant v.node v.step
    v.detail

let pp_report fmt r =
  Format.fprintf fmt "%s: %s@." r.label (if ok r then "ok" else "FAIL");
  List.iter
    (fun c ->
      Format.fprintf fmt "  [%s] %-20s %s@."
        (if c.passed then "pass" else "FAIL")
        c.name c.detail)
    r.checks;
  List.iter (fun v -> Format.fprintf fmt "  [FAIL] %a@." pp_violation v) r.violations;
  if r.violations_dropped > 0 then
    Format.fprintf fmt "  (%d more violations dropped)@." r.violations_dropped

(* minimal JSON string escaping: the strings we emit are ASCII *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"label\":\"%s\",\"ok\":%b,\"checks\":["
       (json_escape r.label) (ok r));
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"passed\":%b,\"detail\":\"%s\"}"
           (json_escape c.name) c.passed (json_escape c.detail)))
    r.checks;
  Buffer.add_string buf "],\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"invariant\":\"%s\",\"node\":%d,\"step\":%d,\"detail\":\"%s\"}"
           (json_escape v.invariant) v.node v.step (json_escape v.detail)))
    r.violations;
  Buffer.add_string buf
    (Printf.sprintf "],\"violations_dropped\":%d}" r.violations_dropped);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Recorder and per-round instrumentation: invariants (c), (d), (e)    *)
(* ------------------------------------------------------------------ *)

type recorder = {
  mutable rev_violations : violation list;
  mutable count : int;
  limit : int;
  mutable n_dropped : int;
}

let recorder ?(limit = 200) () =
  { rev_violations = []; count = 0; limit; n_dropped = 0 }

let recorded r = List.rev r.rev_violations
let dropped r = r.n_dropped

let clear r =
  r.rev_violations <- [];
  r.count <- 0;
  r.n_dropped <- 0

let record r ~invariant ~node ~step detail =
  if r.count >= r.limit then r.n_dropped <- r.n_dropped + 1
  else begin
    r.rev_violations <- { invariant; node; step; detail } :: r.rev_violations;
    r.count <- r.count + 1
  end

(* Structural comparison that tolerates functional values: a state that
   contains a closure cannot be compared, so treat it as equal and rely on
   the outbox/halt comparison instead of failing the whole run. *)
let equal_or_incomparable a b =
  match compare a b = 0 with x -> x | exception Invalid_argument _ -> true

let instrument ?(order_invariant = false) rec_ g inner =
  let n = Graph.n g in
  let voted_halt =
    Array.make n false
    [@@domain_unsafe
      "per-node halt flags captured by the instrumented program's \
       closures; indexed by node, so a domain fan-out must shard or \
       atomize them"]
  in
  let steps =
    Array.make n 0
    [@@domain_unsafe
      "per-node step counters captured by the instrumented program's \
       closures; indexed by node, racy only across nodes"]
  in
  (* duplicate-destination detection without per-round allocation:
     [seen.(dst) = gen] marks dst as already hit in the current call *)
  let seen =
    Array.make n 0
    [@@domain_unsafe
      "duplicate-destination scratch shared by every node's round \
       closure; must become per-domain before parallel delivery"]
  in
  let gen =
    ref 0
    [@@domain_unsafe
      "generation counter paired with [seen]; same sharding constraint"]
  in
  let init ~node ~neighbors =
    voted_halt.(node) <- false;
    steps.(node) <- 0;
    inner.Sim.init ~node ~neighbors
  in
  let round ~node ~state ~inbox =
    steps.(node) <- steps.(node) + 1;
    let step = steps.(node) in
    let state', out, halt = inner.Sim.round ~node ~state ~inbox in
    (* (c) one message per incident edge, neighbors only *)
    incr gen;
    List.iter
      (fun (dst, _) ->
        if dst < 0 || dst >= n || not (Graph.is_edge g node dst) then
          record rec_ ~invariant:"edge-discipline" ~node ~step
            (Printf.sprintf "sent to non-neighbor %d" dst)
        else if seen.(dst) = !gen then
          record rec_ ~invariant:"edge-discipline" ~node ~step
            (Printf.sprintf "sent twice to neighbor %d in one round" dst)
        else seen.(dst) <- !gen)
      out;
    (* (d) halt monotonicity: no spontaneous sends or wake-ups *)
    if voted_halt.(node) && inbox = [] then begin
      if out <> [] then
        record rec_ ~invariant:"halt-monotonic" ~node ~step
          (Printf.sprintf "halted node sent %d message(s) with empty inbox"
             (List.length out));
      if not halt then
        record rec_ ~invariant:"halt-monotonic" ~node ~step
          "halted node un-halted without a delivery"
    end;
    (* (e) inbox-order robustness, for registered programs only *)
    (if order_invariant && List.length inbox > 1 then
       let state2, out2, halt2 =
         inner.Sim.round ~node ~state ~inbox:(List.rev inbox)
       in
       if halt2 <> halt then
         record rec_ ~invariant:"order-invariant" ~node ~step
           "halt vote depends on inbox order"
       else if
         not
           (equal_or_incomparable
              (List.sort compare out)
              (List.sort compare out2))
       then
         record rec_ ~invariant:"order-invariant" ~node ~step
           "outbox set depends on inbox order"
       else if not (equal_or_incomparable state' state2) then
         record rec_ ~invariant:"order-invariant" ~node ~step
           "state depends on inbox order");
    voted_halt.(node) <- halt;
    (state', out, halt)
  in
  { Sim.init; round }

type instrumentor = {
  instrument : 'st 'msg. ('st, 'msg) Sim.program -> ('st, 'msg) Sim.program;
}

let instrumentor ?order_invariant rec_ g =
  { instrument = (fun p -> instrument ?order_invariant rec_ g p) }

(* ------------------------------------------------------------------ *)
(* Whole-run verification: invariants (a), (b)                         *)
(* ------------------------------------------------------------------ *)

type totals = { rounds : int; messages : int; max_bits : int }
type expectation = Cost_totals of totals | Sim_totals of totals

type fold = {
  mutable sim_rounds : int;
  mutable sim_messages : int;
  mutable sim_bits : int;
  mutable sim_max_bits : int;
  mutable cost_rounds : int;
  mutable cost_messages : int;
  mutable cost_max_bits : int;
  per_edge : (int * int, int) Hashtbl.t;  (* directed (src, dst) -> bits *)
}

let fold_sink sink =
  let f =
    {
      sim_rounds = 0;
      sim_messages = 0;
      sim_bits = 0;
      sim_max_bits = 0;
      cost_rounds = 0;
      cost_messages = 0;
      cost_max_bits = 0;
      per_edge = Hashtbl.create 64;
    }
  in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Round_start _ -> f.sim_rounds <- f.sim_rounds + 1
      | Trace.Message_sent { src; dst; bits; _ } ->
          f.sim_messages <- f.sim_messages + 1;
          f.sim_bits <- f.sim_bits + bits;
          if bits > f.sim_max_bits then f.sim_max_bits <- bits;
          let key = (src, dst) in
          let prev =
            match Hashtbl.find_opt f.per_edge key with
            | Some b -> b
            | None -> 0
          in
          Hashtbl.replace f.per_edge key (prev + bits)
      | Trace.Cost_charged { rounds; messages; max_bits; _ } ->
          f.cost_rounds <- f.cost_rounds + rounds;
          f.cost_messages <- f.cost_messages + messages;
          if max_bits > f.cost_max_bits then f.cost_max_bits <- max_bits
      | _ -> ())
    sink;
  f

let check_eq name pairs =
  let mismatches =
    List.filter (fun (_, a, b) -> a <> b) pairs
  in
  let detail =
    String.concat ", "
      (List.map (fun (what, a, b) -> Printf.sprintf "%s %d=%d" what a b) pairs)
  in
  { name; passed = mismatches = []; detail }

let consistency_checks ?(expect = []) sink =
  if Trace.truncated sink > 0 then
    [
      {
        name = "capacity";
        passed = false;
        detail =
          Printf.sprintf
            "%d event(s) dropped at sink capacity; exact-sum checks skipped"
            (Trace.truncated sink);
      };
    ]
  else begin
    let f = fold_sink sink in
    let m = Metrics.of_trace sink in
    let c name = Metrics.counter_value (Metrics.counter m name) in
    let bits_hist = Metrics.histogram m "bits_per_message" in
    let per_edge_total = Hashtbl.fold (fun _ b acc -> acc + b) f.per_edge 0 in
    let capacity =
      { name = "capacity"; passed = true; detail = "no events dropped" }
    in
    let bandwidth_sum =
      check_eq "bandwidth-sum"
        [
          ("per-edge=trace", per_edge_total, f.sim_bits);
          ("trace=metrics", f.sim_bits, Metrics.hist_sum bits_hist);
        ]
    in
    let message_count =
      check_eq "message-count"
        [
          ("trace=metrics", f.sim_messages, c "messages_sent");
          ("trace=hist", f.sim_messages, Metrics.hist_count bits_hist);
        ]
    in
    let rounds =
      check_eq "round-count" [ ("trace=metrics", f.sim_rounds, c "rounds") ]
    in
    let max_bits =
      check_eq "max-bits"
        [
          ( "trace=metrics",
            f.sim_max_bits,
            int_of_float
              (Metrics.gauge_max (Metrics.gauge m "max_message_bits")) );
        ]
    in
    let cost_sum =
      check_eq "cost-sum"
        [
          ("rounds trace=metrics", f.cost_rounds, c "cost_rounds");
          ("messages trace=metrics", f.cost_messages, c "cost_messages");
        ]
    in
    let expectation_checks =
      List.mapi
        (fun i e ->
          match e with
          | Cost_totals t ->
              check_eq
                (Printf.sprintf "cost-totals[%d]" i)
                [
                  ("rounds meter=trace", t.rounds, f.cost_rounds);
                  ("messages meter=trace", t.messages, f.cost_messages);
                  ("max-bits meter=trace", t.max_bits, f.cost_max_bits);
                ]
          | Sim_totals t ->
              check_eq
                (Printf.sprintf "sim-totals[%d]" i)
                [
                  ("rounds stats=trace", t.rounds, f.sim_rounds);
                  ("messages stats=trace", t.messages, f.sim_messages);
                  ("max-bits stats=trace", t.max_bits, f.sim_max_bits);
                ])
        expect
    in
    capacity :: bandwidth_sum :: message_count :: rounds :: max_bits
    :: cost_sum :: expectation_checks
  end

let verify_run ?(label = "run") ?capacity ?recorder:rec_ ~run () =
  let sink1 = Trace.sink ?capacity () in
  let expect1 = run sink1 in
  let violations1, dropped1 =
    match rec_ with
    | None -> ([], 0)
    | Some r ->
        let v = (recorded r, dropped r) in
        clear r;
        v
  in
  let sink2 = Trace.sink ?capacity () in
  let expect2 = run sink2 in
  let violations2 =
    match rec_ with None -> [] | Some r -> recorded r
  in
  let jsonl1 = Trace.to_jsonl sink1 and jsonl2 = Trace.to_jsonl sink2 in
  let determinism =
    {
      name = "replay-determinism";
      passed = String.equal jsonl1 jsonl2;
      detail =
        (if String.equal jsonl1 jsonl2 then
           Printf.sprintf "%d events byte-identical across 2 runs"
             (Trace.length sink1)
         else
           Printf.sprintf "traces differ (%d vs %d events)"
             (Trace.length sink1) (Trace.length sink2));
    }
  in
  let expect_stable =
    {
      name = "totals-stable";
      passed = expect1 = expect2;
      detail = "returned totals equal across 2 runs";
    }
  in
  let violations_stable =
    match rec_ with
    | None -> []
    | Some _ ->
        [
          {
            name = "violations-stable";
            passed = violations1 = violations2;
            detail =
              Printf.sprintf "%d violation(s) in both runs"
                (List.length violations1);
          };
        ]
  in
  {
    label;
    checks =
      (determinism :: expect_stable :: violations_stable)
      @ consistency_checks ~expect:expect1 sink1;
    violations = violations1;
    violations_dropped = dropped1;
  }

let verify_program ?(label = "program") ?capacity ?order_invariant ?max_rounds
    ?bandwidth ?adversary ~bits g program =
  let rec_ = recorder () in
  let wrapped = instrument ?order_invariant rec_ g program in
  let run sink =
    let config =
      {
        Sim.Config.default with
        Sim.Config.max_rounds;
        bandwidth;
        adversary = Option.map Fault.create adversary;
        on_incomplete = `Ignore;
        trace = Some sink;
      }
    in
    let _, stats = Sim.simulate ~config ~bits g wrapped in
    [
      Sim_totals
        {
          rounds = stats.Sim.rounds_used;
          messages = stats.Sim.total_messages;
          max_bits = stats.Sim.max_bits_seen;
        };
    ]
  in
  verify_run ~label ?capacity ~recorder:rec_ ~run ()
