type t = {
  mutable rounds : int;
  mutable messages : int;
  mutable max_bits : int;
  tags : (string, int) Hashtbl.t;
  trace : Trace.sink option;
}

let create ?trace () =
  { rounds = 0; messages = 0; max_bits = 0; tags = Hashtbl.create 8; trace }

let trace t = t.trace

let charge t ?(rounds = 1) ?(messages = 0) ?(max_bits = 0) tag =
  if rounds < 0 || messages < 0 then invalid_arg "Cost.charge: negative charge";
  t.rounds <- t.rounds + rounds;
  t.messages <- t.messages + messages;
  if max_bits > t.max_bits then t.max_bits <- max_bits;
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.tags tag) in
  Hashtbl.replace t.tags tag (prev + rounds);
  match t.trace with
  | None -> ()
  | Some s -> Trace.record s (Trace.Cost_charged { tag; rounds; messages; max_bits })

let rounds t = t.rounds
let messages t = t.messages
let max_message_bits t = t.max_bits

let breakdown t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tags [])

let reset t =
  t.rounds <- 0;
  t.messages <- 0;
  t.max_bits <- 0;
  Hashtbl.reset t.tags

let merge_max acc other =
  acc.rounds <- acc.rounds + other.rounds;
  acc.messages <- acc.messages + other.messages;
  if other.max_bits > acc.max_bits then acc.max_bits <- other.max_bits;
  Hashtbl.iter
    (fun k v ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt acc.tags k) in
      Hashtbl.replace acc.tags k (prev + v))
    other.tags

let parallel acc metered tag =
  let max_rounds = List.fold_left (fun m sub -> max m sub.rounds) 0 metered in
  let sum_messages = List.fold_left (fun s sub -> s + sub.messages) 0 metered in
  let max_bits = List.fold_left (fun b sub -> max b sub.max_bits) 0 metered in
  charge acc ~rounds:max_rounds ~messages:sum_messages ~max_bits tag

let pp fmt t =
  Format.fprintf fmt "@[<v>rounds=%d messages=%d max_msg_bits=%d" t.rounds
    t.messages t.max_bits;
  List.iter
    (fun (tag, r) -> Format.fprintf fmt "@,  %-24s %d" tag r)
    (breakdown t);
  Format.fprintf fmt "@]"
