(** Side-channel resource profiler: wall-clock and GC attribution per
    span path.

    A {!t} hooks the {!Trace.enter_span}/{!Trace.exit_span} events of a
    sink (via {!attach}) and charges, per span path, wall-clock seconds
    and GC allocation (minor/major/promoted words, major collections)
    to the innermost open span — or to the synthetic ["(unspanned)"]
    bucket when no span is open — plus inclusive totals to every open
    ancestor. Nothing is ever written into the packed event stream:
    traces of identical runs stay byte-identical whether or not a
    recorder is attached (test/test_resource.ml asserts exactly this).

    Attribution uses a single sample cursor: at every span transition
    the clock and GC counters are read once and the delta since the
    previous sample is charged. Word deltas therefore telescope — the
    per-path self values plus ["(unspanned)"] sum {e exactly} to the
    process totals over the observation window (floats of integral word
    counts add exactly below 2^53); seconds obey the same invariant up
    to float rounding. This is the resource analogue of the span
    profiler's exact-sum invariant.

    This module is also the single sanctioned clock/GC read point
    outside [bench/]: the [wallclock] lint rule confines
    [Unix.gettimeofday], [Unix.time], [Sys.time] and [Gc.*] to here, so
    node programs and engines can never observe time or GC state. *)

type t

val now : unit -> float
(** Wall-clock seconds since the epoch — the one sanctioned timebase
    for the whole tree (harness timing in [Workload] goes through
    here). *)

val create : unit -> t
(** Fresh recorder; the observation window (and the Chrome-trace time
    origin) starts now. Usable standalone for process-wide totals and
    {!heartbeat}s, or hooked to a sink with {!attach}. *)

val attach : t -> Trace.sink -> unit
(** Registers [t] on the sink's span hooks: subsequent
    [enter_span]/[exit_span] calls feed the per-path tables and the
    Chrome timeline, and the sink's {!Trace.span_seconds} is served
    from [t] (so {!Span.rollups} seconds columns light up). Attach a
    fresh recorder after {!Trace.clear} — clearing resets the hooks
    because path interning restarts. *)

type rollup = {
  r_path : string;  (** full "/"-joined span path, or ["(unspanned)"] *)
  r_depth : int;  (** nesting depth; [0] for roots and unspanned *)
  r_entries : int;  (** closed or open activations seen *)
  r_seconds : float;  (** self wall seconds (excludes open descendants) *)
  r_seconds_incl : float;
  r_minor_words : float;  (** self minor-heap allocation, words *)
  r_minor_words_incl : float;
  r_promoted_words : float;
  r_promoted_words_incl : float;
  r_major_words : float;  (** major-heap allocation incl. promotions *)
  r_major_words_incl : float;
  r_major_collections : int;
  r_major_collections_incl : int;
}

type totals = {
  t_seconds : float;  (** window length: create/attach to last sample *)
  t_minor_words : float;
  t_promoted_words : float;
  t_major_words : float;
  t_major_collections : int;
  t_peak_heap_words : int;
      (** process-wide [top_heap_words] watermark, sampled at
          transitions — monotone over the process lifetime, not scoped
          to the window *)
}

val rollups : t -> rollup list
(** Per-path attribution sorted by path, ["(unspanned)"] first. Self
    columns over all paths sum to {!totals} (exactly for words, to
    float rounding for seconds). Reading samples the cursor, so idle
    tail time is folded into ["(unspanned)"]. *)

val totals : t -> totals

val snapshot : t -> rollup list * totals
(** Both views of the {e same} sample: one cursor flush, then the
    per-path rollups and the window totals read from identical state.
    Separate {!rollups}/{!totals} calls each sample again, so work done
    between them (allocating the first result!) shifts the totals —
    exact-sum comparisons must use [snapshot]. *)

val peak_heap_mb : totals -> float
(** [t_peak_heap_words] in megabytes ([Sys.word_size] bytes/word). *)

val csv : rollup list -> string
(** Header plus one row per path, the resource analogue of
    {!Span.rollup_csv}. *)

type weight = [ `Seconds | `Minor_words | `Major_words ]

val weight_of_string : string -> weight option
(** Recognizes ["seconds"], ["minor-words"], ["major-words"]. *)

val to_folded : ?weight:weight -> t -> string
(** Folded flamegraph stacks ([;]-joined path, one integer per line):
    self microseconds for [`Seconds] (default), self words otherwise.
    Zero-weight paths are skipped; parseable by {!Span.of_folded}. *)

val metrics : ?into:Metrics.t -> t -> Metrics.t
(** Exports window totals as gauges ([res.seconds],
    [res.minor_words], [res.promoted_words], [res.major_words],
    [res.peak_heap_mb]) and a counter ([res.major_collections]). *)

val heartbeat : t -> string -> unit
(** [heartbeat t phase] prints a one-line progress pulse to stderr:
    phase name, elapsed seconds since {!create}, peak heap and minor
    words so far. Used by [bench scale] so the ~90 s RMAT pipeline is
    not completely dark. *)

(** {2 Chrome trace-event export}

    {!chrome_json} renders the recorded span timeline as catapult
    trace-event JSON — balanced [B]/[E] duration pairs with
    microsecond timestamps — loadable in [chrome://tracing] and
    Perfetto. Timestamps come from the resource side channel, never
    from the packed trace. *)

type chrome_event = {
  ce_path : string;  (** full span path *)
  ce_phase : [ `B | `E ];
  ce_ts : float;  (** microseconds since the recorder's origin *)
}

val chrome_events : t -> chrome_event list
(** The raw timeline in emission order; balanced iff every span entered
    during the window has exited. *)

val chrome_json : t -> string
(** [{"traceEvents":[...],"displayTimeUnit":"ms"}]; event names are the
    last path segment (so stacks nest in the viewer) and each event
    carries the full path under ["args"]. *)

val chrome_of_json : string -> (chrome_event list, string) result
(** Parses {!chrome_json} output back (round-trip asserted in tests);
    [Error] describes the first malformed event. *)
