(** Metrics registry: named counters, gauges, and histograms, with CSV
    and JSONL emitters under [bench_results/].

    A registry is either populated directly (e.g. the reliable transport's
    retransmission counter) or derived from a {!Trace.sink} with
    {!of_trace}, which aggregates the event stream into the standard
    observability metrics: messages per round, bits-per-message and
    per-round inbox-size histograms, fault counters, and per-tag cost
    accounting for engine-level (Cost-traced) runs. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Registers (or returns the existing) counter named [name]. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** A gauge keeps the last value set and the maximum ever set. *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_max : gauge -> float

val histogram : t -> string -> histogram
(** Integer-valued histogram with power-of-two buckets: bucket [k]
    counts observations [v] with [2^(k-1) <= v < 2^k] ([v <= 0] lands in
    bucket 0). *)

val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int

val hist_min : histogram -> int
(** [max_int] when empty. *)

val hist_max : histogram -> int
(** [min_int] when empty. *)

val hist_mean : histogram -> float
(** [nan] when empty. *)

val hist_buckets : histogram -> (int * int) list
(** [(upper_bound_exclusive, count)] for each non-empty bucket, ascending. *)

val of_trace : ?into:t -> Trace.sink -> t
(** Aggregates a trace into a registry (a fresh one unless [into] is
    given). Simulator-level events feed counters [rounds],
    [messages_sent], [messages_delivered], [messages_dropped],
    [messages_duplicated], [messages_delayed], [nodes_halted],
    [nodes_crashed]; histograms [messages_per_round], [bits_per_message],
    [inbox_size] (deliveries grouped per round and destination); gauges
    [max_message_bits] and [max_in_flight]. Cost-level events feed
    counters [cost_rounds], [cost_messages], per-tag counters
    [cost.<tag>.rounds], and histogram [cost_charge_rounds]. Span
    events contribute nothing here — see {!of_spans}. *)

val of_spans : ?into:t -> Trace.sink -> t
(** Folds {!Span.rollups} into per-phase metrics: counters
    [span.<path>.entries], [.rounds], [.rounds_incl], [.messages],
    [.messages_incl], [.bits], [.bits_incl] and gauges
    [.max_message_bits], [.seconds], [.seconds_incl]. Self totals over
    all paths (including the [(unspanned)] bucket) sum exactly to the
    corresponding {!of_trace} globals. *)

val to_csv : t -> string
(** Long format, one statistic per row: [metric,stat,value]. Histograms
    emit [count]/[sum]/[min]/[max]/[mean] plus one [lt_<2^k>] row per
    non-empty bucket (the bucket with upper bound [2^k] counts the
    observations with [2^(k-1) <= v < 2^k]; values [<= 0] land in
    [lt_1]). *)

val to_jsonl : t -> string
(** One JSON object per metric, e.g.
    [{"metric":"bits_per_message","kind":"histogram","count":..,"sum":..,
    "min":..,"max":..,"buckets":[[8,120],[16,3]]}]. *)

val save : ?dir:string -> prefix:string -> t -> string list
(** Writes [<prefix>_metrics.csv] and [<prefix>_metrics.jsonl] under
    [dir] (default ["bench_results"], created if missing); returns the
    paths written. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line-per-metric summary. *)
