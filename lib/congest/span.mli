(** Hierarchical phase spans: named, nested regions of a run, with every
    traced round boundary, message, and {!Cost.charge} attributed to the
    span path that was open when it happened.

    A span is one path segment pushed onto the sink's open-span stack;
    the recorded events carry the full ["/"]-joined path (e.g.
    ["netdecomp/color=3/strong_carving/transform/level=7"]). The entry
    points take the [Trace.sink option] that run configurations already
    carry, so instrumentation sites need no configuration of their own:
    with no sink attached (or a [~spans:false] sink) every call here is
    a no-op that allocates nothing.

    Attribution happens at replay time ({!rollups}): an event's {e self}
    cost goes to the innermost open span — or to the ["(unspanned)"]
    bucket when none is open, so per-span self totals always sum exactly
    to the {!Metrics.of_trace} globals — and its {e inclusive} cost to
    every open ancestor. Wall-clock seconds are measured at
    {!val-enter}/{!val-exit} but kept in sink-local side tables rather
    than the event stream, so traces of identical runs remain
    byte-identical. *)

val unspanned : string
(** The synthetic bucket for events recorded while no span is open. *)

val enter : Trace.sink option -> string -> unit
(** Opens a phase named by one path segment. No-op without a sink. *)

val enter_idx : Trace.sink option -> string -> int -> unit
(** [enter_idx t name i] = [enter t (name ^ "=" ^ string_of_int i)],
    except the label is only formatted when a sink is attached — the
    form loop instrumentation uses ([enter_idx trace "color" k]). *)

val exit : Trace.sink option -> unit
(** Closes the innermost open span.
    @raise Invalid_argument when a sink is attached and no span is
    open. *)

val with_span : Trace.sink option -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] brackets [f ()] in {!val-enter}/{!val-exit},
    exiting also on exceptions. The closure allocates, so per-iteration
    hot loops prefer explicit [enter_idx]/[exit] pairs. *)

type rollup = {
  path : string;  (** full ["/"]-joined span path *)
  depth : int;  (** path segments; [0] for {!unspanned} *)
  entries : int;  (** number of activations *)
  rounds : int;  (** self: simulator [Round_start]s + [Cost_charged] rounds *)
  rounds_incl : int;  (** inclusive: self + all descendants *)
  messages : int;  (** self: [Message_sent]s + [Cost_charged] messages *)
  messages_incl : int;
  bits : int;  (** self: total [Message_sent] payload bits *)
  bits_incl : int;
  max_message_bits : int;  (** largest message/charge watermark seen *)
  seconds : float;  (** self wall seconds (excludes child spans) *)
  seconds_incl : float;  (** enter-to-exit wall seconds *)
}

val rollups : Trace.sink -> rollup list
(** Replays the sink's event stream into per-path rollups, in order of
    first appearance (chronological). The sum of the self [rounds] /
    [messages] / [bits] over all rollups (including {!unspanned}) equals
    the corresponding {!Metrics.of_trace} totals: [rounds + cost_rounds],
    [messages_sent + cost_messages], and the [bits_per_message] sum. On
    a capacity-truncated sink the replay is best-effort. *)

type weight = [ `Rounds | `Messages | `Bits ]

val to_folded : ?weight:weight -> Trace.sink -> string
(** Flamegraph-compatible folded stacks: one ["frame;frame;... value"]
    line per span path with nonzero self weight (default [`Rounds]).
    Feed to [flamegraph.pl] or any folded-stack renderer. *)

val of_folded : string -> ((string * int) list, string) result
(** Parses {!to_folded} output back into [(path, weight)] pairs with
    ["/"] separators restored; blank lines are skipped. *)

val rollup_csv : rollup list -> string
(** One row per path with all self and inclusive columns; header
    [path,depth,entries,rounds,rounds_incl,...,seconds,seconds_incl]. *)

val pp_rollups : Format.formatter -> rollup list -> unit
(** Indented per-phase table (inclusive columns), for CLI output. *)

val save :
  ?dir:string -> ?weight:weight -> prefix:string -> Trace.sink -> string list
(** Writes [<prefix>_phases.csv] ({!rollup_csv}) and [<prefix>.folded]
    ({!to_folded} with [weight]) under [dir] (default ["bench_results"],
    created if missing); returns the paths written. *)
