type drop_reason = Adversary | Crashed_destination

type event =
  | Round_start of { round : int }
  | Round_end of {
      round : int;
      sent : int;
      delivered : int;
      in_flight : int;
      halted : int;
    }
  | Message_sent of { round : int; src : int; dst : int; bits : int }
  | Message_delivered of { round : int; src : int; dst : int }
  | Message_dropped of {
      round : int;
      src : int;
      dst : int;
      reason : drop_reason;
    }
  | Message_duplicated of {
      round : int;
      src : int;
      dst : int;
      copy_delay : int;
    }
  | Message_delayed of { round : int; src : int; dst : int; delay : int }
  | Node_halted of { round : int; node : int }
  | Node_crashed of { round : int; node : int }
  | Bandwidth_high_water of { round : int; node : int; bits : int }
  | Cost_charged of {
      tag : string;
      rounds : int;
      messages : int;
      max_bits : int;
    }
  | Span_enter of { path : string }
  | Span_exit of { path : string }

(* Events are stored packed, [stride] immediate ints per event (kind code
   + up to 5 payload fields), in one flat [int array]. Recording is then a
   handful of unboxed stores: no per-event heap block, no write barrier,
   no GC pressure from a hot simulator loop — this is what keeps the
   sink-attached overhead within the few-percent budget. [Cost_charged]
   tags (the only non-int payload) are interned in a side table. Events
   are materialized back into the variant type lazily on read. *)

let stride = 6

(* Optional disk spill: when a sink is created with [~spill:path], a full
   buffer is flushed to the file as packed native-endian 64-bit words
   (stride per event, same layout as memory) instead of dropping events.
   Readers replay the spilled prefix and then the in-memory tail, so
   [iter]/[length]/[events] see the complete stream and [truncated]
   stays 0 — observability past the old capacity ceiling. Writer and
   reader channels are opened lazily; the reader seeks, so random-access
   [decode] works on disk too. *)
type spill = {
  sp_path : string;
  mutable sp_out : out_channel option;
  mutable sp_in : in_channel option;
  mutable sp_stored : int;  (* events already flushed to disk *)
  sp_scratch : Bytes.t;  (* chunk buffer for flush/replay *)
}

type sink = {
  mutable buf : int array;
  mutable off : int;  (* next write offset = stride * events stored *)
  limit : int;  (* stride * maximum events *)
  spill : spill option;
  mutable dropped : int;
  mutable tags : string array;
  mutable ntags : int;
  tag_index : (string, int) Hashtbl.t;
  (* span bookkeeping; paths share the tag intern table. Wall-clock and
     GC attribution live entirely in an attached [Resource.t] (the hooks
     below), never in the event stream, so traces of identical runs stay
     byte-identical whether or not a recorder is attached. *)
  spans_enabled : bool;
  mutable span_stack : int array;  (* interned full-path ids, open frames *)
  mutable span_depth : int;
  mutable hook_enter : int -> unit;  (* path id, after the frame opens *)
  mutable hook_exit : int -> unit;  (* path id, before the frame closes *)
  mutable hook_seconds : unit -> (string * float * float) list;
}

let no_enter (_ : int) = ()
let no_exit (_ : int) = ()
let no_seconds () = []

(* kind codes; [decode] below is the single reader *)
let k_round_start = 0
let k_round_end = 1
let k_message_sent = 2
let k_message_delivered = 3
let k_message_dropped = 4
let k_message_duplicated = 5
let k_message_delayed = 6
let k_node_halted = 7
let k_node_crashed = 8
let k_bandwidth_high_water = 9
let k_cost_charged = 10
let k_span_enter = 11
let k_span_exit = 12

let sink ?(capacity = 1_000_000) ?(spans = true) ?spill () =
  if capacity < 1 then invalid_arg "Trace.sink: capacity must be positive";
  {
    buf = Array.make (stride * min capacity 256) 0;
    off = 0;
    limit = stride * capacity;
    spill =
      Option.map
        (fun path ->
          {
            sp_path = path;
            sp_out = None;
            sp_in = None;
            sp_stored = 0;
            sp_scratch = Bytes.create (8 * stride * 1024);
          })
        spill;
    dropped = 0;
    tags = [||];
    ntags = 0;
    tag_index = Hashtbl.create 8;
    spans_enabled = spans;
    span_stack = [||];
    span_depth = 0;
    hook_enter = no_enter;
    hook_exit = no_exit;
    hook_seconds = no_seconds;
  }

let grow s off =
  let grown = Array.make (min s.limit (2 * Array.length s.buf)) 0 in
  Array.blit s.buf 0 grown 0 off;
  s.buf <- grown
[@@alloc_ok
  "amortized doubling of the in-memory event buffer; runs O(log limit) \
   times total, not on the per-event fast path"]

let spill_writer sp =
  match sp.sp_out with
  | Some oc -> oc
  | None ->
      let oc = open_out_bin sp.sp_path in
      sp.sp_out <- Some oc;
      oc

(* append the whole in-memory buffer to the spill file and reset it *)
let spill_flush s sp =
  let oc = spill_writer sp in
  let scratch = sp.sp_scratch in
  let cap = Bytes.length scratch / 8 in
  let i = ref 0 in
  while !i < s.off do
    let batch = min cap (s.off - !i) in
    for j = 0 to batch - 1 do
      Bytes.set_int64_ne scratch (8 * j) (Int64.of_int s.buf.(!i + j))
    done;
    output_bytes oc
      (if batch = cap then scratch else Bytes.sub scratch 0 (8 * batch));
    i := !i + batch
  done;
  sp.sp_stored <- sp.sp_stored + (s.off / stride);
  s.off <- 0

let[@inline never] slot_full s =
  match s.spill with
  | Some sp ->
      spill_flush s sp;
      s.off <- stride;
      0
  | None ->
      s.dropped <- s.dropped + 1;
      -1
[@@alloc_ok
  "buffer-full slow path (disk spill or drop); reached once per buffer \
   fill, never per event"]

let[@inline] slot s =
  let off = s.off in
  if off >= s.limit then slot_full s
  else begin
    if off = Array.length s.buf then grow s off;
    s.off <- off + stride;
    off
  end

(* [slot] has bounds-checked the whole stride, so unsafe stores are fine *)
let[@inline] emit_message_sent s ~round ~src ~dst ~bits =
  let off = slot s in
  if off >= 0 then begin
    let buf = s.buf in
    Array.unsafe_set buf off k_message_sent;
    Array.unsafe_set buf (off + 1) round;
    Array.unsafe_set buf (off + 2) src;
    Array.unsafe_set buf (off + 3) dst;
    Array.unsafe_set buf (off + 4) bits
  end
[@@hot]

let[@inline] emit_message_delivered s ~round ~src ~dst =
  let off = slot s in
  if off >= 0 then begin
    let buf = s.buf in
    Array.unsafe_set buf off k_message_delivered;
    Array.unsafe_set buf (off + 1) round;
    Array.unsafe_set buf (off + 2) src;
    Array.unsafe_set buf (off + 3) dst
  end
[@@hot]

let tag_id s tag =
  match Hashtbl.find_opt s.tag_index tag with
  | Some i -> i
  | None ->
      let i = s.ntags in
      if i = Array.length s.tags then begin
        let grown = Array.make (max 8 (2 * i)) "" in
        Array.blit s.tags 0 grown 0 i;
        s.tags <- grown
      end;
      s.tags.(i) <- tag;
      s.ntags <- i + 1;
      Hashtbl.add s.tag_index tag i;
      i

(* Spans. [enter_span]/[exit_span] maintain the open-frame stack and
   record packed Span_enter/Span_exit events carrying the interned full
   path (parent-path ^ "/" ^ segment). The stack push/pop happens even
   when the event itself is dropped at capacity, so instrumentation
   stays balanced. Timing is delegated to the hooks — no-ops unless a
   [Resource.t] is attached. *)

let ensure_frame s d =
  if d = Array.length s.span_stack then begin
    let cap = max 8 (2 * d) in
    let stack = Array.make cap 0 in
    Array.blit s.span_stack 0 stack 0 d;
    s.span_stack <- stack
  end

let set_span s k pid =
  let off = slot s in
  if off >= 0 then begin
    let buf = s.buf in
    buf.(off) <- k;
    buf.(off + 1) <- pid;
    buf.(off + 2) <- 0;
    buf.(off + 3) <- 0;
    buf.(off + 4) <- 0;
    buf.(off + 5) <- 0
  end

let enter_span s name =
  if s.spans_enabled then begin
    let d = s.span_depth in
    let path =
      if d = 0 then name else s.tags.(s.span_stack.(d - 1)) ^ "/" ^ name
    in
    let pid = tag_id s path in
    ensure_frame s d;
    s.span_stack.(d) <- pid;
    s.span_depth <- d + 1;
    set_span s k_span_enter pid;
    s.hook_enter pid
  end

let exit_span s =
  if s.spans_enabled then begin
    let d = s.span_depth - 1 in
    if d < 0 then
      invalid_arg "Trace.exit_span: unbalanced exit (no span is open)";
    let pid = s.span_stack.(d) in
    s.hook_exit pid;
    s.span_depth <- d;
    set_span s k_span_exit pid
  end

let span_depth s = s.span_depth
let spans_enabled s = s.spans_enabled
let span_path s pid = s.tags.(pid)
let span_seconds s = s.hook_seconds ()

let set_span_hooks s ~enter ~exit ~seconds =
  s.hook_enter <- enter;
  s.hook_exit <- exit;
  s.hook_seconds <- seconds

let record s ev =
  let off = slot s in
  if off >= 0 then begin
    let buf = s.buf in
    let set k a b c d e =
      buf.(off) <- k;
      buf.(off + 1) <- a;
      buf.(off + 2) <- b;
      buf.(off + 3) <- c;
      buf.(off + 4) <- d;
      buf.(off + 5) <- e
    in
    match ev with
    | Round_start { round } -> set k_round_start round 0 0 0 0
    | Round_end { round; sent; delivered; in_flight; halted } ->
        set k_round_end round sent delivered in_flight halted
    | Message_sent { round; src; dst; bits } ->
        set k_message_sent round src dst bits 0
    | Message_delivered { round; src; dst } ->
        set k_message_delivered round src dst 0 0
    | Message_dropped { round; src; dst; reason } ->
        set k_message_dropped round src dst
          (match reason with Adversary -> 0 | Crashed_destination -> 1)
          0
    | Message_duplicated { round; src; dst; copy_delay } ->
        set k_message_duplicated round src dst copy_delay 0
    | Message_delayed { round; src; dst; delay } ->
        set k_message_delayed round src dst delay 0
    | Node_halted { round; node } -> set k_node_halted round node 0 0 0
    | Node_crashed { round; node } -> set k_node_crashed round node 0 0 0
    | Bandwidth_high_water { round; node; bits } ->
        set k_bandwidth_high_water round node bits 0 0
    | Cost_charged { tag; rounds; messages; max_bits } ->
        set k_cost_charged (tag_id s tag) rounds messages max_bits 0
    | Span_enter { path } -> set k_span_enter (tag_id s path) 0 0 0 0
    | Span_exit { path } -> set k_span_exit (tag_id s path) 0 0 0 0
  end

let materialize s k a b c d e =
  if k = k_round_start then Round_start { round = a }
  else if k = k_round_end then
    Round_end { round = a; sent = b; delivered = c; in_flight = d; halted = e }
  else if k = k_message_sent then
    Message_sent { round = a; src = b; dst = c; bits = d }
  else if k = k_message_delivered then
    Message_delivered { round = a; src = b; dst = c }
  else if k = k_message_dropped then
    Message_dropped
      {
        round = a;
        src = b;
        dst = c;
        reason = (if d = 0 then Adversary else Crashed_destination);
      }
  else if k = k_message_duplicated then
    Message_duplicated { round = a; src = b; dst = c; copy_delay = d }
  else if k = k_message_delayed then
    Message_delayed { round = a; src = b; dst = c; delay = d }
  else if k = k_node_halted then Node_halted { round = a; node = b }
  else if k = k_node_crashed then Node_crashed { round = a; node = b }
  else if k = k_bandwidth_high_water then
    Bandwidth_high_water { round = a; node = b; bits = c }
  else if k = k_span_enter then Span_enter { path = s.tags.(a) }
  else if k = k_span_exit then Span_exit { path = s.tags.(a) }
  else Cost_charged { tag = s.tags.(a); rounds = b; messages = c; max_bits = d }

let spill_reader sp =
  (match sp.sp_out with Some oc -> flush oc | None -> ());
  match sp.sp_in with
  | Some ic -> ic
  | None ->
      let ic = open_in_bin sp.sp_path in
      sp.sp_in <- Some ic;
      ic

let spilled s = match s.spill with Some sp -> sp.sp_stored | None -> 0

let decode s i =
  let disk = spilled s in
  if i < disk then begin
    let sp = Option.get s.spill in
    let ic = spill_reader sp in
    seek_in ic (8 * stride * i);
    let b = Bytes.create (8 * stride) in
    really_input ic b 0 (8 * stride);
    let w j = Int64.to_int (Bytes.get_int64_ne b (8 * j)) in
    materialize s (w 0) (w 1) (w 2) (w 3) (w 4) (w 5)
  end
  else begin
    let off = stride * (i - disk) in
    let buf = s.buf in
    materialize s buf.(off)
      buf.(off + 1)
      buf.(off + 2)
      buf.(off + 3)
      buf.(off + 4)
      buf.(off + 5)
  end

let length s = spilled s + (s.off / stride)
let truncated s = s.dropped
let events s = List.init (length s) (decode s)

let iter f s =
  (match s.spill with
  | Some sp when sp.sp_stored > 0 ->
      (* sequential chunked replay of the spilled prefix *)
      let ic = spill_reader sp in
      seek_in ic 0;
      let scratch = sp.sp_scratch in
      let cap = Bytes.length scratch / (8 * stride) in
      let remaining = ref sp.sp_stored in
      while !remaining > 0 do
        let batch = min cap !remaining in
        really_input ic scratch 0 (8 * stride * batch);
        for ev = 0 to batch - 1 do
          let base = 8 * stride * ev in
          let w j = Int64.to_int (Bytes.get_int64_ne scratch (base + (8 * j))) in
          f (materialize s (w 0) (w 1) (w 2) (w 3) (w 4) (w 5))
        done;
        remaining := !remaining - batch
      done
  | _ -> ());
  for i = 0 to (s.off / stride) - 1 do
    let off = stride * i in
    let buf = s.buf in
    f
      (materialize s buf.(off)
         buf.(off + 1)
         buf.(off + 2)
         buf.(off + 3)
         buf.(off + 4)
         buf.(off + 5))
  done

let clear s =
  s.off <- 0;
  s.dropped <- 0;
  s.ntags <- 0;
  Hashtbl.reset s.tag_index;
  s.span_depth <- 0;
  (* path interning restarts, so an attached recorder's id-keyed tables
     would be stale: detach and require a fresh [Resource.attach] *)
  s.hook_enter <- no_enter;
  s.hook_exit <- no_exit;
  s.hook_seconds <- no_seconds;
  match s.spill with
  | None -> ()
  | Some sp ->
      (match sp.sp_in with
      | Some ic ->
          close_in_noerr ic;
          sp.sp_in <- None
      | None -> ());
      (match sp.sp_out with
      | Some oc ->
          close_out_noerr oc;
          sp.sp_out <- None
      | None -> ());
      if sp.sp_stored > 0 && Sys.file_exists sp.sp_path then
        Sys.remove sp.sp_path;
      sp.sp_stored <- 0

let reason_label = function
  | Adversary -> "adversary"
  | Crashed_destination -> "crashed_dst"

let pp_event ppf = function
  | Round_start { round } -> Format.fprintf ppf "round %d start" round
  | Round_end { round; sent; delivered; in_flight; halted } ->
      Format.fprintf ppf
        "round %d end: %d sent, %d delivered, %d in flight, %d halted" round
        sent delivered in_flight halted
  | Message_sent { round; src; dst; bits } ->
      Format.fprintf ppf "r%d: %d -> %d (%d bits)" round src dst bits
  | Message_delivered { round; src; dst } ->
      Format.fprintf ppf "r%d: %d -> %d delivered" round src dst
  | Message_dropped { round; src; dst; reason } ->
      Format.fprintf ppf "r%d: %d -> %d dropped (%s)" round src dst
        (reason_label reason)
  | Message_duplicated { round; src; dst; copy_delay } ->
      Format.fprintf ppf "r%d: %d -> %d duplicated (+%d rounds)" round src dst
        copy_delay
  | Message_delayed { round; src; dst; delay } ->
      Format.fprintf ppf "r%d: %d -> %d delayed (+%d rounds)" round src dst
        delay
  | Node_halted { round; node } ->
      Format.fprintf ppf "r%d: node %d halted" round node
  | Node_crashed { round; node } ->
      Format.fprintf ppf "r%d: node %d crashed" round node
  | Bandwidth_high_water { round; node; bits } ->
      Format.fprintf ppf "r%d: node %d high-water %d bits" round node bits
  | Cost_charged { tag; rounds; messages; max_bits } ->
      Format.fprintf ppf "cost %s: +%d rounds, +%d messages, max %d bits" tag
        rounds messages max_bits
  | Span_enter { path } -> Format.fprintf ppf "span enter %s" path
  | Span_exit { path } -> Format.fprintf ppf "span exit %s" path

(* hand-rolled JSONL: no JSON library in the dependency set, and the
   emitted shapes are flat objects of ints plus one escaped string *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_jsonl = function
  | Round_start { round } ->
      Printf.sprintf {|{"ev":"round_start","round":%d}|} round
  | Round_end { round; sent; delivered; in_flight; halted } ->
      Printf.sprintf
        {|{"ev":"round_end","round":%d,"sent":%d,"delivered":%d,"in_flight":%d,"halted":%d}|}
        round sent delivered in_flight halted
  | Message_sent { round; src; dst; bits } ->
      Printf.sprintf
        {|{"ev":"message_sent","round":%d,"src":%d,"dst":%d,"bits":%d}|} round
        src dst bits
  | Message_delivered { round; src; dst } ->
      Printf.sprintf
        {|{"ev":"message_delivered","round":%d,"src":%d,"dst":%d}|} round src
        dst
  | Message_dropped { round; src; dst; reason } ->
      Printf.sprintf
        {|{"ev":"message_dropped","round":%d,"src":%d,"dst":%d,"reason":"%s"}|}
        round src dst (reason_label reason)
  | Message_duplicated { round; src; dst; copy_delay } ->
      Printf.sprintf
        {|{"ev":"message_duplicated","round":%d,"src":%d,"dst":%d,"copy_delay":%d}|}
        round src dst copy_delay
  | Message_delayed { round; src; dst; delay } ->
      Printf.sprintf
        {|{"ev":"message_delayed","round":%d,"src":%d,"dst":%d,"delay":%d}|}
        round src dst delay
  | Node_halted { round; node } ->
      Printf.sprintf {|{"ev":"node_halted","round":%d,"node":%d}|} round node
  | Node_crashed { round; node } ->
      Printf.sprintf {|{"ev":"node_crashed","round":%d,"node":%d}|} round node
  | Bandwidth_high_water { round; node; bits } ->
      Printf.sprintf
        {|{"ev":"bandwidth_high_water","round":%d,"node":%d,"bits":%d}|} round
        node bits
  | Cost_charged { tag; rounds; messages; max_bits } ->
      Printf.sprintf
        {|{"ev":"cost_charged","tag":"%s","rounds":%d,"messages":%d,"max_bits":%d}|}
        (escape tag) rounds messages max_bits
  | Span_enter { path } ->
      Printf.sprintf {|{"ev":"span_enter","path":"%s"}|} (escape path)
  | Span_exit { path } ->
      Printf.sprintf {|{"ev":"span_exit","path":"%s"}|} (escape path)

(* minimal field extraction matching the printer above; tolerant of
   whitespace after ':' so externally pretty-printed lines also parse *)

let find_key line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and llen = String.length line in
  let rec go i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else go (i + 1)
  in
  go 0

let skip_ws line i =
  let j = ref i in
  while !j < String.length line && (line.[!j] = ' ' || line.[!j] = '\t') do
    incr j
  done;
  !j

let field_int line key =
  match find_key line key with
  | None -> Error (Printf.sprintf "missing int field %S in %s" key line)
  | Some i ->
      let i = skip_ws line i in
      let j = ref i in
      if !j < String.length line && line.[!j] = '-' then incr j;
      let digits = ref 0 in
      while
        !j < String.length line && line.[!j] >= '0' && line.[!j] <= '9'
      do
        incr j;
        incr digits
      done;
      if !digits = 0 then
        Error (Printf.sprintf "field %S is not an int in %s" key line)
      else Ok (int_of_string (String.sub line i (!j - i)))

let field_string line key =
  match find_key line key with
  | None -> Error (Printf.sprintf "missing string field %S in %s" key line)
  | Some i ->
      let i = skip_ws line i in
      if i >= String.length line || line.[i] <> '"' then
        Error (Printf.sprintf "field %S is not a string in %s" key line)
      else begin
        let b = Buffer.create 16 in
        let j = ref (i + 1) in
        let closed = ref false in
        while (not !closed) && !j < String.length line do
          (match line.[!j] with
          | '\\' when !j + 1 < String.length line ->
              incr j;
              Buffer.add_char b
                (match line.[!j] with
                | 'n' -> '\n'
                | 't' -> '\t'
                | c -> c)
          | '"' -> closed := true
          | c -> Buffer.add_char b c);
          incr j
        done;
        if !closed then Ok (Buffer.contents b)
        else Error (Printf.sprintf "unterminated string %S in %s" key line)
      end

let ( let* ) r f = Result.bind r f

let event_of_jsonl line =
  let* ev = field_string line "ev" in
  match ev with
  | "round_start" ->
      let* round = field_int line "round" in
      Ok (Round_start { round })
  | "round_end" ->
      let* round = field_int line "round" in
      let* sent = field_int line "sent" in
      let* delivered = field_int line "delivered" in
      let* in_flight = field_int line "in_flight" in
      let* halted = field_int line "halted" in
      Ok (Round_end { round; sent; delivered; in_flight; halted })
  | "message_sent" ->
      let* round = field_int line "round" in
      let* src = field_int line "src" in
      let* dst = field_int line "dst" in
      let* bits = field_int line "bits" in
      Ok (Message_sent { round; src; dst; bits })
  | "message_delivered" ->
      let* round = field_int line "round" in
      let* src = field_int line "src" in
      let* dst = field_int line "dst" in
      Ok (Message_delivered { round; src; dst })
  | "message_dropped" ->
      let* round = field_int line "round" in
      let* src = field_int line "src" in
      let* dst = field_int line "dst" in
      let* reason = field_string line "reason" in
      let* reason =
        match reason with
        | "adversary" -> Ok Adversary
        | "crashed_dst" -> Ok Crashed_destination
        | r -> Error (Printf.sprintf "unknown drop reason %S" r)
      in
      Ok (Message_dropped { round; src; dst; reason })
  | "message_duplicated" ->
      let* round = field_int line "round" in
      let* src = field_int line "src" in
      let* dst = field_int line "dst" in
      let* copy_delay = field_int line "copy_delay" in
      Ok (Message_duplicated { round; src; dst; copy_delay })
  | "message_delayed" ->
      let* round = field_int line "round" in
      let* src = field_int line "src" in
      let* dst = field_int line "dst" in
      let* delay = field_int line "delay" in
      Ok (Message_delayed { round; src; dst; delay })
  | "node_halted" ->
      let* round = field_int line "round" in
      let* node = field_int line "node" in
      Ok (Node_halted { round; node })
  | "node_crashed" ->
      let* round = field_int line "round" in
      let* node = field_int line "node" in
      Ok (Node_crashed { round; node })
  | "bandwidth_high_water" ->
      let* round = field_int line "round" in
      let* node = field_int line "node" in
      let* bits = field_int line "bits" in
      Ok (Bandwidth_high_water { round; node; bits })
  | "cost_charged" ->
      let* tag = field_string line "tag" in
      let* rounds = field_int line "rounds" in
      let* messages = field_int line "messages" in
      let* max_bits = field_int line "max_bits" in
      Ok (Cost_charged { tag; rounds; messages; max_bits })
  | "span_enter" ->
      let* path = field_string line "path" in
      Ok (Span_enter { path })
  | "span_exit" ->
      let* path = field_string line "path" in
      Ok (Span_exit { path })
  | ev -> Error (Printf.sprintf "unknown event kind %S" ev)

let to_jsonl s =
  let b = Buffer.create (64 * (1 + length s)) in
  iter
    (fun ev ->
      Buffer.add_string b (event_to_jsonl ev);
      Buffer.add_char b '\n')
    s;
  Buffer.contents b

let of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go acc rest
        else begin
          match event_of_jsonl line with
          | Ok ev -> go (ev :: acc) rest
          | Error e -> Error e
        end
  in
  go [] lines

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let save ?(dir = "bench_results") ~file s =
  ensure_dir dir;
  let path = Filename.concat dir file in
  let oc = open_out path in
  output_string oc (to_jsonl s);
  close_out oc;
  path
