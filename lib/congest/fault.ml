open Dsgraph

type burst = {
  from_round : int;
  until_round : int;
  on_edges : (int * int) list option;
}

type spec = {
  seed : int;
  drop : float;
  duplicate : float;
  delay : float;
  delay_window : int;
  bursts : burst list;
  crashes : (int * int) list;
  revives : (int * int) list;
}

let spec ?(seed = 0) ?(drop = 0.0) ?(duplicate = 0.0) ?(delay = 0.0)
    ?(delay_window = 0) ?(bursts = []) ?(crashes = []) ?(revives = []) () =
  { seed; drop; duplicate; delay; delay_window; bursts; crashes; revives }

type t = {
  sp : spec;
  rng : Rng.t;
  crash_round : (int, int) Hashtbl.t;
  (* per node, sorted disjoint down intervals [from, until): crashed at
     [r] iff some interval contains [r]; [max_int] = never revived *)
  churn : (int, (int * int) list) Hashtbl.t;
  mutable n_dropped : int;
  mutable n_duplicated : int;
  mutable n_delayed : int;
}

let create sp =
  let check_rate name r =
    if r < 0.0 || r > 1.0 then
      invalid_arg (Printf.sprintf "Fault.create: %s rate %g not in [0,1]" name r)
  in
  check_rate "drop" sp.drop;
  check_rate "duplicate" sp.duplicate;
  check_rate "delay" sp.delay;
  if sp.delay_window < 0 then invalid_arg "Fault.create: negative delay_window";
  List.iter
    (fun b ->
      if b.until_round < b.from_round || b.from_round < 1 then
        invalid_arg "Fault.create: bad burst window")
    sp.bursts;
  let crash_round = Hashtbl.create (List.length sp.crashes) in
  List.iter
    (fun (v, r) ->
      if r < 1 then invalid_arg "Fault.create: crash round must be >= 1";
      match Hashtbl.find_opt crash_round v with
      | Some r' -> Hashtbl.replace crash_round v (min r r')
      | None -> Hashtbl.add crash_round v r)
    sp.crashes;
  (* churn schedule: per node, crash and revive rounds must strictly
     interleave (c1 < r1 < c2 < r2 < ...), each revive answering the
     crash before it; a trailing crash leaves the node down forever *)
  let churn = Hashtbl.create (Hashtbl.length crash_round) in
  let by_node events =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (v, r) ->
        Hashtbl.replace tbl v
          (r :: Option.value (Hashtbl.find_opt tbl v) ~default:[]))
      events;
    tbl
  in
  let crashes_of = by_node sp.crashes and revives_of = by_node sp.revives in
  List.iter
    (fun (v, r) ->
      if r < 1 then invalid_arg "Fault.create: revive round must be >= 1";
      if not (Hashtbl.mem crashes_of v) then
        invalid_arg
          (Printf.sprintf "Fault.create: node %d revived but never crashed" v))
    sp.revives;
  Hashtbl.iter
    (fun v rs ->
      let cs = List.sort compare rs in
      let vs =
        List.sort compare (Option.value (Hashtbl.find_opt revives_of v) ~default:[])
      in
      let rec intervals cs vs acc =
        match (cs, vs) with
        | [], [] -> List.rev acc
        | [], _ :: _ ->
            invalid_arg
              (Printf.sprintf "Fault.create: node %d has more revives than crashes" v)
        | c :: cs', [] -> intervals cs' [] ((c, max_int) :: acc)
        | c :: cs', r :: vs' ->
            if r <= c then
              invalid_arg
                (Printf.sprintf
                   "Fault.create: node %d revive round %d not after crash round %d"
                   v r c)
            else begin
              (match cs' with
              | c' :: _ when c' < r ->
                  invalid_arg
                    (Printf.sprintf
                       "Fault.create: node %d crashes again at %d before revive at %d"
                       v c' r)
              | _ -> ());
              intervals cs' vs' ((c, r) :: acc)
            end
      in
      Hashtbl.replace churn v (intervals cs vs []))
    crashes_of;
  {
    sp;
    rng = Rng.create sp.seed;
    crash_round;
    churn;
    n_dropped = 0;
    n_duplicated = 0;
    n_delayed = 0;
  }

let spec_of t = t.sp

type fate = Deliver | Drop | Duplicate of int | Delay of int

let in_burst t ~round ~src ~dst =
  List.exists
    (fun b ->
      round >= b.from_round && round <= b.until_round
      &&
      match b.on_edges with
      | None -> true
      | Some es ->
          List.exists (fun (u, v) -> (u = src && v = dst) || (u = dst && v = src)) es)
    t.sp.bursts

let fate t ~round ~src ~dst =
  if in_burst t ~round ~src ~dst then begin
    t.n_dropped <- t.n_dropped + 1;
    Drop
  end
  else begin
    let total = t.sp.drop +. t.sp.duplicate +. t.sp.delay in
    if total <= 0.0 then Deliver
    else
      let u = Rng.float t.rng 1.0 in
      if u < t.sp.drop then begin
        t.n_dropped <- t.n_dropped + 1;
        Drop
      end
      else if u < t.sp.drop +. t.sp.duplicate then begin
        t.n_duplicated <- t.n_duplicated + 1;
        let d = if t.sp.delay_window > 0 then Rng.int t.rng (t.sp.delay_window + 1) else 0 in
        Duplicate d
      end
      else if u < total && t.sp.delay_window > 0 then begin
        t.n_delayed <- t.n_delayed + 1;
        Delay (1 + Rng.int t.rng t.sp.delay_window)
      end
      else Deliver
  end

let is_crashed t ~round v =
  match Hashtbl.find_opt t.churn v with
  | Some intervals ->
      List.exists (fun (c, r) -> round >= c && round < r) intervals
  | None -> false

let crashed_nodes t ~upto_round =
  List.sort compare
    (Hashtbl.fold
       (fun v r acc -> if r <= upto_round then v :: acc else acc)
       t.crash_round [])

let down_nodes t ~round =
  List.sort compare
    (Hashtbl.fold
       (fun v _ acc -> if is_crashed t ~round v then v :: acc else acc)
       t.churn [])

let count_drop t = t.n_dropped <- t.n_dropped + 1
let dropped t = t.n_dropped
let duplicated t = t.n_duplicated
let delayed t = t.n_delayed

let pp fmt t =
  Format.fprintf fmt
    "adversary seed=%d drop=%.3f dup=%.3f delay=%.3f window=%d bursts=%d \
     crashes=%d revives=%d | dropped=%d duplicated=%d delayed=%d"
    t.sp.seed t.sp.drop t.sp.duplicate t.sp.delay t.sp.delay_window
    (List.length t.sp.bursts)
    (Hashtbl.length t.crash_round)
    (List.length t.sp.revives) t.n_dropped t.n_duplicated t.n_delayed
