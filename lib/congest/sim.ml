open Dsgraph

exception
  Bandwidth_exceeded of {
    node : int;
    dst : int;
    round : int;
    bits : int;
    bandwidth : int;
  }

exception Incomplete of { max_rounds : int; running : int }

type ('st, 'msg) program = {
  init : node:int -> neighbors:int array -> 'st;
  round :
    node:int ->
    state:'st ->
    inbox:(int * 'msg) list ->
    'st * (int * 'msg) list * bool;
}

type fault_stats = {
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed : int list;
}

let no_faults = { dropped = 0; duplicated = 0; delayed = 0; crashed = [] }

type stats = {
  rounds_used : int;
  total_messages : int;
  max_bits_seen : int;
  all_halted : bool;
  faults : fault_stats;
}

module Config = struct
  type t = {
    max_rounds : int option;
    bandwidth : int option;
    adversary : Fault.t option;
    on_incomplete : [ `Ignore | `Warn | `Raise ];
    trace : Trace.sink option;
    transport_window : int option;
    transport_rto : int option;
    liveness_timeout : int option;
  }

  let default =
    {
      max_rounds = None;
      bandwidth = None;
      adversary = None;
      on_incomplete = `Warn;
      trace = None;
      transport_window = None;
      transport_rto = None;
      liveness_timeout = None;
    }

  let with_max_rounds max_rounds t = { t with max_rounds = Some max_rounds }
  let with_bandwidth bandwidth t = { t with bandwidth = Some bandwidth }
  let with_adversary adversary t = { t with adversary = Some adversary }
  let with_on_incomplete on_incomplete t = { t with on_incomplete }
  let with_trace sink t = { t with trace = Some sink }

  let with_transport_window transport_window t =
    { t with transport_window = Some transport_window }

  let with_transport_rto transport_rto t =
    { t with transport_rto = Some transport_rto }

  let with_liveness_timeout liveness_timeout t =
    { t with liveness_timeout = Some liveness_timeout }
end

let log_src = Logs.Src.create "congest.sim" ~doc:"CONGEST simulator"

module Log = (val Logs.src_log log_src)

let simulate ?(config = Config.default) ~bits g program =
  let {
    Config.max_rounds;
    bandwidth;
    adversary;
    on_incomplete;
    trace;
    (* transport knobs are consumed by Reliable.simulate, not here *)
    transport_window = _;
    transport_rto = _;
    liveness_timeout = _;
  } =
    config
  in
  let n = Graph.n g in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 16) in
  let bandwidth = Option.value bandwidth ~default:(Bits.bandwidth ~n) in
  let states = Array.init n (fun v -> program.init ~node:v ~neighbors:(Graph.neighbors g v)) in
  let inboxes = Array.make n [] in
  let halted = Array.make n false in
  let total_messages = ref 0 in
  let max_bits_seen = ref 0 in
  let rounds_used = ref 0 in
  (* arrivals.(future round) -> (dst, src, msg) in reverse send order; with
     no adversary everything lands exactly one round after it is sent, so
     the table holds a single entry *)
  let arrivals : (int, (int * int * 'msg) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let pending = ref 0 in
  let schedule ~at dst src msg =
    incr pending;
    let cell =
      match Hashtbl.find_opt arrivals at with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add arrivals at c;
          c
    in
    cell := (dst, src, msg) :: !cell
  in
  let crashed_at round v =
    match adversary with
    | Some adv -> Fault.is_crashed adv ~round v
    | None -> false
  in
  (* per-round tallies for Round_end; plain int refs so they cost nothing
     when tracing is off *)
  let sent_this_round = ref 0 in
  let delivered_this_round = ref 0 in
  let continue = ref true in
  while !continue && !rounds_used < max_rounds do
    incr rounds_used;
    let round = !rounds_used in
    sent_this_round := 0;
    delivered_this_round := 0;
    (match trace with
    | None -> ()
    | Some s -> Trace.record s (Trace.Round_start { round }));
    (* move deliveries due this round into the inboxes, in send order *)
    (match Hashtbl.find_opt arrivals round with
    | None -> ()
    | Some cell ->
        List.iter
          (fun (dst, src, msg) ->
            decr pending;
            if crashed_at round dst then begin
              (match adversary with
              | Some adv -> Fault.count_drop adv
              | None -> ());
              match trace with
              | None -> ()
              | Some s ->
                  Trace.record s
                    (Trace.Message_dropped
                       { round; src; dst; reason = Trace.Crashed_destination })
            end
            else begin
              inboxes.(dst) <- (src, msg) :: inboxes.(dst);
              incr delivered_this_round;
              match trace with
              | None -> ()
              | Some s -> Trace.emit_message_delivered s ~round ~src ~dst
            end)
          !cell;
        (* cell is in reverse send order and the prepend above reverses
           again per destination: inboxes end up in send order *)
        Hashtbl.remove arrivals round);
    for v = 0 to n - 1 do
      if crashed_at round v then begin
        (match trace with
        | None -> ()
        | Some s ->
            if not (crashed_at (round - 1) v) then
              Trace.record s (Trace.Node_crashed { round; node = v }));
        halted.(v) <- true;
        inboxes.(v) <- []
      end
      else begin
        let was_halted = halted.(v) in
        let state, outgoing, halt =
          program.round ~node:v ~state:states.(v) ~inbox:inboxes.(v)
        in
        inboxes.(v) <- [];
        states.(v) <- state;
        halted.(v) <- halt;
        (match trace with
        | None -> ()
        | Some s ->
            if halt && not was_halted then
              Trace.record s (Trace.Node_halted { round; node = v }));
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (dst, msg) ->
            if not (Graph.is_edge g v dst) then
              invalid_arg
                (Printf.sprintf "Sim.simulate: node %d sent to non-neighbor %d" v dst);
            if Hashtbl.mem seen dst then
              invalid_arg
                (Printf.sprintf "Sim.simulate: node %d sent twice to %d in one round"
                   v dst);
            Hashtbl.add seen dst ();
            let b = bits msg in
            if b > bandwidth then
              raise (Bandwidth_exceeded { node = v; dst; round; bits = b; bandwidth });
            if b > !max_bits_seen then begin
              max_bits_seen := b;
              match trace with
              | None -> ()
              | Some s ->
                  Trace.record s
                    (Trace.Bandwidth_high_water { round; node = v; bits = b })
            end;
            incr total_messages;
            incr sent_this_round;
            (match trace with
            | None -> ()
            | Some s -> Trace.emit_message_sent s ~round ~src:v ~dst ~bits:b);
            match adversary with
            | None -> schedule ~at:(round + 1) dst v msg
            | Some adv ->
                if Fault.is_crashed adv ~round dst then begin
                  Fault.count_drop adv;
                  match trace with
                  | None -> ()
                  | Some s ->
                      Trace.record s
                        (Trace.Message_dropped
                           {
                             round;
                             src = v;
                             dst;
                             reason = Trace.Crashed_destination;
                           })
                end
                else (
                  match Fault.fate adv ~round ~src:v ~dst with
                  | Fault.Deliver -> schedule ~at:(round + 1) dst v msg
                  | Fault.Drop -> (
                      match trace with
                      | None -> ()
                      | Some s ->
                          Trace.record s
                            (Trace.Message_dropped
                               {
                                 round;
                                 src = v;
                                 dst;
                                 reason = Trace.Adversary;
                               }))
                  | Fault.Duplicate d ->
                      schedule ~at:(round + 1) dst v msg;
                      schedule ~at:(round + 1 + d) dst v msg;
                      (match trace with
                      | None -> ()
                      | Some s ->
                          Trace.record s
                            (Trace.Message_duplicated
                               { round; src = v; dst; copy_delay = d }))
                  | Fault.Delay d -> (
                      schedule ~at:(round + 1 + d) dst v msg;
                      match trace with
                      | None -> ()
                      | Some s ->
                          Trace.record s
                            (Trace.Message_delayed
                               { round; src = v; dst; delay = d }))))
          outgoing
      end
    done;
    let all_halted = Array.for_all (fun h -> h) halted in
    (match trace with
    | None -> ()
    | Some s ->
        let halted_count =
          Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 halted
        in
        Trace.record s
          (Trace.Round_end
             {
               round;
               sent = !sent_this_round;
               delivered = !delivered_this_round;
               in_flight = !pending;
               halted = halted_count;
             }));
    if all_halted && !pending = 0 then continue := false
  done;
  let all_halted = Array.for_all (fun h -> h) halted in
  if (not all_halted) || !pending > 0 then begin
    let running =
      Array.fold_left (fun acc h -> if h then acc else acc + 1) 0 halted
    in
    match on_incomplete with
    | `Ignore -> ()
    | `Warn ->
        Log.warn (fun m ->
            m
              "Sim.simulate: stopped at max_rounds=%d with %d node(s) still \
               running and %d message(s) in flight"
              max_rounds running !pending)
    | `Raise -> raise (Incomplete { max_rounds; running })
  end;
  let faults =
    match adversary with
    | None -> no_faults
    | Some adv ->
        {
          dropped = Fault.dropped adv;
          duplicated = Fault.duplicated adv;
          delayed = Fault.delayed adv;
          crashed = Fault.crashed_nodes adv ~upto_round:!rounds_used;
        }
  in
  ( states,
    {
      rounds_used = !rounds_used;
      total_messages = !total_messages;
      max_bits_seen = !max_bits_seen;
      all_halted;
      faults;
    } )

