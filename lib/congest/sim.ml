open Dsgraph

exception
  Bandwidth_exceeded of {
    node : int;
    dst : int;
    round : int;
    bits : int;
    bandwidth : int;
  }

exception Incomplete of { max_rounds : int; running : int }

type ('st, 'msg) program = {
  init : node:int -> neighbors:int array -> 'st;
  round :
    node:int ->
    state:'st ->
    inbox:(int * 'msg) list ->
    'st * (int * 'msg) list * bool;
}

type fault_stats = {
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed : int list;
}

let no_faults = { dropped = 0; duplicated = 0; delayed = 0; crashed = [] }

type stats = {
  rounds_used : int;
  total_messages : int;
  max_bits_seen : int;
  all_halted : bool;
  faults : fault_stats;
}

let log_src = Logs.Src.create "congest.sim" ~doc:"CONGEST simulator"

module Log = (val Logs.src_log log_src)

let run ?max_rounds ?bandwidth ?adversary ?(on_incomplete = `Warn) ~bits g
    program =
  let n = Graph.n g in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 16) in
  let bandwidth = Option.value bandwidth ~default:(Bits.bandwidth ~n) in
  let states = Array.init n (fun v -> program.init ~node:v ~neighbors:(Graph.neighbors g v)) in
  let inboxes = Array.make n [] in
  let halted = Array.make n false in
  let total_messages = ref 0 in
  let max_bits_seen = ref 0 in
  let rounds_used = ref 0 in
  (* arrivals.(future round) -> (dst, src, msg) in reverse send order; with
     no adversary everything lands exactly one round after it is sent, so
     the table holds a single entry *)
  let arrivals : (int, (int * int * 'msg) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let pending = ref 0 in
  let schedule ~at dst src msg =
    incr pending;
    let cell =
      match Hashtbl.find_opt arrivals at with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add arrivals at c;
          c
    in
    cell := (dst, src, msg) :: !cell
  in
  let crashed_at round v =
    match adversary with
    | Some adv -> Fault.is_crashed adv ~round v
    | None -> false
  in
  let continue = ref true in
  while !continue && !rounds_used < max_rounds do
    incr rounds_used;
    let round = !rounds_used in
    (* move deliveries due this round into the inboxes, in send order *)
    (match Hashtbl.find_opt arrivals round with
    | None -> ()
    | Some cell ->
        List.iter
          (fun (dst, src, msg) ->
            decr pending;
            if crashed_at round dst then
              match adversary with
              | Some adv -> Fault.count_drop adv
              | None -> ()
            else inboxes.(dst) <- (src, msg) :: inboxes.(dst))
          !cell;
        (* cell is in reverse send order and the prepend above reverses
           again per destination: inboxes end up in send order *)
        Hashtbl.remove arrivals round);
    for v = 0 to n - 1 do
      if crashed_at round v then begin
        halted.(v) <- true;
        inboxes.(v) <- []
      end
      else begin
        let state, outgoing, halt =
          program.round ~node:v ~state:states.(v) ~inbox:inboxes.(v)
        in
        inboxes.(v) <- [];
        states.(v) <- state;
        halted.(v) <- halt;
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (dst, msg) ->
            if not (Graph.is_edge g v dst) then
              invalid_arg
                (Printf.sprintf "Sim.run: node %d sent to non-neighbor %d" v dst);
            if Hashtbl.mem seen dst then
              invalid_arg
                (Printf.sprintf "Sim.run: node %d sent twice to %d in one round"
                   v dst);
            Hashtbl.add seen dst ();
            let b = bits msg in
            if b > bandwidth then
              raise (Bandwidth_exceeded { node = v; dst; round; bits = b; bandwidth });
            if b > !max_bits_seen then max_bits_seen := b;
            incr total_messages;
            match adversary with
            | None -> schedule ~at:(round + 1) dst v msg
            | Some adv ->
                if Fault.is_crashed adv ~round dst then Fault.count_drop adv
                else (
                  match Fault.fate adv ~round ~src:v ~dst with
                  | Fault.Deliver -> schedule ~at:(round + 1) dst v msg
                  | Fault.Drop -> ()
                  | Fault.Duplicate d ->
                      schedule ~at:(round + 1) dst v msg;
                      schedule ~at:(round + 1 + d) dst v msg
                  | Fault.Delay d -> schedule ~at:(round + 1 + d) dst v msg))
          outgoing
      end
    done;
    let all_halted = Array.for_all (fun h -> h) halted in
    if all_halted && !pending = 0 then continue := false
  done;
  let all_halted = Array.for_all (fun h -> h) halted in
  if not all_halted || !pending > 0 then begin
    let running =
      Array.fold_left (fun acc h -> if h then acc else acc + 1) 0 halted
    in
    match on_incomplete with
    | `Ignore -> ()
    | `Warn ->
        Log.warn (fun m ->
            m
              "Sim.run: stopped at max_rounds=%d with %d node(s) still \
               running and %d message(s) in flight"
              max_rounds running !pending)
    | `Raise -> raise (Incomplete { max_rounds; running })
  end;
  let faults =
    match adversary with
    | None -> no_faults
    | Some adv ->
        {
          dropped = Fault.dropped adv;
          duplicated = Fault.duplicated adv;
          delayed = Fault.delayed adv;
          crashed = Fault.crashed_nodes adv ~upto_round:!rounds_used;
        }
  in
  ( states,
    {
      rounds_used = !rounds_used;
      total_messages = !total_messages;
      max_bits_seen = !max_bits_seen;
      all_halted;
      faults;
    } )
