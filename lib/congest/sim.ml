open Dsgraph

exception Bandwidth_exceeded of { node : int; bits : int; bandwidth : int }

type ('st, 'msg) program = {
  init : node:int -> neighbors:int array -> 'st;
  round :
    node:int ->
    state:'st ->
    inbox:(int * 'msg) list ->
    'st * (int * 'msg) list * bool;
}

type stats = {
  rounds_used : int;
  total_messages : int;
  max_bits_seen : int;
  all_halted : bool;
}

let run ?max_rounds ?bandwidth ~bits g program =
  let n = Graph.n g in
  let max_rounds = Option.value max_rounds ~default:((4 * n) + 16) in
  let bandwidth = Option.value bandwidth ~default:(Bits.bandwidth ~n) in
  let states = Array.init n (fun v -> program.init ~node:v ~neighbors:(Graph.neighbors g v)) in
  let inboxes = Array.make n [] in
  let next_inboxes = Array.make n [] in
  let halted = Array.make n false in
  let total_messages = ref 0 in
  let max_bits_seen = ref 0 in
  let rounds_used = ref 0 in
  let messages_in_flight = ref 0 in
  let continue = ref true in
  while !continue && !rounds_used < max_rounds do
    incr rounds_used;
    let sent_this_round = ref 0 in
    for v = 0 to n - 1 do
      let state, outgoing, halt =
        program.round ~node:v ~state:states.(v) ~inbox:inboxes.(v)
      in
      states.(v) <- state;
      halted.(v) <- halt;
      let seen = Hashtbl.create 4 in
      List.iter
        (fun (dst, msg) ->
          if not (Graph.is_edge g v dst) then
            invalid_arg
              (Printf.sprintf "Sim.run: node %d sent to non-neighbor %d" v dst);
          if Hashtbl.mem seen dst then
            invalid_arg
              (Printf.sprintf "Sim.run: node %d sent twice to %d in one round" v
                 dst);
          Hashtbl.add seen dst ();
          let b = bits msg in
          if b > bandwidth then
            raise (Bandwidth_exceeded { node = v; bits = b; bandwidth });
          if b > !max_bits_seen then max_bits_seen := b;
          incr total_messages;
          incr sent_this_round;
          next_inboxes.(dst) <- (v, msg) :: next_inboxes.(dst))
        outgoing
    done;
    for v = 0 to n - 1 do
      inboxes.(v) <- List.rev next_inboxes.(v);
      next_inboxes.(v) <- []
    done;
    messages_in_flight := !sent_this_round;
    let all_halted = Array.for_all (fun h -> h) halted in
    if all_halted && !messages_in_flight = 0 then continue := false
  done;
  let all_halted = Array.for_all (fun h -> h) halted in
  ( states,
    {
      rounds_used = !rounds_used;
      total_messages = !total_messages;
      max_bits_seen = !max_bits_seen;
      all_halted;
    } )
