(** Message-size bookkeeping. A CONGEST message is [B = O(log n)] bits; we
    charge each field of a message the number of bits it needs. *)

val int_bits : int -> int
(** Bits to represent a non-negative integer value ([int_bits 0 = 1]). *)

val id_bits : n:int -> int
(** Bits of a node identifier in an [n]-node network: [ceil(log2 n)],
    at least 1. *)

val bandwidth : n:int -> int
(** The standard CONGEST bandwidth used throughout: [2 * id_bits + 8]
    bits, enough for a message tag plus two identifiers/counters. *)
