(** Round-level event tracing for the CONGEST simulator.

    A {!sink} is an in-memory event buffer that {!Sim.simulate},
    {!Reliable.simulate}, and {!Cost.charge} report into when one is
    attached via {!Sim.Config.with_trace} (or [Cost.create ~trace]).
    Tracing is strictly opt-in and zero-cost when off: every emission
    site in the simulator is guarded by a [match sink with None -> ()]
    so that no event value is ever allocated unless a sink is attached.

    Events mirror the simulator's own accounting, so a trace can be
    checked against {!Sim.stats}: the number of [Message_sent] events
    equals [stats.total_messages], [Message_dropped] events equal
    [stats.faults.dropped], and [Round_start] events equal
    [stats.rounds_used] (test/test_trace.ml asserts exactly this).

    The JSONL emitters are hand-rolled (no JSON dependency): one object
    per line with a fixed field order, parseable by {!event_of_jsonl}
    and by any standard JSON reader. *)

type drop_reason =
  | Adversary  (** iid or burst loss injected by {!Fault.fate} *)
  | Crashed_destination  (** destination had crash-stopped *)

type event =
  | Round_start of { round : int }
  | Round_end of {
      round : int;
      sent : int;  (** program messages sent this round *)
      delivered : int;  (** messages moved into inboxes this round *)
      in_flight : int;  (** messages still scheduled for later rounds *)
      halted : int;  (** nodes currently voting to halt *)
    }
  | Message_sent of { round : int; src : int; dst : int; bits : int }
  | Message_delivered of { round : int; src : int; dst : int }
  | Message_dropped of {
      round : int;
      src : int;
      dst : int;
      reason : drop_reason;
    }
  | Message_duplicated of {
      round : int;
      src : int;
      dst : int;
      copy_delay : int;  (** extra rounds before the injected copy lands *)
    }
  | Message_delayed of { round : int; src : int; dst : int; delay : int }
  | Node_halted of { round : int; node : int }
      (** emitted on the transition into a halt vote only *)
  | Node_crashed of { round : int; node : int }
  | Bandwidth_high_water of { round : int; node : int; bits : int }
      (** a message strictly larger than any earlier one in the run *)
  | Cost_charged of {
      tag : string;
      rounds : int;
      messages : int;
      max_bits : int;
    }  (** step-granular {!Cost.charge} accounting, for engine-level runs *)
  | Span_enter of { path : string }
      (** a named phase opened; [path] is the full ["/"]-joined nesting,
          e.g. ["netdecomp/color=3/transform/level=7"]. Carries no
          wall-clock time so traces of identical runs stay byte-identical
          (see {!span_seconds}). *)
  | Span_exit of { path : string }  (** the matching close *)

type sink

val sink : ?capacity:int -> ?spans:bool -> ?spill:string -> unit -> sink
(** Fresh empty sink. At most [capacity] events are held in memory
    (default 1_000_000). Without [spill], later events are counted in
    {!truncated} but not stored, bounding memory on very long runs.
    With [~spill:path], a full buffer is instead appended to [path] as
    packed native-endian words (the in-memory layout verbatim) and
    recording continues — {!truncated} stays 0 and {!iter}/{!length}/
    {!events} replay the spilled prefix followed by the in-memory tail,
    so Span/Causal/Audit replay keep working past the old memory
    ceiling. The file is created lazily on first flush and deleted by
    {!clear}. [spans] (default [true]) controls whether
    {!enter_span}/{!exit_span} record anything — [~spans:false] gives a
    tracing-only sink with the span machinery compiled to no-ops, the
    baseline the overhead budget is measured against. *)

val spilled : sink -> int
(** Number of events flushed to the spill file ([0] without [~spill]). *)

val record : sink -> event -> unit

val emit_message_sent :
  sink -> round:int -> src:int -> dst:int -> bits:int -> unit
(** Equivalent to recording a {!constructor-Message_sent} event, but
    without constructing one. Events are stored packed as immediate
    ints, so this is a handful of unboxed stores with no allocation —
    the form the simulator uses on its per-message hot path. *)

val emit_message_delivered : sink -> round:int -> src:int -> dst:int -> unit
(** As {!emit_message_sent}, for {!constructor-Message_delivered}. *)

val enter_span : sink -> string -> unit
(** Opens a phase named by one path segment; the recorded
    {!constructor-Span_enter} carries the full path (the open ancestors
    joined with ["/"]). Paths are interned in the same side table as
    cost tags, so recording is packed-int like every other event. No
    clock is read here: wall-time/GC attribution happens only when a
    {!Resource.t} is attached via {!set_span_hooks}, and stays out of
    the event stream either way. Most callers want {!Span.enter}, which
    takes the [sink option] the run configuration carries. *)

val exit_span : sink -> unit
(** Closes the innermost open span.
    @raise Invalid_argument when no span is open. *)

val span_depth : sink -> int
(** Number of currently open spans. *)

val spans_enabled : sink -> bool

val span_path : sink -> int -> string
(** Resolves an interned span path id (as passed to the hooks) back to
    the full ["/"]-joined path. *)

val set_span_hooks :
  sink ->
  enter:(int -> unit) ->
  exit:(int -> unit) ->
  seconds:(unit -> (string * float * float) list) ->
  unit
(** Registers span observers: [enter]/[exit] fire from
    {!enter_span}/{!exit_span} with the interned path id, and [seconds]
    serves {!span_seconds}. Installed by {!Resource.attach}; reset to
    no-ops by {!clear} (path ids restart, so an attached recorder would
    go stale). *)

val span_seconds : sink -> (string * float * float) list
(** [(path, self, inclusive)] wall seconds accumulated over all closed
    activations of each span path, sorted by path — served by the
    attached {!Resource.t}, or [[]] when none is attached. Self
    excludes time spent in child spans; inclusive is enter-to-exit. *)

val length : sink -> int

val truncated : sink -> int
(** Events discarded because the sink hit its capacity. *)

val events : sink -> event list
(** All retained events in emission order. *)

val iter : (event -> unit) -> sink -> unit
val clear : sink -> unit

val pp_event : Format.formatter -> event -> unit

val event_to_jsonl : event -> string
(** One JSON object, no trailing newline, fields in a fixed order, e.g.
    [{"ev":"message_sent","round":3,"src":0,"dst":5,"bits":14}]. *)

val event_of_jsonl : string -> (event, string) result
(** Inverse of {!event_to_jsonl}; [Error] describes the first problem. *)

val to_jsonl : sink -> string
(** All retained events, one per line, each line ending in ['\n']. *)

val of_jsonl : string -> (event list, string) result
(** Parses the output of {!to_jsonl} (blank lines are skipped). *)

val save : ?dir:string -> file:string -> sink -> string
(** Writes {!to_jsonl} to [dir/file] (default dir ["bench_results"],
    created if missing) and returns the path written. *)
