open Dsgraph

type config = {
  inner_rounds : int;
  window : int;
  rto : int;
  heartbeat_every : int;
  liveness_timeout : int;
  backoff : float;
  max_rto : int;
  max_retries : int;
  jitter : int;
  jitter_seed : int;
}

let config ?(window = 2) ?(rto = 2) ?(heartbeat_every = 8)
    ?(liveness_timeout = 64) ?(backoff = 1.0) ?(max_rto = 0)
    ?(max_retries = 0) ?(jitter = 0) ?(jitter_seed = 0) ~inner_rounds () =
  if inner_rounds < 1 then invalid_arg "Reliable.config: inner_rounds < 1";
  if window < 1 then invalid_arg "Reliable.config: window < 1";
  if rto < 1 then invalid_arg "Reliable.config: rto < 1";
  if heartbeat_every < 1 then invalid_arg "Reliable.config: heartbeat_every < 1";
  if liveness_timeout <= rto + heartbeat_every then
    invalid_arg "Reliable.config: liveness_timeout too tight";
  if backoff < 1.0 then invalid_arg "Reliable.config: backoff < 1";
  if max_rto < 0 then invalid_arg "Reliable.config: negative max_rto";
  if max_rto > 0 && max_rto < rto then
    invalid_arg "Reliable.config: max_rto < rto";
  if max_retries < 0 then invalid_arg "Reliable.config: negative max_retries";
  if jitter < 0 then invalid_arg "Reliable.config: negative jitter";
  {
    inner_rounds;
    window;
    rto;
    heartbeat_every;
    liveness_timeout;
    backoff;
    max_rto;
    max_retries;
    jitter;
    jitter_seed;
  }

(* Deterministic integer mixer for retransmission jitter: a fixed
   function of (seed, node, neighbor, seq, attempt), so replays are
   byte-identical and independent of inbox arrival order. *)
let mix seed a b c d =
  let h = ref (seed lxor 0x2545F4914F6CDD1D) in
  let step x =
    h := !h lxor ((x * 0x9E3779B9) + (!h lsl 6) + (!h lsr 2));
    h := !h land max_int
  in
  step a;
  step b;
  step c;
  step d;
  !h

(* Current retransmission interval of a token: exponential backoff in
   the attempt count, capped by [max_rto], plus deterministic jitter.
   With the defaults (backoff 1, jitter 0) this is exactly [rto]. *)
let rto_for cfg ~node ~nbr ~seq ~attempts =
  let base =
    if cfg.backoff <= 1.0 then cfg.rto
    else
      let f = float_of_int cfg.rto *. (cfg.backoff ** float_of_int attempts) in
      if f >= 1e9 then 1_000_000_000 else int_of_float f
  in
  let base = if cfg.max_rto > 0 then min base cfg.max_rto else base in
  let j =
    if cfg.jitter > 0 then
      mix cfg.jitter_seed node nbr seq attempts mod (cfg.jitter + 1)
    else 0
  in
  max 1 (base + j)

let header_bits ~inner_rounds = (2 * Bits.int_bits (max 1 inner_rounds)) + 2

type 'msg frame = { ack : int; token : (int * 'msg option) option }

let frame_bits ~bits ~inner_rounds f =
  header_bits ~inner_rounds
  + match f.token with Some (_, Some m) -> bits m | _ -> 0

(* One queued token: produced at inner round [seq], last transmitted at
   outer round [last_tx] (-1 = never sent), retransmitted [attempts]
   times so far (the initial transmission is not an attempt). *)
type 'msg pkt = {
  seq : int;
  payload : 'msg option;
  mutable last_tx : int;
  mutable attempts : int;
}

type 'msg link = {
  mutable alive : bool;
  mutable outq : 'msg pkt list; (* seq order, length <= window *)
  mutable acked : int; (* all seq <= acked are acknowledged *)
  mutable recv_next : int; (* next in-order seq expected *)
  oob : (int, 'msg option) Hashtbl.t; (* out-of-order buffer *)
  delivered : (int, 'msg option) Hashtbl.t; (* in-order, not yet consumed *)
  mutable last_heard : int;
  mutable last_sent : int;
  mutable ack_dirty : bool;
}

type ('st, 'msg) node = {
  cfg : config;
  mutable inner_state : 'st;
  mutable k : int; (* inner rounds executed *)
  links : (int, 'msg link) Hashtbl.t;
  sorted_nbrs : int array; (* ascending, to reproduce Sim inbox order *)
  mutable outer : int;
  mutable retransmissions : int;
  mutable heartbeats : int;
  mutable detected : int list;
}

let inner_state st = st.inner_state
let finished st = st.k >= st.cfg.inner_rounds
let dead_neighbors st = List.sort compare st.detected

type transport_stats = {
  retransmissions : int;
  heartbeats : int;
  detected_dead : int list;
}

let transport_stats (nodes : ('st, 'msg) node array) =
  let retransmissions =
    Array.fold_left (fun a (st : ('st, 'msg) node) -> a + st.retransmissions) 0
      nodes
  in
  let heartbeats =
    Array.fold_left (fun a (st : ('st, 'msg) node) -> a + st.heartbeats) 0 nodes
  in
  let detected_dead =
    Array.fold_left (fun a st -> List.rev_append st.detected a) [] nodes
    |> List.sort_uniq compare
  in
  { retransmissions; heartbeats; detected_dead }

let link_of st u =
  match Hashtbl.find_opt st.links u with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Reliable: no link to %d" u)

let receive st u (f : 'msg frame) =
  let l = link_of st u in
  if l.alive then begin
    l.last_heard <- st.outer;
    if f.ack > l.acked then begin
      l.acked <- f.ack;
      l.outq <- List.filter (fun p -> p.seq > f.ack) l.outq
    end;
    match f.token with
    | None -> ()
    | Some (seq, payload) ->
        if seq < l.recv_next then
          (* duplicate or retransmission of a delivered token: our ack was
             lost, so re-ack instead of re-delivering *)
          l.ack_dirty <- true
        else if seq = l.recv_next then begin
          Hashtbl.replace l.delivered seq payload;
          l.recv_next <- seq + 1;
          let rec drain () =
            match Hashtbl.find_opt l.oob l.recv_next with
            | Some p ->
                Hashtbl.remove l.oob l.recv_next;
                Hashtbl.replace l.delivered l.recv_next p;
                l.recv_next <- l.recv_next + 1;
                drain ()
            | None -> ()
          in
          drain ();
          l.ack_dirty <- true
        end
        else begin
          Hashtbl.replace l.oob seq payload;
          l.ack_dirty <- true
        end
  end

(* A link is awaited when progress depends on hearing from it: tokens of
   ours unacknowledged, or we are blocked on its next token. *)
let awaited st l = l.outq <> [] || ((not (finished st)) && l.recv_next <= st.k)

(* Capped retry: with [max_retries > 0], a token retransmitted that many
   times without an acknowledgement condemns its link even before the
   silence timeout fires. *)
let retries_exhausted st l =
  st.cfg.max_retries > 0
  &&
  match l.outq with
  | p :: _ -> p.attempts >= st.cfg.max_retries
  | [] -> false

let detect_dead st =
  Array.iter
    (fun u ->
      let l = link_of st u in
      if
        l.alive && awaited st l
        && (st.outer - l.last_heard > st.cfg.liveness_timeout
           || retries_exhausted st l)
      then begin
        l.alive <- false;
        l.outq <- [];
        Hashtbl.reset l.oob;
        st.detected <- u :: st.detected
      end)
    st.sorted_nbrs

let can_execute st =
  st.k < st.cfg.inner_rounds
  && Array.for_all
       (fun u ->
         let l = link_of st u in
         (not l.alive)
         || (l.recv_next >= st.k + 1 && List.length l.outq < st.cfg.window))
       st.sorted_nbrs

let execute_inner (inner : ('st, 'msg) Sim.program) ~node st =
  let r = st.k + 1 in
  let inbox =
    Array.fold_left
      (fun acc u ->
        let l = link_of st u in
        match Hashtbl.find_opt l.delivered (r - 1) with
        | Some tok ->
            Hashtbl.remove l.delivered (r - 1);
            if l.alive then
              match tok with Some m -> (u, m) :: acc | None -> acc
            else acc
        | None -> acc)
      [] st.sorted_nbrs
    |> List.rev
  in
  let state', outgoing, _halt =
    inner.Sim.round ~node ~state:st.inner_state ~inbox
  in
  st.inner_state <- state';
  let sent = Hashtbl.create 4 in
  List.iter
    (fun (dst, m) ->
      if not (Hashtbl.mem st.links dst) then
        invalid_arg
          (Printf.sprintf "Reliable: node %d sent to non-neighbor %d" node dst);
      if Hashtbl.mem sent dst then
        invalid_arg
          (Printf.sprintf "Reliable: node %d sent twice to %d in one round"
             node dst);
      Hashtbl.add sent dst m)
    outgoing;
  Array.iter
    (fun u ->
      let l = link_of st u in
      if l.alive then
        l.outq <-
          l.outq
          @ [
              {
                seq = r;
                payload = Hashtbl.find_opt sent u;
                last_tx = -1;
                attempts = 0;
              };
            ])
    st.sorted_nbrs;
  st.k <- r

let frame_for st ~node ~nbr l =
  let token =
    match l.outq with
    | p :: _
      when p.last_tx >= 0
           && st.outer - p.last_tx
              >= rto_for st.cfg ~node ~nbr ~seq:p.seq ~attempts:p.attempts ->
        p.last_tx <- st.outer;
        p.attempts <- p.attempts + 1;
        st.retransmissions <- st.retransmissions + 1;
        Some (p.seq, p.payload)
    | _ -> (
        match List.find_opt (fun p -> p.last_tx < 0) l.outq with
        | Some p ->
            p.last_tx <- st.outer;
            Some (p.seq, p.payload)
        | None -> None)
  in
  match token with
  | Some _ -> Some { ack = l.recv_next - 1; token }
  | None ->
      if l.ack_dirty then Some { ack = l.recv_next - 1; token = None }
      else if
        (not (finished st)) && st.outer - l.last_sent >= st.cfg.heartbeat_every
      then begin
        st.heartbeats <- st.heartbeats + 1;
        Some { ack = l.recv_next - 1; token = None }
      end
      else None

let wrap cfg (inner : ('st, 'msg) Sim.program) :
    (('st, 'msg) node, 'msg frame) Sim.program =
  let init ~node ~neighbors =
    let links = Hashtbl.create (Array.length neighbors) in
    Array.iter
      (fun u ->
        Hashtbl.replace links u
          {
            alive = true;
            outq = [];
            acked = 0;
            recv_next = 1;
            oob = Hashtbl.create 4;
            delivered = Hashtbl.create 4;
            last_heard = 0;
            last_sent = 0;
            ack_dirty = false;
          })
      neighbors;
    let sorted_nbrs = Array.copy neighbors in
    Array.sort compare sorted_nbrs;
    {
      cfg;
      inner_state = inner.Sim.init ~node ~neighbors;
      k = 0;
      links;
      sorted_nbrs;
      outer = 0;
      retransmissions = 0;
      heartbeats = 0;
      detected = [];
    }
  in
  let round ~node ~state:st ~inbox =
    st.outer <- st.outer + 1;
    List.iter (fun (u, f) -> receive st u f) inbox;
    detect_dead st;
    while can_execute st do
      execute_inner inner ~node st
    done;
    let out =
      Array.fold_left
        (fun acc u ->
          let l = link_of st u in
          if not l.alive then acc
          else
            match frame_for st ~node ~nbr:u l with
            | Some f ->
                l.last_sent <- st.outer;
                l.ack_dirty <- false;
                (u, f) :: acc
            | None -> acc)
        [] st.sorted_nbrs
      |> List.rev
    in
    let halt =
      finished st
      && Array.for_all
           (fun u ->
             let l = link_of st u in
             (not l.alive) || l.outq = [])
           st.sorted_nbrs
    in
    (st, out, halt)
  in
  { Sim.init; round }

type 'st result = {
  states : 'st array;
  finished : bool array;
  dead_view : int list array;
  sim_stats : Sim.stats;
  transport : transport_stats;
}

let simulate ?(sim = Sim.Config.default) cfg ~bits g inner =
  (* Sim.Config transport knobs override the transport config, so
     harnesses can thread detection timeouts and windows through the one
     run-configuration record; None leaves cfg untouched. Re-validated
     through the smart constructor. *)
  let cfg =
    match
      ( sim.Sim.Config.transport_window,
        sim.Sim.Config.transport_rto,
        sim.Sim.Config.liveness_timeout )
    with
    | None, None, None -> cfg
    | w, r, l ->
        config ~inner_rounds:cfg.inner_rounds
          ~window:(Option.value w ~default:cfg.window)
          ~rto:(Option.value r ~default:cfg.rto)
          ~heartbeat_every:cfg.heartbeat_every
          ~liveness_timeout:(Option.value l ~default:cfg.liveness_timeout)
          ~backoff:cfg.backoff ~max_rto:cfg.max_rto
          ~max_retries:cfg.max_retries ~jitter:cfg.jitter
          ~jitter_seed:cfg.jitter_seed ()
  in
  let n = Graph.n g in
  let inner_bw =
    Option.value sim.Sim.Config.bandwidth ~default:(Bits.bandwidth ~n)
  in
  let hdr = header_bits ~inner_rounds:cfg.inner_rounds in
  let max_rounds =
    Option.value sim.Sim.Config.max_rounds
      ~default:((6 * cfg.inner_rounds) + (8 * cfg.liveness_timeout) + 64)
  in
  let config =
    {
      sim with
      Sim.Config.max_rounds = Some max_rounds;
      bandwidth = Some (inner_bw + hdr);
    }
  in
  let prog = wrap cfg inner in
  let nodes, sim_stats =
    Sim.simulate ~config
      ~bits:(frame_bits ~bits ~inner_rounds:cfg.inner_rounds)
      g prog
  in
  {
    states = Array.map inner_state nodes;
    finished = Array.map finished nodes;
    dead_view = Array.map dead_neighbors nodes;
    sim_stats;
    transport = transport_stats nodes;
  }

