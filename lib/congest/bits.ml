let int_bits v =
  if v < 0 then invalid_arg "Bits.int_bits: negative";
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  max 1 (go 0 v)

let id_bits ~n = max 1 (int_bits (max 0 (n - 1)))

let bandwidth ~n = (2 * id_bits ~n) + 8
