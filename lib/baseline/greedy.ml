open Dsgraph

type preset = Ls93_existential | Aglp | Gha19

let beta_of_preset preset ~n =
  let logn = Float.max 1.0 (log (float_of_int (max n 2)) /. log 2.0) in
  match preset with
  | Ls93_existential -> 2.0
  | Aglp -> Float.max 2.0 (2.0 ** sqrt (logn *. Float.max 1.0 (log logn /. log 2.0)))
  | Gha19 -> Float.max 2.0 (2.0 ** sqrt logn)

let carve ?cost ?beta ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Greedy.carve: epsilon must be in (0, 1)";
  let beta = match beta with Some b -> b | None -> 1.0 /. (1.0 -. epsilon) in
  if beta <= 1.0 then invalid_arg "Greedy.carve: beta must exceed 1";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let remaining = Mask.copy domain in
  let cluster_of = Array.make n (-1) in
  let next_cluster = ref 0 in
  (* Reusable BFS scratch: only the cells listed in [queue] are ever
     non-(-1), and each iteration resets exactly those — so carving a
     region costs its volume, not O(n), and 10^5 singleton components
     cost 10^5 steps rather than 10^11. *)
  let dist = Array.make (max 1 n) (-1) in
  let queue = Array.make (max 1 n) 0 in
  (* The smallest remaining id is monotone (nodes are only ever removed
     from [remaining]), so a cursor replaces the per-cluster
     Mask.to_list scan that made center selection O(n). *)
  let cursor = ref 0 in
  while Mask.count remaining > 0 do
    while not (Mask.mem remaining !cursor) do
      incr cursor
    done;
    let center = !cursor in
    let count =
      Bfs.distances_into ~mask:remaining g ~source:center ~dist ~queue
    in
    let maxd = dist.(queue.(count - 1)) in
    let cum = Array.make (maxd + 1) 0 in
    for i = 0 to count - 1 do
      let d = dist.(queue.(i)) in
      cum.(d) <- cum.(d) + 1
    done;
    for k = 1 to maxd do
      cum.(k) <- cum.(k) + cum.(k - 1)
    done;
    let ball r = if r > maxd then cum.(maxd) else cum.(r) in
    let rec find r =
      if r >= maxd then maxd
      else if float_of_int (ball (r + 1)) <= beta *. float_of_int (ball r) then r
      else find (r + 1)
    in
    let r = find 0 in
    (match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.charge c ~rounds:(r + 2) ~messages:(ball (r + 1))
          ~max_bits:(2 * Congest.Bits.id_bits ~n) "greedy.grow");
    let id = !next_cluster in
    incr next_cluster;
    for i = 0 to count - 1 do
      let v = queue.(i) in
      let d = dist.(v) in
      if d <= r then begin
        cluster_of.(v) <- id;
        Mask.remove remaining v
      end
      else if d = r + 1 then Mask.remove remaining v;
      dist.(v) <- -1
    done
  done;
  let clustering = Cluster.Clustering.make g ~cluster_of in
  Cluster.Carving.make clustering ~domain

let decompose ?cost ?(preset = Ls93_existential) g =
  let beta = beta_of_preset preset ~n:(Graph.n g) in
  let epsilon = 1.0 -. (1.0 /. beta) in
  let epsilon = Float.min 0.9 (Float.max 0.25 epsilon) in
  let carver ?cost ?domain g ~epsilon = carve ?cost ~beta ?domain g ~epsilon in
  Strongdecomp.Netdecomp.of_carver ?cost ~epsilon carver g
