let carve ?cost rng ?domain g ~epsilon =
  Strongdecomp.Transform.strong_carve ?cost
    ~weak:(Linial_saks.weak_carver rng)
    ?domain g ~epsilon

let decompose ?cost rng g =
  let carver ?cost ?domain g ~epsilon =
    fst (carve ?cost rng ?domain g ~epsilon)
  in
  Strongdecomp.Netdecomp.of_carver ?cost carver g
