(** Theorem 2.1 applied to a {e randomized} black box: the paper points
    out that its weak→strong transformation is new even for randomized
    algorithms (Elkin–Neiman's strong-diameter construction is a new
    algorithm, not a transformation). Composing the transformation with
    the Linial–Saks weak carving demonstrates exactly that: a randomized
    strong-diameter ball carving obtained {e purely} through Theorem 2.1.

    Since the black box has [R = O(log n/ε)] depth trees, the resulting
    strong diameter is [2·R(n, ε/(2 log n)) + O(log n/ε) = O(log² n/ε)] —
    one log factor better than the deterministic Theorem 2.2, matching the
    general statement of Theorem 2.1. *)

val carve :
  ?cost:Congest.Cost.t ->
  Dsgraph.Rng.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * Strongdecomp.Transform.stats
(** Randomized strong-diameter ball carving via Theorem 2.1 over
    Linial–Saks. *)

val decompose :
  ?cost:Congest.Cost.t ->
  Dsgraph.Rng.t ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** Randomized strong-diameter network decomposition: [O(log n)] colors,
    [O(log² n)]-shaped cluster diameter. *)
