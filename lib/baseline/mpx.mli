(** Miller–Peng–Xu (2013) random-shift clustering and the Elkin–Neiman
    (2016) style strong-diameter carving/decomposition built on it — the
    Table 1/2 randomized {e strong} rows.

    Every node [u] draws a shift [δ_u ~ Exp(β)]; node [v] is assigned to
    the center minimizing [dist(u, v) - δ_u]. Along a key-realizing
    shortest path every node is assigned to the same center, so clusters
    induce connected subgraphs of radius [O(log n / β)] w.h.p.

    For the carving we additionally kill every node whose best and
    second-best keys differ by at most 2 hops; surviving clusters are
    pairwise non-adjacent, and by the exponential padding property a node
    is killed with probability [O(β)], independent of its degree. A Las
    Vegas retry enforces the dead fraction. After the kill a cluster may
    split; we emit its connected components as separate clusters (a small
    deviation from EN16, measured rather than proven: the diameter shape
    stays [O(log n/ε)], see EXPERIMENTS.md). *)

val partition :
  Dsgraph.Rng.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  beta:float ->
  Cluster.Clustering.t
(** The plain MPX partition: every domain node assigned to a center;
    clusters induce connected subgraphs. No dead nodes, clusters may be
    adjacent. *)

val carve :
  ?cost:Congest.Cost.t ->
  ?max_retries:int ->
  Dsgraph.Rng.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t
(** Strong-diameter ball carving: non-adjacent connected clusters, dead
    fraction [<= ε] (enforced by retry; [β = ε/6]). *)

val decompose :
  ?cost:Congest.Cost.t ->
  Dsgraph.Rng.t ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** [O(log n)]-color strong-diameter decomposition via repeated carving
    with [ε = 1/2]. *)
