open Dsgraph

let max_radius ~n ~epsilon =
  let nf = float_of_int (max n 2) in
  max 2 (int_of_float (Float.ceil (2.0 *. log nf /. epsilon)))

let attempt rng g ~domain ~epsilon =
  let n = Graph.n g in
  let cap = max_radius ~n:(Mask.count domain) ~epsilon in
  (* winner.(v) = (priority u, r_u - dist(v,u)) with the largest priority;
     slack >= 1 means interior, slack = 0 means boundary *)
  let winner = Array.make n None in
  let max_r = ref 0 in
  (* truncated BFS per center: total work is the sum of sampled ball
     sizes, which is O(n/ε) in expectation rather than O(n·m) *)
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  Mask.iter domain (fun u ->
      let r = min cap (Rng.geometric rng epsilon) in
      if r > !max_r then max_r := r;
      let touched = ref [ u ] in
      dist.(u) <- 0;
      Queue.add u queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        (let slack = r - dist.(v) in
         match winner.(v) with
         | Some (u', _) when u' > u -> ()
         | _ -> winner.(v) <- Some (u, slack));
        if dist.(v) < r then
          Graph.iter_neighbors g v (fun w ->
              if Mask.mem domain w && dist.(w) = -1 then begin
                dist.(w) <- dist.(v) + 1;
                touched := w :: !touched;
                Queue.add w queue
              end)
      done;
      List.iter (fun v -> dist.(v) <- -1) !touched);
  let cluster_of = Array.make n (-1) in
  Mask.iter domain (fun v ->
      match winner.(v) with
      | Some (u, slack) when slack >= 1 -> cluster_of.(v) <- u
      | _ -> ());
  (cluster_of, !max_r)

let carve ?cost ?(max_retries = 60) rng ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Linial_saks.carve: epsilon must be in (0, 1)";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let rec go k =
    if k >= max_retries then
      failwith "Linial_saks.carve: retries exhausted (unlucky sampling)";
    let cluster_of, max_r = attempt rng g ~domain ~epsilon in
    let clustering = Cluster.Clustering.make g ~cluster_of in
    let carving = Cluster.Carving.make clustering ~domain in
    (* distributed implementation: radius-capped priority flooding, one
       wave out and one wave back *)
    (match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.charge c
          ~rounds:((2 * max_r) + 2)
          ~messages:(Mask.count domain)
          ~max_bits:(2 * Congest.Bits.id_bits ~n)
          "linial_saks.carve");
    if Cluster.Carving.dead_fraction carving <= epsilon then carving
    else go (k + 1)
  in
  go 0

let decompose ?cost rng g =
  let carver ?cost ?domain g ~epsilon = carve ?cost rng ?domain g ~epsilon in
  Strongdecomp.Netdecomp.of_carver ?cost carver g

(* Shortest-path Steiner tree from center [u] covering [members], built
   from a truncated BFS in G[domain]; paths may leave the cluster. *)
let steiner_tree g ~domain ~center ~members ~radius =
  let parent = ref [] in
  let seen = Hashtbl.create 64 in
  let bfs_parent = Hashtbl.create 64 in
  let dist = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace dist center 0;
  Queue.add center queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let dv = Hashtbl.find dist v in
    if dv < radius then
      Graph.iter_neighbors g v (fun w ->
          if Mask.mem domain w && not (Hashtbl.mem dist w) then begin
            Hashtbl.replace dist w (dv + 1);
            Hashtbl.replace bfs_parent w v;
            Queue.add w queue
          end)
  done;
  let add v p =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      parent := (v, p) :: !parent
    end
  in
  add center center;
  List.iter
    (fun m ->
      (* walk the BFS chain from the member back to the center *)
      let rec walk v =
        if not (Hashtbl.mem seen v) then begin
          let p = Hashtbl.find bfs_parent v in
          add v p;
          walk p
        end
      in
      if m <> center then walk m)
    members;
  { Cluster.Steiner.root = center; parent = !parent }

let carve_with_trees ?cost ?(max_retries = 60) rng ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Linial_saks.carve_with_trees: epsilon must be in (0, 1)";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let cap = max_radius ~n:(Mask.count domain) ~epsilon in
  let rec go k =
    if k >= max_retries then
      failwith "Linial_saks.carve_with_trees: retries exhausted";
    let cluster_of, max_r = attempt rng g ~domain ~epsilon in
    (match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.charge c
          ~rounds:((2 * max_r) + 2)
          ~messages:(Mask.count domain)
          ~max_bits:(2 * Congest.Bits.id_bits ~n)
          "linial_saks.carve");
    (* group members by center, preserving first-appearance order so the
       forest indexing matches [Clustering.make]'s normalization *)
    let members : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let centers_in_order = ref [] in
    for v = 0 to n - 1 do
      let u = cluster_of.(v) in
      if u >= 0 then
        match Hashtbl.find_opt members u with
        | Some l -> l := v :: !l
        | None ->
            Hashtbl.replace members u (ref [ v ]);
            centers_in_order := u :: !centers_in_order
    done;
    let centers = Array.of_list (List.rev !centers_in_order) in
    let clustering = Cluster.Clustering.make g ~cluster_of in
    let carving = Cluster.Carving.make clustering ~domain in
    if Cluster.Carving.dead_fraction carving > epsilon then go (k + 1)
    else
      let forest =
        Array.map
          (fun u ->
            steiner_tree g ~domain ~center:u
              ~members:!(Hashtbl.find members u)
              ~radius:cap)
          centers
      in
      (carving, forest)
  in
  go 0

let weak_carver rng : Strongdecomp.Transform.weak_carver =
 fun ?cost g ~domain ~epsilon ->
  let carving, forest = carve_with_trees ?cost rng ~domain g ~epsilon in
  let depth =
    Array.fold_left (fun acc t -> max acc (Cluster.Steiner.depth t)) 0 forest
  in
  let congestion = Cluster.Steiner.congestion g forest in
  {
    Strongdecomp.Transform.clustering = carving.Cluster.Carving.clustering;
    forest;
    depth;
    congestion;
  }
