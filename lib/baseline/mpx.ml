open Dsgraph

(* Multi-source Dijkstra on unit edges with fractional (shift) head
   starts. Returns per node the best (key, center) and the second-best key
   reaching it from a different center. *)
let shifted_voronoi rng g ~domain ~beta =
  let n = Graph.n g in
  let best_key = Array.make n infinity in
  let best_center = Array.make n (-1) in
  let second_key = Array.make n infinity in
  (* heap of (key, node, center) as a sorted set *)
  let module Pq = Set.Make (struct
    type t = float * int * int

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  let max_shift = ref 0.0 in
  Mask.iter domain (fun u ->
      let shift = Rng.exponential rng beta in
      if shift > !max_shift then max_shift := shift;
      pq := Pq.add (-.shift, u, u) !pq);
  while not (Pq.is_empty !pq) do
    let ((key, v, center) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if best_center.(v) = -1 then begin
      best_key.(v) <- key;
      best_center.(v) <- center;
      Graph.iter_neighbors g v (fun w ->
          if Mask.mem domain w && best_center.(w) = -1 then
            pq := Pq.add (key +. 1.0, w, center) !pq)
    end
    else if center <> best_center.(v) && key < second_key.(v) then begin
      second_key.(v) <- key
      (* do not relax further: one extra layer of propagation below *)
    end
  done;
  (* The pruned Dijkstra above only records second-best keys arriving at
     the frontier; propagate one relaxation sweep so that every node knows
     a 2-hop-accurate second-best estimate, which is what the gap <= 2
     kill rule needs. *)
  let changed = ref true in
  let guard = ref 0 in
  while !changed && !guard < 4 do
    incr guard;
    changed := false;
    Mask.iter domain (fun v ->
        Graph.iter_neighbors g v (fun w ->
            if Mask.mem domain w then begin
              let via =
                if best_center.(w) <> best_center.(v) then best_key.(w) +. 1.0
                else second_key.(w) +. 1.0
              in
              if via < second_key.(v) then begin
                second_key.(v) <- via;
                changed := true
              end
            end))
  done;
  (best_key, best_center, second_key, !max_shift)

let partition rng ?domain g ~beta =
  if beta <= 0.0 then invalid_arg "Mpx.partition: beta must be positive";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let _, best_center, _, _ = shifted_voronoi rng g ~domain ~beta in
  Cluster.Clustering.make g ~cluster_of:best_center

let carve ?cost ?(max_retries = 60) rng ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Mpx.carve: epsilon must be in (0, 1)";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let beta = epsilon /. 6.0 in
  let rec go k =
    if k >= max_retries then
      failwith "Mpx.carve: retries exhausted (unlucky sampling)";
    let best_key, best_center, second_key, max_shift =
      shifted_voronoi rng g ~domain ~beta
    in
    let survivor = Array.make n (-1) in
    Mask.iter domain (fun v ->
        if second_key.(v) -. best_key.(v) > 2.0 then
          survivor.(v) <- best_center.(v));
    (* surviving parts of a cluster may have split: emit components *)
    let alive = Mask.empty n in
    Mask.iter domain (fun v -> if survivor.(v) >= 0 then Mask.add alive v);
    let comp_ids, _ = Components.component_ids ~mask:alive g in
    let clustering = Cluster.Clustering.make g ~cluster_of:comp_ids in
    let carving = Cluster.Carving.make clustering ~domain in
    (match cost with
    | None -> ()
    | Some c ->
        let radius = int_of_float (Float.ceil max_shift) + 2 in
        Congest.Cost.charge c
          ~rounds:((2 * radius) + 4)
          ~messages:(Mask.count domain)
          ~max_bits:(3 * Congest.Bits.id_bits ~n)
          "mpx.carve");
    if Cluster.Carving.dead_fraction carving <= epsilon then carving
    else go (k + 1)
  in
  go 0

let decompose ?cost rng g =
  let carver ?cost ?domain g ~epsilon = carve ?cost rng ?domain g ~epsilon in
  Strongdecomp.Netdecomp.of_carver ?cost carver g
