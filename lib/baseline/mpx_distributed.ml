open Dsgraph

type result = {
  clustering : Cluster.Clustering.t;
  sim_stats : Congest.Sim.stats;
  shift_cap : int;
}

let cap ~n ~beta =
  max 2 (int_of_float (Float.ceil (4.0 *. log (float_of_int (max n 2)) /. beta)))

let shifts ?(seed = 1) g ~beta =
  let n = Graph.n g in
  let cap = cap ~n ~beta in
  let p = 1.0 -. exp (-.beta) in
  let rng = Rng.create (seed + 17) in
  (Array.init n (fun _ -> min cap (Rng.geometric rng p)), cap)

(* Centralized oracle: synchronous wavefront with start times cap - δ_u,
   ties to the smallest center id among same-round arrivals. *)
let reference_of_shifts g (delta, cap) =
  let n = Graph.n g in
  let center = Array.make n (-1) in
  let frontier = ref [] in
  for r = 0 to cap + n do
    (* wave arrivals from the previous round *)
    let arrivals = Hashtbl.create 16 in
    List.iter
      (fun v ->
        Graph.iter_neighbors g v (fun w ->
            if center.(w) = -1 then
              let c = center.(v) in
              match Hashtbl.find_opt arrivals w with
              | Some c' when c' <= c -> ()
              | _ -> Hashtbl.replace arrivals w c))
      !frontier;
    (* own starts compete with arrivals this round *)
    for v = 0 to n - 1 do
      if center.(v) = -1 && cap - delta.(v) = r then begin
        match Hashtbl.find_opt arrivals v with
        | Some c when c <= v -> ()
        | _ -> Hashtbl.replace arrivals v v
      end
    done;
    let next = ref [] in
    Hashtbl.iter
      (fun v c ->
        if center.(v) = -1 then begin
          center.(v) <- c;
          next := v :: !next
        end)
      arrivals;
    frontier := !next
  done;
  center

let reference ?seed g ~beta = reference_of_shifts g (shifts ?seed g ~beta)

type nstate = {
  mutable center : int;
  mutable announced : bool;
  start_round : int;
  mutable round : int;
}

let partition ?(seed = 1) ?adversary ?conformance ?trace g ~beta =
  if beta <= 0.0 then invalid_arg "Mpx_distributed.partition: beta must be positive";
  let n = Graph.n g in
  let delta, shift_cap = shifts ~seed g ~beta in
  let id_bits = Congest.Bits.id_bits ~n in
  let program =
    {
      Congest.Sim.init =
        (fun ~node ~neighbors:_ ->
          {
            center = -1;
            announced = false;
            start_round = shift_cap - delta.(node) + 1;
            round = 0;
          });
      round =
        (fun ~node ~state:st ~inbox ->
          st.round <- st.round + 1;
          (* adopt the best wave among this round's arrivals and our own
             start, if still unclaimed *)
          if st.center = -1 then begin
            let best = ref max_int in
            List.iter (fun (_, c) -> if c < !best then best := c) inbox;
            if st.round = st.start_round && node < !best then best := node;
            if !best < max_int then st.center <- !best
          end;
          if st.center >= 0 && not st.announced then begin
            st.announced <- true;
            let out =
              Array.to_list
                (Array.map (fun nb -> (nb, st.center)) (Graph.neighbors g node))
            in
            (st, out, false)
          end
          else (st, [], st.center >= 0));
    }
  in
  let config =
    {
      Congest.Sim.Config.default with
      max_rounds = Some (shift_cap + (4 * n) + 16);
      adversary;
      trace;
    }
  in
  let program =
    match conformance with
    | None -> program
    | Some c -> c.Congest.Conformance.instrument program
  in
  let states, sim_stats =
    Congest.Span.with_span trace "mpx_partition" (fun () ->
        Congest.Sim.simulate ~config ~bits:(fun _ -> id_bits) g program)
  in
  let cluster_of = Array.map (fun st -> st.center) states in
  {
    clustering = Cluster.Clustering.make g ~cluster_of;
    sim_stats;
    shift_cap;
  }

let matches_reference ?(seed = 1) g ~beta =
  let r = partition ~seed g ~beta in
  let oracle = reference ~seed g ~beta in
  let n = Graph.n g in
  (* Clustering normalizes ids, so compare partitions up to a bijective
     relabeling *)
  let ok = ref true in
  let map = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let a = Cluster.Clustering.cluster_of r.clustering v and b = oracle.(v) in
    (match Hashtbl.find_opt map a with
    | None -> Hashtbl.replace map a b
    | Some b' -> if b' <> b then ok := false);
    if a = -1 || b = -1 then ok := false
  done;
  (* injectivity of the relabeling *)
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ b ->
      if Hashtbl.mem seen b then ok := false else Hashtbl.replace seen b ())
    map;
  !ok
