(** A {e genuinely distributed} Linial–Saks carving, run on the true
    synchronous CONGEST simulator ({!Congest.Sim}) with [O(log n)]-bit
    messages — no cost-model shortcuts.

    Every node samples a radius [r_v ~ Geometric(ε)] (capped) and floods
    the pair [(priority = id, slack)]; each node keeps the
    lexicographically largest pair it has seen and re-broadcasts it with
    the slack decremented while positive. A node whose final slack is
    [>= 1] joins the cluster of its winning priority; slack [0] means it
    lies on the winner's boundary and dies.

    Separation is a purely local consequence of the flood rule: an
    interior node forwards [(p, s-1)] to every neighbor, so two adjacent
    interior nodes must agree on the winning priority.

    This module exists to {e anchor the cost model}: the step-granular
    [Linial_saks.carve] charges [2·max_radius + 2] rounds per attempt, and
    the test suite checks the simulator's actual round count agrees. *)

val attempt :
  ?conformance:Congest.Conformance.instrumentor ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Rng.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  int array * Congest.Sim.stats
(** One carving attempt on the fault-free simulator: per-node cluster
    labels ([-1] = dead/boundary) and the measured statistics. Exposed for
    the fault experiments, which compare it against {!attempt_reliable}
    run from an equal RNG state. A [conformance] instrumentor wraps the
    node program with the model-invariant checks; the program is pure and
    order-invariant (its inbox fold is a lexicographic max), so it may be
    instrumented with [~order_invariant:true]. *)

type reliable_attempt = {
  cluster_of : int array;
      (** labels as in {!attempt}; crashed nodes are forced to [-1] *)
  crashed : int list;  (** ground truth from the fault schedule *)
  finished : bool array;  (** per node: executed all inner rounds *)
  dead_view : int list array;  (** per node: neighbors it declared dead *)
  sim_stats : Congest.Sim.stats;
  transport : Congest.Reliable.transport_stats;
  inner_rounds : int;
}

val attempt_reliable :
  ?adversary:Congest.Fault.t ->
  ?conformance:Congest.Conformance.instrumentor ->
  ?liveness_timeout:int ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Rng.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  reliable_attempt
(** The same attempt wrapped in {!Congest.Reliable} and run against an
    optional fault adversary, with [inner_rounds = 2·max_radius + 8].
    With no adversary (or one with all rates zero and no crashes) the
    resulting [cluster_of] is {e identical} to {!attempt} run from an
    equal RNG state — zero-fault transparency. *)

val carve :
  ?max_retries:int ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Rng.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * Congest.Sim.stats
(** Runs the node program under [Sim.simulate] (Las Vegas retry on the dead
    fraction, default 60 attempts) and returns the carving together with
    the {e measured} simulator statistics (rounds, messages, max message
    bits). A [trace] sink sees each retry under an
    [ls_carve/attempt=<k>] span. @raise Failure when retries are
    exhausted. *)

type decompose_stats = {
  total_rounds : int;  (** summed over the color repetitions *)
  total_messages : int;
  max_bits : int;
}

val decompose :
  ?max_retries:int ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Rng.t ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t * decompose_stats
(** A complete network decomposition computed {e entirely} on the
    synchronous simulator: repeat the distributed carving with [ε = 1/2]
    on the (materialized) subgraph induced by the not-yet-clustered nodes,
    coloring repetition [i]'s clusters with color [i]. Every message of
    every round fits the CONGEST bandwidth — the end-to-end
    small-messages execution of a full decomposition. A [trace] sink
    sees color repetition [i] under an [ls_decompose/color=<i>] span. *)
