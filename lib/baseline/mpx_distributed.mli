(** The Miller–Peng–Xu random-shift partition as a genuinely distributed
    CONGEST node program, using {e integer} (geometric) shifts so the
    wavefront semantics are exact in synchronous rounds: node [u] starts
    its wave at round [cap - δ_u] and every node joins the first wave to
    reach it (ties to the smallest center identifier). First arrival
    minimizes [dist(u, v) - δ_u], so this is MPX with geometric instead of
    exponential shifts — the discretization the synchronous model
    natively supports.

    The module contains its own centralized reference implementation with
    identical tie-breaking; the test suite asserts the simulated
    assignment matches it exactly. *)

type result = {
  clustering : Cluster.Clustering.t;  (** all domain nodes assigned *)
  sim_stats : Congest.Sim.stats;
  shift_cap : int;
}

val partition :
  ?seed:int ->
  ?adversary:Congest.Fault.t ->
  ?conformance:Congest.Conformance.instrumentor ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Graph.t ->
  beta:float ->
  result
(** [partition g ~beta] with shifts [~ Geometric(1 - e^{-β})], capped at
    [O(log n / β)]. Clusters induce connected subgraphs of radius
    [O(log n/β)] w.h.p. Under an [adversary] the waves are no longer
    exact (dropped announcements are not resent) — useful only for
    observing fault effects through a [trace] sink. *)

val reference : ?seed:int -> Dsgraph.Graph.t -> beta:float -> int array
(** The centralized assignment (per-node center) the simulation must
    reproduce, computed with the same seed, shifts and tie-breaking. *)

val matches_reference : ?seed:int -> Dsgraph.Graph.t -> beta:float -> bool
