(** The Awerbuch–Berger–Cowen–Peleg (1996) weak→strong transformation —
    the paper's foil. It achieves strong diameter by {e gathering whole
    cluster topologies} to cluster centers and carving centrally, which
    requires messages proportional to the cluster's edge count: perfectly
    fine in the LOCAL model, but not a CONGEST algorithm. We implement it
    and {e measure} the maximum message size; experiment F.MSG contrasts
    it with the [O(log n)]-bit messages of the paper's transformation.

    Recipe (Section 1.4 of the paper): run a weak-diameter decomposition
    on the power graph [G^{2d}], [d = ceil(log2 n)], so same-color
    clusters are [> 2d] apart in [G]. Process colors in order; per
    cluster, gather the topology of the cluster plus its [d]-hop
    neighborhood at the center (disjoint across same-color clusters) and
    run the sequential carving: repeatedly pick an unprocessed cluster
    node [v], find the smallest [r] with
    [|B_{r+1}(v)| <= (1/(1-ε))·|B_r(v)|] among the still-alive nodes
    ([r <= d] always suffices), emit [B_r(v)] as a strong cluster and kill
    the next layer. *)

type info = {
  max_message_bits : int;
      (** the headline number: bits of the largest topology-gathering
          message, [Θ(cluster edges · log n)] *)
  power_colors : int;  (** colors of the decomposition on [G^{2d}] *)
  rounds : int;
}

val carve :
  ?cost:Congest.Cost.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * info
(** Strong-diameter ball carving with dead fraction [<= ε] and cluster
    diameter [<= 2·log_{1/(1-ε)} n]. *)

val decompose :
  ?cost:Congest.Cost.t -> Dsgraph.Graph.t -> Cluster.Decomposition.t * info
(** Strong decomposition via repeated carving with [ε = 1/2]; [info]
    aggregates the maxima across repetitions. *)
