(** Sequential greedy ball-growing decomposition — the classic
    Awerbuch-style construction behind the [LS93] existential
    [(O(log n), O(log n))] bound and, with larger growth bases, the
    quality profile of the [AGLP89]/[PS92]/[Gha19] [2^{O(√log n)}]
    deterministic rows of Table 1.

    Per color: repeatedly pick the smallest-identifier remaining node,
    grow its ball until a radius [r] with [|B_{r+1}| <= β·|B_r|] (found
    within [log_β n] steps), cluster [B_r], and postpone the boundary
    layer to later colors. Each color clusters at least a [1/β] fraction
    of what it touches, so there are [O(β log n)] colors with clusters of
    strong diameter [O(log_β n)] — a (colors vs diameter) trade-off dial.

    These baselines exist as {e output-quality} comparators; their round
    columns in Table 1 are analytical (the originals' contribution is
    round complexity, not output quality). *)

type preset =
  | Ls93_existential  (** [β = 2]: [(O(log n), O(log n))] *)
  | Aglp  (** [β = 2^√(log n · log log n)] *)
  | Gha19  (** [β = 2^√(log n)] *)

val beta_of_preset : preset -> n:int -> float

val carve :
  ?cost:Congest.Cost.t ->
  ?beta:float ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t
(** One greedy pass ([β] defaults to [1/(1-ε)], so that at most an [ε]
    fraction of the domain is dead): non-adjacent connected clusters of
    strong diameter [<= 2·log_β n]. *)

val decompose :
  ?cost:Congest.Cost.t ->
  ?preset:preset ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** Full colored decomposition (default preset {!Ls93_existential}). *)
