open Dsgraph

type info = { max_message_bits : int; power_colors : int; rounds : int }

let log2_ceil n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (2 * k) in
  max 1 (go 0 1)

(* edges of G with both endpoints in the given node set *)
let edges_within g set =
  let mask = Mask.of_list (Graph.n g) set in
  Graph.fold_edges g ~init:0 ~f:(fun acc u v ->
      if Mask.mem mask u && Mask.mem mask v then acc + 1 else acc)

let carve ?cost ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Abcp.carve: epsilon must be in (0, 1)";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let d = log2_ceil (max 2 (Mask.count domain)) in
  let id_bits = Congest.Bits.id_bits ~n in
  (* Weak-diameter decomposition of the power graph G^{2d} restricted to
     the domain. Building G^{2d} itself needs big messages in CONGEST;
     we account for it below. *)
  let power = Power.power g (2 * d) in
  let decomp =
    Strongdecomp.Netdecomp.of_carver
      (fun ?cost ?domain g ~epsilon ->
        ignore cost;
        let r = Weakdiam.Weak_carving.carve ?domain g ~epsilon in
        r.carving)
      ~domain power
  in
  let clustering = Cluster.Decomposition.clustering decomp in
  let colors = Cluster.Decomposition.num_colors decomp in
  let growth = 1.0 /. (1.0 -. epsilon) in
  let alive = Mask.copy domain in
  let output = Array.make n (-1) in
  let next_cluster = ref 0 in
  let max_bits = ref 0 in
  let rounds = ref 0 in
  (* power-graph construction: every node learns its 2d-ball topology *)
  Mask.iter domain (fun v ->
      let ball = Bfs.ball ~mask:domain g ~center:v ~radius:(2 * d) in
      let bits = (2 + edges_within g ball) * 2 * id_bits in
      if bits > !max_bits then max_bits := bits);
  rounds := !rounds + (2 * d);
  for color = 0 to colors - 1 do
    (* clusters of one color are processed simultaneously; their gathered
       regions (cluster + d-hop neighborhood) are disjoint *)
    let round_this_color = ref 0 in
    List.iter
      (fun c ->
        let members =
          List.filter
            (fun v -> Mask.mem alive v)
            (Cluster.Clustering.members clustering c)
        in
        if members <> [] then begin
          (* gather: cluster plus d-hop neighborhood, topology to center *)
          let region = Bfs.multi_distances ~mask:alive g ~sources:members in
          let region_nodes =
            List.filter
              (fun v -> region.(v) >= 0 && region.(v) <= d)
              (Graph.nodes g)
          in
          let bits = (2 + edges_within g region_nodes) * 2 * id_bits in
          if bits > !max_bits then max_bits := bits;
          round_this_color := max !round_this_color (2 * d);
          (* centralized sequential carving inside the gathered region *)
          let pending = ref members in
          while
            match !pending with
            | [] -> false
            | v :: rest ->
                if not (Mask.mem alive v) then begin
                  pending := rest;
                  true
                end
                else begin
                  let dist = Bfs.distances ~mask:alive g ~source:v in
                  let maxd_local = Array.fold_left max 0 dist in
                  let cum = Array.make (maxd_local + 1) 0 in
                  Array.iter
                    (fun x -> if x >= 0 then cum.(x) <- cum.(x) + 1)
                    dist;
                  for k = 1 to maxd_local do
                    cum.(k) <- cum.(k) + cum.(k - 1)
                  done;
                  let ball r = if r > maxd_local then cum.(maxd_local) else cum.(r) in
                  let rec find r =
                    if r >= maxd_local then maxd_local
                    else if
                      float_of_int (ball (r + 1))
                      <= growth *. float_of_int (ball r)
                    then r
                    else find (r + 1)
                  in
                  let r = find 0 in
                  let id = !next_cluster in
                  incr next_cluster;
                  for w = 0 to n - 1 do
                    if dist.(w) >= 0 && dist.(w) <= r then begin
                      output.(w) <- id;
                      Mask.remove alive w
                    end
                    else if dist.(w) = r + 1 then Mask.remove alive w
                  done;
                  pending := rest;
                  true
                end
          do
            ()
          done
        end)
      (Cluster.Decomposition.clusters_of_color decomp color);
    rounds := !rounds + !round_this_color + 1
  done;
  (match cost with
  | None -> ()
  | Some c ->
      Congest.Cost.charge c ~rounds:!rounds ~messages:(Mask.count domain)
        ~max_bits:!max_bits "abcp.carve");
  let out_clustering = Cluster.Clustering.make g ~cluster_of:output in
  let carving = Cluster.Carving.make out_clustering ~domain in
  ( carving,
    { max_message_bits = !max_bits; power_colors = colors; rounds = !rounds } )

let decompose ?cost g =
  let acc = ref { max_message_bits = 0; power_colors = 0; rounds = 0 } in
  let carver ?cost ?domain g ~epsilon =
    let carving, info = carve ?cost ?domain g ~epsilon in
    acc :=
      {
        max_message_bits = max !acc.max_message_bits info.max_message_bits;
        power_colors = max !acc.power_colors info.power_colors;
        rounds = !acc.rounds + info.rounds;
      };
    carving
  in
  let d = Strongdecomp.Netdecomp.of_carver ?cost carver g in
  (d, !acc)
