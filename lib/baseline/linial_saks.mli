(** Linial–Saks (1993) randomized weak-diameter ball carving and network
    decomposition — the Table 1/2 randomized weak rows.

    One carving round: every domain node [u] samples a radius
    [r_u ~ Geometric(ε)] capped at [O(log n)]; every node [v] elects, among
    the nodes [u] whose sampled ball [B_{r_u}(u)] covers it, the one with
    the largest identifier. If [dist(v, u) < r_u] (strict interior), [v]
    joins [u]'s cluster; if [dist(v, u) = r_u] it dies. By memorylessness
    of the geometric distribution each node dies with probability [<= ε];
    a Las Vegas retry enforces the bound per invocation. Same-color
    clusters are non-adjacent by the standard priority argument; clusters
    have weak diameter [<= 2·r_max = O(log n / ε)]. *)

val carve :
  ?cost:Congest.Cost.t ->
  ?max_retries:int ->
  Dsgraph.Rng.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t
(** One carving invocation; retries the sampling (default 60 attempts)
    until the dead fraction is at most [ε].
    @raise Failure if no attempt succeeds. *)

val max_radius : n:int -> epsilon:float -> int
(** The radius cap [O(log n/ε)]. *)

val decompose :
  ?cost:Congest.Cost.t ->
  Dsgraph.Rng.t ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** [O(log n)]-color weak-diameter network decomposition via repeated
    carving with [ε = 1/2]. *)

val carve_with_trees :
  ?cost:Congest.Cost.t ->
  ?max_retries:int ->
  Dsgraph.Rng.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * Cluster.Steiner.forest
(** Like {!carve}, additionally materializing each cluster's Steiner tree:
    the shortest-path tree from the cluster center to its members (depth
    [<= r_center <= ]{!max_radius}), possibly routing through nodes outside
    the cluster — exactly the augmentation the weak-carving interface of
    Theorem 2.1 requires. *)

val weak_carver : Dsgraph.Rng.t -> Strongdecomp.Transform.weak_carver
(** Package Linial–Saks as the black box [A] of Theorem 2.1. Composing
    [Transform.strong_carve ~weak:(weak_carver rng)] yields a {e
    randomized} strong-diameter ball carving through the paper's
    transformation — the paper notes such a transformation was previously
    unknown even for randomized algorithms. See
    {!Ls_transform}. *)
