open Dsgraph

type state = {
  best_prio : int;
  best_slack : int;
  announced : (int * int) option; (* last pair broadcast *)
}

let better (p1, s1) (p2, s2) = p1 > p2 || (p1 = p2 && s1 > s2)

(* Shared between the plain and reliable-transport runs so that, given
   equal RNG states, both execute the identical node program — the basis
   of the zero-fault transparency tests. *)
let build rng g ~epsilon =
  let n = Graph.n g in
  let cap = Linial_saks.max_radius ~n ~epsilon in
  (* per-node radii drawn up front; nodes only use their own entry *)
  let radii =
    Array.init n (fun _ -> min cap (Rng.geometric rng epsilon))
    [@@domain_unsafe
      "pre-drawn radius table captured by the program's init closure; \
       every simulated node reads only its own entry, so it is \
       read-shared across a future domain fan-out"]
  in
  let msg_bits = Congest.Bits.id_bits ~n + Congest.Bits.int_bits cap in
  let program =
    {
      Congest.Sim.init =
        (fun ~node ~neighbors:_ ->
          { best_prio = node; best_slack = radii.(node); announced = None });
      round =
        (fun ~node ~state ~inbox ->
          let best =
            List.fold_left
              (fun acc (_, pair) -> if better pair acc then pair else acc)
              (state.best_prio, state.best_slack)
              inbox
          in
          let state = { state with best_prio = fst best; best_slack = snd best } in
          let should_send =
            state.best_slack >= 1
            && state.announced <> Some (state.best_prio, state.best_slack)
          in
          if should_send then
            let out =
              Array.to_list
                (Array.map
                   (fun nb -> (nb, (state.best_prio, state.best_slack - 1)))
                   (Graph.neighbors g node))
            in
            ( { state with announced = Some (state.best_prio, state.best_slack) },
              out,
              false )
          else (state, [], true));
    }
  in
  (cap, msg_bits, program)

let cluster_of_states states =
  Array.map (fun s -> if s.best_slack >= 1 then s.best_prio else -1) states

let wrap_conformance conformance program =
  match conformance with
  | None -> program
  | Some c -> c.Congest.Conformance.instrument program

let attempt ?conformance ?trace rng g ~epsilon =
  let cap, msg_bits, program = build rng g ~epsilon in
  let program = wrap_conformance conformance program in
  let config =
    { Congest.Sim.Config.default with max_rounds = Some ((2 * cap) + 8); trace }
  in
  let states, stats =
    Congest.Sim.simulate ~config ~bits:(fun _ -> msg_bits) g program
  in
  (cluster_of_states states, stats)

type reliable_attempt = {
  cluster_of : int array;
  crashed : int list;
  finished : bool array;
  dead_view : int list array;
  sim_stats : Congest.Sim.stats;
  transport : Congest.Reliable.transport_stats;
  inner_rounds : int;
}

let attempt_reliable ?adversary ?conformance ?(liveness_timeout = 64) ?trace
    rng g ~epsilon =
  let cap, msg_bits, program = build rng g ~epsilon in
  let program = wrap_conformance conformance program in
  (* the flood quiesces within 2*cap + 2 inner rounds; the rest is slack *)
  let inner_rounds = (2 * cap) + 8 in
  let cfg = Congest.Reliable.config ~inner_rounds ~liveness_timeout () in
  let sim =
    { Congest.Sim.Config.default with adversary; on_incomplete = `Ignore; trace }
  in
  let r =
    Congest.Reliable.simulate ~sim cfg ~bits:(fun _ -> msg_bits) g program
  in
  let cluster_of = cluster_of_states r.Congest.Reliable.states in
  let crashed = r.Congest.Reliable.sim_stats.Congest.Sim.faults.crashed in
  List.iter (fun v -> cluster_of.(v) <- -1) crashed;
  {
    cluster_of;
    crashed;
    finished = r.Congest.Reliable.finished;
    dead_view = r.Congest.Reliable.dead_view;
    sim_stats = r.Congest.Reliable.sim_stats;
    transport = r.Congest.Reliable.transport;
    inner_rounds;
  }

let carve ?(max_retries = 60) ?trace rng g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Ls_distributed.carve: epsilon must be in (0, 1)";
  let n = Graph.n g in
  let domain = Mask.full n in
  Congest.Span.enter trace "ls_carve";
  let rec go k =
    if k >= max_retries then (
      Congest.Span.exit trace;
      failwith "Ls_distributed.carve: retries exhausted (unlucky sampling)");
    Congest.Span.enter_idx trace "attempt" k;
    let cluster_of, stats = attempt ?trace rng g ~epsilon in
    Congest.Span.exit trace;
    let clustering = Cluster.Clustering.make g ~cluster_of in
    let carving = Cluster.Carving.make clustering ~domain in
    if Cluster.Carving.dead_fraction carving <= epsilon then begin
      Congest.Span.exit trace;
      (carving, stats)
    end
    else go (k + 1)
  in
  go 0

type decompose_stats = {
  total_rounds : int;
  total_messages : int;
  max_bits : int;
}

let decompose ?(max_retries = 60) ?trace rng g =
  let n = Graph.n g in
  let cluster_of = Array.make n (-1) in
  let node_color = Array.make n (-1) in
  let next_cluster = ref 0 in
  let stats = ref { total_rounds = 0; total_messages = 0; max_bits = 0 } in
  let remaining = ref (Graph.nodes g) in
  let color = ref 0 in
  Congest.Span.enter trace "ls_decompose";
  while !remaining <> [] do
    Congest.Span.enter_idx trace "color" !color;
    let sub, back = Subgraph.induce g !remaining in
    let carving, sim_stats = carve ~max_retries ?trace rng sub ~epsilon:0.5 in
    stats :=
      {
        total_rounds = !stats.total_rounds + sim_stats.Congest.Sim.rounds_used;
        total_messages =
          !stats.total_messages + sim_stats.Congest.Sim.total_messages;
        max_bits = max !stats.max_bits sim_stats.Congest.Sim.max_bits_seen;
      };
    let clustering = carving.Cluster.Carving.clustering in
    if Cluster.Clustering.clustered_count clustering = 0 then
      failwith "Ls_distributed.decompose: carving clustered no nodes";
    List.iter
      (fun members ->
        let id = !next_cluster in
        incr next_cluster;
        List.iter
          (fun v ->
            let orig = back.(v) in
            cluster_of.(orig) <- id;
            node_color.(orig) <- !color)
          members)
      (Cluster.Clustering.clusters clustering);
    remaining := List.filter (fun v -> cluster_of.(v) = -1) !remaining;
    incr color;
    Congest.Span.exit trace
  done;
  Congest.Span.exit trace;
  let clustering = Cluster.Clustering.make g ~cluster_of in
  let color_of_cluster =
    Array.init (Cluster.Clustering.num_clusters clustering) (fun c ->
        node_color.(List.hd (Cluster.Clustering.members clustering c)))
  in
  (Cluster.Decomposition.make clustering ~color_of_cluster, !stats)
