(** Colored network decompositions: every node clustered, clusters colored
    so that same-color clusters are non-adjacent. The [(C, D)] parameters
    of the paper are {!num_colors} and {!max_strong_diameter} (or the weak
    variant). *)

type t

val make : Clustering.t -> color_of_cluster:int array -> t
(** @raise Invalid_argument on length mismatch or negative colors. *)

val clustering : t -> Clustering.t

val color_of_cluster : t -> int -> int

val color_of_node : t -> int -> int
(** [-1] for unclustered nodes (a valid decomposition has none). *)

val num_colors : t -> int
(** [1 + max color] (colors are not renumbered). *)

val clusters_of_color : t -> int -> int list
(** Cluster ids of one color. *)

val check :
  ?colors_bound:int ->
  ?strong_diameter_bound:int ->
  ?weak_diameter_bound:int ->
  ?domain:Dsgraph.Mask.t ->
  t ->
  (unit, string) result
(** Validates the decomposition contract: every domain node (default: all
    nodes) belongs to a cluster; any two {e adjacent} clusters have
    different colors; and the optional color/diameter bounds hold. *)

val quality : t -> int * int * int
(** [(colors, max strong diameter, max weak diameter)] — the measured
    [(C, D)] parameters reported in the Table 1 reproduction. *)

val pp : Format.formatter -> t -> unit
