(** Clusterings: assignments of (a subset of) nodes to disjoint clusters.

    A clustering does not carry colors (see {!Decomposition}) or dead-node
    bookkeeping (see {!Carving}); it is the common core both build on.
    Cluster identifiers are normalized to [0 .. num_clusters - 1];
    unclustered nodes carry [-1]. *)

type t

val make : Dsgraph.Graph.t -> cluster_of:int array -> t
(** [make g ~cluster_of] normalizes arbitrary non-negative cluster labels
    to dense ids. [cluster_of.(v) < 0] marks [v] unclustered. The array is
    copied. *)

val graph : t -> Dsgraph.Graph.t

val cluster_of : t -> int -> int
(** [-1] when unclustered. *)

val num_clusters : t -> int

val members : t -> int -> int list
(** Sorted members of a cluster. *)

val clusters : t -> int list list
(** All clusters' member lists, by cluster id. *)

val sizes : t -> int array

val clustered_count : t -> int

val unclustered : t -> int list

val largest_cluster : t -> int
(** Id of a maximum-size cluster; [-1] if there are none. *)

val non_adjacent : t -> bool
(** True when no edge joins two {e distinct} clusters — the ball-carving
    separation requirement. *)

val adjacent_cluster_pairs : t -> (int * int) list
(** Distinct-cluster pairs joined by at least one edge (each pair once). *)

val strong_diameter : t -> int -> int
(** Diameter of the subgraph induced by a cluster; [-1] if disconnected. *)

val max_strong_diameter : t -> int
(** Max over clusters; [-1] if any cluster is internally disconnected;
    [0] when there are no clusters. *)

val weak_diameter : ?within:Dsgraph.Mask.t -> t -> int -> int
(** Max pairwise distance of a cluster's members measured in the (masked)
    host graph. *)

val max_weak_diameter : ?within:Dsgraph.Mask.t -> t -> int

val strong_diameter_estimate : t -> int -> int
(** Double-sweep estimate of {!strong_diameter}: BFS inside the cluster
    from an arbitrary member, then from the farthest node found. Exact on
    trees, a lower bound within a factor 2 in general, O(cluster) instead
    of O(cluster²). [-1] when disconnected. Used by the measurement
    harness at large [n]; the test suite cross-checks it against the exact
    value on small graphs. *)

val max_strong_diameter_estimate : t -> int

val weak_diameter_estimate : t -> int -> int
(** Double-sweep in the host graph between cluster members. *)

val max_weak_diameter_estimate : t -> int

val witness_tree : t -> int -> (int * (int * int) list * int) option
(** [(root, parents, height)] of a BFS tree {e inside} the cluster's
    induced subgraph: [parents] is one [(node, parent)] pair per
    non-root member (sorted by node), every pair a real graph edge with
    both endpoints in the cluster, and [height] the largest BFS depth
    over the members. Such a tree certifies that the induced subgraph
    is connected with strong diameter at most [2 * height]. [None] when
    the induced subgraph is disconnected (then only a weak witness
    exists — see {!weak_witness_tree}). *)

val weak_witness_tree : ?within:Dsgraph.Mask.t -> t -> int -> (int * (int * int) list * int) option
(** As {!witness_tree} but the BFS runs in the (masked) host graph, so
    the tree may route through non-members (Steiner nodes); it is
    pruned to the union of the root-to-member paths. Certifies weak
    diameter at most [2 * height]. [None] when some member is
    unreachable even in the host graph. *)

val eccentric_pair : t -> int -> int * int * int
(** [(u, v, d)] — a double-sweep witness pair inside the cluster's
    induced subgraph: members at distance exactly [d], so [d] is a
    certified lower bound on the strong diameter (within a factor 2 of
    it, exact on trees). [(-1, -1, -1)] when the induced subgraph is
    disconnected. *)

val weak_eccentric_pair : ?within:Dsgraph.Mask.t -> t -> int -> int * int * int
(** As {!eccentric_pair}, measured in the (masked) host graph: a lower
    bound on the weak diameter. *)

val pp : Format.formatter -> t -> unit
