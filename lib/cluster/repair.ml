open Dsgraph

type delta = {
  crash : int list;
  revive : int list;
  del_edges : (int * int) list;
  add_edges : (int * int) list;
}

let delta ?(crash = []) ?(revive = []) ?(del_edges = []) ?(add_edges = []) () =
  { crash; revive; del_edges; add_edges }

let is_empty d =
  d.crash = [] && d.revive = [] && d.del_edges = [] && d.add_edges = []

(* The fault history is kept as lists of normalized (u < v) pairs;
   deltas are small, so list membership is cheap compared to the graph
   rebuild. Invariants: [removed] is a subset of the base edge set,
   [extra] is disjoint from it. *)
type state = {
  base_g : Graph.t;
  down_set : bool array;
  removed : (int * int) list; (* base edges currently deleted *)
  extra : (int * int) list; (* non-base edges currently present *)
  current : Graph.t;
}

let norm (u, v) = if u < v then (u, v) else (v, u)

(* Materialize the current graph from the base plus the fault history:
   the one sanctioned delta-application path (see the conformance
   lint's graph-edit rule). Crashed nodes are isolated; their logical
   edges return on revival. *)
let materialize base_g ~down_set ~removed ~extra =
  let up u = not down_set.(u) in
  let del = ref removed in
  Graph.iter_edges base_g (fun u v ->
      if (not (up u)) || not (up v) then
        if not (List.mem (u, v) removed) then del := (u, v) :: !del);
  let add = List.filter (fun (u, v) -> up u && up v) extra in
  Graph.apply_edits base_g ~del:!del ~add

let init g =
  {
    base_g = g;
    down_set = Array.make (Graph.n g) false;
    removed = [];
    extra = [];
    current = g;
  }

let graph st = st.current
let base st = st.base_g
let is_down st v = st.down_set.(v)

let down st =
  let acc = ref [] in
  for v = Array.length st.down_set - 1 downto 0 do
    if st.down_set.(v) then acc := v :: !acc
  done;
  !acc

let survivors st =
  let n = Graph.n st.base_g in
  let m = Mask.empty n in
  for v = 0 to n - 1 do
    if not st.down_set.(v) then Mask.add m v
  done;
  m

let step st d =
  let n = Graph.n st.base_g in
  let check_node what v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Repair.step: %s node %d out of range" what v)
  in
  List.iter (check_node "crash") d.crash;
  List.iter (check_node "revive") d.revive;
  List.iter
    (fun v ->
      if st.down_set.(v) then
        invalid_arg (Printf.sprintf "Repair.step: crashing down node %d" v);
      if List.mem v d.revive then
        invalid_arg
          (Printf.sprintf "Repair.step: node %d both crashed and revived" v))
    d.crash;
  List.iter
    (fun v ->
      if not st.down_set.(v) then
        invalid_arg (Printf.sprintf "Repair.step: reviving up node %d" v))
    d.revive;
  let down_set = Array.copy st.down_set in
  List.iter (fun v -> down_set.(v) <- true) d.crash;
  List.iter (fun v -> down_set.(v) <- false) d.revive;
  let up_after v = not down_set.(v) in
  let removed, extra =
    List.fold_left
      (fun (removed, extra) e ->
        let u, v = norm e in
        check_node "del-edge" u;
        check_node "del-edge" v;
        if not (Graph.is_edge st.current u v) then
          invalid_arg
            (Printf.sprintf "Repair.step: deleting absent edge (%d,%d)" u v);
        if List.mem (u, v) extra then (removed, List.filter (( <> ) (u, v)) extra)
        else ((u, v) :: removed, extra))
      (st.removed, st.extra) d.del_edges
  in
  let removed, extra =
    List.fold_left
      (fun (removed, extra) e ->
        let u, v = norm e in
        check_node "add-edge" u;
        check_node "add-edge" v;
        if u = v then invalid_arg "Repair.step: self-loop insertion";
        if not (up_after u && up_after v) then
          invalid_arg
            (Printf.sprintf
               "Repair.step: inserting edge (%d,%d) at a down endpoint" u v);
        if List.mem (u, v) extra then
          invalid_arg
            (Printf.sprintf "Repair.step: inserting edge (%d,%d) twice" u v);
        if List.mem (u, v) removed then
          (List.filter (( <> ) (u, v)) removed, extra)
        else if Graph.is_edge st.base_g u v then
          invalid_arg
            (Printf.sprintf "Repair.step: inserting existing edge (%d,%d)" u v)
        else (removed, (u, v) :: extra))
      (removed, extra) d.add_edges
  in
  let current = materialize st.base_g ~down_set ~removed ~extra in
  { base_g = st.base_g; down_set; removed; extra; current }

(* ------------------------------------------------------------------ *)
(* Dirty-region planning                                               *)
(* ------------------------------------------------------------------ *)

type plan = { dirty : int list; region : int list; seeds : int list }

(* multi-source BFS ball of radius [h], restricted to up nodes *)
let ball g ~up ~seeds ~h =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun v ->
      if up v && dist.(v) < 0 then begin
        dist.(v) <- 0;
        Queue.add v q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if dist.(v) < h then
      Graph.iter_neighbors g v (fun w ->
          if up w && dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
  done;
  dist

let plan ?(halo = 0) ~weak ~color ~old st d =
  if halo < 0 then invalid_arg "Repair.plan: negative halo";
  let pre = Clustering.graph old in
  let n = Graph.n pre in
  if n <> Graph.n st.current then
    invalid_arg "Repair.plan: clustering and state disagree on n";
  let k = Clustering.num_clusters old in
  let dirty = Array.make k false in
  let cl v = Clustering.cluster_of old v in
  let mark c = if c >= 0 then dirty.(c) <- true in
  (* weak certificates route through arbitrary host nodes: any delta
     at all invalidates them *)
  if not (is_empty d) then
    for c = 0 to k - 1 do
      if weak c then dirty.(c) <- true
    done;
  (* a crashed member invalidates its cluster's membership *)
  List.iter (fun v -> mark (cl v)) d.crash;
  let seeds = ref [] in
  let seed v = if not (is_down st v) then seeds := v :: !seeds in
  (* the halo ball grows from the fault sites: the hole a crash leaves
     (its pre-graph neighborhood), changed-edge endpoints, revivals *)
  List.iter
    (fun v -> Graph.iter_neighbors pre v (fun w -> seed w))
    d.crash;
  List.iter (fun v -> seed v) d.revive;
  let edge_change (u, v) =
    seed u;
    seed v;
    (* an intra-cluster edge change can shift the exact eccentric-pair
       distance a strong certificate witnesses *)
    if cl u >= 0 && cl u = cl v then mark (cl u)
  in
  List.iter edge_change d.del_edges;
  List.iter
    (fun (u, v) ->
      edge_change (u, v);
      (* an inserted edge between distinct same-color clusters (for
         carvings all colors are -1: between any two clusters) breaks
         separation *)
      if cl u >= 0 && cl v >= 0 && cl u <> cl v && color (cl u) = color (cl v)
      then begin
        mark (cl u);
        mark (cl v)
      end)
    d.add_edges;
  let seeds = List.sort_uniq compare !seeds in
  let extras = ref d.revive in
  (if halo > 0 then
     let dist =
       ball st.current ~up:(fun v -> not (is_down st v)) ~seeds ~h:halo
     in
     for v = 0 to n - 1 do
       if dist.(v) >= 0 then
         if cl v >= 0 then mark (cl v) else extras := v :: !extras
     done);
  let region = ref [] in
  for c = 0 to k - 1 do
    if dirty.(c) then
      List.iter
        (fun v -> if not (is_down st v) then region := v :: !region)
        (Clustering.members old c)
  done;
  List.iter
    (fun v -> if cl v < 0 || not dirty.(cl v) then region := v :: !region)
    !extras;
  let dirty_ids = ref [] in
  for c = k - 1 downto 0 do
    if dirty.(c) then dirty_ids := c :: !dirty_ids
  done;
  { dirty = !dirty_ids; region = List.sort_uniq compare !region; seeds }

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

type kind = Decomposition | Carving

type merged = {
  clustering : Clustering.t;
  colors : int array;
  old_to_new : int array;
  fresh : int list;
  touched_nodes : int;
}

let merge ~kind ~old ~color_of ~plan:pl ~state:st ~recarve =
  let n = Graph.n st.current in
  let k_old = Clustering.num_clusters old in
  let dirty = Array.make k_old false in
  List.iter (fun c -> dirty.(c) <- true) pl.dirty;
  let in_region = Array.make n false in
  List.iter (fun v -> in_region.(v) <- true) pl.region;
  let untouched v =
    let c = Clustering.cluster_of old v in
    c >= 0 && (not dirty.(c)) && not in_region.(v)
  in
  (* carvings: withhold region nodes adjacent to an untouched cluster,
     so fresh clusters cannot break separation; the withheld nodes
     stay dead *)
  let withheld = Array.make n false in
  (match kind with
  | Decomposition -> ()
  | Carving ->
      List.iter
        (fun v ->
          Graph.iter_neighbors st.current v (fun w ->
              if untouched w then withheld.(v) <- true))
        pl.region);
  let domain =
    List.filter (fun v -> (not withheld.(v)) && not (is_down st v)) pl.region
  in
  let labels = Array.make n (-1) in
  (* untouched clusters keep their old cluster id as the label; fresh
     clusters get labels starting at k_old, so probing any member of a
     normalized cluster recovers which side it came from *)
  for v = 0 to n - 1 do
    if untouched v && not (is_down st v) then
      labels.(v) <- Clustering.cluster_of old v
  done;
  if domain <> [] then begin
    let sub, back = Subgraph.induce st.current domain in
    let sub_labels, _sub_colors = recarve sub in
    if Array.length sub_labels <> Graph.n sub then
      invalid_arg "Repair.merge: recarve returned wrong label count";
    Array.iteri
      (fun i l ->
        if l >= 0 then labels.(back.(i)) <- k_old + l
        else if kind = Decomposition then
          invalid_arg
            (Printf.sprintf
               "Repair.merge: decomposition recarve left node %d unclustered"
               back.(i)))
      sub_labels
  end;
  let clustering = Clustering.make st.current ~cluster_of:labels in
  let k_new = Clustering.num_clusters clustering in
  let old_to_new = Array.make k_old (-1) in
  let from_old = Array.make (max k_new 1) (-1) in
  for c = 0 to k_new - 1 do
    match Clustering.members clustering c with
    | [] -> ()
    | v :: _ ->
        let l = labels.(v) in
        if l < k_old then begin
          old_to_new.(l) <- c;
          from_old.(c) <- l
        end
  done;
  let fresh = ref [] in
  for c = k_new - 1 downto 0 do
    if from_old.(c) < 0 then fresh := c :: !fresh
  done;
  let colors = Array.make (max k_new 1) (-1) in
  (match kind with
  | Carving -> ()
  | Decomposition ->
      (* carried clusters keep their colors *)
      for c = 0 to k_new - 1 do
        if from_old.(c) >= 0 then colors.(c) <- color_of from_old.(c)
      done;
      (* fresh clusters: smallest color unused by any adjacent,
         already-colored cluster — deterministic in new-id order, and
         always possible (the palette may grow) *)
      List.iter
        (fun c ->
          let banned = Hashtbl.create 8 in
          List.iter
            (fun v ->
              Graph.iter_neighbors st.current v (fun w ->
                  let cw = Clustering.cluster_of clustering w in
                  if cw >= 0 && cw <> c && colors.(cw) >= 0 then
                    Hashtbl.replace banned colors.(cw) ()))
            (Clustering.members clustering c);
          let rec first i = if Hashtbl.mem banned i then first (i + 1) else i in
          colors.(c) <- first 0)
        !fresh);
  let colors = Array.sub colors 0 k_new in
  {
    clustering;
    colors;
    old_to_new;
    fresh = !fresh;
    touched_nodes = List.length pl.region;
  }
