(** Local repair of decompositions and carvings under fault deltas.

    A long-running decomposition service cannot re-run its algorithm
    from scratch on every fault. This engine maintains a {e fault
    state} (which nodes are crash-stopped, which edges deviate from the
    base graph), computes — per fault delta — the {e dirty region}:
    exactly the clusters whose membership, witness tree, or separation
    the delta can invalidate, and re-carves only that region on the
    survivor subgraph, merging the result with the untouched clusters.

    The dirty rules mirror what the certificate verifier
    ([Workload.Audit.verify]) checks, so a cluster is dirtied iff its
    certificate could now be rejected:

    - a cluster containing a crashed node loses a member — dirty;
    - an edge deleted or inserted {e inside} a cluster can change its
      induced subgraph's distances, and a strong certificate witnesses
      an exact eccentric-pair distance — dirty;
    - an edge inserted between two distinct clusters of equal color
      (for carvings every color is [-1], so between {e any} two
      clusters) breaks separation — both dirty;
    - a {e weakly} certified cluster's witnesses run through arbitrary
      host-graph nodes, so any delta at all dirties it (conservative,
      and the price of weak certificates);
    - strong certificates are confined to their cluster, so strongly
      certified clusters are immune to changes elsewhere.

    A configurable {e halo} adds a safety margin: with [halo = h >= 1],
    every cluster within distance [h] (in the post-fault graph) of a
    fault site is dirtied too, giving the re-carver room to rebuild
    natural cluster shapes around the damage. [halo = 0] is the minimal
    certified-invalidation set.

    Re-carving is delegated to a caller-supplied [recarve] callback
    (the workload layer plugs in the registered sequential engines), so
    this module stays below the algorithm registry in the dependency
    order. Merging recolors fresh clusters greedily (decompositions —
    always possible, may grow the palette) or leaves frontier nodes
    dead (carvings — nodes whose re-carved cluster would touch an
    untouched cluster are excluded up front, preserving full
    non-adjacency). *)

type delta = {
  crash : int list;  (** nodes that crash-stop (must be up) *)
  revive : int list;  (** nodes that come back (must be down) *)
  del_edges : (int * int) list;  (** edges removed (must exist) *)
  add_edges : (int * int) list;  (** edges inserted (must not exist) *)
}

val delta :
  ?crash:int list ->
  ?revive:int list ->
  ?del_edges:(int * int) list ->
  ?add_edges:(int * int) list ->
  unit ->
  delta
(** Smart constructor; everything defaults to empty. *)

val is_empty : delta -> bool

type state
(** Base graph plus fault history: the down set, and the set of edges
    deleted from / added to the base graph. A crashed node is isolated
    in the current graph (all incident edges removed) but its logical
    edges — base edges minus deletions plus insertions — reappear when
    it revives. *)

val init : Dsgraph.Graph.t -> state
(** Fault-free initial state over a base graph. *)

val graph : state -> Dsgraph.Graph.t
(** The current post-fault graph (same node universe [0 .. n-1];
    crashed nodes isolated). *)

val base : state -> Dsgraph.Graph.t

val down : state -> int list
(** Sorted list of currently crashed nodes. *)

val is_down : state -> int -> bool

val survivors : state -> Dsgraph.Mask.t
(** Fresh mask of the up nodes. *)

val step : state -> delta -> state
(** Applies a delta; [state] is unchanged (persistent-style). All
    delta components refer to the pre-delta state: crash targets must
    be up, revive targets down, deleted edges present between up
    nodes, inserted edges absent with both endpoints up after the
    delta's own crashes and revives are accounted.
    @raise Invalid_argument on any inconsistency. *)

type plan = {
  dirty : int list;  (** invalidated cluster ids of the old clustering *)
  region : int list;
      (** sorted surviving nodes to re-carve: members of dirty
          clusters, revived nodes, and unclustered survivors inside
          the halo ball *)
  seeds : int list;
      (** fault sites the halo ball grows from: pre-graph neighbors of
          crashed nodes, endpoints of changed edges, revived nodes *)
}

val plan :
  ?halo:int ->
  weak:(int -> bool) ->
  color:(int -> int) ->
  old:Clustering.t ->
  state ->
  delta ->
  plan
(** [plan ~halo ~weak ~color ~old st delta] computes the dirty region
    of [old] (a clustering of the {e pre}-delta graph) under [delta],
    where [st] is the {e post}-delta state ([step pre delta]),
    [weak c] says whether cluster [c] is only weakly certified, and
    [color c] is its color ([-1] for every cluster of a carving, which
    makes any inserted inter-cluster edge dirty both sides).
    [halo] defaults to [0]. *)

type kind = Decomposition | Carving

type merged = {
  clustering : Clustering.t;  (** over {!graph}[ st] *)
  colors : int array;
      (** per new cluster id; all [-1] for carvings *)
  old_to_new : int array;
      (** old cluster id -> new id; [-1] for dirty (retired) clusters *)
  fresh : int list;  (** new ids of re-carved clusters, sorted *)
  touched_nodes : int;  (** size of the re-carve region *)
}

val merge :
  kind:kind ->
  old:Clustering.t ->
  color_of:(int -> int) ->
  plan:plan ->
  state:state ->
  recarve:(Dsgraph.Graph.t -> int array * int array) ->
  merged
(** Re-carves [plan.region] on the survivor subgraph and merges with
    the untouched clusters of [old]. [recarve sub] must return a
    cluster label per node of [sub] ([-1] = leave dead, only allowed
    for carvings) and a color per label (ignored for carvings; for
    decompositions the labels' colors are {e not} trusted — fresh
    clusters are greedily recolored against their merged
    neighborhood, which may grow the palette but never breaks
    validity). Untouched clusters keep their exact member sets; for
    carvings, region nodes adjacent to an untouched cluster are
    withheld from [recarve] and left dead, so full non-adjacency is
    preserved by construction.
    @raise Invalid_argument if a decomposition [recarve] leaves a
    region node unclustered or returns a negative color. *)
