(** Steiner trees attached to weak-diameter clusters.

    A weak-diameter cluster [C] comes with a tree [T] of depth [R] in the
    host graph whose terminal set contains all of [C]; tree nodes need not
    belong to [C] (they may meanwhile belong to other clusters or be dead).
    The congestion [L] of a forest is the maximum number of trees any single
    edge participates in. *)

type tree = {
  root : int;
  parent : (int * int) list;
      (** [(node, parent)] pairs; the root appears as [(root, root)].
          Every non-root pair must be a host-graph edge. *)
}

type forest = tree array
(** Indexed by cluster id. *)

val nodes : tree -> int list
(** All nodes of the tree, sorted. *)

val depth : tree -> int
(** Max hop distance from the root along parent pointers.
    @raise Invalid_argument on a malformed tree (cycle or missing parent). *)

val check :
  Dsgraph.Graph.t -> tree -> terminals:int list -> (unit, string) result
(** Validates: parent pairs are edges, the root is present, parent chains
    reach the root (connected, acyclic), and every terminal is a tree
    node. *)

val congestion : Dsgraph.Graph.t -> forest -> int
(** Maximum, over host edges, of the number of trees containing the edge. *)

val check_forest :
  Dsgraph.Graph.t ->
  forest ->
  clustering:Clustering.t ->
  depth_bound:int ->
  congestion_bound:int ->
  (unit, string) result
(** Validates every tree against its cluster's members, and the forest-wide
    depth and congestion bounds. *)
