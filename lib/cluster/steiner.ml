open Dsgraph

type tree = { root : int; parent : (int * int) list }
type forest = tree array

let nodes tree = List.sort_uniq compare (List.map fst tree.parent)

let parent_table tree =
  let tbl = Hashtbl.create (List.length tree.parent) in
  List.iter
    (fun (v, p) ->
      if Hashtbl.mem tbl v then
        invalid_arg "Steiner: node listed twice in tree"
      else Hashtbl.add tbl v p)
    tree.parent;
  tbl

let depth tree =
  let tbl = parent_table tree in
  let memo = Hashtbl.create 16 in
  let rec dist v guard =
    if guard > Hashtbl.length tbl then invalid_arg "Steiner.depth: cycle";
    match Hashtbl.find_opt memo v with
    | Some d -> d
    | None ->
        let d =
          if v = tree.root then 0
          else
            match Hashtbl.find_opt tbl v with
            | None -> invalid_arg "Steiner.depth: missing parent"
            | Some p -> 1 + dist p (guard + 1)
        in
        Hashtbl.replace memo v d;
        d
  in
  List.fold_left (fun acc (v, _) -> max acc (dist v 0)) 0 tree.parent

let check g tree ~terminals =
  let ( let* ) r f = Result.bind r f in
  let tbl =
    try Ok (parent_table tree)
    with Invalid_argument m -> Error m
  in
  let* tbl = tbl in
  let* () =
    if Hashtbl.find_opt tbl tree.root = Some tree.root then Ok ()
    else Error "Steiner.check: root missing or root parent not itself"
  in
  let* () =
    Hashtbl.fold
      (fun v p acc ->
        let* () = acc in
        if v = tree.root then Ok ()
        else if v = p then Error "Steiner.check: non-root self-parent"
        else if Graph.is_edge g v p then Ok ()
        else
          Error
            (Printf.sprintf "Steiner.check: (%d,%d) is not a graph edge" v p))
      tbl (Ok ())
  in
  let* () =
    (* all chains reach the root without cycling *)
    try
      ignore (depth tree);
      Ok ()
    with Invalid_argument m -> Error m
  in
  List.fold_left
    (fun acc t ->
      let* () = acc in
      if Hashtbl.mem tbl t then Ok ()
      else Error (Printf.sprintf "Steiner.check: terminal %d not in tree" t))
    (Ok ()) terminals

let congestion g forest =
  let counts = Hashtbl.create (Graph.m g) in
  Array.iter
    (fun tree ->
      List.iter
        (fun (v, p) ->
          if v <> p then begin
            let key = (min v p, max v p) in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          end)
        tree.parent)
    forest;
  Hashtbl.fold (fun _ c acc -> max c acc) counts 0

let check_forest g forest ~clustering ~depth_bound ~congestion_bound =
  let ( let* ) r f = Result.bind r f in
  let* () =
    if Array.length forest = Clustering.num_clusters clustering then Ok ()
    else Error "Steiner.check_forest: tree count <> cluster count"
  in
  let* () =
    Array.to_list forest
    |> List.mapi (fun c tree -> (c, tree))
    |> List.fold_left
         (fun acc (c, tree) ->
           let* () = acc in
           let* () = check g tree ~terminals:(Clustering.members clustering c) in
           let d = depth tree in
           if d > depth_bound then
             Error
               (Printf.sprintf
                  "Steiner.check_forest: cluster %d tree depth %d > bound %d" c
                  d depth_bound)
           else Ok ())
         (Ok ())
  in
  let l = congestion g forest in
  if l > congestion_bound then
    Error
      (Printf.sprintf "Steiner.check_forest: congestion %d > bound %d" l
         congestion_bound)
  else Ok ()
