open Dsgraph

type t = { clustering : Clustering.t; domain : Mask.t }

let make clustering ~domain =
  let g = Clustering.graph clustering in
  for v = 0 to Graph.n g - 1 do
    if Clustering.cluster_of clustering v >= 0 && not (Mask.mem domain v) then
      invalid_arg "Carving.make: clustered node outside domain"
  done;
  { clustering; domain }

let dead t =
  List.filter
    (fun v -> Clustering.cluster_of t.clustering v < 0)
    (Mask.to_list t.domain)

let dead_fraction t =
  let total = Mask.count t.domain in
  if total = 0 then 0.0
  else float_of_int (List.length (dead t)) /. float_of_int total

let ( let* ) r f = Result.bind r f

let check_common ?epsilon t =
  let* () =
    if Clustering.non_adjacent t.clustering then Ok ()
    else
      Error
        (Printf.sprintf "carving: adjacent clusters %s"
           (String.concat ","
              (List.map
                 (fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
                 (Clustering.adjacent_cluster_pairs t.clustering))))
  in
  match epsilon with
  | None -> Ok ()
  | Some eps ->
      let f = dead_fraction t in
      if f <= eps +. 1e-9 then Ok ()
      else Error (Printf.sprintf "carving: dead fraction %.4f > epsilon %.4f" f eps)

let check_weak ?epsilon ?steiner ?depth_bound ?congestion_bound t =
  let* () = check_common ?epsilon t in
  match steiner with
  | None -> Ok ()
  | Some forest ->
      let depth_bound = Option.value depth_bound ~default:max_int in
      let congestion_bound = Option.value congestion_bound ~default:max_int in
      Steiner.check_forest
        (Clustering.graph t.clustering)
        forest ~clustering:t.clustering ~depth_bound ~congestion_bound

let check_strong ?epsilon ?diameter_bound t =
  let* () = check_common ?epsilon t in
  let bound = Option.value diameter_bound ~default:max_int in
  let k = Clustering.num_clusters t.clustering in
  let rec go c =
    if c >= k then Ok ()
    else
      match Clustering.strong_diameter t.clustering c with
      | -1 -> Error (Printf.sprintf "carving: cluster %d internally disconnected" c)
      | d when d > bound ->
          Error
            (Printf.sprintf "carving: cluster %d strong diameter %d > bound %d"
               c d bound)
      | _ -> go (c + 1)
  in
  go 0
